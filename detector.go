package hdface

import (
	"fmt"

	"hdface/internal/detect"
	"hdface/internal/hdc"
	"hdface/internal/hdhog"
	"hdface/internal/hog"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
)

// Detection-scorer observability: how many sweep windows were assembled
// from cached cell-grid hypervectors versus paid for a full per-window
// extraction. A healthy StochHOG sweep is almost entirely grid windows;
// fallback extractions signal a geometry mismatch (working size, stride
// off the cell lattice) worth fixing.
var (
	obsGridWindows = obs.NewCounter("hdface_detect_grid_windows_total", "sweep windows assembled from cached cell-grid hypervectors")
	obsFullWindows = obs.NewCounter("hdface_detect_full_extractions_total", "sweep windows that required a full per-window feature extraction")
)

// Seed salts separating the detection scorer's random streams from the
// pipeline's training streams and from each other.
const (
	saltDetect = 0xdE7Ec7
	saltLevel  = 0x11e7
	saltGrid   = 0x611d
)

// FaceScorer adapts a trained binary pipeline to the detection sweep. It
// implements detect.GridScorer: for ModeStochHOG it prepares each pyramid
// level once as a hyperspace HOG cell grid and assembles window features
// from the cached cell hypervectors, and it clones itself per sweep worker.
// Every per-window random stream is reseeded from the window's deterministic
// index, so sweep output is byte-identical for any worker count.
//
// The other modes still satisfy the contract — ScoreWindow extracts from
// raw pixels — but their extractors share one codec stream, so Fork returns
// nil and sweeps over them run single-worker.
type FaceScorer struct {
	p     *Pipeline
	model *hdc.Model
	win   int
	// geom is the square geometry features are extracted at: the pipeline
	// working size when configured (matching training), else the window.
	geom int
	seed uint64

	ext *hog.Extractor   // ModeOrigHOG: private classical-HOG extractor
	hd  *hdhog.Extractor // ModeStochHOG: private fork of the pipeline extractor

	// Hamming switches window scoring to the binarised class memory
	// (hdc.Model.ScoreBinaryHamming) instead of the float cosine
	// accumulators — the bit-serial inference mode whose packed class
	// hypervectors are what the fault harness corrupts. The model must
	// have been Finalized. Set before the first sweep.
	Hamming bool
	// Fused switches grid-capable levels to the zero-allocation fused
	// scoring kernel: window bundling, binarisation and the per-class
	// Hamming popcount run as one word-at-a-time pass over positional IDs
	// rematerialized from seeds (hdhog.FusedWindowScore), instead of
	// materialising the feature and scoring it in a second pass. Scores
	// are Hamming-mode by construction, and a fused sweep is byte-identical
	// to the two-pass path with Hamming set, at any worker count. The model
	// must have been Finalized; off-lattice windows still fall back to full
	// extraction, and BindBundle extractors (whose bundle operands are data
	// hypervectors, not rematerializable IDs) ignore the flag. Set before
	// the first sweep.
	Fused bool
	// OnGrid, when set, is installed as the hdhog.Extractor GridHook of
	// every pyramid-level extraction, handing the fault harness each
	// freshly cached cell grid to corrupt before windows are assembled
	// from it. Set before the first sweep.
	OnGrid func(*hdhog.CellGrid)
}

// DetectScorer builds a detection scorer over a trained binary model
// (pass nil to use the pipeline's own model) for win-sized sweep windows.
func (p *Pipeline) DetectScorer(model *hdc.Model, win int) (*FaceScorer, error) {
	if model == nil {
		model = p.model
	}
	if model == nil {
		return nil, fmt.Errorf("hdface: DetectScorer needs a trained model")
	}
	if model.K != 2 {
		return nil, fmt.Errorf("hdface: DetectScorer needs a binary face/non-face model, got %d classes", model.K)
	}
	if win <= 0 {
		return nil, fmt.Errorf("hdface: window size %d must be positive", win)
	}
	s := &FaceScorer{
		p:     p,
		model: model,
		win:   win,
		geom:  win,
		seed:  p.cfg.Seed ^ saltDetect,
	}
	if p.cfg.WorkingSize > 0 {
		s.geom = p.cfg.WorkingSize
	}
	switch p.cfg.Mode {
	case ModeStochHOG:
		// Warm the positional IDs for the extraction geometry before any
		// fork exists, so concurrent forks only ever read the shared map —
		// and so detection uses the same positional IDs training did.
		p.hdExt.WarmIDs(s.geom, s.geom)
		s.hd = p.hdExt.Fork()
	case ModeOrigHOG:
		// Materialise the shared projection encoder now; afterwards it is
		// read-only and fork-safe.
		p.ensureEncoder(imgproc.NewImage(s.geom, s.geom))
		s.ext = hog.New(p.hogParams)
	}
	return s, nil
}

// ScoreWindow classifies one cropped window, the detect.WindowScorer
// fallback contract. Grid-capable sweeps only reach it when level
// preparation was skipped.
func (s *FaceScorer) ScoreWindow(win *imgproc.Image) (bool, float64) {
	switch s.p.cfg.Mode {
	case ModeStochHOG:
		f := s.hd.Feature(s.sized(win))
		s.p.harvest(s.hd)
		obsFullWindows.Inc()
		return s.score(f)
	case ModeOrigHOG:
		feats := s.ext.Features(s.sized(win))
		s.p.mu.Lock()
		s.p.hogStats.Add(s.ext.Stats)
		s.ext.Stats = hog.Stats{}
		s.p.mu.Unlock()
		obsFullWindows.Inc()
		return s.score(s.p.encode(feats))
	default:
		obsFullWindows.Inc()
		return s.score(s.p.Feature(win))
	}
}

// score classifies one feature hypervector through the configured inference
// mode: float cosine accumulators by default, the binarised class memory
// when Hamming is set.
func (s *FaceScorer) score(f *hv.Vector) (bool, float64) {
	if s.Hamming {
		return s.model.ScoreBinaryHamming(f)
	}
	return s.model.ScoreBinary(f)
}

// sized resizes a window to the extraction geometry if needed.
func (s *FaceScorer) sized(img *imgproc.Image) *imgproc.Image {
	if img.W != s.geom || img.H != s.geom {
		return img.Resize(s.geom, s.geom)
	}
	return img
}

// Fork implements detect.Forker. Modes whose extractor state cannot be
// cloned (HAAR and convolution share one codec stream) return nil, which
// clamps the sweep to one worker.
func (s *FaceScorer) Fork() detect.WindowScorer {
	c := *s
	switch s.p.cfg.Mode {
	case ModeStochHOG:
		c.hd = s.hd.Fork()
	case ModeOrigHOG:
		c.ext = hog.New(s.p.hogParams)
	default:
		return nil
	}
	return &c
}

// PrepareLevel implements detect.GridScorer. For ModeStochHOG every level
// gets a LevelScorer whose per-window streams are keyed on (level, window
// index); when the sweep geometry sits on the cell lattice it additionally
// extracts the level's cell grid once, with workers-way parallelism, and
// windows are assembled from cached cells. Other modes return nil and fall
// back to ScoreWindow.
func (s *FaceScorer) PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) detect.LevelScorer {
	if s.p.cfg.Mode != ModeStochHOG {
		return nil
	}
	l := &faceLevelScorer{
		s:       s,
		ext:     s.hd.Fork(),
		level:   level,
		win:     win,
		lvlSeed: hv.Mix64(s.seed, saltLevel+uint64(levelIdx)),
	}
	l.ext.GridHook = s.OnGrid
	cs := s.hd.P.CellSize
	// The cell grid yields features at exactly win x win, so it applies
	// only when that matches the geometry the model was trained at, and
	// when windows tile whole cells.
	if win == s.win && win == s.geom && win%cs == 0 &&
		level.W >= win && level.H >= win {
		l.grid = l.ext.LevelGrid(level, hv.Mix64(l.lvlSeed, saltGrid), workers)
		l.winCells = win / cs
		s.p.harvest(l.ext)
		if s.Fused && !s.hd.P.BindBundle {
			// BinWords panics before Finalize — the same precondition
			// Hamming-mode scoring already imposes.
			l.classes = s.model.BinWords()
			l.arena = hdhog.NewScoreArena(s.model.D, l.winCells, s.hd.P.Bins, len(l.classes))
		}
		// One encode span per level fork (ended in CloseLevel) replaces the
		// old per-window spans: same stage, items = windows assembled.
		l.sp = obs.StartSpan("encode")
	}
	return l
}

// faceLevelScorer scores one pyramid level for a StochHOG FaceScorer.
type faceLevelScorer struct {
	s        *FaceScorer
	ext      *hdhog.Extractor
	level    *imgproc.Image
	grid     *hdhog.CellGrid // nil when the geometry is off the cell lattice
	win      int
	winCells int
	lvlSeed  uint64

	// Fused-path state, exclusively owned by this fork: the packed class
	// memory view, the reusable scoring arena, the per-level encode span
	// and the count of grid windows it will carry. classes/arena are nil
	// when the scorer is not fused or the level has no grid.
	classes [][]uint64
	arena   *hdhog.ScoreArena
	sp      *obs.Span
	windows int64
}

// ScoreAt scores the window at (x, y). The extractor reseeds from the
// window index first, making the result a pure function of (scorer state,
// level, index) — the determinism contract the parallel sweep relies on.
func (l *faceLevelScorer) ScoreAt(x, y, idx int) (bool, float64) {
	l.ext.Reseed(hv.Mix64(l.lvlSeed, uint64(idx)))
	cs := l.ext.P.CellSize
	if l.grid != nil && x%cs == 0 && y%cs == 0 {
		l.windows++
		obsGridWindows.Inc()
		if l.arena != nil {
			// Fused path: bundle, binarise and popcount in one pass; no
			// feature materialisation, no per-window harvest (grid window
			// assembly runs no codec ops — counters batch in CloseLevel).
			d := l.ext.FusedWindowScore(l.grid, x/cs, y/cs, l.winCells, l.classes, l.arena)
			return l.s.model.ScoreBinaryFromDistances(d[0], d[1])
		}
		f := l.ext.WindowFeature(l.grid, x/cs, y/cs, l.winCells)
		return l.s.score(f)
	}
	f := l.ext.Feature(l.s.sized(l.level.Crop(x, y, l.win, l.win)))
	obsFullWindows.Inc()
	l.s.p.harvest(l.ext)
	return l.s.score(f)
}

// Fork clones the level scorer for another sweep worker; the cell grid and
// class memory are immutable and shared, while the extractor, arena and
// encode span are per-fork owned state.
func (l *faceLevelScorer) Fork() detect.LevelScorer {
	c := *l
	c.ext = l.ext.Fork()
	if l.arena != nil {
		c.arena = hdhog.NewScoreArena(l.s.model.D, l.winCells, c.ext.P.Bins, len(l.classes))
	}
	c.windows = 0
	c.sp = nil
	if l.grid != nil {
		c.sp = obs.StartSpan("encode")
	}
	return &c
}

// CloseLevel implements detect.LevelCloser: called serially by the sweep
// after all workers finish, it ends the fork's per-level encode span with
// its window count and folds the fork's extractor work counters into the
// pipeline once — bookkeeping the per-window hot path no longer pays.
func (l *faceLevelScorer) CloseLevel() {
	l.sp.AddItems(l.windows)
	l.sp.End()
	l.sp = nil
	l.windows = 0
	l.s.p.harvest(l.ext)
}
