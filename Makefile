GO ?= go

.PHONY: build test bench bench-online bench-detect bench-fleet bench-stream bench-tenant check fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the online drift-recovery benchmark (results/BENCH_online.json).
bench-online:
	$(GO) run ./cmd/hdface-bench -exp onlinebench -out results

# Regenerate the detection sweep benchmark (results/BENCH_detect.json),
# including the fused zero-alloc scoring-kernel configs.
bench-detect:
	$(GO) run ./cmd/hdface-bench -exp detectbench -out results

# Regenerate the serving fleet benchmark (results/BENCH_fleet.json):
# scaling, availability under a killed replica, split-feedback merge.
bench-fleet:
	$(GO) run ./cmd/hdface-bench -exp fleetbench -out results

# Regenerate the streaming tracking benchmark (results/BENCH_stream.json):
# throughput, per-frame latency, identity F1 and the determinism gate.
bench-stream:
	$(GO) run ./cmd/hdface-bench -exp streambench -out results

# Regenerate the multi-tenant model store benchmark (results/BENCH_tenant.json):
# bytes/model, 1k-version open time, cold-materialize and hot-swap latency,
# steady-state serving over 100+ tenants, lazy-vs-eager byte identity.
bench-tenant:
	$(GO) run ./cmd/hdface-bench -exp tenantbench -out results

# Full hygiene gate: gofmt -l, go vet, go test -race (see scripts/check.sh).
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
