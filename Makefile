GO ?= go

.PHONY: build test bench check fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full hygiene gate: gofmt -l, go vet, go test -race (see scripts/check.sh).
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
