// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md's experiment index) plus the ablation benches it calls out.
// Absolute wall times here are Go-on-host numbers; the modelled embedded
// platform numbers come from cmd/hdface-bench -exp fig7.
package hdface_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	"hdface"
	"hdface/internal/cascade"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/experiments"
	"hdface/internal/hdhog"
	"hdface/internal/hdl"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/noise"
	"hdface/internal/stoch"
	"hdface/internal/track"
)

// benchImages renders a small balanced face/no-face batch.
func benchImages(n, size int) ([]*imgproc.Image, []int) {
	r := hv.NewRNG(1)
	imgs := make([]*imgproc.Image, n)
	labels := make([]int, n)
	for i := range imgs {
		if i%2 == 0 {
			imgs[i] = dataset.RenderFace(size, size, dataset.Emotion(r.Intn(7)), r)
			labels[i] = 1
		} else {
			imgs[i] = dataset.RenderNonFace(size, size, r)
		}
	}
	return imgs, labels
}

// BenchmarkFig2StochasticOps measures the three primitives Figure 2 sweeps
// at the paper's D = 4k.
func BenchmarkFig2StochasticOps(b *testing.B) {
	c := stoch.NewCodec(4096, 1)
	va, vb := c.Construct(0.4), c.Construct(-0.6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Construct(0.3)
		c.WeightedAvg(0.5, va, vb)
		c.Mul(va, vb)
	}
}

// BenchmarkTable1DatasetGen measures rendering one Table 1 style sample.
func BenchmarkTable1DatasetGen(b *testing.B) {
	r := hv.NewRNG(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dataset.RenderFace(48, 48, dataset.Happy, r)
	}
}

// BenchmarkFig4TrainStoch measures the stochastic-HOG pipeline's Fit on a
// small face/no-face batch — the HDFace column of Figure 4.
func BenchmarkFig4TrainStoch(b *testing.B) {
	imgs, labels := benchImages(8, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := hdface.New(hdface.Config{D: 2048, Seed: 3, Workers: 1})
		if err := p.Fit(imgs, labels, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4TrainOrig measures the original-space configuration (HOG +
// nonlinear encoder) — the comparison column of Figure 4.
func BenchmarkFig4TrainOrig(b *testing.B) {
	imgs, labels := benchImages(8, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := hdface.New(hdface.Config{D: 2048, Mode: hdface.ModeOrigHOG, Seed: 3, Workers: 1})
		if err := p.Fit(imgs, labels, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aFeatureByD measures hyperspace feature extraction across
// the Figure 5a dimensionality sweep.
func BenchmarkFig5aFeatureByD(b *testing.B) {
	imgs, _ := benchImages(1, 32)
	for _, d := range []int{1024, 4096, 10240} {
		b.Run(itoa(d), func(b *testing.B) {
			e := hdhog.New(stoch.NewCodec(d, 4), hdhog.Params{Stride: 1})
			e.WarmIDs(32, 32)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Feature(imgs[0])
			}
		})
	}
}

// BenchmarkFig5bDNNEpoch prices one DNN training epoch per hidden size via
// the real trainer (the Figure 5b x-axis).
func BenchmarkFig5bDNNEpoch(b *testing.B) {
	o := experiments.Options{Quick: true, Seed: 5, EmoTrain: 14, EmoTest: 7,
		FaceTrain: 4, FaceTest: 2, DNNEpochs: 1}
	for _, h := range []int{64, 256} {
		b.Run(itoa(h), func(b *testing.B) {
			oo := o
			oo.DNNHidden = []int{h}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig5bData(oo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Window measures classifying one sliding window — the unit
// of Figure 6's detection sweep.
func BenchmarkFig6Window(b *testing.B) {
	imgs, labels := benchImages(8, 48)
	p := hdface.New(hdface.Config{D: 2048, Seed: 6, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		b.Fatal(err)
	}
	window := imgs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(window)
	}
}

// BenchmarkFig7Model prices the Figure 7 hardware traces (the analytic
// model itself, not the workload).
func BenchmarkFig7Model(b *testing.B) {
	o := experiments.Options{Quick: true, Seed: 7, EmoTrain: 14, EmoTest: 7,
		FaceTrain: 4, FaceTest: 2, D: 1024, DNNEpochs: 1, Trials: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Data(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2NoiseSweep measures one fault-injection evaluation: flip
// bits in features and model, then re-evaluate (the Table 2 inner loop).
func BenchmarkTable2NoiseSweep(b *testing.B) {
	imgs, labels := benchImages(8, 32)
	p := hdface.New(hdface.Config{D: 2048, Seed: 8, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		b.Fatal(err)
	}
	feats := p.Features(imgs)
	inj := noise.New(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clones := make([]*hv.Vector, len(feats))
		for j, f := range feats {
			clones[j] = f.Clone()
		}
		inj.FlipVectors(clones, 0.04)
		p.Model().Accuracy(clones, labels)
	}
}

// BenchmarkAblationStride compares the paper's 3x3-cell gradient sampling
// against per-pixel gradients (DESIGN.md ablation).
func BenchmarkAblationStride(b *testing.B) {
	imgs, _ := benchImages(1, 32)
	for _, stride := range []int{1, 3} {
		b.Run(itoa(stride), func(b *testing.B) {
			e := hdhog.New(stoch.NewCodec(2048, 10), hdhog.Params{Stride: stride})
			e.WarmIDs(32, 32)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Feature(imgs[0])
			}
		})
	}
}

// BenchmarkAblationBundle compares value-weighted ID bundling against pure
// bind-and-bundle feature construction (DESIGN.md ablation).
func BenchmarkAblationBundle(b *testing.B) {
	imgs, _ := benchImages(1, 32)
	for _, bind := range []bool{false, true} {
		name := "weighted"
		if bind {
			name = "bind"
		}
		b.Run(name, func(b *testing.B) {
			e := hdhog.New(stoch.NewCodec(2048, 11), hdhog.Params{Stride: 3, BindBundle: bind})
			e.WarmIDs(32, 32)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Feature(imgs[0])
			}
		})
	}
}

// BenchmarkMotivationHOGShare runs the Section 2 motivation experiment.
func BenchmarkMotivationHOGShare(b *testing.B) {
	o := experiments.Options{Quick: true, Seed: 12, EmoTrain: 14, EmoTest: 7,
		FaceTrain: 4, FaceTest: 2, D: 1024, DNNEpochs: 1, Trials: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Motivation(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkCascadeVsHDFaceWindow compares per-window classification cost of
// the HAAR cascade baseline against the HDFace pipeline.
func BenchmarkCascadeVsHDFaceWindow(b *testing.B) {
	imgs, labels := benchImages(16, 24)
	det, err := cascade.Train(imgs, labels, 24, cascade.TrainOpts{})
	if err != nil {
		b.Fatal(err)
	}
	p := hdface.New(hdface.Config{D: 2048, WorkingSize: 24, Seed: 13, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		b.Fatal(err)
	}
	b.Run("cascade", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Classify(imgs[i%len(imgs)])
		}
	})
	b.Run("hdface", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Predict(imgs[i%len(imgs)])
		}
	})
}

// BenchmarkDetectRun measures a multi-scale sweep with a cheap scorer,
// isolating the pyramid/NMS driver overhead.
func BenchmarkDetectRun(b *testing.B) {
	imgs, _ := benchImages(1, 96)
	scorer := func(win *imgproc.Image) (bool, float64) {
		m := win.Mean()
		return m > 128, m
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := detect.Run(imgs[0], scorer, detect.Params{Win: 48, Stride: 24}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectSweep prices a full HDFace detection sweep on a 512x512
// scene at three pyramid scales — the workload the cell-grid engine
// exists for. "serial" is the legacy path (crop + full re-extraction per
// window through Pipeline.Feature); "cellgrid" reuses each level's cell
// hypervectors across windows on one worker; "cellgrid-wN" adds the
// worker pool.
func BenchmarkDetectSweep(b *testing.B) {
	imgs, labels := benchImages(16, 48)
	p := hdface.New(hdface.Config{D: 2048, Seed: 21, Workers: 1, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		b.Fatal(err)
	}
	scene := dataset.GenerateScene(512, 512, 48, 3, 22)
	params := detect.Params{Win: 48, Stride: 24, Scales: []float64{1, 1.5, 2}, NMSIoU: 0.3}
	model := p.Model()

	b.Run("serial", func(b *testing.B) {
		legacy := func(win *imgproc.Image) (bool, float64) {
			sc := model.Scores(p.Feature(win))
			return sc[1] > sc[0], sc[1] - sc[0]
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.Run(scene.Image, legacy, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	workerCounts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		name := "cellgrid"
		if workers > 1 {
			name = "cellgrid-w" + itoa(workers)
		}
		b.Run(name, func(b *testing.B) {
			scorer, err := p.DetectScorer(nil, 48)
			if err != nil {
				b.Fatal(err)
			}
			pp := params
			pp.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := detect.Sweep(context.Background(), scene.Image, scorer, pp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if runtime.NumCPU() < 4 {
		b.Log("host has fewer than 4 CPUs: the multi-worker sub-benchmark exercises the pool without wall-clock speedup")
	}
}

// BenchmarkTrackerStep measures one tracker frame with four detections.
func BenchmarkTrackerStep(b *testing.B) {
	r := hv.NewRNG(14)
	protos := make([]*hv.Vector, 4)
	for i := range protos {
		protos[i] = hv.NewRand(r, 2048)
	}
	tk := track.New(track.Config{MaxDist: 1e9}, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var dets []track.Detection
		for j, p := range protos {
			v := p.Clone()
			v.Xor(v, hv.NewRandBiased(r, 2048, 0.1))
			dets = append(dets, track.Detection{Box: [4]int{j * 60, 0, j*60 + 48, 48}, Feature: v})
		}
		tk.Step(dets)
	}
}

// BenchmarkHDLEval measures the gate-level evaluator on the Hamming unit —
// the functional-verification path of the Verilog generator.
func BenchmarkHDLEval(b *testing.B) {
	m := hdl.HammingDistance(64)
	in := map[string][]bool{"a": make([]bool, 64), "b": make([]bool, 64)}
	for i := 0; i < 64; i += 2 {
		in["a"][i] = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Eval(in, nil)
	}
}
