package hdface_test

import (
	"context"
	"reflect"
	"testing"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/obs"
)

// Handles to the detection scorer's grid-vs-fallback counters (NewCounter
// is idempotent by name, so these alias the ones detector.go registers).
var (
	gridWindowsCtr = obs.NewCounter("hdface_detect_grid_windows_total", "")
	fullWindowsCtr = obs.NewCounter("hdface_detect_full_extractions_total", "")
)

func trainedDetectPipeline(t *testing.T, d int) *hdface.Pipeline {
	t.Helper()
	imgs, labels := benchImages(12, 48)
	p := hdface.New(hdface.Config{D: d, Seed: 21, Workers: 1, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDetectScorerValidation(t *testing.T) {
	p := hdface.New(hdface.Config{D: 512, Seed: 1, Workers: 1})
	if _, err := p.DetectScorer(nil, 48); err == nil {
		t.Fatal("untrained pipeline should be rejected")
	}
	imgs, labels := benchImages(12, 32)
	// A 7-class emotion model is not a face/non-face detector.
	for i := range labels {
		labels[i] = i % 3
	}
	if err := p.Fit(imgs, labels, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DetectScorer(nil, 48); err == nil {
		t.Fatal("non-binary model should be rejected")
	}
	p2 := trainedDetectPipeline(t, 512)
	if _, err := p2.DetectScorer(nil, 0); err == nil {
		t.Fatal("non-positive window should be rejected")
	}
	if _, err := p2.DetectScorer(nil, 48); err != nil {
		t.Fatal(err)
	}
}

// TestFaceScorerSweepDeterministicAcrossWorkers is the tentpole's
// correctness contract: the parallel cell-grid sweep must produce
// byte-identical boxes for any worker count, including under the race
// detector (run this package with -race to exercise the 8-worker pool).
func TestFaceScorerSweepDeterministicAcrossWorkers(t *testing.T) {
	p := trainedDetectPipeline(t, 1024)
	scene := dataset.GenerateScene(128, 128, 48, 1, 33)
	params := detect.Params{Win: 48, Stride: 24, Scales: []float64{1, 2}, NMSIoU: 0.3}

	obs.Enable()
	defer obs.Disable()
	var ref []detect.Box
	for i, workers := range []int{1, 2, 8} {
		grid0, full0 := gridWindowsCtr.Value(), fullWindowsCtr.Value()
		scorer, err := p.DetectScorer(nil, 48)
		if err != nil {
			t.Fatal(err)
		}
		pp := params
		pp.Workers = workers
		boxes, stats, err := detect.Sweep(context.Background(), scene.Image, scorer, pp)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PreparedLevels != stats.Levels || stats.FallbackWindows != 0 {
			t.Fatalf("StochHOG levels should all be prepared: %+v", stats)
		}
		if grid, full := gridWindowsCtr.Value()-grid0, fullWindowsCtr.Value()-full0; grid != stats.Windows || full != 0 {
			t.Fatalf("48px windows on 8px cells should all ride the grid: grid=%d full=%d of %d", grid, full, stats.Windows)
		}
		if stats.Workers != workers {
			t.Fatalf("sweep clamped to %d workers, want %d", stats.Workers, workers)
		}
		if i == 0 {
			ref = boxes
			continue
		}
		if !reflect.DeepEqual(boxes, ref) {
			t.Fatalf("%d workers changed detections:\n got %+v\nwant %+v", workers, boxes, ref)
		}
	}
}

// TestFaceScorerFallbackWindows drives the off-lattice geometry: a window
// size that does not tile whole 8px cells cannot use the grid, so every
// window takes the full-extraction path — still deterministic in parallel.
func TestFaceScorerFallbackWindows(t *testing.T) {
	p := trainedDetectPipeline(t, 512)
	scene := dataset.GenerateScene(84, 84, 48, 1, 34)
	params := detect.Params{Win: 36, Stride: 24, Scales: []float64{1}, NMSIoU: 0.3}

	obs.Enable()
	defer obs.Disable()
	var ref []detect.Box
	for i, workers := range []int{1, 4} {
		grid0, full0 := gridWindowsCtr.Value(), fullWindowsCtr.Value()
		scorer, err := p.DetectScorer(nil, 36)
		if err != nil {
			t.Fatal(err)
		}
		pp := params
		pp.Workers = workers
		boxes, stats, err := detect.Sweep(context.Background(), scene.Image, scorer, pp)
		if err != nil {
			t.Fatal(err)
		}
		if grid, full := gridWindowsCtr.Value()-grid0, fullWindowsCtr.Value()-full0; grid != 0 || full != stats.Windows {
			t.Fatalf("36px windows should all take full extraction: grid=%d full=%d of %d", grid, full, stats.Windows)
		}
		if i == 0 {
			ref = boxes
			continue
		}
		if !reflect.DeepEqual(boxes, ref) {
			t.Fatalf("fallback path not deterministic across workers:\n got %+v\nwant %+v", boxes, ref)
		}
	}
}
