package hdface_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hdc"
)

// spliceConfig rewrites the config section of a valid snapshot with the gob
// encoding of cfg, keeping the magic and everything after the config blob —
// how a tampered or corrupted snapshot reaches the validation layer.
func spliceConfig(t *testing.T, snap []byte, cfg hdface.Config) []byte {
	t.Helper()
	const magicLen = 16
	oldLen := binary.LittleEndian.Uint32(snap[magicLen : magicLen+4])
	var cfgBuf bytes.Buffer
	if err := gob.NewEncoder(&cfgBuf).Encode(cfg); err != nil {
		t.Fatal(err)
	}
	out := append([]byte{}, snap[:magicLen]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(cfgBuf.Len()))
	out = append(out, cfgBuf.Bytes()...)
	return append(out, snap[magicLen+4+int(oldLen):]...)
}

// snapshotRoundTrip saves p and loads it back through the wire format.
func snapshotRoundTrip(t *testing.T, p *hdface.Pipeline) *hdface.Pipeline {
	t.Helper()
	var buf bytes.Buffer
	if err := p.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := hdface.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSnapshotRoundTripByteIdentical is the snapshot contract: a loaded
// pipeline must reproduce the saving pipeline's Predict and Scores outputs
// exactly (float-for-float), for every front-end mode, with parallel
// extraction. Run with -race to exercise the workers > 1 paths.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	train, labels := tinyFaceSet(24, 3)
	probes, _ := tinyFaceSet(8, 77)
	for _, mode := range []hdface.Mode{
		hdface.ModeStochHOG, hdface.ModeStochHAAR, hdface.ModeStochConv, hdface.ModeOrigHOG,
	} {
		cfg := hdface.Config{D: 1024, Mode: mode, Seed: 11, WorkingSize: 32, Workers: 2}
		p := hdface.New(cfg)
		if err := p.Fit(train, labels, 2); err != nil {
			t.Fatal(err)
		}
		q := snapshotRoundTrip(t, p)
		if !reflect.DeepEqual(q.Config(), p.Config()) {
			t.Fatalf("%v: config changed over the wire:\n got %+v\nwant %+v", mode, q.Config(), p.Config())
		}
		for i, img := range probes {
			ps, qs := p.Scores(img), q.Scores(img)
			if !reflect.DeepEqual(ps, qs) {
				t.Fatalf("%v: probe %d scores differ:\n got %v\nwant %v", mode, i, qs, ps)
			}
			if p.Predict(img) != q.Predict(img) {
				t.Fatalf("%v: probe %d prediction differs", mode, i)
			}
		}
		// The loaded pipeline's batch path must agree with the original's
		// single-image path regardless of worker count.
		q.SetWorkers(3)
		feats := q.Features(probes)
		for i, img := range probes {
			if !feats[i].Equal(p.Feature(img)) {
				t.Fatalf("%v: probe %d batch feature differs from original", mode, i)
			}
		}
	}
}

// TestSnapshotRoundTripDetect runs a full detection sweep on both sides of
// the wire and requires byte-identical boxes.
func TestSnapshotRoundTripDetect(t *testing.T) {
	p := trainedDetectPipeline(t, 1024)
	q := snapshotRoundTrip(t, p)
	scene := dataset.GenerateScene(128, 128, 48, 1, 33).Image
	params := detect.Params{Win: 48, Stride: 24, Scales: []float64{1, 2}, NMSIoU: 0.3, Workers: 2}
	sweep := func(pl *hdface.Pipeline) []detect.Box {
		scorer, err := pl.DetectScorer(nil, 48)
		if err != nil {
			t.Fatal(err)
		}
		boxes, _, err := detect.Sweep(context.Background(), scene, scorer, params)
		if err != nil {
			t.Fatal(err)
		}
		return boxes
	}
	want := sweep(p)
	if got := sweep(q); !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded pipeline detections differ:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotUntrained round-trips a pipeline snapshotted before Fit.
func TestSnapshotUntrained(t *testing.T) {
	p := hdface.New(hdface.Config{D: 512, Seed: 9, WorkingSize: 32})
	q := snapshotRoundTrip(t, p)
	if q.Model() != nil {
		t.Fatal("untrained snapshot grew a model")
	}
	imgs, _ := tinyFaceSet(2, 5)
	if !q.Feature(imgs[0]).Equal(p.Feature(imgs[0])) {
		t.Fatal("untrained loaded pipeline extracts differently")
	}
}

// TestSnapshotFileRoundTrip exercises the atomic file helpers.
func TestSnapshotFileRoundTrip(t *testing.T) {
	imgs, labels := tinyFaceSet(16, 4)
	p := hdface.New(hdface.Config{D: 512, Seed: 8, WorkingSize: 32, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.hdf"
	if err := p.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := hdface.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Predict(imgs[0]) != p.Predict(imgs[0]) {
		t.Fatal("file round trip changed prediction")
	}
}

// TestSnapshotRejectsHostileInput covers the validation layer: wrong magic,
// truncations, oversized config claims and out-of-range configs must all
// fail with errors, never panic or over-allocate.
func TestSnapshotRejectsHostileInput(t *testing.T) {
	imgs, labels := tinyFaceSet(16, 4)
	p := hdface.New(hdface.Config{D: 512, Seed: 8, WorkingSize: 32, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":            {},
		"wrong magic":      []byte("hdface-model/v9\n" + string(valid[16:])),
		"magic only":       valid[:16],
		"truncated config": valid[:24],
		"huge config len":  append(append([]byte{}, valid[:16]...), 0xff, 0xff, 0xff, 0xff),
		"zero config len":  append(append([]byte{}, valid[:16]...), 0, 0, 0, 0),
		"truncated model":  valid[:len(valid)-8],
	}
	for name, data := range cases {
		if _, err := hdface.LoadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Out-of-range configs must be rejected before they drive allocation.
	for name, cfg := range map[string]hdface.Config{
		"mode":         {D: 512, Mode: hdface.Mode(9), Workers: 1},
		"working size": {D: 512, WorkingSize: 1 << 20, Workers: 1},
		"workers":      {D: 512, Workers: 1 << 20},
		"stride":       {D: 512, Workers: 1, Stride: 1 << 16},
	} {
		bad := hdface.New(hdface.Config{D: 512, Workers: 1})
		var bb bytes.Buffer
		if err := bad.SaveSnapshot(&bb); err != nil {
			t.Fatal(err)
		}
		// Re-save with the hostile config by snapshotting a pipeline built
		// from it is impossible (New would normalise), so splice: encode a
		// fresh snapshot whose config section comes from the raw struct.
		spliced := spliceConfig(t, bb.Bytes(), cfg)
		if _, err := hdface.LoadSnapshot(bytes.NewReader(spliced)); err == nil {
			t.Errorf("config %s: accepted", name)
		} else if !strings.Contains(err.Error(), "snapshot config") {
			t.Errorf("config %s: error %q does not blame the config", name, err)
		}
	}

	// A model whose D disagrees with the config must be rejected.
	other := hdface.New(hdface.Config{D: 256, Seed: 8, WorkingSize: 32, Workers: 1})
	if err := other.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	var ob bytes.Buffer
	if err := other.SaveSnapshot(&ob); err != nil {
		t.Fatal(err)
	}
	mismatched := spliceConfig(t, ob.Bytes(), hdface.Config{D: 512, Workers: 1})
	if _, err := hdface.LoadSnapshot(bytes.NewReader(mismatched)); err == nil {
		t.Error("model/config D mismatch accepted")
	}
}

// TestSnapshotV2RoundTrip pins the compact container contract: the config
// survives exactly, the binarised class memory is bit-exact (so a fused
// Hamming detection sweep is byte-identical to the v1 float path), and the
// auto-sniffing decoder plus header peek handle both versions.
func TestSnapshotV2RoundTrip(t *testing.T) {
	p := trainedDetectPipeline(t, 1024)
	var v1, v2 bytes.Buffer
	if err := hdface.EncodeSnapshot(&v1, p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	if err := hdface.EncodeSnapshotV2(&v2, p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("compact snapshot %dB not smaller than v1 %dB", v2.Len(), v1.Len())
	}

	// Strict decoders refuse the other container version.
	if _, _, err := hdface.DecodeSnapshot(bytes.NewReader(v2.Bytes())); err == nil {
		t.Fatal("v1 decoder accepted a v2 blob")
	}
	if _, _, err := hdface.DecodeSnapshotV2(bytes.NewReader(v1.Bytes())); err == nil {
		t.Fatal("v2 decoder accepted a v1 blob")
	}

	cfgV1, mV1, err := hdface.DecodeSnapshotAuto(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfgV2, mV2, err := hdface.DecodeSnapshotAuto(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgV1, cfgV2) {
		t.Fatalf("configs diverge across container versions: %+v vs %+v", cfgV1, cfgV2)
	}
	for c := range mV1.Bin {
		if !reflect.DeepEqual(mV1.Bin[c].Words(), mV2.Bin[c].Words()) {
			t.Fatalf("class %d binarised memory not bit-exact across versions", c)
		}
	}

	// Header peek sees the config without touching the class memory.
	cfg, hasModel, compact, err := hdface.SnapshotInfo(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !hasModel || !compact || !reflect.DeepEqual(cfg, cfgV2) {
		t.Fatalf("SnapshotInfo(v2) = (%+v, %v, %v)", cfg, hasModel, compact)
	}
	if _, _, compact, err = hdface.SnapshotInfo(bytes.NewReader(v1.Bytes())); err != nil || compact {
		t.Fatalf("SnapshotInfo(v1): compact=%v err=%v", compact, err)
	}

	// The serving hot path (fused Hamming sweep) must be byte-identical
	// between an eager v1 load and a compact v2 load, at any worker count.
	scene := dataset.GenerateScene(128, 128, 48, 1, 34).Image
	sweep := func(m2 *hdc.Model, workers int) []detect.Box {
		scorer, err := p.DetectScorer(m2, 48)
		if err != nil {
			t.Fatal(err)
		}
		scorer.Hamming = true
		scorer.Fused = true
		params := detect.Params{Win: 48, Stride: 24, Scales: []float64{1, 2}, NMSIoU: 0.3, Workers: workers}
		boxes, _, err := detect.Sweep(context.Background(), scene, scorer, params)
		if err != nil {
			t.Fatal(err)
		}
		return boxes
	}
	want := sweep(mV1, 1)
	for _, workers := range []int{1, 2, 4} {
		if got := sweep(mV2, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: v2 sweep differs from v1:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}
