package hdface_test

import (
	"testing"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// tinyFaceSet renders a small binary face/no-face problem at 32x32.
func tinyFaceSet(n int, seed uint64) (imgs []*hdface.Image, labels []int) {
	r := hv.NewRNG(seed)
	for i := 0; i < n; i++ {
		if i%2 == 1 {
			imgs = append(imgs, dataset.RenderFace(32, 32, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(32, 32, r))
			labels = append(labels, 0)
		}
	}
	return
}

func TestConfigDefaults(t *testing.T) {
	p := hdface.New(hdface.Config{})
	cfg := p.Config()
	if cfg.D != 4096 || cfg.Workers < 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestModeString(t *testing.T) {
	if hdface.ModeStochHOG.String() != "HDFace+HoG+Learn" {
		t.Fatal("stoch mode name")
	}
	if hdface.ModeOrigHOG.String() != "HDFace+Learn" {
		t.Fatal("orig mode name")
	}
	if hdface.Mode(9).String() != "unknown" {
		t.Fatal("unknown mode name")
	}
}

func TestFitPredictStochHOG(t *testing.T) {
	imgs, labels := tinyFaceSet(40, 1)
	p := hdface.New(hdface.Config{D: 2048, Mode: hdface.ModeStochHOG, Seed: 2})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	if acc := p.Evaluate(imgs, labels); acc < 0.8 {
		t.Fatalf("train accuracy %v", acc)
	}
	testImgs, testLabels := tinyFaceSet(20, 99)
	if acc := p.Evaluate(testImgs, testLabels); acc < 0.7 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestFitPredictOrigHOG(t *testing.T) {
	imgs, labels := tinyFaceSet(40, 3)
	p := hdface.New(hdface.Config{D: 2048, Mode: hdface.ModeOrigHOG, Seed: 4})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	if acc := p.Evaluate(imgs, labels); acc < 0.85 {
		t.Fatalf("train accuracy %v", acc)
	}
	testImgs, testLabels := tinyFaceSet(20, 98)
	if acc := p.Evaluate(testImgs, testLabels); acc < 0.7 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestFitErrors(t *testing.T) {
	p := hdface.New(hdface.Config{D: 256})
	if err := p.Fit(nil, nil, 2); err == nil {
		t.Fatal("accepted empty training set")
	}
	imgs, _ := tinyFaceSet(4, 5)
	if err := p.Fit(imgs, []int{0}, 2); err == nil {
		t.Fatal("accepted mismatched labels")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	p := hdface.New(hdface.Config{D: 256})
	img := imgproc.NewImage(16, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Predict(img)
}

func TestWorkingSizeResizes(t *testing.T) {
	// Images of mixed sizes must be unified by WorkingSize.
	r := hv.NewRNG(6)
	imgs := []*hdface.Image{
		dataset.RenderFace(64, 64, dataset.Happy, r),
		dataset.RenderNonFace(48, 48, r),
		dataset.RenderFace(32, 32, dataset.Sad, r),
		dataset.RenderNonFace(64, 64, r),
	}
	labels := []int{1, 0, 1, 0}
	p := hdface.New(hdface.Config{D: 512, WorkingSize: 16, Seed: 7})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	// Must also accept a differently sized query.
	p.Predict(dataset.RenderFace(128, 128, dataset.Happy, r))
}

func TestScores(t *testing.T) {
	imgs, labels := tinyFaceSet(12, 8)
	p := hdface.New(hdface.Config{D: 512, Seed: 9})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	s := p.Scores(imgs[0])
	if len(s) != 2 {
		t.Fatalf("scores length %d", len(s))
	}
}

func TestFeaturesDeterministicAcrossRuns(t *testing.T) {
	imgs, labels := tinyFaceSet(8, 10)
	run := func() []int {
		p := hdface.New(hdface.Config{D: 512, Seed: 11})
		if err := p.Fit(imgs, labels, 2); err != nil {
			t.Fatal(err)
		}
		var preds []int
		for _, img := range imgs {
			preds = append(preds, p.Model().Predict(p.Feature(img)))
		}
		return preds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs across identical runs", i)
		}
	}
}

func TestWorkCountersAccumulateAndReset(t *testing.T) {
	imgs, labels := tinyFaceSet(6, 12)
	p := hdface.New(hdface.Config{D: 512, Seed: 13})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	w := p.Work()
	if (&w.Stoch).TotalWords() == 0 || w.Pixels == 0 {
		t.Fatalf("stoch work not recorded: %+v", w)
	}
	p.ResetWork()
	if func() bool { ws := p.Work(); return (&ws.Stoch).TotalWords() != 0 }() || p.Work().Pixels != 0 {
		t.Fatal("ResetWork incomplete")
	}

	po := hdface.New(hdface.Config{D: 512, Mode: hdface.ModeOrigHOG, Seed: 14})
	if err := po.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	wo := po.Work()
	if wo.HOG.Total() == 0 || wo.EncMACs == 0 {
		t.Fatalf("orig-mode work not recorded: %+v", wo)
	}
}

func TestFitFeaturesDirect(t *testing.T) {
	r := hv.NewRNG(15)
	var feats []*hv.Vector
	var labels []int
	protoA, protoB := hv.NewRand(r, 512), hv.NewRand(r, 512)
	for i := 0; i < 20; i++ {
		v := protoA.Clone()
		l := 0
		if i%2 == 1 {
			v = protoB.Clone()
			l = 1
		}
		v.Xor(v, hv.NewRandBiased(r, 512, 0.1))
		feats = append(feats, v)
		labels = append(labels, l)
	}
	p := hdface.New(hdface.Config{D: 512, Seed: 16})
	if err := p.FitFeatures(feats, labels, 2); err != nil {
		t.Fatal(err)
	}
	if p.Model().Accuracy(feats, labels) < 0.95 {
		t.Fatal("FitFeatures failed on trivial clusters")
	}
}

func TestFitPredictStochHAAR(t *testing.T) {
	imgs, labels := tinyFaceSet(30, 20)
	p := hdface.New(hdface.Config{D: 2048, Mode: hdface.ModeStochHAAR, WorkingSize: 24, Seed: 21})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	if acc := p.Evaluate(imgs, labels); acc < 0.75 {
		t.Fatalf("HAAR train accuracy %v", acc)
	}
	w := p.Work()
	if (&w.Stoch).TotalWords() == 0 || w.Pixels == 0 {
		t.Fatal("HAAR mode did not record work")
	}
}

func TestFitPredictStochConv(t *testing.T) {
	imgs, labels := tinyFaceSet(30, 22)
	p := hdface.New(hdface.Config{D: 2048, Mode: hdface.ModeStochConv, WorkingSize: 24, Seed: 23})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	if acc := p.Evaluate(imgs, labels); acc < 0.75 {
		t.Fatalf("Conv train accuracy %v", acc)
	}
	w := p.Work()
	if (&w.Stoch).TotalWords() == 0 || w.Pixels == 0 {
		t.Fatal("Conv mode did not record work")
	}
}

func TestAllModeNames(t *testing.T) {
	if hdface.ModeStochHAAR.String() != "HDFace+HAAR+Learn" ||
		hdface.ModeStochConv.String() != "HDFace+Conv+Learn" {
		t.Fatal("new mode names wrong")
	}
}

// TestFeaturePureFunctionOfImage pins the serving determinism contract:
// Feature is a pure function of (Config, image). The same image must map to
// the same hypervector whether it is extracted alone, inside any batch at
// any worker count, or after an arbitrary extraction history.
func TestFeaturePureFunctionOfImage(t *testing.T) {
	imgs, _ := tinyFaceSet(12, 7)
	for _, mode := range []hdface.Mode{
		hdface.ModeStochHOG, hdface.ModeStochHAAR, hdface.ModeStochConv, hdface.ModeOrigHOG,
	} {
		cfg := hdface.Config{D: 1024, Mode: mode, Seed: 5, WorkingSize: 32}
		// Reference: a fresh pipeline extracting each image in isolation.
		want := make([]*hv.Vector, len(imgs))
		for i, img := range imgs {
			want[i] = hdface.New(cfg).Feature(img)
		}
		// One pipeline extracting them in sequence must agree (no history
		// dependence).
		p := hdface.New(cfg)
		for i, img := range imgs {
			if got := p.Feature(img); !got.Equal(want[i]) {
				t.Fatalf("%v: sequential Feature(%d) differs from isolated", mode, i)
			}
		}
		// Batch extraction at several worker counts must agree too, and be
		// independent of batch composition (reversed order).
		for _, workers := range []int{1, 3} {
			cw := cfg
			cw.Workers = workers
			got := hdface.New(cw).Features(imgs)
			for i := range imgs {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%v workers=%d: Features[%d] differs from isolated", mode, workers, i)
				}
			}
			rev := make([]*hdface.Image, len(imgs))
			for i := range imgs {
				rev[i] = imgs[len(imgs)-1-i]
			}
			gotRev := hdface.New(cw).Features(rev)
			for i := range imgs {
				if !gotRev[len(imgs)-1-i].Equal(want[i]) {
					t.Fatalf("%v workers=%d: reversed batch changed Features[%d]", mode, workers, i)
				}
			}
		}
	}
}
