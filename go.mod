module hdface

go 1.22
