#!/bin/sh
# Repo-wide hygiene gate: formatting, vet, and the full test suite under
# the race detector. Run from anywhere; exits non-zero on first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race -shuffle=on =="
go test -race -shuffle=on ./...

echo "== resilience suite (race, bounded) =="
# The cancellation/panic/fault paths are the ones a flaky scheduler can
# wedge: bound them so a leaked goroutine fails fast instead of hanging CI.
go test -race -timeout 120s ./internal/detect ./internal/hdc ./internal/fault

echo "== detection sweep bench smoke =="
go test -run=XXX -bench=DetectSweep -benchtime=1x .

echo "== detect bench smoke (fused perf gate) =="
# The fused scoring kernel's contract is zero per-window allocations and a
# clear throughput lead over the two-pass cell-grid path. Regressions show
# up here as allocs/window above the pinned ceiling (8, vs ~0.003 today and
# ~2786 pre-fusion) or fused windows/sec dropping under 3x cellgrid's.
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp detectbench -quick -out "$out" >/dev/null
test -s "$out/BENCH_detect.json" || { echo "BENCH_detect.json missing" >&2; exit 1; }
awk '
    /"config":/   { cfg = $2; gsub(/[",]/, "", cfg) }
    /"windows_per_sec":/      { gsub(/,/, "", $2); wps[cfg] = $2 + 0 }
    /"allocs_per_window":/    { gsub(/,/, "", $2); apw[cfg] = $2 + 0 }
    END {
        if (!("fused" in apw) || !("cellgrid" in wps)) {
            print "detect bench missing fused/cellgrid configs" > "/dev/stderr"; exit 1
        }
        if (apw["fused"] > 8) {
            printf "fused allocs/window %.2f exceeds pinned ceiling 8\n", apw["fused"] > "/dev/stderr"; exit 1
        }
        if (wps["fused"] < 3 * wps["cellgrid"]) {
            printf "fused windows/sec %.0f below 3x cellgrid %.0f\n", wps["fused"], wps["cellgrid"] > "/dev/stderr"; exit 1
        }
    }
' "$out/BENCH_detect.json"
rm -rf "$out"

echo "== fault sweep smoke =="
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp faultsweep -quick -out "$out" >/dev/null
test -s "$out/BENCH_fault.json" || { echo "BENCH_fault.json missing" >&2; exit 1; }
rm -rf "$out"

echo "== serve bench smoke =="
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp servebench -quick -out "$out" >/dev/null
test -s "$out/BENCH_serve.json" || { echo "BENCH_serve.json missing" >&2; exit 1; }
rm -rf "$out"

echo "== online bench smoke =="
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp onlinebench -quick -out "$out" >/dev/null
test -s "$out/BENCH_online.json" || { echo "BENCH_online.json missing" >&2; exit 1; }
grep -q '"recovered_within_epsilon": true' "$out/BENCH_online.json" \
    || { echo "online bench did not recover from drift" >&2; exit 1; }
rm -rf "$out"

echo "== fleet bench smoke =="
# The fleet's two headline contracts: a killed replica costs zero client
# requests, and feedback split across replicas then merged by bundling
# matches a single trainer's accuracy within epsilon.
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp fleetbench -quick -out "$out" >/dev/null
test -s "$out/BENCH_fleet.json" || { echo "BENCH_fleet.json missing" >&2; exit 1; }
grep -q '"zero_failed": true' "$out/BENCH_fleet.json" \
    || { echo "fleet bench lost client requests during the kill run" >&2; exit 1; }
grep -q '"merge_matches_single": true' "$out/BENCH_fleet.json" \
    || { echo "fleet merge accuracy diverged from the single trainer" >&2; exit 1; }
rm -rf "$out"

echo "== stream bench smoke =="
# The streaming tracker's two headline contracts: replaying a stream
# assigns byte-identical track IDs, and identity F1 on the clean scenario
# clears 0.9.
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp streambench -quick -out "$out" >/dev/null
test -s "$out/BENCH_stream.json" || { echo "BENCH_stream.json missing" >&2; exit 1; }
grep -q '"deterministic": true' "$out/BENCH_stream.json" \
    || { echo "stream replays assigned different track IDs" >&2; exit 1; }
awk '
    /"name":/ { name = $2; gsub(/[",]/, "", name) }
    /"idf1":/ { gsub(/,/, "", $2); if (name == "clean") clean = $2 + 0 }
    END {
        if (clean == "") { print "clean scenario missing from BENCH_stream.json" > "/dev/stderr"; exit 1 }
        if (clean < 0.9) { printf "clean identity F1 %.3f below 0.9\n", clean > "/dev/stderr"; exit 1 }
    }
' "$out/BENCH_stream.json"
rm -rf "$out"

echo "== tenant bench smoke =="
# The compact store's two headline contracts: a resident model version
# costs at most 64KB at D=2048 (seeds-only snapshot — bases are
# rematerialized, never stored), and promoting a new version is
# sub-millisecond at p99 (one atomic pointer store plus a LIVE-file
# rename; scoring never waits). Byte identity pins the holographic claim:
# the lazily materialized compact blob scores bit-for-bit like the eager
# v1 float snapshot on the binary Hamming path.
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp tenantbench -quick -out "$out" >/dev/null
test -s "$out/BENCH_tenant.json" || { echo "BENCH_tenant.json missing" >&2; exit 1; }
grep -q '"lazy_eager_byte_identical": true' "$out/BENCH_tenant.json" \
    || { echo "lazy v2 materialization diverged from eager v1 decode" >&2; exit 1; }
awk '
    /"d":/               { gsub(/,/, "", $2); d = $2 + 0 }
    /"bytes_per_model":/ { gsub(/,/, "", $2); bpm = $2 + 0 }
    /"hot_swap_p99_ms":/ { gsub(/,/, "", $2); swap = $2 + 0 }
    END {
        if (d != 2048) { printf "tenant bench ran at D=%d, want 2048\n", d > "/dev/stderr"; exit 1 }
        if (bpm == 0 || bpm > 65536) {
            printf "bytes/model %d outside (0, 64KB] at D=2048\n", bpm > "/dev/stderr"; exit 1
        }
        if (swap == 0 || swap >= 1.0) {
            printf "hot-swap p99 %.3fms not sub-millisecond\n", swap > "/dev/stderr"; exit 1
        }
    }
' "$out/BENCH_tenant.json"
rm -rf "$out"

echo "== serve daemon smoke =="
# End-to-end over the real binary: train a tiny snapshot, boot the daemon on
# an ephemeral port, round-trip /predict and /metrics, then SIGTERM and
# require a clean drain.
out=$(mktemp -d)
go build -o "$out/hdface" ./cmd/hdface
(cd "$out" && ./hdface train -dataset face2 -d 512 -n 16 -test 8 \
    -model face.hdc -snapshot face.hdfs -seed 7 >/dev/null)
(cd "$out" && ./hdface scene -out probe.pgm -w 96 -h 96 -faces 1 >/dev/null)
"$out/hdface" serve -snapshot "$out/face.hdfs" -addr 127.0.0.1:0 \
    > "$out/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://||p' "$out/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$out/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve daemon never bound" >&2; cat "$out/serve.log" >&2; exit 1; }
curl -sf "http://$addr/healthz" | grep -q '"status":"ok"' || { echo "healthz failed" >&2; exit 1; }
curl -sf --data-binary @"$out/probe.pgm" "http://$addr/predict" | grep -q '"label"' \
    || { echo "predict failed" >&2; exit 1; }
curl -sf "http://$addr/metrics" | grep -q hdface_serve_predict_requests_total \
    || { echo "metrics failed" >&2; exit 1; }
# A deadline-degraded detection must leave an explanatory trace behind:
# retained by the error/degraded set, flagged degraded=true, and carrying
# a non-empty per-level span tree under detect_sweep.
degraded=$(curl -sf --data-binary @"$out/probe.pgm" "http://$addr/detect?deadline=1ns")
echo "$degraded" | grep -q '"degraded":true' \
    || { echo "1ns detect was not degraded: $degraded" >&2; exit 1; }
echo "$degraded" | grep -q '"trace_id":"' \
    || { echo "degraded detect reply missing trace_id: $degraded" >&2; exit 1; }
traces=$(curl -sf "http://$addr/debug/traces?filter=degraded&kind=detect")
echo "$traces" | grep -q '"schema":"hdface-trace/v1"' \
    || { echo "/debug/traces missing schema: $traces" >&2; exit 1; }
echo "$traces" | grep -q '"degraded":true' \
    || { echo "degraded detect trace not retained: $traces" >&2; exit 1; }
echo "$traces" | grep -q '"name":"detect_sweep"' \
    || { echo "degraded trace missing detect_sweep span: $traces" >&2; exit 1; }
echo "$traces" | grep -q '"name":"level"' \
    || { echo "degraded trace has an empty per-level span tree: $traces" >&2; exit 1; }
curl -sf "http://$addr/debug/slo" | grep -q '"schema":"hdface-slo/v1"' \
    || { echo "/debug/slo failed" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve daemon exited non-zero" >&2; cat "$out/serve.log" >&2; exit 1; }
grep -q "drained; bye" "$out/serve.log" || { echo "no clean drain" >&2; cat "$out/serve.log" >&2; exit 1; }
rm -rf "$out"

echo "== streaming daemon smoke =="
# End-to-end over the real binaries: a serve daemon fed an occlusion
# crossing by the real stream client. The stream must complete (20 frames,
# summary event) and some track must carry its identity across the
# crossing — a positive max_gap means it coasted the occlusion and was
# re-matched afterwards instead of being reborn under a new ID.
out=$(mktemp -d)
go build -o "$out/hdface" ./cmd/hdface
(cd "$out" && ./hdface train -dataset face2 -d 1024 -n 32 -test 8 \
    -model face.hdc -snapshot face.hdfs -seed 7 >/dev/null)
"$out/hdface" serve -snapshot "$out/face.hdfs" -addr 127.0.0.1:0 -stride 8 \
    > "$out/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://||p' "$out/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$out/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve daemon never bound" >&2; cat "$out/serve.log" >&2; exit 1; }
"$out/hdface" stream -addr "$addr" -scenario crossing -n 20 -seed 7 \
    > "$out/stream.ndjson" || { echo "stream client failed" >&2; exit 1; }
summary=$(tail -1 "$out/stream.ndjson")
echo "$summary" | grep -q '"schema":"hdface-stream/v1"' \
    || { echo "stream summary missing schema: $summary" >&2; exit 1; }
echo "$summary" | grep -q '"frames":20' \
    || { echo "stream did not process all 20 frames: $summary" >&2; exit 1; }
echo "$summary" | grep -q '"observations":20' \
    || { echo "no track persisted across every frame: $summary" >&2; exit 1; }
echo "$summary" | grep -q '"max_gap":[1-9]' \
    || { echo "no track survived the occlusion crossing: $summary" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve daemon exited non-zero" >&2; cat "$out/serve.log" >&2; exit 1; }
rm -rf "$out"

echo "== registry hot-swap smoke =="
# Boot the daemon against an on-disk registry: the snapshot is seeded as v1,
# the model-management endpoints answer, and the version survives a restart
# into the offline `models` subcommand.
out=$(mktemp -d)
go build -o "$out/hdface" ./cmd/hdface
(cd "$out" && ./hdface train -dataset face2 -d 512 -n 16 -test 8 \
    -model face.hdc -snapshot face.hdfs -seed 7 >/dev/null)
"$out/hdface" serve -snapshot "$out/face.hdfs" -addr 127.0.0.1:0 \
    -registry "$out/reg" -online > "$out/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://||p' "$out/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$out/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve daemon never bound" >&2; cat "$out/serve.log" >&2; exit 1; }
curl -sf "http://$addr/models" | grep -q '"live":1' \
    || { echo "registry did not seed v1 as live" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/models/promote?version=99")
[ "$code" = 404 ] || { echo "promote of unknown version returned $code, want 404" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/models/rollback")
[ "$code" = 409 ] || { echo "rollback with no history returned $code, want 409" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve daemon exited non-zero" >&2; cat "$out/serve.log" >&2; exit 1; }
"$out/hdface" models -registry "$out/reg" | grep -q '^\* v1$' \
    || { echo "persisted registry lost the live version" >&2; exit 1; }
# Offline v1 -> compact v2 migration: the daemon above persisted v1 float
# snapshots; -migrate-v2 must rewrite them in place, the registry must
# still load with the same live version, and a second run must be a no-op.
"$out/hdface" models -registry "$out/reg" -migrate-v2 \
    | grep -q 'migrated 1 version(s) to compact v2 (0 already compact)' \
    || { echo "v1->v2 migration did not convert the snapshot" >&2; exit 1; }
"$out/hdface" models -registry "$out/reg" | grep -q '^\* v1$' \
    || { echo "migrated registry lost the live version" >&2; exit 1; }
"$out/hdface" models -registry "$out/reg" -migrate-v2 \
    | grep -q 'migrated 0 version(s) to compact v2 (1 already compact)' \
    || { echo "v1->v2 migration was not idempotent" >&2; exit 1; }
rm -rf "$out"

echo "== fleet router smoke =="
# End-to-end over the real binaries: two delta-only replicas behind a
# router. Kill one replica with SIGKILL; the router must keep answering
# /predict (failover) while its /healthz reports degraded-but-serving.
out=$(mktemp -d)
go build -o "$out/hdface" ./cmd/hdface
(cd "$out" && ./hdface train -dataset face2 -d 512 -n 16 -test 8 \
    -model face.hdc -snapshot face.hdfs -seed 7 >/dev/null)
(cd "$out" && ./hdface scene -out probe.pgm -w 96 -h 96 -faces 1 >/dev/null)
wait_addr() { # logfile pattern -> echoes addr, empty on timeout
    for _ in $(seq 1 50); do
        a=$(sed -n "s|.*on http://||p" "$1")
        [ -n "$a" ] && { echo "$a"; return; }
        sleep 0.1
    done
}
"$out/hdface" serve -snapshot "$out/face.hdfs" -addr 127.0.0.1:0 \
    -delta-only -replica-id r0 > "$out/rep0.log" 2>&1 &
rep0_pid=$!
"$out/hdface" serve -snapshot "$out/face.hdfs" -addr 127.0.0.1:0 \
    -delta-only -replica-id r1 > "$out/rep1.log" 2>&1 &
rep1_pid=$!
addr0=$(wait_addr "$out/rep0.log"); addr1=$(wait_addr "$out/rep1.log")
[ -n "$addr0" ] && [ -n "$addr1" ] \
    || { echo "fleet replicas never bound" >&2; cat "$out"/rep*.log >&2; exit 1; }
"$out/hdface" route -replicas "http://$addr0,http://$addr1" -addr 127.0.0.1:0 \
    -probe-interval 50ms -merge-interval 1s > "$out/route.log" 2>&1 &
route_pid=$!
raddr=$(wait_addr "$out/route.log")
[ -n "$raddr" ] || { echo "router never bound" >&2; cat "$out/route.log" >&2; exit 1; }
curl -sf --data-binary @"$out/probe.pgm" "http://$raddr/predict" | grep -q '"label"' \
    || { echo "routed predict failed" >&2; exit 1; }
curl -sf "http://$raddr/healthz" | grep -q '"status":"ok"' \
    || { echo "router healthz not ok with both replicas up" >&2; exit 1; }
kill -9 "$rep0_pid"
degraded=""
for _ in $(seq 1 50); do
    if curl -s "http://$raddr/healthz" | grep -q '"status":"degraded"'; then
        degraded=yes; break
    fi
    sleep 0.1
done
[ -n "$degraded" ] || { echo "router never reported degraded after SIGKILL" >&2; exit 1; }
curl -sf --data-binary @"$out/probe.pgm" "http://$raddr/predict" | grep -q '"label"' \
    || { echo "routed predict failed after replica kill" >&2; exit 1; }
kill -TERM "$route_pid"
wait "$route_pid" || { echo "router exited non-zero" >&2; cat "$out/route.log" >&2; exit 1; }
grep -q "drained; bye" "$out/route.log" \
    || { echo "router did not drain cleanly" >&2; cat "$out/route.log" >&2; exit 1; }
kill -TERM "$rep1_pid" 2>/dev/null || true
wait "$rep1_pid" 2>/dev/null || true
rm -rf "$out"

echo "OK"
