#!/bin/sh
# Repo-wide hygiene gate: formatting, vet, and the full test suite under
# the race detector. Run from anywhere; exits non-zero on first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== detection sweep bench smoke =="
go test -run=XXX -bench=DetectSweep -benchtime=1x .

echo "OK"
