#!/bin/sh
# Repo-wide hygiene gate: formatting, vet, and the full test suite under
# the race detector. Run from anywhere; exits non-zero on first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== resilience suite (race, bounded) =="
# The cancellation/panic/fault paths are the ones a flaky scheduler can
# wedge: bound them so a leaked goroutine fails fast instead of hanging CI.
go test -race -timeout 120s ./internal/detect ./internal/hdc ./internal/fault

echo "== detection sweep bench smoke =="
go test -run=XXX -bench=DetectSweep -benchtime=1x .

echo "== fault sweep smoke =="
out=$(mktemp -d)
go run ./cmd/hdface-bench -exp faultsweep -quick -out "$out" >/dev/null
test -s "$out/BENCH_fault.json" || { echo "BENCH_fault.json missing" >&2; exit 1; }
rm -rf "$out"

echo "OK"
