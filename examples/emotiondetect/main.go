// Emotion detection example: the EMOTION workload of the paper (Table 1)
// end to end — train the hyperspace-HOG pipeline on seven synthetic facial
// expressions, report the per-class confusion matrix, and compare against
// the original-space configuration.
//
//	go run ./examples/emotiondetect
package main

import (
	"fmt"
	"log"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/metrics"
)

func main() {
	ds := dataset.Generate(dataset.SpecEmotion, 140, 70, 9)
	trainImgs := make([]*hdface.Image, len(ds.Train))
	trainLabels := make([]int, len(ds.Train))
	for i, s := range ds.Train {
		trainImgs[i], trainLabels[i] = s.Image, s.Label
	}

	for _, mode := range []hdface.Mode{hdface.ModeStochHOG, hdface.ModeOrigHOG} {
		p := hdface.New(hdface.Config{D: 4096, Mode: mode, Seed: 2})
		if err := p.Fit(trainImgs, trainLabels, ds.NumClasses); err != nil {
			log.Fatal(err)
		}
		cm := metrics.NewConfusion(ds.NumClasses)
		cm.Names = ds.ClassNames
		for _, s := range ds.Test {
			if err := cm.Observe(s.Label, p.Predict(s.Image)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("\n%s (D=%d): accuracy %.3f, macro-F1 %.3f\n",
			mode, p.Config().D, cm.Accuracy(), cm.MacroF1())
		fmt.Print(cm)
	}
}
