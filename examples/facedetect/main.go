// Face detection example: train both the HDFace pipeline and a classical
// Viola-Jones-style HAAR cascade on the same windows, slide both over a
// cluttered scene with hidden faces, and compare precision/recall. Writes a
// PGM overlay of the HDFace detections — the workflow behind the paper's
// Figure 6.
//
//	go run ./examples/facedetect
package main

import (
	"fmt"
	"log"

	"hdface"
	"hdface/internal/cascade"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/metrics"
)

const (
	win    = 48
	stride = 24
	dim    = 2048
)

func main() {
	// Shared training windows (faces include translation jitter so both
	// detectors fire on partially offset sliding windows).
	r := hv.NewRNG(11)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			face := dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r)
			canvas := dataset.RenderNonFace(2*win, 2*win, r)
			canvas.Blend(face, win/2+r.Intn(stride+1)-stride/2, win/2+r.Intn(stride+1)-stride/2, 1)
			imgs = append(imgs, canvas.Crop(win/2, win/2, win, win))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(win, win, r))
			labels = append(labels, 0)
		}
	}

	p := hdface.New(hdface.Config{D: dim, Seed: 3})
	fmt.Printf("training HDFace detector (D=%d) on %d windows...\n", dim, len(imgs))
	if err := p.Fit(imgs, labels, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("training HAAR cascade on the same windows...")
	vj, err := cascade.Train(imgs, labels, win, cascade.TrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(vj)

	// A scene with two faces hidden in clutter.
	scene := dataset.GenerateScene(4*win, 3*win, win, 2, 5)
	fmt.Printf("scene %dx%d, ground-truth faces at %v\n",
		scene.Image.W, scene.Image.H, scene.Faces)

	overlay := scene.Image.Clone()
	var hd, haar metrics.Detection
	for y := 0; y+win <= scene.Image.H; y += stride {
		for x := 0; x+win <= scene.Image.W; x += stride {
			window := scene.Image.Crop(x, y, win, win)
			truth := scene.InBox(x, y, x+win, y+win)
			hdHit := p.Predict(window) == 1
			hd.Observe(hdHit, truth)
			haar.Observe(vj.Classify(window), truth)
			if hdHit {
				overlay.StrokeRect(x, y, x+win, y+win, 255)
			}
		}
	}
	fmt.Printf("\nHDFace (holographic):  %s\n", &hd)
	fmt.Printf("HAAR cascade baseline: %s\n", &haar)

	const out = "facedetect_overlay.pgm"
	if err := overlay.SavePGM(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHDFace overlay written to %s (white boxes mark detections)\n", out)
}
