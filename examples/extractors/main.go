// Extractor-family example: the paper argues its stochastic arithmetic
// generalises beyond HOG to the other classic feature extractors (HAAR-like
// rectangles, convolution). This example trains the same face/no-face task
// through all four pipeline front-ends and compares accuracy and the
// hyperspace work each one performs.
//
//	go run ./examples/extractors
package main

import (
	"fmt"
	"log"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
)

func main() {
	const size = 24
	r := hv.NewRNG(31)
	var imgs []*hdface.Image
	var labels []int
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(size, size, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(size, size, r))
			labels = append(labels, 0)
		}
	}
	train, trainL := imgs[:40], labels[:40]
	test, testL := imgs[40:], labels[40:]

	modes := []hdface.Mode{
		hdface.ModeStochHOG,
		hdface.ModeStochHAAR,
		hdface.ModeStochConv,
		hdface.ModeOrigHOG,
	}
	fmt.Printf("%-20s %10s %12s %14s\n", "front-end", "accuracy", "fit time", "hyperspace ops")
	for _, mode := range modes {
		p := hdface.New(hdface.Config{D: 2048, Mode: mode, WorkingSize: size, Seed: 33})
		start := time.Now()
		if err := p.Fit(train, trainL, 2); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		acc := p.Evaluate(test, testL)
		w := p.Work()
		fmt.Printf("%-20s %10.3f %12v %14d\n",
			mode, acc, elapsed.Round(time.Millisecond), (&w.Stoch).TotalWords())
	}
	fmt.Println("\nall three hyperspace extractors reuse the same stochastic primitives:")
	fmt.Println("HOG needs square roots and tan comparisons, HAAR only weighted averages,")
	fmt.Println("convolution only constant-weight dot products")
}
