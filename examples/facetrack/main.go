// Face tracking example: the surveillance use case of the paper's
// introduction. A synthetic clip contains two faces moving through clutter;
// each frame's ground-truth windows are encoded with the hyperspace HOG
// front-end and fed to the holographic tracker, which keeps identities
// apart using appearance-hypervector similarity plus positional gating.
//
//	go run ./examples/facetrack
package main

import (
	"fmt"
	"log"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/track"
)

const (
	faceSize = 48
	frames   = 10
	subjects = 2
)

func main() {
	clip := dataset.GenerateSequence(4*faceSize, 3*faceSize, faceSize, frames, subjects, 41)
	fmt.Printf("clip: %d frames of %dx%d, %d subjects\n",
		len(clip), clip[0].Image.W, clip[0].Image.H, subjects)

	// The feature front-end: hyperspace HOG at D=2048 (no training needed;
	// the tracker compares raw feature hypervectors).
	p := hdface.New(hdface.Config{D: 2048, Seed: 5, WorkingSize: faceSize})
	tk := track.New(track.Config{MaxDist: float64(faceSize)}, 6)

	var truth track.GroundTruth
	for f, frame := range clip {
		var dets []track.Detection
		for _, box := range frame.Boxes {
			window := frame.Image.Crop(box[0], box[1], faceSize, faceSize)
			dets = append(dets, track.Detection{Box: box, Feature: p.Feature(window)})
		}
		tk.Step(dets)
		truth = append(truth, frame.Boxes)
		fmt.Printf("frame %2d: %d detections, %s\n", f, len(dets), tk)
	}

	fmt.Println()
	for _, tr := range tk.All() {
		fmt.Printf("track %d: %d observations, path", tr.ID, len(tr.Boxes))
		for i, b := range tr.Boxes {
			if i%3 == 0 {
				fmt.Printf(" (%d,%d)", b[0], b[1])
			}
		}
		fmt.Println()
	}
	rep := track.Evaluate(tk, truth, 0.5)
	fmt.Printf("\nCLEAR-MOT: %s\n", rep)
	if len(tk.Active()) == subjects {
		fmt.Printf("all %d identities maintained across %d frames\n", subjects, frames)
	} else {
		log.Printf("warning: %d active tracks for %d subjects", len(tk.Active()), subjects)
	}
}
