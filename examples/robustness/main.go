// Robustness example: the mechanism behind the paper's Table 2. A trained
// HDFace model and its hypervector features are subjected to increasing
// random bit-error rates and barely degrade, while the same error rate on
// IEEE-754 float HOG features destroys the original-space pipeline.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hog"
	"hdface/internal/hv"
	"hdface/internal/noise"
)

func main() {
	// A binary face/no-face problem keeps this example quick.
	r := hv.NewRNG(21)
	var imgs []*hdface.Image
	var labels []int
	for i := 0; i < 80; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(48, 48, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(48, 48, r))
			labels = append(labels, 0)
		}
	}
	train, trainL := imgs[:50], labels[:50]
	test, testL := imgs[50:], labels[50:]

	p := hdface.New(hdface.Config{D: 4096, Seed: 4})
	if err := p.Fit(train, trainL, 2); err != nil {
		log.Fatal(err)
	}
	feats := p.Features(test)
	model := p.Model()
	clean := model.Accuracy(feats, testL)
	fmt.Printf("clean accuracy (holographic pipeline): %.3f\n\n", clean)

	fmt.Printf("%-10s %22s %26s\n", "bit error", "HDFace accuracy", "float-HOG mean rel. error")
	for _, rate := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		inj := noise.New(100 + uint64(rate*1000))

		// Flip bits in the hypervector features and the model.
		noisyFeats := make([]*hv.Vector, len(feats))
		for i, f := range feats {
			noisyFeats[i] = f.Clone()
		}
		inj.FlipVectors(noisyFeats, rate)
		acc := model.Accuracy(noisyFeats, testL)

		// The same error rate on float HOG feature words.
		e := hog.New(hog.DefaultParams())
		x := e.Features(test[0])
		origCopy := append([]float64(nil), x...)
		inj.FlipFloats(x, rate)
		var rel float64
		n := 0
		for i := range x {
			if origCopy[i] != 0 {
				d := (x[i] - origCopy[i]) / origCopy[i]
				if d < 0 {
					d = -d
				}
				if d > 100 {
					d = 100 // cap blown-up exponents at 10000%
				}
				rel += d
				n++
			}
		}
		if n > 0 {
			rel /= float64(n)
		}
		fmt.Printf("%9.0f%% %22.3f %25.1f%%\n", rate*100, acc, rel*100)
	}
	fmt.Println("\nhypervectors are holographic: every bit carries equal, redundant weight,")
	fmt.Println("so random flips shave similarity margins instead of corrupting values")
}
