// Quickstart: train an HDFace emotion classifier on a small synthetic
// dataset and classify a few test images, printing per-class similarity
// scores. Demonstrates the three-line public API: New, Fit, Predict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hdface"
	"hdface/internal/dataset"
)

func main() {
	// Render a small FER-style emotion dataset (48x48, 7 classes).
	ds := dataset.Generate(dataset.SpecEmotion, 84, 21, 42)
	trainImgs := make([]*hdface.Image, len(ds.Train))
	trainLabels := make([]int, len(ds.Train))
	for i, s := range ds.Train {
		trainImgs[i], trainLabels[i] = s.Image, s.Label
	}

	// An HDFace pipeline: HOG computed entirely in hyperspace (stochastic
	// arithmetic over binary hypervectors), feeding the adaptive HDC
	// classifier. D=2048 keeps this example fast; the paper's sweet spot
	// is D=4096.
	p := hdface.New(hdface.Config{
		D:    2048,
		Mode: hdface.ModeStochHOG,
		Seed: 1,
	})
	fmt.Printf("training %s (D=%d) on %d images...\n",
		p.Config().Mode, p.Config().D, len(trainImgs))
	if err := p.Fit(trainImgs, trainLabels, ds.NumClasses); err != nil {
		log.Fatal(err)
	}

	correct := 0
	for i, s := range ds.Test {
		pred := p.Predict(s.Image)
		if pred == s.Label {
			correct++
		}
		if i < 5 {
			scores := p.Scores(s.Image)
			fmt.Printf("test %d: predicted %-9s truth %-9s (scores:", i,
				ds.ClassNames[pred], ds.ClassNames[s.Label])
			for c, sc := range scores {
				fmt.Printf(" %s=%.3f", ds.ClassNames[c][:2], sc)
			}
			fmt.Println(")")
		}
	}
	fmt.Printf("test accuracy: %.3f (%d/%d)\n",
		float64(correct)/float64(len(ds.Test)), correct, len(ds.Test))

	fmt.Printf("\na rendered %q sample:\n%s", ds.ClassNames[ds.Test[0].Label],
		ds.Test[0].Image.ASCII(48))
}
