package hdface_test

import (
	"fmt"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
)

// ExampleNew shows the minimal train-and-predict loop on a synthetic
// face/no-face problem.
func ExampleNew() {
	r := hv.NewRNG(7)
	var imgs []*hdface.Image
	var labels []int
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(32, 32, dataset.Happy, r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(32, 32, r))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: 1024, Seed: 1, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		fmt.Println("fit failed:", err)
		return
	}
	fmt.Println("prediction for a fresh face:", p.Predict(dataset.RenderFace(32, 32, dataset.Sad, r)))
	// Output:
	// prediction for a fresh face: 1
}

// ExampleMode lists the feature front-ends and their paper names.
func ExampleMode() {
	for _, m := range []hdface.Mode{
		hdface.ModeStochHOG, hdface.ModeOrigHOG,
		hdface.ModeStochHAAR, hdface.ModeStochConv,
	} {
		fmt.Println(m)
	}
	// Output:
	// HDFace+HoG+Learn
	// HDFace+Learn
	// HDFace+HAAR+Learn
	// HDFace+Conv+Learn
}

// ExampleConfig shows how defaults are filled.
func ExampleConfig() {
	p := hdface.New(hdface.Config{})
	cfg := p.Config()
	fmt.Println("D:", cfg.D)
	fmt.Println("stride:", cfg.Stride)
	// Output:
	// D: 4096
	// stride: 1
}
