// Package hdface is the public API of the HDFace reproduction: robust,
// efficient face and emotion detection with hyperdimensional computing
// (Imani et al., "Neural Computation for Robust and Holographic Face
// Detection", DAC 2022).
//
// A Pipeline bundles a feature front-end and the adaptive HDC classifier.
// Two front-ends correspond to the paper's configurations:
//
//   - ModeStochHOG ("HDFace+HoG+Learn"): HOG computed entirely in
//     hyperspace with stochastic arithmetic over binary hypervectors; the
//     extractor output is already a hypervector, so no encoder is needed
//     and the whole pipeline inherits holographic noise tolerance.
//   - ModeOrigHOG ("HDFace+Learn"): classical floating-point HOG on the
//     original representation, mapped to hyperspace with a nonlinear
//     random-projection encoder.
//
// Two further hyperspace front-ends generalise the framework to the other
// extractor families the paper names: ModeStochHAAR (rectangle features)
// and ModeStochConv (small-kernel convolution).
//
// Quickstart:
//
//	p := hdface.New(hdface.Config{D: 4096, Mode: hdface.ModeStochHOG})
//	p.Fit(trainImages, trainLabels, numClasses)
//	label := p.Predict(queryImage)
package hdface

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hdface/internal/encoder"
	"hdface/internal/haar"
	"hdface/internal/hdc"
	"hdface/internal/hdconv"
	"hdface/internal/hdhog"
	"hdface/internal/hog"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
	"hdface/internal/stoch"
)

// Pipeline-level observability: stage spans cover the coarse phases
// (extract, encode, fit, evaluate; internal/hdc adds hdc_bootstrap,
// hdc_adaptive and predict), while the worker gauge records the effective
// extraction parallelism. All of it is inert unless obs is enabled.
var (
	obsWorkers = obs.NewGauge("hdface_pipeline_workers", "configured feature-extraction parallelism")
	obsImages  = obs.NewCounter("hdface_pipeline_images_total", "images run through feature extraction")
	obsEncMACs = obs.NewCounter("hdface_pipeline_encoder_macs_total", "projection-encoder multiply-accumulates")
)

// Image is the grayscale raster type consumed by pipelines.
type Image = imgproc.Image

// Mode selects the feature front-end.
type Mode int

// Front-end modes.
const (
	// ModeStochHOG runs HOG in hyperspace (paper configuration 2).
	ModeStochHOG Mode = iota
	// ModeOrigHOG runs classical HOG plus a nonlinear encoder (paper
	// configuration 1).
	ModeOrigHOG
	// ModeStochHAAR runs HAAR-like rectangle features in hyperspace — the
	// second extractor family the paper's Section 2 names; rectangle
	// means are pure stochastic weighted averages.
	ModeStochHAAR
	// ModeStochConv runs a small-kernel convolution bank in hyperspace —
	// the third named family; responses are stochastic constant-weight
	// dot products.
	ModeStochConv
)

// String names the mode as the paper's Table 2 rows do.
func (m Mode) String() string {
	switch m {
	case ModeStochHOG:
		return "HDFace+HoG+Learn"
	case ModeOrigHOG:
		return "HDFace+Learn"
	case ModeStochHAAR:
		return "HDFace+HAAR+Learn"
	case ModeStochConv:
		return "HDFace+Conv+Learn"
	}
	return "unknown"
}

// Config configures a Pipeline.
type Config struct {
	// D is the hypervector dimensionality for both feature extraction and
	// learning (default 4096, the paper's best-tradeoff configuration).
	D int
	// Mode selects the front-end (default ModeStochHOG).
	Mode Mode
	// WorkingSize, when nonzero, bilinearly resizes every image to
	// WorkingSize x WorkingSize before feature extraction — how the
	// large-raster FACE1/FACE2 datasets are made tractable.
	WorkingSize int
	// Workers bounds feature-extraction parallelism (default NumCPU).
	Workers int
	// Seed drives every random choice; identical configs with identical
	// seeds produce identical models.
	Seed uint64
	// Train configures the HDC learner.
	Train hdc.TrainOpts
	// SqrtIterations overrides the stochastic square-root search depth.
	SqrtIterations int
	// Stride spaces the gradient sites of the hyperspace HOG. The default
	// 1 evaluates per-pixel gradients like classical HOG; 3 reproduces
	// the paper's one-gradient-per-3x3-cell variant at a ninth of the
	// cost (see the ablation benches).
	Stride int
}

func (c Config) withDefaults() Config {
	if c.D == 0 {
		c.D = 4096
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	return c
}

// Pipeline is a feature front-end plus an HDC classifier.
type Pipeline struct {
	cfg     Config
	codec   *stoch.Codec
	hdExt   *hdhog.Extractor
	haarExt *haar.HD
	convExt *hdconv.HD
	mu      sync.Mutex

	// ModeOrigHOG state; the encoder is created on the first image, when
	// the HOG feature length becomes known.
	hogParams hog.Params
	enc       *encoder.Projection

	model *hdc.Model

	// aggregated work counters for the hardware model
	stochStats stoch.Stats
	hogStats   hog.Stats
	encMACs    int64
	pixels     int64
}

// New builds a pipeline from the configuration.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	obsWorkers.Set(float64(cfg.Workers))
	p := &Pipeline{cfg: cfg, hogParams: hog.DefaultParams()}
	switch cfg.Mode {
	case ModeStochHOG, ModeStochHAAR, ModeStochConv:
		opts := []stoch.Option{}
		if cfg.SqrtIterations > 0 {
			opts = append(opts, stoch.WithSqrtIterations(cfg.SqrtIterations))
		}
		p.codec = stoch.NewCodec(cfg.D, cfg.Seed^0xcafe, opts...)
	}
	switch cfg.Mode {
	case ModeStochHOG:
		hp := hdhog.DefaultParams()
		hp.Stride = cfg.Stride
		p.hdExt = hdhog.New(p.codec, hp)
	case ModeStochHAAR:
		win := cfg.WorkingSize
		if win == 0 {
			win = 48
		}
		p.haarExt = haar.NewHD(p.codec, win)
	case ModeStochConv:
		p.convExt = hdconv.NewHD(p.codec, 8)
	}
	return p
}

// Config returns the effective (defaults-filled) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Model exposes the trained classifier (nil before Fit).
func (p *Pipeline) Model() *hdc.Model { return p.model }

// prepare resizes an image to the working size if configured.
func (p *Pipeline) prepare(img *Image) *Image {
	if p.cfg.WorkingSize > 0 && (img.W != p.cfg.WorkingSize || img.H != p.cfg.WorkingSize) {
		return img.Resize(p.cfg.WorkingSize, p.cfg.WorkingSize)
	}
	return img
}

// saltFeature decorrelates per-image reseed streams from every other
// consumer of cfg.Seed (codec, encoder, finalize, detection salts).
const saltFeature = 0xfea7

// featureSeed derives a deterministic reseed value for one prepared image:
// FNV-1a over the raster (dimensions then pixels) mixed with the pipeline
// seed. Reseeding the extractor with it before every extraction makes
// Feature a pure function of (Config, image) — independent of how many
// images the pipeline saw before, which worker handled it, or how requests
// were batched — the property that lets a serving daemon and a freshly
// loaded snapshot reproduce each other bit for bit.
func (p *Pipeline) featureSeed(img *Image) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(img.W)) * prime64
	h = (h ^ uint64(img.H)) * prime64
	for _, px := range img.Pix {
		h = (h ^ uint64(px)) * prime64
	}
	return hv.Mix64(p.cfg.Seed^saltFeature, h)
}

// ensureEncoder lazily builds the projection encoder for ModeOrigHOG.
func (p *Pipeline) ensureEncoder(img *Image) {
	if p.enc != nil {
		return
	}
	e := hog.New(p.hogParams)
	n := e.FeatureLen(img.W, img.H)
	p.enc = encoder.NewProjection(p.cfg.D, n, p.cfg.Seed^0xe0c0)
}

// Feature maps one image to its hypervector. For the stochastic front-ends
// the extractor is warmed (positional IDs pinned to the construction
// stream) and then reseeded from the image content, so the result is a pure
// function of (Config, image): the same image yields the same hypervector
// no matter what the pipeline extracted before. For varying geometries the
// guarantee requires IDs for that geometry to have been created in the same
// order; a fixed WorkingSize (the serving configuration) satisfies it
// unconditionally.
func (p *Pipeline) Feature(img *Image) *hv.Vector {
	sp := obs.StartSpan("extract")
	defer sp.End()
	sp.AddItems(1)
	obsImages.Inc()
	img = p.prepare(img)
	switch p.cfg.Mode {
	case ModeStochHOG:
		p.hdExt.WarmIDs(img.W, img.H)
		p.hdExt.Reseed(p.featureSeed(img))
		f := p.hdExt.Feature(img)
		p.harvest(p.hdExt)
		return f
	case ModeStochHAAR:
		p.haarExt.Reseed(p.featureSeed(img))
		f := p.haarExt.Feature(img)
		p.harvestCodec(p.haarExt.Pixels)
		p.haarExt.Pixels = 0
		return f
	case ModeStochConv:
		p.convExt.WarmIDs(img.W, img.H)
		p.convExt.Reseed(p.featureSeed(img))
		f := p.convExt.Feature(img)
		p.harvestCodec(p.convExt.Sites)
		p.convExt.Sites = 0
		return f
	default:
		p.ensureEncoder(img)
		e := hog.New(p.hogParams)
		feats := e.Features(img)
		p.hogStats.Add(e.Stats)
		v := p.encode(feats)
		return v
	}
}

// encode maps an original-space feature vector to hyperspace through the
// projection encoder, under its own stage span.
func (p *Pipeline) encode(feats []float64) *hv.Vector {
	sp := obs.StartSpan("encode")
	defer sp.End()
	sp.AddItems(1)
	v := p.enc.Encode(feats)
	macs := int64(p.enc.D()) * int64(p.enc.Features())
	p.mu.Lock()
	p.encMACs += macs
	p.mu.Unlock()
	obsEncMACs.Add(macs)
	return v
}

// harvest folds a (possibly forked) extractor's counters into the pipeline.
func (p *Pipeline) harvest(e *hdhog.Extractor) {
	p.mu.Lock()
	p.stochStats.Add(e.Codec().Stats)
	e.Codec().Stats = stoch.Stats{}
	p.pixels += e.Pixels
	e.Pixels = 0
	p.mu.Unlock()
}

// harvestCodec folds the shared codec's counters plus a site count into
// the pipeline (HAAR and convolution front-ends).
func (p *Pipeline) harvestCodec(sites int64) {
	p.mu.Lock()
	p.stochStats.Add(p.codec.Stats)
	p.codec.Stats = stoch.Stats{}
	p.pixels += sites
	p.mu.Unlock()
}

// Features maps a batch of images to hypervectors with Workers-way
// parallelism. Each image is extracted under its content-derived reseed
// (see Feature), so every element is a pure function of (Config, image):
// the output is independent of batch composition, ordering of other
// images, and worker count.
func (p *Pipeline) Features(imgs []*Image) []*hv.Vector {
	out, _ := p.FeaturesContext(context.Background(), imgs)
	return out
}

// cancelFlag mirrors ctx cancellation into an atomic flag worker loops can
// poll cheaply. The returned release function must be called (once the
// guarded work is done) so the watcher goroutine exits.
func cancelFlag(ctx context.Context) (*atomic.Bool, func()) {
	var stop atomic.Bool
	if ctx.Err() != nil {
		stop.Store(true)
	}
	done := ctx.Done()
	if done == nil {
		return &stop, func() {}
	}
	release := make(chan struct{})
	go func() {
		select {
		case <-done:
			stop.Store(true)
		case <-release:
		}
	}()
	var once sync.Once
	return &stop, func() { once.Do(func() { close(release) }) }
}

// FeaturesContext is Features under a context: extraction workers check
// the context between images and stop early when it is cancelled or its
// deadline expires, in which case the error is ctx.Err() and the feature
// slice is nil — unlike a degraded detection sweep, a training batch with
// holes is useless, so partial extraction is an error, not a result.
func (p *Pipeline) FeaturesContext(ctx context.Context, imgs []*Image) ([]*hv.Vector, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]*hv.Vector, len(imgs))
	if len(imgs) == 0 {
		return out, ctx.Err()
	}
	sp := obs.StartSpan("extract_batch")
	defer sp.End()
	sp.AddItems(int64(len(imgs)))
	workers := p.cfg.Workers
	if workers > len(imgs) {
		workers = len(imgs)
	}
	stop, release := cancelFlag(ctx)
	defer release()
	switch p.cfg.Mode {
	case ModeStochHOG:
		obsImages.Add(int64(len(imgs)))
		// Pre-warm positional IDs so forks never mutate shared state.
		probe := p.prepare(imgs[0])
		p.hdExt.WarmIDs(probe.W, probe.H)
		// Fork every worker's extractor before launching any goroutine:
		// Fork draws from the parent RNG, so it must not overlap with
		// worker 0 mutating the parent.
		exts := make([]*hdhog.Extractor, workers)
		exts[0] = p.hdExt
		for w := 1; w < workers; w++ {
			exts[w] = p.hdExt.Fork()
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, ext *hdhog.Extractor) {
				defer wg.Done()
				for i := w; i < len(imgs); i += workers {
					if stop.Load() {
						break
					}
					img := p.prepare(imgs[i])
					ext.Reseed(p.featureSeed(img))
					out[i] = ext.Feature(img)
				}
				p.harvest(ext)
			}(w, exts[w])
		}
		wg.Wait()
	case ModeStochHAAR, ModeStochConv:
		// These extractors share one codec; run sequentially.
		for i, img := range imgs {
			if stop.Load() {
				break
			}
			out[i] = p.Feature(img)
		}
	default:
		// ModeOrigHOG: encoder is shared read-only after creation.
		obsImages.Add(int64(len(imgs)))
		p.ensureEncoder(p.prepare(imgs[0]))
		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e := hog.New(p.hogParams)
				for i := w; i < len(imgs); i += workers {
					if stop.Load() {
						break
					}
					img := p.prepare(imgs[i])
					feats := e.Features(img)
					out[i] = p.encode(feats)
				}
				mu.Lock()
				p.hogStats.Add(e.Stats)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fit extracts features for the labelled images and trains the classifier.
func (p *Pipeline) Fit(imgs []*Image, labels []int, numClasses int) error {
	return p.FitContext(context.Background(), imgs, labels, numClasses)
}

// FitContext is Fit under a context: cancellation aborts between feature
// extraction batches and before training, leaving the previous model (if
// any) untouched.
func (p *Pipeline) FitContext(ctx context.Context, imgs []*Image, labels []int, numClasses int) error {
	if len(imgs) == 0 || len(imgs) != len(labels) {
		return fmt.Errorf("hdface: %d images vs %d labels", len(imgs), len(labels))
	}
	sp := obs.StartSpan("fit")
	defer sp.End()
	sp.AddItems(int64(len(imgs)))
	feats, err := p.FeaturesContext(ctx, imgs)
	if err != nil {
		return err
	}
	opts := p.cfg.Train
	if opts.Seed == 0 {
		opts.Seed = p.cfg.Seed
	}
	m, err := hdc.Train(feats, labels, numClasses, opts)
	if err != nil {
		return err
	}
	m.Finalize(p.cfg.Seed ^ 0xf1a1)
	p.model = m
	return nil
}

// FitFeatures trains directly on precomputed hypervector features.
func (p *Pipeline) FitFeatures(feats []*hv.Vector, labels []int, numClasses int) error {
	opts := p.cfg.Train
	if opts.Seed == 0 {
		opts.Seed = p.cfg.Seed
	}
	m, err := hdc.Train(feats, labels, numClasses, opts)
	if err != nil {
		return err
	}
	m.Finalize(p.cfg.Seed ^ 0xf1a1)
	p.model = m
	return nil
}

// SetModel rebinds the pipeline to an externally trained (or registry
// loaded) model. The model must match the pipeline's dimensionality; the
// hypervector bases stay untouched, so features extracted before and
// after the swap are identical.
func (p *Pipeline) SetModel(m *hdc.Model) error {
	if m == nil {
		return fmt.Errorf("hdface: SetModel: nil model")
	}
	if m.D != p.cfg.D {
		return fmt.Errorf("hdface: SetModel: model D=%d, pipeline D=%d", m.D, p.cfg.D)
	}
	p.model = m
	return nil
}

// Predict classifies one image. It panics if Fit has not run.
func (p *Pipeline) Predict(img *Image) int {
	if p.model == nil {
		panic("hdface: Predict before Fit")
	}
	return p.model.Predict(p.Feature(img))
}

// Scores returns per-class similarities for one image.
func (p *Pipeline) Scores(img *Image) []float64 {
	if p.model == nil {
		panic("hdface: Scores before Fit")
	}
	return p.model.Scores(p.Feature(img))
}

// Evaluate returns accuracy over a labelled test set, extracting features
// in parallel.
func (p *Pipeline) Evaluate(imgs []*Image, labels []int) float64 {
	if p.model == nil {
		panic("hdface: Evaluate before Fit")
	}
	if len(imgs) == 0 {
		return 0
	}
	sp := obs.StartSpan("evaluate")
	defer sp.End()
	sp.AddItems(int64(len(imgs)))
	feats := p.Features(imgs)
	return p.model.Accuracy(feats, labels)
}

// WorkStats summarises the computational work the pipeline has performed,
// for the hardware model.
type WorkStats struct {
	Stoch   stoch.Stats
	HOG     hog.Stats
	EncMACs int64
	Pixels  int64
}

// Work returns a snapshot of the pipeline's aggregated work counters.
func (p *Pipeline) Work() WorkStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return WorkStats{Stoch: p.stochStats, HOG: p.hogStats, EncMACs: p.encMACs, Pixels: p.pixels}
}

// ResetWork clears the aggregated work counters (e.g. to separate the
// training phase from inference when building hardware traces).
func (p *Pipeline) ResetWork() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stochStats = stoch.Stats{}
	p.hogStats = hog.Stats{}
	p.encMACs = 0
	p.pixels = 0
}
