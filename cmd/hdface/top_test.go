package main

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseMetrics(t *testing.T) {
	text := `# HELP hdface_serve_predict_requests_total accepted /predict requests
# TYPE hdface_serve_predict_requests_total counter
hdface_serve_predict_requests_total 42
hdface_slo_burn_rate{slo="predict"} 1.5
go_heap_inuse_bytes 1.048576e+06

malformed line without value
`
	m := parseMetrics(text)
	if m["hdface_serve_predict_requests_total"] != 42 {
		t.Fatalf("counter = %v", m["hdface_serve_predict_requests_total"])
	}
	if m[`hdface_slo_burn_rate{slo="predict"}`] != 1.5 {
		t.Fatalf("labelled series = %v", m[`hdface_slo_burn_rate{slo="predict"}`])
	}
	if m["go_heap_inuse_bytes"] != 1048576 {
		t.Fatalf("scientific notation = %v", m["go_heap_inuse_bytes"])
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d series, want 3: %v", len(m), m)
	}
}

// TestTopFrame renders two frames against a stub daemon and checks the
// view carries the numbers an operator needs: rates from counter deltas,
// windowed quantiles, SLO burn, batch occupancy and the live version.
func TestTopFrame(t *testing.T) {
	predicts := 0.0
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		predicts += 10
		writeLines(w,
			"hdface_serve_predict_requests_total "+strconv.FormatFloat(predicts, 'g', -1, 64),
			"hdface_serve_detect_requests_total 3",
			"hdface_serve_batches_total 4",
			"hdface_serve_batched_images_total 14",
			"hdface_serve_queue_depth 2",
			"hdface_registry_live_version 7",
			"hdface_online_drift_events_total 1",
			"go_goroutines 12",
			"go_heap_inuse_bytes 2097152",
		)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"schema":"hdface-slo/v1","slos":{` +
			`"predict":{"name":"predict","target_seconds":0.25,"objective":0.99,` +
			`"window_seconds":60,"total":40,"good":39,"bad":1,"compliance":0.975,` +
			`"error_budget":0.01,"budget_used":2.5,"burn_rate":2.5}},` +
			`"quantiles":{"hdface_serve_request_seconds_window":` +
			`{"window_seconds":60,"count":40,"p50":0.002,"p90":0.004,"p95":0.005,"p99":0.009}}}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tv := &topView{base: ts.URL, client: ts.Client()}
	var first strings.Builder
	if err := tv.frame(&first, false); err != nil {
		t.Fatal(err)
	}
	// Rates need a previous sample; the first frame reads zero.
	if !strings.Contains(first.String(), "predict    0.0/s") {
		t.Fatalf("first frame should show zero rates:\n%s", first.String())
	}

	tv.prevAt = tv.prevAt.Add(-time.Second) // pretend one second passed
	var second strings.Builder
	if err := tv.frame(&second, false); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	for _, want := range []string{
		"predict   10.0/s", // 10 more requests over ~1s
		"p99 9.0ms",
		"burn 2.50",
		"compliance 97.50%",
		"occupancy 3.5 img/batch",
		"queue depth 2",
		"live v7",
		"drift events 1",
		"goroutines 12",
		"heap 2.0MiB",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
}

func writeLines(w http.ResponseWriter, lines ...string) {
	for _, l := range lines {
		w.Write([]byte(l + "\n"))
	}
}
