// Command hdface trains, evaluates and applies HDFace models.
//
//	hdface train  -dataset emotion -d 4096 -model emotion.hdc
//	hdface eval   -dataset emotion -model emotion.hdc
//	hdface detect -scene scene.pgm -model face.hdc -out overlay.pgm
//	hdface scene  -out scene.pgm            # render a test scene
//	hdface serve  -snapshot face.hdfs -addr :8466
//	hdface stream -addr localhost:8466 -scenario crossing -n 20
//	hdface route  -replicas http://h1:8466,http://h2:8466 -addr :8465
//	hdface top    -addr localhost:8466
//	hdface models -registry models/ [-promote N | -rollback]
//
// Models are serialised HDC classifiers; pipeline snapshots (train
// -snapshot) additionally carry the full configuration so a daemon can
// rematerialise the front-end; datasets are generated synthetically (see
// DESIGN.md for the substitution rationale).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs/trace"
	"hdface/internal/obscli"
	"hdface/internal/online"
	"hdface/internal/registry"
	"hdface/internal/serve"
	"hdface/internal/tenant"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdface:", err)
	os.Exit(1)
}

func specFor(name string) (dataset.Spec, error) {
	switch strings.ToLower(name) {
	case "emotion":
		return dataset.SpecEmotion, nil
	case "face1":
		return dataset.SpecFace1, nil
	case "face2":
		return dataset.SpecFace2, nil
	}
	return dataset.Spec{}, fmt.Errorf("unknown dataset %q (emotion, face1, face2)", name)
}

// buildPipeline assembles the pipeline used by train/eval/detect so the
// three subcommands agree on configuration.
func buildPipeline(d, workingSize, workers int, mode string, seed uint64) (*hdface.Pipeline, error) {
	var m hdface.Mode
	switch strings.ToLower(mode) {
	case "stoch", "":
		m = hdface.ModeStochHOG
	case "orig":
		m = hdface.ModeOrigHOG
	case "haar":
		m = hdface.ModeStochHAAR
	case "conv":
		m = hdface.ModeStochConv
	default:
		return nil, fmt.Errorf("unknown mode %q (stoch, orig, haar, conv)", mode)
	}
	if workers < 1 {
		return nil, fmt.Errorf("-workers %d must be positive (default: all %d CPUs)", workers, runtime.NumCPU())
	}
	return hdface.New(hdface.Config{D: d, Mode: m, WorkingSize: workingSize, Seed: seed, Workers: workers}), nil
}

// workersFlag installs the shared -workers flag (satellite of the obs PR:
// the CLI used to hard-code Workers: 1, leaving the pipeline's parallelism
// unused).
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", runtime.NumCPU(), "feature-extraction parallelism")
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dsName := fs.String("dataset", "emotion", "dataset to generate (emotion, face1, face2)")
	d := fs.Int("d", 4096, "hypervector dimensionality")
	mode := fs.String("mode", "stoch", "feature mode (stoch, orig)")
	trainN := fs.Int("n", 140, "training samples to render")
	testN := fs.Int("test", 70, "test samples to render")
	workingSize := fs.Int("size", 48, "working raster size")
	seed := fs.Uint64("seed", 7, "random seed")
	modelPath := fs.String("model", "model.hdc", "output model path")
	snapPath := fs.String("snapshot", "", "also write a pipeline snapshot (config + model) for the serve subcommand")
	featPath := fs.String("features", "", "train from a feature cache written by the features subcommand (skips rendering and extraction)")
	k := fs.Int("k", 0, "class count when training from a feature cache (0 = infer from labels)")
	workers := workersFlag(fs)
	of := obscli.Register(fs)
	fs.Parse(args)
	of.Activate(map[string]string{
		"cmd": "train", "dataset": *dsName, "mode": *mode,
		"d": strconv.Itoa(*d), "seed": strconv.FormatUint(*seed, 10),
	})

	if *featPath != "" {
		if err := trainFromCache(*featPath, *modelPath, *k, *seed); err != nil {
			return err
		}
		return of.Finish()
	}

	spec, err := specFor(*dsName)
	if err != nil {
		return err
	}
	if spec.ImageSize > 128 {
		spec.ImageSize = 128 // render large-raster corpora at a tractable size
	}
	ds := dataset.Generate(spec, *trainN, *testN, *seed)
	imgs := make([]*hdface.Image, len(ds.Train))
	labels := make([]int, len(ds.Train))
	for i, s := range ds.Train {
		imgs[i], labels[i] = s.Image, s.Label
	}
	p, err := buildPipeline(*d, *workingSize, *workers, *mode, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("training %s on %s (%d samples, D=%d, %s)\n",
		*modelPath, ds.Name, len(imgs), *d, hdface.ModeStochHOG)
	if err := p.Fit(imgs, labels, ds.NumClasses); err != nil {
		return err
	}
	testImgs := make([]*hdface.Image, len(ds.Test))
	testLabels := make([]int, len(ds.Test))
	for i, s := range ds.Test {
		testImgs[i], testLabels[i] = s.Image, s.Label
	}
	fmt.Printf("test accuracy: %.3f\n", p.Evaluate(testImgs, testLabels))

	f, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	if err := p.Model().Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *snapPath != "" {
		if err := p.SaveSnapshotFile(*snapPath); err != nil {
			return err
		}
		fmt.Printf("pipeline snapshot written to %s\n", *snapPath)
	}
	return of.Finish()
}

// trainFromCache trains a classifier directly on cached hypervector
// features.
func trainFromCache(featPath, modelPath string, k int, seed uint64) error {
	f, err := os.Open(featPath)
	if err != nil {
		return err
	}
	feats, labels, err := hv.ReadSet(f)
	f.Close()
	if err != nil {
		return err
	}
	if k == 0 {
		for _, l := range labels {
			if l+1 > k {
				k = l + 1
			}
		}
	}
	if k < 2 {
		return fmt.Errorf("inferred class count %d; pass -k", k)
	}
	model, err := hdc.Train(feats, labels, k, hdc.TrainOpts{Seed: seed})
	if err != nil {
		return err
	}
	model.Finalize(seed)
	fmt.Printf("trained on %d cached features (D=%d, k=%d); train accuracy %.3f\n",
		len(feats), model.D, k, model.Accuracy(feats, labels))
	out, err := os.Create(modelPath)
	if err != nil {
		return err
	}
	defer out.Close()
	return model.Save(out)
}

// cmdFeatures extracts hypervector features for a generated dataset and
// writes them to a cache file, so repeated training runs skip the
// (dominant) extraction cost.
func cmdFeatures(args []string) error {
	fs := flag.NewFlagSet("features", flag.ExitOnError)
	dsName := fs.String("dataset", "emotion", "dataset to generate")
	d := fs.Int("d", 4096, "hypervector dimensionality")
	mode := fs.String("mode", "stoch", "feature mode (stoch, orig)")
	n := fs.Int("n", 140, "samples to render")
	workingSize := fs.Int("size", 48, "working raster size")
	seed := fs.Uint64("seed", 7, "random seed")
	out := fs.String("out", "features.hvf", "output cache path")
	workers := workersFlag(fs)
	of := obscli.Register(fs)
	fs.Parse(args)
	of.Activate(map[string]string{
		"cmd": "features", "dataset": *dsName, "mode": *mode,
		"d": strconv.Itoa(*d), "seed": strconv.FormatUint(*seed, 10),
	})

	spec, err := specFor(*dsName)
	if err != nil {
		return err
	}
	if spec.ImageSize > 128 {
		spec.ImageSize = 128
	}
	ds := dataset.Generate(spec, *n, 0, *seed)
	imgs := make([]*hdface.Image, len(ds.Train))
	labels := make([]int, len(ds.Train))
	for i, s := range ds.Train {
		imgs[i], labels[i] = s.Image, s.Label
	}
	p, err := buildPipeline(*d, *workingSize, *workers, *mode, *seed)
	if err != nil {
		return err
	}
	feats := p.Features(imgs)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := hv.WriteSet(f, feats, labels); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%d features (D=%d) cached to %s\n", len(feats), *d, *out)
	return of.Finish()
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dsName := fs.String("dataset", "emotion", "dataset to generate")
	d := fs.Int("d", 4096, "hypervector dimensionality (must match training)")
	mode := fs.String("mode", "stoch", "feature mode (must match training)")
	testN := fs.Int("n", 70, "test samples")
	workingSize := fs.Int("size", 48, "working raster size")
	seed := fs.Uint64("seed", 7, "random seed (must match training for feature compatibility)")
	modelPath := fs.String("model", "model.hdc", "model path")
	workers := workersFlag(fs)
	of := obscli.Register(fs)
	fs.Parse(args)
	of.Activate(map[string]string{
		"cmd": "eval", "dataset": *dsName, "mode": *mode,
		"d": strconv.Itoa(*d), "seed": strconv.FormatUint(*seed, 10),
	})

	spec, err := specFor(*dsName)
	if err != nil {
		return err
	}
	if spec.ImageSize > 128 {
		spec.ImageSize = 128
	}
	ds := dataset.Generate(spec, 0, *testN, *seed+1)
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := hdc.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	p, err := buildPipeline(*d, *workingSize, *workers, *mode, *seed)
	if err != nil {
		return err
	}
	correct := 0
	for _, s := range ds.Test {
		if model.Predict(p.Feature(s.Image)) == s.Label {
			correct++
		}
	}
	fmt.Printf("accuracy on %d fresh %s samples: %.3f\n",
		len(ds.Test), ds.Name, float64(correct)/float64(len(ds.Test)))
	return of.Finish()
}

func cmdScene(args []string) error {
	fs := flag.NewFlagSet("scene", flag.ExitOnError)
	out := fs.String("out", "scene.pgm", "output PGM path")
	w := fs.Int("w", 192, "scene width")
	h := fs.Int("h", 144, "scene height")
	faces := fs.Int("faces", 2, "faces to place")
	seed := fs.Uint64("seed", 7, "random seed")
	fs.Parse(args)
	sc := dataset.GenerateScene(*w, *h, 48, *faces, *seed)
	fmt.Printf("scene with %d faces at %v\n", len(sc.Faces), sc.Faces)
	return sc.Image.SavePGM(*out)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	scenePath := fs.String("scene", "scene.pgm", "input scene PGM")
	modelPath := fs.String("model", "model.hdc", "binary face model (train with -dataset face2)")
	out := fs.String("out", "overlay.pgm", "output overlay PGM")
	d := fs.Int("d", 4096, "hypervector dimensionality (must match training)")
	mode := fs.String("mode", "stoch", "feature mode (must match training)")
	win := fs.Int("win", 48, "window size")
	stride := fs.Int("stride", 24, "window stride")
	scales := fs.String("scales", "1,1.5,2", "comma-separated pyramid scales")
	nms := fs.Float64("nms", 0.3, "non-maximum suppression IoU threshold (negative disables)")
	workingSize := fs.Int("size", 48, "working raster size")
	seed := fs.Uint64("seed", 7, "random seed (must match training)")
	deadline := fs.Duration("deadline", 0, "sweep time budget; on expiry the best-so-far boxes are returned flagged DEGRADED (0 = none)")
	workers := workersFlag(fs)
	of := obscli.Register(fs)
	fs.Parse(args)
	of.Activate(map[string]string{
		"cmd": "detect", "scene": *scenePath, "mode": *mode,
		"d": strconv.Itoa(*d), "seed": strconv.FormatUint(*seed, 10),
	})

	img, err := imgproc.LoadPGM(*scenePath)
	if err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := hdc.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	if model.K != 2 {
		return fmt.Errorf("detect needs a binary face model, got %d classes", model.K)
	}
	p, err := buildPipeline(*d, *workingSize, *workers, *mode, *seed)
	if err != nil {
		return err
	}
	var scaleList []float64
	for _, tok := range strings.Split(*scales, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad scale %q: %w", tok, err)
		}
		scaleList = append(scaleList, v)
	}
	scorer, err := p.DetectScorer(model, *win)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM cancel the detection context instead of killing the
	// process mid-sweep: the pool drains and the boxes scored so far are
	// still printed (and overlaid), flagged DEGRADED. A -deadline budget
	// rides the same context.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *deadline > 0 {
		var cancelDL context.CancelFunc
		ctx, cancelDL = context.WithTimeout(ctx, *deadline)
		defer cancelDL()
	}
	// With -trace-dump the sweep records a trace (nil and free otherwise),
	// so the CLI can emit the same per-level span tree the daemon serves
	// from /debug/traces.
	tr := trace.New("detect", "")
	boxes, stats, err := detect.Sweep(trace.NewContext(ctx, tr), img, scorer, detect.Params{
		Win: *win, Stride: *stride, Scales: scaleList, NMSIoU: *nms,
		Workers: p.Config().Workers})
	tr.Finish()
	if err != nil {
		return err
	}
	fmt.Printf("swept %d windows over %d levels (%d level-prepared, %d crop-fallback, %d workers, %d levels skipped)\n",
		stats.Windows, stats.Levels, stats.PreparedWindows, stats.FallbackWindows,
		stats.Workers, stats.SkippedLevels)
	if stats.Degraded {
		fmt.Printf("DEGRADED: sweep stopped after %d/%d windows (%v); results are best-so-far\n",
			stats.CompletedWindows, stats.Windows, context.Cause(ctx))
	}
	overlay := img.Clone()
	for _, b := range boxes {
		overlay.StrokeRect(b.X0, b.Y0, b.X1, b.Y1, 255)
		fmt.Printf("  box (%d,%d)-(%d,%d) score %.3f scale %.2g\n",
			b.X0, b.Y0, b.X1, b.Y1, b.Score, b.Scale)
	}
	fmt.Printf("%d detections; overlay written to %s\n", len(boxes), *out)
	if err := overlay.SavePGM(*out); err != nil {
		return err
	}
	return of.Finish()
}

// cmdServe runs the long-lived inference daemon over a pipeline snapshot:
// /predict and /detect with micro-batched admission control, /healthz and
// /metrics, graceful drain on SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	snapPath := fs.String("snapshot", "model.hdfs", "pipeline snapshot to serve (train -snapshot)")
	addr := fs.String("addr", ":8466", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	maxBatch := fs.Int("max-batch", 8, "max /predict requests merged into one extraction batch")
	maxQueue := fs.Int("max-queue", 64, "max queued jobs before requests are shed with 503")
	flush := fs.Duration("flush", 2*time.Millisecond, "max time a partial batch waits for stragglers")
	deadline := fs.Duration("deadline", 30*time.Second, "max (and default) per-request /detect budget; blown budgets return best-so-far boxes flagged degraded")
	win := fs.Int("win", 0, "detection window size (0 = snapshot working size)")
	stride := fs.Int("stride", 0, "detection window stride (0 = win/2)")
	workers := fs.Int("workers", 0, "override extraction parallelism (0 = snapshot setting)")
	regDir := fs.String("registry", "", "model registry directory for versioned hot-swap (empty = in-memory)")
	retain := fs.Int("retain", 8, "max model versions the registry keeps (<=0 keeps all)")
	onlineOn := fs.Bool("online", false, "enable POST /feedback online learning")
	onlineBatch := fs.Int("online-batch", 32, "feedback samples per refinement round")
	replicaID := fs.String("replica-id", "", "this replica's name in a routed fleet (labels its feedback delta)")
	deltaOnly := fs.Bool("delta-only", false, "accumulate feedback into the delta only; model updates arrive via the router's merge (implies -online)")
	sloTarget := fs.Duration("slo-target", 250*time.Millisecond, "per-request latency goal of the /debug/slo objects")
	sloObjective := fs.Float64("slo-objective", 0.99, "fraction of requests that must meet -slo-target")
	sloWindow := fs.Duration("slo-window", time.Minute, "sliding window the SLOs and latency quantiles evaluate over")
	frameDeadline := fs.Duration("frame-deadline", 250*time.Millisecond, "default per-frame /stream anytime budget")
	emotionModel := fs.String("emotion-model", "", "hdc emotion classifier for /stream per-track emotion summaries (train -dataset emotion -model ...)")
	minTrackScore := fs.Float64("min-track-score", 0, "drop /stream detections scoring below this before tracking")
	tenantDir := fs.String("tenants", "", "multi-tenant model store directory ('mem' keeps the store in memory; empty disables multi-tenancy)")
	tenantBudgetMB := fs.Int("tenant-budget-mb", 256, "byte budget (MiB) for materialized tenant models; least recently used demote to compact blobs")
	tenantRetain := fs.Int("tenant-retain", 4, "max versions kept per tenant")
	tenantBatch := fs.Int("tenant-batch", 16, "feedback samples that trigger a per-tenant refinement round")
	of := obscli.Register(fs)
	fs.Parse(args)

	p, err := hdface.LoadSnapshotFile(*snapPath)
	if err != nil {
		return err
	}
	if *workers > 0 {
		p.SetWorkers(*workers)
	}
	cfg := p.Config()
	of.Activate(map[string]string{
		"cmd": "serve", "mode": cfg.Mode.String(),
		"d": strconv.Itoa(cfg.D), "seed": strconv.FormatUint(cfg.Seed, 10),
	})

	reg, err := registry.Open(*regDir, *retain)
	if err != nil {
		return err
	}
	if rcfg, ok := reg.Config(); ok {
		if err := registry.Compatible(rcfg, cfg); err != nil {
			return fmt.Errorf("registry %s serves a different pipeline: %w", *regDir, err)
		}
	}
	var trainer *online.Trainer
	if *onlineOn || *deltaOnly {
		trainer, err = online.New(online.Config{
			Registry:  reg,
			Pipe:      cfg,
			BatchSize: *onlineBatch,
			Replica:   *replicaID,
			DeltaOnly: *deltaOnly,
			Opts:      cfg.Train,
		})
		if err != nil {
			return err
		}
		defer trainer.Close()
	}

	var tenants *tenant.Store
	if *tenantDir != "" {
		dir := *tenantDir
		if dir == "mem" {
			dir = ""
		}
		tenants, err = tenant.Open(tenant.Config{
			Dir:           dir,
			BudgetBytes:   int64(*tenantBudgetMB) << 20,
			Retain:        *tenantRetain,
			FeedbackBatch: *tenantBatch,
			TrainOpts:     cfg.Train,
		})
		if err != nil {
			return err
		}
		if bc, ok := tenants.BaseConfig(); ok {
			if err := registry.Compatible(bc, cfg); err != nil {
				return fmt.Errorf("tenant store %s serves a different pipeline: %w", *tenantDir, err)
			}
		}
	}

	var emotion *hdc.Model
	if *emotionModel != "" {
		f, err := os.Open(*emotionModel)
		if err != nil {
			return err
		}
		emotion, err = hdc.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("emotion model %s: %w", *emotionModel, err)
		}
	}

	s, err := serve.New(serve.Config{
		Pipeline:      p,
		Registry:      reg,
		Online:        trainer,
		MaxBatch:      *maxBatch,
		MaxQueue:      *maxQueue,
		FlushInterval: *flush,
		MaxDeadline:   *deadline,
		DetectWin:     *win,
		DetectParams:  detect.Params{Stride: *stride},
		SLOTarget:     *sloTarget,
		SLOObjective:  *sloObjective,
		SLOWindow:     *sloWindow,
		FrameDeadline: *frameDeadline,
		MinTrackScore: *minTrackScore,
		Emotion:       emotion,
		Tenants:       tenants,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	trained := "untrained"
	if live := s.Registry().Live(); live != nil {
		trained = fmt.Sprintf("trained (live model v%d)", live.ID)
	}
	fmt.Printf("serving %s %s pipeline (D=%d) on http://%s\n",
		trained, cfg.Mode, cfg.D, ln.Addr())
	if tenants != nil {
		st := tenants.Stats()
		fmt.Printf("multi-tenancy on: %d tenant(s), %d version(s) resident\n", st.Tenants, st.Versions)
	}

	srv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	fmt.Println("signal received; draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	// With every HTTP handler drained, stop the dispatcher: queued jobs are
	// answered, then the inference loop exits.
	s.Close()
	<-errCh // Serve has returned ErrServerClosed
	fmt.Println("drained; bye")
	return of.Finish()
}

// cmdModels inspects and mutates a model registry directory without a
// running daemon: list versions, promote one, or roll back.
func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	regDir := fs.String("registry", "", "model registry directory (required)")
	promote := fs.Uint64("promote", 0, "promote this version to live")
	rollback := fs.Bool("rollback", false, "roll back to the previously live version")
	retain := fs.Int("retain", 0, "retention bound applied while open (<=0 keeps all)")
	migrate := fs.Bool("migrate-v2", false, "rewrite v1 snapshot files to the compact seeds-only v2 format in place (run offline — no daemon on the directory)")
	fs.Parse(args)
	if *regDir == "" {
		return fmt.Errorf("models: -registry is required")
	}
	if *promote != 0 && *rollback {
		return fmt.Errorf("models: -promote and -rollback are mutually exclusive")
	}
	if *migrate {
		migrated, skipped, err := registry.MigrateV2(*regDir)
		if err != nil {
			return err
		}
		fmt.Printf("migrated %d version(s) to compact v2 (%d already compact)\n", migrated, skipped)
	}
	reg, err := registry.Open(*regDir, *retain)
	if err != nil {
		return err
	}
	switch {
	case *promote != 0:
		if err := reg.Promote(*promote); err != nil {
			return err
		}
		fmt.Printf("promoted v%d\n", *promote)
	case *rollback:
		id, err := reg.Rollback()
		if err != nil {
			return err
		}
		fmt.Printf("rolled back; live is v%d\n", id)
	}
	infos := reg.List()
	if len(infos) == 0 {
		fmt.Println("registry is empty")
		return nil
	}
	for _, in := range infos {
		marker := " "
		if in.Live {
			marker = "*"
		}
		fmt.Printf("%s v%d\n", marker, in.ID)
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: hdface <train|eval|detect|scene|features|serve|stream|route|top|models> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "scene":
		err = cmdScene(os.Args[2:])
	case "features":
		err = cmdFeatures(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "stream":
		err = cmdStream(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}
