package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hdface/internal/dataset"
	"hdface/internal/imgproc"
	"hdface/internal/serve"
)

// cmdStream feeds a video (a PGM frame sequence) to a serving daemon's
// POST /stream endpoint and relays the NDJSON tracking events to stdout —
// per-frame boxes with stable track IDs, then the stream summary. Frames
// come from a file glob or from a synthetic scenario generator, the same
// one the streambench experiment uses.
func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8466", "serving daemon address (host:port or URL)")
	glob := fs.String("frames", "", "glob of PGM frames to stream in sorted path order (empty = synthetic scenario)")
	scenario := fs.String("scenario", "clean", "synthetic scenario: clean, entryexit, crossing or jitter")
	n := fs.Int("n", 20, "synthetic frame count")
	subjects := fs.Int("subjects", 2, "synthetic subject count")
	seed := fs.Uint64("seed", 1, "synthetic scenario seed")
	frameDeadline := fs.Duration("frame-deadline", 0, "per-frame anytime budget (0 = server default)")
	summaryOnly := fs.Bool("summary-only", false, "print only the final summary event")
	fs.Parse(args)

	pgms, err := streamFrames(*glob, *scenario, *n, *subjects, *seed)
	if err != nil {
		return err
	}

	u := *addr
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	u += "/stream"
	if *frameDeadline > 0 {
		u += "?frame_deadline=" + frameDeadline.String()
	}

	// Frames upload through a pipe so the client never holds the whole
	// clip in one request buffer; events flow back while frames go out.
	pr, pw := io.Pipe()
	go func() {
		for _, f := range pgms {
			if err := serve.WriteFrame(pw, f); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		serve.CloseFrames(pw)
		pw.Close()
	}()
	resp, err := http.Post(u, "application/octet-stream", pr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("stream rejected: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if *summaryOnly {
			var probe struct {
				Type string `json:"type"`
			}
			if json.Unmarshal(sc.Bytes(), &probe) == nil && probe.Type != "summary" {
				continue
			}
		}
		fmt.Fprintln(os.Stdout, sc.Text())
	}
	return sc.Err()
}

// streamFrames assembles the PGM frame list from a glob or a scenario.
func streamFrames(glob, scenario string, n, subjects int, seed uint64) ([][]byte, error) {
	if glob != "" {
		paths, err := filepath.Glob(glob)
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no frames match %q", glob)
		}
		sort.Strings(paths)
		var pgms [][]byte
		for _, p := range paths {
			img, err := imgproc.LoadPGM(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			var buf bytes.Buffer
			if err := img.WritePGM(&buf); err != nil {
				return nil, err
			}
			pgms = append(pgms, buf.Bytes())
		}
		return pgms, nil
	}
	spec := dataset.ScenarioSpec{Frames: n, Subjects: subjects, Seed: seed}
	switch scenario {
	case "clean":
	case "entryexit":
		spec.EntryExit = true
	case "crossing":
		spec.Crossing = true
	case "jitter":
		spec.Jitter = 3
	default:
		return nil, fmt.Errorf("scenario %q: want clean, entryexit, crossing or jitter", scenario)
	}
	var pgms [][]byte
	for _, fr := range dataset.GenerateScenario(spec) {
		var buf bytes.Buffer
		if err := fr.Image.WritePGM(&buf); err != nil {
			return nil, err
		}
		pgms = append(pgms, buf.Bytes())
	}
	return pgms, nil
}
