package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"emotion", "FACE1", "Face2"} {
		if _, err := specFor(name); err != nil {
			t.Fatalf("specFor(%q): %v", name, err)
		}
	}
	if _, err := specFor("bogus"); err == nil {
		t.Fatal("accepted unknown dataset")
	}
}

func TestBuildPipeline(t *testing.T) {
	if _, err := buildPipeline(512, 24, "stoch", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPipeline(512, 24, "orig", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPipeline(512, 24, "", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPipeline(512, 24, "bogus", 1); err == nil {
		t.Fatal("accepted unknown mode")
	}
}

// TestTrainEvalDetectRoundTrip drives the full CLI workflow with tiny
// parameters: train a face model, evaluate it, render a scene, detect.
func TestTrainEvalDetectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "face.hdc")
	scene := filepath.Join(dir, "scene.pgm")
	overlay := filepath.Join(dir, "overlay.pgm")

	if err := cmdTrain([]string{
		"-dataset", "face2", "-d", "512", "-n", "12", "-test", "6",
		"-size", "24", "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file missing")
	}
	if err := cmdEval([]string{
		"-dataset", "face2", "-d", "512", "-n", "6", "-size", "24",
		"-model", model}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdScene([]string{
		"-out", scene, "-w", "96", "-h", "72", "-faces", "1"}); err != nil {
		t.Fatalf("scene: %v", err)
	}
	if err := cmdDetect([]string{
		"-scene", scene, "-model", model, "-out", overlay,
		"-d", "512", "-win", "48", "-stride", "48", "-size", "24"}); err != nil {
		t.Fatalf("detect: %v", err)
	}
	if _, err := os.Stat(overlay); err != nil {
		t.Fatal("overlay missing")
	}
}

func TestDetectRejectsMulticlassModel(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "emo.hdc")
	if err := cmdTrain([]string{
		"-dataset", "emotion", "-d", "512", "-n", "14", "-test", "7",
		"-size", "24", "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	scene := filepath.Join(dir, "scene.pgm")
	if err := cmdScene([]string{"-out", scene, "-w", "48", "-h", "48", "-faces", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDetect([]string{
		"-scene", scene, "-model", model, "-d", "512", "-size", "24",
		"-out", filepath.Join(dir, "o.pgm")}); err == nil {
		t.Fatal("detect accepted a 7-class model")
	}
}

func TestFeatureCacheWorkflow(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "emotion.hvf")
	model := filepath.Join(dir, "emotion.hdc")
	if err := cmdFeatures([]string{
		"-dataset", "emotion", "-d", "512", "-n", "21", "-size", "24",
		"-out", cache}); err != nil {
		t.Fatalf("features: %v", err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatal("cache missing")
	}
	if err := cmdTrain([]string{
		"-features", cache, "-model", model}); err != nil {
		t.Fatalf("train from cache: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model missing")
	}
}

func TestTrainFromCacheValidation(t *testing.T) {
	if err := trainFromCache("/nonexistent.hvf", "/tmp/x.hdc", 0, 1); err == nil {
		t.Fatal("missing cache accepted")
	}
}
