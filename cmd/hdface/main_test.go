package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hdface/internal/obs"
)

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"emotion", "FACE1", "Face2"} {
		if _, err := specFor(name); err != nil {
			t.Fatalf("specFor(%q): %v", name, err)
		}
	}
	if _, err := specFor("bogus"); err == nil {
		t.Fatal("accepted unknown dataset")
	}
}

func TestBuildPipeline(t *testing.T) {
	if _, err := buildPipeline(512, 24, 1, "stoch", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPipeline(512, 24, 1, "orig", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPipeline(512, 24, 1, "", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPipeline(512, 24, 1, "bogus", 1); err == nil {
		t.Fatal("accepted unknown mode")
	}
	// Workers <= 0 is a user error now (the flag defaults to NumCPU); the
	// old silent fallback hid typos like -workers 0.
	if _, err := buildPipeline(512, 24, 0, "stoch", 1); err == nil {
		t.Fatal("workers=0 should be rejected")
	}
	if _, err := buildPipeline(512, 24, -2, "stoch", 1); err == nil {
		t.Fatal("negative workers should be rejected")
	}
	p, err := buildPipeline(512, 24, 3, "stoch", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().Workers != 3 {
		t.Fatalf("workers = %d, want 3", p.Config().Workers)
	}
}

// TestTrainEvalDetectRoundTrip drives the full CLI workflow with tiny
// parameters: train a face model, evaluate it, render a scene, detect.
func TestTrainEvalDetectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "face.hdc")
	scene := filepath.Join(dir, "scene.pgm")
	overlay := filepath.Join(dir, "overlay.pgm")

	if err := cmdTrain([]string{
		"-dataset", "face2", "-d", "512", "-n", "12", "-test", "6",
		"-size", "24", "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file missing")
	}
	if err := cmdEval([]string{
		"-dataset", "face2", "-d", "512", "-n", "6", "-size", "24",
		"-model", model}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdScene([]string{
		"-out", scene, "-w", "96", "-h", "72", "-faces", "1"}); err != nil {
		t.Fatalf("scene: %v", err)
	}
	if err := cmdDetect([]string{
		"-scene", scene, "-model", model, "-out", overlay,
		"-d", "512", "-win", "48", "-stride", "48", "-size", "24"}); err != nil {
		t.Fatalf("detect: %v", err)
	}
	if _, err := os.Stat(overlay); err != nil {
		t.Fatal("overlay missing")
	}
}

func TestDetectRejectsMulticlassModel(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "emo.hdc")
	if err := cmdTrain([]string{
		"-dataset", "emotion", "-d", "512", "-n", "14", "-test", "7",
		"-size", "24", "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	scene := filepath.Join(dir, "scene.pgm")
	if err := cmdScene([]string{"-out", scene, "-w", "48", "-h", "48", "-faces", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDetect([]string{
		"-scene", scene, "-model", model, "-d", "512", "-size", "24",
		"-out", filepath.Join(dir, "o.pgm")}); err == nil {
		t.Fatal("detect accepted a 7-class model")
	}
}

func TestFeatureCacheWorkflow(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "emotion.hvf")
	model := filepath.Join(dir, "emotion.hdc")
	if err := cmdFeatures([]string{
		"-dataset", "emotion", "-d", "512", "-n", "21", "-size", "24",
		"-out", cache}); err != nil {
		t.Fatalf("features: %v", err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatal("cache missing")
	}
	if err := cmdTrain([]string{
		"-features", cache, "-model", model}); err != nil {
		t.Fatalf("train from cache: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model missing")
	}
}

func TestTrainFromCacheValidation(t *testing.T) {
	if err := trainFromCache("/nonexistent.hvf", "/tmp/x.hdc", 0, 1); err == nil {
		t.Fatal("missing cache accepted")
	}
}

// TestEvalStatsJSON drives train + eval with the observability flags on and
// checks that the JSON snapshot round-trips and contains the per-stage
// timings and stochastic-op counters the acceptance criteria name.
func TestEvalStatsJSON(t *testing.T) {
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	dir := t.TempDir()
	model := filepath.Join(dir, "emo.hdc")
	snapPath := filepath.Join(dir, "eval.json")
	if err := cmdTrain([]string{
		"-dataset", "emotion", "-d", "512", "-n", "14", "-test", "7",
		"-size", "24", "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdEval([]string{
		"-dataset", "emotion", "-d", "512", "-n", "7", "-size", "24",
		"-model", model, "-workers", "2", "-stats", "-stats-json", snapPath}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if snap.Schema != obs.Schema {
		t.Fatalf("schema = %q, want %q", snap.Schema, obs.Schema)
	}
	for _, stage := range []string{"extract", "predict"} {
		st, ok := snap.Stages[stage]
		if !ok || st.Count == 0 {
			t.Fatalf("stage %q missing from snapshot: %+v", stage, snap.Stages)
		}
	}
	if snap.Counters[`hdface_stoch_ops_total{op="avg"}`] == 0 {
		t.Fatal("stochastic op counters not recorded")
	}
	if snap.Gauges["hdface_pipeline_workers"] != 2 {
		t.Fatalf("workers gauge = %v, want 2", snap.Gauges["hdface_pipeline_workers"])
	}
	if snap.Meta["cmd"] != "eval" {
		t.Fatalf("meta = %+v", snap.Meta)
	}
}
