package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hdface/internal/obs"
)

// cmdTop is a live terminal view over a running serve daemon: it polls
// /metrics and /debug/slo and renders request rates, windowed latency
// quantiles, SLO burn, batch occupancy, the live model version and drift
// state. It needs nothing beyond the daemon's existing HTTP surface, so
// it works against any reachable hdface serve instance.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8466", "serve daemon address (host:port)")
	interval := fs.Duration("interval", time.Second, "poll interval")
	once := fs.Bool("once", false, "print one frame and exit (no screen clearing)")
	fs.Parse(args)
	if *interval <= 0 {
		return fmt.Errorf("top: -interval must be positive")
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	t := &topView{base: base, client: &http.Client{Timeout: 5 * time.Second}}

	if *once {
		return t.frame(os.Stdout, false)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		if err := t.frame(os.Stdout, true); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-ticker.C:
		}
	}
}

// topView holds the polling client and the previous sample, from which
// counter deltas become rates.
type topView struct {
	base   string
	client *http.Client

	prev   map[string]float64
	prevAt time.Time
}

// frame polls once and renders one frame to w. clear prefixes ANSI
// home+erase so successive frames repaint in place.
func (t *topView) frame(w io.Writer, clear bool) error {
	metrics, err := t.fetchMetrics()
	if err != nil {
		return fmt.Errorf("top: %s/metrics: %w", t.base, err)
	}
	var slo sloDoc
	if err := t.fetchJSON("/debug/slo", &slo); err != nil {
		return fmt.Errorf("top: %s/debug/slo: %w", t.base, err)
	}
	now := time.Now()
	rate := func(name string) float64 {
		if t.prev == nil {
			return 0
		}
		dt := now.Sub(t.prevAt).Seconds()
		if dt <= 0 {
			return 0
		}
		return (metrics[name] - t.prev[name]) / dt
	}

	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[2J")
	}
	fmt.Fprintf(&b, "hdface top — %s — %s\n\n", t.base, now.Format("15:04:05"))
	fmt.Fprintf(&b, "requests   predict %6.1f/s   detect %6.1f/s   feedback %6.1f/s   rejected %.1f/s\n",
		rate("hdface_serve_predict_requests_total"),
		rate("hdface_serve_detect_requests_total"),
		rate("hdface_serve_feedback_requests_total"),
		rate("hdface_serve_rejected_total"))

	if q, ok := slo.Quantiles["hdface_serve_request_seconds_window"]; ok {
		fmt.Fprintf(&b, "latency    p50 %s   p95 %s   p99 %s   (%.0fs window, n=%d)\n",
			fmtSeconds(q.P50), fmtSeconds(q.P95), fmtSeconds(q.P99), q.WindowSeconds, q.Count)
	}
	names := make([]string, 0, len(slo.SLOs))
	for name := range slo.SLOs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := slo.SLOs[name]
		fmt.Fprintf(&b, "slo        %-8s burn %.2f   compliance %.2f%%   (target %s, objective %.0f%%)\n",
			name, s.BurnRate, s.Compliance*100, fmtSeconds(s.TargetSeconds), s.Objective*100)
	}

	occupancy := 0.0
	if n := metrics["hdface_serve_batches_total"]; n > 0 {
		occupancy = metrics["hdface_serve_batched_images_total"] / n
	}
	fmt.Fprintf(&b, "batching   occupancy %.1f img/batch   queue depth %.0f\n",
		occupancy, metrics["hdface_serve_queue_depth"])
	fmt.Fprintf(&b, "model      live v%.0f   drift events %.0f   promotions %.0f   rollbacks %.0f\n",
		metrics["hdface_registry_live_version"],
		metrics["hdface_online_drift_events_total"],
		metrics["hdface_registry_promotes_total"],
		metrics["hdface_registry_rollbacks_total"])
	fmt.Fprintf(&b, "runtime    goroutines %.0f   heap %s   gc pauses %s\n",
		metrics["go_goroutines"],
		fmtBytes(metrics["go_heap_inuse_bytes"]),
		fmtSeconds(metrics["go_gc_pause_seconds_total"]))

	t.prev, t.prevAt = metrics, now
	_, err = io.WriteString(w, b.String())
	return err
}

// sloDoc mirrors the /debug/slo reply (serve.SLOResponse); declared
// locally so the CLI depends only on the wire format.
type sloDoc struct {
	Schema    string                          `json:"schema"`
	SLOs      map[string]obs.SLOSnapshot      `json:"slos"`
	Quantiles map[string]obs.QuantileSnapshot `json:"quantiles"`
}

func (t *topView) fetchJSON(path string, v any) error {
	resp, err := t.client.Get(t.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fetchMetrics scrapes the Prometheus text endpoint into a name→value
// map. Series names keep their label block verbatim, so callers address
// labelled series as `family{label="v"}`.
func (t *topView) fetchMetrics() (map[string]float64, error) {
	resp, err := t.client.Get(t.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(data)), nil
}

// parseMetrics reads Prometheus 0.0.4 text exposition: one
// `name[{labels}] value` pair per non-comment line.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out
}

// fmtSeconds renders a duration-in-seconds at a human grain.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
