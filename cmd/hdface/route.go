package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hdface/internal/fleet"
	"hdface/internal/obscli"
)

// cmdRoute runs the fleet router: health-gated failover across N serve
// daemons, hedged retries, load shedding, and (with -merge-interval) the
// periodic CRDT feedback merge that keeps a fleet of -delta-only replicas
// learning as one.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	replicas := fs.String("replicas", "", "comma-separated replica base URLs, e.g. http://10.0.0.1:8466,http://10.0.0.2:8466 (required)")
	addr := fs.String("addr", ":8465", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "period of the /healthz scrape on every replica")
	ejectAfter := fs.Int("eject-after", 3, "consecutive probe failures that eject a replica from rotation")
	rejoinAfter := fs.Int("rejoin-after", 2, "consecutive probe successes that bring an ejected replica back")
	breakAfter := fs.Int("break-after", 3, "consecutive request failures that open a replica's circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "time an open breaker waits before its half-open trial")
	maxAttempts := fs.Int("max-attempts", 3, "max replica attempts per client request (plus one hedge)")
	retryBackoff := fs.Duration("retry-backoff", 5*time.Millisecond, "base of the jittered exponential retry backoff")
	hedgeQuantile := fs.Float64("hedge-quantile", 0.95, "rolling latency quantile that arms the tail-latency hedge")
	maxInflight := fs.Int("max-inflight", 0, "router-wide inflight cap at full health (0 = 16 per replica); scales with the available fraction")
	maxDeadline := fs.Duration("max-deadline", 30*time.Second, "per-request budget when the client names none")
	mergeInterval := fs.Duration("merge-interval", 0, "period of the feedback delta merge loop (0 = merging off)")
	mergeLR := fs.Float64("merge-lr", 1, "weight of merged delta evidence when folded into the fleet model")
	seed := fs.Uint64("seed", 1, "seed for retry jitter and merge finalisation")
	of := obscli.Register(fs)
	fs.Parse(args)

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("route: -replicas is required")
	}
	of.Activate(map[string]string{
		"cmd": "route", "replicas": strconv.Itoa(len(urls)),
	})

	router, err := fleet.New(fleet.Config{
		Replicas:        urls,
		ProbeInterval:   *probeInterval,
		EjectAfter:      *ejectAfter,
		RejoinAfter:     *rejoinAfter,
		BreakAfter:      *breakAfter,
		BreakerCooldown: *breakerCooldown,
		MaxAttempts:     *maxAttempts,
		RetryBackoff:    *retryBackoff,
		HedgeQuantile:   *hedgeQuantile,
		MaxInflight:     *maxInflight,
		MaxDeadline:     *maxDeadline,
		MergeInterval:   *mergeInterval,
		MergeLR:         *mergeLR,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		router.Close()
		return err
	}
	merging := "merging off"
	if *mergeInterval > 0 {
		merging = fmt.Sprintf("merging every %s", *mergeInterval)
	}
	fmt.Printf("routing %d replicas (%s) on http://%s\n", len(urls), merging, ln.Addr())

	srv := &http.Server{Handler: router.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		router.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	fmt.Println("signal received; draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	router.Close()
	<-errCh
	fmt.Println("drained; bye")
	return of.Finish()
}
