// Command hdface-bench regenerates the tables and figures of the HDFace
// paper's evaluation. Run all experiments:
//
//	hdface-bench -exp all -out results/
//
// or a single one:
//
//	hdface-bench -exp fig7 -quick
//
// Output goes to stdout; Figure 6 additionally writes PGM visualisations
// into -out when given.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hdface/internal/experiments"
	"hdface/internal/obs"
	"hdface/internal/obscli"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run (all, or a comma list; see -list)")
		quick = flag.Bool("quick", false, "cut dataset sizes ~3x for a fast pass")
		seed  = flag.Uint64("seed", 7, "random seed")
		out   = flag.String("out", "", "directory for PGM artefacts (created if missing)")
		list  = flag.Bool("list", false, "list experiments and exit")
		csv   = flag.String("csv", "", "directory to export experiment data as CSV (runs the tabular experiments)")
	)
	of := obscli.Register(flag.CommandLine)
	flag.Parse()
	of.Activate(map[string]string{
		"cmd": "bench", "exp": *exp, "seed": strconv.FormatUint(*seed, 10),
		"quick": strconv.FormatBool(*quick),
	})

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-12s %s\n", r.Name, r.Desc)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, OutDir: *out}
	if *csv != "" {
		if err := experiments.WriteCSV(*csv, opts); err != nil {
			fmt.Fprintln(os.Stderr, "hdface-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV data written to %s\n", *csv)
		if err := of.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "hdface-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "hdface-bench:", err)
			os.Exit(1)
		}
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			r, ok := experiments.Get(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "hdface-bench: unknown experiment %q (use -list)\n", name)
				os.Exit(1)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		sp := obs.StartSpan("exp_" + r.Name)
		err := r.Run(os.Stdout, opts)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdface-bench: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
	if err := of.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "hdface-bench:", err)
		os.Exit(1)
	}
}
