// Pipeline snapshots: a small, versioned wire format that makes a trained
// pipeline portable. Only two things go on the wire — the effective Config
// and the trained classifier — because every hypervector basis the
// front-ends use (codec one/minusOne pair, pixel level tables, positional
// IDs) is derived deterministically from Config.Seed: New(cfg) on the
// loading side rematerialises them bit for bit instead of shipping
// megabytes of redundant randomness. Combined with content-derived
// per-image reseeding (see Feature), a loaded snapshot reproduces the
// saving pipeline's Predict/Scores/DetectScorer outputs exactly.
package hdface

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hdface/internal/hdc"
)

// snapshotMagic versions the container; the classifier payload carries its
// own magic (see hdc.Model.Save), so both layers can evolve independently.
const snapshotMagic = "hdface-model/v1\n"

// snapshotMagicV2 marks the compact container: same config header as v1, but
// the classifier payload is the quantised+binarised hdc compact form
// ("HDC2") instead of the gob float form. Both magics are 16 bytes, so a
// reader can sniff the version from a fixed-size prefix. v2 is the
// multi-tenant store's native format — a trained D=2048 model is ~8.5 KB.
const snapshotMagicV2 = "hdface-model/v2\n"

// maxSnapshotConfigBytes bounds the gob-encoded Config blob. The real
// encoding is well under a kilobyte; anything larger is hostile.
const maxSnapshotConfigBytes = 1 << 16

// snapshotD mirrors the classifier wire bound (hdc: maxWireD) so the config
// is rejected before any allocation is sized from it.
const snapshotD = 1 << 24

// SaveSnapshot writes the pipeline to w in the hdface-model/v1 format:
// magic, a length-prefixed gob of the effective Config, a model-presence
// flag, and (if trained) the classifier in its own checked wire format.
// Pipelines may be snapshotted before Fit; loading yields an untrained
// pipeline.
func (p *Pipeline) SaveSnapshot(w io.Writer) error {
	return EncodeSnapshot(w, p.cfg, p.model)
}

// EncodeSnapshot writes an hdface-model/v1 blob for an arbitrary
// (config, model) pair without requiring a live Pipeline — the registry
// persists versions this way, since only the trained class memory differs
// between versions of the same config. model may be nil (untrained).
func EncodeSnapshot(w io.Writer, cfg Config, model *hdc.Model) error {
	return encodeSnapshot(w, cfg, model, false)
}

// EncodeSnapshotV2 writes the compact hdface-model/v2 form: identical config
// header, quantised+binarised class memory. The binarised memory round-trips
// bit-exactly (so Hamming/fused scoring is byte-identical to the v1 float
// path); the float accumulators round-trip within one int16 quantisation
// step. model may be nil (untrained).
func EncodeSnapshotV2(w io.Writer, cfg Config, model *hdc.Model) error {
	return encodeSnapshot(w, cfg, model, true)
}

func encodeSnapshot(w io.Writer, cfg Config, model *hdc.Model, compact bool) error {
	magic := snapshotMagic
	if compact {
		magic = snapshotMagicV2
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("hdface: snapshot magic: %w", err)
	}
	var cfgBuf bytes.Buffer
	if err := gob.NewEncoder(&cfgBuf).Encode(cfg); err != nil {
		return fmt.Errorf("hdface: snapshot config: %w", err)
	}
	if cfgBuf.Len() > maxSnapshotConfigBytes {
		return fmt.Errorf("hdface: snapshot config %d bytes exceeds %d", cfgBuf.Len(), maxSnapshotConfigBytes)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(cfgBuf.Len())); err != nil {
		return fmt.Errorf("hdface: snapshot config length: %w", err)
	}
	if _, err := w.Write(cfgBuf.Bytes()); err != nil {
		return fmt.Errorf("hdface: snapshot config: %w", err)
	}
	hasModel := byte(0)
	if model != nil {
		hasModel = 1
	}
	if _, err := w.Write([]byte{hasModel}); err != nil {
		return fmt.Errorf("hdface: snapshot model flag: %w", err)
	}
	if model != nil {
		var err error
		if compact {
			err = model.SaveCompact(w)
		} else {
			err = model.Save(w)
		}
		if err != nil {
			return fmt.Errorf("hdface: snapshot model: %w", err)
		}
	}
	return nil
}

// LoadSnapshot reads an hdface-model/v1 snapshot, validates the embedded
// configuration before acting on it, rebuilds the front-end bases from the
// config seed, and attaches the trained classifier (if present). The
// returned pipeline is behaviourally identical to the one that was saved.
func LoadSnapshot(r io.Reader) (*Pipeline, error) {
	cfg, m, err := DecodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	p := New(cfg)
	p.model = m
	return p, nil
}

// DecodeSnapshot reads and validates an hdface-model/v1 blob, returning
// the embedded config and trained model (nil if untrained) without
// rematerialising the pipeline's hypervector bases. The registry uses this
// to load per-version class memory cheaply: every version under one
// registry dir shares a config, so a single Pipeline serves them all.
func DecodeSnapshot(r io.Reader) (Config, *hdc.Model, error) {
	compact, err := readSnapshotMagic(r)
	if err != nil {
		return Config{}, nil, err
	}
	if compact {
		return Config{}, nil, fmt.Errorf("hdface: hdface-model/v2 snapshot where v1 expected")
	}
	return decodeSnapshotBody(r, false)
}

// DecodeSnapshotV2 reads and validates an hdface-model/v2 compact blob.
func DecodeSnapshotV2(r io.Reader) (Config, *hdc.Model, error) {
	compact, err := readSnapshotMagic(r)
	if err != nil {
		return Config{}, nil, err
	}
	if !compact {
		return Config{}, nil, fmt.Errorf("hdface: hdface-model/v1 snapshot where v2 expected")
	}
	return decodeSnapshotBody(r, true)
}

// DecodeSnapshotAuto sniffs the 16-byte magic and decodes either container
// version. The registry and tenant store load through this, so a directory
// can mix v1 and v2 files during migration.
func DecodeSnapshotAuto(r io.Reader) (Config, *hdc.Model, error) {
	compact, err := readSnapshotMagic(r)
	if err != nil {
		return Config{}, nil, err
	}
	return decodeSnapshotBody(r, compact)
}

// SnapshotInfo reads only the header of either container version: magic,
// validated config and model-presence flag, stopping before the class-memory
// payload. The tenant store uses it to index thousands of blobs at open
// without materialising any of them; Compact reports whether the payload is
// the v2 compact form.
func SnapshotInfo(r io.Reader) (cfg Config, hasModel bool, compact bool, err error) {
	compact, err = readSnapshotMagic(r)
	if err != nil {
		return Config{}, false, false, err
	}
	cfg, flag, err := decodeSnapshotHeader(r)
	if err != nil {
		return Config{}, false, false, err
	}
	return cfg, flag == 1, compact, nil
}

// readSnapshotMagic consumes the fixed-size magic prefix and reports whether
// the container is the v2 compact form.
func readSnapshotMagic(r io.Reader) (compact bool, err error) {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return false, fmt.Errorf("hdface: snapshot magic: %w", err)
	}
	switch string(magic) {
	case snapshotMagic:
		return false, nil
	case snapshotMagicV2:
		return true, nil
	default:
		return false, fmt.Errorf("hdface: not an hdface-model snapshot (magic %q)", magic)
	}
}

// decodeSnapshotHeader reads the length-prefixed config gob and the model
// flag, validating both.
func decodeSnapshotHeader(r io.Reader) (Config, byte, error) {
	var cfg Config
	var cfgLen uint32
	if err := binary.Read(r, binary.LittleEndian, &cfgLen); err != nil {
		return cfg, 0, fmt.Errorf("hdface: snapshot config length: %w", err)
	}
	if cfgLen == 0 || cfgLen > maxSnapshotConfigBytes {
		return cfg, 0, fmt.Errorf("hdface: snapshot config length %d outside (0, %d]", cfgLen, maxSnapshotConfigBytes)
	}
	cfgBytes := make([]byte, cfgLen)
	if _, err := io.ReadFull(r, cfgBytes); err != nil {
		return cfg, 0, fmt.Errorf("hdface: snapshot config: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(cfgBytes)).Decode(&cfg); err != nil {
		return Config{}, 0, fmt.Errorf("hdface: snapshot config: %w", err)
	}
	if err := validateSnapshotConfig(cfg); err != nil {
		return Config{}, 0, err
	}
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return Config{}, 0, fmt.Errorf("hdface: snapshot model flag: %w", err)
	}
	if flag[0] > 1 {
		return Config{}, 0, fmt.Errorf("hdface: snapshot model flag %d invalid", flag[0])
	}
	return cfg, flag[0], nil
}

// decodeSnapshotBody decodes the container after its magic has been
// consumed.
func decodeSnapshotBody(r io.Reader, compact bool) (Config, *hdc.Model, error) {
	cfg, flag, err := decodeSnapshotHeader(r)
	if err != nil {
		return Config{}, nil, err
	}
	if flag == 0 {
		return cfg, nil, nil
	}
	var m *hdc.Model
	if compact {
		m, err = hdc.LoadCompact(r)
	} else {
		m, err = hdc.Load(r)
	}
	if err != nil {
		return Config{}, nil, fmt.Errorf("hdface: snapshot model: %w", err)
	}
	if m.D != cfg.D {
		return Config{}, nil, fmt.Errorf("hdface: snapshot model D=%d does not match config D=%d", m.D, cfg.D)
	}
	return cfg, m, nil
}

// validateSnapshotConfig bounds every field a snapshot can set before the
// config drives any allocation or goroutine count. The limits are generous
// for real use and ludicrous for hostile input.
func validateSnapshotConfig(cfg Config) error {
	if cfg.D < 1 || cfg.D > snapshotD {
		return fmt.Errorf("hdface: snapshot config D=%d outside [1, %d]", cfg.D, snapshotD)
	}
	if cfg.Mode < ModeStochHOG || cfg.Mode > ModeStochConv {
		return fmt.Errorf("hdface: snapshot config mode %d unknown", cfg.Mode)
	}
	if cfg.WorkingSize < 0 || cfg.WorkingSize > 1<<14 {
		return fmt.Errorf("hdface: snapshot config working size %d outside [0, %d]", cfg.WorkingSize, 1<<14)
	}
	if cfg.Workers < 0 || cfg.Workers > 1<<12 {
		return fmt.Errorf("hdface: snapshot config workers %d outside [0, %d]", cfg.Workers, 1<<12)
	}
	if cfg.SqrtIterations < 0 || cfg.SqrtIterations > 1<<10 {
		return fmt.Errorf("hdface: snapshot config sqrt iterations %d outside [0, %d]", cfg.SqrtIterations, 1<<10)
	}
	if cfg.Stride < 0 || cfg.Stride > 1<<8 {
		return fmt.Errorf("hdface: snapshot config stride %d outside [0, %d]", cfg.Stride, 1<<8)
	}
	if cfg.Train.Epochs < 0 || cfg.Train.Epochs > 1<<16 {
		return fmt.Errorf("hdface: snapshot config epochs %d outside [0, %d]", cfg.Train.Epochs, 1<<16)
	}
	return nil
}

// SaveSnapshotFile writes the snapshot to path via a same-directory
// temporary file and rename, so a crash mid-write never leaves a torn
// snapshot where a daemon expects a valid one.
func (p *Pipeline) SaveSnapshotFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("hdface: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := p.SaveSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("hdface: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("hdface: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshotFile loads a snapshot from path.
func LoadSnapshotFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hdface: snapshot open: %w", err)
	}
	defer f.Close()
	return LoadSnapshot(f)
}

// SetWorkers overrides the extraction parallelism of a (typically loaded)
// pipeline. Since features are pure functions of (Config minus Workers,
// image), changing it never changes outputs — only throughput.
func (p *Pipeline) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.cfg.Workers = n
	obsWorkers.Set(float64(n))
}
