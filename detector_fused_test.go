package hdface_test

import (
	"context"
	"reflect"
	"testing"

	"hdface/internal/dataset"
	"hdface/internal/detect"
)

// TestFusedSweepByteIdenticalToTwoPass is the tentpole's determinism
// contract end to end: a fused sweep (single-pass bundle/binarise/popcount
// over rematerialized IDs) must produce byte-identical boxes — scores
// included — to the legacy two-pass Hamming sweep, at any worker count.
// Run with -race (check.sh does) to exercise the per-worker arena path.
func TestFusedSweepByteIdenticalToTwoPass(t *testing.T) {
	p := trainedDetectPipeline(t, 1024)
	scene := dataset.GenerateScene(128, 128, 48, 1, 33)
	params := detect.Params{Win: 48, Stride: 24, Scales: []float64{1, 1.5, 2}, NMSIoU: 0.3}

	sweep := func(fused bool, workers int) ([]detect.Box, detect.SweepStats) {
		t.Helper()
		scorer, err := p.DetectScorer(nil, 48)
		if err != nil {
			t.Fatal(err)
		}
		scorer.Hamming = !fused // fused implies Hamming-mode scores on its own
		scorer.Fused = fused
		pp := params
		pp.Workers = workers
		boxes, stats, err := detect.Sweep(context.Background(), scene.Image, scorer, pp)
		if err != nil {
			t.Fatal(err)
		}
		if stats.FallbackWindows != 0 {
			t.Fatalf("48px windows on 8px cells should all ride the grid: %+v", stats)
		}
		return boxes, stats
	}

	ref, refStats := sweep(false, 1)
	if refStats.Hits == 0 {
		t.Fatal("two-pass sweep found nothing; identity test is vacuous")
	}
	for _, workers := range []int{1, 2, 4} {
		boxes, _ := sweep(true, workers)
		if !reflect.DeepEqual(boxes, ref) {
			t.Fatalf("fused sweep (%d workers) diverged from two-pass Hamming:\n got %+v\nwant %+v",
				workers, boxes, ref)
		}
	}
}

// TestFusedScoreAtAllocs pins the zero-allocation contract at the
// integration level: once a level is prepared, a fused window score —
// reseed, gather, fused kernel, score — allocates nothing.
func TestFusedScoreAtAllocs(t *testing.T) {
	p := trainedDetectPipeline(t, 2048)
	scene := dataset.GenerateScene(96, 96, 48, 1, 7)
	scorer, err := p.DetectScorer(nil, 48)
	if err != nil {
		t.Fatal(err)
	}
	scorer.Fused = true
	ls := scorer.PrepareLevel(scene.Image, 0, 48, 1)
	if ls == nil {
		t.Fatal("StochHOG level preparation declined")
	}
	allocs := testing.AllocsPerRun(50, func() {
		ls.ScoreAt(8, 8, 3)
	})
	if allocs != 0 {
		t.Fatalf("fused ScoreAt allocated %.1f times per run, want 0", allocs)
	}
	if c, ok := ls.(detect.LevelCloser); ok {
		c.CloseLevel()
	}
}
