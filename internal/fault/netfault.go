package fault

// Network chaos for the serving fleet: a deterministic http.RoundTripper
// wrapper that injects the failure modes a router must survive — latency
// spikes, blackholes (a connection that hangs until the caller's context
// gives up), bursts of 5xx, and a partition of the feedback plane (the
// /delta, /models/push and /feedback paths fail while inference traffic
// flows). Like the bit-fault harness, every decision is drawn from a
// seeded stream so a chaotic scenario replays exactly; unlike it, the
// injector is called from many goroutines at once, so the stream sits
// behind a mutex.

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"hdface/internal/hv"
	"hdface/internal/obs"
)

var (
	obsNetLatency = obs.NewCounter("hdface_fault_net_latency_injected_total",
		"latency spikes injected into upstream requests")
	obsNetBlackhole = obs.NewCounter("hdface_fault_net_blackholes_total",
		"requests blackholed until the caller's context expired")
	obsNetErrors = obs.NewCounter("hdface_fault_net_errors_injected_total",
		"synthetic 5xx responses injected")
	obsNetPartitioned = obs.NewCounter("hdface_fault_net_partitioned_total",
		"feedback-plane requests dropped by the partition")
)

const saltNet = 0x2e7f

// NetPlan describes one network-fault scenario.
type NetPlan struct {
	// LatencyP is the per-request probability of a latency spike of
	// Latency (default 100ms when LatencyP > 0 and Latency is zero).
	LatencyP float64
	Latency  time.Duration
	// BlackholeP is the per-request probability that the request hangs
	// until its context is cancelled — the pathological peer that
	// accepts the connection and says nothing.
	BlackholeP float64
	// ErrorP is the per-request probability of starting a burst of
	// ErrorBurst consecutive injected 503s (default burst 1). Bursts
	// model a crashing process being restarted, not independent noise:
	// consecutive failures are what trips breakers.
	ErrorP     float64
	ErrorBurst int
	// PartitionFeedback fails every feedback-plane request (/delta,
	// /models/push, /feedback) while leaving inference traffic intact.
	PartitionFeedback bool
	// Seed keys the injection stream.
	Seed uint64
}

// feedbackPath reports whether a URL path belongs to the fleet's
// feedback plane.
func feedbackPath(path string) bool {
	return path == "/delta" || path == "/models/push" || path == "/feedback" ||
		strings.HasPrefix(path, "/delta/")
}

// NetInjector wraps an http.RoundTripper with NetPlan faults. Safe for
// concurrent use.
type NetInjector struct {
	plan NetPlan
	next http.RoundTripper

	mu    sync.Mutex
	rng   *hv.RNG
	burst int // remaining injected errors in the current burst
}

// NewNetInjector wraps next (nil = http.DefaultTransport).
func NewNetInjector(plan NetPlan, next http.RoundTripper) *NetInjector {
	if next == nil {
		next = http.DefaultTransport
	}
	if plan.ErrorBurst <= 0 {
		plan.ErrorBurst = 1
	}
	if plan.LatencyP > 0 && plan.Latency <= 0 {
		plan.Latency = 100 * time.Millisecond
	}
	return &NetInjector{
		plan: plan,
		next: next,
		rng:  hv.NewRNG(hv.Mix64(plan.Seed, saltNet)),
	}
}

// netError is a synthetic injected 503.
func netError(req *http.Request, msg string) *http.Response {
	return &http.Response{
		Status:     "503 " + msg,
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{"Content-Type": []string{"text/plain"}},
		Body:    http.NoBody,
		Request: req,
	}
}

// RoundTrip applies the plan to one request.
func (n *NetInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	if n.plan.PartitionFeedback && feedbackPath(req.URL.Path) {
		obsNetPartitioned.Inc()
		return nil, fmt.Errorf("fault: feedback plane partitioned (%s)", req.URL.Path)
	}

	n.mu.Lock()
	var delay time.Duration
	blackhole, errNow := false, false
	if n.burst > 0 {
		n.burst--
		errNow = true
	} else {
		switch {
		case n.plan.BlackholeP > 0 && n.rng.Float64() < n.plan.BlackholeP:
			blackhole = true
		case n.plan.ErrorP > 0 && n.rng.Float64() < n.plan.ErrorP:
			errNow = true
			n.burst = n.plan.ErrorBurst - 1
		case n.plan.LatencyP > 0 && n.rng.Float64() < n.plan.LatencyP:
			delay = n.plan.Latency
		}
	}
	n.mu.Unlock()

	switch {
	case blackhole:
		obsNetBlackhole.Inc()
		<-req.Context().Done()
		return nil, req.Context().Err()
	case errNow:
		obsNetErrors.Inc()
		return netError(req, "injected upstream error"), nil
	case delay > 0:
		obsNetLatency.Inc()
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return n.next.RoundTrip(req)
}
