package fault

import (
	"testing"

	"hdface/internal/hdc"
	"hdface/internal/hdhog"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

// synthModel trains a small binary model on noisy copies of two prototype
// hypervectors and returns it (finalised) with its training set.
func synthModel(t *testing.T, d int) (*hdc.Model, []*hv.Vector, []int) {
	t.Helper()
	r := hv.NewRNG(41)
	protos := []*hv.Vector{hv.NewRand(r, d), hv.NewRand(r, d)}
	var feats []*hv.Vector
	var labels []int
	for i := 0; i < 60; i++ {
		c := i % 2
		v := protos[c].Clone()
		// ~10% bit noise per sample.
		v.Xor(v, hv.NewRandBiased(r, d, 0.1))
		feats = append(feats, v)
		labels = append(labels, c)
	}
	m, err := hdc.Train(feats, labels, 2, hdc.TrainOpts{Seed: 42, Epochs: 5})
	if err != nil {
		panic(err)
	}
	m.Finalize(42)
	return m, feats, labels
}

// cloneBin returns a model sharing accumulators but owning a deep copy of
// the binarised class memory — what injection mutates.
func cloneBin(m *hdc.Model) *hdc.Model {
	c := &hdc.Model{D: m.D, K: m.K, Classes: m.Classes, Bin: make([]*hv.Vector, m.K)}
	for i, v := range m.Bin {
		c.Bin[i] = v.Clone()
	}
	return c
}

func hammingAccuracy(m *hdc.Model, feats []*hv.Vector, labels []int) float64 {
	correct := 0
	for i, f := range feats {
		face, _ := m.ScoreBinaryHamming(f)
		if (face && labels[i] == 1) || (!face && labels[i] == 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(feats))
}

func TestInjectModelDeterministicAtRate(t *testing.T) {
	clean, _, _ := synthModel(t, 4096)
	a, b := cloneBin(clean), cloneBin(clean)
	plan := Plan{BER: 0.1, StuckFrac: 0.5, Seed: 7}
	tA, sA := New(plan).InjectModel(a)
	tB, sB := New(plan).InjectModel(b)
	if tA != tB || sA != sB {
		t.Fatalf("same plan, different counts: (%d,%d) vs (%d,%d)", tA, sA, tB, sB)
	}
	for c := range a.Bin {
		if !a.Bin[c].Equal(b.Bin[c]) {
			t.Fatalf("class %d corrupted differently across runs", c)
		}
	}
	// Every fault (transient or stuck) flipped exactly one bit.
	flipped := 0
	for c := range a.Bin {
		flipped += clean.Bin[c].Hamming(a.Bin[c])
	}
	if flipped != tA+sA {
		t.Fatalf("hamming %d != transient %d + stuck %d", flipped, tA, sA)
	}
	// The realised rate tracks BER, and StuckFrac splits it roughly in two.
	rate := float64(flipped) / float64(2*clean.D)
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("realised BER %v far from 0.1", rate)
	}
	if sA == 0 || tA == 0 {
		t.Fatalf("StuckFrac 0.5 should latch some and leave some transient: t=%d s=%d", tA, sA)
	}
}

func TestInjectModelZeroRateNoop(t *testing.T) {
	clean, _, _ := synthModel(t, 1024)
	m := cloneBin(clean)
	tr, st := New(Plan{BER: 0, Seed: 1}).InjectModel(m)
	if tr != 0 || st != 0 || !m.Bin[0].Equal(clean.Bin[0]) || !m.Bin[1].Equal(clean.Bin[1]) {
		t.Fatal("zero-BER injection mutated the model")
	}
}

func TestRepairClearsTransientFaults(t *testing.T) {
	clean, feats, labels := synthModel(t, 2048)
	// Reference: what a clean model's memory looks like after the same
	// reconsolidation (repair rebuilds from features, not from the
	// Finalize accumulators, so the baseline must too).
	ref := cloneBin(clean)
	ref.Reconsolidate(feats, labels, 7)
	h := New(Plan{BER: 0.2, StuckFrac: 0, Seed: 7})
	m := cloneBin(clean)
	h.InjectModel(m)
	if m.Bin[0].Equal(ref.Bin[0]) {
		t.Fatal("injection did nothing; test is vacuous")
	}
	if rebuilt := h.Repair(m, feats, labels); rebuilt != 2 {
		t.Fatalf("rebuilt %d classes, want 2", rebuilt)
	}
	for c := range m.Bin {
		if !m.Bin[c].Equal(ref.Bin[c]) {
			t.Fatalf("class %d: transient faults survived repair (hamming %d)",
				c, m.Bin[c].Hamming(ref.Bin[c]))
		}
	}
	if h.Stats().Repairs != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
}

func TestStuckFaultsSurviveRepair(t *testing.T) {
	clean, feats, labels := synthModel(t, 2048)
	ref := cloneBin(clean)
	ref.Reconsolidate(feats, labels, 7)
	h := New(Plan{BER: 0.1, StuckFrac: 1, Seed: 7})
	m := cloneBin(clean)
	_, stuck := h.InjectModel(m)
	if stuck == 0 {
		t.Fatal("StuckFrac 1 latched nothing")
	}
	h.Repair(m, feats, labels)
	// Repair must NOT have restored the reference memory: the stuck cells
	// hold their latched values.
	diff := 0
	for c := range m.Bin {
		diff += m.Bin[c].Hamming(ref.Bin[c])
	}
	if diff == 0 {
		t.Fatal("stuck-at faults vanished after repair")
	}
	if diff > stuck {
		t.Fatalf("%d bits differ after repair, more than the %d stuck cells", diff, stuck)
	}
	// A second repair pass changes nothing: the memory is already at the
	// stuck-at floor.
	before := []*hv.Vector{m.Bin[0].Clone(), m.Bin[1].Clone()}
	h.Repair(m, feats, labels)
	if !m.Bin[0].Equal(before[0]) || !m.Bin[1].Equal(before[1]) {
		t.Fatal("repair is not idempotent at the stuck-at floor")
	}
}

func TestHammingAccuracyDegradesAndRepairs(t *testing.T) {
	clean, feats, labels := synthModel(t, 4096)
	cleanAcc := hammingAccuracy(clean, feats, labels)
	if cleanAcc < 0.95 {
		t.Fatalf("clean accuracy %v too low; synthetic task broken", cleanAcc)
	}
	// Moderate BER shrinks the decision margin (holographic degradation is
	// graceful — accuracy itself may survive).
	margin := func(m *hdc.Model) float64 {
		var s float64
		for i, f := range feats {
			_, g := m.ScoreBinaryHamming(f)
			if labels[i] == 0 {
				g = -g
			}
			s += g
		}
		return s / float64(len(feats))
	}
	mild := cloneBin(clean)
	New(Plan{BER: 0.2, StuckFrac: 0, Seed: 3}).InjectModel(mild)
	if margin(mild) >= margin(clean) {
		t.Fatalf("BER 0.2 did not shrink the margin: %v vs %v", margin(mild), margin(clean))
	}
	// BER 0.5 randomises the class memory outright: accuracy collapses.
	h := New(Plan{BER: 0.5, StuckFrac: 0, Seed: 3})
	m := cloneBin(clean)
	h.InjectModel(m)
	hurtAcc := hammingAccuracy(m, feats, labels)
	if hurtAcc >= cleanAcc {
		t.Fatalf("BER 0.5 did not hurt accuracy: %v vs clean %v", hurtAcc, cleanAcc)
	}
	h.Repair(m, feats, labels)
	if got := hammingAccuracy(m, feats, labels); got < cleanAcc {
		t.Fatalf("repair recovered only %v, clean was %v", got, cleanAcc)
	}
}

func TestGridHookCorruptsDeterministically(t *testing.T) {
	img := imgproc.NewImage(64, 64)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			img.Set(x, y, uint8((x*7+y*13)%256))
		}
	}
	build := func(hook func(*hdhog.CellGrid)) *hdhog.CellGrid {
		e := hdhog.New(stoch.NewCodec(512, 9), hdhog.DefaultParams())
		e.GridHook = hook
		return e.LevelGrid(img, 99, 1)
	}
	cleanGrid := build(nil)
	h := New(Plan{BER: 0.25, Seed: 11})
	hook := h.GridHook()
	if hook == nil {
		t.Fatal("non-zero BER returned a nil hook")
	}
	g1 := build(hook)
	if h.Stats().Grids != 1 || h.Stats().GridBits == 0 {
		t.Fatalf("hook did not record corruption: %+v", h.Stats())
	}
	differs := false
	for i, cb := range g1.Cells {
		for b, v := range cb.Vecs {
			if v == nil {
				continue
			}
			if cleanGrid.Cells[i].Vecs[b] == nil {
				t.Fatalf("cell %d bin %d occupancy changed", i, b)
			}
			if !v.Equal(cleanGrid.Cells[i].Vecs[b]) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("hooked grid identical to clean grid")
	}
	// BeginSweep resets the substream: the next sweep's first grid draws
	// the same fault pattern — latched defects, not fresh soft errors.
	h.BeginSweep()
	g2 := build(h.GridHook())
	for i, cb := range g1.Cells {
		for b, v := range cb.Vecs {
			if v == nil {
				continue
			}
			if !v.Equal(g2.Cells[i].Vecs[b]) {
				t.Fatalf("cell %d bin %d corrupted differently across sweeps", i, b)
			}
		}
	}
	if New(Plan{BER: 0}).GridHook() != nil {
		t.Fatal("zero-BER plan should produce no hook")
	}
}
