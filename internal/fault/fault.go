// Package fault is the chaos harness of the robustness study: it injects
// bit faults into the live memories of the HDFace detection service — the
// binarised class hypervectors of a trained hdc.Model and the cached
// cell-hypervector grids of the hyperspace HOG extractor — and drives the
// self-repair pass that re-consolidates class memory from retained
// training features.
//
// Two fault species are modelled. Transient faults are independent bit
// flips (an SEU, a read disturb): a rewrite of the memory clears them, so
// self-repair removes them entirely. Stuck-at faults are latched cells that
// hold a value regardless of writes: the harness remembers each stuck
// (class, bit, value) and re-imposes it after every repair, so repaired
// accuracy converges to the stuck-at floor rather than the clean model.
//
// Every fault pattern is drawn from a seed-keyed substream (hv.Mix64), so
// a scenario replays bit-for-bit. A Harness is not safe for concurrent use;
// the grid hook it hands out is only ever called from the serial
// level-preparation phase of a detection sweep.
package fault

import (
	"hdface/internal/hdc"
	"hdface/internal/hdhog"
	"hdface/internal/hv"
	"hdface/internal/noise"
	"hdface/internal/obs"
)

// Observability series for the chaos harness. They record nothing unless
// obs is enabled.
var (
	obsModelFlips = obs.NewCounter("hdface_fault_model_bits_flipped_total", "transient bit faults injected into class hypervectors")
	obsStuckBits  = obs.NewCounter("hdface_fault_stuck_bits_total", "stuck-at faults latched onto class hypervector cells")
	obsGridFlips  = obs.NewCounter("hdface_fault_grid_bits_flipped_total", "bit faults injected into cached cell-grid hypervectors")
	obsRepairs    = obs.NewCounter("hdface_fault_repair_passes_total", "self-repair passes run")
)

// Seed salts separating the harness's fault substreams.
const (
	saltModel = 0xb17f
	saltGrid  = 0x611d
	saltFeat  = 0xfea7
)

// Plan describes one fault scenario.
type Plan struct {
	// BER is the per-bit fault probability of one injection pass.
	BER float64
	// StuckFrac is the fraction of faulty bits that are stuck-at rather
	// than transient: 0 models pure soft errors, 1 pure latched defects.
	StuckFrac float64
	// Seed keys every fault substream.
	Seed uint64
}

// Stats accumulates what the harness did.
type Stats struct {
	Transient int // transient bit flips applied to class hypervectors
	Stuck     int // stuck-at faults latched onto class hypervectors
	GridBits  int // bit flips applied to cached cell grids
	Grids     int // cell grids corrupted
	Repairs   int // self-repair passes run
}

// stuckBit is one latched class-memory cell; val is the held sign (+1/-1),
// matching hv.Vector's Bit/SetBit convention.
type stuckBit struct {
	class, pos, val int
}

// Harness injects the plan's faults and tracks latched cells.
type Harness struct {
	plan    Plan
	stats   Stats
	stuck   []stuckBit
	inj     *noise.Injector // feature-vector injection substreams
	gridSeq uint64
}

// New returns a harness executing plan.
func New(plan Plan) *Harness {
	return &Harness{plan: plan, inj: noise.New(hv.Mix64(plan.Seed, saltFeat))}
}

// Plan returns the harness's scenario.
func (h *Harness) Plan() Plan { return h.plan }

// Stats returns what the harness has done so far.
func (h *Harness) Stats() Stats { return h.stats }

// InjectModel corrupts the binarised class memory of m in place: each bit
// of each class hypervector faults independently with probability BER, and
// each faulty bit is latched stuck-at its flipped value with probability
// StuckFrac. The per-class fault pattern is a pure function of (Seed,
// class), so repeated injections into fresh copies corrupt identically.
// Finalize must have been called. Returns (transient, stuck) fault counts.
func (h *Harness) InjectModel(m *hdc.Model) (transient, stuck int) {
	if m.Bin == nil {
		panic("fault: InjectModel before Finalize")
	}
	if h.plan.BER <= 0 {
		return 0, 0
	}
	for c, v := range m.Bin {
		r := hv.NewRNG(hv.Mix64(h.plan.Seed^saltModel, uint64(c)))
		for i := 0; i < m.D; i++ {
			if r.Float64() >= h.plan.BER {
				continue
			}
			val := -v.Bit(i)
			v.SetBit(i, val)
			if r.Float64() < h.plan.StuckFrac {
				h.stuck = append(h.stuck, stuckBit{class: c, pos: i, val: val})
				stuck++
			} else {
				transient++
			}
		}
	}
	h.stats.Transient += transient
	h.stats.Stuck += stuck
	obsModelFlips.Add(int64(transient))
	obsStuckBits.Add(int64(stuck))
	return transient, stuck
}

// ReapplyStuck re-imposes every latched stuck-at fault onto m's class
// memory — the write that "fixes" a stuck cell does not take. Returns how
// many cells disagreed with their stuck value and were overwritten.
func (h *Harness) ReapplyStuck(m *hdc.Model) int {
	if m.Bin == nil {
		return 0
	}
	forced := 0
	for _, s := range h.stuck {
		v := m.Bin[s.class]
		if v.Bit(s.pos) != s.val {
			v.SetBit(s.pos, s.val)
			forced++
		}
	}
	return forced
}

// Repair runs the self-repair pass: the class memory is rebuilt by
// majority re-bundling of retained training features
// (hdc.Model.Reconsolidate), which clears every transient fault, and the
// latched stuck-at faults are re-imposed — repair rewrites memory cells,
// it cannot fix broken ones. Returns the number of classes rebuilt.
func (h *Harness) Repair(m *hdc.Model, features []*hv.Vector, labels []int) int {
	rebuilt := m.Reconsolidate(features, labels, h.plan.Seed)
	h.ReapplyStuck(m)
	h.stats.Repairs++
	obsRepairs.Inc()
	return rebuilt
}

// InjectVectors applies one transient injection pass to a batch of feature
// hypervectors, keyed per slice index. Returns the flip count.
func (h *Harness) InjectVectors(vs []*hv.Vector) int {
	return h.inj.FlipVectors(vs, h.plan.BER)
}

// BeginSweep resets the grid fault sequence, so the grids of the next
// detection sweep draw the same fault patterns as the last one's: grid g
// of every sweep is corrupted identically, which models latched defects in
// the level-grid buffers a streaming detector reuses frame after frame.
func (h *Harness) BeginSweep() { h.gridSeq = 0 }

// GridHook returns the corruption hook to install as a detection scorer's
// OnGrid callback (nil when the plan injects nothing): each freshly
// extracted cell grid has every cached cell hypervector flipped at BER,
// from a substream keyed on (Seed, grid sequence number). The hook runs in
// the sweep's serial level-preparation phase.
func (h *Harness) GridHook() func(*hdhog.CellGrid) {
	if h.plan.BER <= 0 {
		return nil
	}
	return func(g *hdhog.CellGrid) {
		seq := h.gridSeq
		h.gridSeq++
		inj := noise.New(hv.Mix64(h.plan.Seed^saltGrid, seq))
		flips := 0
		for gi, cb := range g.Cells {
			for b, v := range cb.Vecs {
				if v == nil {
					continue
				}
				flips += inj.FlipVectorAt(v, uint64(gi*len(cb.Vecs)+b), h.plan.BER)
			}
		}
		h.stats.GridBits += flips
		h.stats.Grids++
		obsGridFlips.Add(int64(flips))
	}
}
