package fault

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// get performs one GET through an injector-backed client.
func get(t *testing.T, client *http.Client, url string, timeout time.Duration) (*http.Response, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

func TestNetInjectorErrorBurst(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	// ErrorP=1: every non-burst draw starts a burst of 3. The sequence
	// must be all injected 503s.
	inj := NewNetInjector(NetPlan{ErrorP: 1, ErrorBurst: 3, Seed: 7}, nil)
	client := &http.Client{Transport: inj}
	for i := 0; i < 9; i++ {
		resp, err := get(t, client, ts.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want injected 503", i, resp.StatusCode)
		}
	}

	// ErrorP=0 passes everything through untouched.
	clean := &http.Client{Transport: NewNetInjector(NetPlan{Seed: 7}, nil)}
	resp, err := get(t, clean, ts.URL, time.Second)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("clean plan: %v status %v", err, resp)
	}
	resp.Body.Close()
}

func TestNetInjectorBlackholeHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	inj := NewNetInjector(NetPlan{BlackholeP: 1, Seed: 3}, nil)
	client := &http.Client{Transport: inj}
	start := time.Now()
	_, err := get(t, client, ts.URL, 50*time.Millisecond)
	if err == nil {
		t.Fatal("blackholed request returned a response")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("blackhole released after %v, want ~the caller's 50ms budget", elapsed)
	}
}

func TestNetInjectorPartitionsFeedbackPlaneOnly(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	inj := NewNetInjector(NetPlan{PartitionFeedback: true, Seed: 5}, nil)
	client := &http.Client{Transport: inj}

	for _, path := range []string{"/delta", "/models/push", "/feedback"} {
		if _, err := get(t, client, ts.URL+path, time.Second); err == nil {
			t.Fatalf("partitioned path %s still reachable", path)
		}
	}
	for _, path := range []string{"/predict", "/detect", "/healthz", "/models/export"} {
		resp, err := get(t, client, ts.URL+path, time.Second)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("inference path %s broken by feedback partition: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}
}

func TestNetInjectorLatencySpike(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	inj := NewNetInjector(NetPlan{LatencyP: 1, Latency: 60 * time.Millisecond, Seed: 9}, nil)
	client := &http.Client{Transport: inj}
	start := time.Now()
	resp, err := get(t, client, ts.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("latency spike not applied: %v", elapsed)
	}
	// A spiked request must still honour its context.
	start = time.Now()
	if _, err := get(t, client, ts.URL, 10*time.Millisecond); err == nil {
		t.Fatal("latency spike outlived the caller's context")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled spike released after %v", elapsed)
	}
}
