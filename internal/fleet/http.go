package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"hdface/internal/obs"
	"hdface/internal/obs/trace"
)

// ReplicaHealth is one replica's row in the router's /healthz.
type ReplicaHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Saturated bool   `json:"saturated"`
	Breaker   string `json:"breaker"`
	Served    int64  `json:"served"`
	Failed    int64  `json:"failed"`
	Inflight  int64  `json:"inflight"`
}

// HealthResponse is the router's /healthz reply. Status is "ok" with the
// whole fleet available, "degraded" while any replica is out but at least
// one serves, and "down" with none — degraded-but-serving is the state
// the fleet is built to sustain.
type HealthResponse struct {
	Status    string          `json:"status"`
	Replicas  []ReplicaHealth `json:"replicas"`
	Available int             `json:"available"`
	Merge     *MergeStatus    `json:"merge,omitempty"`
}

// MergeStatus summarises the feedback-merge loop for /healthz.
type MergeStatus struct {
	Rounds int64       `json:"rounds"`
	Last   MergeReport `json:"last"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(io.LimitReader(r, 1<<20)).Decode(v)
}

// Handler returns the router's HTTP surface: the proxied inference plane
// (POST /predict, /detect, /feedback), GET /healthz, GET /metrics and
// GET /debug/traces.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	proxy := func(path string) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, "POST %s", path)
				return
			}
			body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "read body: %v", err)
				return
			}
			r.forward(w, req, path, body)
		}
	}
	mux.HandleFunc("/predict", proxy("/predict"))
	mux.HandleFunc("/detect", proxy("/detect"))
	mux.HandleFunc("/feedback", proxy("/feedback"))
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/debug/traces", handleTraces)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WriteTo(w)
	})
	return mux
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := HealthResponse{Available: r.availableCount()}
	healthy := 0
	for _, rp := range r.replicas {
		up := rp.healthy.Load()
		if up {
			healthy++
		}
		h.Replicas = append(h.Replicas, ReplicaHealth{
			URL:       rp.url,
			Healthy:   up,
			Saturated: rp.saturated.Load(),
			Breaker:   rp.breakerState(),
			Served:    rp.served.Load(),
			Failed:    rp.failed.Load(),
			Inflight:  rp.inflight.Load(),
		})
	}
	switch {
	case h.Available == 0:
		h.Status = "down"
	case h.Available < len(r.replicas):
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	if last, rounds := r.LastMerge(); rounds > 0 {
		h.Merge = &MergeStatus{Rounds: rounds, Last: last}
	}
	code := http.StatusOK
	if h.Status == "down" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleTraces mirrors the serve daemon's /debug/traces (the tracer is
// process-global).
func handleTraces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /debug/traces")
		return
	}
	var f trace.Filter
	f.Kind = req.URL.Query().Get("kind")
	f.Stage = req.URL.Query().Get("stage")
	writeJSON(w, http.StatusOK, trace.Snapshot(f))
}
