package fleet

// The feedback merge: pull every replica's delta, bundle them (the CRDT
// combine in internal/online), fold the merged evidence into the fleet's
// base model and offer the candidate to every replica's adoption gate.
// Every step tolerates partial failure — an unreachable replica is
// skipped this round and its cumulative delta simply arrives next round;
// nothing is lost because deltas are state, not operations.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
	"hdface/internal/online"
)

var (
	obsMerges = obs.NewCounter("hdface_fleet_merges_total",
		"feedback merge rounds attempted")
	obsMergeSamples = obs.NewCounter("hdface_fleet_merge_samples_total",
		"feedback samples carried by merged deltas")
	obsMergePushAccepted = obs.NewCounter("hdface_fleet_merge_push_accepted_total",
		"merged candidates accepted by a replica's adoption gate")
	obsMergePushRejected = obs.NewCounter("hdface_fleet_merge_push_rejected_total",
		"merged candidates rejected by a replica's adoption gate")
)

// merge is the router's merge-loop state.
type merge struct {
	merger *online.Merger
	rounds atomic.Int64
	lastMu sync.Mutex
	last   MergeReport
}

// MergeReport describes one merge round for /healthz and the bench.
type MergeReport struct {
	// Outcome: "merged", "no_evidence" (no replica had matching-base
	// samples), or "no_base" (no replica could export a model).
	Outcome string `json:"outcome"`
	// Base is the fingerprint the round merged against, hex.
	Base string `json:"base,omitempty"`
	// Samples carried by the merged delta.
	Samples int64 `json:"samples"`
	// Pulled / PullErrors: replicas whose delta arrived / didn't.
	Pulled     int `json:"pulled"`
	PullErrors int `json:"pull_errors"`
	// Skipped deltas had a foreign base (replica behind on adoption).
	Skipped int `json:"skipped"`
	// Pushed / Adopted / Rejected: candidate delivery outcomes.
	Pushed   int `json:"pushed"`
	Adopted  int `json:"adopted"`
	Rejected int `json:"rejected"`
	// Version is the registry version the first adopting replica assigned.
	Version uint64 `json:"version,omitempty"`
}

func (r *Router) mergeState() *merge {
	r.mergeM.Lock()
	defer r.mergeM.Unlock()
	if r.merger == nil {
		r.merger = &merge{merger: online.NewMerger()}
	}
	return r.merger
}

// MergeOnce runs one synchronous merge round. Safe to call concurrently
// with serving; rounds themselves are serialized. Returns the round's
// report; an error only for total failure (every replica unreachable for
// export), never for partial degradation.
func (r *Router) MergeOnce(ctx context.Context) (MergeReport, error) {
	m := r.mergeState()
	m.lastMu.Lock()
	defer m.lastMu.Unlock() // serializes rounds; Report() contends briefly
	obsMerges.Inc()
	m.rounds.Add(1)
	tr := trace.New("fleet_merge", "")
	defer tr.Finish()

	var rep MergeReport

	// Base model: the first available replica's live snapshot. All
	// replicas on a common base export the same bytes, so one export
	// suffices; a replica behind on adoption only costs its delta a
	// skipped round.
	var baseCfg hdface.Config
	var model *hdc.Model
	var exportErr error
	for _, rp := range r.replicas {
		if !rp.healthy.Load() {
			continue
		}
		cfg, mdl, err := r.pullModel(ctx, rp.url)
		if err != nil {
			exportErr = err
			continue
		}
		baseCfg, model = cfg, mdl
		break
	}
	if model == nil {
		rep.Outcome = "no_base"
		tr.SetAttr("outcome", rep.Outcome)
		tr.SetError(true)
		m.last = rep
		if exportErr == nil {
			exportErr = fmt.Errorf("fleet: no healthy replica")
		}
		return rep, fmt.Errorf("fleet: merge has no base model: %w", exportErr)
	}
	base := model.Fingerprint()
	rep.Base = fmt.Sprintf("%016x", base)

	// Pull deltas concurrently; per-replica failure is tolerated.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, rp := range r.replicas {
		if !rp.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			d, err := r.pullDelta(ctx, u)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				rep.PullErrors++
			case d == nil: // 204: no evidence yet
				rep.Pulled++
			default:
				rep.Pulled++
				m.merger.Offer(d)
			}
		}(rp.url)
	}
	wg.Wait()

	merged, skipped := m.merger.Bundle(base)
	rep.Skipped = skipped
	if merged == nil {
		rep.Outcome = "no_evidence"
		tr.SetAttr("outcome", rep.Outcome)
		m.last = rep
		return rep, nil
	}
	rep.Samples = merged.Samples()
	obsMergeSamples.Add(rep.Samples)

	cand, err := online.ApplyDelta(model, merged, r.cfg.MergeLR, r.cfg.Seed^base)
	if err != nil {
		rep.Outcome = "apply_error"
		tr.SetAttr("outcome", rep.Outcome)
		tr.SetError(true)
		m.last = rep
		return rep, err
	}
	var blob bytes.Buffer
	if err := hdface.EncodeSnapshot(&blob, baseCfg, cand); err != nil {
		rep.Outcome = "encode_error"
		tr.SetError(true)
		m.last = rep
		return rep, err
	}

	// Offer the candidate to every healthy replica's adoption gate.
	for _, rp := range r.replicas {
		if !rp.healthy.Load() {
			continue
		}
		rep.Pushed++
		version, outcome, err := r.pushModel(ctx, rp.url, blob.Bytes())
		if err != nil || outcome == "gate_rejected" {
			rep.Rejected++
			obsMergePushRejected.Inc()
			continue
		}
		rep.Adopted++
		obsMergePushAccepted.Inc()
		if rep.Version == 0 {
			rep.Version = version
		}
	}
	rep.Outcome = "merged"
	tr.SetAttr("outcome", rep.Outcome)
	tr.SetAttr("samples", fmt.Sprintf("%d", rep.Samples))
	tr.SetAttr("adopted", fmt.Sprintf("%d", rep.Adopted))
	m.last = rep
	return rep, nil
}

// LastMerge returns the most recent merge round's report (zero value if
// none ran) and the total number of rounds.
func (r *Router) LastMerge() (MergeReport, int64) {
	m := r.mergeState()
	m.lastMu.Lock()
	defer m.lastMu.Unlock()
	return m.last, m.rounds.Load()
}

// pullModel fetches a replica's live model snapshot.
func (r *Router) pullModel(ctx context.Context, base string) (hdface.Config, *hdc.Model, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/models/export", nil)
	if err != nil {
		return hdface.Config{}, nil, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return hdface.Config{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return hdface.Config{}, nil, fmt.Errorf("export: status %d", resp.StatusCode)
	}
	return hdface.DecodeSnapshot(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes))
}

// pullDelta fetches a replica's feedback accumulator; (nil, nil) means the
// replica has no evidence yet (204) or no feedback plane (501).
func (r *Router) pullDelta(ctx context.Context, base string) (*online.Delta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/delta", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return online.DecodeDelta(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes))
	case http.StatusNoContent, http.StatusNotImplemented:
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("delta: status %d", resp.StatusCode)
	}
}

// pushModel offers a candidate snapshot to one replica's adoption gate.
func (r *Router) pushModel(ctx context.Context, base string, blob []byte) (uint64, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/models/push", bytes.NewReader(blob))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var pr struct {
		Outcome string `json:"outcome"`
		Version uint64 `json:"version"`
	}
	if err := decodeJSON(resp.Body, &pr); err != nil {
		return 0, "", err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return 0, pr.Outcome, fmt.Errorf("push: status %d", resp.StatusCode)
	}
	return pr.Version, pr.Outcome, nil
}
