package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/fault"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/online"
	"hdface/internal/registry"
	"hdface/internal/serve"
)

// trainedPipeline builds a small binary face/non-face pipeline, mirroring
// the serve package's test helper so every replica can be loaded from one
// snapshot and score byte-identically.
func trainedPipeline(t *testing.T) *hdface.Pipeline {
	t.Helper()
	r := hv.NewRNG(31)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(48, 48, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(48, 48, r))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: 512, Seed: 17, WorkingSize: 48, Workers: 1, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

// pipelineTwin loads an independent copy of p, so every replica owns its
// own (single-threaded) pipeline while sharing the identical model.
func pipelineTwin(t *testing.T, p *hdface.Pipeline) *hdface.Pipeline {
	t.Helper()
	var buf bytes.Buffer
	if err := p.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := hdface.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func pgmBytes(t *testing.T, img *imgproc.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := img.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testReplica is one serve daemon plus a kill switch that makes its HTTP
// front end fail without tearing the listener down (so recovery is
// testable) — plus ts.Close() for the connection-refused flavour.
type testReplica struct {
	srv  *serve.Server
	ts   *httptest.Server
	dead atomic.Bool
}

func (tr *testReplica) kill()   { tr.dead.Store(true) }
func (tr *testReplica) revive() { tr.dead.Store(false) }

// newTestReplica boots a serve daemon from the shared pipeline. online
// non-nil enables the feedback plane with that replica name.
func newTestReplica(t *testing.T, p *hdface.Pipeline, replicaName string) *testReplica {
	t.Helper()
	rep := &testReplica{}
	cfg := serve.Config{Pipeline: pipelineTwin(t, p), MaxBatch: 2, MaxQueue: 64}
	if replicaName != "" {
		reg, err := registry.Open("", 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Registry = reg
		tr, err := online.New(online.Config{
			Registry: reg, Pipe: cfg.Pipeline.Config(),
			Replica: replicaName, DeltaOnly: true,
			HoldoutEvery: 1 << 30, // keep holdout empty: adopt-always in tests that push
			WindowSize:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Online = tr
		t.Cleanup(tr.Close)
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep.srv = s
	inner := s.Handler()
	rep.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rep.dead.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		rep.ts.Close()
		s.Close()
	})
	return rep
}

func newTestRouter(t *testing.T, cfg Config, reps ...*testReplica) *Router {
	t.Helper()
	for _, rp := range reps {
		cfg.Replicas = append(cfg.Replicas, rp.ts.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 100 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func postPGM(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "image/x-portable-graymap", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRouterFailoverKillMidLoad is the satellite contract: kill a replica
// mid-load and the clients see zero failures, every score byte-identical
// to the survivors' (all replicas serve the same snapshot), and after the
// replica recovers its breaker re-closes and it serves again.
func TestRouterFailoverKillMidLoad(t *testing.T) {
	p := trainedPipeline(t)
	r0 := newTestReplica(t, p, "")
	r1 := newTestReplica(t, p, "")
	router := newTestRouter(t, Config{MaxAttempts: 4}, r0, r1)
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(5)))

	// Reference response through the intact fleet.
	code, refBody := postPGM(t, rt.URL+"/predict", img)
	if code != http.StatusOK {
		t.Fatalf("warm-up predict: status %d (%s)", code, refBody)
	}
	var ref struct {
		Label  int       `json:"label"`
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 4, 20
	var killOnce sync.Once
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/2 {
					killOnce.Do(r0.kill) // mid-load failure
				}
				code, body := postPGM(t, rt.URL+"/predict", img)
				if code != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d req %d: status %d (%s)", c, i, code, body)
					continue
				}
				var got struct {
					Label  int       `json:"label"`
					Scores []float64 `json:"scores"`
				}
				if err := json.Unmarshal(body, &got); err != nil {
					failures.Add(1)
					t.Errorf("client %d req %d: %v", c, i, err)
					continue
				}
				if got.Label != ref.Label || len(got.Scores) != len(ref.Scores) {
					t.Errorf("client %d req %d: label/scores diverged: %+v vs %+v", c, i, got, ref)
					continue
				}
				for k := range got.Scores {
					if got.Scores[k] != ref.Scores[k] {
						t.Errorf("client %d req %d: score[%d] %v != %v", c, i, k, got.Scores[k], ref.Scores[k])
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d client-visible failures with one replica killed", failures.Load())
	}

	// The prober must eject the dead replica and report degraded-but-serving.
	waitFor(t, 2*time.Second, func() bool {
		h := routerHealth(t, rt.URL)
		return h.Status == "degraded" && h.Available == 1
	}, "router never reported degraded after the kill")

	// Recovery: revive the replica; probes rejoin it, the breaker's
	// half-open trial succeeds, and it serves traffic again.
	r0.revive()
	waitFor(t, 2*time.Second, func() bool {
		h := routerHealth(t, rt.URL)
		return h.Status == "ok" && h.Available == 2
	}, "router never recovered after the replica revived")
	servedBefore := routerHealth(t, rt.URL).Replicas[0].Served
	waitFor(t, 2*time.Second, func() bool {
		if code, _ := postPGM(t, rt.URL+"/predict", img); code != http.StatusOK {
			return false
		}
		h := routerHealth(t, rt.URL)
		return h.Replicas[0].Served > servedBefore && h.Replicas[0].Breaker == "closed"
	}, "revived replica never took traffic with a closed breaker")
}

func routerHealth(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestRouterConnectionRefused covers the harder kill: the listener is
// gone entirely (ts.Close), so attempts fail at dial time, not with 5xx.
func TestRouterConnectionRefused(t *testing.T) {
	p := trainedPipeline(t)
	r0 := newTestReplica(t, p, "")
	r1 := newTestReplica(t, p, "")
	router := newTestRouter(t, Config{MaxAttempts: 4}, r0, r1)
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(6)))
	if code, body := postPGM(t, rt.URL+"/predict", img); code != http.StatusOK {
		t.Fatalf("warm-up: status %d (%s)", code, body)
	}
	r0.ts.Close() // hard kill: connection refused from here on
	for i := 0; i < 20; i++ {
		if code, body := postPGM(t, rt.URL+"/predict", img); code != http.StatusOK {
			t.Fatalf("request %d after hard kill: status %d (%s)", i, code, body)
		}
	}
}

// TestRouterShedsWhenDown: with every replica gone the router answers 503
// with a Retry-After hint instead of hanging or 502-ing.
func TestRouterShedsWhenDown(t *testing.T) {
	p := trainedPipeline(t)
	r0 := newTestReplica(t, p, "")
	router := newTestRouter(t, Config{EjectAfter: 1, MaxAttempts: 2}, r0)
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(7)))
	r0.kill()
	// Let the prober eject it (EjectAfter=1, 20ms interval).
	waitFor(t, 2*time.Second, func() bool {
		return routerHealth(t, rt.URL).Available == 0
	}, "prober never ejected the dead replica")

	resp, err := http.Post(rt.URL+"/predict", "image/x-portable-graymap", bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead fleet: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	h := routerHealth(t, rt.URL)
	if h.Status != "down" {
		t.Fatalf("healthz status %q, want down", h.Status)
	}
}

// TestRouterSurvivesNetworkChaos runs client load through a router whose
// upstream transport injects 5xx bursts and latency spikes: retries and
// failover must keep every client request at 200.
func TestRouterSurvivesNetworkChaos(t *testing.T) {
	p := trainedPipeline(t)
	r0 := newTestReplica(t, p, "")
	r1 := newTestReplica(t, p, "")
	inj := fault.NewNetInjector(fault.NetPlan{
		ErrorP: 0.15, ErrorBurst: 2,
		LatencyP: 0.1, Latency: 5 * time.Millisecond,
		Seed: 41,
	}, nil)
	router := newTestRouter(t, Config{
		Client: &http.Client{Transport: inj},
		// The chaos lives in the shared transport, not in either replica,
		// so breaker/ejection verdicts against a replica would be wrong —
		// disable both and let retries carry every request through.
		MaxAttempts: 6,
		BreakAfter:  1 << 30,
		EjectAfter:  1 << 30,
	}, r0, r1)
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(12)))
	for i := 0; i < 60; i++ {
		if code, body := postPGM(t, rt.URL+"/predict", img); code != http.StatusOK {
			t.Fatalf("request %d under chaos: status %d (%s)", i, code, body)
		}
	}
	if obsRetries.Value() == 0 {
		t.Fatal("chaos plan injected no faults worth retrying — test is vacuous")
	}
}

// TestRouterHedging: a replica with a latency spike is beaten by the
// hedge firing after the rolling p95.
func TestRouterHedging(t *testing.T) {
	var slow atomic.Bool
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer fast.Close()
	laggy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.Load() && r.URL.Path == "/predict" {
			time.Sleep(300 * time.Millisecond)
		}
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer laggy.Close()

	router, err := New(Config{
		Replicas:        []string{laggy.URL, fast.URL},
		ProbeInterval:   20 * time.Millisecond,
		HedgeMinSamples: 8,
		MaxAttempts:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	// Warm the latency window with fast responses.
	for i := 0; i < 16; i++ {
		if code, _ := postPGM(t, rt.URL+"/predict", []byte("x")); code != http.StatusOK {
			t.Fatalf("warm-up %d failed", i)
		}
	}
	before := obsHedges.Value()
	slow.Store(true)
	// Drive requests until one lands on the laggy replica and is hedged
	// past. Each must finish far faster than the 300ms stall.
	for i := 0; i < 10; i++ {
		start := time.Now()
		code, _ := postPGM(t, rt.URL+"/predict", []byte("x"))
		if code != http.StatusOK {
			t.Fatalf("hedged request %d: status %d", i, code)
		}
		if lat := time.Since(start); lat > 250*time.Millisecond {
			t.Fatalf("request %d took %v; hedge never rescued it", i, lat)
		}
	}
	if obsHedges.Value() == before {
		t.Fatal("no hedge ever fired against the laggy replica")
	}
}
