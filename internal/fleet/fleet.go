// Package fleet is the fault-tolerant serving tier: one router process
// fanning /predict and /detect out to N serve daemons. Availability comes
// from four mechanisms layered in order of reaction time: per-request
// retries with jittered exponential backoff (milliseconds), tail-latency
// hedging against the rolling p95 (tens of milliseconds), per-replica
// circuit breakers tripped by consecutive request failures (sub-second),
// and active health probing of /healthz with consecutive-failure ejection
// and half-open rejoin (seconds). Load beyond what the healthy fraction
// of the fleet can absorb is shed early with 503 + Retry-After rather
// than queued into a latency collapse.
//
// The router also runs the distributed half of online learning: it
// periodically pulls each replica's feedback delta, merges them by
// bundling (see internal/online's CRDT argument), folds the merged
// evidence into the fleet's model and offers the candidate back to every
// replica's adoption gate. See merge.go.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdface/internal/hv"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
)

var (
	obsRequests = obs.NewCounter("hdface_fleet_requests_total",
		"client requests accepted by the router")
	obsAttempts = obs.NewCounter("hdface_fleet_attempts_total",
		"replica attempts launched (first tries, retries and hedges)")
	obsRetries = obs.NewCounter("hdface_fleet_retries_total",
		"attempts relaunched after a replica failure")
	obsHedges = obs.NewCounter("hdface_fleet_hedges_total",
		"hedge attempts launched after the rolling p95 budget expired")
	obsHedgeWins = obs.NewCounter("hdface_fleet_hedge_wins_total",
		"requests won by a hedge attempt rather than the original")
	obsShed = obs.NewCounter("hdface_fleet_shed_total",
		"requests shed by the router's health-scaled inflight cap")
	obsNoReplica = obs.NewCounter("hdface_fleet_no_replica_total",
		"requests that found no available replica")
	obsEjections = obs.NewCounter("hdface_fleet_ejections_total",
		"replicas ejected after consecutive probe failures")
	obsRejoins = obs.NewCounter("hdface_fleet_rejoins_total",
		"ejected replicas rejoined after consecutive probe successes")
	obsBreakerOpens = obs.NewCounter("hdface_fleet_breaker_opens_total",
		"circuit breakers opened by consecutive request failures")
	obsBreakerCloses = obs.NewCounter("hdface_fleet_breaker_closes_total",
		"circuit breakers re-closed after a successful half-open trial")
)

// Config parameterises a Router. Zero values take the documented
// defaults; only Replicas is mandatory.
type Config struct {
	// Replicas are the serve daemons' base URLs (e.g. http://10.0.0.1:8080).
	Replicas []string
	// Client performs all upstream requests (default: a dedicated client
	// with no global timeout — per-attempt contexts bound every call).
	Client *http.Client
	// ProbeInterval is the /healthz scrape period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration
	// EjectAfter consecutive probe failures mark a replica unhealthy
	// (default 3); RejoinAfter consecutive successes bring it back
	// (default 2).
	EjectAfter, RejoinAfter int
	// BreakAfter consecutive request failures open a replica's circuit
	// breaker (default 3); after BreakerCooldown (default 2s) one
	// half-open trial request probes it.
	BreakAfter      int
	BreakerCooldown time.Duration
	// MaxAttempts bounds ordinary (non-hedge) attempts per request
	// (default 3); one extra launch is allowed for the hedge.
	MaxAttempts int
	// RetryBackoff is the base of the jittered exponential retry backoff
	// (default 5ms; attempt n waits ~ RetryBackoff * 2^(n-1) * [0.5, 1.5)).
	RetryBackoff time.Duration
	// HedgeQuantile of the rolling per-path latency window arms the hedge
	// timer (default 0.95); hedging stays off until HedgeMinSamples
	// latencies have been observed (default 20). Only idempotent paths
	// (/predict, /detect) hedge — duplicated /feedback would double-count
	// evidence.
	HedgeQuantile   float64
	HedgeMinSamples int
	// MaxInflight is the router-wide concurrent-request cap with every
	// replica available (default 16 per replica); the live cap scales
	// with the available fraction, so losing half the fleet sheds half
	// the load instead of doubling the survivors' queues.
	MaxInflight int
	// MaxDeadline is the per-request budget when the client names none
	// (default 30s).
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64
	// MergeInterval enables the periodic feedback merge loop (0 =
	// disabled; merges can still be driven manually via MergeOnce).
	MergeInterval time.Duration
	// MergeLR scales merged delta evidence when folding it into the base
	// model (default 1, the training rule's own weight).
	MergeLR float64
	// Seed drives retry jitter and merge finalisation (default 1).
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Replicas) == 0 {
		return c, fmt.Errorf("fleet: Config.Replicas is required")
	}
	for _, r := range c.Replicas {
		u, err := url.Parse(r)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return c, fmt.Errorf("fleet: replica %q is not an absolute URL", r)
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.RejoinAfter <= 0 {
		c.RejoinAfter = 2
	}
	if c.BreakAfter <= 0 {
		c.BreakAfter = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16 * len(c.Replicas)
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MergeLR == 0 {
		c.MergeLR = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// Breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

func breakerName(state int) string {
	switch state {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// replica is the router's view of one serve daemon: probe-driven health,
// a request-driven circuit breaker, and traffic counters. Health and the
// breaker are deliberately separate detectors — the prober catches a
// daemon that stopped answering anything, the breaker catches one that
// still answers /healthz but fails real work.
type replica struct {
	idx int
	url string

	// healthy is owned by the prober (consecutive-failure ejection);
	// saturated mirrors the replica's own /healthz status.
	healthy   atomic.Bool
	saturated atomic.Bool
	probeFail int // prober goroutine only
	probeOK   int // prober goroutine only

	// Circuit breaker.
	bmu        sync.Mutex
	brState    int
	brFails    int
	brOpenedAt time.Time
	brTrial    bool // a half-open trial request is in flight

	served, failed, inflight atomic.Int64

	upGauge *obs.Gauge
}

// available reports whether the picker may send this replica a request:
// probe-healthy and breaker not blocking. It does not claim the half-open
// trial — acquire does.
func (rp *replica) available(now time.Time, cooldown time.Duration) bool {
	if !rp.healthy.Load() {
		return false
	}
	rp.bmu.Lock()
	defer rp.bmu.Unlock()
	switch rp.brState {
	case brClosed:
		return true
	case brOpen:
		return now.Sub(rp.brOpenedAt) >= cooldown
	default: // half-open: only the single trial slot
		return !rp.brTrial
	}
}

// acquire claims the right to send one request, transitioning an expired
// open breaker to half-open and claiming its trial slot.
func (rp *replica) acquire(now time.Time, cooldown time.Duration) bool {
	if !rp.healthy.Load() {
		return false
	}
	rp.bmu.Lock()
	defer rp.bmu.Unlock()
	switch rp.brState {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(rp.brOpenedAt) < cooldown {
			return false
		}
		rp.brState = brHalfOpen
		rp.brTrial = true
		return true
	default:
		if rp.brTrial {
			return false
		}
		rp.brTrial = true
		return true
	}
}

// report feeds one attempt outcome into the breaker.
func (rp *replica) report(success bool, breakAfter int, now time.Time) {
	rp.bmu.Lock()
	defer rp.bmu.Unlock()
	if rp.brState == brHalfOpen {
		rp.brTrial = false
		if success {
			rp.brState = brClosed
			rp.brFails = 0
			obsBreakerCloses.Inc()
		} else {
			rp.brState = brOpen
			rp.brOpenedAt = now
			obsBreakerOpens.Inc()
		}
		return
	}
	if success {
		rp.brFails = 0
		return
	}
	rp.brFails++
	if rp.brState == brClosed && rp.brFails >= breakAfter {
		rp.brState = brOpen
		rp.brOpenedAt = now
		obsBreakerOpens.Inc()
	}
}

func (rp *replica) breakerState() string {
	rp.bmu.Lock()
	defer rp.bmu.Unlock()
	return breakerName(rp.brState)
}

// latWindow is a rolling per-path latency ring feeding the hedge timer.
type latWindow struct {
	mu   sync.Mutex
	buf  [256]float64 // seconds
	n    int
	pos  int
	sort []float64
}

func (w *latWindow) observe(seconds float64) {
	w.mu.Lock()
	w.buf[w.pos] = seconds
	w.pos = (w.pos + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the nearest-rank q quantile, or (0, false) with fewer
// than minSamples observations.
func (w *latWindow) quantile(q float64, minSamples int) (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < minSamples {
		return 0, false
	}
	w.sort = append(w.sort[:0], w.buf[:w.n]...)
	// Insertion sort: n <= 256 and the window is nearly sorted between
	// calls is not guaranteed, but the cost is still trivial next to a
	// network round trip.
	for i := 1; i < len(w.sort); i++ {
		for j := i; j > 0 && w.sort[j] < w.sort[j-1]; j-- {
			w.sort[j], w.sort[j-1] = w.sort[j-1], w.sort[j]
		}
	}
	idx := int(q * float64(len(w.sort)))
	if idx >= len(w.sort) {
		idx = len(w.sort) - 1
	}
	return time.Duration(w.sort[idx] * float64(time.Second)), true
}

// Router fans client requests across replicas. Create with New, serve its
// Handler, Close when done.
type Router struct {
	cfg      Config
	replicas []*replica

	inflight atomic.Int64

	jmu sync.Mutex
	rng *hv.RNG // retry jitter

	latMu sync.Mutex
	lats  map[string]*latWindow

	merger *merge // nil until first merge; see merge.go
	mergeM sync.Mutex

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New validates the config and starts the prober (and, with MergeInterval
// set, the merge loop).
func New(cfg Config) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	obs.Enable()
	trace.Enable()
	r := &Router{
		cfg:  cfg,
		rng:  hv.NewRNG(cfg.Seed ^ 0xf1ee7),
		lats: make(map[string]*latWindow),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i, u := range cfg.Replicas {
		rp := &replica{
			idx: i,
			url: u,
			upGauge: obs.NewGauge(
				fmt.Sprintf("hdface_fleet_replica_up{replica=%q}", strconv.Itoa(i)),
				"replica availability as seen by the router's prober"),
		}
		// Start optimistic: the first probe round corrects within one
		// interval, and a cold router should not shed its first requests.
		rp.healthy.Store(true)
		rp.upGauge.Set(1)
		r.replicas = append(r.replicas, rp)
	}
	go r.run()
	return r, nil
}

// Close stops the prober and merge loops.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	<-r.done
}

// run is the router's background loop: health probes every ProbeInterval,
// merges every MergeInterval.
func (r *Router) run() {
	defer close(r.done)
	probe := time.NewTicker(r.cfg.ProbeInterval)
	defer probe.Stop()
	var mergeC <-chan time.Time
	if r.cfg.MergeInterval > 0 {
		mt := time.NewTicker(r.cfg.MergeInterval)
		defer mt.Stop()
		mergeC = mt.C
	}
	for {
		select {
		case <-r.stop:
			return
		case <-probe.C:
			r.probeAll()
		case <-mergeC:
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.MergeInterval)
			_, _ = r.MergeOnce(ctx)
			cancel()
		}
	}
}

// probeAll scrapes every replica's /healthz concurrently and applies the
// ejection/rejoin state machine.
func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rp := range r.replicas {
		wg.Add(1)
		go func(rp *replica) {
			defer wg.Done()
			r.probe(rp)
		}(rp)
	}
	wg.Wait()
}

func (r *Router) probe(rp *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	ok, saturated := false, false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.url+"/healthz", nil)
	if err == nil {
		resp, err := r.cfg.Client.Do(req)
		if err == nil {
			var h struct {
				Status string `json:"status"`
			}
			if resp.StatusCode == http.StatusOK &&
				json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) == nil {
				ok = true
				saturated = h.Status == "saturated"
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	rp.saturated.Store(ok && saturated)
	if ok {
		rp.probeFail = 0
		if !rp.healthy.Load() {
			rp.probeOK++
			if rp.probeOK >= r.cfg.RejoinAfter {
				rp.healthy.Store(true)
				rp.upGauge.Set(1)
				obsRejoins.Inc()
			}
		}
		return
	}
	rp.probeOK = 0
	rp.probeFail++
	if rp.healthy.Load() && rp.probeFail >= r.cfg.EjectAfter {
		rp.healthy.Store(false)
		rp.upGauge.Set(0)
		obsEjections.Inc()
	}
}

// availableCount returns how many replicas the picker could use right now.
func (r *Router) availableCount() int {
	now := time.Now()
	n := 0
	for _, rp := range r.replicas {
		if rp.available(now, r.cfg.BreakerCooldown) {
			n++
		}
	}
	return n
}

// pick chooses the next replica for an attempt: available, not yet tried
// by this request if possible, preferring unsaturated replicas and
// breaking ties by lowest inflight. Returns nil when nothing is
// acquirable.
func (r *Router) pick(tried map[*replica]bool) *replica {
	now := time.Now()
	var best *replica
	bestKey := [3]int64{1 << 30, 1 << 30, 1 << 30} // tried, saturated, inflight
	for _, rp := range r.replicas {
		if !rp.available(now, r.cfg.BreakerCooldown) {
			continue
		}
		key := [3]int64{0, 0, rp.inflight.Load()}
		if tried[rp] {
			key[0] = 1
		}
		if rp.saturated.Load() {
			key[1] = 1
		}
		if key[0] < bestKey[0] || (key[0] == bestKey[0] &&
			(key[1] < bestKey[1] || (key[1] == bestKey[1] && key[2] < bestKey[2]))) {
			best, bestKey = rp, key
		}
	}
	if best == nil || !best.acquire(now, r.cfg.BreakerCooldown) {
		return nil
	}
	return best
}

// window returns the rolling latency window for one path.
func (r *Router) window(path string) *latWindow {
	r.latMu.Lock()
	defer r.latMu.Unlock()
	w := r.lats[path]
	if w == nil {
		w = &latWindow{}
		r.lats[path] = w
	}
	return w
}

// jitter returns d scaled by a uniform factor in [0.5, 1.5).
func (r *Router) jitter(d time.Duration) time.Duration {
	r.jmu.Lock()
	f := 0.5 + r.rng.Float64()
	r.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// outcome is one finished replica attempt.
type outcome struct {
	rp      *replica
	status  int
	header  http.Header
	body    []byte
	err     error
	latency time.Duration
	hedge   bool
}

// usable reports whether an outcome should be returned to the client.
// 2xx/3xx succeed; 4xx are the client's own fault and retrying another
// replica would return the same answer; 503 means that replica shed the
// request — another may have room; 5xx and transport errors fail over.
func (o outcome) usable() bool {
	return o.err == nil && o.status < 500 && o.status != http.StatusServiceUnavailable
}

// hedgeable paths are idempotent reads; a duplicated /feedback would feed
// the same evidence twice.
func hedgeable(path string) bool {
	return path == "/predict" || path == "/detect"
}

// forward proxies one request with retries, hedging and failover. The
// whole body is already in hand (bounded read at the handler) so every
// attempt can resend it.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, path string, body []byte) {
	// Health-scaled load shedding: with half the fleet gone, admit half
	// the load. Queued-up retries on survivors are how a partial outage
	// becomes a total one.
	avail := r.availableCount()
	if avail == 0 {
		obsNoReplica.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "no available replicas")
		return
	}
	cap64 := int64(r.cfg.MaxInflight*avail) / int64(len(r.replicas))
	if cap64 < 1 {
		cap64 = 1
	}
	if r.inflight.Add(1) > cap64 {
		r.inflight.Add(-1)
		obsShed.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "router saturated (%d available replicas)", avail)
		return
	}
	defer r.inflight.Add(-1)
	obsRequests.Inc()

	// The client's budget governs everything downstream: per-attempt
	// deadlines derive from what remains of it.
	budget := r.cfg.MaxDeadline
	if q := req.URL.Query().Get("deadline"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d > 0 && d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(req.Context(), budget)
	defer cancel()

	tr := trace.New("route"+path, req.Header.Get(trace.Header))
	if tr != nil {
		w.Header().Set(trace.Header, tr.ID())
	}
	defer tr.Finish()

	win := r.window(path)
	results := make(chan outcome, r.cfg.MaxAttempts+2)
	tried := make(map[*replica]bool)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	launches, outstanding := 0, 0

	launch := func(hedge bool) bool {
		rp := r.pick(tried)
		if rp == nil {
			return false
		}
		tried[rp] = true
		remaining := time.Until(deadlineOf(ctx))
		if remaining <= 0 {
			return false
		}
		// Deadline propagation: tell the replica how much budget is left,
		// shaved so its reply can still cross the wire inside ours.
		attemptBudget := remaining - remaining/10
		actx, acancel := context.WithTimeout(ctx, remaining)
		cancels = append(cancels, acancel)
		launches++
		outstanding++
		rp.inflight.Add(1)
		obsAttempts.Inc()
		if hedge {
			obsHedges.Inc()
		}
		go func() {
			start := time.Now()
			status, header, respBody, err := r.attempt(actx, rp, req.Method, path,
				req.URL.Query(), attemptBudget, body, tr)
			results <- outcome{rp: rp, status: status, header: header, body: respBody,
				err: err, latency: time.Since(start), hedge: hedge}
		}()
		return true
	}

	if !launch(false) {
		obsNoReplica.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "no available replicas")
		return
	}

	var hedgeC, retryC <-chan time.Time
	var hedgeT, retryT *time.Timer
	defer func() {
		if hedgeT != nil {
			hedgeT.Stop()
		}
		if retryT != nil {
			retryT.Stop()
		}
	}()
	armHedge := func() {
		if !hedgeable(path) || launches > r.cfg.MaxAttempts {
			return
		}
		if p, ok := win.quantile(r.cfg.HedgeQuantile, r.cfg.HedgeMinSamples); ok {
			hedgeT = time.NewTimer(p)
			hedgeC = hedgeT.C
		}
	}
	armHedge()

	retries := 0
	for {
		select {
		case out := <-results:
			outstanding--
			out.rp.inflight.Add(-1)
			if out.usable() {
				out.rp.report(out.status < 500, r.cfg.BreakAfter, time.Now())
				out.rp.served.Add(1)
				if out.status == http.StatusOK {
					win.observe(out.latency.Seconds())
				}
				if out.hedge {
					obsHedgeWins.Inc()
				}
				if tr != nil {
					tr.SetAttr("replica", out.rp.url)
					tr.SetAttr("attempts", strconv.Itoa(launches))
				}
				copyResponse(w, out)
				return
			}
			out.rp.report(false, r.cfg.BreakAfter, time.Now())
			out.rp.failed.Add(1)
			// Failover: relaunch after a jittered backoff unless the
			// attempt budget is spent. If other attempts are still in
			// flight (a hedge), wait for them instead of giving up.
			if launches <= r.cfg.MaxAttempts && retryC == nil {
				retries++
				obsRetries.Inc()
				backoff := r.jitter(r.cfg.RetryBackoff << (retries - 1))
				retryT = time.NewTimer(backoff)
				retryC = retryT.C
			} else if outstanding == 0 && retryC == nil {
				tr.SetError(true)
				writeErr(w, http.StatusBadGateway, "all replicas failed (last: %s)", out.errString())
				return
			}
		case <-hedgeC:
			hedgeC = nil
			if launches <= r.cfg.MaxAttempts {
				launch(true)
			}
		case <-retryC:
			retryC = nil
			if retryT != nil {
				retryT.Stop()
				retryT = nil
			}
			if !launch(false) && outstanding == 0 {
				tr.SetError(true)
				writeErr(w, http.StatusServiceUnavailable, "no available replicas after failover")
				return
			}
		case <-ctx.Done():
			tr.SetError(true)
			writeErr(w, http.StatusGatewayTimeout, "request budget exhausted after %d attempts", launches)
			return
		}
	}
}

func (o outcome) errString() string {
	if o.err != nil {
		return o.err.Error()
	}
	return fmt.Sprintf("status %d", o.status)
}

// attempt performs one upstream request, rewriting the deadline parameter
// to the remaining budget and threading the trace ID so the replica's
// spans stitch to the router's.
func (r *Router) attempt(ctx context.Context, rp *replica, method, path string,
	query url.Values, budget time.Duration, body []byte, tr *trace.Trace) (int, http.Header, []byte, error) {
	q := url.Values{}
	for k, vs := range query {
		if k == "deadline" {
			continue
		}
		q[k] = vs
	}
	if path == "/detect" && budget > 0 {
		q.Set("deadline", budget.String())
	}
	u := rp.url + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if tr != nil {
		req.Header.Set(trace.Header, tr.ID())
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// deadlineOf returns ctx's deadline; forward always sets one.
func deadlineOf(ctx context.Context) time.Time {
	d, ok := ctx.Deadline()
	if !ok {
		return time.Now().Add(time.Hour)
	}
	return d
}

// copyResponse relays a winning attempt to the client.
func copyResponse(w http.ResponseWriter, out outcome) {
	if ct := out.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := out.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}
