package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/online"
)

// feedWrong POSTs n feedback samples to one replica, labelled opposite to
// whatever its live model predicts, then waits for the evidence to land
// in the replica's delta.
func feedWrong(t *testing.T, base string, img []byte, n int) {
	t.Helper()
	code, body := postPGM(t, base+"/predict", img)
	if code != http.StatusOK {
		t.Fatalf("predict: status %d (%s)", code, body)
	}
	var pr struct {
		Label int `json:"label"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	wrong := strconv.Itoa(1 - pr.Label)
	for i := 0; i < n; i++ {
		if code, body := postPGM(t, base+"/feedback?label="+wrong, img); code != http.StatusAccepted {
			t.Fatalf("feedback: status %d (%s)", code, body)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		resp, err := http.Get(base + "/delta")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		d, err := online.DecodeDelta(resp.Body)
		return err == nil && d.Samples() >= int64(n)
	}, "replica never absorbed its feedback into the delta")
}

func replicaFingerprint(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/models/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Hdface-Model-Fingerprint")
}

// TestMergeOnceEndToEnd drives the full feedback loop: two replicas
// accumulate disjoint evidence, one merge round bundles it, folds it into
// the shared base and pushes the candidate through both adoption gates,
// after which the fleet converges on one fingerprint and the next round
// finds no evidence (the accumulators rebased).
func TestMergeOnceEndToEnd(t *testing.T) {
	p := trainedPipeline(t)
	r0 := newTestReplica(t, p, "r0")
	r1 := newTestReplica(t, p, "r1")
	router := newTestRouter(t, Config{}, r0, r1)

	img0 := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(8)))
	img1 := pgmBytes(t, dataset.RenderNonFace(48, 48, hv.NewRNG(9)))
	feedWrong(t, r0.ts.URL, img0, 3)
	feedWrong(t, r1.ts.URL, img1, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := router.MergeOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != "merged" {
		t.Fatalf("outcome %q, want merged (%+v)", rep.Outcome, rep)
	}
	if rep.Samples < 6 {
		t.Fatalf("merged %d samples, want evidence from both replicas (>= 6)", rep.Samples)
	}
	if rep.Pulled != 2 || rep.PullErrors != 0 {
		t.Fatalf("pulled=%d errors=%d, want 2/0", rep.Pulled, rep.PullErrors)
	}
	if rep.Adopted != 2 {
		t.Fatalf("adopted=%d rejected=%d, want both replicas adopting", rep.Adopted, rep.Rejected)
	}

	// Convergence: both replicas now serve the identical merged model.
	fp0, fp1 := replicaFingerprint(t, r0.ts.URL), replicaFingerprint(t, r1.ts.URL)
	if fp0 == "" || fp0 != fp1 {
		t.Fatalf("fleet diverged after merge: %s vs %s", fp0, fp1)
	}
	if fp0 == rep.Base {
		t.Fatal("merge with evidence produced an unchanged model")
	}

	// The accumulators rebased onto the adopted model: a second round has
	// nothing to merge, so re-delivery cannot double-apply evidence.
	rep2, err := router.MergeOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcome != "no_evidence" {
		t.Fatalf("second round outcome %q, want no_evidence (%+v)", rep2.Outcome, rep2)
	}

	// The merge surfaces in the router's health.
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()
	h := routerHealth(t, rt.URL)
	if h.Merge == nil || h.Merge.Rounds < 2 || h.Merge.Last.Outcome != "no_evidence" {
		t.Fatalf("healthz merge block = %+v", h.Merge)
	}
}

// TestMergeSurvivesPartition: with one replica unreachable the merge
// still completes from the survivor's evidence, and when the partitioned
// replica returns, its cumulative delta (accumulated against the old
// base) is skipped — not misapplied — until it adopts the fleet model.
func TestMergeSurvivesPartition(t *testing.T) {
	p := trainedPipeline(t)
	r0 := newTestReplica(t, p, "r0")
	r1 := newTestReplica(t, p, "r1")
	// EjectAfter is effectively infinite so the partitioned replica stays
	// in the merge's pull set and its failures are counted
	// deterministically (the prober would otherwise race the merge).
	router := newTestRouter(t, Config{EjectAfter: 1 << 30}, r0, r1)

	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(10)))
	feedWrong(t, r0.ts.URL, img, 3)
	feedWrong(t, r1.ts.URL, pgmBytes(t, dataset.RenderNonFace(48, 48, hv.NewRNG(11))), 3)

	r1.kill() // feedback-plane partition: /delta and /models/push now fail

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := router.MergeOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != "merged" {
		t.Fatalf("outcome %q, want merged despite the partition (%+v)", rep.Outcome, rep)
	}
	if rep.PullErrors != 1 || rep.Adopted != 1 || rep.Rejected != 1 {
		t.Fatalf("partition round: %+v, want 1 pull error, 1 adoption, 1 failed push", rep)
	}

	// Heal the partition and give the merged base fresh evidence. r1
	// still serves the old base with its old delta; the next round must
	// NOT fold that stale-base evidence into the new model (Skipped) but
	// must push the fleet model to r1, which adopts and converges.
	r1.revive()
	feedWrong(t, r0.ts.URL, img, 3)
	rep2, err := router.MergeOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcome != "merged" {
		t.Fatalf("healed round outcome %q (%+v)", rep2.Outcome, rep2)
	}
	if rep2.Skipped == 0 {
		t.Fatalf("healed round %+v: stale-base delta was not excluded", rep2)
	}
	if rep2.Adopted != 2 {
		t.Fatalf("healed round %+v: returning replica never adopted the fleet model", rep2)
	}
	if fp0, fp1 := replicaFingerprint(t, r0.ts.URL), replicaFingerprint(t, r1.ts.URL); fp0 != fp1 {
		t.Fatalf("partitioned replica never converged: %s vs %s", fp0, fp1)
	}
}
