package track

import (
	"fmt"
	"sort"
)

// GroundTruth is one frame's true boxes per subject: Truth[frame][subject].
type GroundTruth [][][4]int

// MOTReport aggregates CLEAR-MOT-style tracking quality over a clip.
type MOTReport struct {
	Frames     int
	Matches    int // track box matched the right subject's box
	Misses     int // subject present but no track box overlapped it
	FalsePos   int // track box overlapping no subject
	IDSwitches int // a subject's matched track ID changed between frames
}

// MOTA returns the multiple-object tracking accuracy:
// 1 - (misses + false positives + ID switches) / ground-truth objects.
func (r MOTReport) MOTA() float64 {
	gt := r.Matches + r.Misses
	if gt == 0 {
		return 0
	}
	return 1 - float64(r.Misses+r.FalsePos+r.IDSwitches)/float64(gt)
}

// String summarises the report.
func (r MOTReport) String() string {
	return fmt.Sprintf("frames=%d matches=%d misses=%d fp=%d idsw=%d mota=%.3f",
		r.Frames, r.Matches, r.Misses, r.FalsePos, r.IDSwitches, r.MOTA())
}

// iou computes intersection-over-union of two boxes.
func iou(a, b [4]int) float64 {
	ix0, iy0 := maxI(a[0], b[0]), maxI(a[1], b[1])
	ix1, iy1 := minI(a[2], b[2]), minI(a[3], b[3])
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	areaA := float64((a[2] - a[0]) * (a[3] - a[1]))
	areaB := float64((b[2] - b[0]) * (b[3] - b[1]))
	u := areaA + areaB - inter
	if u <= 0 {
		return 0
	}
	return inter / u
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Obs is one tracker output observation: track ID and box at a frame. The
// identity metrics accept flat observation lists so they can score remote
// trackers (the /stream endpoint's NDJSON events) as well as local ones.
type Obs struct {
	ID    int
	Frame int
	Box   [4]int
}

// Observations flattens a tracker's history into per-frame observations.
func Observations(tk *Tracker) []Obs {
	var out []Obs
	for _, tr := range tk.All() {
		for i, f := range tr.Frames {
			out = append(out, Obs{ID: tr.ID, Frame: f, Box: tr.Boxes[i]})
		}
	}
	return out
}

// IDF1Report carries the identity-F1 decomposition: IDTP observations where
// a track's box covered the subject globally assigned to that track, IDFP
// track observations assigned to no subject (or the wrong one), IDFN
// subject appearances no assigned track covered.
type IDF1Report struct {
	IDTP, IDFP, IDFN int
}

// F1 returns 2·IDTP / (2·IDTP + IDFP + IDFN), the ratio of correctly
// identified observations — the standard MOT identity-F1.
func (r IDF1Report) F1() float64 {
	den := 2*r.IDTP + r.IDFP + r.IDFN
	if den == 0 {
		return 0
	}
	return 2 * float64(r.IDTP) / float64(den)
}

// String summarises the report.
func (r IDF1Report) String() string {
	return fmt.Sprintf("idtp=%d idfp=%d idfn=%d idf1=%.3f", r.IDTP, r.IDFP, r.IDFN, r.F1())
}

// IDF1 computes identity-F1 of tracker observations against per-frame
// ground truth: each track ID is globally assigned to at most one subject
// (and vice versa) so as to maximise the frames of agreement, then every
// observation and every subject appearance is scored against that
// assignment. A track box agrees with a subject at a frame when their IoU
// is at least iouThresh. The assignment is a deterministic greedy matching
// on (overlap count desc, track ID asc, subject asc) — exact for the small
// track/subject counts the benches use.
func IDF1(obs []Obs, truth GroundTruth, iouThresh float64) IDF1Report {
	// overlap[(track, subject)] = frames where the track box covers the
	// subject's ground-truth box.
	type pair struct{ id, subject int }
	overlap := map[pair]int{}
	totalGT := 0
	for f, subjects := range truth {
		for s, gt := range subjects {
			if gt == ([4]int{}) {
				continue
			}
			totalGT++
			for _, o := range obs {
				if o.Frame != f {
					continue
				}
				if iou(o.Box, gt) >= iouThresh {
					overlap[pair{o.ID, s}]++
				}
			}
		}
	}
	pairs := make([]pair, 0, len(overlap))
	for p := range overlap {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		pa, pb := pairs[a], pairs[b]
		if overlap[pa] != overlap[pb] {
			return overlap[pa] > overlap[pb]
		}
		if pa.id != pb.id {
			return pa.id < pb.id
		}
		return pa.subject < pb.subject
	})
	usedID, usedSubj := map[int]bool{}, map[int]bool{}
	idtp := 0
	for _, p := range pairs {
		if usedID[p.id] || usedSubj[p.subject] {
			continue
		}
		usedID[p.id] = true
		usedSubj[p.subject] = true
		idtp += overlap[p]
	}
	return IDF1Report{
		IDTP: idtp,
		IDFP: len(obs) - idtp,
		IDFN: totalGT - idtp,
	}
}

// Evaluate scores a finished tracker against per-frame ground truth at the
// given IoU threshold. Track boxes are looked up by the frame index they
// were recorded at.
func Evaluate(tk *Tracker, truth GroundTruth, iouThresh float64) MOTReport {
	rep := MOTReport{Frames: len(truth)}
	// Collect every track's box per frame.
	type obs struct {
		id  int
		box [4]int
	}
	perFrame := make(map[int][]obs)
	for _, tr := range tk.All() {
		for i, f := range tr.Frames {
			perFrame[f] = append(perFrame[f], obs{tr.ID, tr.Boxes[i]})
		}
	}
	lastID := map[int]int{} // subject -> last matched track ID
	for f, subjects := range truth {
		observations := perFrame[f]
		usedObs := make([]bool, len(observations))
		for s, gt := range subjects {
			if gt == ([4]int{}) {
				continue // subject absent this frame
			}
			best, bestIoU := -1, iouThresh
			for oi, o := range observations {
				if usedObs[oi] {
					continue
				}
				if v := iou(o.box, gt); v >= bestIoU {
					best, bestIoU = oi, v
				}
			}
			if best == -1 {
				rep.Misses++
				continue
			}
			usedObs[best] = true
			rep.Matches++
			id := observations[best].id
			if prev, ok := lastID[s]; ok && prev != id {
				rep.IDSwitches++
			}
			lastID[s] = id
		}
		for oi := range observations {
			if !usedObs[oi] {
				rep.FalsePos++
			}
		}
	}
	return rep
}
