package track

import "fmt"

// GroundTruth is one frame's true boxes per subject: Truth[frame][subject].
type GroundTruth [][][4]int

// MOTReport aggregates CLEAR-MOT-style tracking quality over a clip.
type MOTReport struct {
	Frames     int
	Matches    int // track box matched the right subject's box
	Misses     int // subject present but no track box overlapped it
	FalsePos   int // track box overlapping no subject
	IDSwitches int // a subject's matched track ID changed between frames
}

// MOTA returns the multiple-object tracking accuracy:
// 1 - (misses + false positives + ID switches) / ground-truth objects.
func (r MOTReport) MOTA() float64 {
	gt := r.Matches + r.Misses
	if gt == 0 {
		return 0
	}
	return 1 - float64(r.Misses+r.FalsePos+r.IDSwitches)/float64(gt)
}

// String summarises the report.
func (r MOTReport) String() string {
	return fmt.Sprintf("frames=%d matches=%d misses=%d fp=%d idsw=%d mota=%.3f",
		r.Frames, r.Matches, r.Misses, r.FalsePos, r.IDSwitches, r.MOTA())
}

// iou computes intersection-over-union of two boxes.
func iou(a, b [4]int) float64 {
	ix0, iy0 := maxI(a[0], b[0]), maxI(a[1], b[1])
	ix1, iy1 := minI(a[2], b[2]), minI(a[3], b[3])
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	areaA := float64((a[2] - a[0]) * (a[3] - a[1]))
	areaB := float64((b[2] - b[0]) * (b[3] - b[1]))
	u := areaA + areaB - inter
	if u <= 0 {
		return 0
	}
	return inter / u
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Evaluate scores a finished tracker against per-frame ground truth at the
// given IoU threshold. Track boxes are looked up by the frame index they
// were recorded at.
func Evaluate(tk *Tracker, truth GroundTruth, iouThresh float64) MOTReport {
	rep := MOTReport{Frames: len(truth)}
	// Collect every track's box per frame.
	type obs struct {
		id  int
		box [4]int
	}
	perFrame := make(map[int][]obs)
	for _, tr := range tk.All() {
		for i, f := range tr.Frames {
			perFrame[f] = append(perFrame[f], obs{tr.ID, tr.Boxes[i]})
		}
	}
	lastID := map[int]int{} // subject -> last matched track ID
	for f, subjects := range truth {
		observations := perFrame[f]
		usedObs := make([]bool, len(observations))
		for s, gt := range subjects {
			if gt == ([4]int{}) {
				continue // subject absent this frame
			}
			best, bestIoU := -1, iouThresh
			for oi, o := range observations {
				if usedObs[oi] {
					continue
				}
				if v := iou(o.box, gt); v >= bestIoU {
					best, bestIoU = oi, v
				}
			}
			if best == -1 {
				rep.Misses++
				continue
			}
			usedObs[best] = true
			rep.Matches++
			id := observations[best].id
			if prev, ok := lastID[s]; ok && prev != id {
				rep.IDSwitches++
			}
			lastID[s] = id
		}
		for oi := range observations {
			if !usedObs[oi] {
				rep.FalsePos++
			}
		}
	}
	return rep
}
