package track

import (
	"testing"

	"hdface/internal/hv"
)

// TestLongSequenceInvariants drives the tracker through hundreds of frames
// of randomized entry/exit traffic and asserts the structural invariants a
// long-lived streaming service depends on:
//
//   - each track's Frames are strictly increasing;
//   - a retired track is never resurrected (never re-touched, never back in
//     Active, frame list frozen);
//   - All() is exactly Active ∪ Retired with no duplicate tracks and no
//     duplicate IDs.
//
// Run under -race via scripts/check.sh.
func TestLongSequenceInvariants(t *testing.T) {
	const (
		frames   = 400
		slots    = 6
		d        = 512
		maxSpeed = 6
	)
	r := hv.NewRNG(4242)
	type walker struct {
		sample       func() *hv.Vector
		x, y, dx, dy int
		left         int // frames until this identity leaves
	}
	var live []*walker
	spawn := func() *walker {
		proto := hv.NewRand(r, d)
		return &walker{
			sample: func() *hv.Vector {
				v := proto.Clone()
				v.Xor(v, hv.NewRandBiased(r, d, 0.08))
				return v
			},
			x: r.Intn(400), y: r.Intn(400),
			dx: r.Intn(2*maxSpeed+1) - maxSpeed, dy: r.Intn(2*maxSpeed+1) - maxSpeed,
			left: 5 + r.Intn(60),
		}
	}

	tk := New(Config{MaxDist: 64}, 77)
	retiredLen := map[int]int{} // retired track ID -> frozen len(Frames)
	for f := 0; f < frames; f++ {
		// Random entry/exit churn.
		for len(live) < slots && r.Intn(3) == 0 {
			live = append(live, spawn())
		}
		var dets []Detection
		keep := live[:0]
		for _, w := range live {
			if w.left--; w.left > 0 {
				keep = append(keep, w)
			}
			// Random per-frame dropouts simulate detector misses.
			if r.Intn(8) == 0 {
				continue
			}
			dets = append(dets, Detection{
				Box:     [4]int{w.x, w.y, w.x + 48, w.y + 48},
				Feature: w.sample(),
			})
			w.x += w.dx
			w.y += w.dy
		}
		live = keep

		touched, err := tk.StepErr(dets)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		for _, tr := range touched {
			if _, was := retiredLen[tr.ID]; was {
				t.Fatalf("frame %d: retired track %d was touched again", f, tr.ID)
			}
		}

		// Frames strictly increasing per track.
		for _, tr := range tk.All() {
			for i := 1; i < len(tr.Frames); i++ {
				if tr.Frames[i] <= tr.Frames[i-1] {
					t.Fatalf("frame %d: track %d has non-increasing frames %v", f, tr.ID, tr.Frames)
				}
			}
		}

		// Retired tracks stay retired and frozen.
		activeIDs := map[int]bool{}
		for _, tr := range tk.Active() {
			if activeIDs[tr.ID] {
				t.Fatalf("frame %d: duplicate active ID %d", f, tr.ID)
			}
			activeIDs[tr.ID] = true
		}
		for _, tr := range tk.Retired() {
			if activeIDs[tr.ID] {
				t.Fatalf("frame %d: track %d is both active and retired", f, tr.ID)
			}
			if n, was := retiredLen[tr.ID]; was {
				if len(tr.Frames) != n {
					t.Fatalf("frame %d: retired track %d grew from %d to %d observations",
						f, tr.ID, n, len(tr.Frames))
				}
			} else {
				retiredLen[tr.ID] = len(tr.Frames)
			}
		}

		// All() = active ∪ retired, no duplicates.
		if len(tk.All()) != len(tk.Active())+len(tk.Retired()) {
			t.Fatalf("frame %d: All()=%d != active %d + retired %d",
				f, len(tk.All()), len(tk.Active()), len(tk.Retired()))
		}
		seen := map[int]bool{}
		for _, tr := range tk.All() {
			if seen[tr.ID] {
				t.Fatalf("frame %d: duplicate ID %d in All()", f, tr.ID)
			}
			seen[tr.ID] = true
		}
	}
	if len(tk.Retired()) == 0 {
		t.Fatal("scenario never retired a track; entry/exit churn too weak to exercise the invariants")
	}
}
