package track

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hdface/internal/hv"
)

// ident builds a stable appearance prototype and a noisy-sample generator.
func ident(r *hv.RNG, d int) (proto *hv.Vector, sample func() *hv.Vector) {
	proto = hv.NewRand(r, d)
	return proto, func() *hv.Vector {
		v := proto.Clone()
		v.Xor(v, hv.NewRandBiased(r, d, 0.1))
		return v
	}
}

func boxAt(x, y int) [4]int { return [4]int{x, y, x + 48, y + 48} }

func TestSingleTargetKeepsID(t *testing.T) {
	r := hv.NewRNG(1)
	_, sample := ident(r, 1024)
	tk := New(Config{}, 2)
	for f := 0; f < 10; f++ {
		tk.Step([]Detection{{Box: boxAt(10+8*f, 20), Feature: sample()}})
	}
	if len(tk.Active()) != 1 {
		t.Fatalf("active tracks %d, want 1", len(tk.Active()))
	}
	tr := tk.Active()[0]
	if tr.ID != 0 || len(tr.Boxes) != 10 {
		t.Fatalf("track fragmented: id=%d boxes=%d", tr.ID, len(tr.Boxes))
	}
}

func TestTwoTargetsKeepDistinctIDs(t *testing.T) {
	r := hv.NewRNG(3)
	_, sampleA := ident(r, 1024)
	_, sampleB := ident(r, 1024)
	tk := New(Config{}, 4)
	for f := 0; f < 8; f++ {
		tk.Step([]Detection{
			{Box: boxAt(10+6*f, 10), Feature: sampleA()},
			{Box: boxAt(200-6*f, 120), Feature: sampleB()},
		})
	}
	if len(tk.Active()) != 2 {
		t.Fatalf("active tracks %d, want 2", len(tk.Active()))
	}
	a, b := tk.Active()[0], tk.Active()[1]
	if a.ID == b.ID {
		t.Fatal("tracks share an ID")
	}
	if len(a.Boxes) != 8 || len(b.Boxes) != 8 {
		t.Fatalf("fragmented: %d / %d boxes", len(a.Boxes), len(b.Boxes))
	}
}

func TestAppearanceSeparatesCrossingTargets(t *testing.T) {
	// Two targets pass near each other; appearance must keep identities
	// apart even when both are within the positional gate.
	r := hv.NewRNG(5)
	protoA, sampleA := ident(r, 2048)
	_, sampleB := ident(r, 2048)
	tk := New(Config{MaxDist: 100}, 6)
	for f := 0; f < 9; f++ {
		tk.Step([]Detection{
			{Box: boxAt(10+10*f, 50), Feature: sampleA()},
			{Box: boxAt(90-10*f, 50), Feature: sampleB()},
		})
	}
	if len(tk.Active()) != 2 {
		t.Fatalf("active %d, want 2", len(tk.Active()))
	}
	// Track 0 must still match identity A's appearance better.
	tr0 := tk.Active()[0]
	if sim := tr0.Template.HammingSim(protoA); sim < 0.7 {
		t.Fatalf("track 0 template drifted from identity A: %v", sim)
	}
	// And its trajectory must be monotone rightward (A's motion).
	xs := tr0.Boxes
	for i := 1; i < len(xs); i++ {
		if xs[i][0] < xs[i-1][0] {
			t.Fatalf("track 0 switched identity at step %d: %v", i, xs)
		}
	}
}

func TestTrackRetiresAfterMisses(t *testing.T) {
	r := hv.NewRNG(7)
	_, sample := ident(r, 512)
	tk := New(Config{MaxMisses: 2}, 8)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sample()}})
	tk.Step(nil)
	tk.Step(nil)
	if len(tk.Active()) != 0 {
		t.Fatal("track not retired after misses")
	}
	if len(tk.Retired()) != 1 {
		t.Fatal("retired list empty")
	}
	if len(tk.All()) != 1 {
		t.Fatal("All() incomplete")
	}
}

func TestMissedThenReacquiredWithinBudget(t *testing.T) {
	r := hv.NewRNG(9)
	_, sample := ident(r, 1024)
	tk := New(Config{MaxMisses: 3}, 10)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sample()}})
	tk.Step(nil) // one miss
	tk.Step([]Detection{{Box: boxAt(20, 10), Feature: sample()}})
	if len(tk.Active()) != 1 || len(tk.Active()[0].Boxes) != 2 {
		t.Fatalf("reacquisition failed: %+v", tk)
	}
	if tk.Active()[0].Misses != 0 {
		t.Fatal("miss counter not reset")
	}
}

func TestPositionalGateSpawnsNewTrack(t *testing.T) {
	// Same appearance but teleported far away: the positional gate must
	// force a new identity.
	r := hv.NewRNG(11)
	_, sample := ident(r, 512)
	tk := New(Config{MaxDist: 30}, 12)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: sample()}})
	tk.Step([]Detection{{Box: boxAt(500, 500), Feature: sample()}})
	if len(tk.Active()) != 2 {
		t.Fatalf("teleport did not spawn: %d active", len(tk.Active()))
	}
}

func TestAppearanceGateSpawnsNewTrack(t *testing.T) {
	r := hv.NewRNG(13)
	_, sampleA := ident(r, 512)
	_, sampleB := ident(r, 512)
	tk := New(Config{}, 14)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sampleA()}})
	// Same place, different face.
	tk.Step([]Detection{{Box: boxAt(12, 10), Feature: sampleB()}})
	if len(tk.Active()) != 2 {
		t.Fatalf("appearance gate failed: %d active", len(tk.Active()))
	}
}

func TestBlendModes(t *testing.T) {
	r := hv.NewRNG(15)
	a, b := hv.NewRand(r, 512), hv.NewRand(r, 512)
	// Blend 1: template replaced.
	tk := New(Config{Blend: F(1), MinSim: F(0.01), MaxDist: 1000}, 16)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: a}})
	tk.Step([]Detection{{Box: boxAt(1, 0), Feature: b}})
	if !tk.Active()[0].Template.Equal(b) {
		t.Fatal("blend=1 did not replace template")
	}
	// Explicit Blend 0 (the documented freeze): template unchanged. This
	// regressed once — a float zero was conflated with "unset" and silently
	// became the 0.5 default.
	tk2 := New(Config{Blend: F(0), MinSim: F(0.01), MaxDist: 1000}, 17)
	tk2.Step([]Detection{{Box: boxAt(0, 0), Feature: a}})
	tk2.Step([]Detection{{Box: boxAt(1, 0), Feature: b}})
	if !tk2.Active()[0].Template.Equal(a) {
		t.Fatal("blend=0 did not keep template")
	}
}

func TestExplicitZeroMinSimDisablesGate(t *testing.T) {
	// MinSim 0 must disable the appearance gate: a completely different
	// face at the same position still matches the existing track.
	r := hv.NewRNG(21)
	_, sampleA := ident(r, 512)
	_, sampleB := ident(r, 512)
	tk := New(Config{MinSim: F(0)}, 22)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sampleA()}})
	tk.Step([]Detection{{Box: boxAt(12, 10), Feature: sampleB()}})
	if len(tk.Active()) != 1 {
		t.Fatalf("MinSim=0 still gated: %d active tracks, want 1", len(tk.Active()))
	}
	// The nil (unset) field must still take the 0.55 default: same setup
	// with defaults spawns a second track (see TestAppearanceGateSpawnsNewTrack).
	tk2 := New(Config{}, 22)
	tk2.Step([]Detection{{Box: boxAt(10, 10), Feature: sampleA()}})
	tk2.Step([]Detection{{Box: boxAt(12, 10), Feature: sampleB()}})
	if len(tk2.Active()) != 2 {
		t.Fatalf("unset MinSim lost its default: %d active tracks, want 2", len(tk2.Active()))
	}
}

func TestStepPanicsOnNilFeature(t *testing.T) {
	tk := New(Config{}, 18)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: hv.NewRand(hv.NewRNG(1), 64)}})
	defer func() {
		if recover() == nil {
			t.Fatal("nil feature did not panic")
		}
	}()
	tk.Step([]Detection{{Box: boxAt(0, 0)}})
}

func TestStepErrReturnsTypedErrorAndPreservesState(t *testing.T) {
	tk := New(Config{}, 18)
	good := hv.NewRand(hv.NewRNG(1), 64)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: good}})

	// Nil feature: typed error naming the detection, no state change.
	_, err := tk.StepErr([]Detection{
		{Box: boxAt(0, 0), Feature: good},
		{Box: boxAt(50, 0)},
	})
	var derr *DetectionError
	if !errors.As(err, &derr) {
		t.Fatalf("want *DetectionError, got %T (%v)", err, err)
	}
	if derr.Index != 1 {
		t.Fatalf("error names detection %d, want 1", derr.Index)
	}
	if tk.Frame() != 1 {
		t.Fatalf("frame advanced to %d on a rejected step", tk.Frame())
	}
	if n := len(tk.Active()[0].Boxes); n != 1 {
		t.Fatalf("rejected step mutated a track: %d boxes", n)
	}

	// Dimension mismatch against the live template is rejected too.
	_, err = tk.StepErr([]Detection{{Box: boxAt(0, 0), Feature: hv.NewRand(hv.NewRNG(2), 128)}})
	if !errors.As(err, &derr) {
		t.Fatalf("dimension mismatch: want *DetectionError, got %T (%v)", err, err)
	}

	// A clean frame still works after rejections.
	if _, err := tk.StepErr([]Detection{{Box: boxAt(2, 0), Feature: good}}); err != nil {
		t.Fatalf("clean step after rejection: %v", err)
	}
}

// TestAssociationTieBreakDeterministic pins the tie-break order: with every
// candidate score exactly equal, the lowest (track, detection) pair wins.
func TestAssociationTieBreakDeterministic(t *testing.T) {
	f := hv.NewRand(hv.NewRNG(33), 256)
	for run := 0; run < 50; run++ {
		tk := New(Config{Blend: F(0), MaxDist: 1000}, 34)
		// Two tracks spawned at the same box with identical templates.
		tk.Step([]Detection{
			{Box: boxAt(0, 0), Feature: f.Clone()},
			{Box: boxAt(0, 0), Feature: f.Clone()},
		})
		// Two identical detections: all four candidate scores tie exactly.
		touched, err := tk.StepErr([]Detection{
			{Box: boxAt(0, 0), Feature: f.Clone()},
			{Box: boxAt(0, 0), Feature: f.Clone()},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(touched) != 2 || touched[0].ID != 0 || touched[1].ID != 1 {
			ids := []int{}
			for _, tr := range touched {
				ids = append(ids, tr.ID)
			}
			t.Fatalf("run %d: tie-break order changed: touched IDs %v, want [0 1]", run, ids)
		}
	}
}

// TestStepDeterministicAcrossRuns replays a noisy multi-target scenario
// twice and requires byte-identical ID assignment — the determinism the
// streaming service's repeated-run gate relies on.
func TestStepDeterministicAcrossRuns(t *testing.T) {
	replay := func() string {
		r := hv.NewRNG(99)
		_, sampleA := ident(r, 1024)
		_, sampleB := ident(r, 1024)
		_, sampleC := ident(r, 1024)
		tk := New(Config{MaxDist: 120}, 100)
		var sb strings.Builder
		for f := 0; f < 30; f++ {
			var dets []Detection
			dets = append(dets, Detection{Box: boxAt(10+5*f, 40), Feature: sampleA()})
			if f >= 5 { // B enters late
				dets = append(dets, Detection{Box: boxAt(200-5*f, 40), Feature: sampleB()})
			}
			if f < 20 { // C exits early
				dets = append(dets, Detection{Box: boxAt(100, 10+4*f), Feature: sampleC()})
			}
			touched := tk.Step(dets)
			for _, tr := range touched {
				fmt.Fprintf(&sb, "%d:%d@%v;", f, tr.ID, tr.Last())
			}
		}
		return sb.String()
	}
	a, b := replay(), replay()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestStringSummary(t *testing.T) {
	tk := New(Config{}, 19)
	if !strings.Contains(tk.String(), "active:0") {
		t.Fatalf("summary %q", tk.String())
	}
}
