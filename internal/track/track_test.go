package track

import (
	"strings"
	"testing"

	"hdface/internal/hv"
)

// ident builds a stable appearance prototype and a noisy-sample generator.
func ident(r *hv.RNG, d int) (proto *hv.Vector, sample func() *hv.Vector) {
	proto = hv.NewRand(r, d)
	return proto, func() *hv.Vector {
		v := proto.Clone()
		v.Xor(v, hv.NewRandBiased(r, d, 0.1))
		return v
	}
}

func boxAt(x, y int) [4]int { return [4]int{x, y, x + 48, y + 48} }

func TestSingleTargetKeepsID(t *testing.T) {
	r := hv.NewRNG(1)
	_, sample := ident(r, 1024)
	tk := New(Config{}, 2)
	for f := 0; f < 10; f++ {
		tk.Step([]Detection{{Box: boxAt(10+8*f, 20), Feature: sample()}})
	}
	if len(tk.Active()) != 1 {
		t.Fatalf("active tracks %d, want 1", len(tk.Active()))
	}
	tr := tk.Active()[0]
	if tr.ID != 0 || len(tr.Boxes) != 10 {
		t.Fatalf("track fragmented: id=%d boxes=%d", tr.ID, len(tr.Boxes))
	}
}

func TestTwoTargetsKeepDistinctIDs(t *testing.T) {
	r := hv.NewRNG(3)
	_, sampleA := ident(r, 1024)
	_, sampleB := ident(r, 1024)
	tk := New(Config{}, 4)
	for f := 0; f < 8; f++ {
		tk.Step([]Detection{
			{Box: boxAt(10+6*f, 10), Feature: sampleA()},
			{Box: boxAt(200-6*f, 120), Feature: sampleB()},
		})
	}
	if len(tk.Active()) != 2 {
		t.Fatalf("active tracks %d, want 2", len(tk.Active()))
	}
	a, b := tk.Active()[0], tk.Active()[1]
	if a.ID == b.ID {
		t.Fatal("tracks share an ID")
	}
	if len(a.Boxes) != 8 || len(b.Boxes) != 8 {
		t.Fatalf("fragmented: %d / %d boxes", len(a.Boxes), len(b.Boxes))
	}
}

func TestAppearanceSeparatesCrossingTargets(t *testing.T) {
	// Two targets pass near each other; appearance must keep identities
	// apart even when both are within the positional gate.
	r := hv.NewRNG(5)
	protoA, sampleA := ident(r, 2048)
	_, sampleB := ident(r, 2048)
	tk := New(Config{MaxDist: 100}, 6)
	for f := 0; f < 9; f++ {
		tk.Step([]Detection{
			{Box: boxAt(10+10*f, 50), Feature: sampleA()},
			{Box: boxAt(90-10*f, 50), Feature: sampleB()},
		})
	}
	if len(tk.Active()) != 2 {
		t.Fatalf("active %d, want 2", len(tk.Active()))
	}
	// Track 0 must still match identity A's appearance better.
	tr0 := tk.Active()[0]
	if sim := tr0.Template.HammingSim(protoA); sim < 0.7 {
		t.Fatalf("track 0 template drifted from identity A: %v", sim)
	}
	// And its trajectory must be monotone rightward (A's motion).
	xs := tr0.Boxes
	for i := 1; i < len(xs); i++ {
		if xs[i][0] < xs[i-1][0] {
			t.Fatalf("track 0 switched identity at step %d: %v", i, xs)
		}
	}
}

func TestTrackRetiresAfterMisses(t *testing.T) {
	r := hv.NewRNG(7)
	_, sample := ident(r, 512)
	tk := New(Config{MaxMisses: 2}, 8)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sample()}})
	tk.Step(nil)
	tk.Step(nil)
	if len(tk.Active()) != 0 {
		t.Fatal("track not retired after misses")
	}
	if len(tk.Retired()) != 1 {
		t.Fatal("retired list empty")
	}
	if len(tk.All()) != 1 {
		t.Fatal("All() incomplete")
	}
}

func TestMissedThenReacquiredWithinBudget(t *testing.T) {
	r := hv.NewRNG(9)
	_, sample := ident(r, 1024)
	tk := New(Config{MaxMisses: 3}, 10)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sample()}})
	tk.Step(nil) // one miss
	tk.Step([]Detection{{Box: boxAt(20, 10), Feature: sample()}})
	if len(tk.Active()) != 1 || len(tk.Active()[0].Boxes) != 2 {
		t.Fatalf("reacquisition failed: %+v", tk)
	}
	if tk.Active()[0].Misses != 0 {
		t.Fatal("miss counter not reset")
	}
}

func TestPositionalGateSpawnsNewTrack(t *testing.T) {
	// Same appearance but teleported far away: the positional gate must
	// force a new identity.
	r := hv.NewRNG(11)
	_, sample := ident(r, 512)
	tk := New(Config{MaxDist: 30}, 12)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: sample()}})
	tk.Step([]Detection{{Box: boxAt(500, 500), Feature: sample()}})
	if len(tk.Active()) != 2 {
		t.Fatalf("teleport did not spawn: %d active", len(tk.Active()))
	}
}

func TestAppearanceGateSpawnsNewTrack(t *testing.T) {
	r := hv.NewRNG(13)
	_, sampleA := ident(r, 512)
	_, sampleB := ident(r, 512)
	tk := New(Config{}, 14)
	tk.Step([]Detection{{Box: boxAt(10, 10), Feature: sampleA()}})
	// Same place, different face.
	tk.Step([]Detection{{Box: boxAt(12, 10), Feature: sampleB()}})
	if len(tk.Active()) != 2 {
		t.Fatalf("appearance gate failed: %d active", len(tk.Active()))
	}
}

func TestBlendModes(t *testing.T) {
	r := hv.NewRNG(15)
	a, b := hv.NewRand(r, 512), hv.NewRand(r, 512)
	// Blend 1: template replaced.
	tk := New(Config{Blend: 1, MinSim: 0.01, MaxDist: 1000}, 16)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: a}})
	tk.Step([]Detection{{Box: boxAt(1, 0), Feature: b}})
	if !tk.Active()[0].Template.Equal(b) {
		t.Fatal("blend=1 did not replace template")
	}
	// Blend -1 (negative => keep): template unchanged.
	tk2 := New(Config{Blend: -1, MinSim: 0.01, MaxDist: 1000}, 17)
	tk2.Step([]Detection{{Box: boxAt(0, 0), Feature: a}})
	tk2.Step([]Detection{{Box: boxAt(1, 0), Feature: b}})
	if !tk2.Active()[0].Template.Equal(a) {
		t.Fatal("blend<=0 did not keep template")
	}
}

func TestStepPanicsOnNilFeature(t *testing.T) {
	tk := New(Config{}, 18)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: hv.NewRand(hv.NewRNG(1), 64)}})
	defer func() {
		if recover() == nil {
			t.Fatal("nil feature did not panic")
		}
	}()
	tk.Step([]Detection{{Box: boxAt(0, 0)}})
}

func TestStringSummary(t *testing.T) {
	tk := New(Config{}, 19)
	if !strings.Contains(tk.String(), "active:0") {
		t.Fatalf("summary %q", tk.String())
	}
}
