package track

import (
	"strings"
	"testing"

	"hdface/internal/hv"
)

func TestIoUHelper(t *testing.T) {
	a := [4]int{0, 0, 10, 10}
	if iou(a, a) != 1 {
		t.Fatal("self iou != 1")
	}
	if iou(a, [4]int{20, 20, 30, 30}) != 0 {
		t.Fatal("disjoint iou != 0")
	}
	if got := iou(a, [4]int{5, 0, 15, 10}); got < 0.3 || got > 0.35 {
		t.Fatalf("half-overlap iou %v", got)
	}
}

func TestEvaluatePerfectTracking(t *testing.T) {
	r := hv.NewRNG(41)
	_, sample := ident(r, 1024)
	tk := New(Config{}, 42)
	var truth GroundTruth
	for f := 0; f < 6; f++ {
		box := boxAt(10+8*f, 20)
		tk.Step([]Detection{{Box: box, Feature: sample()}})
		truth = append(truth, [][4]int{box})
	}
	rep := Evaluate(tk, truth, 0.5)
	if rep.Matches != 6 || rep.Misses != 0 || rep.FalsePos != 0 || rep.IDSwitches != 0 {
		t.Fatalf("perfect clip scored %+v", rep)
	}
	if rep.MOTA() != 1 {
		t.Fatalf("MOTA %v, want 1", rep.MOTA())
	}
	if !strings.Contains(rep.String(), "mota=1.000") {
		t.Fatalf("summary %q", rep.String())
	}
}

func TestEvaluateCountsMissesAndFalsePositives(t *testing.T) {
	r := hv.NewRNG(43)
	_, sample := ident(r, 1024)
	tk := New(Config{}, 44)
	// Frame 0: detection far from truth -> miss + false positive.
	tk.Step([]Detection{{Box: boxAt(300, 300), Feature: sample()}})
	truth := GroundTruth{[][4]int{boxAt(10, 10)}}
	rep := Evaluate(tk, truth, 0.5)
	if rep.Misses != 1 || rep.FalsePos != 1 || rep.Matches != 0 {
		t.Fatalf("scored %+v", rep)
	}
	if rep.MOTA() >= 0 {
		t.Fatalf("MOTA %v should be negative", rep.MOTA())
	}
}

func TestEvaluateDetectsIDSwitch(t *testing.T) {
	r := hv.NewRNG(45)
	_, sampleA := ident(r, 1024)
	_, sampleB := ident(r, 1024)
	// A positional gate small enough that the subject's jump severs the
	// track and appearance different enough to spawn a new ID.
	tk := New(Config{MaxDist: 20}, 46)
	b0 := boxAt(10, 10)
	tk.Step([]Detection{{Box: b0, Feature: sampleA()}})
	b1 := boxAt(16, 10) // overlaps truth, but different identity appearance
	tk.Step([]Detection{{Box: b1, Feature: sampleB()}})
	truth := GroundTruth{[][4]int{b0}, [][4]int{b1}}
	rep := Evaluate(tk, truth, 0.5)
	if rep.IDSwitches != 1 {
		t.Fatalf("expected 1 ID switch, got %+v", rep)
	}
}

func TestEvaluateAbsentSubject(t *testing.T) {
	tk := New(Config{}, 47)
	truth := GroundTruth{[][4]int{{}}} // subject absent (zero box)
	rep := Evaluate(tk, truth, 0.5)
	if rep.Misses != 0 || rep.Matches != 0 {
		t.Fatalf("absent subject scored %+v", rep)
	}
	if rep.MOTA() != 0 {
		t.Fatalf("empty MOTA %v", rep.MOTA())
	}
}
