package track

import (
	"strings"
	"testing"

	"hdface/internal/hv"
)

func TestIoUHelper(t *testing.T) {
	a := [4]int{0, 0, 10, 10}
	if iou(a, a) != 1 {
		t.Fatal("self iou != 1")
	}
	if iou(a, [4]int{20, 20, 30, 30}) != 0 {
		t.Fatal("disjoint iou != 0")
	}
	if got := iou(a, [4]int{5, 0, 15, 10}); got < 0.3 || got > 0.35 {
		t.Fatalf("half-overlap iou %v", got)
	}
}

func TestEvaluatePerfectTracking(t *testing.T) {
	r := hv.NewRNG(41)
	_, sample := ident(r, 1024)
	tk := New(Config{}, 42)
	var truth GroundTruth
	for f := 0; f < 6; f++ {
		box := boxAt(10+8*f, 20)
		tk.Step([]Detection{{Box: box, Feature: sample()}})
		truth = append(truth, [][4]int{box})
	}
	rep := Evaluate(tk, truth, 0.5)
	if rep.Matches != 6 || rep.Misses != 0 || rep.FalsePos != 0 || rep.IDSwitches != 0 {
		t.Fatalf("perfect clip scored %+v", rep)
	}
	if rep.MOTA() != 1 {
		t.Fatalf("MOTA %v, want 1", rep.MOTA())
	}
	if !strings.Contains(rep.String(), "mota=1.000") {
		t.Fatalf("summary %q", rep.String())
	}
}

func TestEvaluateCountsMissesAndFalsePositives(t *testing.T) {
	r := hv.NewRNG(43)
	_, sample := ident(r, 1024)
	tk := New(Config{}, 44)
	// Frame 0: detection far from truth -> miss + false positive.
	tk.Step([]Detection{{Box: boxAt(300, 300), Feature: sample()}})
	truth := GroundTruth{[][4]int{boxAt(10, 10)}}
	rep := Evaluate(tk, truth, 0.5)
	if rep.Misses != 1 || rep.FalsePos != 1 || rep.Matches != 0 {
		t.Fatalf("scored %+v", rep)
	}
	if rep.MOTA() >= 0 {
		t.Fatalf("MOTA %v should be negative", rep.MOTA())
	}
}

func TestEvaluateDetectsIDSwitch(t *testing.T) {
	r := hv.NewRNG(45)
	_, sampleA := ident(r, 1024)
	_, sampleB := ident(r, 1024)
	// A positional gate small enough that the subject's jump severs the
	// track and appearance different enough to spawn a new ID.
	tk := New(Config{MaxDist: 20}, 46)
	b0 := boxAt(10, 10)
	tk.Step([]Detection{{Box: b0, Feature: sampleA()}})
	b1 := boxAt(16, 10) // overlaps truth, but different identity appearance
	tk.Step([]Detection{{Box: b1, Feature: sampleB()}})
	truth := GroundTruth{[][4]int{b0}, [][4]int{b1}}
	rep := Evaluate(tk, truth, 0.5)
	if rep.IDSwitches != 1 {
		t.Fatalf("expected 1 ID switch, got %+v", rep)
	}
}

func TestIDF1PerfectAndSwapped(t *testing.T) {
	truth := GroundTruth{
		[][4]int{boxAt(0, 0), boxAt(100, 0)},
		[][4]int{boxAt(8, 0), boxAt(92, 0)},
		[][4]int{boxAt(16, 0), boxAt(84, 0)},
	}
	// Perfect: one ID per subject, every frame covered.
	var perfect []Obs
	for f, subjects := range truth {
		for s, b := range subjects {
			perfect = append(perfect, Obs{ID: s, Frame: f, Box: b})
		}
	}
	if rep := IDF1(perfect, truth, 0.5); rep.F1() != 1 {
		t.Fatalf("perfect tracking scored %s", rep)
	}
	// Identity swap at frame 2: IDs trade subjects, so two observations and
	// two ground-truth appearances fall outside the global assignment.
	swapped := append([]Obs(nil), perfect[:4]...)
	swapped = append(swapped,
		Obs{ID: 1, Frame: 2, Box: truth[2][0]},
		Obs{ID: 0, Frame: 2, Box: truth[2][1]})
	rep := IDF1(swapped, truth, 0.5)
	if rep.IDTP != 4 || rep.IDFP != 2 || rep.IDFN != 2 {
		t.Fatalf("swap scored %s", rep)
	}
	if f1 := rep.F1(); f1 <= 0.6 || f1 >= 0.7 {
		t.Fatalf("swap F1 %v, want 2/3", f1)
	}
}

func TestIDF1FragmentationAndFalseTracks(t *testing.T) {
	truth := GroundTruth{
		[][4]int{boxAt(0, 0)},
		[][4]int{boxAt(0, 0)},
		[][4]int{{}}, // subject absent
	}
	obs := []Obs{
		{ID: 0, Frame: 0, Box: boxAt(0, 0)},
		{ID: 1, Frame: 1, Box: boxAt(0, 0)},   // fragmented: new ID, only one can count
		{ID: 2, Frame: 2, Box: boxAt(200, 0)}, // pure false track
	}
	rep := IDF1(obs, truth, 0.5)
	if rep.IDTP != 1 || rep.IDFP != 2 || rep.IDFN != 1 {
		t.Fatalf("scored %s", rep)
	}
}

func TestObservationsFlattening(t *testing.T) {
	r := hv.NewRNG(51)
	_, sample := ident(r, 512)
	tk := New(Config{}, 52)
	tk.Step([]Detection{{Box: boxAt(0, 0), Feature: sample()}})
	tk.Step([]Detection{{Box: boxAt(8, 0), Feature: sample()}})
	obs := Observations(tk)
	if len(obs) != 2 || obs[0].Frame != 0 || obs[1].Frame != 1 || obs[0].ID != obs[1].ID {
		t.Fatalf("observations %+v", obs)
	}
}

func TestEvaluateAbsentSubject(t *testing.T) {
	tk := New(Config{}, 47)
	truth := GroundTruth{[][4]int{{}}} // subject absent (zero box)
	rep := Evaluate(tk, truth, 0.5)
	if rep.Misses != 0 || rep.Matches != 0 {
		t.Fatalf("absent subject scored %+v", rep)
	}
	if rep.MOTA() != 0 {
		t.Fatalf("empty MOTA %v", rep.MOTA())
	}
}
