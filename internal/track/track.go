// Package track implements multi-object face tracking over detection
// streams — the surveillance use case the paper's introduction motivates.
// Detections carry an appearance hypervector (produced by any hdface
// feature front-end); association combines holographic appearance
// similarity with positional gating, so identity survives detector noise
// exactly the way the underlying representation survives bit errors.
//
// Trackers are deterministic: for a fixed (Config, seed, detection
// sequence) two runs produce identical track IDs, boxes and templates.
// Association ties — common with quantized Hamming similarities — are
// broken by explicit (score, track, detection) ordering, never by sort
// instability.
package track

import (
	"fmt"
	"math"
	"sort"

	"hdface/internal/hv"
)

// Detection is one detector output in a frame.
type Detection struct {
	Box     [4]int // x0, y0, x1, y1
	Feature *hv.Vector
}

// Config tunes the tracker. MinSim and Blend are optional: nil takes the
// default, while an explicit value — including zero, which is meaningful
// for both — is honoured as given. Use F to set them inline.
type Config struct {
	// MaxMisses retires a track after this many consecutive unmatched
	// frames (default 3).
	MaxMisses int
	// MinSim is the appearance similarity gate in [0, 1] (Hamming
	// similarity; nil defaults to 0.55). An explicit 0 disables the gate:
	// any appearance within the positional gate may match.
	MinSim *float64
	// MaxDist is the positional gate: centre distance in pixels between a
	// detection and the track's last box (default 48).
	MaxDist float64
	// Blend is the appearance template update rate (nil defaults to 0.5 —
	// majority merge). An explicit 0 freezes the first template; 1 always
	// replaces it.
	Blend *float64
}

// F wraps a float for Config's optional fields, distinguishing an explicit
// value (including a meaningful zero) from an unset field.
func F(v float64) *float64 { return &v }

func (c Config) withDefaults() Config {
	if c.MaxMisses == 0 {
		c.MaxMisses = 3
	}
	if c.MinSim == nil {
		c.MinSim = F(0.55)
	}
	if c.MaxDist == 0 {
		c.MaxDist = 48
	}
	if c.Blend == nil {
		c.Blend = F(0.5)
	}
	return c
}

// Track is one tracked identity.
type Track struct {
	ID     int
	Boxes  [][4]int // one entry per matched frame
	Frames []int    // frame index of each box
	// Template is the appearance hypervector (merged over matches).
	Template *hv.Vector
	Misses   int
	retired  bool
}

// Last returns the most recent box.
func (t *Track) Last() [4]int { return t.Boxes[len(t.Boxes)-1] }

// Tracker maintains active and retired tracks across frames.
type Tracker struct {
	cfg           Config
	minSim, blend float64
	rng           *hv.RNG
	frame         int
	nextID        int
	active        []*Track
	retired       []*Track
}

// New returns a tracker.
func New(cfg Config, seed uint64) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{cfg: cfg, minSim: *cfg.MinSim, blend: *cfg.Blend, rng: hv.NewRNG(seed ^ 0x7ac)}
}

// Active returns the live tracks.
func (t *Tracker) Active() []*Track { return t.active }

// Retired returns tracks dropped for inactivity.
func (t *Tracker) Retired() []*Track { return t.retired }

// All returns every track ever created, active first.
func (t *Tracker) All() []*Track {
	out := append([]*Track(nil), t.active...)
	return append(out, t.retired...)
}

// Frame returns the index the next Step will be recorded at.
func (t *Tracker) Frame() int { return t.frame }

func center(b [4]int) (float64, float64) {
	return float64(b[0]+b[2]) / 2, float64(b[1]+b[3]) / 2
}

func dist(a, b [4]int) float64 {
	ax, ay := center(a)
	bx, by := center(b)
	return math.Hypot(ax-bx, ay-by)
}

// candidate is one feasible (track, detection) pairing.
type candidate struct {
	track, det int
	score      float64
}

// DetectionError reports an invalid detection rejected by StepErr. The
// tracker state is untouched: the frame did not advance and no track was
// created or updated, so the caller may drop the bad frame and continue.
type DetectionError struct {
	Index  int // index of the offending detection in the Step input
	Reason string
}

// Error implements error.
func (e *DetectionError) Error() string {
	return fmt.Sprintf("track: detection %d: %s", e.Index, e.Reason)
}

// Step ingests one frame of detections, returning the tracks matched or
// spawned this frame. It panics on an invalid detection (nil or
// mismatched-dimension feature) — serving ingresses should call StepErr,
// which returns a typed *DetectionError instead.
func (t *Tracker) Step(dets []Detection) []*Track {
	out, err := t.StepErr(dets)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// validate rejects detections the association math cannot handle before
// any state changes: nil features and dimensionality mismatches (against
// the live templates and against the other detections in the frame).
func (t *Tracker) validate(dets []Detection) error {
	d := 0
	if len(t.active) > 0 {
		d = t.active[0].Template.D()
	}
	for i, det := range dets {
		if det.Feature == nil {
			return &DetectionError{Index: i, Reason: "detection without feature"}
		}
		if d == 0 {
			d = det.Feature.D()
		}
		if det.Feature.D() != d {
			return &DetectionError{Index: i,
				Reason: fmt.Sprintf("feature dimensionality %d != tracker's %d", det.Feature.D(), d)}
		}
	}
	return nil
}

// StepErr ingests one frame of detections, returning the tracks matched or
// spawned this frame. An invalid detection returns a *DetectionError with
// the tracker unchanged — the frame counter does not advance, so a
// streaming caller can surface the error and keep feeding frames.
func (t *Tracker) StepErr(dets []Detection) ([]*Track, error) {
	if err := t.validate(dets); err != nil {
		return nil, err
	}
	defer func() { t.frame++ }()
	// Score all feasible pairs.
	var cands []candidate
	for ti, tr := range t.active {
		for di, d := range dets {
			pd := dist(tr.Last(), d.Box)
			if pd > t.cfg.MaxDist {
				continue
			}
			sim := tr.Template.HammingSim(d.Feature)
			if sim < t.minSim {
				continue
			}
			// Combined score: appearance dominates, position breaks ties.
			cands = append(cands, candidate{ti, di, sim - 0.001*pd/t.cfg.MaxDist})
		}
	}
	// Quantized Hamming similarities tie often; an unstable sort would let
	// equal-score pairs reorder between runs and hand out different IDs.
	// Total order: score descending, then track index, then detection index.
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.score != cb.score {
			return ca.score > cb.score
		}
		if ca.track != cb.track {
			return ca.track < cb.track
		}
		return ca.det < cb.det
	})

	matchedTrack := map[int]bool{}
	matchedDet := map[int]bool{}
	var touched []*Track
	for _, c := range cands {
		if matchedTrack[c.track] || matchedDet[c.det] {
			continue
		}
		matchedTrack[c.track] = true
		matchedDet[c.det] = true
		tr := t.active[c.track]
		d := dets[c.det]
		tr.Boxes = append(tr.Boxes, d.Box)
		tr.Frames = append(tr.Frames, t.frame)
		tr.Misses = 0
		t.mergeTemplate(tr, d.Feature)
		touched = append(touched, tr)
	}

	// Unmatched detections spawn tracks.
	for di, d := range dets {
		if matchedDet[di] {
			continue
		}
		tr := &Track{
			ID:       t.nextID,
			Boxes:    [][4]int{d.Box},
			Frames:   []int{t.frame},
			Template: d.Feature.Clone(),
		}
		t.nextID++
		t.active = append(t.active, tr)
		touched = append(touched, tr)
	}

	// Unmatched tracks age; stale ones retire.
	var still []*Track
	for ti, tr := range t.active {
		if !matchedTrack[ti] && len(tr.Boxes) > 0 && tr.Frames[len(tr.Frames)-1] != t.frame {
			tr.Misses++
		}
		if tr.Misses >= t.cfg.MaxMisses {
			tr.retired = true
			t.retired = append(t.retired, tr)
			continue
		}
		still = append(still, tr)
	}
	t.active = still
	return touched, nil
}

// mergeTemplate folds a new appearance into the track template: a random
// Blend-fraction of dimensions adopt the new feature — the hypervector
// analogue of an exponential moving average.
func (t *Tracker) mergeTemplate(tr *Track, f *hv.Vector) {
	if t.blend >= 1 {
		tr.Template = f.Clone()
		return
	}
	if t.blend <= 0 {
		return
	}
	mask := hv.NewRandBiased(t.rng, f.D(), t.blend)
	merged := hv.New(f.D()).Select(mask, f, tr.Template)
	tr.Template = merged
}

// String summarises tracker state.
func (t *Tracker) String() string {
	return fmt.Sprintf("track.Tracker{frame:%d, active:%d, retired:%d}",
		t.frame, len(t.active), len(t.retired))
}
