// Package track implements multi-object face tracking over detection
// streams — the surveillance use case the paper's introduction motivates.
// Detections carry an appearance hypervector (produced by any hdface
// feature front-end); association combines holographic appearance
// similarity with positional gating, so identity survives detector noise
// exactly the way the underlying representation survives bit errors.
package track

import (
	"fmt"
	"math"
	"sort"

	"hdface/internal/hv"
)

// Detection is one detector output in a frame.
type Detection struct {
	Box     [4]int // x0, y0, x1, y1
	Feature *hv.Vector
}

// Config tunes the tracker.
type Config struct {
	// MaxMisses retires a track after this many consecutive unmatched
	// frames (default 3).
	MaxMisses int
	// MinSim is the appearance similarity gate in [0, 1] (default 0.55,
	// Hamming similarity).
	MinSim float64
	// MaxDist is the positional gate: centre distance in pixels between a
	// detection and the track's last box (default 48).
	MaxDist float64
	// Blend is the appearance template update rate: 0 keeps the first
	// template, 1 always replaces it (default 0.5 — majority merge).
	Blend float64
}

func (c Config) withDefaults() Config {
	if c.MaxMisses == 0 {
		c.MaxMisses = 3
	}
	if c.MinSim == 0 {
		c.MinSim = 0.55
	}
	if c.MaxDist == 0 {
		c.MaxDist = 48
	}
	if c.Blend == 0 {
		c.Blend = 0.5
	}
	return c
}

// Track is one tracked identity.
type Track struct {
	ID     int
	Boxes  [][4]int // one entry per matched frame
	Frames []int    // frame index of each box
	// Template is the appearance hypervector (merged over matches).
	Template *hv.Vector
	Misses   int
	retired  bool
}

// Last returns the most recent box.
func (t *Track) Last() [4]int { return t.Boxes[len(t.Boxes)-1] }

// Tracker maintains active and retired tracks across frames.
type Tracker struct {
	cfg     Config
	rng     *hv.RNG
	frame   int
	nextID  int
	active  []*Track
	retired []*Track
}

// New returns a tracker.
func New(cfg Config, seed uint64) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), rng: hv.NewRNG(seed ^ 0x7ac)}
}

// Active returns the live tracks.
func (t *Tracker) Active() []*Track { return t.active }

// Retired returns tracks dropped for inactivity.
func (t *Tracker) Retired() []*Track { return t.retired }

// All returns every track ever created, active first.
func (t *Tracker) All() []*Track {
	out := append([]*Track(nil), t.active...)
	return append(out, t.retired...)
}

func center(b [4]int) (float64, float64) {
	return float64(b[0]+b[2]) / 2, float64(b[1]+b[3]) / 2
}

func dist(a, b [4]int) float64 {
	ax, ay := center(a)
	bx, by := center(b)
	return math.Hypot(ax-bx, ay-by)
}

// candidate is one feasible (track, detection) pairing.
type candidate struct {
	track, det int
	score      float64
}

// Step ingests one frame of detections, returning the tracks matched or
// spawned this frame.
func (t *Tracker) Step(dets []Detection) []*Track {
	defer func() { t.frame++ }()
	// Score all feasible pairs.
	var cands []candidate
	for ti, tr := range t.active {
		for di, d := range dets {
			if d.Feature == nil {
				panic("track: detection without feature")
			}
			pd := dist(tr.Last(), d.Box)
			if pd > t.cfg.MaxDist {
				continue
			}
			sim := tr.Template.HammingSim(d.Feature)
			if sim < t.cfg.MinSim {
				continue
			}
			// Combined score: appearance dominates, position breaks ties.
			cands = append(cands, candidate{ti, di, sim - 0.001*pd/t.cfg.MaxDist})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })

	matchedTrack := map[int]bool{}
	matchedDet := map[int]bool{}
	var touched []*Track
	for _, c := range cands {
		if matchedTrack[c.track] || matchedDet[c.det] {
			continue
		}
		matchedTrack[c.track] = true
		matchedDet[c.det] = true
		tr := t.active[c.track]
		d := dets[c.det]
		tr.Boxes = append(tr.Boxes, d.Box)
		tr.Frames = append(tr.Frames, t.frame)
		tr.Misses = 0
		t.mergeTemplate(tr, d.Feature)
		touched = append(touched, tr)
	}

	// Unmatched detections spawn tracks.
	for di, d := range dets {
		if matchedDet[di] {
			continue
		}
		tr := &Track{
			ID:       t.nextID,
			Boxes:    [][4]int{d.Box},
			Frames:   []int{t.frame},
			Template: d.Feature.Clone(),
		}
		t.nextID++
		t.active = append(t.active, tr)
		touched = append(touched, tr)
	}

	// Unmatched tracks age; stale ones retire.
	var still []*Track
	for ti, tr := range t.active {
		if !matchedTrack[ti] && len(tr.Boxes) > 0 && tr.Frames[len(tr.Frames)-1] != t.frame {
			tr.Misses++
		}
		if tr.Misses >= t.cfg.MaxMisses {
			tr.retired = true
			t.retired = append(t.retired, tr)
			continue
		}
		still = append(still, tr)
	}
	t.active = still
	return touched
}

// mergeTemplate folds a new appearance into the track template: a random
// Blend-fraction of dimensions adopt the new feature — the hypervector
// analogue of an exponential moving average.
func (t *Tracker) mergeTemplate(tr *Track, f *hv.Vector) {
	if t.cfg.Blend >= 1 {
		tr.Template = f.Clone()
		return
	}
	if t.cfg.Blend <= 0 {
		return
	}
	mask := hv.NewRandBiased(t.rng, f.D(), t.cfg.Blend)
	merged := hv.New(f.D()).Select(mask, f, tr.Template)
	tr.Template = merged
}

// String summarises tracker state.
func (t *Tracker) String() string {
	return fmt.Sprintf("track.Tracker{frame:%d, active:%d, retired:%d}",
		t.frame, len(t.active), len(t.retired))
}
