package hdconv

import (
	"math"
	"testing"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

func TestBankShapes(t *testing.T) {
	bank := Bank()
	if len(bank) != 5 {
		t.Fatalf("bank size %d", len(bank))
	}
	for _, k := range bank {
		if k.Name == "" {
			t.Fatal("unnamed kernel")
		}
		if k.norm() == 0 {
			t.Fatalf("%s: zero norm", k.Name)
		}
	}
}

func TestSobelOnEdges(t *testing.T) {
	// Vertical edge: sobel-x responds, sobel-y silent.
	img := imgproc.NewImage(16, 16)
	img.FillRect(8, 0, 16, 16, 255)
	sx, sy := Bank()[0], Bank()[1]
	mx := sx.Apply(img)
	my := sy.Apply(img)
	if math.Abs(mx[8][8]) < 0.5 {
		t.Fatalf("sobel-x on vertical edge = %v", mx[8][8])
	}
	if math.Abs(my[8][8]) > 1e-9 {
		t.Fatalf("sobel-y on vertical edge = %v", my[8][8])
	}
}

func TestApplyFlatIsZero(t *testing.T) {
	img := imgproc.NewImage(8, 8)
	img.Fill(77)
	for _, k := range Bank() {
		m := k.Apply(img)
		for y := range m {
			for x, v := range m[y] {
				if math.Abs(v) > 1e-12 {
					t.Fatalf("%s flat response (%d,%d) = %v", k.Name, x, y, v)
				}
			}
		}
	}
}

func TestApplyRange(t *testing.T) {
	r := hv.NewRNG(1)
	img := imgproc.NewImage(12, 12)
	for i := range img.Pix {
		img.Pix[i] = uint8(r.Intn(256))
	}
	for _, k := range Bank() {
		m := k.Apply(img)
		for y := range m {
			for _, v := range m[y] {
				if v < -1-1e-9 || v > 1+1e-9 {
					t.Fatalf("%s response %v out of [-1,1]", k.Name, v)
				}
			}
		}
	}
}

func TestClassicalFeatures(t *testing.T) {
	e := New(8)
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	f := e.Features(img)
	if len(f) != e.FeatureLen(16, 16) {
		t.Fatalf("feature count %d, want %d", len(f), e.FeatureLen(16, 16))
	}
	if len(f) != 2*2*5 {
		t.Fatalf("unexpected count %d", len(f))
	}
	for i, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("pooled |response| %d out of range: %v", i, v)
		}
	}
}

func TestNewDefaultsCell(t *testing.T) {
	if New(0).Cell != 8 || NewHD(stoch.NewCodec(256, 1), 0).Cell != 8 {
		t.Fatal("default cell not applied")
	}
}

func TestResponseHVMatchesClassical(t *testing.T) {
	codec := stoch.NewCodec(16384, 2)
	h := NewHD(codec, 8)
	img := imgproc.NewImage(16, 16)
	img.FillRect(8, 0, 16, 16, 255)
	k := Bank()[0] // sobel-x
	want := k.Apply(img)
	for _, pt := range [][2]int{{8, 8}, {4, 4}, {12, 8}} {
		got := codec.Decode(h.ResponseHV(img, k, pt[0], pt[1]))
		if math.Abs(got-want[pt[1]][pt[0]]) > 0.1 {
			t.Fatalf("response at %v: decoded %v, classical %v",
				pt, got, want[pt[1]][pt[0]])
		}
	}
}

func TestDecodedFeaturesTrackClassicalStrongCells(t *testing.T) {
	codec := stoch.NewCodec(8192, 3)
	h := NewHD(codec, 8)
	img := imgproc.NewImage(16, 16)
	img.FillRect(8, 0, 16, 16, 255)
	decoded := h.DecodedFeatures(img)
	if len(decoded) != 2*2*5 {
		t.Fatalf("decoded count %d", len(decoded))
	}
	// The sobel-x feature of the cells containing the edge must clearly
	// exceed the sobel-y ones.
	// Cells are (cy*cw+cx)*5 + kernel; the edge is at x=8 = cell column 1
	// border — check cell (0,0) is quiet and responses are in range.
	for i, v := range decoded {
		if v < -0.2 || v > 1.2 {
			t.Fatalf("decoded %d out of range: %v", i, v)
		}
	}
}

func TestHDFeatureDiscriminates(t *testing.T) {
	codec := stoch.NewCodec(4096, 4)
	h := NewHD(codec, 8)
	r := hv.NewRNG(5)
	edge := imgproc.NewImage(16, 16)
	edge.FillRect(8, 0, 16, 16, 255)
	tex := imgproc.NewImage(16, 16)
	for i := range tex.Pix {
		tex.Pix[i] = uint8(r.Intn(256))
	}
	f1 := h.Feature(edge)
	f2 := h.Feature(edge)
	f3 := h.Feature(tex)
	if f1.Cos(f2) <= f1.Cos(f3) {
		t.Fatalf("same-image cos %v not above cross %v", f1.Cos(f2), f1.Cos(f3))
	}
	if f1.D() != 4096 {
		t.Fatal("feature dimension wrong")
	}
}

func TestSitesCounted(t *testing.T) {
	codec := stoch.NewCodec(512, 6)
	h := NewHD(codec, 8)
	img := imgproc.NewImage(8, 8)
	h.Feature(img)
	// 1 cell, 5 kernels, stride 2 -> 16 sites each.
	if h.Sites != 5*16 {
		t.Fatalf("Sites = %d, want 80", h.Sites)
	}
}

func BenchmarkClassicalApply(b *testing.B) {
	img := imgproc.NewImage(48, 48)
	img.GradientFill(0, 0, 47, 47, 0, 255)
	k := Bank()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Apply(img)
	}
}

func BenchmarkHDResponse(b *testing.B) {
	codec := stoch.NewCodec(2048, 1)
	h := NewHD(codec, 8)
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ResponseHV(img, h.Bank[0], 8, 8)
	}
}
