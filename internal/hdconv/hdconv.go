// Package hdconv implements small-kernel convolution as a feature
// extractor, both classically and fully in hyperspace — the third feature
// family the paper names (Section 2: "pre-trained convolution layers,
// HOGs, ... HAAR-like"). A convolution response is a weighted sum of pixel
// values, which the stochastic arithmetic expresses directly as a convex
// combination of (possibly negated) pixel hypervectors; no gradient, bin
// search or square root is involved, making this the cheapest hyperspace
// extractor in the repository.
package hdconv

import (
	"math"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

// Kernel is a 3x3 convolution kernel.
type Kernel struct {
	Name string
	W    [3][3]float64
}

// Bank returns the default edge/texture kernel bank: Sobel pair, Laplacian
// and two diagonal Roberts-style kernels.
func Bank() []Kernel {
	return []Kernel{
		{"sobel-x", [3][3]float64{{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}}},
		{"sobel-y", [3][3]float64{{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}}},
		{"laplace", [3][3]float64{{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}},
		{"diag-a", [3][3]float64{{2, 1, 0}, {1, 0, -1}, {0, -1, -2}}},
		{"diag-b", [3][3]float64{{0, 1, 2}, {-1, 0, 1}, {-2, -1, 0}}},
	}
}

// norm returns sum |w| of the kernel, the scale of its hyperspace output.
func (k Kernel) norm() float64 {
	var s float64
	for _, row := range k.W {
		for _, w := range row {
			s += math.Abs(w)
		}
	}
	return s
}

// Apply computes the classical normalised response map: at each pixel,
// sum(w * I') / sum|w| where I' is the [-1, 1] scaled image, matching the
// hyperspace extractor's value convention.
func (k Kernel) Apply(img *imgproc.Image) [][]float64 {
	n := k.norm()
	out := make([][]float64, img.H)
	for y := 0; y < img.H; y++ {
		row := make([]float64, img.W)
		for x := 0; x < img.W; x++ {
			var s float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					s += k.W[dy+1][dx+1] * (2*img.Norm(x+dx, y+dy) - 1)
				}
			}
			row[x] = s / n
		}
		out[y] = row
	}
	return out
}

// Extractor computes pooled convolution features classically: the mean
// absolute response of every kernel in every pooling cell.
type Extractor struct {
	Cell int // pooling cell size (default 8)
	Bank []Kernel
}

// New returns a classical extractor.
func New(cell int) *Extractor {
	if cell <= 0 {
		cell = 8
	}
	return &Extractor{Cell: cell, Bank: Bank()}
}

// FeatureLen returns the pooled feature count for a w x h image.
func (e *Extractor) FeatureLen(w, h int) int {
	return (w / e.Cell) * (h / e.Cell) * len(e.Bank)
}

// Features returns mean |response| per (cell, kernel).
func (e *Extractor) Features(img *imgproc.Image) []float64 {
	cw, ch := img.W/e.Cell, img.H/e.Cell
	out := make([]float64, 0, cw*ch*len(e.Bank))
	maps := make([][][]float64, len(e.Bank))
	for i, k := range e.Bank {
		maps[i] = k.Apply(img)
	}
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			for _, m := range maps {
				var s float64
				for py := 0; py < e.Cell; py++ {
					for px := 0; px < e.Cell; px++ {
						s += math.Abs(m[cy*e.Cell+py][cx*e.Cell+px])
					}
				}
				out = append(out, s/float64(e.Cell*e.Cell))
			}
		}
	}
	return out
}

// HD computes the same pooled convolution features in hyperspace.
type HD struct {
	Cell   int
	Stride int // response sampling stride within a cell (default 2)
	Bank   []Kernel
	codec  *stoch.Codec
	rng    *hv.RNG
	levels []*hv.Vector
	ids    map[[2]int]*hv.Vector
	// Sites counts convolution sites evaluated, for the hardware model.
	Sites int64
}

// NewHD builds a hyperspace convolution extractor over the codec.
func NewHD(codec *stoch.Codec, cell int) *HD {
	if cell <= 0 {
		cell = 8
	}
	h := &HD{
		Cell:   cell,
		Stride: 2,
		Bank:   Bank(),
		codec:  codec,
		rng:    hv.NewRNG(0xc0de ^ uint64(codec.D())),
		ids:    make(map[[2]int]*hv.Vector),
	}
	h.levels = make([]*hv.Vector, 64)
	for i := range h.levels {
		h.levels[i] = codec.Construct(2*float64(i)/float64(len(h.levels)-1) - 1)
	}
	return h
}

// Reseed resets the extractor's private randomness (its RNG and its codec's
// RNG) to streams defined by seed, making subsequent stochastic output a
// pure function of (seed, input, previously-seen geometries) — the same
// determinism contract hdhog.Extractor.Reseed provides. Positional IDs are
// created lazily, so like hdhog the guarantee holds for geometries whose
// IDs already exist (or a fixed working size); WarmIDs pins them to the
// construction-time stream.
func (h *HD) Reseed(seed uint64) {
	h.rng.Reseed(hv.Mix64(seed, 0x5eed))
	h.codec.Reseed(hv.Mix64(seed, 0xc0de))
}

// WarmIDs pre-creates the bundle atoms for every (cell, kernel) of a w x ht
// image, in the exact order Feature visits them, so later forks or reseeds
// never change which stream the IDs are drawn from.
func (h *HD) WarmIDs(w, ht int) {
	cw, ch := w/h.Cell, ht/h.Cell
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			for ki := range h.Bank {
				h.id(cy*cw+cx, ki)
			}
		}
	}
}

func (h *HD) pixel(v float64) *hv.Vector {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	idx := int(v*float64(len(h.levels)-1) + 0.5)
	return h.codec.DecorrelateShift(h.levels[idx], 1+h.rng.Intn(h.codec.D()-1))
}

// ResponseHV computes one kernel response at (x, y) as a hypervector
// representing sum(w * I') / sum|w|.
func (h *HD) ResponseHV(img *imgproc.Image, k Kernel, x, y int) *hv.Vector {
	ks := make([]float64, 0, 9)
	xs := make([]*hv.Vector, 0, 9)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			w := k.W[dy+1][dx+1]
			if w == 0 {
				continue
			}
			ks = append(ks, w)
			xs = append(xs, h.pixel(img.Norm(x+dx, y+dy)))
		}
	}
	h.Sites++
	return h.codec.DotConst(ks, xs)
}

// id returns the bundle atom for (cell, kernel).
func (h *HD) id(cell, kernel int) *hv.Vector {
	key := [2]int{cell, kernel}
	if v, ok := h.ids[key]; ok {
		return v
	}
	v := hv.NewRand(h.rng, h.codec.D())
	h.ids[key] = v
	return v
}

// Feature returns the image's feature hypervector: mean absolute kernel
// responses per pooling cell, computed stochastically, weighting ID atoms.
func (h *HD) Feature(img *imgproc.Image) *hv.Vector {
	d := h.codec.D()
	cw, ch := img.W/h.Cell, img.H/h.Cell
	acc := hv.NewAccumulator(d)
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			for ki, k := range h.Bank {
				var resp []*hv.Vector
				for py := h.Stride / 2; py < h.Cell; py += h.Stride {
					for px := h.Stride / 2; px < h.Cell; px += h.Stride {
						r := h.ResponseHV(img, k, cx*h.Cell+px, cy*h.Cell+py)
						resp = append(resp, h.codec.Abs(r))
					}
				}
				if len(resp) == 0 {
					continue
				}
				ws := make([]float64, len(resp))
				for i := range ws {
					ws[i] = 1
				}
				mean := h.codec.WeightedSum(resp, ws)
				w := int32(h.codec.Decode(mean) * 64)
				if w <= 0 {
					continue
				}
				acc.AddScaled(h.id(cy*cw+cx, ki), w)
			}
		}
	}
	out, _ := acc.Sign(hv.NewRand(h.rng, d))
	return out
}

// DecodedFeatures decodes pooled responses to floats for parity tests,
// sampling the same stride lattice as Feature.
func (h *HD) DecodedFeatures(img *imgproc.Image) []float64 {
	cw, ch := img.W/h.Cell, img.H/h.Cell
	out := make([]float64, 0, cw*ch*len(h.Bank))
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			for _, k := range h.Bank {
				var resp []*hv.Vector
				for py := h.Stride / 2; py < h.Cell; py += h.Stride {
					for px := h.Stride / 2; px < h.Cell; px += h.Stride {
						r := h.ResponseHV(img, k, cx*h.Cell+px, cy*h.Cell+py)
						resp = append(resp, h.codec.Abs(r))
					}
				}
				ws := make([]float64, len(resp))
				for i := range ws {
					ws[i] = 1
				}
				out = append(out, h.codec.Decode(h.codec.WeightedSum(resp, ws)))
			}
		}
	}
	return out
}
