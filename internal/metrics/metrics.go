// Package metrics provides the classification metrics the evaluation
// reports: confusion matrices, accuracy, per-class precision/recall/F1 and
// macro averages, plus detection-oriented counts for the sliding-window
// experiments.
package metrics

import (
	"errors"
	"fmt"
	"strings"
)

// Confusion is a k x k confusion matrix: rows are ground truth, columns
// predictions.
type Confusion struct {
	K      int
	Counts [][]int64
	Names  []string // optional class names
}

// NewConfusion returns an empty k-class matrix.
func NewConfusion(k int) *Confusion {
	if k < 2 {
		panic("metrics: need at least two classes")
	}
	c := &Confusion{K: k, Counts: make([][]int64, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int64, k)
	}
	return c
}

// Observe records one (truth, prediction) pair.
func (c *Confusion) Observe(truth, pred int) error {
	if truth < 0 || truth >= c.K || pred < 0 || pred >= c.K {
		return fmt.Errorf("metrics: labels (%d, %d) out of range [0, %d)", truth, pred, c.K)
	}
	c.Counts[truth][pred]++
	return nil
}

// ObserveAll records aligned label slices.
func (c *Confusion) ObserveAll(truths, preds []int) error {
	if len(truths) != len(preds) {
		return errors.New("metrics: misaligned label slices")
	}
	for i := range truths {
		if err := c.Observe(truths[i], preds[i]); err != nil {
			return err
		}
	}
	return nil
}

// Total returns the number of observations.
func (c *Confusion) Total() int64 {
	var n int64
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	var diag int64
	for i := 0; i < c.K; i++ {
		diag += c.Counts[i][i]
	}
	return float64(diag) / float64(n)
}

// Precision returns TP / (TP + FP) for class k (0 when the class is never
// predicted).
func (c *Confusion) Precision(k int) float64 {
	var pred int64
	for t := 0; t < c.K; t++ {
		pred += c.Counts[t][k]
	}
	if pred == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(pred)
}

// Recall returns TP / (TP + FN) for class k (0 when the class never
// occurs).
func (c *Confusion) Recall(k int) float64 {
	var truth int64
	for p := 0; p < c.K; p++ {
		truth += c.Counts[k][p]
	}
	if truth == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(truth)
}

// F1 returns the harmonic mean of precision and recall for class k.
func (c *Confusion) F1(k int) float64 {
	p, r := c.Precision(k), c.Recall(k)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over classes.
func (c *Confusion) MacroF1() float64 {
	var s float64
	for k := 0; k < c.K; k++ {
		s += c.F1(k)
	}
	return s / float64(c.K)
}

// String renders the matrix with optional class names.
func (c *Confusion) String() string {
	name := func(i int) string {
		if i < len(c.Names) && c.Names[i] != "" {
			n := c.Names[i]
			if len(n) > 8 {
				n = n[:8]
			}
			return n
		}
		return fmt.Sprintf("c%d", i)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "truth\\pred")
	for p := 0; p < c.K; p++ {
		fmt.Fprintf(&b, "%9s", name(p))
	}
	b.WriteString("\n")
	for t := 0; t < c.K; t++ {
		fmt.Fprintf(&b, "%10s", name(t))
		for p := 0; p < c.K; p++ {
			fmt.Fprintf(&b, "%9d", c.Counts[t][p])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Detection aggregates sliding-window detection outcomes.
type Detection struct {
	TruePos, FalsePos, TrueNeg, FalseNeg int64
}

// Observe records one window.
func (d *Detection) Observe(predicted, truth bool) {
	switch {
	case predicted && truth:
		d.TruePos++
	case predicted && !truth:
		d.FalsePos++
	case !predicted && truth:
		d.FalseNeg++
	default:
		d.TrueNeg++
	}
}

// Precision returns TP/(TP+FP).
func (d *Detection) Precision() float64 {
	den := d.TruePos + d.FalsePos
	if den == 0 {
		return 0
	}
	return float64(d.TruePos) / float64(den)
}

// Recall returns TP/(TP+FN).
func (d *Detection) Recall() float64 {
	den := d.TruePos + d.FalseNeg
	if den == 0 {
		return 0
	}
	return float64(d.TruePos) / float64(den)
}

// F1 returns the detection F1 score.
func (d *Detection) F1() float64 {
	p, r := d.Precision(), d.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String summarises the counts.
func (d *Detection) String() string {
	return fmt.Sprintf("tp=%d fp=%d fn=%d tn=%d precision=%.3f recall=%.3f f1=%.3f",
		d.TruePos, d.FalsePos, d.FalseNeg, d.TrueNeg, d.Precision(), d.Recall(), d.F1())
}
