package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestNewConfusionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 did not panic")
		}
	}()
	NewConfusion(1)
}

func TestObserveValidation(t *testing.T) {
	c := NewConfusion(3)
	if err := c.Observe(0, 3); err == nil {
		t.Fatal("accepted out-of-range prediction")
	}
	if err := c.Observe(-1, 0); err == nil {
		t.Fatal("accepted negative truth")
	}
	if err := c.ObserveAll([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("accepted misaligned slices")
	}
}

func TestAccuracyAndTotals(t *testing.T) {
	c := NewConfusion(2)
	if err := c.ObserveAll([]int{0, 0, 1, 1}, []int{0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 4 {
		t.Fatalf("total %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.75 {
		t.Fatalf("accuracy %v", got)
	}
	if NewConfusion(2).Accuracy() != 0 {
		t.Fatal("empty accuracy != 0")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := NewConfusion(2)
	// truth 1 predicted 1: 3; truth 1 predicted 0: 1;
	// truth 0 predicted 1: 2; truth 0 predicted 0: 4.
	for i := 0; i < 3; i++ {
		c.Observe(1, 1)
	}
	c.Observe(1, 0)
	c.Observe(0, 1)
	c.Observe(0, 1)
	for i := 0; i < 4; i++ {
		c.Observe(0, 0)
	}
	if got := c.Precision(1); math.Abs(got-3.0/5) > 1e-12 {
		t.Fatalf("precision %v", got)
	}
	if got := c.Recall(1); math.Abs(got-3.0/4) > 1e-12 {
		t.Fatalf("recall %v", got)
	}
	p, r := 3.0/5, 3.0/4
	if got := c.F1(1); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Fatalf("f1 %v", got)
	}
	if c.MacroF1() <= 0 || c.MacroF1() > 1 {
		t.Fatalf("macro f1 %v", c.MacroF1())
	}
}

func TestDegenerateClassMetrics(t *testing.T) {
	c := NewConfusion(3)
	c.Observe(0, 0)
	// Class 2 never occurs nor is predicted.
	if c.Precision(2) != 0 || c.Recall(2) != 0 || c.F1(2) != 0 {
		t.Fatal("degenerate class metrics should be 0")
	}
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Names = []string{"no-face", "face"}
	c.Observe(1, 1)
	s := c.String()
	if !strings.Contains(s, "no-face") || !strings.Contains(s, "face") {
		t.Fatalf("string missing names: %q", s)
	}
	// Unnamed fallback.
	c2 := NewConfusion(2)
	if !strings.Contains(c2.String(), "c0") {
		t.Fatal("fallback names missing")
	}
	// Long names truncate.
	c3 := NewConfusion(2)
	c3.Names = []string{"averyveryverylongname", "x"}
	if strings.Contains(c3.String(), "averyveryverylongname") {
		t.Fatal("long name not truncated")
	}
}

func TestDetectionCounts(t *testing.T) {
	var d Detection
	d.Observe(true, true)   // tp
	d.Observe(true, true)   // tp
	d.Observe(true, false)  // fp
	d.Observe(false, true)  // fn
	d.Observe(false, false) // tn
	if d.TruePos != 2 || d.FalsePos != 1 || d.FalseNeg != 1 || d.TrueNeg != 1 {
		t.Fatalf("counts wrong: %+v", d)
	}
	if got := d.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("precision %v", got)
	}
	if got := d.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("recall %v", got)
	}
	if got := d.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("f1 %v", got)
	}
}

func TestDetectionZeroGuards(t *testing.T) {
	var d Detection
	if d.Precision() != 0 || d.Recall() != 0 || d.F1() != 0 {
		t.Fatal("empty detection metrics should be 0")
	}
	if !strings.Contains(d.String(), "tp=0") {
		t.Fatalf("string %q", d.String())
	}
}
