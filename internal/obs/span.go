package obs

import (
	"runtime"
	"sync/atomic"
	"time"
)

// trackAllocs gates the (expensive) runtime.ReadMemStats capture around
// spans; see SetTrackAllocs.
var trackAllocs atomic.Bool

// allocOwner serialises allocation accounting: at most one span holds it
// at a time (see SetTrackAllocs), so two concurrent spans can no longer
// both bracket the same runtime.MemStats window and double-attribute the
// same allocations.
var allocOwner atomic.Bool

// obsAllocSkipped counts spans that wanted allocation accounting but
// found another span already holding the owner slot; their Mallocs /
// AllocBytes report zero rather than a misattributed delta.
var obsAllocSkipped = NewCounter("hdface_obs_alloc_track_skipped_total",
	"spans denied allocation accounting because a concurrent span held it")

// SetTrackAllocs switches per-span allocation accounting on or off. It is
// off by default because ReadMemStats briefly stops the world; turn it on
// only for profiling runs (the CLI's -stats-allocs flag).
//
// Accounting is single-flight: runtime.MemStats deltas are process-global
// (Go exposes no per-goroutine allocation counters), so when spans
// overlap, only the first to start owns the accounting window and the
// rest record zero (counted by hdface_obs_alloc_track_skipped_total)
// instead of silently re-attributing the owner's window to themselves.
// The owning span's numbers are still process-global for its duration —
// exact when nothing else allocates concurrently, an upper bound
// otherwise — but each allocation is now attributed to at most one stage.
func SetTrackAllocs(on bool) { trackAllocs.Store(on) }

// Stage aggregates every span recorded under one stage name: call count,
// total/max wall time, item throughput and (when enabled) allocation
// deltas. All fields are atomics, so spans from concurrent workers fold in
// without locking.
type Stage struct {
	name       string
	count      atomic.Int64
	totalNS    atomic.Int64
	maxNS      atomic.Int64
	items      atomic.Int64
	mallocs    atomic.Int64
	allocBytes atomic.Int64
}

// getStage returns the stage registered under name, creating it on first
// use. Unlike metric handles, stages are created lazily by StartSpan, so
// only stages that actually ran appear in snapshots.
func getStage(name string) *Stage {
	reg.mu.RLock()
	st, ok := reg.stages[name]
	reg.mu.RUnlock()
	if ok {
		return st
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if st, ok = reg.stages[name]; ok {
		return st
	}
	st = &Stage{name: name}
	reg.stages[name] = st
	return st
}

// record folds one finished span into the stage.
func (st *Stage) record(durNS, items, mallocs, allocBytes int64) {
	st.count.Add(1)
	st.totalNS.Add(durNS)
	for {
		old := st.maxNS.Load()
		if durNS <= old || st.maxNS.CompareAndSwap(old, durNS) {
			break
		}
	}
	st.items.Add(items)
	st.mallocs.Add(mallocs)
	st.allocBytes.Add(allocBytes)
}

// Span is one in-flight timed region. StartSpan returns nil when
// instrumentation is disabled, and every method is nil-safe, so the
// idiomatic call pattern costs a single atomic load on the disabled path:
//
//	sp := obs.StartSpan("extract")
//	defer sp.End()
type Span struct {
	stage        *Stage
	start        time.Time
	items        int64
	allocTracked bool
	startMallocs uint64
	startBytes   uint64
}

// StartSpan opens a span under the named stage. The returned span is nil
// (a valid no-op) when instrumentation is disabled.
func StartSpan(name string) *Span {
	if !armed.Load() {
		return nil
	}
	sp := &Span{stage: getStage(name), start: time.Now()}
	if trackAllocs.Load() {
		if allocOwner.CompareAndSwap(false, true) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			sp.allocTracked = true
			sp.startMallocs = ms.Mallocs
			sp.startBytes = ms.TotalAlloc
		} else {
			obsAllocSkipped.Inc()
		}
	}
	return sp
}

// AddItems attributes n processed items (images, windows, samples) to the
// span, surfacing per-item throughput in the report.
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items += n
}

// End closes the span and folds it into its stage.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := int64(time.Since(s.start))
	var mallocs, bytes int64
	if s.allocTracked {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs = int64(ms.Mallocs - s.startMallocs)
		bytes = int64(ms.TotalAlloc - s.startBytes)
		allocOwner.Store(false)
	}
	s.stage.record(dur, s.items, mallocs, bytes)
}
