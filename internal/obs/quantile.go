package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// timeNow is swapped by tests for deterministic windowed-state output.
var timeNow = time.Now

// RollingQuantile tracks latency quantiles over a sliding time window —
// the "what is p99 *right now*" complement to the cumulative fixed-bucket
// Histogram, whose tails are diluted by every request since process
// start. Observations land in a bounded ring of (timestamp, value)
// samples; quantiles are computed on demand over the samples still inside
// the window, so a drift-recovery episode or a deploy shows up within one
// window length instead of being averaged away.
//
// Observe is mutex-guarded rather than lock-free: it runs once per
// request (not per window or per primitive op), where a short critical
// section is noise. A nil *RollingQuantile is a valid no-op receiver, and
// the disabled path records nothing, like every other obs series.
type RollingQuantile struct {
	name, help string
	window     time.Duration

	mu      sync.Mutex
	samples []qsample // ring, cap maxSamples
	pos     int
	n       int
}

type qsample struct {
	at time.Time
	v  float64
}

// defaultQuantileSamples bounds the ring: enough for ~1.6k requests per
// window before oldest-first overwrite starts subsampling the window.
const defaultQuantileSamples = 1 << 11

// NewRollingQuantile returns the rolling-quantile series registered under
// name, creating it with the given window on first use (non-positive
// window defaults to one minute).
func NewRollingQuantile(name, help string, window time.Duration) *RollingQuantile {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if r, ok := reg.rollers[name]; ok {
		return r
	}
	if window <= 0 {
		window = time.Minute
	}
	r := &RollingQuantile{name: name, help: help, window: window}
	reg.rollers[name] = r
	return r
}

// Observe records v at the current time when instrumentation is enabled.
func (r *RollingQuantile) Observe(v float64) {
	if r == nil || !armed.Load() {
		return
	}
	now := timeNow()
	r.mu.Lock()
	if r.n < defaultQuantileSamples {
		r.samples = append(r.samples, qsample{now, v})
		r.n++
	} else {
		r.samples[r.pos] = qsample{now, v}
		r.pos = (r.pos + 1) % defaultQuantileSamples
	}
	r.mu.Unlock()
}

// QuantileSnapshot is the point-in-time windowed view of one series.
type QuantileSnapshot struct {
	WindowSeconds float64 `json:"window_seconds"`
	Count         int     `json:"count"`
	P50           float64 `json:"p50"`
	P90           float64 `json:"p90"`
	P95           float64 `json:"p95"`
	P99           float64 `json:"p99"`
}

// Snapshot computes the windowed quantiles as of now. An empty window
// yields zeros with Count 0.
func (r *RollingQuantile) Snapshot() QuantileSnapshot {
	if r == nil {
		return QuantileSnapshot{}
	}
	cutoff := timeNow().Add(-r.window)
	r.mu.Lock()
	vals := make([]float64, 0, r.n)
	for i := 0; i < r.n; i++ {
		if s := r.samples[i]; !s.at.Before(cutoff) {
			vals = append(vals, s.v)
		}
	}
	r.mu.Unlock()
	snap := QuantileSnapshot{WindowSeconds: r.window.Seconds(), Count: len(vals)}
	if len(vals) == 0 {
		return snap
	}
	sort.Float64s(vals)
	snap.P50 = quantileOf(vals, 0.50)
	snap.P90 = quantileOf(vals, 0.90)
	snap.P95 = quantileOf(vals, 0.95)
	snap.P99 = quantileOf(vals, 0.99)
	return snap
}

// Reset drops every sample (the obs.Reset hook).
func (r *RollingQuantile) reset() {
	r.mu.Lock()
	r.samples, r.pos, r.n = r.samples[:0], 0, 0
	r.mu.Unlock()
}

// quantileOf returns the nearest-rank quantile of sorted values.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// QuantileSnapshots returns the windowed view of every registered
// rolling-quantile series, keyed by name. Windowed state is live-only by
// design: it does not appear in TakeSnapshot, whose output must be a
// deterministic function of recorded values (quantiles decay with the
// clock even when nothing records).
func QuantileSnapshots() map[string]QuantileSnapshot {
	reg.mu.RLock()
	rollers := make([]*RollingQuantile, 0, len(reg.rollers))
	for _, r := range reg.rollers {
		rollers = append(rollers, r)
	}
	reg.mu.RUnlock()
	out := make(map[string]QuantileSnapshot, len(rollers))
	for _, r := range rollers {
		out[r.name] = r.Snapshot()
	}
	return out
}
