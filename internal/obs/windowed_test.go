package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRollingQuantileWindow pins the nearest-rank quantile math and the
// sliding-window expiry, using the timeNow hook for a deterministic
// clock.
func TestRollingQuantileWindow(t *testing.T) {
	Enable()
	defer func() {
		timeNow = time.Now
		Disable()
		Reset()
	}()
	base := time.Unix(1700000000, 0).UTC()
	now := base
	timeNow = func() time.Time { return now }

	q := NewRollingQuantile("win_test_seconds", "t", time.Minute)
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	snap := q.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d, want 100", snap.Count)
	}
	if snap.P50 != 50 || snap.P95 != 95 || snap.P99 != 99 {
		t.Fatalf("p50/p95/p99 = %v/%v/%v, want 50/95/99", snap.P50, snap.P95, snap.P99)
	}

	// Age the first hundred out of the window; only fresh samples remain.
	now = base.Add(2 * time.Minute)
	q.Observe(7)
	q.Observe(9)
	snap = q.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("after expiry count = %d, want 2", snap.Count)
	}
	if snap.P50 != 7 || snap.P99 != 9 {
		t.Fatalf("after expiry p50/p99 = %v/%v, want 7/9", snap.P50, snap.P99)
	}
}

func TestRollingQuantileDisabledAndRegistry(t *testing.T) {
	Disable()
	Reset()
	q := NewRollingQuantile("win_disabled_seconds", "t", time.Minute)
	q.Observe(1)
	if snap := q.Snapshot(); snap.Count != 0 {
		t.Fatalf("disabled quantile recorded %d samples", snap.Count)
	}
	if q2 := NewRollingQuantile("win_disabled_seconds", "other", 0); q2 != q {
		t.Fatal("re-registration returned a different instance")
	}
}

// TestSLOBurn pins the SLO arithmetic: compliance, budget use and burn
// rate for a known mix of good and bad requests.
func TestSLOBurn(t *testing.T) {
	Enable()
	defer func() {
		timeNow = time.Now
		Disable()
		Reset()
	}()
	base := time.Unix(1700000000, 0).UTC()
	now := base
	timeNow = func() time.Time { return now }

	s := NewSLO("burn_test", 100*time.Millisecond, 0.99, time.Minute)
	for i := 0; i < 98; i++ {
		s.Observe(10*time.Millisecond, false)
	}
	s.Observe(500*time.Millisecond, false) // too slow → bad
	s.Observe(10*time.Millisecond, true)   // failed → bad
	snap := s.Snapshot()
	if snap.Total != 100 || snap.Good != 98 || snap.Bad != 2 {
		t.Fatalf("total/good/bad = %d/%d/%d, want 100/98/2", snap.Total, snap.Good, snap.Bad)
	}
	if snap.Compliance != 0.98 {
		t.Fatalf("compliance = %v, want 0.98", snap.Compliance)
	}
	// 2% bad against a 1% budget: the budget is doubly spent.
	if snap.BurnRate < 1.99 || snap.BurnRate > 2.01 {
		t.Fatalf("burn rate = %v, want ~2.0", snap.BurnRate)
	}

	// Outside the window the slate is clean and compliance reads 1.
	now = base.Add(2 * time.Minute)
	snap = s.Snapshot()
	if snap.Total != 0 || snap.Compliance != 1 || snap.BurnRate != 0 {
		t.Fatalf("expired window: %+v", snap)
	}
}

// TestWindowedInPrometheus asserts the windowed series ride the /metrics
// exposition: quantile summaries and SLO gauges.
func TestWindowedInPrometheus(t *testing.T) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	q := NewRollingQuantile("promwin_seconds", "t", time.Minute)
	q.Observe(0.25)
	s := NewSLO("promwin", 100*time.Millisecond, 0.99, time.Minute)
	s.Observe(10*time.Millisecond, false)

	var sb strings.Builder
	if _, err := WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`promwin_seconds{quantile="0.99"} 0.25`,
		"promwin_seconds_count 1",
		`hdface_slo_compliance{slo="promwin"} 1`,
		`hdface_slo_budget_used{slo="promwin"} 0`,
		"go_goroutines ",
		"go_num_cpu ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("WriteTo output missing %q:\n%s", want, text)
		}
	}
}

// TestRuntimeGauges checks CaptureRuntime populates the Go runtime
// gauges when armed and stays silent when disabled.
func TestRuntimeGauges(t *testing.T) {
	Disable()
	Reset()
	CaptureRuntime()
	if v := TakeSnapshot().Gauges["go_goroutines"]; v != 0 {
		t.Fatalf("disabled CaptureRuntime recorded go_goroutines = %v", v)
	}

	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	CaptureRuntime()
	gauges := TakeSnapshot().Gauges
	goroutines, ncpu := gauges["go_goroutines"], gauges["go_num_cpu"]
	if goroutines < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", goroutines)
	}
	if ncpu < 1 {
		t.Fatalf("go_num_cpu = %v, want >= 1", ncpu)
	}
}

// TestAllocTrackingSingleFlight is the regression test for the
// SetTrackAllocs cross-attribution fix: when spans overlap, exactly one
// owns the process-global runtime.MemStats window; the others are
// counted as skipped and report zero instead of stealing the owner's
// allocations.
func TestAllocTrackingSingleFlight(t *testing.T) {
	Enable()
	SetTrackAllocs(true)
	defer func() {
		SetTrackAllocs(false)
		Disable()
		Reset()
	}()
	Reset()

	owner := StartSpan("alloc_owner")
	overlapped := StartSpan("alloc_overlap") // owner slot taken → must skip
	if !owner.allocTracked {
		t.Fatal("first span did not acquire allocation tracking")
	}
	if overlapped.allocTracked {
		t.Fatal("overlapping span also acquired allocation tracking (double attribution)")
	}
	// The overlapped span allocates; none of it may land on its stage.
	sink := make([]byte, 1<<16)
	_ = sink
	overlapped.End()
	owner.End()

	// Once the owner released the slot, the next span tracks again.
	after := StartSpan("alloc_after")
	if !after.allocTracked {
		t.Fatal("owner slot not released by End")
	}
	after.End()

	snap := TakeSnapshot()
	if skipped := snap.Counters["hdface_obs_alloc_track_skipped_total"]; skipped != 1 {
		t.Fatalf("skipped counter = %v, want 1", skipped)
	}
	if st := snap.Stages["alloc_overlap"]; st.Mallocs != 0 {
		t.Fatalf("overlapped span attributed %d mallocs, want 0", st.Mallocs)
	}
}

// TestAllocTrackingConcurrent hammers overlapping tracked spans; under
// -race this proves the owner CAS serialises MemStats windows, and the
// invariant holds that every span either tracked or was counted skipped.
func TestAllocTrackingConcurrent(t *testing.T) {
	Enable()
	SetTrackAllocs(true)
	defer func() {
		SetTrackAllocs(false)
		Disable()
		Reset()
	}()
	Reset()

	const workers, iters = 4, 50
	var wg sync.WaitGroup
	var tracked sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := StartSpan("alloc_hammer")
				if sp.allocTracked {
					tracked.Store([2]int{w, i}, true)
				}
				sp.End()
			}
		}(w)
	}
	wg.Wait()

	nTracked := 0
	tracked.Range(func(_, _ any) bool { nTracked++; return true })
	skipped := TakeSnapshot().Counters["hdface_obs_alloc_track_skipped_total"]
	if nTracked+int(skipped) != workers*iters {
		t.Fatalf("tracked %d + skipped %d != %d spans", nTracked, skipped, workers*iters)
	}
	if nTracked == 0 {
		t.Fatal("no span ever acquired tracking")
	}
}
