package trace

import (
	"strings"
	"testing"
)

// FuzzInboundTraceID throws hostile inbound X-Hdface-Trace values at the
// validator path a router-fronted daemon exposes to the network. The
// invariants: New never panics, always yields a bounded non-empty ID, and
// echoes the inbound value back (into logs, /debug/traces and response
// headers) only when it passes validID — anything else gets a freshly
// minted ID instead of being reflected.
func FuzzInboundTraceID(f *testing.F) {
	f.Add("")
	f.Add("abc-123")
	f.Add(strings.Repeat("a", maxInboundID))
	f.Add(strings.Repeat("a", maxInboundID+1))
	f.Add("evil\r\nX-Injected: 1")
	f.Add("..\\..\\etc\\passwd")
	f.Add("\x00\x01\x02")
	f.Add("caf\xc3\xa9") // valid UTF-8, but non-ASCII bytes
	f.Add("\xff\xfe")    // invalid UTF-8
	f.Add("{\"json\": \"bomb\"}")
	f.Add("<script>alert(1)</script>")
	f.Add(strings.Repeat("💣", 40))

	Enable()
	f.Cleanup(Disable)

	f.Fuzz(func(t *testing.T, inbound string) {
		tr := New("fuzz", inbound)
		if tr == nil {
			t.Fatal("tracing armed but New returned nil")
		}
		defer tr.Finish()

		id := tr.ID()
		if id == "" || len(id) > maxInboundID {
			t.Fatalf("ID %q: want non-empty and <= %d bytes", id, maxInboundID)
		}
		// The assigned ID must itself satisfy the validator — whatever goes
		// back out in headers and logs is always from the safe alphabet.
		if !validID(id) {
			t.Fatalf("assigned ID %q fails the echo-safety check", id)
		}
		// An inbound value may only ever be echoed when it is valid; a
		// hostile value must never surface as the trace's identity.
		if id == inbound && !validID(inbound) {
			t.Fatalf("hostile inbound %q echoed unsanitized", inbound)
		}
		if validID(inbound) && id != inbound {
			t.Fatalf("valid inbound %q not honoured (got %q)", inbound, id)
		}
	})
}
