package trace

import (
	"sort"
	"sync"
	"time"
)

// Retention bounds. The collector keeps three bounded sets: a ring of the
// most recent traces (whatever their fate), the slowest traces seen, and
// a ring of error/degraded traces. Rings overwrite oldest-first; the slow
// set evicts its fastest member. Tail-based retention means a burst of
// fast, healthy traffic can never flush the one trace that explains an
// SLO breach.
const (
	recentCap = 256
	slowCap   = 32
	errCap    = 64
)

// collector is the process-global finished-trace store.
type collector struct {
	mu     sync.Mutex
	recent []*Trace // ring, cap recentCap
	pos    int
	slow   []*Trace // sorted ascending by duration, cap slowCap
	errs   []*Trace // ring, cap errCap
	errPos int
}

var col collector

// add applies the retention policy to one finished trace. Called from
// Finish with t sealed, so reading t.dur and flags needs no trace lock.
func (c *collector) add(t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Recent ring.
	if len(c.recent) < recentCap {
		c.recent = append(c.recent, t)
	} else {
		c.recent[c.pos] = t
		c.pos = (c.pos + 1) % recentCap
	}
	// Error/degraded ring.
	if t.err || t.degraded {
		if len(c.errs) < errCap {
			c.errs = append(c.errs, t)
		} else {
			c.errs[c.errPos] = t
			c.errPos = (c.errPos + 1) % errCap
		}
	}
	// Slowest set: insertion-sort into a small sorted slice.
	if len(c.slow) < slowCap {
		c.slow = append(c.slow, t)
		sort.Slice(c.slow, func(i, j int) bool { return c.slow[i].dur < c.slow[j].dur })
	} else if t.dur > c.slow[0].dur {
		c.slow[0] = t
		sort.Slice(c.slow, func(i, j int) bool { return c.slow[i].dur < c.slow[j].dur })
	}
}

// Reset drops every collected trace. For tests and for separating a
// warm-up phase from a measured phase, like obs.Reset.
func Reset() {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.recent, col.pos = nil, 0
	col.slow = nil
	col.errs, col.errPos = nil, 0
}

// Filter selects traces for Snapshot. The zero Filter selects from the
// recent ring. Setting any of Slow/Errors/Degraded restricts the source
// to the union of those retention sets; Kind and Stage then filter the
// candidates; Limit caps the result (default 64, newest first).
type Filter struct {
	Slow     bool   // slowest-retained traces
	Errors   bool   // error traces
	Degraded bool   // degraded traces
	Kind     string // only traces of this kind ("predict", "detect", ...)
	Stage    string // only traces containing a span with this name
	Limit    int
}

// Snapshot exports the selected traces as an hdface-trace/v1 document,
// newest first. It is safe to call concurrently with tracing.
func Snapshot(f Filter) Export {
	if f.Limit <= 0 {
		f.Limit = 64
	}
	restricted := f.Slow || f.Errors || f.Degraded
	col.mu.Lock()
	seen := make(map[*Trace]bool)
	var cand []*Trace
	take := func(ts []*Trace, want func(*Trace) bool) {
		for _, t := range ts {
			if t != nil && !seen[t] && want(t) {
				seen[t] = true
				cand = append(cand, t)
			}
		}
	}
	any := func(*Trace) bool { return true }
	if restricted {
		if f.Slow {
			take(col.slow, any)
		}
		if f.Errors {
			take(col.errs, func(t *Trace) bool { return t.err })
		}
		if f.Degraded {
			take(col.errs, func(t *Trace) bool { return t.degraded })
		}
	} else {
		take(col.recent, any)
	}
	col.mu.Unlock()

	out := Export{Schema: ExportSchema}
	// Newest first; traces are sealed before collection, so start/dur
	// reads are stable without the trace lock.
	sort.Slice(cand, func(i, j int) bool { return cand[i].start.After(cand[j].start) })
	for _, t := range cand {
		if f.Kind != "" && t.kind != f.Kind {
			continue
		}
		t.mu.Lock()
		keep := f.Stage == "" || hasStage(&t.root, f.Stage)
		if keep {
			out.Traces = append(out.Traces, exportLocked(t))
		}
		t.mu.Unlock()
		if len(out.Traces) >= f.Limit {
			break
		}
	}
	return out
}

// Last returns the n most recent traces (the -trace-dump surface).
func Last(n int) Export {
	return Snapshot(Filter{Limit: n})
}

// hasStage reports whether the subtree contains a span named stage.
func hasStage(s *Span, stage string) bool {
	if s.name == stage {
		return true
	}
	for _, c := range s.children {
		if hasStage(c, stage) {
			return true
		}
	}
	return false
}

// ExportSchema identifies the trace export JSON layout; bump on breaking
// changes. EXPERIMENTS.md documents it for trajectory tooling.
const ExportSchema = "hdface-trace/v1"

// Export is the /debug/traces (and -trace-dump) document.
type Export struct {
	Schema string        `json:"schema"`
	Traces []ExportTrace `json:"traces"`
}

// ExportTrace is one trace: identity, bounds, terminal flags and the span
// tree. Durations are microseconds — the natural grain of this system,
// where a window scores in microseconds and a request lives milliseconds.
type ExportTrace struct {
	TraceID       string            `json:"trace_id"`
	Kind          string            `json:"kind"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationUS    int64             `json:"duration_us"`
	Error         bool              `json:"error,omitempty"`
	Degraded      bool              `json:"degraded,omitempty"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Spans         []ExportSpan      `json:"spans,omitempty"`
}

// ExportSpan is one node of the span tree, offsets relative to the trace
// start.
type ExportSpan struct {
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []ExportSpan      `json:"children,omitempty"`
}

// exportLocked deep-copies a trace into its export form. Caller holds
// t.mu.
func exportLocked(t *Trace) ExportTrace {
	return ExportTrace{
		TraceID:       t.id,
		Kind:          t.kind,
		StartUnixNano: t.start.UnixNano(),
		DurationUS:    int64(t.dur / time.Microsecond),
		Error:         t.err,
		Degraded:      t.degraded,
		Attrs:         attrMap(t.root.attrs),
		Spans:         exportChildren(t.root.children),
	}
}

func exportChildren(spans []*Span) []ExportSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]ExportSpan, len(spans))
	for i, s := range spans {
		out[i] = ExportSpan{
			Name:       s.name,
			StartUS:    int64(s.start / time.Microsecond),
			DurationUS: int64((s.end - s.start) / time.Microsecond),
			Attrs:      attrMap(s.attrs),
			Children:   exportChildren(s.children),
		}
	}
	return out
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.K] = a.V
	}
	return m
}
