package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// resetAll returns the package to its default (disabled, empty) state.
func resetAll() {
	Disable()
	Reset()
}

func TestDisabledReturnsNil(t *testing.T) {
	resetAll()
	if tr := New("predict", ""); tr != nil {
		t.Fatalf("New with tracing disabled = %v, want nil", tr)
	}
}

// TestDisabledPathAllocFree pins the disabled instrumentation path at
// zero allocations: the serving hot path runs it on every request, so a
// single stray allocation here is a per-request regression.
func TestDisabledPathAllocFree(t *testing.T) {
	resetAll()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		tr := New("predict", "")
		c := NewContext(ctx, tr)
		c2, sp := StartSpan(c, "stage")
		sp.SetAttr("k", "v")
		sp.End()
		_ = FromContext(c2)
		tr.SetError(false)
		tr.SetDegraded(false)
		tr.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f/op, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	resetAll()
	var tr *Trace
	var sp *Span
	// None of these may panic.
	_ = tr.ID()
	_ = tr.Kind()
	_ = tr.Duration()
	tr.SetError(true)
	tr.SetDegraded(true)
	tr.SetAttr("k", "v")
	tr.Finish()
	_ = tr.StartSpan("x")
	_ = tr.AddSpan("x", time.Now(), time.Now())
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetAttrInt("k", 1)
	_ = sp.StartSpan("x")
	_ = sp.AddSpan("x", time.Now(), time.Now())
}

func TestInboundID(t *testing.T) {
	resetAll()
	Enable()
	defer resetAll()
	cases := []struct {
		inbound string
		honour  bool
	}{
		{"router-7f.leg:2", true},
		{"0123456789abcdef", true},
		{"", false},
		{"has space", false},
		{"semi;colon", false},
		{strings.Repeat("a", maxInboundID), true},
		{strings.Repeat("a", maxInboundID+1), false},
	}
	for _, c := range cases {
		tr := New("predict", c.inbound)
		if c.honour && tr.ID() != c.inbound {
			t.Errorf("inbound %q not honoured: got %q", c.inbound, tr.ID())
		}
		if !c.honour && tr.ID() == c.inbound {
			t.Errorf("inbound %q should have been replaced", c.inbound)
		}
		if got := tr.ID(); len(got) == 0 || len(got) > maxInboundID {
			t.Errorf("inbound %q: bad ID %q", c.inbound, got)
		}
	}
}

func TestContextNesting(t *testing.T) {
	resetAll()
	Enable()
	defer resetAll()
	tr := New("detect", "")
	ctx := NewContext(context.Background(), tr)
	ctx1, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx1, "inner")
	inner.End()
	outer.End()
	tr.Finish()

	exp := Snapshot(Filter{Kind: "detect", Limit: 1})
	if len(exp.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(exp.Traces))
	}
	spans := exp.Traces[0].Spans
	if len(spans) != 1 || spans[0].Name != "outer" {
		t.Fatalf("top-level spans = %+v, want one %q", spans, "outer")
	}
	if len(spans[0].Children) != 1 || spans[0].Children[0].Name != "inner" {
		t.Fatalf("outer children = %+v, want one %q", spans[0].Children, "inner")
	}
}

// TestGoldenExport pins the hdface-trace/v1 JSON schema byte-for-byte,
// using the timeNow hook for a deterministic clock. Tooling parses this
// format (EXPERIMENTS.md documents it); an accidental field rename or
// unit change must fail loudly here.
func TestGoldenExport(t *testing.T) {
	resetAll()
	Enable()
	defer func() { timeNow = time.Now; resetAll() }()

	base := time.Unix(1700000000, 0).UTC()
	now := base
	timeNow = func() time.Time { return now }

	tr := New("detect", "golden-test")
	tr.SetAttr("degraded", "true")
	tr.SetDegraded(true)
	lv := tr.AddSpan("level", base.Add(1*time.Millisecond), base.Add(3*time.Millisecond))
	lv.SetAttrInt("windows", 42)
	sc := tr.AddSpan("score", base.Add(3*time.Millisecond), base.Add(9*time.Millisecond))
	sc.AddSpan("window_batch", base.Add(3*time.Millisecond), base.Add(4*time.Millisecond))
	now = base.Add(10 * time.Millisecond)
	tr.Finish()

	got, err := json.Marshal(Last(1))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"hdface-trace/v1","traces":[{"trace_id":"golden-test","kind":"detect",` +
		`"start_unix_nano":1700000000000000000,"duration_us":10000,"degraded":true,` +
		`"attrs":{"degraded":"true"},"spans":[` +
		`{"name":"level","start_us":1000,"duration_us":2000,"attrs":{"windows":"42"}},` +
		`{"name":"score","start_us":3000,"duration_us":6000,"children":[` +
		`{"name":"window_batch","start_us":3000,"duration_us":1000}]}]}]}`
	if string(got) != want {
		t.Fatalf("hdface-trace/v1 export drifted:\n got: %s\nwant: %s", got, want)
	}
}

func TestFinishIdempotentAndClosesOpenSpans(t *testing.T) {
	resetAll()
	Enable()
	defer resetAll()
	tr := New("predict", "")
	sp := tr.StartSpan("left-open")
	_ = sp
	tr.Finish()
	d := tr.Duration()
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	tr.Finish() // second call must not re-collect
	exp := Last(10)
	n := 0
	for _, et := range exp.Traces {
		if et.TraceID == tr.ID() {
			n++
			if len(et.Spans) != 1 {
				t.Fatalf("spans = %d, want 1", len(et.Spans))
			}
			if et.Spans[0].StartUS+et.Spans[0].DurationUS > int64(d/time.Microsecond) {
				t.Fatalf("open span not clamped to trace end: %+v (trace %v)", et.Spans[0], d)
			}
		}
	}
	if n != 1 {
		t.Fatalf("trace collected %d times, want 1", n)
	}
}

// TestTailRetention drives the collector far past the recent ring's
// capacity and asserts the tail policy: the slowest trace and the
// error/degraded traces survive a flood of fast, healthy traffic.
func TestTailRetention(t *testing.T) {
	resetAll()
	Enable()
	defer func() { timeNow = time.Now; resetAll() }()

	base := time.Unix(1700000000, 0).UTC()
	now := base
	timeNow = func() time.Time { return now }

	mk := func(id string, dur time.Duration, errFlag, degraded bool) {
		now = now.Add(time.Millisecond) // distinct, increasing start times
		tr := New("predict", id)
		start := now
		tr.SetError(errFlag)
		tr.SetDegraded(degraded)
		now = start.Add(dur)
		tr.Finish()
	}

	mk("slowpoke", time.Second, false, false)
	mk("broken", time.Millisecond, true, false)
	mk("budget-blown", time.Millisecond, false, true)
	for i := 0; i < recentCap+16; i++ {
		mk(fmt.Sprintf("fast-%d", i), time.Microsecond, false, false)
	}

	recent := Snapshot(Filter{Limit: recentCap * 2})
	for _, et := range recent.Traces {
		if et.TraceID == "slowpoke" || et.TraceID == "broken" || et.TraceID == "budget-blown" {
			t.Fatalf("%s still in recent ring; flood too small for the test to mean anything", et.TraceID)
		}
	}

	find := func(exp Export, id string) bool {
		for _, et := range exp.Traces {
			if et.TraceID == id {
				return true
			}
		}
		return false
	}
	if exp := Snapshot(Filter{Slow: true}); !find(exp, "slowpoke") {
		t.Fatalf("slowest trace evicted by fast flood; retained: %d", len(exp.Traces))
	}
	if exp := Snapshot(Filter{Errors: true}); !find(exp, "broken") || find(exp, "budget-blown") {
		t.Fatalf("error filter wrong: %+v", exp.Traces)
	}
	if exp := Snapshot(Filter{Degraded: true}); !find(exp, "budget-blown") || find(exp, "broken") {
		t.Fatalf("degraded filter wrong")
	}
	if exp := Snapshot(Filter{Errors: true, Degraded: true}); !find(exp, "broken") || !find(exp, "budget-blown") {
		t.Fatalf("union filter wrong")
	}
}

func TestSnapshotFilters(t *testing.T) {
	resetAll()
	Enable()
	defer resetAll()

	tr := New("detect", "with-stage")
	sp := tr.StartSpan("detect_sweep")
	sp.StartSpan("level").End()
	sp.End()
	tr.Finish()
	tr2 := New("predict", "no-stage")
	tr2.Finish()

	if exp := Snapshot(Filter{Kind: "detect"}); len(exp.Traces) != 1 || exp.Traces[0].TraceID != "with-stage" {
		t.Fatalf("kind filter: %+v", exp.Traces)
	}
	if exp := Snapshot(Filter{Stage: "level"}); len(exp.Traces) != 1 || exp.Traces[0].TraceID != "with-stage" {
		t.Fatalf("stage filter should match nested spans: %+v", exp.Traces)
	}
	if exp := Snapshot(Filter{Stage: "nope"}); len(exp.Traces) != 0 {
		t.Fatalf("bogus stage matched: %+v", exp.Traces)
	}
	if exp := Snapshot(Filter{Limit: 1}); len(exp.Traces) != 1 || exp.Traces[0].TraceID != "no-stage" {
		t.Fatalf("limit should keep newest first: %+v", exp.Traces)
	}
}

// TestConcurrentHammer races trace creation, annotation from multiple
// goroutines per trace, collection, snapshotting and reset. Run with
// -race; the assertions only check it survives with sane output.
func TestConcurrentHammer(t *testing.T) {
	resetAll()
	Enable()
	defer resetAll()

	const traces = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < traces; i++ {
				tr := New("hammer", "")
				ctx := NewContext(context.Background(), tr)
				var inner sync.WaitGroup
				for w := 0; w < 3; w++ {
					inner.Add(1)
					go func(w int) {
						defer inner.Done()
						_, sp := StartSpan(ctx, "stage")
						sp.SetAttrInt("worker", int64(w))
						sp.StartSpan("child").End()
						sp.End()
					}(w)
				}
				inner.Wait()
				if i%7 == 0 {
					tr.SetError(true)
				}
				tr.Finish()
				if i%13 == 0 {
					_ = Snapshot(Filter{Errors: true, Limit: 8})
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			exp := Last(32)
			if exp.Schema != ExportSchema {
				t.Fatalf("schema %q", exp.Schema)
			}
			for _, et := range exp.Traces {
				for _, sp := range et.Spans {
					if sp.Name != "stage" {
						t.Fatalf("unexpected span %q", sp.Name)
					}
				}
			}
			return
		default:
			_ = Last(4)
		}
	}
}
