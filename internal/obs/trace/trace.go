// Package trace is the per-request tracer of the observability layer: a
// zero-dependency span-tree recorder that answers the question the
// aggregate metrics in internal/obs cannot — "why was *this* request
// slow?". A Trace is minted at request ingress (honouring an inbound
// X-Hdface-Trace header, so an upstream router can stitch fan-out legs
// together), threaded through the serving stack via context.Context, and
// closed with Finish, which hands it to a process-global collector with
// tail-based retention: alongside a ring of recent traces, the collector
// always keeps the slowest traces and the error/degraded traces, so the
// interesting tail survives being flooded by fast, healthy requests.
//
// Like the rest of obs, the package is off by default and the disabled
// path is allocation free: New returns nil, every method is nil-safe, and
// NewContext returns its input context untouched, so callers instrument
// unconditionally:
//
//	tr := trace.New("detect", r.Header.Get(trace.Header))
//	ctx = trace.NewContext(ctx, tr)
//	...
//	tr.SetDegraded(stats.Degraded)
//	tr.Finish()
//
// Tracing never alters computation — spans only observe — so properties
// like N-worker byte-identity of detection output hold with tracing on
// (asserted by the detect package's tests).
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdface/internal/obs"
)

// Header is the HTTP header that carries a trace ID inbound (a router
// propagating its own ID to a replica) and outbound (the ID minted for
// the response).
const Header = "X-Hdface-Trace"

// maxInboundID bounds accepted inbound trace IDs; longer or malformed
// IDs are replaced by a freshly minted one rather than rejected.
const maxInboundID = 64

// armed is the package on/off switch, separate from obs's so snapshots can
// run without the tracer and vice versa. The serve daemon arms both.
var armed atomic.Bool

// Enable turns tracing on process-wide.
func Enable() { armed.Store(true) }

// Disable turns tracing off. Already-collected traces are retained (use
// Reset to drop them); in-flight traces keep recording until finished.
func Disable() { armed.Store(false) }

// Enabled reports whether tracing is on.
func Enabled() bool { return armed.Load() }

// timeNow is swapped by tests for deterministic golden output.
var timeNow = time.Now

// Tracer activity counters (recorded through obs, so they ride the same
// /metrics surface as everything else).
var (
	obsStarted  = obs.NewCounter("hdface_trace_started_total", "traces minted")
	obsFinished = obs.NewCounter("hdface_trace_finished_total", "traces finished and offered to the collector")
	obsInbound  = obs.NewCounter("hdface_trace_inherited_total", "traces that honoured an inbound X-Hdface-Trace ID")
)

// Attr is one key/value annotation on a span or trace.
type Attr struct {
	K, V string
}

// Span is one timed region inside a trace. Spans form a tree; all
// mutation locks the owning trace, so spans may be created and annotated
// from any goroutine. A nil *Span is a valid no-op receiver.
type Span struct {
	name       string
	start, end time.Duration // offsets from the trace start; end==0 means open
	attrs      []Attr
	children   []*Span
	t          *Trace
}

// Trace is one request's span tree plus its terminal status flags. Create
// with New, thread with NewContext/FromContext, close with Finish.
type Trace struct {
	id    string
	kind  string
	start time.Time

	mu       sync.Mutex
	root     Span
	err      bool
	degraded bool
	finished bool
	dur      time.Duration
}

// seq feeds the ID minter.
var seq atomic.Uint64

// mintID returns a 16-hex-digit process-unique trace ID. The sequence
// number keeps IDs unique even when the clock stalls; the splitmix64
// finaliser spreads them so IDs from different processes rarely collide.
func mintID() string {
	x := seq.Add(1)*0x9e3779b97f4a7c15 + uint64(timeNow().UnixNano())
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

// validID reports whether an inbound ID is safe to echo: non-empty,
// bounded, and limited to URL- and log-safe characters.
func validID(id string) bool {
	if id == "" || len(id) > maxInboundID {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}

// New mints a trace of the given kind ("predict", "detect",
// "online_round", ...). inbound, when well-formed, becomes the trace's ID
// — the hook that lets an upstream router correlate its fan-out. New
// returns nil when tracing is disabled; every Trace and Span method is
// nil-safe, so callers never branch.
func New(kind, inbound string) *Trace {
	if !armed.Load() {
		return nil
	}
	t := &Trace{kind: kind, start: timeNow()}
	if validID(inbound) {
		t.id = inbound
		obsInbound.Inc()
	} else {
		t.id = mintID()
	}
	obsStarted.Inc()
	return t
}

// ID returns the trace ID, or "" for a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Kind returns the trace kind, or "" for a nil trace.
func (t *Trace) Kind() string {
	if t == nil {
		return ""
	}
	return t.kind
}

// SetError marks the trace as failed; error traces are retained by the
// collector's tail-based policy regardless of how fast they were.
func (t *Trace) SetError(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.err = on
	t.mu.Unlock()
}

// SetDegraded marks the trace as degraded (an anytime sweep that ran out
// of budget); degraded traces are retained like errors.
func (t *Trace) SetDegraded(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.degraded = on
	t.mu.Unlock()
}

// SetAttr annotates the trace itself (the root of the span tree).
func (t *Trace) SetAttr(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.root.attrs = append(t.root.attrs, Attr{k, v})
	t.mu.Unlock()
}

// StartSpan opens a top-level span. Close it with End.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(&t.root, name, timeNow().Sub(t.start), 0)
}

// AddSpan records a top-level span retroactively from explicit wall-clock
// bounds — the shape used for phases whose boundaries are only known
// after the fact (queue wait measured at dequeue, the parallel scoring
// region of a sweep).
func (t *Trace) AddSpan(name string, start, end time.Time) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(&t.root, name, start.Sub(t.start), end.Sub(t.start))
}

// newSpan appends a child under parent. A zero end leaves the span open.
func (t *Trace) newSpan(parent *Span, name string, start, end time.Duration) *Span {
	s := &Span{name: name, start: start, end: end, t: t}
	t.mu.Lock()
	parent.children = append(parent.children, s)
	t.mu.Unlock()
	return s
}

// StartSpan opens a child span under s.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s, name, timeNow().Sub(s.t.start), 0)
}

// AddSpan records a child span retroactively from explicit bounds.
func (s *Span) AddSpan(name string, start, end time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s, name, start.Sub(s.t.start), end.Sub(s.t.start))
}

// End closes the span. Ending an already-closed span is a no-op, and
// spans still open when the trace finishes are closed at the trace end.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := timeNow().Sub(s.t.start)
	s.t.mu.Lock()
	if s.end == 0 {
		s.end = now
	}
	s.t.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{k, v})
	s.t.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(k string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(k, fmt.Sprintf("%d", v))
}

// closeOpen closes every still-open span in the subtree at the trace's
// final duration. Called with t.mu held.
func closeOpen(s *Span, end time.Duration) {
	if s.end == 0 {
		s.end = end
	}
	for _, c := range s.children {
		closeOpen(c, end)
	}
}

// Finish seals the trace — its duration is fixed, open spans are closed —
// and offers it to the collector, which applies tail-based retention.
// Finish is idempotent; only the first call collects.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.dur = timeNow().Sub(t.start)
	t.root.end = t.dur
	closeOpen(&t.root, t.dur)
	t.mu.Unlock()
	col.add(t)
	obsFinished.Inc()
}

// Duration returns the trace's final duration (zero until Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// ctxKey keys the context value; carrying a tiny struct of (trace,
// current span) lets StartSpan nest naturally down a call tree.
type ctxKey struct{}

type ctxVal struct {
	t *Trace
	s *Span // current parent; nil means the trace root
}

// NewContext returns ctx carrying the trace. A nil trace returns ctx
// unchanged (no allocation), keeping the disabled path free.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t})
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.t
	}
	return nil
}

// StartSpan opens a span under the context's current span (or the trace
// root) and returns a context under which further StartSpan calls nest
// inside it. With no trace in ctx it returns (ctx, nil) untouched.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.t == nil {
		return ctx, nil
	}
	var sp *Span
	if v.s != nil {
		sp = v.s.StartSpan(name)
	} else {
		sp = v.t.StartSpan(name)
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: v.t, s: sp}), sp
}
