package obs

import "runtime"

// Go runtime gauges: the generic fleet-health signals a router or
// dashboard watches next to the domain metrics (is a replica leaking
// goroutines? is the heap growing? is GC eating the latency budget?).
// They are captured on demand by CaptureRuntime — called from the
// /metrics handlers and from obscli.Finish — rather than continuously,
// because runtime.ReadMemStats briefly stops the world and a scrape-time
// reading is exactly as fresh as the scrape.
var (
	gGoroutines = NewGauge("go_goroutines", "goroutines currently live")
	gNumCPU     = NewGauge("go_num_cpu", "logical CPUs available to the process")
	gHeapInuse  = NewGauge("go_heap_inuse_bytes", "bytes in in-use heap spans")
	gHeapAlloc  = NewGauge("go_heap_alloc_bytes", "bytes of allocated, not yet freed heap objects")
	gGCCycles   = NewGauge("go_gc_cycles_total", "completed GC cycles")
	gGCPause    = NewGauge("go_gc_pause_seconds_total", "cumulative stop-the-world GC pause time")
)

// CaptureRuntime refreshes the go_* runtime gauges. It records nothing
// when instrumentation is disabled, like every other entry point.
func CaptureRuntime() {
	if !armed.Load() {
		return
	}
	gGoroutines.Set(float64(runtime.NumGoroutine()))
	gNumCPU.Set(float64(runtime.NumCPU()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gHeapInuse.Set(float64(ms.HeapInuse))
	gHeapAlloc.Set(float64(ms.HeapAlloc))
	gGCCycles.Set(float64(ms.NumGC))
	gGCPause.Set(float64(ms.PauseTotalNs) / 1e9)
}
