package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer pounds every metric kind from many goroutines; run
// under -race (scripts/check.sh does) to prove the registry is
// concurrency-safe, and check the totals to prove no update is lost.
func TestConcurrentHammer(t *testing.T) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	c := NewCounter("hammer_total", "t")
	g := NewGauge("hammer_gauge", "t")
	h := NewHistogram("hammer_hist", "t", []float64{1, 10, 100})

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(w))
				h.Observe(float64(i % 20))
				sp := StartSpan("hammer_stage")
				sp.AddItems(1)
				sp.End()
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	snap := TakeSnapshot()
	st := snap.Stages["hammer_stage"]
	if st.Count != workers*iters || st.Items != workers*iters {
		t.Fatalf("stage = %+v, want count=items=%d", st, workers*iters)
	}
	if g.Value() >= workers {
		t.Fatalf("gauge = %v, want < %d", g.Value(), workers)
	}
	var sum int64
	hs := snap.Histograms["hammer_hist"]
	for _, n := range hs.Counts {
		sum += n
	}
	if sum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", sum, hs.Count)
	}
}

// TestHistogramBuckets pins down bucket placement: values land in the
// first bucket whose upper bound is >= the value, overflow in +Inf.
func TestHistogramBuckets(t *testing.T) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	h := NewHistogram("bucket_hist", "t", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 2, 10, 11} {
		h.Observe(v)
	}
	snap := TakeSnapshot().Histograms["bucket_hist"]
	want := []int64{2, 2, 1} // {0.5,1}, {2,10}, {11}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Sum != 24.5 || snap.Count != 5 {
		t.Fatalf("sum/count = %v/%d", snap.Sum, snap.Count)
	}
}

// TestSnapshotDeterminism: with recording quiesced, repeated snapshots are
// identical, and the JSON form round-trips losslessly through
// encoding/json (the -stats-json acceptance criterion).
func TestSnapshotDeterminism(t *testing.T) {
	Enable()
	NewCounter("det_total", "t").Add(42)
	NewGauge("det_gauge", "t").Set(2.5)
	NewHistogram("det_hist", "t", []float64{0.5, 5}).Observe(0.25)
	getStage("det_stage").record(1_500_000_000, 10, 3, 4096)
	Disable()
	defer Reset()

	a, b := TakeSnapshot(), TakeSnapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("consecutive snapshots differ")
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("JSON marshalling is not deterministic")
	}
	var back Snapshot
	if err := json.Unmarshal(ja, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("JSON round-trip lost data:\n got %+v\nwant %+v", back, a)
	}
	st := a.Stages["det_stage"]
	if st.TotalSeconds != 1.5 || st.MeanSeconds != 1.5 || st.Items != 10 || st.AllocBytes != 4096 {
		t.Fatalf("stage snapshot = %+v", st)
	}
}

// TestPrometheusGolden checks the exposition writer against a literal
// snapshot, covering label folding, cumulative buckets and stage export.
func TestPrometheusGolden(t *testing.T) {
	snap := Snapshot{
		Schema: Schema,
		Counters: map[string]int64{
			`test_ops_total{op="mul"}`: 3,
			`test_ops_total{op="add"}`: 5,
			"test_plain_total":         7,
		},
		Gauges: map[string]float64{"test_workers": 4},
		Histograms: map[string]HistogramSnapshot{
			"test_latency_seconds": {
				Bounds: []float64{0.1, 1},
				Counts: []int64{2, 1, 1},
				Count:  4,
				Sum:    2.5,
			},
		},
		Stages: map[string]StageSnapshot{
			"extract": {Count: 2, Items: 10, TotalSeconds: 1.5, MeanSeconds: 0.75, MaxSeconds: 1},
		},
	}
	var sb strings.Builder
	if _, err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE test_ops_total counter
test_ops_total{op="add"} 5
test_ops_total{op="mul"} 3
# TYPE test_plain_total counter
test_plain_total 7
# TYPE test_workers gauge
test_workers 4
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 2.5
test_latency_seconds_count 4
# TYPE hdface_stage_calls_total counter
hdface_stage_calls_total{stage="extract"} 2
# TYPE hdface_stage_seconds_total counter
hdface_stage_seconds_total{stage="extract"} 1.5
# TYPE hdface_stage_items_total counter
hdface_stage_items_total{stage="extract"} 10
# TYPE hdface_stage_max_seconds gauge
hdface_stage_max_seconds{stage="extract"} 1
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestWriteToSmoke exercises the package-level registry exposition.
func TestWriteToSmoke(t *testing.T) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	NewCounter("smoke_total", "t").Inc()
	var sb strings.Builder
	if _, err := WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "smoke_total 1") {
		t.Fatalf("exposition missing series:\n%s", sb.String())
	}
}

// TestDisabledRecordsNothing: with instrumentation off, recording calls
// are dropped and spans are nil.
func TestDisabledRecordsNothing(t *testing.T) {
	Disable()
	defer Reset()
	c := NewCounter("off_total", "t")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("disabled counter recorded")
	}
	h := NewHistogram("off_hist", "t", nil)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("disabled histogram recorded")
	}
	if sp := StartSpan("off_stage"); sp != nil {
		t.Fatal("disabled StartSpan returned a live span")
	}
	if _, ok := TakeSnapshot().Stages["off_stage"]; ok {
		t.Fatal("disabled span registered a stage")
	}
}

// TestDisabledPathAllocFree is the regression test for the disabled fast
// path: counters, gauges, histograms and spans must not allocate when
// instrumentation is off, so tier-1 benchmarks are unaffected.
func TestDisabledPathAllocFree(t *testing.T) {
	Disable()
	c := NewCounter("alloc_total", "t")
	g := NewGauge("alloc_gauge", "t")
	h := NewHistogram("alloc_hist", "t", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(0.5)
		sp := StartSpan("alloc_stage")
		sp.AddItems(1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v allocs/op, want 0", allocs)
	}
}

// TestReset clears values but keeps handles usable.
func TestReset(t *testing.T) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	c := NewCounter("reset_total", "t")
	c.Add(9)
	StartSpan("reset_stage").End()
	Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
	if len(TakeSnapshot().Stages) != 0 {
		t.Fatal("Reset did not drop stages")
	}
	c.Inc() // handle still live
	if c.Value() != 1 {
		t.Fatal("handle dead after Reset")
	}
}

// TestIdempotentRegistration: same name returns the same handle.
func TestIdempotentRegistration(t *testing.T) {
	defer Reset()
	if NewCounter("idem_total", "a") != NewCounter("idem_total", "b") {
		t.Fatal("duplicate counter registration")
	}
	if NewGauge("idem_gauge", "a") != NewGauge("idem_gauge", "b") {
		t.Fatal("duplicate gauge registration")
	}
	if NewHistogram("idem_hist", "a", nil) != NewHistogram("idem_hist", "b", []float64{1}) {
		t.Fatal("duplicate histogram registration")
	}
}

// TestWriteReportSmoke: the human report mentions stages and counters.
func TestWriteReportSmoke(t *testing.T) {
	snap := Snapshot{
		Schema:   Schema,
		Counters: map[string]int64{"rep_total": 12},
		Gauges:   map[string]float64{"rep_gauge": 3},
		Stages: map[string]StageSnapshot{
			"extract": {Count: 4, Items: 4, TotalSeconds: 0.5, MeanSeconds: 0.125, MaxSeconds: 0.25},
		},
	}
	var sb strings.Builder
	if err := snap.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"extract", "rep_total", "rep_gauge", "== stages =="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
