package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteTo writes the current registry state in Prometheus text exposition
// format (the CLI's -pprof server and the serve daemon mount this under
// /metrics). Beyond the snapshot it refreshes the go_* runtime gauges and
// appends the live windowed series — rolling quantiles as summary-style
// quantile-labelled gauges and SLO state — which are excluded from
// TakeSnapshot because they decay with the clock rather than with
// recorded values.
func WriteTo(w io.Writer) (int64, error) {
	CaptureRuntime()
	n, err := TakeSnapshot().WritePrometheus(w)
	if err != nil {
		return n, err
	}
	m, err := writeWindowed(w)
	return n + m, err
}

// writeWindowed emits the rolling-quantile and SLO series.
func writeWindowed(w io.Writer) (int64, error) {
	var b strings.Builder
	quants := QuantileSnapshots()
	for _, name := range sortedKeys(quants) {
		q := quants[name]
		family, labels := splitSeries(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", family)
		for _, p := range []struct {
			q string
			v float64
		}{{"0.5", q.P50}, {"0.9", q.P90}, {"0.95", q.P95}, {"0.99", q.P99}} {
			fmt.Fprintf(&b, "%s{%squantile=%q} %s\n", family, labelPrefix(labels), p.q, formatFloat(p.v))
		}
		fmt.Fprintf(&b, "%s_count%s %d\n", family, wrapLabels(labels), q.Count)
	}
	slos := SLOSnapshots()
	if len(slos) > 0 {
		fmt.Fprintln(&b, "# TYPE hdface_slo_compliance gauge")
		for _, name := range sortedKeys(slos) {
			fmt.Fprintf(&b, "hdface_slo_compliance{slo=%q} %s\n", name, formatFloat(slos[name].Compliance))
		}
		fmt.Fprintln(&b, "# TYPE hdface_slo_budget_used gauge")
		for _, name := range sortedKeys(slos) {
			fmt.Fprintf(&b, "hdface_slo_budget_used{slo=%q} %s\n", name, formatFloat(slos[name].BudgetUsed))
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format, version 0.0.4. Output is deterministic: families and series are
// sorted, histogram buckets are cumulative, and stage records are exported
// as hdface_stage_* series labelled by stage name.
func (s Snapshot) WritePrometheus(w io.Writer) (int64, error) {
	var b strings.Builder

	writeFamilies(&b, "counter", s.Counters, func(v int64) string {
		return strconv.FormatInt(v, 10)
	})
	writeFamilies(&b, "gauge", s.Gauges, formatFloat)

	histNames := sortedKeys(s.Histograms)
	seenHist := map[string]bool{}
	for _, name := range histNames {
		h := s.Histograms[name]
		family, labels := splitSeries(name)
		if !seenHist[family] {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", family)
			seenHist[family] = true
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n",
				family, labelPrefix(labels), formatFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", family, labelPrefix(labels), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", family, wrapLabels(labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", family, wrapLabels(labels), h.Count)
	}

	stageNames := sortedKeys(s.Stages)
	if len(stageNames) > 0 {
		fmt.Fprintln(&b, "# TYPE hdface_stage_calls_total counter")
		for _, n := range stageNames {
			fmt.Fprintf(&b, "hdface_stage_calls_total{stage=%q} %d\n", n, s.Stages[n].Count)
		}
		fmt.Fprintln(&b, "# TYPE hdface_stage_seconds_total counter")
		for _, n := range stageNames {
			fmt.Fprintf(&b, "hdface_stage_seconds_total{stage=%q} %s\n", n, formatFloat(s.Stages[n].TotalSeconds))
		}
		fmt.Fprintln(&b, "# TYPE hdface_stage_items_total counter")
		for _, n := range stageNames {
			fmt.Fprintf(&b, "hdface_stage_items_total{stage=%q} %d\n", n, s.Stages[n].Items)
		}
		fmt.Fprintln(&b, "# TYPE hdface_stage_max_seconds gauge")
		for _, n := range stageNames {
			fmt.Fprintf(&b, "hdface_stage_max_seconds{stage=%q} %s\n", n, formatFloat(s.Stages[n].MaxSeconds))
		}
		var withAllocs []string
		for _, n := range stageNames {
			if s.Stages[n].Mallocs > 0 || s.Stages[n].AllocBytes > 0 {
				withAllocs = append(withAllocs, n)
			}
		}
		if len(withAllocs) > 0 {
			fmt.Fprintln(&b, "# TYPE hdface_stage_mallocs_total counter")
			for _, n := range withAllocs {
				fmt.Fprintf(&b, "hdface_stage_mallocs_total{stage=%q} %d\n", n, s.Stages[n].Mallocs)
			}
			fmt.Fprintln(&b, "# TYPE hdface_stage_alloc_bytes_total counter")
			for _, n := range withAllocs {
				fmt.Fprintf(&b, "hdface_stage_alloc_bytes_total{stage=%q} %d\n", n, s.Stages[n].AllocBytes)
			}
		}
	}

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeFamilies emits one flat metric kind (counters or gauges), grouping
// label-carrying series under a single TYPE line per family.
func writeFamilies[V int64 | float64](b *strings.Builder, kind string, series map[string]V, format func(V) string) {
	type entry struct{ family, labels, name string }
	entries := make([]entry, 0, len(series))
	for name := range series {
		family, labels := splitSeries(name)
		entries = append(entries, entry{family, labels, name})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].family != entries[j].family {
			return entries[i].family < entries[j].family
		}
		return entries[i].labels < entries[j].labels
	})
	lastFamily := ""
	for _, e := range entries {
		if e.family != lastFamily {
			fmt.Fprintf(b, "# TYPE %s %s\n", e.family, kind)
			lastFamily = e.family
		}
		fmt.Fprintf(b, "%s%s %s\n", e.family, wrapLabels(e.labels), format(series[e.name]))
	}
}

// labelPrefix returns `labels,` when labels is non-empty, for merging with
// a trailing le label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// wrapLabels re-braces an embedded label set, or returns "" when empty.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
