package obs

import (
	"sync"
	"time"
)

// SLO tracks a latency service-level objective over a sliding window: a
// target latency, the fraction of requests that must meet it (the
// objective), and the error budget that falls out of the two. Every
// request is observed as good (finished under target, no error) or bad;
// the burn rate — bad fraction divided by allowed bad fraction — reads
// 1.0 when the service is spending its budget exactly as fast as the
// objective permits, and is exported as a gauge so dashboards and the
// `hdface top` view can watch it move during a drift episode or deploy.
//
// Like RollingQuantile, windowed SLO state is live-only (served by
// /debug/slo and SLOSnapshots), not part of TakeSnapshot.
type SLO struct {
	name      string
	target    time.Duration
	objective float64
	window    time.Duration
	burn      *Gauge

	mu     sync.Mutex
	events []sloEvent // ring, cap sloEventCap
	pos, n int
}

type sloEvent struct {
	at   time.Time
	good bool
}

// sloEventCap bounds the per-SLO event ring.
const sloEventCap = 1 << 12

// NewSLO returns the SLO registered under name, creating it on first use.
// target is the per-request latency goal, objective the fraction of
// requests that must meet it (defaults to 0.99 when out of (0,1)), window
// the sliding evaluation window (default one minute).
func NewSLO(name string, target time.Duration, objective float64, window time.Duration) *SLO {
	reg.mu.Lock()
	if s, ok := reg.slos[name]; ok {
		reg.mu.Unlock()
		return s
	}
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = time.Minute
	}
	s := &SLO{name: name, target: target, objective: objective, window: window}
	reg.slos[name] = s
	reg.mu.Unlock()
	// Registered outside reg.mu: NewGauge takes the same lock.
	s.burn = NewGauge("hdface_slo_burn_rate{slo=\""+name+"\"}",
		"windowed error-budget burn rate (1.0 = spending budget exactly at the objective)")
	return s
}

// Observe records one request outcome when instrumentation is enabled:
// good means it finished without error within the target latency.
func (s *SLO) Observe(latency time.Duration, failed bool) {
	if s == nil || !armed.Load() {
		return
	}
	good := !failed && latency <= s.target
	now := timeNow()
	s.mu.Lock()
	if s.n < sloEventCap {
		s.events = append(s.events, sloEvent{now, good})
		s.n++
	} else {
		s.events[s.pos] = sloEvent{now, good}
		s.pos = (s.pos + 1) % sloEventCap
	}
	s.mu.Unlock()
	s.burn.Set(s.Snapshot().BurnRate)
}

// SLOSnapshot is the point-in-time state of one SLO.
type SLOSnapshot struct {
	Name          string  `json:"name"`
	TargetSeconds float64 `json:"target_seconds"`
	Objective     float64 `json:"objective"`
	WindowSeconds float64 `json:"window_seconds"`
	Total         int     `json:"total"`
	Good          int     `json:"good"`
	Bad           int     `json:"bad"`
	// Compliance is the good fraction (1.0 on an empty window: no
	// requests, nothing violated).
	Compliance float64 `json:"compliance"`
	// ErrorBudget is the allowed bad fraction, 1 - objective.
	ErrorBudget float64 `json:"error_budget"`
	// BudgetUsed is the consumed fraction of the error budget; above 1.0
	// the objective is breached for this window.
	BudgetUsed float64 `json:"budget_used"`
	// BurnRate equals BudgetUsed over one evaluation window: how many
	// windows' worth of budget the current bad rate spends per window.
	BurnRate float64 `json:"burn_rate"`
}

// Snapshot evaluates the SLO over its window as of now.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	cutoff := timeNow().Add(-s.window)
	var total, good int
	s.mu.Lock()
	for i := 0; i < s.n; i++ {
		if e := s.events[i]; !e.at.Before(cutoff) {
			total++
			if e.good {
				good++
			}
		}
	}
	s.mu.Unlock()
	snap := SLOSnapshot{
		Name:          s.name,
		TargetSeconds: s.target.Seconds(),
		Objective:     s.objective,
		WindowSeconds: s.window.Seconds(),
		Total:         total,
		Good:          good,
		Bad:           total - good,
		Compliance:    1,
		ErrorBudget:   1 - s.objective,
	}
	if total > 0 {
		snap.Compliance = float64(good) / float64(total)
		badRatio := float64(snap.Bad) / float64(total)
		snap.BudgetUsed = badRatio / snap.ErrorBudget
		snap.BurnRate = snap.BudgetUsed
	}
	return snap
}

func (s *SLO) reset() {
	s.mu.Lock()
	s.events, s.pos, s.n = s.events[:0], 0, 0
	s.mu.Unlock()
}

// SLOSnapshots evaluates every registered SLO, keyed by name.
func SLOSnapshots() map[string]SLOSnapshot {
	reg.mu.RLock()
	slos := make([]*SLO, 0, len(reg.slos))
	for _, s := range reg.slos {
		slos = append(slos, s)
	}
	reg.mu.RUnlock()
	out := make(map[string]SLOSnapshot, len(slos))
	for _, s := range slos {
		out[s.name] = s.Snapshot()
	}
	return out
}
