package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Schema identifies the snapshot JSON layout; bump on breaking changes.
// EXPERIMENTS.md documents the schema for trajectory tooling.
const Schema = "hdface-obs/v1"

// Snapshot is a point-in-time copy of the whole registry: a typed,
// JSON-serialisable struct with deterministic marshalling (encoding/json
// sorts map keys). Zero-valued series are included so schemas stay stable
// across runs that exercise different paths.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Meta       map[string]string            `json:"meta,omitempty"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Stages     map[string]StageSnapshot     `json:"stages"`
}

// HistogramSnapshot is one histogram's state. Counts has len(Bounds)+1
// entries; the last is the +Inf overflow bucket. Counts are per-bucket
// (not cumulative); the Prometheus writer accumulates them.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// StageSnapshot is one stage's aggregated span record.
type StageSnapshot struct {
	Count        int64   `json:"count"`
	Items        int64   `json:"items,omitempty"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	Mallocs      int64   `json:"mallocs,omitempty"`
	AllocBytes   int64   `json:"alloc_bytes,omitempty"`
}

// TakeSnapshot copies the current registry state. It is safe to call
// concurrently with recording; each series is read atomically (the
// snapshot as a whole is not a single consistent cut, which only matters
// while load is actively running).
func TakeSnapshot() Snapshot {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	s := Snapshot{
		Schema:     Schema,
		Counters:   make(map[string]int64, len(reg.counts)),
		Gauges:     make(map[string]float64, len(reg.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(reg.hists)),
		Stages:     make(map[string]StageSnapshot, len(reg.stages)),
	}
	for name, c := range reg.counts {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range reg.gauges {
		s.Gauges[name] = math.Float64frombits(g.bits.Load())
	}
	for name, h := range reg.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, st := range reg.stages {
		count := st.count.Load()
		total := float64(st.totalNS.Load()) / 1e9
		ss := StageSnapshot{
			Count:        count,
			Items:        st.items.Load(),
			TotalSeconds: total,
			MaxSeconds:   float64(st.maxNS.Load()) / 1e9,
			Mallocs:      st.mallocs.Load(),
			AllocBytes:   st.allocBytes.Load(),
		}
		if count > 0 {
			ss.MeanSeconds = total / float64(count)
		}
		s.Stages[name] = ss
	}
	return s
}

// WriteReport prints the human-readable per-stage report behind the CLI's
// -stats flag: a stage timing table (busiest first), then non-zero
// counters, gauges and histogram summaries.
func (s Snapshot) WriteReport(w io.Writer) error {
	names := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := s.Stages[names[i]], s.Stages[names[j]]
		if a.TotalSeconds != b.TotalSeconds {
			return a.TotalSeconds > b.TotalSeconds
		}
		return names[i] < names[j]
	})
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "== stages ==\n%-24s %8s %12s %12s %12s %10s\n",
			"stage", "calls", "total", "mean", "max", "items"); err != nil {
			return err
		}
		for _, n := range names {
			st := s.Stages[n]
			line := fmt.Sprintf("%-24s %8d %12s %12s %12s %10d",
				n, st.Count, fmtSeconds(st.TotalSeconds), fmtSeconds(st.MeanSeconds),
				fmtSeconds(st.MaxSeconds), st.Items)
			if st.Mallocs > 0 {
				line += fmt.Sprintf("  %d allocs / %s", st.Mallocs, fmtBytes(st.AllocBytes))
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}

	var counterNames []string
	for n, v := range s.Counters {
		if v != 0 {
			counterNames = append(counterNames, n)
		}
	}
	sort.Strings(counterNames)
	if len(counterNames) > 0 {
		if _, err := fmt.Fprintln(w, "== counters =="); err != nil {
			return err
		}
		for _, n := range counterNames {
			if _, err := fmt.Fprintf(w, "%-56s %14d\n", n, s.Counters[n]); err != nil {
				return err
			}
		}
	}

	var gaugeNames []string
	for n, v := range s.Gauges {
		if v != 0 {
			gaugeNames = append(gaugeNames, n)
		}
	}
	sort.Strings(gaugeNames)
	if len(gaugeNames) > 0 {
		if _, err := fmt.Fprintln(w, "== gauges =="); err != nil {
			return err
		}
		for _, n := range gaugeNames {
			if _, err := fmt.Fprintf(w, "%-56s %14g\n", n, s.Gauges[n]); err != nil {
				return err
			}
		}
	}

	var histNames []string
	for n, h := range s.Histograms {
		if h.Count != 0 {
			histNames = append(histNames, n)
		}
	}
	sort.Strings(histNames)
	if len(histNames) > 0 {
		if _, err := fmt.Fprintln(w, "== histograms =="); err != nil {
			return err
		}
		for _, n := range histNames {
			h := s.Histograms[n]
			if _, err := fmt.Fprintf(w, "%-56s n=%d mean=%g\n", n, h.Count, h.Sum/float64(h.Count)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fmtSeconds renders a duration in seconds with a human unit.
func fmtSeconds(s float64) string {
	d := time.Duration(s * 1e9)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
	return d.Round(time.Millisecond).String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	}
	return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
}

// splitSeries splits a registered name into its metric family and embedded
// label set: "x_total{op=\"mul\"}" -> ("x_total", `op="mul"`).
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}
