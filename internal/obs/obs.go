// Package obs is the observability layer of the HDFace reproduction: a
// zero-dependency, concurrency-safe registry of counters, gauges and
// fixed-bucket histograms, plus a stage-span tracer (span.go) that records
// per-stage wall time, item counts and optional allocation deltas.
//
// The layer is off by default. Every recording entry point first loads a
// single atomic flag and returns immediately when instrumentation is
// disabled, so packages can instrument their hot paths unconditionally:
// the disabled fast path is branch-plus-atomic-load cheap and allocation
// free (asserted by the regression tests). Enable it once at process
// startup (the CLI's -stats family of flags does this) and read the state
// back three ways:
//
//   - TakeSnapshot returns a typed, JSON-serialisable Snapshot,
//   - WriteTo emits Prometheus text exposition format,
//   - Snapshot.WriteReport prints the human per-stage report behind the
//     CLI's -stats flag.
//
// Metric handles are created once at package init via NewCounter /
// NewGauge / NewHistogram; creation is idempotent by name, so two packages
// naming the same series share one handle. Names follow Prometheus
// conventions and may embed a fixed label set ("x_total{op=\"mul\"}"),
// which the exposition writer folds into proper families.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// armed is the global on/off switch; it gates every recording fast path.
var armed atomic.Bool

// Enable turns instrumentation on process-wide.
func Enable() { armed.Store(true) }

// Disable turns instrumentation off process-wide. Existing values are
// retained (use Reset to clear them).
func Disable() { armed.Store(false) }

// Enabled reports whether instrumentation is on.
func Enabled() bool { return armed.Load() }

// registry is the process-global metric store. Handles register at package
// init and live for the process lifetime; Reset zeroes values but never
// invalidates handles.
type registry struct {
	mu      sync.RWMutex
	counts  map[string]*Counter
	gauges  map[string]*Gauge
	hists   map[string]*Histogram
	stages  map[string]*Stage
	rollers map[string]*RollingQuantile
	slos    map[string]*SLO
}

var reg = &registry{
	counts:  make(map[string]*Counter),
	gauges:  make(map[string]*Gauge),
	hists:   make(map[string]*Histogram),
	stages:  make(map[string]*Stage),
	rollers: make(map[string]*RollingQuantile),
	slos:    make(map[string]*SLO),
}

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op receiver.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter returns the counter registered under name, creating it on
// first use. help documents the series in the Prometheus exposition.
func NewCounter(name, help string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if c, ok := reg.counts[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	reg.counts[name] = c
	return c
}

// Add increments the counter by n when instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !armed.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one when instrumentation is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value. A nil *Gauge is a valid
// no-op receiver.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge returns the gauge registered under name, creating it on first
// use.
func NewGauge(name, help string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if g, ok := reg.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	reg.gauges[name] = g
	return g
}

// Set stores v when instrumentation is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !armed.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts —
// cheap enough for hot paths (a binary search plus two atomic adds per
// observation). Bounds are inclusive upper bounds; an implicit +Inf bucket
// catches overflow. A nil *Histogram is a valid no-op receiver.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, updated by CAS
}

// LatencyBuckets are the default span/latency bounds in seconds, spanning
// microsecond feature ops to minute-scale training runs.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are default bounds for count-valued histograms (windows per
// sweep, items per batch).
var SizeBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000}

// NewHistogram returns the histogram registered under name, creating it
// with the given ascending upper bounds on first use (nil bounds selects
// LatencyBuckets).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if h, ok := reg.hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	reg.hists[name] = h
	return h
}

// Observe records v when instrumentation is enabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !armed.Load() {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or +Inf slot
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Reset zeroes every registered counter, gauge and histogram and clears
// all stage records. Metric handles stay valid, so instrumented packages
// keep working; only the accumulated values are dropped. Intended for the
// CLI (separating a warm-up phase from a measured phase) and for tests.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, c := range reg.counts {
		c.v.Store(0)
	}
	for _, g := range reg.gauges {
		g.bits.Store(0)
	}
	for _, h := range reg.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
	}
	for _, r := range reg.rollers {
		r.reset()
	}
	for _, s := range reg.slos {
		s.reset()
	}
	reg.stages = make(map[string]*Stage)
}
