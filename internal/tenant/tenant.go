// Package tenant is a compact multi-tenant model store: thousands of
// per-tenant trained detectors resident in a single serving daemon.
//
// It leans on the paper's holographic property the same way snapshots do,
// but pushed to its limit: a trained model is fully determined by its
// Config (whose Seed rematerializes every hypervector basis) plus its
// class memory, so the store keeps only the compact hdface-model/v2 blob
// per version — a few KB each — and materializes the float/binary class
// memory lazily, on first use, behind a per-version mutex gate (a
// resettable sync.Once: eviction clears the slot, the next request
// rebuilds it). Materialized models live in an LRU with a byte budget;
// eviction drops only the decoded form, never the blob, and in-flight
// readers keep the immutable *hdc.Model they already loaded.
//
// Each tenant has an atomic live slot, so promoting a new version (after
// an online-learning round, say) is one pointer store — a swap never
// blocks a scoring request. All mutation serialises per tenant; on disk a
// tenant is a directory of v*.hdfs compact blobs plus a LIVE file,
// written temp+rename like the registry.
package tenant

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/obs"
	"hdface/internal/registry"
)

var (
	obsTenants = obs.NewGauge("hdface_tenant_tenants",
		"Number of tenants resident in the store.")
	obsVersions = obs.NewGauge("hdface_tenant_versions",
		"Total model versions resident (compact blobs) across all tenants.")
	obsMaterialized = obs.NewGauge("hdface_tenant_materialized_bytes",
		"Bytes of lazily materialized class memory currently cached.")
	obsMaterializations = obs.NewCounter("hdface_tenant_materializations_total",
		"Cold materializations of a compact blob into a scoring model.")
	obsEvictions = obs.NewCounter("hdface_tenant_evictions_total",
		"Materialized models evicted under the LRU byte budget.")
	obsSwaps = obs.NewCounter("hdface_tenant_swaps_total",
		"Per-tenant live-slot swaps (promotes).")
	obsFeedback = obs.NewCounter("hdface_tenant_feedback_total",
		"Per-tenant feedback samples accepted.")
	obsRounds = obs.NewCounter("hdface_tenant_rounds_total",
		"Per-tenant online-learning rounds (batch trained + promoted).")
)

// Typed errors, so serve can map them to precise HTTP statuses.
var (
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	ErrNoLive        = errors.New("tenant: no live version")
	ErrTooMany       = errors.New("tenant: tenant limit reached")
	ErrBadFeedback   = errors.New("tenant: bad feedback sample")
)

const (
	versionPattern = "v%010d.hdfs"
	liveFile       = "LIVE"
	maxIDLen       = 64
)

// Config shapes a Store.
type Config struct {
	// Dir is the persistence root (one subdirectory per tenant); "" keeps
	// the store purely in-memory.
	Dir string
	// BudgetBytes bounds the total materialized class memory; least
	// recently used models are demoted back to their compact blobs when
	// the budget overflows. <= 0 means the 256 MiB default.
	BudgetBytes int64
	// Retain bounds versions kept per tenant (older non-live versions are
	// deleted). <= 0 means the default of 4.
	Retain int
	// FeedbackBatch is the number of feedback samples that triggers an
	// online-learning round for a tenant. <= 0 means the default of 16.
	FeedbackBatch int
	// Epochs is the number of refinement passes per round. <= 0 means 3.
	Epochs int
	// MaxTenants bounds the tenant count. <= 0 means the default of 65536.
	MaxTenants int
	// TrainOpts shapes the per-round Update passes.
	TrainOpts hdc.TrainOpts
}

func (c Config) withDefaults() Config {
	if c.BudgetBytes <= 0 {
		c.BudgetBytes = 256 << 20
	}
	if c.Retain <= 0 {
		c.Retain = 4
	}
	if c.FeedbackBatch <= 0 {
		c.FeedbackBatch = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1 << 16
	}
	return c
}

// Store holds every tenant. Reads on the scoring path take only the
// tenants RWMutex read lock plus (on an LRU hit) the short lru lock.
type Store struct {
	cfg Config

	mu      sync.RWMutex // guards tenants map and base config adoption
	tenants map[string]*Tenant
	baseCfg hdface.Config
	haveCfg bool

	nVersions atomic.Int64 // store-wide version count, for the gauge

	lru lruList
}

// Tenant is one isolated model lineage: its own versions, live slot,
// feedback accumulator and counters.
type Tenant struct {
	id    string
	store *Store

	mu       sync.Mutex // versions, nextID, batch, persistence
	versions map[uint64]*Version
	nextID   uint64
	live     atomic.Pointer[Version]

	batchFeats  []*hv.Vector
	batchLabels []int

	requests atomic.Int64
	feedback atomic.Int64
	rounds   atomic.Int64
	swaps    atomic.Int64
}

// Version is one immutable model version: the compact blob is always
// resident; the decoded model appears on first use and may be evicted.
type Version struct {
	TenantID string
	ID       uint64
	Cfg      hdface.Config

	store *Store
	blob  []byte

	// Materialization gate: mat is the published decoded model (nil =
	// not materialized); matMu serialises decoding so concurrent first
	// users decode once. A sync.Once cannot be reset after eviction,
	// hence the mutex + double-checked atomic pointer.
	matMu sync.Mutex
	mat   atomic.Pointer[hdc.Model]

	// LRU bookkeeping, guarded by store.lru.mu.
	lruPrev, lruNext *Version
	inLRU            bool
	matBytes         int64
}

// ValidID reports whether a tenant ID is acceptable: 1-64 chars of
// [A-Za-z0-9._-], not starting with a dot (IDs name directories, so this
// also rules out path traversal and hidden files).
func ValidID(id string) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("tenant: id must be 1-%d characters", maxIDLen)
	}
	if id[0] == '.' {
		return errors.New("tenant: id must not start with a dot")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("tenant: id contains invalid character %q", r)
		}
	}
	return nil
}

// Open creates a store, loading every persisted tenant when cfg.Dir is
// set. Only blob headers are decoded at open — config validation and
// compatibility, not class memory — so opening thousands of versions is
// cheap; a corrupt payload surfaces on first materialization instead.
func Open(cfg Config) (*Store, error) {
	s := &Store{cfg: cfg.withDefaults(), tenants: make(map[string]*Tenant)}
	s.lru.budget = s.cfg.BudgetBytes
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if err := ValidID(id); err != nil {
			return nil, fmt.Errorf("tenant: directory %q: %w", id, err)
		}
		t, err := s.loadTenant(id)
		if err != nil {
			return nil, err
		}
		s.tenants[id] = t
	}
	s.setGauges()
	return s, nil
}

// loadTenant indexes one tenant directory. Like registry.Open, a version
// file that fails header validation or a LIVE entry referencing a missing
// version is a hard error: silently serving around corruption is worse
// than refusing to start.
func (s *Store) loadTenant(id string) (*Tenant, error) {
	dir := filepath.Join(s.cfg.Dir, id)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	t := &Tenant{id: id, store: s, versions: make(map[uint64]*Version)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".hdfs") {
			continue
		}
		vid, err := parseVersionName(name)
		if err != nil {
			return nil, fmt.Errorf("tenant: %s: bad version file %q: %w", id, name, err)
		}
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("tenant: %w", err)
		}
		cfg, hasModel, _, err := hdface.SnapshotInfo(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("tenant: %s: version %d: %w", id, vid, err)
		}
		if !hasModel {
			return nil, fmt.Errorf("tenant: %s: version %d holds no trained model", id, vid)
		}
		if err := s.adoptConfig(cfg); err != nil {
			return nil, fmt.Errorf("tenant: %s: version %d: %w", id, vid, err)
		}
		t.versions[vid] = &Version{TenantID: id, ID: vid, Cfg: cfg, store: s, blob: blob}
		if vid > t.nextID {
			t.nextID = vid
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, liveFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	if line := strings.TrimSpace(string(data)); line != "" {
		vid, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tenant: %s: LIVE entry %q: %w", id, line, err)
		}
		v, ok := t.versions[vid]
		if !ok {
			return nil, fmt.Errorf("tenant: %s: LIVE references version %d which is not on disk", id, vid)
		}
		t.live.Store(v)
	}
	return t, nil
}

func parseVersionName(name string) (uint64, error) {
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".hdfs")
	if len(digits) != 10 {
		return 0, errors.New("want v<10 digits>.hdfs")
	}
	id, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, err
	}
	if id == 0 {
		return 0, errors.New("version 0 is reserved")
	}
	return id, nil
}

// adoptConfig records the first config seen and requires every later one
// to be interchangeable with it (same bases, same feature extraction): the
// whole store shares one pipeline, only class memory differs per tenant.
// Callers may hold s.mu; adoptConfig locks only when they don't.
func (s *Store) adoptConfig(cfg hdface.Config) error {
	if !s.haveCfg {
		s.baseCfg, s.haveCfg = cfg, true
		return nil
	}
	return registry.Compatible(s.baseCfg, cfg)
}

// BaseConfig returns the config shared by every stored version, and
// whether the store holds one yet.
func (s *Store) BaseConfig() (hdface.Config, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseCfg, s.haveCfg
}

// tenant resolves an ID with only the read lock.
func (s *Store) tenant(id string) (*Tenant, error) {
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownTenant, id)
	}
	return t, nil
}

// getOrCreate resolves or creates a tenant.
func (s *Store) getOrCreate(id string) (*Tenant, error) {
	if err := ValidID(id); err != nil {
		return nil, err
	}
	if t, err := s.tenant(id); err == nil {
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[id]; ok {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("%w (%d)", ErrTooMany, s.cfg.MaxTenants)
	}
	if s.cfg.Dir != "" {
		if err := os.MkdirAll(filepath.Join(s.cfg.Dir, id), 0o755); err != nil {
			return nil, fmt.Errorf("tenant: %w", err)
		}
	}
	t := &Tenant{id: id, store: s, versions: make(map[uint64]*Version)}
	s.tenants[id] = t
	obsTenants.Set(float64(len(s.tenants)))
	return t, nil
}

// Put stores a new version for a tenant (creating the tenant on first
// use) and returns its ID. The model must be finalized: the compact form
// exists to carry binarized class memory to the serving hot path. Put
// does not change which version is live — call Promote for that.
func (s *Store) Put(tenantID string, cfg hdface.Config, m *hdc.Model) (uint64, error) {
	if m == nil {
		return 0, errors.New("tenant: Put: nil model")
	}
	if m.Bin == nil {
		return 0, errors.New("tenant: Put: model not finalized (no binarized class memory)")
	}
	if m.D != cfg.D {
		return 0, fmt.Errorf("tenant: Put: model D=%d != config D=%d", m.D, cfg.D)
	}
	t, err := s.getOrCreate(tenantID)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	err = s.adoptConfig(cfg)
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.putLocked(cfg, m)
}

// putLocked encodes and stores a version; caller holds t.mu.
func (t *Tenant) putLocked(cfg hdface.Config, m *hdc.Model) (uint64, error) {
	var buf bytes.Buffer
	if err := hdface.EncodeSnapshotV2(&buf, cfg, m); err != nil {
		return 0, fmt.Errorf("tenant: encode: %w", err)
	}
	id := t.nextID + 1
	v := &Version{TenantID: t.id, ID: id, Cfg: cfg, store: t.store, blob: buf.Bytes()}
	if t.store.cfg.Dir != "" {
		if err := t.writeAtomic(fmt.Sprintf(versionPattern, id), v.blob); err != nil {
			return 0, err
		}
	}
	t.nextID = id
	t.versions[id] = v
	obsVersions.Set(float64(t.store.nVersions.Add(1)))
	t.gcLocked()
	return id, nil
}

// Promote makes a stored version the tenant's live model. The swap itself
// is one atomic pointer store; scoring requests are never blocked by it
// (they read the live slot lock-free and keep whatever model pointer they
// already hold).
func (s *Store) Promote(tenantID string, id uint64) error {
	t, err := s.tenant(tenantID)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.promoteLocked(id)
}

func (t *Tenant) promoteLocked(id uint64) error {
	v, ok := t.versions[id]
	if !ok {
		return fmt.Errorf("tenant: %s: no version %d", t.id, id)
	}
	if t.store.cfg.Dir != "" {
		if err := t.writeAtomic(liveFile, []byte(strconv.FormatUint(id, 10)+"\n")); err != nil {
			return err
		}
	}
	t.live.Store(v)
	t.swaps.Add(1)
	obsSwaps.Inc()
	return nil
}

// Seed is Put followed by Promote: the way a new tenant is born from a
// base model (typically the registry's live version).
func (s *Store) Seed(tenantID string, cfg hdface.Config, m *hdc.Model) (uint64, error) {
	id, err := s.Put(tenantID, cfg, m)
	if err != nil {
		return 0, err
	}
	return id, s.Promote(tenantID, id)
}

// Live returns the tenant's live version without materializing it.
func (s *Store) Live(tenantID string) (*Version, error) {
	t, err := s.tenant(tenantID)
	if err != nil {
		return nil, err
	}
	v := t.live.Load()
	if v == nil {
		return nil, fmt.Errorf("%w for tenant %q", ErrNoLive, tenantID)
	}
	return v, nil
}

// Model resolves the tenant's live version and materializes it, counting
// one scoring request against the tenant.
func (s *Store) Model(tenantID string) (*Version, *hdc.Model, error) {
	t, err := s.tenant(tenantID)
	if err != nil {
		return nil, nil, err
	}
	v := t.live.Load()
	if v == nil {
		return nil, nil, fmt.Errorf("%w for tenant %q", ErrNoLive, tenantID)
	}
	m, err := v.Model()
	if err != nil {
		return nil, nil, err
	}
	t.requests.Add(1)
	return v, m, nil
}

// Model returns the decoded model, materializing it on first use. The
// fast path is one atomic load plus an LRU touch; the slow path decodes
// the compact blob once per (version, eviction) under the per-version
// gate, so a thundering herd of first users performs a single decode.
func (v *Version) Model() (*hdc.Model, error) {
	if m := v.mat.Load(); m != nil {
		v.store.lru.touch(v)
		return m, nil
	}
	v.matMu.Lock()
	defer v.matMu.Unlock()
	if m := v.mat.Load(); m != nil {
		v.store.lru.touch(v)
		return m, nil
	}
	_, m, err := hdface.DecodeSnapshotV2(bytes.NewReader(v.blob))
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: version %d: %w", v.TenantID, v.ID, err)
	}
	if m == nil {
		return nil, fmt.Errorf("tenant: %s: version %d holds no trained model", v.TenantID, v.ID)
	}
	v.matBytes = materializedBytes(m)
	v.mat.Store(m)
	v.store.lru.insert(v)
	obsMaterializations.Inc()
	return m, nil
}

// BlobBytes returns the size of the always-resident compact blob.
func (v *Version) BlobBytes() int { return len(v.blob) }

// Materialized reports whether the decoded model is currently cached.
func (v *Version) Materialized() bool { return v.mat.Load() != nil }

// materializedBytes estimates the decoded footprint: float accumulators,
// binarized words, slice headers.
func materializedBytes(m *hdc.Model) int64 {
	words := int64((m.D + 63) / 64)
	b := int64(m.K) * int64(m.D) * 8 // Classes
	if m.Bin != nil {
		b += int64(m.K) * words * 8
	}
	return b + 512
}

// Feedback records one labelled sample for a tenant. Once the tenant's
// batch fills, a round runs synchronously: clone the live model, refine it
// over the batch, finalize, store and promote the result. The returned ID
// is non-zero when a new version went live.
func (s *Store) Feedback(tenantID string, f *hv.Vector, label int) (uint64, error) {
	t, err := s.tenant(tenantID)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.live.Load()
	if live == nil {
		return 0, fmt.Errorf("%w for tenant %q", ErrNoLive, tenantID)
	}
	m, err := live.Model()
	if err != nil {
		return 0, err
	}
	if f == nil || f.D() != m.D {
		return 0, fmt.Errorf("%w: feature dimensionality mismatch", ErrBadFeedback)
	}
	if label < 0 || label >= m.K {
		return 0, fmt.Errorf("%w: label %d outside [0, %d)", ErrBadFeedback, label, m.K)
	}
	t.batchFeats = append(t.batchFeats, f)
	t.batchLabels = append(t.batchLabels, label)
	t.feedback.Add(1)
	obsFeedback.Inc()
	if len(t.batchFeats) < s.cfg.FeedbackBatch {
		return 0, nil
	}
	cand := m.Clone()
	for e := 0; e < s.cfg.Epochs; e++ {
		mistakes, err := cand.Update(t.batchFeats, t.batchLabels, s.cfg.TrainOpts)
		if err != nil {
			return 0, fmt.Errorf("tenant: %s: round: %w", tenantID, err)
		}
		if mistakes == 0 {
			break
		}
	}
	// Same finalize salt as Pipeline.Fit and the online trainer, so a
	// tenant's binarization is reproducible from its config alone.
	cand.Finalize(live.Cfg.Seed ^ 0xf1a1)
	t.batchFeats = t.batchFeats[:0]
	t.batchLabels = t.batchLabels[:0]
	id, err := t.putLocked(live.Cfg, cand)
	if err != nil {
		return 0, err
	}
	if err := t.promoteLocked(id); err != nil {
		return 0, err
	}
	t.rounds.Add(1)
	obsRounds.Inc()
	return id, nil
}

// gcLocked enforces the per-tenant retention bound: delete the oldest
// versions that are neither live nor newest. Caller holds t.mu.
func (t *Tenant) gcLocked() {
	retain := t.store.cfg.Retain
	if retain <= 0 || len(t.versions) <= retain {
		return
	}
	liveID := uint64(0)
	if v := t.live.Load(); v != nil {
		liveID = v.ID
	}
	ids := make([]uint64, 0, len(t.versions))
	for id := range t.versions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if len(t.versions) <= retain {
			break
		}
		if id == liveID || id == t.nextID {
			continue
		}
		v := t.versions[id]
		delete(t.versions, id)
		t.store.lru.remove(v)
		obsVersions.Set(float64(t.store.nVersions.Add(-1)))
		if t.store.cfg.Dir != "" {
			os.Remove(filepath.Join(t.store.cfg.Dir, t.id, fmt.Sprintf(versionPattern, id)))
		}
	}
}

// writeAtomic persists one file under the tenant dir via temp + rename.
func (t *Tenant) writeAtomic(name string, data []byte) error {
	dir := filepath.Join(t.store.cfg.Dir, t.id)
	tmp, err := os.CreateTemp(dir, ".tenant-*")
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("tenant: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	return nil
}

// Info describes one tenant for listings and per-tenant counters.
type Info struct {
	ID           string `json:"id"`
	Versions     int    `json:"versions"`
	LiveVersion  uint64 `json:"live_version"`
	Materialized bool   `json:"materialized"`
	BlobBytes    int64  `json:"blob_bytes"`
	Requests     int64  `json:"requests"`
	Feedback     int64  `json:"feedback"`
	Rounds       int64  `json:"rounds"`
	Swaps        int64  `json:"swaps"`
}

// Tenants lists every tenant in ID order.
func (s *Store) Tenants() []Info {
	s.mu.RLock()
	ts := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	out := make([]Info, 0, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		info := Info{
			ID:       t.id,
			Versions: len(t.versions),
			Requests: t.requests.Load(),
			Feedback: t.feedback.Load(),
			Rounds:   t.rounds.Load(),
			Swaps:    t.swaps.Load(),
		}
		for _, v := range t.versions {
			info.BlobBytes += int64(len(v.blob))
		}
		if v := t.live.Load(); v != nil {
			info.LiveVersion = v.ID
			info.Materialized = v.Materialized()
		}
		t.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// Stats summarises the store.
type Stats struct {
	Tenants           int   `json:"tenants"`
	Versions          int   `json:"versions"`
	BlobBytes         int64 `json:"blob_bytes"`
	MaterializedCount int   `json:"materialized"`
	MaterializedBytes int64 `json:"materialized_bytes"`
	BudgetBytes       int64 `json:"budget_bytes"`
	Evictions         int64 `json:"evictions"`
}

// Stats returns store-wide totals.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{Tenants: len(s.tenants), BudgetBytes: s.cfg.BudgetBytes}
	ts := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	for _, t := range ts {
		t.mu.Lock()
		st.Versions += len(t.versions)
		for _, v := range t.versions {
			st.BlobBytes += int64(len(v.blob))
		}
		t.mu.Unlock()
	}
	st.MaterializedCount, st.MaterializedBytes = s.lru.stats()
	st.Evictions = s.lru.evictions.Load()
	return st
}

// Len returns the tenant count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tenants)
}

// setGauges refreshes the store-wide gauges from the not-yet-shared store
// (Open only — once concurrent, the gauges track mutations incrementally).
func (s *Store) setGauges() {
	total := int64(0)
	for _, t := range s.tenants {
		total += int64(len(t.versions))
	}
	s.nVersions.Store(total)
	obsTenants.Set(float64(len(s.tenants)))
	obsVersions.Set(float64(total))
}
