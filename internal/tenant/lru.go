package tenant

import (
	"sync"
	"sync/atomic"
)

// lruList tracks materialized versions most-recently-used-first and
// enforces the byte budget. Eviction demotes a version back to its compact
// blob by clearing the published model pointer — readers that already
// loaded the pointer keep a valid immutable model; the next reader pays a
// re-materialization. The list is intrusive (links live on Version), so
// touch/insert/remove are O(1) under one short mutex.
type lruList struct {
	mu         sync.Mutex
	budget     int64
	head, tail *Version // head = most recently used
	count      int
	bytes      int64
	evictions  atomic.Int64
}

// touch moves v to the head. A version evicted between the caller's
// pointer load and the touch is left alone.
func (l *lruList) touch(v *Version) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !v.inLRU || l.head == v {
		return
	}
	l.unlink(v)
	l.pushFront(v)
}

// insert links a freshly materialized version at the head and evicts from
// the tail while over budget. The incoming version is never evicted, even
// when it alone exceeds the budget — a model in active use must stay.
func (l *lruList) insert(v *Version) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v.inLRU {
		return
	}
	l.pushFront(v)
	l.count++
	l.bytes += v.matBytes
	for l.bytes > l.budget && l.tail != nil && l.tail != v {
		l.evictLocked(l.tail)
	}
	obsMaterialized.Set(float64(l.bytes))
}

// remove forgets v (version deleted by retention GC). Safe to call for
// versions that were never materialized.
func (l *lruList) remove(v *Version) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !v.inLRU {
		return
	}
	l.unlink(v)
	l.count--
	l.bytes -= v.matBytes
	v.mat.Store(nil)
	obsMaterialized.Set(float64(l.bytes))
}

// evictLocked demotes one version; caller holds l.mu.
func (l *lruList) evictLocked(v *Version) {
	l.unlink(v)
	l.count--
	l.bytes -= v.matBytes
	v.mat.Store(nil)
	l.evictions.Add(1)
	obsEvictions.Inc()
}

func (l *lruList) stats() (int, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count, l.bytes
}

func (l *lruList) pushFront(v *Version) {
	v.inLRU = true
	v.lruPrev = nil
	v.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = v
	}
	l.head = v
	if l.tail == nil {
		l.tail = v
	}
}

func (l *lruList) unlink(v *Version) {
	if v.lruPrev != nil {
		v.lruPrev.lruNext = v.lruNext
	} else {
		l.head = v.lruNext
	}
	if v.lruNext != nil {
		v.lruNext.lruPrev = v.lruPrev
	} else {
		l.tail = v.lruPrev
	}
	v.lruPrev, v.lruNext = nil, nil
	v.inLRU = false
}
