package tenant

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hdc"
	"hdface/internal/hv"
)

// testPipeline trains a small face/non-face pipeline whose model is
// finalized and detect-capable.
func testPipeline(tb testing.TB, d int, seed uint64) *hdface.Pipeline {
	tb.Helper()
	r := hv.NewRNG(seed)
	var imgs []*hdface.Image
	var labels []int
	for i := 0; i < 16; i++ {
		if i%2 == 1 {
			imgs = append(imgs, dataset.RenderFace(32, 32, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(32, 32, r))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: d, Seed: 17, WorkingSize: 32, Workers: 1})
	if err := p.Fit(imgs, labels, 2); err != nil {
		tb.Fatal(err)
	}
	return p
}

// probeFeatures extracts deterministic probe features from the pipeline.
func probeFeatures(tb testing.TB, p *hdface.Pipeline, n int, seed uint64) []*hv.Vector {
	tb.Helper()
	r := hv.NewRNG(seed)
	var imgs []*hdface.Image
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(32, 32, dataset.Emotion(r.Intn(7)), r))
		} else {
			imgs = append(imgs, dataset.RenderNonFace(32, 32, r))
		}
	}
	return p.Features(imgs)
}

// hamScore is one binarised-memory scoring result; equality between two
// hamScores is the byte-identity the compact round-trip guarantees.
type hamScore struct {
	face  bool
	score float64
}

func ham(m *hdc.Model, f *hv.Vector) hamScore {
	face, score := m.ScoreBinaryHamming(f)
	return hamScore{face, score}
}

func TestValidID(t *testing.T) {
	for _, good := range []string{"a", "tenant-1", "Acme_Corp.eu", "x9"} {
		if err := ValidID(good); err != nil {
			t.Errorf("ValidID(%q) = %v", good, err)
		}
	}
	long := make([]byte, maxIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".hidden", "a/b", "a b", "ü", string(long)} {
		if err := ValidID(bad); err == nil {
			t.Errorf("ValidID(%q) accepted", bad)
		}
	}
}

func TestPutPromoteLive(t *testing.T) {
	p := testPipeline(t, 256, 1)
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Live("nobody"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Live on unknown tenant = %v, want ErrUnknownTenant", err)
	}
	id, err := s.Put("acme", p.Config(), p.Model())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Live("acme"); !errors.Is(err, ErrNoLive) {
		t.Fatalf("Live before Promote = %v, want ErrNoLive", err)
	}
	if err := s.Promote("acme", id); err != nil {
		t.Fatal(err)
	}
	v, m, err := s.Model("acme")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != id || m == nil || m.D != 256 {
		t.Fatalf("Model = (%+v, %+v)", v, m)
	}
	// Unfinalized models are rejected: the compact store exists to carry
	// binarized class memory.
	raw := hdc.NewModel(256, 2)
	if _, err := s.Put("acme", p.Config(), raw); err == nil {
		t.Fatal("unfinalized model accepted")
	}
	// Incompatible configs are rejected: the store shares one pipeline.
	other := p.Config()
	other.D = 512
	om := testPipeline(t, 512, 2).Model()
	if _, err := s.Put("acme2", other, om); err == nil {
		t.Fatal("incompatible config accepted")
	}
	if _, err := s.Put("bad/id", p.Config(), p.Model()); err == nil {
		t.Fatal("invalid tenant id accepted")
	}
}

// TestLazyMatchesEagerV1 is the materialization-correctness contract
// (satellite): Hamming scores from the lazily materialized compact tenant
// model must be byte-identical to an eagerly loaded v1 snapshot of the
// same model, at any concurrency. Run with -race.
func TestLazyMatchesEagerV1(t *testing.T) {
	p := testPipeline(t, 512, 3)
	var v1 bytes.Buffer
	if err := hdface.EncodeSnapshot(&v1, p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	_, eager, err := hdface.DecodeSnapshot(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seed("acme", p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	feats := probeFeatures(t, p, 16, 99)
	want := make([]hamScore, len(feats))
	for i, f := range feats {
		want[i] = ham(eager, f)
	}
	// Many goroutines race the first materialization and score; every
	// distance must match the eager model bit-for-bit, and all workers
	// must observe the same single materialized instance.
	const workers = 8
	models := make([]*hdc.Model, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, m, err := s.Model("acme")
			if err != nil {
				t.Error(err)
				return
			}
			models[w] = m
			for i, f := range feats {
				if got := ham(m, f); got != want[i] {
					t.Errorf("worker %d probe %d: lazy scores %v != eager %v", w, i, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		if models[w] != models[0] {
			t.Fatal("concurrent first users materialized more than one instance")
		}
	}
	st := s.Stats()
	if st.MaterializedCount != 1 {
		t.Fatalf("materialized count = %d, want 1", st.MaterializedCount)
	}
}

func TestLRUEviction(t *testing.T) {
	p := testPipeline(t, 256, 4)
	m := p.Model()
	one := materializedBytes(m)
	s, err := Open(Config{BudgetBytes: 3 * one})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	for _, id := range ids {
		if _, err := s.Seed(id, p.Config(), m); err != nil {
			t.Fatal(err)
		}
	}
	feats := probeFeatures(t, p, 2, 5)
	want := ham(m, feats[0])
	var held *hdc.Model
	for _, id := range ids {
		_, mm, err := s.Model(id)
		if err != nil {
			t.Fatal(err)
		}
		if held == nil {
			held = mm // in-flight reader keeps this across evictions
		}
	}
	st := s.Stats()
	if st.MaterializedBytes > 3*one {
		t.Fatalf("budget overrun: %d > %d", st.MaterializedBytes, 3*one)
	}
	if st.MaterializedCount > 3 {
		t.Fatalf("materialized %d models under a 3-model budget", st.MaterializedCount)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	// The first tenant was evicted; its version demoted but intact.
	v, err := s.Live("t0")
	if err != nil {
		t.Fatal(err)
	}
	if v.Materialized() {
		t.Fatal("LRU head survived tail eviction order")
	}
	// The evicted reader's pointer is still a valid immutable model.
	if got := ham(held, feats[0]); got != want {
		t.Fatal("in-flight model corrupted by eviction")
	}
	// Re-materialization after eviction is exact.
	_, mm, err := s.Model("t0")
	if err != nil {
		t.Fatal(err)
	}
	if got := ham(mm, feats[0]); got != want {
		t.Fatal("re-materialized model differs")
	}
}

func TestPersistenceReload(t *testing.T) {
	p := testPipeline(t, 256, 6)
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alpha", "beta"} {
		if _, err := s.Seed(id, p.Config(), p.Model()); err != nil {
			t.Fatal(err)
		}
	}
	// Second version for alpha, left unpromoted.
	if _, err := s.Put("alpha", p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	feats := probeFeatures(t, p, 2, 7)
	_, m1, err := s.Model("alpha")
	if err != nil {
		t.Fatal(err)
	}
	want := ham(m1, feats[0])

	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reloaded %d tenants, want 2", s2.Len())
	}
	if cfg, ok := s2.BaseConfig(); !ok || cfg.D != 256 {
		t.Fatalf("base config lost: %+v %v", cfg, ok)
	}
	v, m2, err := s2.Model("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 1 {
		t.Fatalf("alpha live version %d after reload, want 1", v.ID)
	}
	if got := ham(m2, feats[0]); got != want {
		t.Fatal("reloaded model scores differ")
	}
	infos := s2.Tenants()
	if len(infos) != 2 || infos[0].ID != "alpha" || infos[0].Versions != 2 {
		t.Fatalf("Tenants() = %+v", infos)
	}
}

func TestFeedbackRoundIsolation(t *testing.T) {
	p := testPipeline(t, 256, 8)
	s, err := Open(Config{FeedbackBatch: 4, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"learner", "frozen"} {
		if _, err := s.Seed(id, p.Config(), p.Model()); err != nil {
			t.Fatal(err)
		}
	}
	feats := probeFeatures(t, p, 8, 11)
	var promoted uint64
	for i, f := range feats {
		id, err := s.Feedback("learner", f, i%2)
		if err != nil {
			t.Fatal(err)
		}
		if id != 0 {
			promoted = id
		}
	}
	if promoted == 0 {
		t.Fatal("8 samples at batch 4 never promoted a round")
	}
	lv, _, err := s.Model("learner")
	if err != nil {
		t.Fatal(err)
	}
	if lv.ID != promoted {
		t.Fatalf("learner live = %d, want promoted round %d", lv.ID, promoted)
	}
	// The other tenant's lineage is untouched.
	fv, fm, err := s.Model("frozen")
	if err != nil {
		t.Fatal(err)
	}
	if fv.ID != 1 {
		t.Fatalf("frozen tenant advanced to version %d", fv.ID)
	}
	for c := range p.Model().Bin {
		if !reflect.DeepEqual(fm.Bin[c].Words(), p.Model().Bin[c].Words()) {
			t.Fatal("frozen tenant's class memory changed")
		}
	}
	// Feedback against bad labels / unknown tenants is rejected.
	if _, err := s.Feedback("learner", feats[0], 7); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := s.Feedback("ghost", feats[0], 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("feedback to unknown tenant = %v", err)
	}
}

func TestRetention(t *testing.T) {
	p := testPipeline(t, 256, 9)
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seed("acme", p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Put("acme", p.Config(), p.Model()); err != nil {
			t.Fatal(err)
		}
	}
	infos := s.Tenants()
	// Live (v1) and newest (v5) are protected; retention may hold a third
	// transiently but never more than retain+1.
	if infos[0].Versions > 3 {
		t.Fatalf("retention kept %d versions", infos[0].Versions)
	}
	files, err := filepath.Glob(filepath.Join(dir, "acme", "v*.hdfs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != infos[0].Versions {
		t.Fatalf("%d files on disk vs %d versions resident", len(files), infos[0].Versions)
	}
	// Reload still finds the live version.
	s2, err := Open(Config{Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s2.Live("acme"); err != nil || v.ID != 1 {
		t.Fatalf("live after retention reload = %+v, %v", v, err)
	}
}

func TestHostileBlobOnDisk(t *testing.T) {
	p := testPipeline(t, 256, 10)
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seed("acme", p.Config(), p.Model()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "acme", "v0000000001.hdfs")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupt header must fail at Open (hard error, like the registry).
	bad := append([]byte(nil), blob...)
	bad[3] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("corrupt header accepted at Open")
	}
	// A corrupt payload passes the header index but must error (never
	// panic) at first materialization.
	bad = append([]byte(nil), blob...)
	bad[len(bad)-5] ^= 0xff
	truncated := bad[:len(bad)-40]
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("header-valid blob rejected at Open: %v", err)
	}
	if _, _, err := s2.Model("acme"); err == nil {
		t.Fatal("truncated payload materialized without error")
	}
}
