// Package registry is a versioned store for trained hdface models built on
// the hdface-model/v1 snapshot format. Versions carry only the trained
// class memory (the hypervector bases are rematerialised from Config.Seed
// by whoever serves them), so storing, promoting and rolling back models
// is nearly free: a version file for a D=4096 binary classifier is a few
// tens of kilobytes.
//
// The live version sits behind an atomic.Pointer: readers on the serving
// hot path call Live with no locks and can never observe a half-swapped
// model — a promote or rollback publishes a fully constructed *Version in
// one pointer store. All mutation (Put/Promote/Rollback) serialises on a
// mutex; persistence uses same-directory temp files plus rename so a crash
// mid-write never leaves a torn version where a daemon expects one.
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
)

// versionPattern names version files inside a registry dir. The zero
// padding keeps lexical and numeric order identical, which makes the dir
// listing human-auditable.
const versionPattern = "v%010d.hdfs"

// liveFile records the promote history, one ASCII version ID per line,
// last line = currently live. Keeping the history (not just the head)
// on disk is what lets Rollback survive a daemon restart.
const liveFile = "LIVE"

// maxHistory bounds the promote history; older entries fall off the front.
// Sixteen levels of rollback is far beyond any operational need.
const maxHistory = 16

var (
	obsLiveVersion = obs.NewGauge("hdface_registry_live_version",
		"Currently live model version ID (0 = none).")
	obsVersions = obs.NewGauge("hdface_registry_versions",
		"Number of model versions currently retained.")
	obsPromotes = obs.NewCounter("hdface_registry_promotes_total",
		"Model promotions (including rollback re-promotions).")
	obsRollbacks = obs.NewCounter("hdface_registry_rollbacks_total",
		"Model rollbacks.")
	obsGCDeleted = obs.NewCounter("hdface_registry_gc_deleted_total",
		"Model versions deleted by retention GC.")
)

// Version is one immutable trained model. The Model must not be mutated
// after Put: the serving hot path reads it concurrently with no locks.
type Version struct {
	// ID is the monotonically increasing version number, unique within
	// one registry for its whole lifetime (IDs of deleted versions are
	// never reused).
	ID uint64
	// Model is the trained classifier for this version.
	Model *hdc.Model
}

// Info describes one stored version for listings.
type Info struct {
	ID   uint64 `json:"id"`
	Live bool   `json:"live"`
}

// Registry stores versions, tracks the promote history and publishes the
// live version through an atomic pointer.
type Registry struct {
	mu       sync.Mutex
	dir      string // "" = in-memory only
	retain   int    // max versions kept; <=0 = unlimited
	compact  bool   // persist new versions as hdface-model/v2
	cfg      hdface.Config
	haveCfg  bool
	versions map[uint64]*Version
	history  []uint64 // promote order; last = live
	nextID   uint64
	live     atomic.Pointer[Version]
}

// Open creates a registry. With dir == "" it is purely in-memory. With a
// directory it loads every v*.hdfs version file and the LIVE history; any
// version file that fails to parse is a hard error — a corrupt registry
// must be repaired by an operator, never silently served around. retain
// bounds how many versions are kept on disk (<= 0 keeps all).
func Open(dir string, retain int) (*Registry, error) {
	return open(dir, retain, false)
}

// OpenCompact is Open, but new versions are persisted in the compact
// hdface-model/v2 format (quantised accumulators + exact binarised memory,
// ~8x smaller than v1 at D=2048). Existing files of either format are
// loaded; GC and rollback treat both identically since they share the
// version naming scheme. Note the quantisation means a version re-loaded
// after a restart dequantises to q*scale — the binarised serving path is
// unaffected, cosine scores move by at most one part in 32767.
func OpenCompact(dir string, retain int) (*Registry, error) {
	return open(dir, retain, true)
}

func open(dir string, retain int, compact bool) (*Registry, error) {
	r := &Registry{
		dir:      dir,
		retain:   retain,
		compact:  compact,
		versions: make(map[uint64]*Version),
	}
	if dir == "" {
		r.publish()
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".hdfs") {
			continue
		}
		id, err := parseVersionName(name)
		if err != nil {
			return nil, fmt.Errorf("registry: bad version file %q: %w", name, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		cfg, m, err := hdface.DecodeSnapshotAuto(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("registry: version %d: %w", id, err)
		}
		if m == nil {
			return nil, fmt.Errorf("registry: version %d: snapshot holds no trained model", id)
		}
		if !r.haveCfg {
			r.cfg, r.haveCfg = cfg, true
		} else if err := Compatible(r.cfg, cfg); err != nil {
			return nil, fmt.Errorf("registry: version %d: %w", id, err)
		}
		r.versions[id] = &Version{ID: id, Model: m}
		if id > r.nextID {
			r.nextID = id
		}
	}
	if err := r.loadHistory(); err != nil {
		return nil, err
	}
	r.publish()
	return r, nil
}

func parseVersionName(name string) (uint64, error) {
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".hdfs")
	if len(digits) != 10 {
		return 0, fmt.Errorf("want v<10 digits>.hdfs")
	}
	id, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, err
	}
	if id == 0 {
		return 0, fmt.Errorf("version 0 is reserved")
	}
	return id, nil
}

// loadHistory reads the LIVE promote history. A history line referencing a
// version that is not on disk (a "version gap", e.g. a deleted or torn
// version file) is a hard error: silently serving some other version would
// be worse than refusing to start.
func (r *Registry) loadHistory() error {
	data, err := os.ReadFile(filepath.Join(r.dir, liveFile))
	if os.IsNotExist(err) {
		return nil // valid: nothing promoted yet
	}
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return fmt.Errorf("registry: LIVE entry %q: %w", line, err)
		}
		if _, ok := r.versions[id]; !ok {
			return fmt.Errorf("registry: LIVE references version %d which is not in the registry", id)
		}
		r.history = append(r.history, id)
	}
	return nil
}

// Config returns the config shared by every stored version, and whether
// the registry holds one yet (it adopts the config of the first Put, or
// of the on-disk versions at Open).
func (r *Registry) Config() (hdface.Config, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg, r.haveCfg
}

// Compatible reports whether two configs produce interchangeable models:
// everything that shapes feature extraction must match. Workers is purely
// a throughput knob and Train only shapes how a model was fitted, so both
// are ignored.
func Compatible(a, b hdface.Config) error {
	a.Workers, b.Workers = 0, 0
	a.Train, b.Train = hdc.TrainOpts{}, hdc.TrainOpts{}
	if a != b {
		return fmt.Errorf("registry: config mismatch: %+v vs %+v", a, b)
	}
	return nil
}

// Put stores a new version and returns its ID. The registry takes
// ownership of the model: it must not be mutated afterwards. Put does not
// change which version is live — call Promote for that.
func (r *Registry) Put(cfg hdface.Config, m *hdc.Model) (uint64, error) {
	if m == nil {
		return 0, fmt.Errorf("registry: Put: nil model")
	}
	if m.D != cfg.D {
		return 0, fmt.Errorf("registry: Put: model D=%d != config D=%d", m.D, cfg.D)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.haveCfg {
		r.cfg, r.haveCfg = cfg, true
	} else if err := Compatible(r.cfg, cfg); err != nil {
		return 0, err
	}
	id := r.nextID + 1
	v := &Version{ID: id, Model: m}
	if r.dir != "" {
		if err := r.writeVersion(id, cfg, m); err != nil {
			return 0, err
		}
	}
	r.nextID = id
	r.versions[id] = v
	r.gcLocked()
	obsVersions.Set(float64(len(r.versions)))
	return id, nil
}

// ErrUnknownVersion reports a version ID the registry never allocated.
var ErrUnknownVersion = errors.New("registry: unknown version")

// GoneError reports a version that once existed but has since been deleted
// by retention GC — the race a caller hits when it holds an ID across a Put
// burst. It is distinguishable from ErrUnknownVersion so callers can tell
// "retry with a fresher ID" from "this ID is garbage".
type GoneError struct{ ID uint64 }

func (e *GoneError) Error() string {
	return fmt.Sprintf("registry: version %d was deleted by retention GC", e.ID)
}

// lookupLocked resolves an ID to a version or a typed error: *GoneError for
// an allocated-then-GC'd ID, ErrUnknownVersion otherwise. Caller holds mu.
func (r *Registry) lookupLocked(id uint64) (*Version, error) {
	if v, ok := r.versions[id]; ok {
		return v, nil
	}
	if id >= 1 && id <= r.nextID {
		return nil, &GoneError{ID: id}
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownVersion, id)
}

// Get returns a stored version. A nil error guarantees a non-nil version;
// otherwise the error is *GoneError when the ID was valid but the version
// lost the race against retention GC, or wraps ErrUnknownVersion when the
// ID was never allocated.
func (r *Registry) Get(id uint64) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookupLocked(id)
}

// Promote makes version id live. The swap is atomic: in-flight readers
// keep the version they already loaded, new readers see the promoted one.
// Promoting a GC'd version reports *GoneError, like Get.
func (r *Registry) Promote(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.lookupLocked(id); err != nil {
		return fmt.Errorf("registry: Promote: %w", err)
	}
	var from uint64
	if cur := r.live.Load(); cur != nil {
		if cur.ID == id {
			return nil // already live; keep history clean
		}
		from = cur.ID
	}
	r.history = append(r.history, id)
	if len(r.history) > maxHistory {
		r.history = append(r.history[:0], r.history[len(r.history)-maxHistory:]...)
	}
	if r.dir != "" {
		if err := r.writeHistory(); err != nil {
			r.history = r.history[:len(r.history)-1]
			return err
		}
	}
	r.publish()
	r.gcLocked()
	obsPromotes.Inc()
	swapTrace("promote", from, id)
	return nil
}

// swapTrace records a live-slot swap as a short trace so /debug/traces
// shows when the serving model changed — the event that explains a
// score discontinuity mid-trajectory. No-op while tracing is disabled.
func swapTrace(op string, from, to uint64) {
	tr := trace.New("registry_swap", "")
	if tr == nil {
		return
	}
	tr.SetAttr("op", op)
	tr.SetAttr("from_version", strconv.FormatUint(from, 10))
	tr.SetAttr("to_version", strconv.FormatUint(to, 10))
	tr.Finish()
}

// Rollback pops the promote history, making the previously live version
// live again. It returns the version that is live after the rollback.
func (r *Registry) Rollback() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.history) < 2 {
		return 0, fmt.Errorf("registry: Rollback: no previous version to roll back to")
	}
	popped := r.history[len(r.history)-1]
	r.history = r.history[:len(r.history)-1]
	if r.dir != "" {
		if err := r.writeHistory(); err != nil {
			r.history = append(r.history, popped)
			return 0, err
		}
	}
	r.publish()
	obsRollbacks.Inc()
	swapTrace("rollback", popped, r.history[len(r.history)-1])
	return r.history[len(r.history)-1], nil
}

// Live returns the current live version, or nil if nothing has been
// promoted. It is lock-free and safe from any goroutine; the returned
// version is immutable.
func (r *Registry) Live() *Version {
	return r.live.Load()
}

// List returns stored versions in ascending ID order.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	liveID := uint64(0)
	if v := r.live.Load(); v != nil {
		liveID = v.ID
	}
	out := make([]Info, 0, len(r.versions))
	for id := range r.versions {
		out = append(out, Info{ID: id, Live: id == liveID})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// publish rebuilds the live pointer from the history tail. Caller holds mu
// (or is the not-yet-shared constructor).
func (r *Registry) publish() {
	if len(r.history) == 0 {
		r.live.Store(nil)
		obsLiveVersion.Set(0)
		return
	}
	id := r.history[len(r.history)-1]
	r.live.Store(r.versions[id])
	obsLiveVersion.Set(float64(id))
}

// gcLocked enforces the retention bound: delete the oldest versions that
// are neither live nor in the (retention-trimmed) rollback history until
// at most retain remain. Caller holds mu.
func (r *Registry) gcLocked() {
	if r.retain <= 0 || len(r.versions) <= r.retain {
		return
	}
	// The rollback history itself is capped by the retention bound — an
	// unbounded history would protect every version ever promoted from
	// eviction. The trimmed LIVE file is written before any version file
	// is deleted, so a crash in between never leaves a dangling history
	// entry (which Open treats as a hard error).
	if keep := r.retain; len(r.history) > keep {
		r.history = append(r.history[:0], r.history[len(r.history)-keep:]...)
		if r.dir != "" {
			if err := r.writeHistory(); err != nil {
				return // skip GC rather than risk a version gap
			}
		}
	}
	protected := make(map[uint64]bool, len(r.history)+1)
	for _, id := range r.history {
		protected[id] = true
	}
	// The newest version is always kept: a Put immediately followed by
	// Promote must never find its candidate GC'd in between.
	protected[r.nextID] = true
	ids := make([]uint64, 0, len(r.versions))
	for id := range r.versions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if len(r.versions) <= r.retain {
			break
		}
		if protected[id] {
			continue
		}
		delete(r.versions, id)
		if r.dir != "" {
			// Best-effort: a leftover file is re-deleted on a later GC
			// pass or flagged at the next Open.
			os.Remove(filepath.Join(r.dir, fmt.Sprintf(versionPattern, id)))
		}
		obsGCDeleted.Inc()
	}
	obsVersions.Set(float64(len(r.versions)))
}

// writeVersion persists one version atomically (temp + rename).
func (r *Registry) writeVersion(id uint64, cfg hdface.Config, m *hdc.Model) error {
	var buf bytes.Buffer
	var err error
	if r.compact {
		err = hdface.EncodeSnapshotV2(&buf, cfg, m)
	} else {
		err = hdface.EncodeSnapshot(&buf, cfg, m)
	}
	if err != nil {
		return fmt.Errorf("registry: encode version %d: %w", id, err)
	}
	return r.writeAtomic(fmt.Sprintf(versionPattern, id), buf.Bytes())
}

// MigrateV2 rewrites every hdface-model/v1 version file under dir in the
// compact v2 format, atomically (temp + rename) and in place, returning how
// many files were migrated and how many were already compact. It must not
// race an open registry on the same dir — run it offline or before Open.
// Models are re-encoded exactly as stored: binarised memory bit-for-bit,
// float accumulators quantised to int16 steps.
func MigrateV2(dir string) (migrated, skipped int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, fmt.Errorf("registry: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".hdfs") {
			continue
		}
		if _, err := parseVersionName(name); err != nil {
			return migrated, skipped, fmt.Errorf("registry: bad version file %q: %w", name, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return migrated, skipped, fmt.Errorf("registry: %w", err)
		}
		if _, _, compact, err := hdface.SnapshotInfo(bytes.NewReader(data)); err != nil {
			return migrated, skipped, fmt.Errorf("registry: %s: %w", name, err)
		} else if compact {
			skipped++
			continue
		}
		cfg, m, err := hdface.DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return migrated, skipped, fmt.Errorf("registry: %s: %w", name, err)
		}
		var buf bytes.Buffer
		if err := hdface.EncodeSnapshotV2(&buf, cfg, m); err != nil {
			return migrated, skipped, fmt.Errorf("registry: %s: %w", name, err)
		}
		w := &Registry{dir: dir}
		if err := w.writeAtomic(name, buf.Bytes()); err != nil {
			return migrated, skipped, err
		}
		migrated++
	}
	return migrated, skipped, nil
}

// writeHistory persists the LIVE promote history atomically.
func (r *Registry) writeHistory() error {
	var buf bytes.Buffer
	for _, id := range r.history {
		fmt.Fprintf(&buf, "%d\n", id)
	}
	return r.writeAtomic(liveFile, buf.Bytes())
}

func (r *Registry) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(r.dir, ".registry-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.dir, name)); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return nil
}
