package registry

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hdface/internal/hdc"
)

// TestGCRacesPromoteRollback hammers a tightly-retained, disk-backed
// registry with concurrent Put+Promote, Rollback and reader goroutines.
// The contract under fire: retention GC must never delete the live
// version or any promote-history ancestor (so Rollback always lands on a
// version that still exists), Live() is never a dangling pointer, and the
// directory left behind reopens cleanly — no history entry pointing at a
// deleted file. A Promote may legitimately lose its candidate to GC when
// competing promoters churn versions past the retention bound between its
// Put and its Promote; that must surface as a clean error, never as a
// corrupt registry. Run with -race.
func TestGCRacesPromoteRollback(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	const retain = 3
	r, err := Open(dir, retain)
	if err != nil {
		t.Fatal(err)
	}

	// Models are built up front: construction dominates the loop body and
	// the race we want lives in the registry, not in hdc.Train.
	const promoters, rounds = 4, 25
	pool := make([]*hdc.Model, promoters*rounds)
	for i := range pool {
		pool[i] = trainedModel(t, cfg, uint64(i+1))
	}

	var (
		churners  sync.WaitGroup
		writers   sync.WaitGroup
		stop      atomic.Bool
		promoteOK atomic.Int64
		gcLost    atomic.Int64
	)

	for p := 0; p < promoters; p++ {
		writers.Add(1)
		go func(p int) {
			defer writers.Done()
			for i := 0; i < rounds; i++ {
				id, err := r.Put(cfg, pool[p*rounds+i])
				if err != nil {
					t.Errorf("promoter %d: Put: %v", p, err)
					return
				}
				if err := r.Promote(id); err != nil {
					// The only legitimate failure mode: the candidate
					// was GC'd between Put and Promote by a competing
					// promoter's churn — reported as a typed *GoneError.
					var gone *GoneError
					if !errors.As(err, &gone) {
						t.Errorf("promoter %d: Promote(%d): %v", p, id, err)
						return
					}
					gcLost.Add(1)
					continue
				}
				promoteOK.Add(1)
			}
		}(p)
	}

	// Rollback churner: pops promote history while GC trims it.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for !stop.Load() {
			if id, err := r.Rollback(); err == nil {
				// The version Rollback landed on must exist for as long
				// as it stays live — GC protecting history ancestors is
				// the whole point. (Once further promotes push it out of
				// the trimmed history it may be collected; only flag the
				// miss if it is still the live version.)
				if _, err := r.Get(id); err != nil {
					if lv := r.Live(); lv != nil && lv.ID == id {
						t.Errorf("live rollback target %d GC'd", id)
						return
					}
				}
			}
		}
	}()

	// Readers: the serving hot path's lock-free live loads under churn.
	for g := 0; g < 2; g++ {
		churners.Add(1)
		go func() {
			defer churners.Done()
			for !stop.Load() {
				if v := r.Live(); v != nil {
					if v.Model == nil {
						t.Error("live version with nil model")
						return
					}
					// A version must never be GC'd out of the map while
					// still published. Between our Live() and Get() the
					// slot may swap and the old version legally collect
					// (in-flight readers keep their pointer), so only
					// flag the miss when v is still the live version.
					if _, err := r.Get(v.ID); err != nil && r.Live() == v {
						t.Errorf("live version %d missing from store", v.ID)
						return
					}
				}
				r.List()
			}
		}()
	}

	writers.Wait()
	stop.Store(true)
	churners.Wait()

	if t.Failed() {
		return
	}
	if promoteOK.Load() == 0 {
		t.Fatal("no Promote ever succeeded — the stress exercised nothing")
	}

	// The directory must reopen cleanly: no history entry referencing a
	// deleted version file, no corrupt snapshot from racing writes, and
	// the same live version an operator saw before the restart.
	r2, err := Open(dir, retain)
	if err != nil {
		t.Fatalf("registry did not survive the stress: %v", err)
	}
	live := r.Live()
	if live == nil {
		t.Fatal("no live version after a round of successful promotes")
	}
	relive := r2.Live()
	if relive == nil || relive.ID != live.ID {
		t.Fatalf("reopened live = %+v, want version %d", relive, live.ID)
	}
	t.Logf("promoted=%d gc-lost=%d live=%d", promoteOK.Load(), gcLost.Load(), live.ID)
}
