package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestGetTypedErrors pins the Get error contract: GC'd versions report
// *GoneError, never-allocated IDs report ErrUnknownVersion.
func TestGetTypedErrors(t *testing.T) {
	cfg := testConfig()
	r, err := Open("", 2)
	if err != nil {
		t.Fatal(err)
	}
	var first uint64
	for salt := uint64(1); salt <= 4; salt++ {
		id, err := r.Put(cfg, trainedModel(t, cfg, salt))
		if err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			first = id
		}
	}
	if v, err := r.Get(first); err == nil {
		t.Fatalf("version %d survived retain=2 across 4 puts: %+v", first, v)
	} else {
		var gone *GoneError
		if !errors.As(err, &gone) || gone.ID != first {
			t.Fatalf("GC'd version error = %v, want *GoneError{%d}", err, first)
		}
	}
	if _, err := r.Get(999); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unallocated ID error = %v, want ErrUnknownVersion", err)
	}
	if _, err := r.Get(0); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("ID 0 error = %v, want ErrUnknownVersion", err)
	}
	if err := r.Promote(first); err == nil {
		t.Fatal("promoted a GC'd version")
	} else {
		var gone *GoneError
		if !errors.As(err, &gone) {
			t.Fatalf("Promote on GC'd version = %v, want *GoneError", err)
		}
	}
}

// TestGetRacesGC is the regression test for the Get-vs-GC race: concurrent
// getters holding stale IDs against a putter that churns retention GC must
// only ever observe a valid version or a typed error. Run with -race.
func TestGetRacesGC(t *testing.T) {
	cfg := testConfig()
	r, err := Open("", 2)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := r.Put(cfg, trainedModel(t, cfg, 0))
	if err != nil {
		t.Fatal(err)
	}
	m := trainedModel(t, cfg, 1)
	const puts = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < puts; i++ {
			if _, err := r.Put(cfg, m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := seed; id < seed+puts; id++ {
				v, err := r.Get(id)
				switch {
				case err == nil:
					if v == nil || v.ID != id || v.Model == nil {
						t.Errorf("Get(%d) returned malformed version %+v", id, v)
						return
					}
				case errors.Is(err, ErrUnknownVersion):
					// Not allocated yet: the getter ran ahead of the putter.
				default:
					var gone *GoneError
					if !errors.As(err, &gone) || gone.ID != id {
						t.Errorf("Get(%d) = untyped error %v", id, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestOpenCompactRoundTrip stores versions through the compact v2 path and
// reloads them: the binarised memory must be bit-exact and the live history
// must survive, same as the v1 path.
func TestOpenCompactRoundTrip(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	r, err := OpenCompact(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := trainedModel(t, cfg, 3)
	id, err := r.Put(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(id); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf(versionPattern, id)))
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:16]) != "hdface-model/v2\n" {
		t.Fatalf("compact registry wrote magic %q", data[:16])
	}
	// Plain Open must read the compact file too (auto-sniffing).
	r2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	live := r2.Live()
	if live == nil || live.ID != id {
		t.Fatalf("reloaded live = %+v, want id %d", live, id)
	}
	for c := range m.Bin {
		if !reflect.DeepEqual(live.Model.Bin[c].Words(), m.Bin[c].Words()) {
			t.Fatalf("class %d binarised memory not bit-exact across compact reload", c)
		}
	}
}

// TestMigrateV2 rewrites a v1 registry dir in place and checks the models
// still load with identical binarised memory and a shrunken footprint.
func TestMigrateV2(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	r, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	models := map[uint64][]uint64{}
	for salt := uint64(1); salt <= 3; salt++ {
		m := trainedModel(t, cfg, salt)
		id, err := r.Put(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		models[id] = append([]uint64(nil), m.Bin[0].Words()...)
		if err := r.Promote(id); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := dirSize(t, dir)
	migrated, skipped, err := MigrateV2(dir)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 3 || skipped != 0 {
		t.Fatalf("MigrateV2 = (%d, %d), want (3, 0)", migrated, skipped)
	}
	// Idempotent: a second pass skips everything.
	if migrated, skipped, err = MigrateV2(dir); err != nil || migrated != 0 || skipped != 3 {
		t.Fatalf("second MigrateV2 = (%d, %d, %v), want (0, 3, nil)", migrated, skipped, err)
	}
	if after := dirSize(t, dir); after >= sizeBefore {
		t.Fatalf("migration grew the dir: %d -> %d bytes", sizeBefore, after)
	}
	r2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id, words := range models {
		v, err := r2.Get(id)
		if err != nil {
			t.Fatalf("version %d lost in migration: %v", id, err)
		}
		if !reflect.DeepEqual(v.Model.Bin[0].Words(), words) {
			t.Fatalf("version %d binarised memory changed in migration", id)
		}
	}
	if live := r2.Live(); live == nil || live.ID != 3 {
		t.Fatalf("live version lost in migration: %+v", live)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}
