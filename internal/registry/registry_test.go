package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/hv"
)

// testConfig is small enough for fast model construction but realistic
// enough to exercise the snapshot path.
func testConfig() hdface.Config {
	return hdface.Config{D: 256, WorkingSize: 16, Workers: 1, Seed: 7}
}

// trainedModel builds a deterministic trained model; vary salt to get
// distinguishable versions.
func trainedModel(tb testing.TB, cfg hdface.Config, salt uint64) *hdc.Model {
	tb.Helper()
	r := hv.NewRNG(cfg.Seed ^ salt)
	var feats []*hv.Vector
	var labels []int
	protoA, protoB := hv.NewRand(r, cfg.D), hv.NewRand(r, cfg.D)
	for i := 0; i < 10; i++ {
		a := protoA.Clone()
		a.Xor(a, hv.NewRandBiased(r, cfg.D, 0.1))
		b := protoB.Clone()
		b.Xor(b, hv.NewRandBiased(r, cfg.D, 0.1))
		feats = append(feats, a, b)
		labels = append(labels, 0, 1)
	}
	m, err := hdc.Train(feats, labels, 2, hdc.TrainOpts{Seed: cfg.Seed ^ salt})
	if err != nil {
		tb.Fatal(err)
	}
	m.Finalize(cfg.Seed)
	return m
}

func TestPutPromoteRollback(t *testing.T) {
	cfg := testConfig()
	r, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Live() != nil {
		t.Fatal("fresh registry has a live version")
	}
	v1, err := r.Put(cfg, trainedModel(t, cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.Put(cfg, trainedModel(t, cfg, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("IDs not monotonic from 1: %d, %d", v1, v2)
	}
	if r.Live() != nil {
		t.Fatal("Put must not change the live version")
	}
	if err := r.Promote(v1); err != nil {
		t.Fatal(err)
	}
	if live := r.Live(); live == nil || live.ID != v1 {
		t.Fatalf("live = %v, want version %d", live, v1)
	}
	if err := r.Promote(v2); err != nil {
		t.Fatal(err)
	}
	if live := r.Live(); live.ID != v2 {
		t.Fatalf("live = %d, want %d", live.ID, v2)
	}
	back, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != v1 || r.Live().ID != v1 {
		t.Fatalf("rollback landed on %d, want %d", back, v1)
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback past the first promotion succeeded")
	}
	if err := r.Promote(99); err == nil {
		t.Fatal("promoting an unknown version succeeded")
	}
}

func TestPutValidation(t *testing.T) {
	cfg := testConfig()
	r, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(cfg, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := r.Put(cfg, trainedModel(t, cfg, 1)); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	if _, err := r.Put(other, trainedModel(t, other, 1)); err == nil {
		t.Fatal("config-incompatible version accepted")
	}
	// Workers and Train differences are compatible by design.
	alt := cfg
	alt.Workers = 8
	alt.Train.Epochs = 99
	if _, err := r.Put(alt, trainedModel(t, cfg, 3)); err != nil {
		t.Fatalf("throughput-only config change rejected: %v", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	r, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := trainedModel(t, cfg, 1), trainedModel(t, cfg, 2)
	v1, _ := r.Put(cfg, m1)
	v2, _ := r.Put(cfg, m2)
	if err := r.Promote(v1); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(v2); err != nil {
		t.Fatal(err)
	}

	// A second registry opened on the same dir sees the same state.
	r2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if live := r2.Live(); live == nil || live.ID != v2 {
		t.Fatalf("reloaded live = %v, want %d", live, v2)
	}
	got, err := r2.Get(v1)
	if err != nil {
		t.Fatalf("version %d lost across reload", v1)
	}
	for c := range m1.Classes {
		for i := range m1.Classes[c] {
			if got.Model.Classes[c][i] != m1.Classes[c][i] {
				t.Fatalf("version %d accumulator %d/%d differs after reload", v1, c, i)
			}
		}
	}
	// Rollback history survived too.
	back, err := r2.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != v1 {
		t.Fatalf("reloaded rollback landed on %d, want %d", back, v1)
	}
	// IDs stay monotonic across restart.
	v3, err := r2.Put(cfg, trainedModel(t, cfg, 3))
	if err != nil {
		t.Fatal(err)
	}
	if v3 != v2+1 {
		t.Fatalf("post-reload Put got ID %d, want %d", v3, v2+1)
	}
}

func TestRetentionGC(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	r, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := uint64(1); i <= 5; i++ {
		id, err := r.Put(cfg, trainedModel(t, cfg, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Promote(id); err != nil {
			t.Fatal(err)
		}
		last = id
	}
	list := r.List()
	if len(list) > 3 { // retain=2 plus history-protected entries
		t.Fatalf("GC kept %d versions: %v", len(list), list)
	}
	if live := r.Live(); live == nil || live.ID != last {
		t.Fatal("GC disturbed the live version")
	}
	// The live version's file must still exist.
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf(versionPattern, last))); err != nil {
		t.Fatalf("live version file GC'd: %v", err)
	}
}

func TestLiveIsLockFreeUnderChurn(t *testing.T) {
	cfg := testConfig()
	r, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := r.Put(cfg, trainedModel(t, cfg, 1))
	v2, _ := r.Put(cfg, trainedModel(t, cfg, 2))
	if err := r.Promote(v1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := r.Live()
				if v == nil {
					t.Error("live became nil mid-churn")
					return
				}
				if v.ID != v1 && v.ID != v2 {
					t.Errorf("live ID %d is neither promoted version", v.ID)
					return
				}
				if v.Model == nil || v.Model.D != cfg.D {
					t.Error("half-published version observed")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := r.Promote(v2); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Rollback(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// --- corruption handling: errors, never panics or silent fallbacks ---

func writeRegistryVersion(t *testing.T, dir string, id uint64, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(versionPattern, id)), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func validBlob(t *testing.T) []byte {
	t.Helper()
	cfg := testConfig()
	var buf bytes.Buffer
	if err := hdface.EncodeSnapshot(&buf, cfg, trainedModel(t, cfg, 1)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOpenRejectsTruncatedVersion(t *testing.T) {
	dir := t.TempDir()
	blob := validBlob(t)
	writeRegistryVersion(t, dir, 1, blob[:len(blob)/2])
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("truncated version file opened without error")
	}
}

func TestOpenRejectsBitFlippedVersion(t *testing.T) {
	blob := validBlob(t)
	// Flip a byte at several depths: magic, config, model payload. Every
	// corruption must surface as an error or parse into a structurally
	// valid model — silently adopting garbage is the failure mode.
	for _, off := range []int{0, 20, len(blob) / 2, len(blob) - 2} {
		dir := t.TempDir()
		corrupt := append([]byte(nil), blob...)
		corrupt[off] ^= 0xff
		r, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		_ = r
		writeRegistryVersion(t, dir, 1, corrupt)
		r2, err := Open(dir, 0)
		if err != nil {
			continue // rejected: good
		}
		v, err := r2.Get(1)
		if err != nil || v.Model == nil || v.Model.D <= 0 || v.Model.K < 2 {
			t.Fatalf("offset %d: corruption accepted as invalid model", off)
		}
	}
}

func TestOpenRejectsVersionGapInHistory(t *testing.T) {
	dir := t.TempDir()
	writeRegistryVersion(t, dir, 2, validBlob(t))
	// LIVE references version 1, which does not exist on disk.
	if err := os.WriteFile(filepath.Join(dir, liveFile), []byte("1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("LIVE referencing a missing version opened without error")
	}
	// Garbage in LIVE is also an error, not an empty history.
	if err := os.WriteFile(filepath.Join(dir, liveFile), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("garbage LIVE file opened without error")
	}
}

func TestOpenRejectsBadVersionFilename(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "v123.hdfs"), validBlob(t), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("malformed version filename opened without error")
	}
}

func TestOpenRejectsUntrainedSnapshot(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := hdface.EncodeSnapshot(&buf, testConfig(), nil); err != nil {
		t.Fatal(err)
	}
	writeRegistryVersion(t, dir, 1, buf.Bytes())
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("model-less snapshot accepted as a registry version")
	}
}

// FuzzOpen extends the snapshot fuzz corpus to registry loading: arbitrary
// bytes dropped in as a version file must produce an error or a valid
// registry — never a panic and never a silently absent version.
func FuzzOpen(f *testing.F) {
	cfg := testConfig()
	var buf bytes.Buffer
	r := hv.NewRNG(1)
	feats := []*hv.Vector{hv.NewRand(r, cfg.D), hv.NewRand(r, cfg.D)}
	m, err := hdc.Train(feats, []int{0, 1}, 2, hdc.TrainOpts{})
	if err != nil {
		f.Fatal(err)
	}
	m.Finalize(1)
	if err := hdface.EncodeSnapshot(&buf, cfg, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)/2] ^= 0x01
	f.Add(bitflip)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(versionPattern, 1)), data, 0o644); err != nil {
			t.Skip()
		}
		reg, err := Open(dir, 0)
		if err != nil {
			return
		}
		v, err := reg.Get(1)
		if err != nil {
			t.Fatal("Open succeeded but silently dropped the version")
		}
		if v.Model == nil || v.Model.D <= 0 || v.Model.K < 2 {
			t.Fatalf("structurally invalid model loaded: %+v", v.Model)
		}
	})
}
