package dataset

import (
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// SequenceFrame is one frame of a synthetic surveillance clip with
// ground-truth face boxes (one per subject, in subject order; a subject
// that has left the canvas gets a zero box).
type SequenceFrame struct {
	Image *imgproc.Image
	Boxes [][4]int
}

// subject is one face identity moving linearly across the scene.
type subject struct {
	face         *imgproc.Image
	x, y, dx, dy float64
}

// GenerateSequence renders a clip of the given size: each of nSubjects
// faces keeps a fixed appearance (identity) and moves along its own linear
// path over the shared clutter background, with fresh sensor noise per
// frame. The same seed reproduces the same clip.
func GenerateSequence(w, h, faceSize, frames, nSubjects int, seed uint64) []SequenceFrame {
	r := hv.NewRNG(seed ^ 0x5e9)
	bg := RenderNonFace(w, h, r)
	subs := make([]subject, nSubjects)
	for i := range subs {
		subs[i] = subject{
			face: RenderFace(faceSize, faceSize, Emotion(r.Intn(int(NumEmotions))), r),
			x:    float64(r.Intn(max(1, w-faceSize))),
			y:    float64(r.Intn(max(1, h-faceSize))),
			dx:   (r.Float64()*2 - 1) * float64(faceSize) / 6,
			dy:   (r.Float64()*2 - 1) * float64(faceSize) / 6,
		}
	}
	out := make([]SequenceFrame, frames)
	for f := 0; f < frames; f++ {
		img := bg.Clone()
		frame := SequenceFrame{Image: img}
		for i := range subs {
			s := &subs[i]
			// Bounce at canvas edges.
			if s.x < 0 || s.x > float64(w-faceSize) {
				s.dx = -s.dx
				s.x = clampF(s.x, 0, float64(w-faceSize))
			}
			if s.y < 0 || s.y > float64(h-faceSize) {
				s.dy = -s.dy
				s.y = clampF(s.y, 0, float64(h-faceSize))
			}
			img.Blend(s.face, int(s.x), int(s.y), 1)
			frame.Boxes = append(frame.Boxes,
				[4]int{int(s.x), int(s.y), int(s.x) + faceSize, int(s.y) + faceSize})
			s.x += s.dx
			s.y += s.dy
		}
		addPixelNoise(img, r, 4)
		out[f] = frame
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
