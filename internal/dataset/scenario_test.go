package dataset

import "testing"

func TestScenarioDeterministic(t *testing.T) {
	spec := ScenarioSpec{Frames: 6, Subjects: 2, Seed: 9, EntryExit: true, Jitter: 2}
	a := GenerateScenario(spec)
	b := GenerateScenario(spec)
	if len(a) != 6 {
		t.Fatalf("frames %d", len(a))
	}
	for f := range a {
		if a[f].Boxes == nil || len(a[f].Boxes) != 2 {
			t.Fatalf("frame %d: boxes %v", f, a[f].Boxes)
		}
		if a[f].Image.W != b[f].Image.W || string(a[f].Image.Pix) != string(b[f].Image.Pix) {
			t.Fatalf("frame %d: pixels differ between identical specs", f)
		}
		for s := range a[f].Boxes {
			if a[f].Boxes[s] != b[f].Boxes[s] {
				t.Fatalf("frame %d subject %d: boxes differ", f, s)
			}
		}
	}
}

func TestScenarioEntryExitAbsences(t *testing.T) {
	frames := GenerateScenario(ScenarioSpec{Frames: 20, Subjects: 2, Seed: 3, EntryExit: true})
	// Subject 1 enters late: absent (zero box) at frame 0.
	if frames[0].Boxes[1] != ([4]int{}) {
		t.Fatalf("subject 1 present at frame 0: %v", frames[0].Boxes[1])
	}
	// Subject 0 leaves early: absent at the last frame.
	if frames[19].Boxes[0] != ([4]int{}) {
		t.Fatalf("subject 0 present at frame 19: %v", frames[19].Boxes[0])
	}
	// Both present mid-clip.
	mid := frames[10].Boxes
	if mid[0] == ([4]int{}) || mid[1] == ([4]int{}) {
		t.Fatalf("mid-clip absences: %v", mid)
	}
}

func TestScenarioCrossingOccludes(t *testing.T) {
	frames := GenerateScenario(ScenarioSpec{Frames: 21, Subjects: 2, Seed: 5, Crossing: true})
	// Start apart, fully overlapping mid-clip.
	d0 := frames[0].Boxes
	if iouBoxes(d0[0], d0[1]) > 0 {
		t.Fatalf("subjects overlap at frame 0: %v", d0)
	}
	mid := frames[10].Boxes
	if iouBoxes(mid[0], mid[1]) < 0.5 {
		t.Fatalf("subjects not occluding mid-clip: %v", mid)
	}
}

// iouBoxes is a test-local IoU (the real one lives in track/detect).
func iouBoxes(a, b [4]int) float64 {
	ix0, iy0 := max(a[0], b[0]), max(a[1], b[1])
	ix1, iy1 := min(a[2], b[2]), min(a[3], b[3])
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	areaA := float64((a[2] - a[0]) * (a[3] - a[1]))
	areaB := float64((b[2] - b[0]) * (b[3] - b[1]))
	return inter / (areaA + areaB - inter)
}
