package dataset

import (
	"testing"

	"hdface/internal/hv"
)

func TestAugmentImageProducesVariants(t *testing.T) {
	r := hv.NewRNG(1)
	img := RenderFace(32, 32, Happy, r)
	seen := map[string]bool{string(img.Pix[:32]): true}
	o := DefaultAugmentOpts()
	for i := 0; i < 8; i++ {
		v := AugmentImage(img, o, r)
		if v.W != 32 || v.H != 32 {
			t.Fatal("augmentation changed geometry")
		}
		seen[string(v.Pix[:32])] = true
	}
	if len(seen) < 6 {
		t.Fatalf("augmentations not diverse: %d unique of 9", len(seen))
	}
}

func TestAugmentImageNoOpsClone(t *testing.T) {
	r := hv.NewRNG(2)
	img := RenderFace(16, 16, Sad, r)
	v := AugmentImage(img, AugmentOpts{}, r)
	if v == img {
		t.Fatal("disabled augmentation returned the original pointer")
	}
	if !v.Equal(img) {
		t.Fatal("disabled augmentation changed pixels")
	}
}

func TestAugmentExpandsWithLabels(t *testing.T) {
	r := hv.NewRNG(3)
	samples := []Sample{
		{Image: RenderFace(16, 16, Happy, r), Label: 1},
		{Image: RenderNonFace(16, 16, r), Label: 0},
	}
	out := Augment(samples, 3, DefaultAugmentOpts(), 4)
	if len(out) != 2*(3+1) {
		t.Fatalf("augmented count %d, want 8", len(out))
	}
	// Originals first, labels preserved per block.
	if out[0].Label != 1 || out[1].Label != 0 {
		t.Fatal("originals not first")
	}
	ones := 0
	for _, s := range out {
		ones += s.Label
	}
	if ones != 4 {
		t.Fatalf("label balance broken: %d of 8 positives", ones)
	}
}

func TestAugmentDeterministic(t *testing.T) {
	r := hv.NewRNG(5)
	samples := []Sample{{Image: RenderFace(16, 16, Fear, r), Label: 1}}
	a := Augment(samples, 2, DefaultAugmentOpts(), 9)
	b := Augment(samples, 2, DefaultAugmentOpts(), 9)
	for i := range a {
		if !a[i].Image.Equal(b[i].Image) {
			t.Fatalf("augmentation %d not deterministic", i)
		}
	}
}

func TestOcclude(t *testing.T) {
	r := hv.NewRNG(6)
	img := RenderFace(32, 32, Happy, r)
	occ := Occlude(img, 0.25, r)
	if occ == img {
		t.Fatal("Occlude returned original pointer")
	}
	changed := 0
	for i := range img.Pix {
		if img.Pix[i] != occ.Pix[i] {
			changed++
		}
	}
	// Roughly a quarter of the pixels should be covered.
	frac := float64(changed) / float64(len(img.Pix))
	if frac < 0.1 || frac > 0.45 {
		t.Fatalf("occluded fraction %v, want ~0.25", frac)
	}
	// Zero and over-range fractions behave.
	if !Occlude(img, 0, r).Equal(img) {
		t.Fatal("frac=0 changed image")
	}
	full := Occlude(img, 2, r)
	if full.Equal(img) {
		t.Fatal("frac>1 changed nothing")
	}
}
