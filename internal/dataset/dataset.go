package dataset

import (
	"fmt"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// Sample is one labelled image.
type Sample struct {
	Image *imgproc.Image
	Label int
}

// Dataset is a labelled image collection with train/test splits.
type Dataset struct {
	Name       string
	ImageSize  int // n: images are n x n
	NumClasses int // k
	ClassNames []string
	Train      []Sample
	Test       []Sample
}

// Spec describes one of the paper's Table 1 datasets. FullTrainSize records
// the original corpus size for reporting; the generator renders Train/Test
// counts, which default to laptop-scale fractions.
type Spec struct {
	Name          string
	ImageSize     int
	NumClasses    int
	FullTrainSize int // as reported in Table 1
	Description   string
}

// The paper's three benchmarks (Table 1).
var (
	SpecEmotion = Spec{Name: "EMOTION", ImageSize: 48, NumClasses: 7, FullTrainSize: 36685,
		Description: "Facial Emotion Detection (FER-style, synthetic)"}
	SpecFace1 = Spec{Name: "FACE1", ImageSize: 1024, NumClasses: 2, FullTrainSize: 40172,
		Description: "HD Face Detection (Face Mask Lite-style, synthetic)"}
	SpecFace2 = Spec{Name: "FACE2", ImageSize: 512, NumClasses: 2, FullTrainSize: 522441,
		Description: "Face Detection (Caltech-style, synthetic)"}
)

// Specs lists all Table 1 rows in paper order.
func Specs() []Spec { return []Spec{SpecEmotion, SpecFace1, SpecFace2} }

// Generate renders train+test samples for the spec. Classes are balanced;
// samples are shuffled. The same (spec, seed, counts) triple yields an
// identical dataset.
func Generate(spec Spec, trainN, testN int, seed uint64) *Dataset {
	r := hv.NewRNG(seed)
	ds := &Dataset{
		Name:       spec.Name,
		ImageSize:  spec.ImageSize,
		NumClasses: spec.NumClasses,
	}
	if spec.NumClasses == int(NumEmotions) {
		for e := Emotion(0); e < NumEmotions; e++ {
			ds.ClassNames = append(ds.ClassNames, e.String())
		}
	} else {
		ds.ClassNames = []string{"no-face", "face"}
	}
	ds.Train = renderSplit(spec, trainN, r)
	ds.Test = renderSplit(spec, testN, r)
	return ds
}

func renderSplit(spec Spec, n int, r *hv.RNG) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % spec.NumClasses
		var img *imgproc.Image
		if spec.NumClasses == int(NumEmotions) {
			img = RenderFace(spec.ImageSize, spec.ImageSize, Emotion(label), r)
		} else if label == 1 {
			// Binary face detection: neutral-ish random emotion faces.
			img = RenderFace(spec.ImageSize, spec.ImageSize, Emotion(r.Intn(int(NumEmotions))), r)
		} else {
			img = RenderNonFace(spec.ImageSize, spec.ImageSize, r)
		}
		out = append(out, Sample{Image: img, Label: label})
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// String summarises the dataset like a Table 1 row.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %dx%d, k=%d, train=%d, test=%d",
		d.Name, d.ImageSize, d.ImageSize, d.NumClasses, len(d.Train), len(d.Test))
}

// Scene is a composite image with known face locations, used by the
// sliding-window detection experiment (Figure 6).
type Scene struct {
	Image *imgproc.Image
	// Faces lists ground-truth face boxes as (x0, y0, x1, y1).
	Faces [][4]int
}

// GenerateScene renders a w x h clutter background with nFaces faces pasted
// at random non-overlapping positions of size faceSize.
func GenerateScene(w, h, faceSize, nFaces int, seed uint64) *Scene {
	r := hv.NewRNG(seed)
	bg := RenderNonFace(w, h, r)
	sc := &Scene{Image: bg}
	const maxTries = 200
	for f := 0; f < nFaces; f++ {
		placed := false
		for try := 0; try < maxTries && !placed; try++ {
			x := r.Intn(max(1, w-faceSize))
			y := r.Intn(max(1, h-faceSize))
			box := [4]int{x, y, x + faceSize, y + faceSize}
			if overlapsAny(box, sc.Faces) {
				continue
			}
			face := RenderFace(faceSize, faceSize, Emotion(r.Intn(int(NumEmotions))), r)
			bg.Blend(face, x, y, 1)
			sc.Faces = append(sc.Faces, box)
			placed = true
		}
	}
	return sc
}

func overlapsAny(b [4]int, boxes [][4]int) bool {
	for _, o := range boxes {
		if b[0] < o[2] && o[0] < b[2] && b[1] < o[3] && o[1] < b[3] {
			return true
		}
	}
	return false
}

// InBox reports whether the window (x0, y0, x1, y1) overlaps a ground-truth
// face box by at least 50% of the window area.
func (s *Scene) InBox(x0, y0, x1, y1 int) bool {
	area := (x1 - x0) * (y1 - y0)
	if area <= 0 {
		return false
	}
	for _, f := range s.Faces {
		ix0, iy0 := max(x0, f[0]), max(y0, f[1])
		ix1, iy1 := min(x1, f[2]), min(y1, f[3])
		if ix1 > ix0 && iy1 > iy0 && (ix1-ix0)*(iy1-iy0)*2 >= area {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
