package dataset

import (
	"testing"

	"hdface/internal/hv"
)

func TestEmotionString(t *testing.T) {
	if Happy.String() != "happy" || Surprise.String() != "surprise" {
		t.Fatal("emotion names wrong")
	}
	if Emotion(99).String() != "unknown" {
		t.Fatal("out-of-range emotion name")
	}
	if int(NumEmotions) != 7 {
		t.Fatalf("NumEmotions = %d", NumEmotions)
	}
}

func TestRenderFaceDeterministic(t *testing.T) {
	a := RenderFace(48, 48, Happy, hv.NewRNG(5))
	b := RenderFace(48, 48, Happy, hv.NewRNG(5))
	if !a.Equal(b) {
		t.Fatal("same seed rendered different faces")
	}
	c := RenderFace(48, 48, Happy, hv.NewRNG(6))
	if a.Equal(c) {
		t.Fatal("different seeds rendered identical faces")
	}
}

func TestRenderFaceHasStructure(t *testing.T) {
	r := hv.NewRNG(1)
	img := RenderFace(48, 48, Neutral, r)
	if img.W != 48 || img.H != 48 {
		t.Fatal("bad size")
	}
	// A rendered face must have nontrivial contrast.
	var lo, hi uint8 = 255, 0
	for _, p := range img.Pix {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi-lo < 40 {
		t.Fatalf("face image nearly flat: range %d", hi-lo)
	}
}

func TestEmotionsAreVisuallyDistinct(t *testing.T) {
	// Average faces of different emotions should differ more than two
	// renders of the same emotion differ from each other.
	avg := func(e Emotion, seed uint64) []float64 {
		r := hv.NewRNG(seed)
		acc := make([]float64, 48*48)
		const n = 12
		for i := 0; i < n; i++ {
			img := RenderFace(48, 48, e, r)
			for j, p := range img.Pix {
				acc[j] += float64(p) / n
			}
		}
		return acc
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	happy1 := avg(Happy, 1)
	happy2 := avg(Happy, 2)
	surprise := avg(Surprise, 3)
	within := dist(happy1, happy2)
	between := dist(happy1, surprise)
	if between <= within {
		t.Fatalf("emotion classes not separable: within=%v between=%v", within, between)
	}
}

func TestRenderNonFaceVariety(t *testing.T) {
	r := hv.NewRNG(2)
	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		img := RenderNonFace(32, 32, r)
		key := string(img.Pix[:16])
		seen[key] = true
	}
	if len(seen) < 10 {
		t.Fatalf("non-face renders not diverse: %d unique of 12", len(seen))
	}
}

func TestGenerateShapes(t *testing.T) {
	ds := Generate(SpecEmotion, 21, 14, 9)
	if ds.Name != "EMOTION" || ds.ImageSize != 48 || ds.NumClasses != 7 {
		t.Fatalf("spec not honoured: %+v", ds)
	}
	if len(ds.Train) != 21 || len(ds.Test) != 14 {
		t.Fatal("split sizes wrong")
	}
	if len(ds.ClassNames) != 7 || ds.ClassNames[3] != "happy" {
		t.Fatalf("class names wrong: %v", ds.ClassNames)
	}
	counts := make([]int, 7)
	for _, s := range ds.Train {
		if s.Label < 0 || s.Label >= 7 {
			t.Fatalf("bad label %d", s.Label)
		}
		if s.Image.W != 48 || s.Image.H != 48 {
			t.Fatal("bad image size")
		}
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 3 {
			t.Fatalf("class %d has %d samples, want 3", c, n)
		}
	}
}

func TestGenerateBinaryDataset(t *testing.T) {
	spec := SpecFace2
	spec.ImageSize = 64 // keep the test fast; geometry is scale-free
	ds := Generate(spec, 10, 4, 3)
	if ds.NumClasses != 2 || ds.ClassNames[1] != "face" {
		t.Fatalf("binary dataset wrong: %+v", ds.ClassNames)
	}
	ones := 0
	for _, s := range ds.Train {
		ones += s.Label
	}
	if ones != 5 {
		t.Fatalf("unbalanced binary split: %d/10 faces", ones)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SpecEmotion, 7, 7, 42)
	b := Generate(SpecEmotion, 7, 7, 42)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label || !a.Train[i].Image.Equal(b.Train[i].Image) {
			t.Fatalf("sample %d differs across identical generations", i)
		}
	}
}

func TestSpecs(t *testing.T) {
	s := Specs()
	if len(s) != 3 {
		t.Fatal("want 3 specs")
	}
	if s[0].FullTrainSize != 36685 || s[1].ImageSize != 1024 || s[2].FullTrainSize != 522441 {
		t.Fatal("Table 1 constants wrong")
	}
}

func TestDatasetString(t *testing.T) {
	ds := Generate(SpecEmotion, 7, 7, 1)
	got := ds.String()
	if got != "EMOTION: 48x48, k=7, train=7, test=7" {
		t.Fatalf("String() = %q", got)
	}
}

func TestGenerateScene(t *testing.T) {
	sc := GenerateScene(200, 150, 48, 3, 11)
	if sc.Image.W != 200 || sc.Image.H != 150 {
		t.Fatal("scene size wrong")
	}
	if len(sc.Faces) != 3 {
		t.Fatalf("placed %d faces, want 3", len(sc.Faces))
	}
	// Boxes must be disjoint and inside the canvas.
	for i, f := range sc.Faces {
		if f[0] < 0 || f[1] < 0 || f[2] > 200 || f[3] > 150 {
			t.Fatalf("face %d out of canvas: %v", i, f)
		}
		for j := i + 1; j < len(sc.Faces); j++ {
			if overlapsAny(f, [][4]int{sc.Faces[j]}) {
				t.Fatalf("faces %d and %d overlap", i, j)
			}
		}
	}
}

func TestSceneInBox(t *testing.T) {
	sc := &Scene{Faces: [][4]int{{10, 10, 58, 58}}}
	if !sc.InBox(10, 10, 58, 58) {
		t.Fatal("exact box not matched")
	}
	if !sc.InBox(20, 20, 68, 68) {
		t.Fatal("majority-overlap box not matched")
	}
	if sc.InBox(50, 50, 98, 98) {
		t.Fatal("minor-overlap box matched")
	}
	if sc.InBox(100, 100, 148, 148) {
		t.Fatal("disjoint box matched")
	}
	if sc.InBox(5, 5, 5, 5) {
		t.Fatal("degenerate box matched")
	}
}

func TestSceneDeterministic(t *testing.T) {
	a := GenerateScene(120, 120, 40, 2, 7)
	b := GenerateScene(120, 120, 40, 2, 7)
	if !a.Image.Equal(b.Image) {
		t.Fatal("scenes differ for same seed")
	}
}

func BenchmarkRenderFace48(b *testing.B) {
	r := hv.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderFace(48, 48, Happy, r)
	}
}

func BenchmarkRenderNonFace48(b *testing.B) {
	r := hv.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderNonFace(48, 48, r)
	}
}

func TestGenerateSequence(t *testing.T) {
	frames := GenerateSequence(160, 120, 40, 6, 2, 21)
	if len(frames) != 6 {
		t.Fatalf("frames %d, want 6", len(frames))
	}
	for f, fr := range frames {
		if fr.Image.W != 160 || fr.Image.H != 120 {
			t.Fatal("frame size wrong")
		}
		if len(fr.Boxes) != 2 {
			t.Fatalf("frame %d has %d boxes", f, len(fr.Boxes))
		}
		for _, b := range fr.Boxes {
			if b[0] < 0 || b[1] < 0 || b[2] > 160 || b[3] > 120 {
				t.Fatalf("frame %d box out of canvas: %v", f, b)
			}
			if b[2]-b[0] != 40 || b[3]-b[1] != 40 {
				t.Fatalf("frame %d box wrong size: %v", f, b)
			}
		}
	}
	// Subjects must actually move across the clip.
	first, last := frames[0].Boxes[0], frames[len(frames)-1].Boxes[0]
	if first == last {
		t.Fatal("subject did not move")
	}
	// Determinism.
	again := GenerateSequence(160, 120, 40, 6, 2, 21)
	if !again[3].Image.Equal(frames[3].Image) {
		t.Fatal("sequence not deterministic")
	}
}
