package dataset

import (
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// ScenarioSpec configures a synthetic streaming scenario for the tracking
// service: a clip with per-frame ground truth designed to exercise a
// specific tracker failure mode. The zero value of every knob gets a
// sensible default; the same spec always renders the same clip.
type ScenarioSpec struct {
	W, H     int // canvas (default 160×120)
	FaceSize int // rendered face edge (default 48, the usual detect window)
	Frames   int // clip length (default 20)
	Subjects int // identities (default 2)
	Seed     uint64

	// EntryExit staggers subject lifetimes: subject i enters after i·stagger
	// frames and the earliest subjects leave before the clip ends, so the
	// tracker sees births and deaths instead of a fixed population.
	EntryExit bool
	// Crossing drives subjects along one shared horizontal lane from
	// opposite edges so they fully occlude each other mid-clip — the case
	// where NMS merges the boxes and a tracker must coast through the gap
	// on appearance memory.
	Crossing bool
	// Jitter shakes the camera: every frame the subjects (and their truth
	// boxes) shift by a uniform offset in [-Jitter, Jitter] pixels per axis.
	Jitter int
	// Noise is the per-frame sensor noise amplitude (default 4).
	Noise int
	// PlainBG renders a plain illumination gradient instead of the usual
	// cluttered background — the benign "clean" case where every detection
	// should be a real face.
	PlainBG bool
}

func (s ScenarioSpec) withDefaults() ScenarioSpec {
	if s.W <= 0 {
		s.W = 160
	}
	if s.H <= 0 {
		s.H = 120
	}
	if s.FaceSize <= 0 {
		s.FaceSize = 48
	}
	if s.Frames <= 0 {
		s.Frames = 20
	}
	if s.Subjects <= 0 {
		s.Subjects = 2
	}
	if s.Noise <= 0 {
		s.Noise = 4
	}
	return s
}

// scenarioActor is one identity: a fixed face, a path, and a lifetime.
type scenarioActor struct {
	face         *imgproc.Image
	x, y, dx, dy float64
	enter, exit  int // present in frames [enter, exit)
}

// GenerateScenario renders the clip. Ground truth follows the SequenceFrame
// convention: Boxes[i] is subject i's box, zero while the subject is absent
// (not yet entered, already left — occluded subjects keep their box: they
// are still there, the detector just cannot see them).
func GenerateScenario(spec ScenarioSpec) []SequenceFrame {
	spec = spec.withDefaults()
	r := hv.NewRNG(spec.Seed ^ 0x5ce2)
	var bg *imgproc.Image
	if spec.PlainBG {
		bg = imgproc.NewImage(spec.W, spec.H)
		bg.GradientFill(0, 0, float64(spec.W), float64(spec.H),
			uint8(60+r.Intn(40)), uint8(110+r.Intn(40)))
	} else {
		bg = RenderNonFace(spec.W, spec.H, r)
	}
	maxX := float64(spec.W - spec.FaceSize)
	maxY := float64(spec.H - spec.FaceSize)

	actors := make([]scenarioActor, spec.Subjects)
	for i := range actors {
		a := scenarioActor{
			face: RenderFace(spec.FaceSize, spec.FaceSize, Emotion(r.Intn(int(NumEmotions))), r),
			exit: spec.Frames,
		}
		if spec.Crossing {
			// One shared lane, opposite directions, meeting mid-clip.
			a.y = maxY / 2
			step := maxX / float64(max(1, spec.Frames-1))
			if i%2 == 0 {
				a.x, a.dx = 0, step
			} else {
				a.x, a.dx = maxX, -step
			}
		} else {
			// Separate horizontal lanes with gentle drift: identities never
			// meet, the clean case the identity-F1 gate scores.
			if spec.Subjects > 1 {
				a.y = maxY * float64(i) / float64(spec.Subjects-1)
			} else {
				a.y = maxY / 2
			}
			a.x = maxX * float64(i+1) / float64(spec.Subjects+1)
			a.dx = (r.Float64()*2 - 1) * float64(spec.FaceSize) / 8
		}
		if spec.EntryExit {
			stagger := spec.Frames / (2 * spec.Subjects)
			a.enter = i * stagger
			a.exit = spec.Frames - (spec.Subjects-1-i)*stagger
		}
		actors[i] = a
	}

	out := make([]SequenceFrame, spec.Frames)
	for f := 0; f < spec.Frames; f++ {
		img := bg.Clone()
		fr := SequenceFrame{Image: img}
		ox, oy := 0, 0
		if spec.Jitter > 0 {
			ox = r.Intn(2*spec.Jitter+1) - spec.Jitter
			oy = r.Intn(2*spec.Jitter+1) - spec.Jitter
		}
		for i := range actors {
			a := &actors[i]
			if f < a.enter || f >= a.exit {
				fr.Boxes = append(fr.Boxes, [4]int{})
				continue
			}
			if a.x < 0 || a.x > maxX {
				a.dx = -a.dx
				a.x = clampF(a.x, 0, maxX)
			}
			if a.y < 0 || a.y > maxY {
				a.dy = -a.dy
				a.y = clampF(a.y, 0, maxY)
			}
			x, y := int(a.x)+ox, int(a.y)+oy
			img.Blend(a.face, x, y, 1)
			fr.Boxes = append(fr.Boxes,
				[4]int{x, y, x + spec.FaceSize, y + spec.FaceSize})
			a.x += a.dx
			a.y += a.dy
		}
		addPixelNoise(img, r, spec.Noise)
		out[f] = fr
	}
	return out
}
