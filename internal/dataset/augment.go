package dataset

import (
	"math"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// AugmentOpts bounds the random perturbations Augment applies.
type AugmentOpts struct {
	// MaxRotate bounds rotation in radians (default 0.15).
	MaxRotate float64
	// MaxShift bounds translation in pixels (default 2).
	MaxShift int
	// MaxBrightness bounds the additive intensity change (default 20).
	MaxBrightness int
	// ContrastJitter bounds the contrast factor to 1 +- this (default 0.2).
	ContrastJitter float64
	// FlipH mirrors horizontally with probability 1/2 (default true for
	// faces, which are left-right symmetric up to expression asymmetry).
	FlipH bool
}

// DefaultAugmentOpts returns face-appropriate perturbation bounds.
func DefaultAugmentOpts() AugmentOpts {
	return AugmentOpts{MaxRotate: 0.15, MaxShift: 2, MaxBrightness: 20,
		ContrastJitter: 0.2, FlipH: true}
}

// AugmentImage returns one randomly perturbed variant of img.
func AugmentImage(img *imgproc.Image, o AugmentOpts, r *hv.RNG) *imgproc.Image {
	out := img
	if o.FlipH && r.Intn(2) == 1 {
		out = out.FlipH()
	}
	if o.MaxRotate > 0 {
		out = out.Rotate(o.MaxRotate * (2*r.Float64() - 1))
	}
	if o.MaxShift > 0 {
		out = out.Translate(r.Intn(2*o.MaxShift+1)-o.MaxShift,
			r.Intn(2*o.MaxShift+1)-o.MaxShift)
	}
	if o.MaxBrightness > 0 {
		out = out.AdjustBrightness(r.Intn(2*o.MaxBrightness+1) - o.MaxBrightness)
	}
	if o.ContrastJitter > 0 {
		out = out.AdjustContrast(1 + o.ContrastJitter*(2*r.Float64()-1))
	}
	if out == img {
		out = img.Clone()
	}
	return out
}

// Occlude paints a random opaque rectangle covering roughly frac of the
// image area — the "corrupted data" condition the paper's robustness
// claims cover (sunglasses, masks, sensor dropout).
func Occlude(img *imgproc.Image, frac float64, r *hv.RNG) *imgproc.Image {
	out := img.Clone()
	if frac <= 0 {
		return out
	}
	if frac > 1 {
		frac = 1
	}
	// A rectangle with aspect jitter whose area is frac of the image.
	area := frac * float64(img.W) * float64(img.H)
	aspect := 0.5 + r.Float64()
	w := int(math.Sqrt(area * aspect))
	h := int(area / float64(max(1, w)))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	x := r.Intn(max(1, img.W-w+1))
	y := r.Intn(max(1, img.H-h+1))
	shade := uint8(r.Intn(60)) // dark occluder
	out.FillRect(x, y, x+w, y+h, shade)
	return out
}

// Augment expands a sample set with perSample random variants each,
// preserving labels. The original samples are included first.
func Augment(samples []Sample, perSample int, o AugmentOpts, seed uint64) []Sample {
	r := hv.NewRNG(seed ^ 0xa06)
	out := make([]Sample, 0, len(samples)*(perSample+1))
	out = append(out, samples...)
	for _, s := range samples {
		for i := 0; i < perSample; i++ {
			out = append(out, Sample{
				Image: AugmentImage(s.Image, o, r),
				Label: s.Label,
			})
		}
	}
	return out
}
