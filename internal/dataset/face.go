// Package dataset procedurally generates the three evaluation datasets of
// the HDFace paper (Table 1). The originals — a Kaggle facial-emotion set
// and two face-detection corpora — are not redistributable, so this package
// renders synthetic faces and clutter with controlled nuisance variation
// (pose jitter, illumination, occlusion, pixel noise). The learning problem
// (separating facial configurations from grayscale rasters) is preserved,
// which is what the accuracy, dimensionality and robustness experiments
// actually exercise.
package dataset

import (
	"math"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// Emotion enumerates the seven FER-2013 classes.
type Emotion int

// The seven emotion classes in FER-2013 order.
const (
	Angry Emotion = iota
	Disgust
	Fear
	Happy
	Neutral
	Sad
	Surprise
	NumEmotions
)

var emotionNames = [...]string{"angry", "disgust", "fear", "happy", "neutral", "sad", "surprise"}

// String returns the lowercase class name.
func (e Emotion) String() string {
	if e < 0 || e >= NumEmotions {
		return "unknown"
	}
	return emotionNames[e]
}

// faceParams captures the geometry of one rendered face. All values are in
// units of the face bounding box so rendering scales to any raster size.
type faceParams struct {
	// global pose
	cx, cy  float64 // face centre as fraction of the image
	scale   float64 // head semi-major axis as fraction of min(W, H)
	tilt    float64 // head rotation, radians
	aspect  float64 // head width/height ratio
	skin    uint8   // face brightness
	feature uint8   // feature darkness
	// per-emotion facial configuration
	browAngle  float64 // radians; positive = inner ends down (anger)
	browRaise  float64 // vertical offset of brows, fraction of head
	eyeOpen    float64 // eye vertical openness multiplier
	mouthCurve float64 // +1 smile, -1 frown
	mouthOpen  float64 // 0 closed .. 1 wide open
	mouthWidth float64
}

// emotionConfig returns the canonical facial configuration for an emotion;
// the renderer perturbs it with per-sample jitter.
func emotionConfig(e Emotion) faceParams {
	p := faceParams{
		browAngle: 0, browRaise: 0, eyeOpen: 1,
		mouthCurve: 0, mouthOpen: 0.1, mouthWidth: 0.55,
	}
	switch e {
	case Angry:
		p.browAngle = 0.45
		p.browRaise = 0.06
		p.eyeOpen = 0.85
		p.mouthCurve = -0.6
		p.mouthOpen = 0.1
	case Disgust:
		p.browAngle = 0.2
		p.browRaise = 0.04
		p.eyeOpen = 0.6
		p.mouthCurve = -0.35
		p.mouthOpen = 0.25
		p.mouthWidth = 0.45
	case Fear:
		p.browAngle = -0.3
		p.browRaise = -0.08
		p.eyeOpen = 1.45
		p.mouthCurve = -0.15
		p.mouthOpen = 0.55
		p.mouthWidth = 0.4
	case Happy:
		p.browAngle = -0.05
		p.mouthCurve = 0.9
		p.mouthOpen = 0.35
		p.mouthWidth = 0.7
	case Neutral:
		// canonical defaults
	case Sad:
		p.browAngle = -0.4
		p.browRaise = -0.03
		p.eyeOpen = 0.8
		p.mouthCurve = -0.8
		p.mouthOpen = 0.05
	case Surprise:
		p.browAngle = 0
		p.browRaise = -0.12
		p.eyeOpen = 1.7
		p.mouthCurve = 0
		p.mouthOpen = 0.95
		p.mouthWidth = 0.35
	}
	return p
}

// jitter perturbs a canonical configuration with sample-specific noise so
// every rendered face is unique.
func jitter(p faceParams, r *hv.RNG) faceParams {
	p.cx = 0.5 + 0.03*(r.Float64()*2-1)
	p.cy = 0.5 + 0.03*(r.Float64()*2-1)
	p.scale = 0.42 + 0.05*r.Float64()
	p.tilt = 0.08 * (r.Float64()*2 - 1)
	p.aspect = 0.76 + 0.1*r.Float64()
	p.skin = uint8(150 + r.Intn(70))
	p.feature = uint8(20 + r.Intn(50))
	p.browAngle += 0.08 * (r.Float64()*2 - 1)
	p.browRaise += 0.02 * (r.Float64()*2 - 1)
	p.eyeOpen *= 0.9 + 0.2*r.Float64()
	p.mouthCurve += 0.1 * (r.Float64()*2 - 1)
	p.mouthOpen = math.Max(0.02, p.mouthOpen+0.08*(r.Float64()*2-1))
	p.mouthWidth *= 0.9 + 0.2*r.Float64()
	return p
}

// RenderFace draws a single face with the emotion's configuration into a
// fresh w x h image. The same seed renders the same face.
func RenderFace(w, h int, e Emotion, r *hv.RNG) *imgproc.Image {
	p := jitter(emotionConfig(e), r)
	img := imgproc.NewImage(w, h)

	// Background: illumination ramp plus low-frequency blobs.
	g0 := uint8(50 + r.Intn(50))
	g1 := uint8(80 + r.Intn(80))
	img.GradientFill(float64(r.Intn(w)), float64(r.Intn(h)),
		float64(r.Intn(w)), float64(r.Intn(h)), g0, g1)
	for i := 0; i < 2; i++ {
		img.FillEllipse(float64(r.Intn(w)), float64(r.Intn(h)),
			float64(w)*(0.08+0.15*r.Float64()), float64(h)*(0.08+0.15*r.Float64()),
			r.Float64()*math.Pi, uint8(70+r.Intn(60)))
	}

	drawFace(img, p)

	// Soften and add sensor noise.
	out := img.BoxBlur(max(1, w/64))
	addPixelNoise(out, r, 6)
	return out
}

// drawFace rasterises the parameterised face into img.
func drawFace(img *imgproc.Image, p faceParams) {
	w, h := float64(img.W), float64(img.H)
	s := p.scale * math.Min(w, h)
	cx, cy := p.cx*w, p.cy*h
	sin, cos := math.Sincos(p.tilt)
	// local face coordinates -> image coordinates
	pt := func(lx, ly float64) (float64, float64) {
		lx, ly = lx*s, ly*s
		return cx + lx*cos - ly*sin, cy + lx*sin + ly*cos
	}

	// Head.
	img.FillEllipse(cx, cy, s*p.aspect, s, p.tilt, p.skin)
	// Hair line: darker cap on the upper head.
	hx, hy := pt(0, -0.78)
	img.FillEllipse(hx, hy, s*p.aspect*0.92, s*0.38, p.tilt, p.feature+30)

	eyeY := -0.18 + 0.0
	for _, side := range []float64{-1, 1} {
		ex, ey := pt(side*0.36*p.aspect, eyeY)
		// Eye white.
		img.FillEllipse(ex, ey, s*0.16, s*0.10*p.eyeOpen, p.tilt, 235)
		// Iris.
		img.FillEllipse(ex, ey, s*0.055, s*0.07*p.eyeOpen, p.tilt, p.feature)
		// Brow: a short line whose slope encodes the emotion. A positive
		// browAngle pulls the inner end down (anger), negative raises it
		// relative to the outer end (sadness/fear).
		slope := math.Tan(p.browAngle) * 0.1
		browY := eyeY - 0.17 - p.browRaise
		bx0, by0 := pt(side*0.2*p.aspect, browY+slope)  // inner end
		bx1, by1 := pt(side*0.52*p.aspect, browY-slope) // outer end
		img.Line(bx0, by0, bx1, by1, math.Max(1.5, s*0.05), p.feature)
	}

	// Nose.
	nx0, ny0 := pt(0, -0.05)
	nx1, ny1 := pt(0, 0.22)
	img.Line(nx0, ny0, nx1, ny1, math.Max(1, s*0.04), p.feature+40)

	// Mouth: an arc bending with mouthCurve, optionally open (filled
	// ellipse underneath).
	mx, my := pt(0, 0.52)
	mw := p.mouthWidth * s
	if p.mouthOpen > 0.25 {
		img.FillEllipse(mx, my, mw*0.5, s*0.16*p.mouthOpen, p.tilt, p.feature)
	}
	// Arc centre above (smile) or below (frown) the mouth midpoint.
	if math.Abs(p.mouthCurve) < 0.08 {
		x0, y0 := pt(-p.mouthWidth/2, 0.52)
		x1, y1 := pt(p.mouthWidth/2, 0.52)
		img.Line(x0, y0, x1, y1, math.Max(1.5, s*0.05), p.feature)
	} else {
		r := mw / (1.2 * math.Abs(p.mouthCurve))
		span := mw / r
		if p.mouthCurve > 0 { // smile: arc below centre point
			img.Arc(mx, my-r*0.75, r, math.Pi/2-span/2+p.tilt, math.Pi/2+span/2+p.tilt,
				math.Max(1.5, s*0.05), p.feature)
		} else { // frown
			img.Arc(mx, my+r*0.75, r, -math.Pi/2-span/2+p.tilt, -math.Pi/2+span/2+p.tilt,
				math.Max(1.5, s*0.05), p.feature)
		}
	}
}

// RenderNonFace draws structured clutter that shares first-order statistics
// with face images (edges, blobs, gradients) but no facial configuration.
func RenderNonFace(w, h int, r *hv.RNG) *imgproc.Image {
	img := imgproc.NewImage(w, h)
	g0 := uint8(30 + r.Intn(100))
	g1 := uint8(80 + r.Intn(140))
	img.GradientFill(float64(r.Intn(w)), float64(r.Intn(h)),
		float64(r.Intn(w)), float64(r.Intn(h)), g0, g1)

	kind := r.Intn(4)
	switch kind {
	case 0: // blob field
		n := 4 + r.Intn(6)
		for i := 0; i < n; i++ {
			img.FillEllipse(float64(r.Intn(w)), float64(r.Intn(h)),
				float64(w)*(0.05+0.25*r.Float64()), float64(h)*(0.05+0.25*r.Float64()),
				r.Float64()*math.Pi, uint8(r.Intn(256)))
		}
	case 1: // bar/grating texture
		bw := max(2, w/(4+r.Intn(10)))
		horizontal := r.Intn(2) == 0
		for i := 0; ; i++ {
			v := uint8(40 + (i%2)*int(80+uint8(r.Intn(100))))
			if horizontal {
				if i*bw >= h {
					break
				}
				img.FillRect(0, i*bw, w, (i+1)*bw, v)
			} else {
				if i*bw >= w {
					break
				}
				img.FillRect(i*bw, 0, (i+1)*bw, h, v)
			}
		}
	case 2: // random polyline scribble
		n := 5 + r.Intn(8)
		x, y := float64(r.Intn(w)), float64(r.Intn(h))
		for i := 0; i < n; i++ {
			nx, ny := float64(r.Intn(w)), float64(r.Intn(h))
			img.Line(x, y, nx, ny, 1+3*r.Float64(), uint8(r.Intn(256)))
			x, y = nx, ny
		}
	default: // nested rectangles ("architecture")
		n := 3 + r.Intn(4)
		for i := 0; i < n; i++ {
			x0, y0 := r.Intn(w), r.Intn(h)
			x1, y1 := x0+r.Intn(w/2+1), y0+r.Intn(h/2+1)
			if r.Intn(2) == 0 {
				img.FillRect(x0, y0, x1, y1, uint8(r.Intn(256)))
			} else {
				img.StrokeRect(x0, y0, x1, y1, uint8(r.Intn(256)))
			}
		}
	}
	out := img.BoxBlur(max(1, w/64))
	addPixelNoise(out, r, 6)
	return out
}

// addPixelNoise adds uniform noise in [-amp, amp] to every pixel.
func addPixelNoise(m *imgproc.Image, r *hv.RNG, amp int) {
	if amp <= 0 {
		return
	}
	for i, p := range m.Pix {
		v := int(p) + r.Intn(2*amp+1) - amp
		switch {
		case v < 0:
			v = 0
		case v > 255:
			v = 255
		}
		m.Pix[i] = uint8(v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
