// Package serve turns a trained hdface.Pipeline into a long-lived HTTP
// inference daemon. Every request funnels through one admission-controlled
// queue into a single dispatcher goroutine: the pipeline's extractors are
// stateful and not goroutine-safe, so the dispatcher is the serialisation
// point, and throughput comes from micro-batching — consecutive /predict
// requests are merged (up to MaxBatch, waiting at most FlushInterval for
// stragglers) into one FeaturesContext call that fans out over the
// pipeline's own worker pool. Because feature extraction is a pure function
// of (Config, image) — see hdface.Pipeline.Feature — batching never changes
// results: every response is byte-identical to a direct Pipeline call, no
// matter how requests interleave.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hdface"
	"hdface/internal/detect"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
)

// Serving observability, exported through /metrics alongside the pipeline's
// own counters (obs metrics are process-global).
var (
	obsPredictReqs = obs.NewCounter("hdface_serve_predict_requests_total", "accepted /predict requests")
	obsDetectReqs  = obs.NewCounter("hdface_serve_detect_requests_total", "accepted /detect requests")
	obsRejected    = obs.NewCounter("hdface_serve_rejected_total", "requests rejected by admission control (503)")
	obsBadRequests = obs.NewCounter("hdface_serve_bad_requests_total", "malformed requests (4xx)")
	obsBatches     = obs.NewCounter("hdface_serve_batches_total", "predict micro-batches dispatched")
	obsBatchImgs   = obs.NewCounter("hdface_serve_batched_images_total", "images dispatched inside predict micro-batches")
	obsQueueDepth  = obs.NewGauge("hdface_serve_queue_depth", "jobs waiting in the admission queue")
	obsLatency     = obs.NewHistogram("hdface_serve_request_seconds", "request latency from admission to response",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})
)

// Config configures a Server. The zero value of every knob gets a sensible
// default; only Pipeline is mandatory.
type Config struct {
	// Pipeline serves the requests. It must be trained for /predict and
	// /detect to work; /healthz and /metrics work regardless.
	Pipeline *hdface.Pipeline
	// MaxBatch bounds how many /predict requests one dispatch merges
	// (default 8). 1 disables batching.
	MaxBatch int
	// MaxQueue bounds jobs admitted but not yet dispatched (default 64);
	// beyond it requests are rejected with 503 instead of queueing without
	// bound.
	MaxQueue int
	// FlushInterval bounds how long a partial batch waits for stragglers
	// (default 2ms).
	FlushInterval time.Duration
	// MaxDeadline caps the per-request ?deadline= budget of /detect and is
	// the default when a request names none (default 30s).
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64
	// DetectWin is the sweep window size (default the pipeline's
	// WorkingSize, else 48).
	DetectWin int
	// DetectParams overrides the sweep geometry. Zero fields default to
	// Win=DetectWin, Stride=Win/2, Scales={1,2}, NMSIoU=0.3; Workers
	// defaults to the pipeline's worker count.
	DetectParams detect.Params
}

func (c Config) withDefaults() (Config, error) {
	if c.Pipeline == nil {
		return c, fmt.Errorf("serve: Config.Pipeline is required")
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.DetectWin <= 0 {
		if ws := c.Pipeline.Config().WorkingSize; ws > 0 {
			c.DetectWin = ws
		} else {
			c.DetectWin = 48
		}
	}
	if c.DetectParams.Win <= 0 {
		c.DetectParams.Win = c.DetectWin
	}
	if c.DetectParams.Stride <= 0 {
		c.DetectParams.Stride = c.DetectParams.Win / 2
	}
	if len(c.DetectParams.Scales) == 0 {
		c.DetectParams.Scales = []float64{1, 2}
	}
	if c.DetectParams.NMSIoU <= 0 {
		c.DetectParams.NMSIoU = 0.3
	}
	if c.DetectParams.Workers <= 0 {
		c.DetectParams.Workers = c.Pipeline.Config().Workers
	}
	return c, nil
}

type jobKind int

const (
	kindPredict jobKind = iota
	kindDetect
)

// result carries a finished job back to its handler. Exactly one of the
// payload groups is set, matching the job kind.
type result struct {
	label  int
	scores []float64

	boxes []detect.Box
	stats detect.SweepStats

	err error
}

type job struct {
	kind jobKind
	img  *imgproc.Image
	// ctx carries the request's detect budget; it starts ticking at
	// admission, so time spent queued counts against the deadline.
	ctx  context.Context
	resp chan result // buffered (cap 1): the dispatcher never blocks on it
}

// Server is the batched inference engine plus its HTTP surface.
type Server struct {
	cfg   Config
	queue chan *job
	done  chan struct{}

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool

	scorerOnce sync.Once
	scorer     detect.WindowScorer
	scorerErr  error
}

// New validates the configuration and starts the dispatcher. Callers must
// Close the server to stop it; after (not concurrently with) draining any
// HTTP listener feeding it.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// A daemon that exports /metrics should have live metrics: arm the
	// (process-global) obs layer. The overhead is a few atomic adds per
	// request — noise next to feature extraction.
	obs.Enable()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.MaxQueue),
		done:  make(chan struct{}),
	}
	go s.dispatch()
	return s, nil
}

// Close stops admission, lets the dispatcher finish every job already
// queued (their handlers get real responses, not errors), and waits for it
// to exit. Idempotent. Call only after in-flight HTTP handlers have drained
// (http.Server.Shutdown does exactly that).
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.done
}

// enqueue admits a job unless the server is closed or the queue is full.
func (s *Server) enqueue(j *job) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- j:
		obsQueueDepth.Set(float64(len(s.queue)))
		return true
	default:
		return false
	}
}

// dispatch is the single inference loop: it owns the pipeline.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		j, ok := <-s.queue
		if !ok {
			return
		}
		s.run(j)
	}
}

// run executes one dequeued job; a predict job first collects a micro-batch
// behind it.
func (s *Server) run(first *job) {
	obsQueueDepth.Set(float64(len(s.queue)))
	if first.kind == kindDetect {
		s.runDetect(first)
		return
	}
	batch := []*job{first}
	var next *job
	if s.cfg.MaxBatch > 1 {
		timer := time.NewTimer(s.cfg.FlushInterval)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case j, ok := <-s.queue:
				if !ok {
					break collect
				}
				if j.kind == kindDetect {
					// Detect jobs don't batch; run it right after this
					// batch rather than re-queueing behind new arrivals.
					next = j
					break collect
				}
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
	}
	s.runPredicts(batch)
	if next != nil {
		s.runDetect(next)
	}
}

// runPredicts extracts the whole batch through the pipeline's parallel
// feature path and scores each image. Per-image content reseeding makes the
// outputs independent of batch composition, so this is exactly equivalent
// to len(batch) separate Pipeline.Scores calls.
func (s *Server) runPredicts(batch []*job) {
	obsBatches.Inc()
	obsBatchImgs.Add(int64(len(batch)))
	p := s.cfg.Pipeline
	imgs := make([]*imgproc.Image, len(batch))
	for i, j := range batch {
		imgs[i] = j.img
	}
	feats, err := p.FeaturesContext(context.Background(), imgs)
	if err != nil {
		for _, j := range batch {
			j.resp <- result{err: err}
		}
		return
	}
	m := p.Model()
	for i, j := range batch {
		scores := m.Scores(feats[i])
		best := 0
		for c, sc := range scores {
			if sc > scores[best] {
				best = c
			}
		}
		j.resp <- result{label: best, scores: scores}
	}
}

// runDetect sweeps one image under the request's deadline context. A blown
// deadline degrades (best-so-far boxes, Degraded flag) rather than erroring
// — the detect package's anytime contract.
func (s *Server) runDetect(j *job) {
	scorer, err := s.detectScorer()
	if err != nil {
		j.resp <- result{err: err}
		return
	}
	boxes, stats, err := detect.Sweep(j.ctx, j.img, scorer, s.cfg.DetectParams)
	j.resp <- result{boxes: boxes, stats: stats, err: err}
}

// detectScorer lazily builds the sweep scorer. DetectScorer forks pipeline
// state, so it must run on the dispatcher goroutine — and does: the only
// caller is runDetect.
func (s *Server) detectScorer() (detect.WindowScorer, error) {
	s.scorerOnce.Do(func() {
		s.scorer, s.scorerErr = s.cfg.Pipeline.DetectScorer(nil, s.cfg.DetectWin)
	})
	return s.scorer, s.scorerErr
}
