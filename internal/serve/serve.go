// Package serve turns a trained hdface.Pipeline into a long-lived HTTP
// inference daemon. Every request funnels through one admission-controlled
// queue into a single dispatcher goroutine: the pipeline's extractors are
// stateful and not goroutine-safe, so the dispatcher is the serialisation
// point, and throughput comes from micro-batching — consecutive /predict
// requests are merged (up to MaxBatch, waiting at most FlushInterval for
// stragglers) into one FeaturesContext call that fans out over the
// pipeline's own worker pool. Because feature extraction is a pure function
// of (Config, image) — see hdface.Pipeline.Feature — batching never changes
// results: every response is byte-identical to a direct Pipeline call, no
// matter how requests interleave.
//
// Models are served through a registry: the pipeline supplies features,
// the registry's lock-free live slot supplies the classifier, so a
// promote or rollback swaps models between requests with zero downtime
// and every response names the exact version that scored it. An optional
// online trainer turns POST /feedback into candidate refinement.
package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdface"
	"hdface/internal/detect"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
	"hdface/internal/online"
	"hdface/internal/registry"
	"hdface/internal/tenant"
	"hdface/internal/track"
)

// Serving observability, exported through /metrics alongside the pipeline's
// own counters (obs metrics are process-global).
var (
	obsPredictReqs  = obs.NewCounter("hdface_serve_predict_requests_total", "accepted /predict requests")
	obsDetectReqs   = obs.NewCounter("hdface_serve_detect_requests_total", "accepted /detect requests")
	obsFeedbackReqs = obs.NewCounter("hdface_serve_feedback_requests_total", "accepted /feedback requests")
	obsRejected     = obs.NewCounter("hdface_serve_rejected_total", "requests rejected by admission control (503)")
	obsBadRequests  = obs.NewCounter("hdface_serve_bad_requests_total", "malformed requests (4xx)")
	obsBatches      = obs.NewCounter("hdface_serve_batches_total", "predict micro-batches dispatched")
	obsBatchImgs    = obs.NewCounter("hdface_serve_batched_images_total", "images dispatched inside predict micro-batches")
	obsQueueDepth   = obs.NewGauge("hdface_serve_queue_depth", "jobs waiting in the admission queue")
	obsScorerSwaps  = obs.NewCounter("hdface_serve_scorer_rebuilds_total", "detect scorers rebuilt after a model swap")
	obsTenantReqs   = obs.NewCounter("hdface_serve_tenant_requests_total", "requests scored against a tenant model")
	obsLatency      = obs.NewHistogram("hdface_serve_request_seconds", "request latency from admission to response",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})
	// obsWinLatency is the windowed complement of obsLatency: the same
	// observations, but quantiled over the last minute only, so "p99 right
	// now" is readable during a drift episode instead of being diluted by
	// every request since process start.
	obsWinLatency = obs.NewRollingQuantile("hdface_serve_request_seconds_window",
		"request latency quantiles over the trailing window", time.Minute)
)

// recentCap bounds the request-ID → feature ring used by /feedback
// corrections; older predicts age out.
const recentCap = 1024

// Config configures a Server. The zero value of every knob gets a sensible
// default; only Pipeline is mandatory.
type Config struct {
	// Pipeline extracts features (and seeds the registry's first version
	// if it is trained and the registry has no live model).
	Pipeline *hdface.Pipeline
	// Registry supplies the live classifier and stores new versions. nil
	// gets a private in-memory registry. Its config must be compatible
	// with the pipeline's.
	Registry *registry.Registry
	// Online enables POST /feedback: accepted samples feed this trainer.
	// nil disables feedback (501). The server starts it but does not own
	// it — callers Close it after the server.
	Online *online.Trainer
	// MaxBatch bounds how many /predict requests one dispatch merges
	// (default 8). 1 disables batching.
	MaxBatch int
	// MaxQueue bounds jobs admitted but not yet dispatched (default 64);
	// beyond it requests are rejected with 503 instead of queueing without
	// bound.
	MaxQueue int
	// FlushInterval bounds how long a partial batch waits for stragglers
	// (default 2ms).
	FlushInterval time.Duration
	// MaxDeadline caps the per-request ?deadline= budget of /detect and is
	// the default when a request names none (default 30s).
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64
	// DetectWin is the sweep window size (default the pipeline's
	// WorkingSize, else 48).
	DetectWin int
	// DetectParams overrides the sweep geometry. Zero fields default to
	// Win=DetectWin, Stride=Win/2, Scales={1,2}, NMSIoU=0.3; Workers
	// defaults to the pipeline's worker count.
	DetectParams detect.Params
	// SLOTarget is the per-request latency goal tracked by the /predict
	// and /detect SLOs (default 250ms).
	SLOTarget time.Duration
	// SLOObjective is the fraction of requests that must meet SLOTarget
	// (default 0.99).
	SLOObjective float64
	// SLOWindow is the sliding window the SLOs and rolling quantiles are
	// evaluated over (default one minute).
	SLOWindow time.Duration
	// FrameDeadline is the default per-frame anytime budget of POST /stream
	// (default 250ms, capped by MaxDeadline): a frame that blows it returns
	// the best-so-far boxes flagged degraded instead of stalling the stream.
	FrameDeadline time.Duration
	// Track tunes the per-stream tracker. Zero fields take the track
	// package defaults, except MaxDist which defaults to 1.5×DetectWin (the
	// positional gate must scale with the detection geometry).
	Track track.Config
	// MinTrackScore drops sweep boxes scoring below it before tracking
	// (0 keeps every detection). /detect responses are unaffected: the
	// floor exists because a spurious low-margin box costs a stream a
	// phantom identity, not just one wrong rectangle.
	MinTrackScore float64
	// Emotion optionally enables per-track emotion-over-time summaries on
	// /stream: each track's appearance hypervectors are temporally bundled
	// (majority merge across frames) and the bundle is scored against this
	// classifier every frame. Must match the pipeline's dimensionality.
	Emotion *hdc.Model
	// Tenants optionally enables multi-tenant serving: a request naming a
	// tenant (X-Hdface-Tenant header or ?tenant=) scores against that
	// tenant's live model from this store instead of the registry's live
	// version, and its feedback feeds that tenant's private lineage. The
	// store must be compatible with the pipeline — every tenant shares the
	// pipeline's bases, only class memory differs. nil disables tenant
	// routing (tenant'd requests get 501).
	Tenants *tenant.Store
}

func (c Config) withDefaults() (Config, error) {
	if c.Pipeline == nil {
		return c, fmt.Errorf("serve: Config.Pipeline is required")
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.DetectWin <= 0 {
		if ws := c.Pipeline.Config().WorkingSize; ws > 0 {
			c.DetectWin = ws
		} else {
			c.DetectWin = 48
		}
	}
	if c.DetectParams.Win <= 0 {
		c.DetectParams.Win = c.DetectWin
	}
	if c.DetectParams.Stride <= 0 {
		c.DetectParams.Stride = c.DetectParams.Win / 2
	}
	if len(c.DetectParams.Scales) == 0 {
		c.DetectParams.Scales = []float64{1, 2}
	}
	if c.DetectParams.NMSIoU <= 0 {
		c.DetectParams.NMSIoU = 0.3
	}
	if c.DetectParams.Workers <= 0 {
		c.DetectParams.Workers = c.Pipeline.Config().Workers
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 250 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.99
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = time.Minute
	}
	if c.FrameDeadline <= 0 {
		c.FrameDeadline = 250 * time.Millisecond
	}
	if c.FrameDeadline > c.MaxDeadline {
		c.FrameDeadline = c.MaxDeadline
	}
	if c.Track.MaxDist == 0 {
		c.Track.MaxDist = 1.5 * float64(c.DetectWin)
	}
	if c.Emotion != nil && c.Emotion.D != c.Pipeline.Config().D {
		return c, fmt.Errorf("serve: emotion model dimensionality %d != pipeline %d",
			c.Emotion.D, c.Pipeline.Config().D)
	}
	if c.Tenants != nil {
		if bc, ok := c.Tenants.BaseConfig(); ok {
			if err := registry.Compatible(bc, c.Pipeline.Config()); err != nil {
				return c, fmt.Errorf("serve: tenant store/pipeline mismatch: %w", err)
			}
		}
	}
	return c, nil
}

type jobKind int

const (
	kindPredict jobKind = iota
	kindDetect
	kindFeedback
	kindStream
)

// result carries a finished job back to its handler. Exactly one of the
// payload groups is set, matching the job kind.
type result struct {
	label   int
	scores  []float64
	version uint64 // model version that produced label/scores/boxes
	reqID   string // predict only; "" when feedback is disabled
	tenant  string // tenant the version belongs to; "" = registry live

	boxes []detect.Box
	stats detect.SweepStats

	event *StreamEvent // stream only: the finished frame's NDJSON event

	// promoted is the version a tenant feedback round just made live
	// (0 when the sample only joined the batch).
	promoted uint64

	err error
}

type job struct {
	kind jobKind
	img  *imgproc.Image
	// label is the feedback correction for kindFeedback.
	label int
	// tenant routes the job to a tenant's live model instead of the
	// registry's ("" = registry live, the single-tenant path).
	tenant string
	// ctx carries the request's detect budget; it starts ticking at
	// admission, so time spent queued counts against the deadline.
	ctx  context.Context
	resp chan result // buffered (cap 1): the dispatcher never blocks on it

	// stream is the per-connection tracking state for kindStream frames.
	// Only the dispatcher touches it while the frame runs; the handler
	// submits the next frame only after reading this one's result, so
	// ownership alternates without locks.
	stream *streamState

	// tr is the request's trace (nil when tracing is off); enq and deq
	// bracket the admission queue so the dispatcher can attribute queue
	// wait vs. batch wait vs. inference.
	tr  *trace.Trace
	enq time.Time
	deq time.Time
}

// Server is the batched inference engine plus its HTTP surface.
type Server struct {
	cfg     Config
	reg     *registry.Registry
	trainer *online.Trainer
	queue   chan *job
	done    chan struct{}

	mu        sync.RWMutex // guards closed vs. enqueue
	closed    bool
	closeOnce sync.Once

	// Detect scorer cache, keyed by the live version it was built from.
	// Dispatcher-goroutine only: DetectScorer forks pipeline state.
	scorerVer uint64
	scorer    detect.WindowScorer
	scorerErr error

	// Per-tenant detect scorer cache, keyed by tenant ID and invalidated
	// when the tenant's live version moves. Dispatcher-goroutine only,
	// bounded by tenantScorerCap.
	tenantScorers map[string]*tenantScorer

	// Recent predict features for request-ID feedback corrections.
	reqSeq   atomic.Uint64
	recentMu sync.Mutex
	recent   map[string]*hv.Vector
	recentQ  []string

	// Per-endpoint latency SLOs, evaluated over Config.SLOWindow and
	// served by /debug/slo. sloStream is per-frame, against FrameDeadline.
	sloPredict *obs.SLO
	sloDetect  *obs.SLO
	sloStream  *obs.SLO
}

// New validates the configuration, seeds the registry if needed and starts
// the dispatcher. Callers must Close the server to stop it; after draining
// any HTTP listener feeding it.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// A daemon that exports /metrics should have live metrics: arm the
	// (process-global) obs layer, and the tracer with it — /debug/traces
	// and per-response trace IDs are part of the serving contract. The
	// overhead is a few atomic adds plus one small span tree per request —
	// noise next to feature extraction.
	obs.Enable()
	trace.Enable()
	reg := cfg.Registry
	if reg == nil {
		if reg, err = registry.Open("", 0); err != nil {
			return nil, err
		}
	}
	if rcfg, ok := reg.Config(); ok {
		if err := registry.Compatible(rcfg, cfg.Pipeline.Config()); err != nil {
			return nil, fmt.Errorf("serve: registry/pipeline mismatch: %w", err)
		}
	}
	// A trained pipeline with no live registry model seeds version 1, so
	// "train, snapshot, serve" keeps working with zero registry ceremony.
	if reg.Live() == nil && cfg.Pipeline.Model() != nil {
		id, err := reg.Put(cfg.Pipeline.Config(), cfg.Pipeline.Model())
		if err != nil {
			return nil, fmt.Errorf("serve: seed registry: %w", err)
		}
		if err := reg.Promote(id); err != nil {
			return nil, fmt.Errorf("serve: seed registry: %w", err)
		}
	}
	s := &Server{
		cfg:           cfg,
		reg:           reg,
		trainer:       cfg.Online,
		queue:         make(chan *job, cfg.MaxQueue),
		done:          make(chan struct{}),
		recent:        make(map[string]*hv.Vector),
		tenantScorers: make(map[string]*tenantScorer),
		sloPredict:    obs.NewSLO("predict", cfg.SLOTarget, cfg.SLOObjective, cfg.SLOWindow),
		sloDetect:     obs.NewSLO("detect", cfg.SLOTarget, cfg.SLOObjective, cfg.SLOWindow),
		sloStream:     obs.NewSLO("stream", cfg.FrameDeadline, cfg.SLOObjective, cfg.SLOWindow),
	}
	if s.trainer != nil {
		s.trainer.Start()
	}
	go s.dispatch()
	return s, nil
}

// Registry exposes the registry the server scores from (useful when New
// created a private in-memory one).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Close stops admission, lets the dispatcher finish every job already
// queued (their handlers get real responses, not errors), and waits for it
// to exit. Idempotent and safe to call from multiple goroutines — lifecycle
// actions may come from both signal handlers and registry tooling. Call
// only after in-flight HTTP handlers have drained (http.Server.Shutdown
// does exactly that).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		close(s.queue)
		s.mu.Unlock()
	})
	<-s.done
}

// enqueue admits a job unless the server is closed or the queue is full.
func (s *Server) enqueue(j *job) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- j:
		obsQueueDepth.Set(float64(len(s.queue)))
		return true
	default:
		return false
	}
}

// dispatch is the single inference loop: it owns the pipeline.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		j, ok := <-s.queue
		if !ok {
			return
		}
		s.run(j)
	}
}

// run executes one dequeued job; a predict job first collects a micro-batch
// behind it.
func (s *Server) run(first *job) {
	obsQueueDepth.Set(float64(len(s.queue)))
	first.deq = time.Now()
	if first.kind != kindPredict {
		s.runOther(first)
		return
	}
	batch := []*job{first}
	var next *job
	if s.cfg.MaxBatch > 1 {
		timer := time.NewTimer(s.cfg.FlushInterval)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case j, ok := <-s.queue:
				if !ok {
					break collect
				}
				j.deq = time.Now()
				if j.kind != kindPredict {
					// Non-predict jobs don't batch; run it right after
					// this batch rather than re-queueing behind new
					// arrivals.
					next = j
					break collect
				}
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
	}
	s.runPredicts(batch)
	if next != nil {
		s.runOther(next)
	}
}

func (s *Server) runOther(j *job) {
	switch j.kind {
	case kindDetect:
		s.runDetect(j)
	case kindFeedback:
		s.runFeedback(j)
	case kindStream:
		s.runStream(j)
	}
}

// runPredicts extracts the whole batch through the pipeline's parallel
// feature path and scores each image against its model: the tenant's live
// version for tenant'd jobs, the registry's otherwise. The registry live
// pointer is read once, so every single-tenant response in a batch is
// attributable to exactly one version even if a promote lands mid-batch;
// tenant jobs resolve their own tenant's slot and batch freely with
// everyone else — feature extraction is tenant-agnostic (shared bases),
// only the class-memory lookup differs. Per-image content reseeding makes
// the outputs independent of batch composition, so this is exactly
// equivalent to len(batch) separate scoring calls.
func (s *Server) runPredicts(batch []*job) {
	obsBatches.Inc()
	obsBatchImgs.Add(int64(len(batch)))
	// Queue wait (admission to dequeue) and batch wait (dequeue to
	// dispatch) are attributed per job: the first job of a batch pays
	// batch wait for the stragglers it waited on, the stragglers pay
	// queue wait. This is the split that tells an operator whether to
	// raise MaxBatch or shrink FlushInterval.
	infStart := time.Now()
	anyTenant := false
	for _, j := range batch {
		if j.tr != nil {
			j.tr.AddSpan("queue_wait", j.enq, j.deq)
			j.tr.AddSpan("batch_wait", j.deq, infStart)
		}
		if j.tenant != "" {
			anyTenant = true
		}
	}
	live := s.reg.Live()
	if live == nil && !anyTenant {
		for _, j := range batch {
			j.resp <- result{err: fmt.Errorf("no live model")}
		}
		return
	}
	p := s.cfg.Pipeline
	imgs := make([]*imgproc.Image, len(batch))
	for i, j := range batch {
		imgs[i] = j.img
	}
	feats, err := p.FeaturesContext(context.Background(), imgs)
	if err != nil {
		for _, j := range batch {
			j.resp <- result{err: err}
		}
		return
	}
	extractEnd := time.Now()
	for i, j := range batch {
		var model *hdc.Model
		var version uint64
		if j.tenant != "" {
			v, m, err := s.cfg.Tenants.Model(j.tenant)
			if err != nil {
				j.resp <- result{err: err}
				continue
			}
			model, version = m, v.ID
			obsTenantReqs.Inc()
		} else {
			if live == nil {
				j.resp <- result{err: fmt.Errorf("no live model")}
				continue
			}
			model, version = live.Model, live.ID
		}
		scores := model.Scores(feats[i])
		best := 0
		for c, sc := range scores {
			if sc > scores[best] {
				best = c
			}
		}
		reqID := ""
		// Tenant jobs remember their feature even without a trainer: a
		// request-ID /feedback correction routes to the tenant store.
		if s.trainer != nil || j.tenant != "" {
			reqID = s.remember(feats[i])
		}
		if j.tr != nil {
			sp := j.tr.AddSpan("inference", infStart, time.Now())
			sp.SetAttrInt("batch_size", int64(len(batch)))
			sp.SetAttrInt("model_version", int64(version))
			sp.AddSpan("extract", infStart, extractEnd)
		}
		j.resp <- result{label: best, scores: scores, version: version, reqID: reqID, tenant: j.tenant}
	}
}

// remember files a predict feature under a fresh request ID so a later
// /feedback correction can reference it without resending the image.
func (s *Server) remember(f *hv.Vector) string {
	id := strconv.FormatUint(s.reqSeq.Add(1), 10)
	s.recentMu.Lock()
	if len(s.recentQ) >= recentCap {
		delete(s.recent, s.recentQ[0])
		s.recentQ = s.recentQ[1:]
	}
	s.recent[id] = f
	s.recentQ = append(s.recentQ, id)
	s.recentMu.Unlock()
	return id
}

// lookupRecent resolves a feedback request ID to its stored feature.
func (s *Server) lookupRecent(id string) (*hv.Vector, bool) {
	s.recentMu.Lock()
	defer s.recentMu.Unlock()
	f, ok := s.recent[id]
	return f, ok
}

// runFeedback extracts the image's feature on the dispatcher (the pipeline
// is not goroutine-safe) and hands the sample to the trainer — or, for a
// tenant'd job, to the tenant's private feedback batch (which may trigger
// a synchronous per-tenant refinement round right here).
func (s *Server) runFeedback(j *job) {
	if j.tr != nil {
		j.tr.AddSpan("queue_wait", j.enq, time.Now())
	}
	sp := j.tr.StartSpan("extract")
	f := s.cfg.Pipeline.Feature(j.img)
	sp.End()
	if j.tenant != "" {
		promoted, err := s.cfg.Tenants.Feedback(j.tenant, f, j.label)
		j.resp <- result{promoted: promoted, tenant: j.tenant, err: err}
		return
	}
	j.resp <- result{err: s.trainer.Enqueue(online.Sample{Feature: f, Label: j.label})}
}

// runDetect sweeps one image under the request's deadline context. A blown
// deadline degrades (best-so-far boxes, Degraded flag) rather than erroring
// — the detect package's anytime contract.
func (s *Server) runDetect(j *job) {
	if j.tr != nil {
		j.tr.AddSpan("queue_wait", j.enq, time.Now())
	}
	scorer, version, err := s.scorerFor(j)
	if err != nil {
		j.resp <- result{err: err}
		return
	}
	// The sweep hangs its own span tree (per-level spans, the parallel
	// scoring region) under the trace carried by the context.
	ctx := trace.NewContext(j.ctx, j.tr)
	boxes, stats, err := detect.Sweep(ctx, j.img, scorer, s.cfg.DetectParams)
	if j.tr != nil {
		j.tr.SetAttr("model_version", strconv.FormatUint(version, 10))
	}
	j.resp <- result{boxes: boxes, stats: stats, version: version, tenant: j.tenant, err: err}
}

// scorerFor resolves the job's scoring model — the tenant's live version
// or the registry's — and its cached window scorer. Dispatcher goroutine
// only (scorer builds fork pipeline state).
func (s *Server) scorerFor(j *job) (detect.WindowScorer, uint64, error) {
	if j.tenant == "" {
		live := s.reg.Live()
		if live == nil {
			return nil, 0, fmt.Errorf("no live model")
		}
		sc, err := s.detectScorer(live, j.tr)
		return sc, live.ID, err
	}
	v, m, err := s.cfg.Tenants.Model(j.tenant)
	if err != nil {
		return nil, 0, err
	}
	obsTenantReqs.Inc()
	sc, err := s.tenantDetectScorer(j.tenant, v.ID, m, j.tr)
	return sc, v.ID, err
}

// detectScorer returns a sweep scorer for the given live version,
// rebuilding the cached one after a swap. DetectScorer forks pipeline
// state, so it must run on the dispatcher goroutine — and does: the only
// caller is scorerFor.
func (s *Server) detectScorer(live *registry.Version, tr *trace.Trace) (detect.WindowScorer, error) {
	// Version IDs start at 1, so the zero scorerVer always misses first.
	if s.scorerVer != live.ID {
		sp := tr.StartSpan("scorer_build")
		s.scorer, s.scorerErr = s.cfg.Pipeline.DetectScorer(live.Model, s.cfg.DetectWin)
		s.scorerVer = live.ID
		sp.End()
		obsScorerSwaps.Inc()
	}
	return s.scorer, s.scorerErr
}

// tenantScorer is one cached per-tenant sweep scorer, valid while the
// tenant's live version stays ver.
type tenantScorer struct {
	ver    uint64
	scorer detect.WindowScorer
	err    error
}

// tenantScorerCap bounds the per-tenant scorer cache: with thousands of
// tenants resident the scorers (which hold forked pipeline state) must
// not grow without bound the way compact blobs may.
const tenantScorerCap = 256

// tenantDetectScorer returns the tenant's cached sweep scorer, rebuilding
// it after that tenant's live version moved. Dispatcher goroutine only.
func (s *Server) tenantDetectScorer(id string, ver uint64, m *hdc.Model, tr *trace.Trace) (detect.WindowScorer, error) {
	if c := s.tenantScorers[id]; c != nil && c.ver == ver {
		return c.scorer, c.err
	}
	if len(s.tenantScorers) >= tenantScorerCap {
		// Wholesale reset: a full cache means detect traffic churned past
		// the working set, and rebuilding a scorer costs milliseconds —
		// cheaper than tracking per-entry recency on the hot path.
		clear(s.tenantScorers)
	}
	sp := tr.StartSpan("scorer_build")
	sc, err := s.cfg.Pipeline.DetectScorer(m, s.cfg.DetectWin)
	sp.End()
	obsScorerSwaps.Inc()
	s.tenantScorers[id] = &tenantScorer{ver: ver, scorer: sc, err: err}
	return sc, err
}
