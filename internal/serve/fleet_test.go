package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/online"
)

// TestServeFleetEndpoints drives the replica side of the fleet feedback
// plane end-to-end: /delta starts empty, fills from mis-predicted
// feedback, and keys itself on the fingerprint /models/export advertises;
// a pushed snapshot round-trips through the adoption gate.
func TestServeFleetEndpoints(t *testing.T) {
	_, ts, _ := onlineServer(t)
	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(9)))

	// Before any feedback the accumulator does not exist yet.
	resp, err := http.Get(ts.URL + "/delta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty delta status %d, want 204", resp.StatusCode)
	}

	// Ask the model what it calls the image, then feed back the opposite:
	// guaranteed mis-predictions, the only samples that carry delta
	// evidence.
	code, data := postPGM(t, ts.URL+"/predict", img)
	if code != http.StatusOK {
		t.Fatalf("predict status %d (%s)", code, data)
	}
	var pred PredictResponse
	if err := json.Unmarshal(data, &pred); err != nil {
		t.Fatal(err)
	}
	wrong := 1 - pred.Label
	for i := 0; i < 6; i++ {
		if code, data := postPGM(t, ts.URL+"/feedback?label="+strconv.Itoa(wrong), img); code != http.StatusAccepted {
			t.Fatalf("feedback status %d (%s)", code, data)
		}
	}
	// Feedback drains through the trainer goroutine; poll until evidence
	// lands rather than sleeping a fixed amount.
	var delta *online.Delta
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/delta")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			d, err := online.DecodeDelta(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if d.Samples() > 0 {
				delta = d
				break
			}
		} else {
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	if delta == nil {
		t.Fatal("delta never accumulated any feedback evidence")
	}
	if delta.Replica != "local" || delta.Epoch == 0 {
		t.Fatalf("delta identity = (%q, epoch %d), want (local, >0)", delta.Replica, delta.Epoch)
	}

	// Export: snapshot + fingerprint headers, and the delta's base must be
	// exactly the fingerprint of the model the replica serves.
	resp, err = http.Get(ts.URL + "/models/export")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d err %v", resp.StatusCode, err)
	}
	if resp.Header.Get(versionHeader) == "" {
		t.Fatal("export missing version header")
	}
	_, model, err := hdface.DecodeSnapshot(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("exported snapshot does not decode: %v", err)
	}
	wantFP := resp.Header.Get(fingerprintHeader)
	if gotFP := model.Fingerprint(); wantFP != fingerprintHex(gotFP) {
		t.Fatalf("fingerprint header %s, decoded model %016x", wantFP, gotFP)
	}
	if delta.Base != model.Fingerprint() {
		t.Fatalf("delta base %016x, live model fingerprint %016x", delta.Base, model.Fingerprint())
	}

	// Push the exported model straight back: identical to live, so the
	// gate must not reject it (ties are adoptable), and the delta rebases.
	resp, err = http.Post(ts.URL+"/models/push", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var pr PushResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Version == 0 {
		t.Fatalf("push status %d outcome %q version %d, want 200 + promoted version", resp.StatusCode, pr.Outcome, pr.Version)
	}
	if pr.Outcome != "promoted" && pr.Outcome != "no_holdout" {
		t.Fatalf("push outcome %q", pr.Outcome)
	}

	// Garbage push must be a clean 400, not a panic or a poisoned model.
	resp, err = http.Post(ts.URL+"/models/push", "application/octet-stream",
		bytes.NewReader([]byte("not a snapshot")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage push status %d, want 400", resp.StatusCode)
	}

	// The healthz delta block reflects the (rebased) accumulator.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Delta == nil || h.Delta.Replica != "local" {
		t.Fatalf("healthz delta = %+v, want the local accumulator", h.Delta)
	}
}

func fingerprintHex(fp uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[fp&0xf]
		fp >>= 4
	}
	return string(out)
}

// TestServeDeltaDisabled: without a trainer the feedback plane is 501.
func TestServeDeltaDisabled(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	resp, err := http.Get(ts.URL + "/delta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("delta without trainer: status %d, want 501", resp.StatusCode)
	}
}
