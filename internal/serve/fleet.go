package serve

// The fleet feedback plane: three endpoints a router uses to run
// distributed online learning across replicas. GET /delta exports the
// replica's local feedback accumulator, GET /models/export ships the live
// model as an hdface-model/v1 snapshot, and POST /models/push offers a
// (merged) candidate to the replica's adoption gate. All three are
// replica-to-router surface, not client surface — but they are safe to
// expose: deltas and snapshots carry no raw images, and push is gated.

import (
	"fmt"
	"net/http"

	"hdface"
	"hdface/internal/obs"
	"hdface/internal/registry"
)

var (
	obsDeltaPulls = obs.NewCounter("hdface_serve_delta_pulls_total",
		"GET /delta exports of the local feedback accumulator")
	obsModelPushes = obs.NewCounter("hdface_serve_model_pushes_total",
		"POST /models/push candidates offered to the adoption gate")
	obsModelExports = obs.NewCounter("hdface_serve_model_exports_total",
		"GET /models/export snapshots served")
)

// fingerprintHeader carries the model content fingerprint on
// /models/export replies so a router can key merge epochs without
// decoding the snapshot.
const fingerprintHeader = "X-Hdface-Model-Fingerprint"

// versionHeader carries the (replica-local) registry version on
// /models/export replies.
const versionHeader = "X-Hdface-Model-Version"

// PushResponse is the POST /models/push reply.
type PushResponse struct {
	// Outcome is "promoted", "no_holdout" (adopted without held-out
	// evidence) or, with status 409, "gate_rejected".
	Outcome string `json:"outcome"`
	Version uint64 `json:"version,omitempty"`
}

// handleDelta streams the local feedback accumulator in its binary wire
// form. An empty accumulator (no feedback yet) is 204; a server without a
// trainer has no feedback plane at all, 501.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /delta")
		return
	}
	if s.trainer == nil {
		writeErr(w, http.StatusNotImplemented, "online learning is disabled")
		return
	}
	d := s.trainer.Delta()
	if d == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	obsDeltaPulls.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := d.Encode(w); err != nil {
		// Headers are gone; all we can do is drop the connection early.
		return
	}
}

// handleExport ships the live model as a snapshot, fingerprint and
// version in headers, so a router can rebase its merge on exactly what
// this replica serves.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /models/export")
		return
	}
	live := s.reg.Live()
	if live == nil {
		writeErr(w, http.StatusConflict, "no live model")
		return
	}
	cfg, ok := s.reg.Config()
	if !ok {
		cfg = s.cfg.Pipeline.Config()
	}
	obsModelExports.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(versionHeader, fmt.Sprintf("%d", live.ID))
	w.Header().Set(fingerprintHeader, fmt.Sprintf("%016x", live.Model.Fingerprint()))
	if err := hdface.EncodeSnapshot(w, cfg, live.Model); err != nil {
		return // mid-stream failure; connection drop is the only signal left
	}
}

// handlePush accepts an hdface-model/v1 snapshot as a candidate model.
// With a trainer the candidate must pass the adoption gate (shadow
// evaluation against the local holdout, AdoptEpsilon tolerance) — a
// rejection is 409 with outcome gate_rejected, deliberately not an error:
// the gate doing its job is a success for the fleet. Without a trainer
// the push promotes directly (an operator shipping a model to a plain
// serving replica).
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /models/push")
		return
	}
	cfg, model, err := hdface.DecodeSnapshot(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decode snapshot: %v", err)
		return
	}
	if err := registry.Compatible(cfg, s.cfg.Pipeline.Config()); err != nil {
		writeErr(w, http.StatusConflict, "pushed model incompatible: %v", err)
		return
	}
	obsModelPushes.Inc()
	if s.trainer == nil {
		id, err := s.reg.Put(cfg, model)
		if err == nil {
			err = s.reg.Promote(id)
		}
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "push: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, PushResponse{Outcome: "promoted", Version: id})
		return
	}
	id, outcome, err := s.trainer.Adopt(cfg, model)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "push: %v", err)
		return
	}
	if outcome == "gate_rejected" {
		writeJSON(w, http.StatusConflict, PushResponse{Outcome: outcome})
		return
	}
	writeJSON(w, http.StatusOK, PushResponse{Outcome: outcome, Version: id})
}
