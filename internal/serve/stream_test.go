package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/track"
)

// streamBody packs scenario frames into the /stream wire format.
func streamBody(t *testing.T, frames []dataset.SequenceFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, fr := range frames {
		if err := WriteFrame(&buf, pgmBytes(t, fr.Image)); err != nil {
			t.Fatal(err)
		}
	}
	if err := CloseFrames(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postStream sends a frame stream and decodes every NDJSON event.
func postStream(t *testing.T, url string, body []byte) []StreamEvent {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("decode event %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func streamServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.FrameDeadline == 0 {
		// A deadline the sweep cannot blow even under the race detector:
		// a degraded frame keeps best-so-far boxes, which would make the
		// determinism assertions timing-dependent.
		cfg.FrameDeadline = 20 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func TestStreamEndToEnd(t *testing.T) {
	p := trainedPipeline(t, 2)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest()})
	frames := dataset.GenerateScenario(dataset.ScenarioSpec{Frames: 8, Subjects: 2, Seed: 11})
	events := postStream(t, ts.URL+"/stream", streamBody(t, frames))

	if len(events) != 9 {
		t.Fatalf("got %d events, want 8 frames + summary", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "summary" || last.Summary == nil {
		t.Fatalf("final event %+v is not a summary", last)
	}
	if last.Summary.Schema != StreamSchema || last.Summary.Frames != 8 {
		t.Fatalf("summary %+v", last.Summary)
	}
	sawTrack := false
	for i, ev := range events[:8] {
		if ev.Type != "frame" || ev.Frame != i {
			t.Fatalf("event %d: %+v", i, ev)
		}
		if len(ev.Tracks) > 0 {
			sawTrack = true
		}
	}
	if !sawTrack {
		t.Fatal("no frame ever produced a track")
	}
	if len(last.Summary.Tracks) == 0 {
		t.Fatal("summary lists no tracks")
	}
	for _, tr := range last.Summary.Tracks {
		if tr.Observations <= 0 || tr.LastFrame < tr.FirstFrame {
			t.Fatalf("track summary %+v", tr)
		}
	}
	if last.Summary.FPS <= 0 || last.Summary.P99MS <= 0 {
		t.Fatalf("summary rates %+v", last.Summary)
	}
}

// detectParamsForTest keeps sweeps cheap: single scale, coarse stride.
func detectParamsForTest() detect.Params {
	return detect.Params{Scales: []float64{1}, Stride: 8}
}

func TestStreamDeterministicReplay(t *testing.T) {
	p := trainedPipeline(t, 2)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest()})
	frames := dataset.GenerateScenario(dataset.ScenarioSpec{Frames: 6, Subjects: 2, Seed: 13})
	body := streamBody(t, frames)

	key := func(events []StreamEvent) string {
		var b bytes.Buffer
		for _, ev := range events {
			if ev.Type != "frame" {
				continue
			}
			fmt.Fprintf(&b, "%d:", ev.Frame)
			for _, tr := range ev.Tracks {
				fmt.Fprintf(&b, "%d@%v/%.6f;", tr.ID, tr.Box, tr.Score)
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	a := key(postStream(t, ts.URL+"/stream", body))
	b := key(postStream(t, ts.URL+"/stream", body))
	if a != b {
		t.Fatalf("identical streams diverged:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("no frame events")
	}
}

func TestStreamBadFrameContinues(t *testing.T) {
	p := trainedPipeline(t, 1)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest()})
	frames := dataset.GenerateScenario(dataset.ScenarioSpec{Frames: 2, Subjects: 1, Seed: 7})

	var buf bytes.Buffer
	if err := WriteFrame(&buf, pgmBytes(t, frames[0].Image)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte("not a pgm at all")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, pgmBytes(t, frames[1].Image)); err != nil {
		t.Fatal(err)
	}
	if err := CloseFrames(&buf); err != nil {
		t.Fatal(err)
	}
	events := postStream(t, ts.URL+"/stream", buf.Bytes())
	if len(events) != 4 {
		t.Fatalf("got %d events, want frame, error, frame, summary", len(events))
	}
	if events[0].Type != "frame" || events[0].Frame != 0 {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[1].Type != "error" || events[1].Code != http.StatusBadRequest || events[1].Frame != 1 {
		t.Fatalf("event 1: %+v", events[1])
	}
	if events[2].Type != "frame" || events[2].Frame != 2 {
		t.Fatalf("event 2: %+v", events[2])
	}
	sum := events[3].Summary
	if sum == nil || sum.Frames != 2 || sum.Errors != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestStreamTinyDeadlineDegrades(t *testing.T) {
	p := trainedPipeline(t, 1)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest()})
	frames := dataset.GenerateScenario(dataset.ScenarioSpec{Frames: 3, Subjects: 1, Seed: 19})
	events := postStream(t, ts.URL+"/stream?frame_deadline=1ns", streamBody(t, frames))
	degraded := 0
	for _, ev := range events {
		if ev.Type == "frame" && ev.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatalf("no frame degraded under a 1ns budget: %+v", events)
	}
	if sum := events[len(events)-1].Summary; sum == nil || sum.Degraded != degraded {
		t.Fatalf("summary degraded count mismatch: %+v", sum)
	}
}

func TestStreamEmotionSummaries(t *testing.T) {
	p := trainedPipeline(t, 2)
	emo := trainEmotionModel(t, p)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest(), Emotion: emo})
	frames := dataset.GenerateScenario(dataset.ScenarioSpec{Frames: 6, Subjects: 1, Seed: 23})
	events := postStream(t, ts.URL+"/stream", streamBody(t, frames))

	sawEmotion := false
	for _, ev := range events {
		if ev.Type != "frame" {
			continue
		}
		for _, tr := range ev.Tracks {
			if tr.Emotion != "" {
				sawEmotion = true
			}
		}
	}
	if !sawEmotion {
		t.Fatal("no frame track carried an emotion label")
	}
	sum := events[len(events)-1].Summary
	if sum == nil {
		t.Fatal("no summary")
	}
	labelled := false
	for _, tr := range sum.Tracks {
		if tr.Dominant != "" && len(tr.Emotions) > 0 {
			labelled = true
			n := 0
			for _, c := range tr.Emotions {
				n += c
			}
			if n != tr.Observations {
				t.Fatalf("track %d: %d emotion votes over %d observations", tr.ID, n, tr.Observations)
			}
		}
	}
	if !labelled {
		t.Fatalf("no summarised track carries emotions: %+v", sum.Tracks)
	}
}

func TestStreamMethodAndConfigErrors(t *testing.T) {
	p := trainedPipeline(t, 1)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest()})
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /stream: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/stream?frame_deadline=banana", "", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad frame_deadline: %d", resp.StatusCode)
	}
	// An emotion model of the wrong dimensionality is a config error.
	if _, err := New(Config{Pipeline: p, Emotion: trainEmotionModelD(t, p, 256)}); err == nil {
		t.Fatal("mismatched emotion model accepted")
	}
}

func TestStreamErrEventMapping(t *testing.T) {
	det := &track.DetectionError{Index: 3, Reason: "detection without feature"}
	ev := streamErrEvent(fmt.Errorf("step: %w", det))
	if ev.Type != "error" || ev.Code != http.StatusBadRequest {
		t.Fatalf("tracker error mapped to %+v", ev)
	}
	ev = streamErrEvent(errors.New("disk on fire"))
	if ev.Code != http.StatusInternalServerError {
		t.Fatalf("server error mapped to %+v", ev)
	}
}

func TestStreamFramingProtocol(t *testing.T) {
	p := trainedPipeline(t, 1)
	_, ts := streamServer(t, Config{Pipeline: p, DetectParams: detectParamsForTest()})
	// A corrupt length prefix ends the stream with a 400-class event.
	events := postStream(t, ts.URL+"/stream", []byte("xyz\n"))
	if len(events) != 2 || events[0].Type != "error" || events[0].Code != http.StatusBadRequest {
		t.Fatalf("events %+v", events)
	}
	if events[1].Type != "summary" || events[1].Summary.Frames != 0 {
		t.Fatalf("summary %+v", events[1])
	}
	// A truncated frame body likewise.
	events = postStream(t, ts.URL+"/stream", []byte("100\nshort"))
	if len(events) != 2 || events[0].Type != "error" {
		t.Fatalf("truncated frame events %+v", events)
	}
}

// trainEmotionModel fits a 7-class emotion classifier in the pipeline's
// feature space so /stream can label temporal bundles. It runs before the
// server exists, so using the pipeline directly here is safe.
func trainEmotionModel(t *testing.T, p *hdface.Pipeline) *hdc.Model {
	t.Helper()
	r := hv.NewRNG(97)
	var feats []*hv.Vector
	var labels []int
	for e := 0; e < int(dataset.NumEmotions); e++ {
		for i := 0; i < 3; i++ {
			img := dataset.RenderFace(48, 48, dataset.Emotion(e), r)
			feats = append(feats, p.Feature(img))
			labels = append(labels, e)
		}
	}
	m, err := hdc.Train(feats, labels, int(dataset.NumEmotions), hdc.TrainOpts{Epochs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// trainEmotionModelD returns an (untrained) emotion-shaped model of the
// given dimensionality, for config-validation tests.
func trainEmotionModelD(t *testing.T, _ *hdface.Pipeline, d int) *hdc.Model {
	t.Helper()
	return hdc.NewModel(d, int(dataset.NumEmotions))
}
