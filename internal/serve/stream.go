package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
	"hdface/internal/track"
)

// writeNDJSON writes one event line; NDJSON framing is json.Encoder's
// one-value-per-line output.
func writeNDJSON(w io.Writer, v any) { json.NewEncoder(w).Encode(v) }

// POST /stream turns the daemon into a tracking service: the request body is
// a sequence of PGM frames, the response a stream of NDJSON events — one per
// frame with detected boxes and stable track IDs, then one summary.
//
// The wire format is length-prefixed on both sides of the PGM decoder
// because ReadPGM buffers past a frame's end: each frame is an ASCII decimal
// byte count terminated by '\n' followed by exactly that many PGM bytes; a
// zero count (or EOF at a prefix) ends the stream. The client writes frames
// while reading events, so the stream is flow-controlled by HTTP itself.
//
// Each frame runs under its own anytime deadline (Config.FrameDeadline,
// overridable per stream with ?frame_deadline=): a frame that blows the
// budget degrades to best-so-far boxes — the detect package's contract —
// instead of stalling every frame behind it. Frames go through the same
// admission queue as everything else; a full queue drops the frame with a
// 503-class event and the stream keeps going.

var (
	obsStreamReqs   = obs.NewCounter("hdface_serve_stream_requests_total", "accepted /stream requests")
	obsStreamFrames = obs.NewCounter("hdface_serve_stream_frames_total", "frames processed by /stream")
	obsStreamErrors = obs.NewCounter("hdface_serve_stream_frame_errors_total", "per-frame error events emitted by /stream")
)

// StreamSchema identifies the /stream summary JSON layout.
const StreamSchema = "hdface-stream/v1"

// StreamTrackJSON is one tracked face in a frame event.
type StreamTrackJSON struct {
	ID    int     `json:"id"`
	Box   [4]int  `json:"box"` // x0, y0, x1, y1
	Score float64 `json:"score"`
	// Coasted marks a confirmed track (two or more matched detections) the
	// sweep missed this frame: the tracker is holding its last box through
	// the dropout. Box is that held box; Score is zero.
	Coasted bool `json:"coasted,omitempty"`
	// Emotion is the dominant class of the track's temporally bundled
	// appearance (present only when the server has an emotion model).
	Emotion string `json:"emotion,omitempty"`
}

// StreamEvent is one NDJSON line of the POST /stream response. Type is
// "frame" (Tracks et al. set), "error" (Code/Error set; the stream
// continues unless the framing itself broke) or "summary" (Summary set,
// always the final event).
type StreamEvent struct {
	Type         string            `json:"type"`
	Frame        int               `json:"frame"`
	Tracks       []StreamTrackJSON `json:"tracks,omitempty"`
	Degraded     bool              `json:"degraded,omitempty"`
	Windows      int64             `json:"windows,omitempty"`
	ElapsedMS    float64           `json:"elapsed_ms,omitempty"`
	ModelVersion uint64            `json:"model_version,omitempty"`
	TraceID      string            `json:"trace_id,omitempty"`
	Code         int               `json:"code,omitempty"` // error events: HTTP-style class
	Error        string            `json:"error,omitempty"`
	Summary      *StreamSummary    `json:"summary,omitempty"`
}

// StreamTrackSummary is one track's whole-stream identity record. Frame
// indices count processed frames (frames that produced a frame event).
// MaxGap is the longest run of processed frames the track survived without
// an observation — a track that outlived an occlusion shows a positive gap.
type StreamTrackSummary struct {
	ID           int            `json:"id"`
	FirstFrame   int            `json:"first_frame"`
	LastFrame    int            `json:"last_frame"`
	Observations int            `json:"observations"`
	MaxGap       int            `json:"max_gap"`
	Emotions     map[string]int `json:"emotions,omitempty"` // per-frame dominant-emotion counts
	Dominant     string         `json:"dominant_emotion,omitempty"`
}

// StreamSummary is the final event's payload: throughput, per-frame latency
// quantiles and every track the stream ever created.
type StreamSummary struct {
	Schema    string               `json:"schema"`
	Frames    int                  `json:"frames"`
	Errors    int                  `json:"errors"`
	Degraded  int                  `json:"degraded"`
	FPS       float64              `json:"fps"`
	P50MS     float64              `json:"p50_ms"`
	P99MS     float64              `json:"p99_ms"`
	Tracks    []StreamTrackSummary `json:"tracks"`
	ElapsedMS float64              `json:"elapsed_ms"`
}

// trackBundle is one track's temporal identity memory: every matched
// appearance hypervector is majority-bundled, so the bundle converges on the
// identity's stable signature while per-frame noise cancels — the same
// robustness argument as the classifier's class accumulators, applied over
// time instead of over a training set.
type trackBundle struct {
	acc    *hv.Accumulator
	first  *hv.Vector // deterministic tie-break for the majority sign
	counts []int      // per-frame dominant emotion class counts
}

// streamState is one connection's tracking state. The HTTP handler owns it
// except while a frame job is in flight on the dispatcher; the handler
// submits the next frame only after reading the previous result, so
// ownership alternates without locks.
type streamState struct {
	tracker *track.Tracker
	bundles map[int]*trackBundle

	// Handler-side bookkeeping for the summary.
	start     time.Time
	frames    int
	errors    int
	degraded  int
	latencies []time.Duration
}

func (s *Server) newStreamState() *streamState {
	return &streamState{
		// The tracker seed derives from the pipeline seed, so two replicas
		// of the same config assign identical IDs to identical streams.
		tracker: track.New(s.cfg.Track, s.cfg.Pipeline.Config().Seed^0x57e4),
		bundles: map[int]*trackBundle{},
		start:   time.Now(),
	}
}

// readFrame reads one length-prefixed frame. io.EOF means the stream ended
// cleanly (EOF at a prefix boundary or an explicit zero length); any other
// error means the framing is broken and the stream cannot resync.
func readFrame(br *bufio.Reader, maxBytes int64) ([]byte, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && strings.TrimSpace(line) == "" {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("read frame length: %v", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("frame length %q: want a non-negative decimal", strings.TrimSpace(line))
	}
	if n == 0 {
		return nil, io.EOF
	}
	if int64(n) > maxBytes {
		return nil, fmt.Errorf("frame length %d exceeds limit %d", n, maxBytes)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("read %d-byte frame: %v", n, err)
	}
	return buf, nil
}

// WriteFrame writes one frame of the /stream wire format. CloseFrames ends
// the stream explicitly (useful when the transport cannot signal EOF).
func WriteFrame(w io.Writer, pgm []byte) error {
	if _, err := fmt.Fprintf(w, "%d\n", len(pgm)); err != nil {
		return err
	}
	_, err := w.Write(pgm)
	return err
}

// CloseFrames writes the explicit end-of-stream marker.
func CloseFrames(w io.Writer) error {
	_, err := io.WriteString(w, "0\n")
	return err
}

// streamErrEvent maps a frame-level failure to its event. A tracker
// *DetectionError is a client-class problem (400): the tracker rejected the
// frame unchanged, so the stream continues. Anything else is a server fault.
func streamErrEvent(err error) *StreamEvent {
	var det *track.DetectionError
	if errors.As(err, &det) {
		return &StreamEvent{Type: "error", Code: http.StatusBadRequest, Error: err.Error()}
	}
	return &StreamEvent{Type: "error", Code: http.StatusInternalServerError, Error: err.Error()}
}

// emotionName resolves an emotion class index to its label.
func (s *Server) emotionName(i int) string {
	if s.cfg.Emotion != nil && s.cfg.Emotion.K == int(dataset.NumEmotions) {
		return dataset.Emotion(i).String()
	}
	return "class" + strconv.Itoa(i)
}

// bundleEmotion folds one matched appearance into the track's temporal
// bundle and returns the bundle's current dominant emotion. Dispatcher only.
func (s *Server) bundleEmotion(st *streamState, id int, f *hv.Vector) string {
	b := st.bundles[id]
	if b == nil {
		b = &trackBundle{
			acc:    hv.NewAccumulator(f.D()),
			first:  f.Clone(),
			counts: make([]int, s.cfg.Emotion.K),
		}
		st.bundles[id] = b
	}
	b.acc.Add(f)
	bundled, _ := b.acc.Sign(b.first)
	scores := s.cfg.Emotion.Scores(bundled)
	best := 0
	for c, sc := range scores {
		if sc > scores[best] {
			best = c
		}
	}
	b.counts[best]++
	return s.emotionName(best)
}

// runStream executes one stream frame on the dispatcher: sweep under the
// frame deadline, extract an appearance hypervector per box, step the
// tracker, optionally update emotion bundles. Errors that leave the tracker
// untouched come back as error events, not failures, so one bad frame never
// kills a stream.
func (s *Server) runStream(j *job) {
	st := j.stream
	if j.tr != nil {
		j.tr.AddSpan("queue_wait", j.enq, time.Now())
	}
	scorer, version, err := s.scorerFor(j)
	if err != nil {
		j.resp <- result{err: err}
		return
	}
	ctx := trace.NewContext(j.ctx, j.tr)
	boxes, stats, err := detect.Sweep(ctx, j.img, scorer, s.cfg.DetectParams)
	if err != nil {
		j.resp <- result{err: err}
		return
	}

	// One appearance hypervector per box: crop (edge-clamped) and run the
	// full feature front-end. Content-hash reseeding keeps this a pure
	// function of the crop, which is what makes stream replays byte-equal.
	type hit struct {
		score float64
		feat  *hv.Vector
	}
	sp := j.tr.StartSpan("track")
	feats := make(map[[4]int]hit, len(boxes))
	dets := make([]track.Detection, 0, len(boxes))
	for _, b := range boxes {
		if b.Score < s.cfg.MinTrackScore {
			continue
		}
		crop := j.img.Crop(b.X0, b.Y0, b.X1-b.X0, b.Y1-b.Y0)
		f := s.cfg.Pipeline.Feature(crop)
		box := [4]int{b.X0, b.Y0, b.X1, b.Y1}
		dets = append(dets, track.Detection{Box: box, Feature: f})
		feats[box] = hit{b.Score, f}
	}
	touched, serr := st.tracker.StepErr(dets)
	if serr != nil {
		sp.End()
		j.resp <- result{event: streamErrEvent(serr), stats: stats, version: version}
		return
	}
	evTracks := make([]StreamTrackJSON, 0, len(touched))
	stepped := make(map[int]bool, len(touched))
	for _, tr := range touched {
		stepped[tr.ID] = true
		box := tr.Last()
		h := feats[box]
		tj := StreamTrackJSON{ID: tr.ID, Box: box, Score: h.score}
		if s.cfg.Emotion != nil && h.feat != nil {
			tj.Emotion = s.bundleEmotion(st, tr.ID, h.feat)
		}
		evTracks = append(evTracks, tj)
	}
	// Confirmed tracks the sweep missed this frame coast: the event carries
	// their held box so a one-frame dropout (or an occlusion the tracker is
	// riding out) never breaks the client-visible trajectory. Unconfirmed
	// tracks — a single detection so far — stay silent; one-shot false
	// positives should not echo for MaxMisses frames.
	for _, tr := range st.tracker.Active() {
		if stepped[tr.ID] || len(tr.Boxes) < 2 {
			continue
		}
		evTracks = append(evTracks, StreamTrackJSON{ID: tr.ID, Box: tr.Last(), Coasted: true})
	}
	sort.Slice(evTracks, func(a, b int) bool { return evTracks[a].ID < evTracks[b].ID })
	sp.End()
	if j.tr != nil {
		j.tr.SetAttr("model_version", strconv.FormatUint(version, 10))
	}
	j.resp <- result{
		event: &StreamEvent{
			Type:     "frame",
			Tracks:   evTracks,
			Degraded: stats.Degraded,
			Windows:  stats.Windows,
		},
		stats:   stats,
		version: version,
	}
}

// summary assembles the final event from the finished stream's state.
func (st *streamState) summary(s *Server) *StreamSummary {
	elapsed := time.Since(st.start)
	sum := &StreamSummary{
		Schema:    StreamSchema,
		Frames:    st.frames,
		Errors:    st.errors,
		Degraded:  st.degraded,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if elapsed > 0 {
		sum.FPS = float64(st.frames) / elapsed.Seconds()
	}
	sum.P50MS = durPercentile(st.latencies, 0.50)
	sum.P99MS = durPercentile(st.latencies, 0.99)
	for _, tr := range st.tracker.All() {
		ts := StreamTrackSummary{
			ID:           tr.ID,
			FirstFrame:   tr.Frames[0],
			LastFrame:    tr.Frames[len(tr.Frames)-1],
			Observations: len(tr.Frames),
		}
		for i := 1; i < len(tr.Frames); i++ {
			if gap := tr.Frames[i] - tr.Frames[i-1] - 1; gap > ts.MaxGap {
				ts.MaxGap = gap
			}
		}
		if b := st.bundles[tr.ID]; b != nil {
			ts.Emotions = map[string]int{}
			best := 0
			for c, n := range b.counts {
				if n == 0 {
					continue
				}
				ts.Emotions[s.emotionName(c)] = n
				if n > b.counts[best] {
					best = c
				}
			}
			if len(ts.Emotions) > 0 {
				ts.Dominant = s.emotionName(best)
			}
		}
		sum.Tracks = append(sum.Tracks, ts)
	}
	sort.Slice(sum.Tracks, func(a, b int) bool { return sum.Tracks[a].ID < sum.Tracks[b].ID })
	return sum
}

// durPercentile returns the p-th percentile of the latencies in ms.
func durPercentile(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// handleStream serves POST /stream. The response commits to 200 before the
// first frame is read — per-frame failures after that are in-band error
// events, the only honest option once NDJSON is flowing.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST a length-prefixed PGM frame stream")
		return
	}
	ten, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if ten == "" && s.reg.Live() == nil {
		writeErr(w, http.StatusConflict, "no live model")
		return
	}
	if ten != "" {
		if _, err := s.cfg.Tenants.Live(ten); err != nil {
			writeErr(w, tenantErrCode(err), "%v", err)
			return
		}
	}
	frameDeadline := s.cfg.FrameDeadline
	if q := r.URL.Query().Get("frame_deadline"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "frame_deadline %q: want a positive duration like 100ms", q)
			return
		}
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
		frameDeadline = d
	}
	obsStreamReqs.Inc()
	st := s.newStreamState()
	// Events interleave with body reads, so the HTTP/1 server must not
	// close the request body on the first response write. (HTTP/2 is
	// always full-duplex; there the call is a no-op error we can ignore.)
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	emit := func(ev *StreamEvent) {
		if ev.Type == "error" {
			st.errors++
			obsStreamErrors.Inc()
		}
		writeNDJSON(w, ev)
		flush()
	}

	// The body is intentionally not length-capped as a whole — streams are
	// long-lived by design; each frame is capped by MaxBodyBytes instead.
	br := bufio.NewReader(r.Body)
	for frame := 0; ; frame++ {
		data, err := readFrame(br, s.cfg.MaxBodyBytes)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Broken framing cannot resync: report and end the stream.
			emit(&StreamEvent{Type: "error", Frame: frame, Code: http.StatusBadRequest, Error: err.Error()})
			break
		}
		start := time.Now()
		tr := trace.New("stream", "")
		img, derr := imgproc.ReadPGM(bytes.NewReader(data))
		if derr != nil {
			tr.SetError(true)
			tr.Finish()
			emit(&StreamEvent{Type: "error", Frame: frame, Code: http.StatusBadRequest,
				Error: fmt.Sprintf("decode frame: %v", derr), TraceID: tr.ID()})
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), frameDeadline)
		j := &job{kind: kindStream, img: img, tenant: ten, ctx: ctx, resp: make(chan result, 1),
			tr: tr, enq: time.Now(), stream: st}
		if !s.enqueue(j) {
			cancel()
			obsRejected.Inc()
			tr.SetError(true)
			tr.Finish()
			emit(&StreamEvent{Type: "error", Frame: frame, Code: http.StatusServiceUnavailable,
				Error: "queue full", TraceID: tr.ID()})
			continue
		}
		res := <-j.resp
		cancel()
		lat := time.Since(start)
		obsStreamFrames.Inc()
		failed := res.err != nil || (res.event != nil && res.event.Type == "error")
		tr.SetError(failed)
		if res.event != nil && res.event.Degraded {
			tr.SetDegraded(true)
		}
		tr.Finish()
		s.sloStream.Observe(lat, failed)
		obsWinLatency.Observe(lat.Seconds())
		if res.err != nil {
			emit(&StreamEvent{Type: "error", Frame: frame, Code: http.StatusInternalServerError,
				Error: res.err.Error(), TraceID: tr.ID()})
			continue
		}
		ev := res.event
		ev.Frame = frame
		ev.ElapsedMS = float64(lat) / float64(time.Millisecond)
		ev.ModelVersion = res.version
		ev.TraceID = tr.ID()
		if ev.Type == "frame" {
			st.frames++
			if ev.Degraded {
				st.degraded++
			}
			st.latencies = append(st.latencies, lat)
		}
		emit(ev)
	}
	writeNDJSON(w, &StreamEvent{Type: "summary", Frame: st.frames, Summary: st.summary(s)})
	flush()
}
