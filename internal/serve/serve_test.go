package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/registry"
)

// trainedPipeline builds a small binary face/non-face pipeline.
func trainedPipeline(t *testing.T, workers int) *hdface.Pipeline {
	t.Helper()
	r := hv.NewRNG(31)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(48, 48, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(48, 48, r))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: 1024, Seed: 17, WorkingSize: 48, Workers: workers, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

// referenceTwin snapshots p and loads an independent behavioural twin, so
// tests can compare server responses against direct calls without sharing
// the (single-threaded) pipeline the dispatcher owns.
func referenceTwin(t *testing.T, p *hdface.Pipeline) *hdface.Pipeline {
	t.Helper()
	var buf bytes.Buffer
	if err := p.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := hdface.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func pgmBytes(t *testing.T, img *imgproc.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := img.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postPGM(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "image/x-portable-graymap", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestServeByteIdenticalConcurrent is the tentpole contract: concurrent
// /predict and /detect responses must be byte-identical to direct Pipeline
// calls, no matter how the micro-batcher groups them. Run with -race.
func TestServeByteIdenticalConcurrent(t *testing.T) {
	p := trainedPipeline(t, 2)
	ref := referenceTwin(t, p)

	// Expected answers from direct, sequential calls on the twin.
	r := hv.NewRNG(99)
	var probes []*imgproc.Image
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			probes = append(probes, dataset.RenderFace(48, 48, dataset.Emotion(r.Intn(7)), r))
		} else {
			probes = append(probes, dataset.RenderNonFace(48, 48, r))
		}
	}
	wantScores := make([][]float64, len(probes))
	for i, img := range probes {
		wantScores[i] = ref.Scores(img)
	}
	scene := dataset.GenerateScene(96, 96, 48, 1, 12).Image
	params := detect.Params{Win: 48, Stride: 24, Scales: []float64{1}, NMSIoU: 0.3, Workers: 2}
	refScorer, err := ref.DetectScorer(nil, 48)
	if err != nil {
		t.Fatal(err)
	}
	wantBoxes, _, err := detect.Sweep(context.Background(), scene, refScorer, params)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Pipeline: p, MaxBatch: 4, MaxQueue: 128, DetectParams: params})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sceneBody := pgmBytes(t, scene)
	bodies := make([][]byte, len(probes))
	for i := range probes {
		bodies[i] = pgmBytes(t, probes[i])
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*(len(probes)+1))
	for round := 0; round < rounds; round++ {
		for i := range probes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				code, data := postPGM(t, ts.URL+"/predict", bodies[i])
				if code != http.StatusOK {
					errs <- fmt.Errorf("predict %d: status %d: %s", i, code, data)
					return
				}
				var got PredictResponse
				if err := json.Unmarshal(data, &got); err != nil {
					errs <- fmt.Errorf("predict %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(got.Scores, wantScores[i]) {
					errs <- fmt.Errorf("predict %d: scores %v, want %v", i, got.Scores, wantScores[i])
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, data := postPGM(t, ts.URL+"/detect", sceneBody)
			if code != http.StatusOK {
				errs <- fmt.Errorf("detect: status %d: %s", code, data)
				return
			}
			var got DetectResponse
			if err := json.Unmarshal(data, &got); err != nil {
				errs <- fmt.Errorf("detect: %v", err)
				return
			}
			if got.Degraded {
				errs <- fmt.Errorf("detect degraded under no load pressure")
				return
			}
			if len(got.Boxes) != len(wantBoxes) {
				errs <- fmt.Errorf("detect: %d boxes, want %d", len(got.Boxes), len(wantBoxes))
				return
			}
			for i, b := range got.Boxes {
				w := wantBoxes[i]
				if b.X0 != w.X0 || b.Y0 != w.Y0 || b.X1 != w.X1 || b.Y1 != w.Y1 || b.Score != w.Score {
					errs <- fmt.Errorf("detect box %d: %+v, want %+v", i, b, w)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeAdmissionControl fills the queue of a server whose dispatcher
// never runs and checks the handler sheds load with 503.
func TestServeAdmissionControl(t *testing.T) {
	p := trainedPipeline(t, 1)
	cfg, err := Config{Pipeline: p, MaxQueue: 1}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// No dispatcher: the queue can only fill.
	reg, err := registry.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := reg.Put(p.Config(), p.Model())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(id); err != nil {
		t.Fatal(err)
	}
	s := &Server{cfg: cfg, reg: reg, queue: make(chan *job, cfg.MaxQueue), done: make(chan struct{})}
	if !s.enqueue(&job{kind: kindPredict, resp: make(chan result, 1)}) {
		t.Fatal("first job should be admitted")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	img := dataset.RenderFace(48, 48, 0, hv.NewRNG(1))
	resp, err := http.Post(ts.URL+"/predict", "image/x-portable-graymap",
		bytes.NewReader(pgmBytes(t, img)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d (%s), want 503", resp.StatusCode, data)
	}
	var e errorJSON
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("503 body %q should carry a JSON error", data)
	}
	// A shed request must tell the client when retrying is worthwhile: the
	// Retry-After hint, derived from queue backlog x flush interval, is
	// what the fleet router keys its backoff on.
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("503 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
}

// TestServeDrain checks the shutdown contract: Close answers every queued
// job, further requests are rejected, and no goroutines leak.
func TestServeDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p, MaxBatch: 2, MaxQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(2)))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := postPGM(t, ts.URL+"/predict", img)
			if code != http.StatusOK && code != http.StatusServiceUnavailable {
				t.Errorf("in-flight request got status %d", code)
			}
		}()
	}
	wg.Wait()
	ts.Close() // drains in-flight handlers, like http.Server.Shutdown
	s.Close()
	s.Close() // idempotent
	if s.enqueue(&job{kind: kindPredict, resp: make(chan result, 1)}) {
		t.Fatal("closed server admitted a job")
	}
	// The dispatcher and every helper goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestServeHealthAndMetrics covers the observability surface.
func TestServeHealthAndMetrics(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || !h.Trained || h.D != 1024 || h.QueueCap != 64 {
		t.Fatalf("healthz %+v", h)
	}

	// One real request so serving counters are live, then scrape.
	code, _ := postPGM(t, ts.URL+"/predict", pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(3))))
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"hdface_serve_predict_requests_total",
		"hdface_serve_batches_total",
		"hdface_serve_queue_depth",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestServeBadRequests covers the 4xx surface: bad method, garbage body,
// bad deadline, untrained pipeline.
func TestServeBadRequests(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/predict"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /predict: %d", resp.StatusCode)
		}
	}
	if code, _ := postPGM(t, ts.URL+"/predict", []byte("not a pgm")); code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", code)
	}
	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(4)))
	if code, _ := postPGM(t, ts.URL+"/detect?deadline=banana", img); code != http.StatusBadRequest {
		t.Fatalf("bad deadline: %d", code)
	}
	if code, _ := postPGM(t, ts.URL+"/detect?deadline=-5s", img); code != http.StatusBadRequest {
		t.Fatalf("negative deadline: %d", code)
	}

	untrained, err := New(Config{Pipeline: hdface.New(hdface.Config{D: 256, Workers: 1})})
	if err != nil {
		t.Fatal(err)
	}
	defer untrained.Close()
	tu := httptest.NewServer(untrained.Handler())
	defer tu.Close()
	if code, _ := postPGM(t, tu.URL+"/predict", img); code != http.StatusConflict {
		t.Fatalf("untrained predict: %d", code)
	}
	if code, _ := postPGM(t, tu.URL+"/detect", img); code != http.StatusConflict {
		t.Fatalf("untrained detect: %d", code)
	}
}

// TestServeDetectDeadlineDegrades pins the anytime behaviour end to end: an
// absurdly small budget must still answer 200, flagged degraded.
func TestServeDetectDeadlineDegrades(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	scene := pgmBytes(t, dataset.GenerateScene(192, 192, 48, 2, 5).Image)
	code, data := postPGM(t, ts.URL+"/detect?deadline=1ns", scene)
	if code != http.StatusOK {
		t.Fatalf("deadline-blown detect: status %d (%s)", code, data)
	}
	var got DetectResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Fatalf("1ns budget should degrade, got %+v", got)
	}
}
