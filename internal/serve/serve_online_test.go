package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/online"
	"hdface/internal/registry"
)

// secondVersion derives a distinguishable model from the pipeline's: a
// clone refined on deliberately flipped labels, so its scores (and often
// labels) differ from version 1 on the same inputs.
func secondVersion(t *testing.T, p *hdface.Pipeline) *hdc.Model {
	t.Helper()
	r := hv.NewRNG(77)
	var feats []*hv.Vector
	var labels []int
	for i := 0; i < 10; i++ {
		img := dataset.RenderFace(48, 48, dataset.Emotion(r.Intn(7)), r)
		feats = append(feats, referenceTwin(t, p).Feature(img))
		labels = append(labels, 0) // inverted: faces as class 0
	}
	m := p.Model().Clone()
	for e := 0; e < 5; e++ {
		if _, err := m.Update(feats, labels, hdc.TrainOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	m.Finalize(p.Config().Seed ^ 0xf1a1)
	return m
}

// TestServeHotSwapUnderLoad is the acceptance criterion for the registry:
// sustained concurrent /predict load while models are promoted and rolled
// back in a loop. Zero failed requests, and every response's scores must
// match exactly the version it claims to have been scored by. Run with
// -race.
func TestServeHotSwapUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	p := trainedPipeline(t, 1)
	ref := referenceTwin(t, p)
	s, err := New(Config{Pipeline: p, MaxBatch: 4, MaxQueue: 256})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	m2 := secondVersion(t, p)
	v2, err := reg.Put(p.Config(), m2)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth per version, computed on an independent twin.
	img := dataset.RenderFace(48, 48, 0, hv.NewRNG(5))
	feat := ref.Feature(img)
	want := map[uint64][]float64{
		1:  p.Model().Scores(feat),
		v2: m2.Scores(feat),
	}
	if reflect.DeepEqual(want[1], want[v2]) {
		t.Fatal("test vacuous: both versions score identically")
	}

	ts := httptest.NewServer(s.Handler())
	body := pgmBytes(t, img)

	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/predict", "image/x-portable-graymap", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				var pr PredictResponse
				dec := json.NewDecoder(resp.Body)
				code := resp.StatusCode
				if err := dec.Decode(&pr); err != nil {
					resp.Body.Close()
					errs <- "decode: " + err.Error()
					return
				}
				resp.Body.Close()
				if code != http.StatusOK {
					errs <- "non-200 during swap"
					return
				}
				exp, ok := want[pr.ModelVersion]
				if !ok {
					errs <- "response names an unknown model version"
					return
				}
				if !reflect.DeepEqual(pr.Scores, exp) {
					errs <- "scores do not match the claimed version"
					return
				}
			}
		}()
	}

	// Promote/rollback churn while the load runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := reg.Promote(v2); err != nil {
				errs <- err.Error()
				return
			}
			if _, err := reg.Rollback(); err != nil {
				errs <- err.Error()
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-done
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	ts.Close()
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestServeCloseConcurrent pins the satellite contract: Close is
// idempotent and safe from many goroutines at once. Run with -race.
func TestServeCloseConcurrent(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	s.Close() // still fine after everyone else finished
	if s.enqueue(&job{kind: kindPredict, resp: make(chan result, 1)}) {
		t.Fatal("closed server admitted a job")
	}
}

// onlineServer builds a server with feedback enabled over an in-memory
// registry.
func onlineServer(t *testing.T) (*Server, *httptest.Server, *hdface.Pipeline) {
	t.Helper()
	p := trainedPipeline(t, 1)
	reg, err := registry.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := online.New(online.Config{
		Registry: reg,
		Pipe:     p.Config(),
		// Small thresholds so tests can drive a full refinement round.
		BatchSize: 8, WindowSize: 8, HoldoutEvery: 3, MinHoldout: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p, Registry: reg, Online: tr, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		tr.Close()
	})
	return s, ts, p
}

func TestServeFeedbackEndpoints(t *testing.T) {
	_, ts, _ := onlineServer(t)
	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(9)))

	// PGM + label form.
	code, data := postPGM(t, ts.URL+"/feedback?label=1", img)
	if code != http.StatusAccepted {
		t.Fatalf("feedback status %d (%s), want 202", code, data)
	}
	// Bad label.
	if code, _ := postPGM(t, ts.URL+"/feedback?label=9", img); code != http.StatusBadRequest {
		t.Fatalf("out-of-range label: status %d, want 400", code)
	}
	if code, _ := postPGM(t, ts.URL+"/feedback?label=x", img); code != http.StatusBadRequest {
		t.Fatalf("garbage label: status %d, want 400", code)
	}

	// request_id correction form: predict first, then correct it.
	code, data = postPGM(t, ts.URL+"/predict", img)
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.RequestID == "" {
		t.Fatal("predict with online learning enabled returned no request_id")
	}
	if pr.ModelVersion == 0 {
		t.Fatal("predict response names no model version")
	}
	fb, _ := json.Marshal(feedbackJSON{RequestID: pr.RequestID, Label: 0})
	resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(fb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("correction status %d, want 202", resp.StatusCode)
	}
	// Unknown ID.
	fb, _ = json.Marshal(feedbackJSON{RequestID: "999999", Label: 0})
	resp, err = http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(fb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request_id status %d, want 404", resp.StatusCode)
	}
}

func TestServeFeedbackDisabled(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(9)))
	if code, _ := postPGM(t, ts.URL+"/feedback?label=1", img); code != http.StatusNotImplemented {
		t.Fatalf("feedback without a trainer: status %d, want 501", code)
	}
	// And predicts carry no request_id (nothing records them).
	code, data := postPGM(t, ts.URL+"/predict", img)
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.RequestID != "" {
		t.Fatalf("request_id %q issued with feedback disabled", pr.RequestID)
	}
}

func TestServeModelsEndpoints(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	m2 := secondVersion(t, p)
	v2, err := s.Registry().Put(p.Config(), m2)
	if err != nil {
		t.Fatal(err)
	}

	get := func(url string) (int, ModelsResponse) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mr ModelsResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, mr
	}
	post := func(url string) (int, ModelsResponse) {
		t.Helper()
		resp, err := http.Post(url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mr ModelsResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, mr
	}

	code, mr := get(ts.URL + "/models")
	if code != http.StatusOK || len(mr.Versions) != 2 || mr.Live != 1 {
		t.Fatalf("GET /models = %d %+v", code, mr)
	}
	if code, mr = post(ts.URL + "/models/promote?version=2"); code != http.StatusOK || mr.Live != v2 {
		t.Fatalf("promote = %d %+v", code, mr)
	}
	if code, mr = post(ts.URL + "/models/rollback"); code != http.StatusOK || mr.Live != 1 {
		t.Fatalf("rollback = %d %+v", code, mr)
	}
	if code, _ = post(ts.URL + "/models/promote?version=99"); code != http.StatusNotFound {
		t.Fatalf("promote unknown = %d, want 404", code)
	}
	if code, _ = post(ts.URL + "/models/rollback"); code != http.StatusConflict {
		t.Fatalf("rollback past history = %d, want 409", code)
	}
	// Health reflects the registry.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.LiveVersion != 1 || h.Versions != 2 || h.Online {
		t.Fatalf("healthz %+v", h)
	}
}

// TestServeFeedbackDrivesPromotion closes the loop end to end over HTTP:
// sustained corrective feedback must eventually produce a new promoted
// version that /predict then reports serving.
func TestServeFeedbackDrivesPromotion(t *testing.T) {
	s, ts, _ := onlineServer(t)
	r := hv.NewRNG(123)
	// The live model says face=1; feedback insists these faces are 0.
	deadline := time.Now().Add(10 * time.Second)
	for reg := s.Registry(); reg.Live().ID == 1 && time.Now().Before(deadline); {
		img := pgmBytes(t, dataset.RenderFace(48, 48, dataset.Emotion(r.Intn(7)), r))
		code, data := postPGM(t, ts.URL+"/feedback?label=0", img)
		if code != http.StatusAccepted && code != http.StatusServiceUnavailable {
			t.Fatalf("feedback status %d (%s)", code, data)
		}
	}
	live := s.Registry().Live()
	if live.ID == 1 {
		t.Fatal("sustained corrective feedback never promoted a new version")
	}
	// Every new prediction must now be attributed to the promoted model.
	img := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(9)))
	code, data := postPGM(t, ts.URL+"/predict", img)
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion == 1 {
		t.Fatal("predict still served by the rolled-over version")
	}
}
