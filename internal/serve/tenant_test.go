package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/tenant"
)

// postPGMTenant posts a PGM body with the tenant carried in the header.
func postPGMTenant(t *testing.T, url, ten string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "image/x-portable-graymap")
	if ten != "" {
		req.Header.Set(TenantHeader, ten)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestServeTenants is the end-to-end multi-tenancy contract: tenants are
// seeded from the registry's live model over HTTP, requests naming a
// tenant are attributed to that tenant's own version lineage, per-tenant
// feedback rounds promote new versions for that tenant only, and requests
// for different tenants batch freely with single-tenant traffic. Run with
// -race.
func TestServeTenants(t *testing.T) {
	p := trainedPipeline(t, 2)
	store, err := tenant.Open(tenant.Config{FeedbackBatch: 3, Retain: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p, Tenants: store, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := hv.NewRNG(7)
	face := pgmBytes(t, dataset.RenderFace(48, 48, dataset.Neutral, r))
	nonface := pgmBytes(t, dataset.RenderNonFace(48, 48, r))

	// Tenant'd request before the tenant exists: the caller's 404.
	code, body := postPGMTenant(t, ts.URL+"/predict", "acme", face)
	if code != http.StatusNotFound {
		t.Fatalf("predict for unknown tenant = %d %s, want 404", code, body)
	}
	// Malformed tenant IDs never reach the store.
	if code, body = postPGMTenant(t, ts.URL+"/predict", "../escape", face); code != http.StatusBadRequest {
		t.Fatalf("predict for bad tenant ID = %d %s, want 400", code, body)
	}

	// Seed two tenants from the registry's live model: one via the query
	// parameter, one via the header.
	resp, err := http.Post(ts.URL+"/tenants/seed?tenant=acme", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var seeded TenantSeedResponse
	if err := json.NewDecoder(resp.Body).Decode(&seeded); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || seeded.Tenant != "acme" || seeded.Version != 1 || seeded.Base != 1 {
		t.Fatalf("seed acme = %d %+v", resp.StatusCode, seeded)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/tenants/seed", nil)
	req.Header.Set(TenantHeader, "globex")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed globex = %d", resp.StatusCode)
	}

	// A tenant'd predict is attributed to the tenant's lineage and is
	// deterministic: identical requests produce identical bodies.
	var first PredictResponse
	code, body = postPGMTenant(t, ts.URL+"/predict", "acme", face)
	if code != http.StatusOK {
		t.Fatalf("tenant predict = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Tenant != "acme" || first.ModelVersion != 1 {
		t.Fatalf("tenant predict attribution = %+v, want tenant acme version 1", first)
	}
	if first.RequestID == "" {
		t.Fatal("tenant predict returned no request ID for feedback")
	}
	var again PredictResponse
	_, body2 := postPGMTenant(t, ts.URL+"/predict", "acme", face)
	if err := json.Unmarshal(body2, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Scores, again.Scores) || first.Label != again.Label {
		t.Fatalf("tenant predict not deterministic: %+v vs %+v", first, again)
	}

	// ?tenant= query routing is equivalent to the header.
	code, body = postPGM(t, ts.URL+"/predict?tenant=globex", face)
	var viaQuery PredictResponse
	if err := json.Unmarshal(body, &viaQuery); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || viaQuery.Tenant != "globex" {
		t.Fatalf("query-routed predict = %d %+v", code, viaQuery)
	}

	// Mixed traffic: tenant acme, tenant globex and single-tenant requests
	// race through the micro-batcher; every response must carry its own
	// attribution. Run with -race.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		ten := []string{"", "acme", "globex"}[g]
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(ten string) {
				defer wg.Done()
				code, body := postPGMTenant(t, ts.URL+"/predict", ten, face)
				if code != http.StatusOK {
					t.Errorf("mixed predict tenant=%q = %d %s", ten, code, body)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Error(err)
					return
				}
				if pr.Tenant != ten {
					t.Errorf("mixed predict attributed to %q, want %q", pr.Tenant, ten)
				}
			}(ten)
		}
	}
	wg.Wait()

	// Per-tenant feedback: the third PGM sample completes acme's batch and
	// a refinement round promotes version 2 — for acme alone.
	for i := 0; i < 2; i++ {
		sample := face
		label := "1"
		if i == 1 {
			sample, label = nonface, "0"
		}
		code, body = postPGMTenant(t, ts.URL+"/feedback?label="+label, "acme", sample)
		var fr FeedbackResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		if code != http.StatusAccepted || fr.NewVersion != 0 {
			t.Fatalf("feedback %d = %d %+v, want accepted with no round yet", i, code, fr)
		}
	}
	// The last sample of the batch goes through the request-ID correction
	// form: the feature remembered by the tenant'd predict above.
	fbBody, _ := json.Marshal(map[string]any{"request_id": first.RequestID, "label": 1})
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/feedback", bytes.NewReader(fbBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "acme")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	var round FeedbackResponse
	if err := json.NewDecoder(resp.Body).Decode(&round); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || round.NewVersion != 2 || round.Tenant != "acme" {
		t.Fatalf("round-completing feedback = %d %+v, want accepted new_version=2", resp.StatusCode, round)
	}

	// acme now serves its refined version 2; globex is untouched on 1 —
	// and the single-tenant path still serves registry version 1.
	for _, want := range []struct {
		ten string
		ver uint64
	}{{"acme", 2}, {"globex", 1}, {"", 1}} {
		_, body := postPGMTenant(t, ts.URL+"/predict", want.ten, face)
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.ModelVersion != want.ver || pr.Tenant != want.ten {
			t.Fatalf("post-round predict tenant=%q = %+v, want version %d", want.ten, pr, want.ver)
		}
	}

	// A tenant'd detect sweeps with the tenant's model and says so.
	scene := dataset.GenerateScene(96, 96, 48, 1, 5).Image
	code, body = postPGMTenant(t, ts.URL+"/detect", "acme", pgmBytes(t, scene))
	var dr DetectResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || dr.Tenant != "acme" || dr.ModelVersion != 2 {
		t.Fatalf("tenant detect = %d %+v, want tenant acme version 2", code, dr)
	}

	// GET /tenants reflects both lineages; /healthz counts them.
	resp, err = http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var tl TenantsResponse
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tl.Tenants) != 2 || tl.Tenants[0].ID != "acme" || tl.Tenants[1].ID != "globex" {
		t.Fatalf("GET /tenants = %+v, want [acme globex]", tl.Tenants)
	}
	if tl.Tenants[0].LiveVersion != 2 || tl.Tenants[1].LiveVersion != 1 {
		t.Fatalf("tenant live versions = %d/%d, want 2/1",
			tl.Tenants[0].LiveVersion, tl.Tenants[1].LiveVersion)
	}
	if tl.Tenants[0].Rounds != 1 || tl.Tenants[1].Rounds != 0 {
		t.Fatalf("tenant rounds = %d/%d, want 1/0", tl.Tenants[0].Rounds, tl.Tenants[1].Rounds)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Tenants != 2 {
		t.Fatalf("healthz tenants = %d, want 2", h.Tenants)
	}
}

// TestServeTenantsDisabled pins the opt-in contract: without a tenant
// store, tenant'd requests get 501 and the tenant endpoints refuse.
func TestServeTenantsDisabled(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := hv.NewRNG(3)
	face := pgmBytes(t, dataset.RenderFace(48, 48, dataset.Neutral, r))
	if code, body := postPGMTenant(t, ts.URL+"/predict", "acme", face); code != http.StatusNotImplemented {
		t.Fatalf("tenant predict without a store = %d %s, want 501", code, body)
	}
	resp, err := http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("GET /tenants without a store = %d, want 501", resp.StatusCode)
	}
}

// TestServeTenantStream runs a tenant'd tracking stream end to end: every
// frame event must be attributed to the tenant's model version.
func TestServeTenantStream(t *testing.T) {
	p := trainedPipeline(t, 2)
	store, err := tenant.Open(tenant.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p, Tenants: store})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/tenants/seed?tenant=acme", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed = %d", resp.StatusCode)
	}

	var frames bytes.Buffer
	for i := 0; i < 3; i++ {
		scene := dataset.GenerateScene(96, 96, 48, 1, uint64(20+i)).Image
		var pgm bytes.Buffer
		if err := scene.WritePGM(&pgm); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&frames, pgm.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := CloseFrames(&frames); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/stream?tenant=acme", "application/octet-stream", &frames)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant stream = %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	sawFrame, sawSummary := false, false
	for dec.More() {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "frame":
			sawFrame = true
			if ev.ModelVersion != 1 {
				t.Fatalf("frame %d attributed to version %d, want 1", ev.Frame, ev.ModelVersion)
			}
		case "error":
			t.Fatalf("frame %d: %s", ev.Frame, ev.Error)
		case "summary":
			sawSummary = true
		}
	}
	if !sawFrame || !sawSummary {
		t.Fatalf("stream ended without frames (%v) or summary (%v)", sawFrame, sawSummary)
	}
}
