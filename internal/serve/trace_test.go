package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/obs/trace"
)

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v (%s)", url, err, data)
	}
	return resp.StatusCode
}

func findTrace(exp trace.Export, id string) *trace.ExportTrace {
	for i := range exp.Traces {
		if exp.Traces[i].TraceID == id {
			return &exp.Traces[i]
		}
	}
	return nil
}

// TestServeTraceIDEndToEnd checks the ingress contract: every /predict
// and /detect reply names its trace (body field and X-Hdface-Trace
// header), an inbound header ID is honoured, and the trace lands in
// /debug/traces with the dispatcher's span tree.
func TestServeTraceIDEndToEnd(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	trace.Reset()

	face := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(5)))

	// Minted ID: present in body, echoed in header.
	resp, err := http.Post(ts.URL+"/predict", "image/x-portable-graymap", bytes.NewReader(face))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, data)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.TraceID == "" {
		t.Fatal("predict reply has no trace_id")
	}
	if h := resp.Header.Get(trace.Header); h != pr.TraceID {
		t.Fatalf("header %s = %q, body trace_id = %q", trace.Header, h, pr.TraceID)
	}

	// Inbound ID from an upstream router is honoured.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/predict", bytes.NewReader(face))
	req.Header.Set(trace.Header, "router-leg-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var pr2 PredictResponse
	if err := json.Unmarshal(data2, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.TraceID != "router-leg-1" {
		t.Fatalf("inbound trace ID not honoured: got %q", pr2.TraceID)
	}

	// Both traces are queryable, with the dispatcher's phase split.
	var exp trace.Export
	if code := getJSON(t, ts.URL+"/debug/traces?kind=predict", &exp); code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if exp.Schema != trace.ExportSchema {
		t.Fatalf("schema %q, want %q", exp.Schema, trace.ExportSchema)
	}
	for _, id := range []string{pr.TraceID, "router-leg-1"} {
		et := findTrace(exp, id)
		if et == nil {
			t.Fatalf("trace %q not in /debug/traces", id)
		}
		names := map[string]bool{}
		for _, sp := range et.Spans {
			names[sp.Name] = true
		}
		if !names["queue_wait"] || !names["inference"] {
			t.Fatalf("trace %q spans = %v, want queue_wait and inference", id, names)
		}
	}

	// Stage filtering narrows to traces containing the span.
	var byStage trace.Export
	getJSON(t, ts.URL+"/debug/traces?stage=inference", &byStage)
	if findTrace(byStage, pr.TraceID) == nil {
		t.Fatal("stage=inference filter dropped a predict trace")
	}
}

// TestServeDegradedTraceRetained is the observability half of the
// anytime contract: a deadline-blown detect must leave a degraded trace
// in /debug/traces — retained by the tail policy, flagged degraded, with
// a non-empty per-level span tree under detect_sweep.
func TestServeDegradedTraceRetained(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	trace.Reset()

	scene := pgmBytes(t, dataset.GenerateScene(192, 192, 48, 2, 5).Image)
	code, data := postPGM(t, ts.URL+"/detect?deadline=1ns", scene)
	if code != http.StatusOK {
		t.Fatalf("deadline-blown detect: status %d (%s)", code, data)
	}
	var dr DetectResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Degraded {
		t.Fatalf("1ns budget should degrade, got %+v", dr)
	}
	if dr.TraceID == "" {
		t.Fatal("degraded detect reply has no trace_id")
	}

	var exp trace.Export
	getJSON(t, ts.URL+"/debug/traces?filter=degraded&kind=detect", &exp)
	et := findTrace(exp, dr.TraceID)
	if et == nil {
		t.Fatalf("degraded trace %q not retained", dr.TraceID)
	}
	if !et.Degraded {
		t.Fatal("retained trace not flagged degraded")
	}
	var sweep *trace.ExportSpan
	for i := range et.Spans {
		if et.Spans[i].Name == "detect_sweep" {
			sweep = &et.Spans[i]
		}
	}
	if sweep == nil {
		t.Fatalf("degraded trace has no detect_sweep span: %+v", et.Spans)
	}
	levels := 0
	for _, c := range sweep.Children {
		if c.Name == "level" {
			levels++
		}
	}
	if levels == 0 {
		t.Fatalf("degraded trace has an empty per-level span tree: %+v", sweep.Children)
	}
}

// TestServeSLOEndpoint checks /debug/slo: schema, the per-endpoint SLOs,
// and the windowed latency quantiles fed by real requests.
func TestServeSLOEndpoint(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	face := pgmBytes(t, dataset.RenderFace(48, 48, 0, hv.NewRNG(5)))
	for i := 0; i < 3; i++ {
		if code, data := postPGM(t, ts.URL+"/predict", face); code != http.StatusOK {
			t.Fatalf("predict: status %d (%s)", code, data)
		}
	}

	var got SLOResponse
	if code := getJSON(t, ts.URL+"/debug/slo", &got); code != http.StatusOK {
		t.Fatalf("/debug/slo: status %d", code)
	}
	if got.Schema != SLOSchema {
		t.Fatalf("schema %q, want %q", got.Schema, SLOSchema)
	}
	pSLO, ok := got.SLOs["predict"]
	if !ok {
		t.Fatalf("no predict SLO in %v", got.SLOs)
	}
	if pSLO.Total < 3 {
		t.Fatalf("predict SLO observed %d requests, want >= 3", pSLO.Total)
	}
	if _, ok := got.SLOs["detect"]; !ok {
		t.Fatal("no detect SLO registered")
	}
	q, ok := got.Quantiles["hdface_serve_request_seconds_window"]
	if !ok {
		t.Fatalf("no windowed latency quantile in %v", got.Quantiles)
	}
	if q.Count < 3 || q.P99 <= 0 {
		t.Fatalf("windowed quantile not fed: %+v", q)
	}
}

// TestServeTracesBadParams pins the /debug/traces parameter validation.
func TestServeTracesBadParams(t *testing.T) {
	p := trainedPipeline(t, 1)
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, q := range []string{"?filter=bogus", "?n=0", "?n=nope"} {
		resp, err := http.Get(ts.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/traces%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
