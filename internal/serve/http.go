package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hdface/internal/imgproc"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
	"hdface/internal/online"
	"hdface/internal/registry"
	"hdface/internal/tenant"
)

// PredictResponse is the /predict reply: the argmax label, the per-class
// cosine similarities (identical to Pipeline.Predict/Scores against the
// live model), the model version that scored the request, and — when
// online learning is enabled — a request ID a later /feedback correction
// can reference.
type PredictResponse struct {
	Label        int       `json:"label"`
	Scores       []float64 `json:"scores"`
	ModelVersion uint64    `json:"model_version"`
	RequestID    string    `json:"request_id,omitempty"`
	// Tenant names the tenant whose live model scored the request (empty
	// for the registry's single-tenant path); ModelVersion is then a
	// version in that tenant's private lineage.
	Tenant string `json:"tenant,omitempty"`
	// TraceID names the request's trace in /debug/traces (also echoed in
	// the X-Hdface-Trace response header).
	TraceID string `json:"trace_id,omitempty"`
}

// BoxJSON is one detection in image coordinates.
type BoxJSON struct {
	X0    int     `json:"x0"`
	Y0    int     `json:"y0"`
	X1    int     `json:"x1"`
	Y1    int     `json:"y1"`
	Score float64 `json:"score"`
	Scale float64 `json:"scale"`
}

// DetectResponse is the /detect reply. Degraded reports that the request's
// deadline expired mid-sweep and the boxes are the anytime best-so-far set.
type DetectResponse struct {
	Boxes        []BoxJSON `json:"boxes"`
	Degraded     bool      `json:"degraded"`
	Windows      int64     `json:"windows"`
	Levels       int       `json:"levels"`
	ModelVersion uint64    `json:"model_version"`
	// Tenant names the tenant whose live model scored the sweep (empty
	// for the registry's single-tenant path).
	Tenant string `json:"tenant,omitempty"`
	// TraceID names the request's trace in /debug/traces, where the
	// per-level sweep spans explain a degraded or slow response.
	TraceID string `json:"trace_id,omitempty"`
}

// FeedbackResponse is the /feedback reply. For a tenant'd sample,
// NewVersion is non-zero when the sample completed a feedback batch and a
// refinement round promoted a new version of that tenant's model.
type FeedbackResponse struct {
	Status     string `json:"status"`
	Tenant     string `json:"tenant,omitempty"`
	NewVersion uint64 `json:"new_version,omitempty"`
}

// ModelsResponse is the GET /models reply.
type ModelsResponse struct {
	Versions []registry.Info `json:"versions"`
	Live     uint64          `json:"live"`
	Online   *online.Stats   `json:"online,omitempty"`
}

// DeltaInfo summarises the replica's local feedback accumulator for
// /healthz — enough for a router (or operator) to see whether the
// feedback plane is flowing without pulling the full delta.
type DeltaInfo struct {
	Replica string `json:"replica"`
	Base    string `json:"base"` // model fingerprint, hex
	Epoch   uint64 `json:"epoch"`
	Seq     uint64 `json:"seq"`
	Samples int64  `json:"samples"`
}

// HealthResponse is the /healthz reply. Status is "ok" until the
// admission queue reaches saturatedAt occupancy, then "saturated" — still
// serving, but a router should prefer other replicas.
type HealthResponse struct {
	Status      string  `json:"status"`
	Mode        string  `json:"mode"`
	D           int     `json:"d"`
	Trained     bool    `json:"trained"`
	QueueDepth  int     `json:"queue_depth"`
	QueueCap    int     `json:"queue_cap"`
	Saturation  float64 `json:"saturation"`
	LiveVersion uint64  `json:"live_version"`
	Versions    int     `json:"versions"`
	Online      bool    `json:"online"`
	// Tenants counts tenants resident in the tenant store (0 when
	// multi-tenancy is disabled).
	Tenants int        `json:"tenants,omitempty"`
	Delta   *DeltaInfo `json:"delta,omitempty"`
}

// saturatedAt is the queue occupancy above which /healthz reports
// "saturated" instead of "ok".
const saturatedAt = 0.9

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP surface: POST /predict, POST /detect,
// POST /stream (NDJSON tracking over a PGM frame sequence — see stream.go),
// POST /feedback, GET /models, POST /models/promote, POST /models/rollback,
// GET /healthz, GET /metrics, the introspection pair GET /debug/traces
// and GET /debug/slo, the fleet feedback plane (GET /delta,
// GET /models/export, POST /models/push — see fleet.go), and — when a
// tenant store is configured — GET /tenants plus POST /tenants/seed.
// /predict, /detect, /stream and /feedback all accept a tenant ID via the
// X-Hdface-Tenant header or ?tenant= query parameter to score against
// (and learn into) that tenant's private model lineage.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/detect", s.handleDetect)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/feedback", s.handleFeedback)
	mux.HandleFunc("/tenants", s.handleTenants)
	mux.HandleFunc("/tenants/seed", s.handleTenantSeed)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/models/promote", s.handlePromote)
	mux.HandleFunc("/models/rollback", s.handleRollback)
	mux.HandleFunc("/models/push", s.handlePush)
	mux.HandleFunc("/models/export", s.handleExport)
	mux.HandleFunc("/delta", s.handleDelta)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WriteTo(w)
	})
	return mux
}

// handleTraces serves the collected traces as hdface-trace/v1 JSON.
// Query parameters: filter=slow,error,degraded restricts to the
// tail-retention sets (comma-separable; default recent), kind=predict|
// detect|... and stage=<span name> narrow further, n= caps the count.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /debug/traces")
		return
	}
	var f trace.Filter
	for _, part := range strings.Split(r.URL.Query().Get("filter"), ",") {
		switch strings.TrimSpace(part) {
		case "":
		case "slow":
			f.Slow = true
		case "error", "errors":
			f.Errors = true
		case "degraded":
			f.Degraded = true
		default:
			writeErr(w, http.StatusBadRequest, "filter %q: want slow, error or degraded", part)
			return
		}
	}
	f.Kind = r.URL.Query().Get("kind")
	f.Stage = r.URL.Query().Get("stage")
	if nq := r.URL.Query().Get("n"); nq != "" {
		n, err := strconv.Atoi(nq)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "n %q: want a positive integer", nq)
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, trace.Snapshot(f))
}

// SLOResponse is the GET /debug/slo reply: every registered SLO plus the
// windowed latency quantiles, evaluated as of the request.
type SLOResponse struct {
	Schema    string                          `json:"schema"`
	SLOs      map[string]obs.SLOSnapshot      `json:"slos"`
	Quantiles map[string]obs.QuantileSnapshot `json:"quantiles"`
}

// SLOSchema identifies the /debug/slo JSON layout.
const SLOSchema = "hdface-slo/v1"

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /debug/slo")
		return
	}
	writeJSON(w, http.StatusOK, SLOResponse{
		Schema:    SLOSchema,
		SLOs:      obs.SLOSnapshots(),
		Quantiles: obs.QuantileSnapshots(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= 400 && code < 500 {
		obsBadRequests.Inc()
	}
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// readImage decodes the request body as a PGM raster under the body limit.
func (s *Server) readImage(w http.ResponseWriter, r *http.Request) (*imgproc.Image, bool) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST a PGM image")
		return nil, false
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	img, err := imgproc.ReadPGM(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decode image: %v", err)
		return nil, false
	}
	return img, true
}

// retryAfterSecs estimates when a shed request is worth retrying: the
// current queue drains at roughly one batch-or-job per FlushInterval, so
// the backlog ahead of a rejected request bounds its wait. Clamped to at
// least 1s — the header's resolution — so clients never busy-spin.
func (s *Server) retryAfterSecs() int {
	wait := time.Duration(len(s.queue)+1) * s.cfg.FlushInterval
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shed rejects a request with 503 plus a Retry-After hint derived from the
// queue backlog, the signal a well-behaved client (and the fleet router's
// load shedder) keys its backoff on.
func (s *Server) shed(w http.ResponseWriter, format string, args ...any) {
	obsRejected.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	writeErr(w, http.StatusServiceUnavailable, format, args...)
}

// submit admits the job and waits for its result.
func (s *Server) submit(w http.ResponseWriter, j *job) (result, bool) {
	if !s.enqueue(j) {
		s.shed(w, "queue full, retry later")
		return result{}, false
	}
	return <-j.resp, true
}

// TenantHeader names the request header carrying a tenant ID. The
// ?tenant= query parameter is the equivalent for clients that cannot set
// headers; the header wins when both are present.
const TenantHeader = "X-Hdface-Tenant"

// tenantOf extracts and validates the request's tenant ID. ok=false means
// an error response was already written; an empty ID with ok=true is the
// single-tenant (registry) path.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.Header.Get(TenantHeader)
	if id == "" {
		id = r.URL.Query().Get("tenant")
	}
	if id == "" {
		return "", true
	}
	if s.cfg.Tenants == nil {
		writeErr(w, http.StatusNotImplemented, "multi-tenancy is disabled")
		return "", false
	}
	if err := tenant.ValidID(id); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return "", false
	}
	return id, true
}

// tenantErrCode maps tenant-store errors to HTTP statuses: an unknown
// tenant is the caller's 404, a tenant with no live model mirrors the
// registry's 409, a bad sample is a 400, the tenant limit is the server
// refusing to store more lineages.
func tenantErrCode(err error) int {
	switch {
	case errors.Is(err, tenant.ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, tenant.ErrNoLive):
		return http.StatusConflict
	case errors.Is(err, tenant.ErrBadFeedback):
		return http.StatusBadRequest
	case errors.Is(err, tenant.ErrTooMany):
		return http.StatusInsufficientStorage
	}
	return http.StatusInternalServerError
}

// startTrace mints (or inherits, via the X-Hdface-Trace request header) a
// trace for one request and echoes its ID in the response header so callers
// can correlate the reply with /debug/traces. The returned finish closure
// seals the trace and feeds the request's SLO and windowed latency
// quantile; call it exactly once, on every exit path. With tracing
// disabled tr is nil and everything here is a no-op.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, kind string, slo *obs.SLO) (tr *trace.Trace, finish func(failed bool)) {
	start := time.Now()
	tr = trace.New(kind, r.Header.Get(trace.Header))
	if tr != nil {
		w.Header().Set(trace.Header, tr.ID())
	}
	return tr, func(failed bool) {
		lat := time.Since(start)
		tr.SetError(failed)
		tr.Finish()
		slo.Observe(lat, failed)
		obsWinLatency.Observe(lat.Seconds())
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ten, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if ten == "" && s.reg.Live() == nil {
		writeErr(w, http.StatusConflict, "no live model")
		return
	}
	if ten != "" {
		if _, err := s.cfg.Tenants.Live(ten); err != nil {
			writeErr(w, tenantErrCode(err), "%v", err)
			return
		}
	}
	img, ok := s.readImage(w, r)
	if !ok {
		return
	}
	obsPredictReqs.Inc()
	tr, finish := s.startTrace(w, r, "predict", s.sloPredict)
	j := &job{kind: kindPredict, img: img, tenant: ten, resp: make(chan result, 1), tr: tr, enq: time.Now()}
	res, ok := s.submit(w, j)
	if !ok {
		finish(true)
		return
	}
	obsLatency.Observe(time.Since(start).Seconds())
	if res.err != nil {
		finish(true)
		code := http.StatusInternalServerError
		if ten != "" {
			code = tenantErrCode(res.err)
		}
		writeErr(w, code, "predict: %v", res.err)
		return
	}
	finish(false)
	writeJSON(w, http.StatusOK, PredictResponse{
		Label:        res.label,
		Scores:       res.scores,
		ModelVersion: res.version,
		RequestID:    res.reqID,
		Tenant:       res.tenant,
		TraceID:      tr.ID(),
	})
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ten, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if ten == "" && s.reg.Live() == nil {
		writeErr(w, http.StatusConflict, "no live model")
		return
	}
	if ten != "" {
		if _, err := s.cfg.Tenants.Live(ten); err != nil {
			writeErr(w, tenantErrCode(err), "%v", err)
			return
		}
	}
	img, ok := s.readImage(w, r)
	if !ok {
		return
	}
	deadline := s.cfg.MaxDeadline
	if q := r.URL.Query().Get("deadline"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "deadline %q: want a positive duration like 250ms", q)
			return
		}
		if d < deadline {
			deadline = d
		}
	}
	obsDetectReqs.Inc()
	tr, finish := s.startTrace(w, r, "detect", s.sloDetect)
	// The budget starts now, before queueing: a request stuck behind a long
	// queue degrades instead of consuming its full budget late.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	j := &job{kind: kindDetect, img: img, tenant: ten, ctx: ctx, resp: make(chan result, 1), tr: tr, enq: time.Now()}
	res, ok := s.submit(w, j)
	if !ok {
		finish(true)
		return
	}
	obsLatency.Observe(time.Since(start).Seconds())
	if res.err != nil {
		finish(true)
		code := http.StatusInternalServerError
		if ten != "" {
			code = tenantErrCode(res.err)
		}
		writeErr(w, code, "detect: %v", res.err)
		return
	}
	finish(false)
	boxes := make([]BoxJSON, len(res.boxes))
	for i, b := range res.boxes {
		boxes[i] = BoxJSON{X0: b.X0, Y0: b.Y0, X1: b.X1, Y1: b.Y1, Score: b.Score, Scale: b.Scale}
	}
	writeJSON(w, http.StatusOK, DetectResponse{
		Boxes:        boxes,
		Degraded:     res.stats.Degraded,
		Windows:      res.stats.Windows,
		Levels:       res.stats.Levels,
		ModelVersion: res.version,
		Tenant:       res.tenant,
		TraceID:      tr.ID(),
	})
}

// feedbackJSON is the request-ID correction form of POST /feedback.
type feedbackJSON struct {
	RequestID string `json:"request_id"`
	Label     int    `json:"label"`
}

// handleFeedback ingests one labelled sample for online learning. Two
// forms: a PGM body with ?label=N (the image's feature is extracted on the
// dispatcher), or a JSON {"request_id","label"} correction referencing a
// recent /predict (the stored feature is reused — no image resend; for the
// single-tenant path, no dispatcher round-trip either). A tenant'd sample
// joins that tenant's private batch in the tenant store instead of the
// shared online trainer, and the reply reports the new version when the
// sample completed a refinement round.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST feedback")
		return
	}
	ten, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if ten == "" && s.trainer == nil {
		writeErr(w, http.StatusNotImplemented, "online learning is disabled")
		return
	}
	live := s.reg.Live()
	if ten == "" && live == nil {
		writeErr(w, http.StatusConflict, "no live model")
		return
	}
	if r.Header.Get("Content-Type") == "application/json" {
		var fb feedbackJSON
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&fb); err != nil {
			writeErr(w, http.StatusBadRequest, "decode feedback: %v", err)
			return
		}
		f, ok := s.lookupRecent(fb.RequestID)
		if !ok {
			writeErr(w, http.StatusNotFound, "request_id %q unknown or expired", fb.RequestID)
			return
		}
		if ten != "" {
			// The tenant store validates the label against the tenant's own
			// model and serialises the (possibly round-triggering) update
			// under the tenant's lock — no dispatcher involvement.
			promoted, err := s.cfg.Tenants.Feedback(ten, f, fb.Label)
			if err != nil {
				writeErr(w, tenantErrCode(err), "%v", err)
				return
			}
			obsFeedbackReqs.Inc()
			writeJSON(w, http.StatusAccepted, FeedbackResponse{Status: "accepted", Tenant: ten, NewVersion: promoted})
			return
		}
		if fb.Label < 0 || fb.Label >= live.Model.K {
			writeErr(w, http.StatusBadRequest, "label %d outside [0, %d)", fb.Label, live.Model.K)
			return
		}
		if err := s.trainer.Enqueue(online.Sample{Feature: f, Label: fb.Label}); err != nil {
			s.shed(w, "feedback: %v", err)
			return
		}
		obsFeedbackReqs.Inc()
		writeJSON(w, http.StatusAccepted, FeedbackResponse{Status: "accepted"})
		return
	}
	labelStr := r.URL.Query().Get("label")
	label, err := strconv.Atoi(labelStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "label %q: want an integer class", labelStr)
		return
	}
	if ten == "" && (label < 0 || label >= live.Model.K) {
		writeErr(w, http.StatusBadRequest, "label %d outside [0, %d)", label, live.Model.K)
		return
	}
	img, ok := s.readImage(w, r)
	if !ok {
		return
	}
	j := &job{kind: kindFeedback, img: img, tenant: ten, label: label, resp: make(chan result, 1)}
	res, ok := s.submit(w, j)
	if !ok {
		return
	}
	if res.err != nil {
		if ten != "" {
			writeErr(w, tenantErrCode(res.err), "%v", res.err)
			return
		}
		s.shed(w, "feedback: %v", res.err)
		return
	}
	obsFeedbackReqs.Inc()
	writeJSON(w, http.StatusAccepted, FeedbackResponse{Status: "accepted", Tenant: res.tenant, NewVersion: res.promoted})
}

// TenantsResponse is the GET /tenants reply: every tenant in ID order
// plus store-wide residency totals.
type TenantsResponse struct {
	Tenants []tenant.Info `json:"tenants"`
	Stats   tenant.Stats  `json:"stats"`
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tenants == nil {
		writeErr(w, http.StatusNotImplemented, "multi-tenancy is disabled")
		return
	}
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /tenants")
		return
	}
	infos := s.cfg.Tenants.Tenants()
	if infos == nil {
		infos = []tenant.Info{}
	}
	writeJSON(w, http.StatusOK, TenantsResponse{Tenants: infos, Stats: s.cfg.Tenants.Stats()})
}

// TenantSeedResponse is the POST /tenants/seed reply.
type TenantSeedResponse struct {
	Tenant string `json:"tenant"`
	// Version is the first version of the tenant's new lineage; Base is
	// the registry version it was copied from.
	Version uint64 `json:"version"`
	Base    uint64 `json:"base_version"`
}

// handleTenantSeed creates (or re-seeds) a tenant from the registry's live
// model: POST /tenants/seed?tenant=ID. This is how a tenant is born — its
// lineage starts as a copy of the shared base model and diverges through
// its own /feedback stream.
func (s *Server) handleTenantSeed(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tenants == nil {
		writeErr(w, http.StatusNotImplemented, "multi-tenancy is disabled")
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /tenants/seed?tenant=ID")
		return
	}
	ten, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if ten == "" {
		writeErr(w, http.StatusBadRequest, "tenant ID required (X-Hdface-Tenant header or ?tenant=)")
		return
	}
	live := s.reg.Live()
	if live == nil {
		writeErr(w, http.StatusConflict, "no live model to seed from")
		return
	}
	id, err := s.cfg.Tenants.Seed(ten, s.cfg.Pipeline.Config(), live.Model)
	if err != nil {
		writeErr(w, tenantErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TenantSeedResponse{Tenant: ten, Version: id, Base: live.ID})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /models")
		return
	}
	resp := ModelsResponse{Versions: s.reg.List()}
	if v := s.reg.Live(); v != nil {
		resp.Live = v.ID
	}
	if s.trainer != nil {
		st := s.trainer.Stats()
		resp.Online = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /models/promote?version=N")
		return
	}
	vq := r.URL.Query().Get("version")
	id, err := strconv.ParseUint(vq, 10, 64)
	if err != nil || id == 0 {
		writeErr(w, http.StatusBadRequest, "version %q: want a positive integer", vq)
		return
	}
	if err := s.reg.Promote(id); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{Versions: s.reg.List(), Live: id})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /models/rollback")
		return
	}
	id, err := s.reg.Rollback()
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{Versions: s.reg.List(), Live: id})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cfg := s.cfg.Pipeline.Config()
	live := s.reg.Live()
	depth := len(s.queue)
	h := HealthResponse{
		Status:     "ok",
		Mode:       cfg.Mode.String(),
		D:          cfg.D,
		Trained:    live != nil,
		QueueDepth: depth,
		QueueCap:   cap(s.queue),
		Saturation: float64(depth) / float64(cap(s.queue)),
		Versions:   len(s.reg.List()),
		Online:     s.trainer != nil,
	}
	if s.cfg.Tenants != nil {
		h.Tenants = s.cfg.Tenants.Len()
	}
	if h.Saturation >= saturatedAt {
		h.Status = "saturated"
	}
	if live != nil {
		h.LiveVersion = live.ID
	}
	if s.trainer != nil {
		if d := s.trainer.Delta(); d != nil {
			h.Delta = &DeltaInfo{
				Replica: d.Replica,
				Base:    fmt.Sprintf("%016x", d.Base),
				Epoch:   d.Epoch,
				Seq:     d.Seq,
				Samples: d.Samples(),
			}
		}
	}
	writeJSON(w, http.StatusOK, h)
}
