package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hdface/internal/imgproc"
	"hdface/internal/obs"
)

// PredictResponse is the /predict reply: the argmax label and the
// per-class cosine similarities, identical to Pipeline.Predict/Scores.
type PredictResponse struct {
	Label  int       `json:"label"`
	Scores []float64 `json:"scores"`
}

// BoxJSON is one detection in image coordinates.
type BoxJSON struct {
	X0    int     `json:"x0"`
	Y0    int     `json:"y0"`
	X1    int     `json:"x1"`
	Y1    int     `json:"y1"`
	Score float64 `json:"score"`
	Scale float64 `json:"scale"`
}

// DetectResponse is the /detect reply. Degraded reports that the request's
// deadline expired mid-sweep and the boxes are the anytime best-so-far set.
type DetectResponse struct {
	Boxes    []BoxJSON `json:"boxes"`
	Degraded bool      `json:"degraded"`
	Windows  int64     `json:"windows"`
	Levels   int       `json:"levels"`
}

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status     string `json:"status"`
	Mode       string `json:"mode"`
	D          int    `json:"d"`
	Trained    bool   `json:"trained"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP surface: POST /predict, POST /detect,
// GET /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/detect", s.handleDetect)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WriteTo(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= 400 && code < 500 {
		obsBadRequests.Inc()
	}
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// readImage decodes the request body as a PGM raster under the body limit.
func (s *Server) readImage(w http.ResponseWriter, r *http.Request) (*imgproc.Image, bool) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST a PGM image")
		return nil, false
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	img, err := imgproc.ReadPGM(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decode image: %v", err)
		return nil, false
	}
	return img, true
}

// submit admits the job and waits for its result.
func (s *Server) submit(w http.ResponseWriter, j *job) (result, bool) {
	if !s.enqueue(j) {
		obsRejected.Inc()
		writeErr(w, http.StatusServiceUnavailable, "queue full, retry later")
		return result{}, false
	}
	return <-j.resp, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.cfg.Pipeline.Model() == nil {
		writeErr(w, http.StatusConflict, "pipeline is untrained")
		return
	}
	img, ok := s.readImage(w, r)
	if !ok {
		return
	}
	obsPredictReqs.Inc()
	j := &job{kind: kindPredict, img: img, resp: make(chan result, 1)}
	res, ok := s.submit(w, j)
	if !ok {
		return
	}
	obsLatency.Observe(time.Since(start).Seconds())
	if res.err != nil {
		writeErr(w, http.StatusInternalServerError, "predict: %v", res.err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Label: res.label, Scores: res.scores})
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.cfg.Pipeline.Model() == nil {
		writeErr(w, http.StatusConflict, "pipeline is untrained")
		return
	}
	img, ok := s.readImage(w, r)
	if !ok {
		return
	}
	deadline := s.cfg.MaxDeadline
	if q := r.URL.Query().Get("deadline"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "deadline %q: want a positive duration like 250ms", q)
			return
		}
		if d < deadline {
			deadline = d
		}
	}
	obsDetectReqs.Inc()
	// The budget starts now, before queueing: a request stuck behind a long
	// queue degrades instead of consuming its full budget late.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	j := &job{kind: kindDetect, img: img, ctx: ctx, resp: make(chan result, 1)}
	res, ok := s.submit(w, j)
	if !ok {
		return
	}
	obsLatency.Observe(time.Since(start).Seconds())
	if res.err != nil {
		writeErr(w, http.StatusInternalServerError, "detect: %v", res.err)
		return
	}
	boxes := make([]BoxJSON, len(res.boxes))
	for i, b := range res.boxes {
		boxes[i] = BoxJSON{X0: b.X0, Y0: b.Y0, X1: b.X1, Y1: b.Y1, Score: b.Score, Scale: b.Scale}
	}
	writeJSON(w, http.StatusOK, DetectResponse{
		Boxes:    boxes,
		Degraded: res.stats.Degraded,
		Windows:  res.stats.Windows,
		Levels:   res.stats.Levels,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cfg := s.cfg.Pipeline.Config()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Mode:       cfg.Mode.String(),
		D:          cfg.D,
		Trained:    s.cfg.Pipeline.Model() != nil,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
	})
}
