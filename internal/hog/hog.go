// Package hog implements the Histogram of Oriented Gradients feature
// extractor on the original (floating point) data representation. It is the
// feature front-end for the DNN and SVM baselines and for HDFace
// configuration (1), and the reference the hyperspace HOG of package hdhog
// is validated against.
//
// Coordinate convention: gx is the horizontal derivative (columns), gy the
// vertical derivative (rows); the paper's C_{i,j} indexing is row-major, so
// its G_x corresponds to our gy — only naming differs, the histogram is
// identical because orientation bins cover the same half circle.
package hog

import (
	"math"

	"hdface/internal/imgproc"
)

// Params configures the extractor.
type Params struct {
	CellSize  int  // pixels per cell side (default 8)
	Bins      int  // orientation bins over [0, pi) (default 9)
	BlockSize int  // cells per block side for normalisation (default 2)
	SoftBins  bool // bilinear vote into adjacent bins (classical HOG)
	Normalize bool // L2 block normalisation
	Eps       float64
}

// DefaultParams returns the classical 8x8-cell, 9-bin, 2x2-block setup.
func DefaultParams() Params {
	return Params{CellSize: 8, Bins: 9, BlockSize: 2, SoftBins: true, Normalize: true, Eps: 1e-6}
}

// HardParams returns hard-binned, unnormalised HOG matching the arithmetic
// the hyperspace pipeline can express; used for parity tests.
func HardParams() Params {
	return Params{CellSize: 8, Bins: 9, BlockSize: 2, SoftBins: false, Normalize: false, Eps: 1e-6}
}

// Stats counts floating-point work for the hardware model.
type Stats struct {
	Adds, Muls, Sqrts, Atans int64
}

// Total returns a flat op count with transcendental ops weighted as several
// primitive FLOPs (sqrt ~ 4, atan2 ~ 8), matching scalar software cost.
func (s Stats) Total() int64 {
	return s.Adds + s.Muls + 4*s.Sqrts + 8*s.Atans
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Adds += o.Adds
	s.Muls += o.Muls
	s.Sqrts += o.Sqrts
	s.Atans += o.Atans
}

// Extractor computes HOG features. The zero value is unusable; construct
// with New.
type Extractor struct {
	P     Params
	Stats Stats
}

// New returns an extractor with the given parameters, filling zero fields
// with defaults.
func New(p Params) *Extractor {
	d := DefaultParams()
	if p.CellSize <= 0 {
		p.CellSize = d.CellSize
	}
	if p.Bins <= 0 {
		p.Bins = d.Bins
	}
	if p.BlockSize <= 0 {
		p.BlockSize = d.BlockSize
	}
	if p.Eps <= 0 {
		p.Eps = d.Eps
	}
	return &Extractor{P: p}
}

// Gradient returns the centred-difference gradient at (x, y) of the
// normalised image, with edge clamping. Each component lies in [-0.5, 0.5],
// matching the paper's /2 scaling so hyperspace values stay in range.
func Gradient(img *imgproc.Image, x, y int) (gx, gy float64) {
	gx = (img.Norm(x+1, y) - img.Norm(x-1, y)) / 2
	gy = (img.Norm(x, y+1) - img.Norm(x, y-1)) / 2
	return
}

// CellsDim returns the cell grid size for a w x h image.
func (e *Extractor) CellsDim(w, h int) (cw, ch int) {
	return w / e.P.CellSize, h / e.P.CellSize
}

// FeatureLen returns the length of the feature vector for a w x h image.
func (e *Extractor) FeatureLen(w, h int) int {
	cw, ch := e.CellsDim(w, h)
	if !e.P.Normalize || e.P.BlockSize <= 1 {
		return cw * ch * e.P.Bins
	}
	bw, bh := cw-e.P.BlockSize+1, ch-e.P.BlockSize+1
	if bw < 1 || bh < 1 {
		return cw * ch * e.P.Bins
	}
	return bw * bh * e.P.BlockSize * e.P.BlockSize * e.P.Bins
}

// CellHistograms returns the raw per-cell orientation histograms as a
// cw*ch x Bins matrix (row-major cells).
func (e *Extractor) CellHistograms(img *imgproc.Image) [][]float64 {
	cw, ch := e.CellsDim(img.W, img.H)
	cells := make([][]float64, cw*ch)
	for i := range cells {
		cells[i] = make([]float64, e.P.Bins)
	}
	binWidth := math.Pi / float64(e.P.Bins)
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			hist := cells[cy*cw+cx]
			for py := 0; py < e.P.CellSize; py++ {
				for px := 0; px < e.P.CellSize; px++ {
					x := cx*e.P.CellSize + px
					y := cy*e.P.CellSize + py
					gx, gy := Gradient(img, x, y)
					e.Stats.Adds += 2
					mag := math.Hypot(gx, gy)
					e.Stats.Muls += 2
					e.Stats.Adds++
					e.Stats.Sqrts++
					if mag == 0 {
						continue
					}
					theta := math.Atan2(gy, gx)
					e.Stats.Atans++
					if theta < 0 {
						theta += math.Pi // unsigned orientation
					}
					if theta >= math.Pi {
						theta -= math.Pi
					}
					pos := theta / binWidth
					b0 := int(pos)
					if b0 >= e.P.Bins {
						b0 = e.P.Bins - 1
					}
					if e.P.SoftBins {
						frac := pos - float64(b0)
						b1 := (b0 + 1) % e.P.Bins
						hist[b0] += mag * (1 - frac)
						hist[b1] += mag * frac
						e.Stats.Muls += 2
						e.Stats.Adds += 2
					} else {
						hist[b0] += mag
						e.Stats.Adds++
					}
				}
			}
		}
	}
	return cells
}

// Features returns the HOG descriptor of img: per-cell histograms, then
// (optionally) overlapping 2x2-block L2 normalisation.
func (e *Extractor) Features(img *imgproc.Image) []float64 {
	cells := e.CellHistograms(img)
	cw, ch := e.CellsDim(img.W, img.H)
	if !e.P.Normalize || e.P.BlockSize <= 1 {
		out := make([]float64, 0, len(cells)*e.P.Bins)
		for _, c := range cells {
			out = append(out, c...)
		}
		return out
	}
	bs := e.P.BlockSize
	bw, bh := cw-bs+1, ch-bs+1
	if bw < 1 || bh < 1 {
		out := make([]float64, 0, len(cells)*e.P.Bins)
		for _, c := range cells {
			out = append(out, c...)
		}
		return out
	}
	out := make([]float64, 0, bw*bh*bs*bs*e.P.Bins)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			start := len(out)
			var norm float64
			for dy := 0; dy < bs; dy++ {
				for dx := 0; dx < bs; dx++ {
					c := cells[(by+dy)*cw+(bx+dx)]
					out = append(out, c...)
					for _, v := range c {
						norm += v * v
						e.Stats.Muls++
						e.Stats.Adds++
					}
				}
			}
			norm = math.Sqrt(norm + e.P.Eps)
			e.Stats.Sqrts++
			for i := start; i < len(out); i++ {
				out[i] /= norm
				e.Stats.Muls++
			}
		}
	}
	return out
}
