package hog

import (
	"math"
	"testing"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

func TestDefaultsFilled(t *testing.T) {
	e := New(Params{})
	if e.P.CellSize != 8 || e.P.Bins != 9 || e.P.BlockSize != 2 || e.P.Eps <= 0 {
		t.Fatalf("defaults not applied: %+v", e.P)
	}
}

func TestGradientFlatImageIsZero(t *testing.T) {
	img := imgproc.NewImage(8, 8)
	img.Fill(128)
	gx, gy := Gradient(img, 4, 4)
	if gx != 0 || gy != 0 {
		t.Fatalf("flat gradient (%v, %v)", gx, gy)
	}
}

func TestGradientDirections(t *testing.T) {
	// Horizontal ramp: only gx nonzero and positive.
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 0, 0, 255)
	gx, gy := Gradient(img, 8, 8)
	if gx <= 0 {
		t.Fatalf("horizontal ramp gx = %v", gx)
	}
	if math.Abs(gy) > 1e-9 {
		t.Fatalf("horizontal ramp gy = %v", gy)
	}
	// Vertical ramp.
	img2 := imgproc.NewImage(16, 16)
	img2.GradientFill(0, 0, 0, 15, 0, 255)
	gx2, gy2 := Gradient(img2, 8, 8)
	if gy2 <= 0 || math.Abs(gx2) > 1e-9 {
		t.Fatalf("vertical ramp gradient (%v, %v)", gx2, gy2)
	}
}

func TestGradientRange(t *testing.T) {
	// Max possible magnitude per component is 0.5 (0->255 over 2 px).
	img := imgproc.NewImage(3, 1)
	img.Set(0, 0, 0)
	img.Set(2, 0, 255)
	gx, _ := Gradient(img, 1, 0)
	if gx != 0.5 {
		t.Fatalf("gx = %v, want 0.5", gx)
	}
}

func TestCellHistogramsFlatIsZero(t *testing.T) {
	e := New(HardParams())
	img := imgproc.NewImage(16, 16)
	img.Fill(100)
	for _, c := range e.CellHistograms(img) {
		for b, v := range c {
			if v != 0 {
				t.Fatalf("flat image bin %d = %v", b, v)
			}
		}
	}
}

func TestCellHistogramsVerticalEdgeBin(t *testing.T) {
	// A vertical edge (horizontal gradient) has orientation 0 -> bin 0.
	e := New(HardParams())
	img := imgproc.NewImage(16, 16)
	img.FillRect(8, 0, 16, 16, 255)
	cells := e.CellHistograms(img)
	var hist [9]float64
	for _, c := range cells {
		for b, v := range c {
			hist[b] += v
		}
	}
	best := 0
	for b, v := range hist {
		if v > hist[best] {
			best = b
		}
	}
	if best != 0 {
		t.Fatalf("vertical edge votes into bin %d, want 0 (%v)", best, hist)
	}
}

func TestCellHistogramsHorizontalEdgeBin(t *testing.T) {
	// A horizontal edge (vertical gradient) has orientation pi/2 -> middle bin.
	e := New(HardParams())
	img := imgproc.NewImage(16, 16)
	img.FillRect(0, 8, 16, 16, 255)
	cells := e.CellHistograms(img)
	var hist [9]float64
	for _, c := range cells {
		for b, v := range c {
			hist[b] += v
		}
	}
	best := 0
	for b, v := range hist {
		if v > hist[best] {
			best = b
		}
	}
	if best != 4 { // pi/2 / (pi/9) = 4.5 -> bin 4
		t.Fatalf("horizontal edge votes into bin %d, want 4 (%v)", best, hist)
	}
}

func TestFeatureLenAndFeatures(t *testing.T) {
	e := New(DefaultParams())
	img := imgproc.NewImage(48, 48)
	f := e.Features(img)
	if want := e.FeatureLen(48, 48); len(f) != want {
		t.Fatalf("feature len %d, want %d", len(f), want)
	}
	// 48/8=6 cells, 5x5 blocks, 2x2x9 each.
	if len(f) != 5*5*2*2*9 {
		t.Fatalf("unexpected feature count %d", len(f))
	}
}

func TestFeatureLenUnnormalised(t *testing.T) {
	e := New(HardParams())
	if got := e.FeatureLen(48, 48); got != 6*6*9 {
		t.Fatalf("hard feature len %d", got)
	}
}

func TestFeaturesNormalisedBlocksUnitNorm(t *testing.T) {
	e := New(DefaultParams())
	r := hv.NewRNG(1)
	img := imgproc.NewImage(32, 32)
	for i := range img.Pix {
		img.Pix[i] = uint8(r.Intn(256))
	}
	f := e.Features(img)
	blockLen := 2 * 2 * 9
	for b := 0; b+blockLen <= len(f); b += blockLen {
		var n float64
		for _, v := range f[b : b+blockLen] {
			n += v * v
		}
		if math.Abs(math.Sqrt(n)-1) > 0.01 {
			t.Fatalf("block %d norm %v, want ~1", b/blockLen, math.Sqrt(n))
		}
	}
}

func TestFeaturesSmallImageFallsBack(t *testing.T) {
	// An image smaller than one block must fall back to raw histograms.
	e := New(DefaultParams())
	img := imgproc.NewImage(8, 8)
	img.FillRect(4, 0, 8, 8, 255)
	f := e.Features(img)
	if len(f) != 9 {
		t.Fatalf("8x8 image should give one cell (9 bins), got %d", len(f))
	}
}

func TestSoftBinsSplitVotes(t *testing.T) {
	// With soft binning a diagonal edge spreads mass over two bins.
	soft := New(Params{CellSize: 8, Bins: 9, SoftBins: true})
	hard := New(Params{CellSize: 8, Bins: 9, SoftBins: false})
	img := imgproc.NewImage(16, 16)
	// Diagonal edge.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if x+y > 16 {
				img.Set(x, y, 255)
			}
		}
	}
	fs := soft.Features(img)
	fh := hard.Features(img)
	nzSoft, nzHard := 0, 0
	for i := range fs {
		if fs[i] > 0 {
			nzSoft++
		}
		if fh[i] > 0 {
			nzHard++
		}
	}
	if nzSoft <= nzHard {
		t.Fatalf("soft binning not spreading votes: %d vs %d nonzero", nzSoft, nzHard)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := New(DefaultParams())
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	e.Features(img)
	if e.Stats.Sqrts == 0 || e.Stats.Adds == 0 || e.Stats.Atans == 0 {
		t.Fatalf("stats not counted: %+v", e.Stats)
	}
	if e.Stats.Total() <= e.Stats.Adds {
		t.Fatal("Total must weight transcendentals")
	}
	var s Stats
	s.Add(e.Stats)
	s.Add(e.Stats)
	if s.Adds != 2*e.Stats.Adds {
		t.Fatal("Stats.Add wrong")
	}
}

func TestFeaturesDeterministic(t *testing.T) {
	img := imgproc.NewImage(32, 32)
	img.GradientFill(0, 0, 31, 31, 10, 240)
	a := New(DefaultParams()).Features(img)
	b := New(DefaultParams()).Features(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs", i)
		}
	}
}

func BenchmarkFeatures48(b *testing.B) {
	e := New(DefaultParams())
	img := imgproc.NewImage(48, 48)
	img.GradientFill(0, 0, 47, 47, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Features(img)
	}
}

func BenchmarkFeatures128(b *testing.B) {
	e := New(DefaultParams())
	img := imgproc.NewImage(128, 128)
	img.GradientFill(0, 0, 127, 127, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Features(img)
	}
}
