package noise

import (
	"math"
	"testing"

	"hdface/internal/hv"
	"hdface/internal/nn"
)

func TestFlipVectorRate(t *testing.T) {
	in := New(1)
	r := hv.NewRNG(2)
	d := 100000
	v := hv.NewRand(r, d)
	orig := v.Clone()
	flips := in.FlipVector(v, 0.1)
	if got := float64(flips) / float64(d); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("flip rate %v, want ~0.1", got)
	}
	if got := orig.Hamming(v); got != flips {
		t.Fatalf("hamming %d != reported flips %d", got, flips)
	}
}

func TestFlipVectorZeroRate(t *testing.T) {
	in := New(1)
	v := hv.NewRand(hv.NewRNG(3), 1024)
	orig := v.Clone()
	if flips := in.FlipVector(v, 0); flips != 0 || !v.Equal(orig) {
		t.Fatal("zero rate mutated vector")
	}
}

func TestFlipVectors(t *testing.T) {
	in := New(4)
	r := hv.NewRNG(5)
	vs := []*hv.Vector{hv.NewRand(r, 4096), hv.NewRand(r, 4096)}
	total := in.FlipVectors(vs, 0.05)
	if total == 0 {
		t.Fatal("no flips across vectors")
	}
}

func TestFlipVectorDeterministic(t *testing.T) {
	r := hv.NewRNG(6)
	base := hv.NewRand(r, 2048)
	a, b := base.Clone(), base.Clone()
	New(7).FlipVector(a, 0.1)
	New(7).FlipVector(b, 0.1)
	if !a.Equal(b) {
		t.Fatal("same seed produced different fault patterns")
	}
}

func TestFlipQuantized(t *testing.T) {
	m, err := nn.New(nn.Config{In: 4, H1: 8, H2: 8, Out: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := nn.Quantize(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := New(8)
	flips := in.FlipQuantized(q, 0.1)
	want := float64(q.WeightBits()) * 0.1
	if math.Abs(float64(flips)-want) > 4*math.Sqrt(want) {
		t.Fatalf("flips %d, want ~%v", flips, want)
	}
	if in.FlipQuantized(q, 0) != 0 {
		t.Fatal("zero rate flipped bits")
	}
}

func TestFlipFloats(t *testing.T) {
	in := New(9)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i) / 500
	}
	orig := append([]float64(nil), xs...)
	flips := in.FlipFloats(xs, 0.02)
	if flips == 0 {
		t.Fatal("no flips")
	}
	changed := 0
	for i := range xs {
		if xs[i] != orig[i] {
			changed++
		}
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
			t.Fatalf("non-finite value leaked at %d", i)
		}
	}
	if changed == 0 {
		t.Fatal("values unchanged despite flips")
	}
	// Expected flips: 500 * 64 * 0.02 = 640.
	if math.Abs(float64(flips)-640) > 4*math.Sqrt(640) {
		t.Fatalf("flip count %d far from 640", flips)
	}
}

func TestFlipFloatMatrix(t *testing.T) {
	in := New(10)
	m := [][]float64{{1, 2}, {3, 4}}
	if in.FlipFloatMatrix(m, 0.3) == 0 {
		t.Fatal("no flips in matrix")
	}
}

func TestFlipImagePixels(t *testing.T) {
	in := New(11)
	pix := make([]uint8, 10000)
	flips := in.FlipImagePixels(pix, 0.05)
	want := 10000 * 8 * 0.05
	if math.Abs(float64(flips)-want) > 4*math.Sqrt(want) {
		t.Fatalf("flips %d, want ~%v", flips, want)
	}
	changed := 0
	for _, p := range pix {
		if p != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("pixels unchanged")
	}
	if in.FlipImagePixels(pix, 0) != 0 {
		t.Fatal("zero rate flipped pixels")
	}
}

// The robustness asymmetry at the heart of Table 2: the same bit-error rate
// barely moves hypervector similarity but wrecks float values.
func TestHolographicVsFloatSensitivity(t *testing.T) {
	r := hv.NewRNG(12)
	d := 10000
	a := hv.NewRand(r, d)
	noisy := a.Clone()
	New(13).FlipVector(noisy, 0.02)
	if cos := a.Cos(noisy); cos < 0.9 {
		t.Fatalf("2%% flips dropped hypervector cos to %v", cos)
	}
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 0.5
	}
	New(14).FlipFloats(xs, 0.02)
	var relErr float64
	for _, x := range xs {
		relErr += math.Abs(x-0.5) / 0.5
	}
	relErr /= float64(len(xs))
	if relErr < 1 {
		t.Fatalf("float mean relative error %v — expected catastrophic (>100%%)", relErr)
	}
}

func BenchmarkFlipVector(b *testing.B) {
	in := New(1)
	v := hv.NewRand(hv.NewRNG(2), 10240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.FlipVector(v, 0.05)
	}
}

func TestFlipFixed8(t *testing.T) {
	in := New(15)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = float64(i%256) / 255
	}
	orig := append([]float64(nil), xs...)
	flips := in.FlipFixed8(xs, 0, 1, 0.05)
	want := 2000 * 8 * 0.05
	if math.Abs(float64(flips)-want) > 4*math.Sqrt(want) {
		t.Fatalf("flips %d, want ~%v", flips, want)
	}
	for i, x := range xs {
		if x < 0 || x > 1 {
			t.Fatalf("value %d left [0,1]: %v", i, x)
		}
		_ = orig[i]
	}
	// Zero rate only requantises; values stay within one code step.
	ys := []float64{0.1, 0.9}
	if in.FlipFixed8(ys, 0, 1, 0) != 0 {
		t.Fatal("zero rate flipped bits")
	}
	// Degenerate range is a no-op.
	if in.FlipFixed8(ys, 1, 1, 0.5) != 0 {
		t.Fatal("degenerate range flipped bits")
	}
}

func TestFlipFixed8GentlerThanFloat(t *testing.T) {
	// The motivation for fixed-point fault surfaces: the same bit-error
	// rate produces bounded damage on 8-bit codes but unbounded relative
	// error on IEEE-754 words.
	mk := func() []float64 {
		xs := make([]float64, 3000)
		for i := range xs {
			xs[i] = 0.5
		}
		return xs
	}
	meanAbs := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += math.Abs(x - 0.5)
		}
		return s / float64(len(xs))
	}
	fx := mk()
	New(16).FlipFixed8(fx, 0, 1, 0.02)
	fl := mk()
	New(17).FlipFloats(fl, 0.02)
	if meanAbs(fx) >= meanAbs(fl) {
		t.Fatalf("fixed-point damage %v not below float damage %v", meanAbs(fx), meanAbs(fl))
	}
}

func TestFlipFixed8Matrix(t *testing.T) {
	in := New(18)
	m := [][]float64{{0.2, 0.8}, {0.5, 0.5}}
	if in.FlipFixed8Matrix(m, 0, 1, 0.5) == 0 {
		t.Fatal("no flips")
	}
}

func TestFlipVectorsPerVectorSubstream(t *testing.T) {
	r := hv.NewRNG(8)
	d := 4096
	base := make([]*hv.Vector, 4)
	for i := range base {
		base[i] = hv.NewRand(r, d)
	}
	clone := func() []*hv.Vector {
		out := make([]*hv.Vector, len(base))
		for i, v := range base {
			out[i] = v.Clone()
		}
		return out
	}
	// Batch corruption equals per-index corruption: vector i's pattern is
	// keyed on (seed, i), not on how many vectors came before it.
	batch := clone()
	New(9).FlipVectors(batch, 0.1)
	solo := clone()
	in := New(9)
	for i := len(solo) - 1; i >= 0; i-- { // reverse order must not matter
		in.FlipVectorAt(solo[i], uint64(i), 0.1)
	}
	for i := range base {
		if !batch[i].Equal(solo[i]) {
			t.Fatalf("vector %d: batch and per-index patterns differ", i)
		}
	}
	// Distinct indices draw distinct patterns.
	a, b := base[0].Clone(), base[0].Clone()
	in.FlipVectorAt(a, 0, 0.1)
	in.FlipVectorAt(b, 1, 0.1)
	if a.Equal(b) {
		t.Fatal("indices 0 and 1 shared a fault pattern")
	}
	// The substream ignores the injector's shared sequential stream.
	drained := New(9)
	drained.FlipVector(base[3].Clone(), 0.5) // advance the shared stream
	c := base[0].Clone()
	drained.FlipVectorAt(c, 0, 0.1)
	if !c.Equal(a) {
		t.Fatal("FlipVectorAt pattern depends on shared stream position")
	}
	// Rate 0 is a no-op.
	if in.FlipVectorAt(base[0].Clone(), 0, 0) != 0 {
		t.Fatal("zero rate flipped bits")
	}
}
