// Package noise implements the fault-injection machinery behind the
// paper's robustness study (Table 2 and the Section 2 motivation): random
// bit errors applied to packed hypervectors, to quantised DNN weight codes
// and to IEEE-754 float feature words. Error rate r means each bit of the
// target representation flips independently with probability r.
package noise

import (
	"math"

	"hdface/internal/hv"
	"hdface/internal/nn"
)

// Injector draws reproducible fault patterns.
type Injector struct {
	rng  *hv.RNG
	seed uint64
}

// New returns an injector seeded by seed.
func New(seed uint64) *Injector {
	return &Injector{rng: hv.NewRNG(seed ^ 0xfa017), seed: seed}
}

// FlipVector flips each bit of v independently with probability rate and
// returns the number of flips. The pattern comes from the injector's shared
// sequential stream; use FlipVectorAt when the pattern must not depend on
// what was corrupted before.
func (in *Injector) FlipVector(v *hv.Vector, rate float64) int {
	if rate <= 0 {
		return 0
	}
	mask := hv.NewRandBiased(in.rng, v.D(), rate)
	flips := mask.OnesCount()
	v.Xor(v, mask)
	return flips
}

// FlipVectorAt flips each bit of v independently with probability rate,
// drawing the fault pattern from a substream keyed on (injector seed, idx)
// via hv.Mix64. The pattern of index idx is a pure function of the seed —
// independent of injection order, of how many vectors were corrupted before
// it, and of the injector's shared stream — which is what lets the chaos
// harness corrupt the same logical memory cell identically across runs.
func (in *Injector) FlipVectorAt(v *hv.Vector, idx uint64, rate float64) int {
	if rate <= 0 {
		return 0
	}
	r := hv.NewRNG(hv.Mix64(in.seed^0xfa017, idx))
	mask := hv.NewRandBiased(r, v.D(), rate)
	flips := mask.OnesCount()
	v.Xor(v, mask)
	return flips
}

// FlipVectors applies FlipVectorAt to every vector, keyed by slice index:
// vector i receives the same fault pattern whether the whole batch or just
// vector i is corrupted.
func (in *Injector) FlipVectors(vs []*hv.Vector, rate float64) int {
	total := 0
	for i, v := range vs {
		total += in.FlipVectorAt(v, uint64(i), rate)
	}
	return total
}

// FlipQuantized flips each weight bit of the quantised network with
// probability rate and re-syncs the inference weights. Returns the flip
// count.
func (in *Injector) FlipQuantized(q *nn.Quantized, rate float64) int {
	if rate <= 0 {
		return 0
	}
	flips := 0
	for t, codes := range q.Codes() {
		for i := range codes {
			for b := 0; b < q.Bits; b++ {
				if in.rng.Float64() < rate {
					q.FlipBit(t, i, b)
					flips++
				}
			}
		}
	}
	q.Sync()
	return flips
}

// FlipFloats flips each of the 64 bits of every float64 independently with
// probability rate — the "feature extraction on original data
// representation" failure mode of the paper's Section 2 motivation. NaN
// and Inf results are squashed to 0 (a real system would fault or saturate;
// squashing is the charitable choice for the baseline).
func (in *Injector) FlipFloats(xs []float64, rate float64) int {
	if rate <= 0 {
		return 0
	}
	flips := 0
	for i, x := range xs {
		bits := math.Float64bits(x)
		for b := 0; b < 64; b++ {
			if in.rng.Float64() < rate {
				bits ^= 1 << uint(b)
				flips++
			}
		}
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		xs[i] = v
	}
	return flips
}

// FlipFloatMatrix applies FlipFloats row-wise.
func (in *Injector) FlipFloatMatrix(m [][]float64, rate float64) int {
	total := 0
	for _, row := range m {
		total += in.FlipFloats(row, rate)
	}
	return total
}

// FlipFixed8 flips bits in an 8-bit fixed-point rendering of the values:
// each value is quantised to lo + code*(hi-lo)/255, each of the 8 code bits
// flips independently with probability rate, and the value is dequantised
// back. This models bit errors on the feature memories of embedded
// pipelines, which store normalised feature maps fixed-point rather than as
// IEEE-754 words (where a single exponent flip is catastrophic).
func (in *Injector) FlipFixed8(xs []float64, lo, hi float64, rate float64) int {
	if rate <= 0 || hi <= lo {
		return 0
	}
	flips := 0
	scale := (hi - lo) / 255
	for i, x := range xs {
		t := (x - lo) / (hi - lo)
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		code := uint8(t*255 + 0.5)
		for b := 0; b < 8; b++ {
			if in.rng.Float64() < rate {
				code ^= 1 << uint(b)
				flips++
			}
		}
		xs[i] = lo + float64(code)*scale
	}
	return flips
}

// FlipFixed8Matrix applies FlipFixed8 row-wise.
func (in *Injector) FlipFixed8Matrix(m [][]float64, lo, hi float64, rate float64) int {
	total := 0
	for _, row := range m {
		total += in.FlipFixed8(row, lo, hi, rate)
	}
	return total
}

// FlipImagePixels flips each bit of each 8-bit pixel with probability rate
// — models faults on the raw sensor data path.
func (in *Injector) FlipImagePixels(pix []uint8, rate float64) int {
	if rate <= 0 {
		return 0
	}
	flips := 0
	for i, p := range pix {
		for b := 0; b < 8; b++ {
			if in.rng.Float64() < rate {
				p ^= 1 << uint(b)
				flips++
			}
		}
		pix[i] = p
	}
	return flips
}
