package hv

import (
	"math/bits"
	"testing"
)

// naiveFusedRef recomputes FusedHamming the slow, obvious way: materialize
// every operand with NewRemat, accumulate signed counts per dimension in
// int64, threshold against bias with a NewRand tie vector, then take plain
// Hamming distances. The fused kernel must match it bit for bit.
func naiveFusedRef(d int, seeds []uint64, w2 []int32, bias int32, tieSeed uint64, classes []*Vector) (*Vector, []int) {
	acc := make([]int64, d)
	for j, s := range seeds {
		op := NewRemat(s, d)
		for i := 0; i < d; i++ {
			if op.Bit(i) > 0 {
				acc[i] += int64(w2[j])
			}
		}
	}
	tie := NewRand(NewRNG(tieSeed), d)
	out := New(d)
	for i := 0; i < d; i++ {
		c := acc[i] - int64(bias)
		switch {
		case c > 0:
			out.SetBit(i, 1)
		case c == 0:
			out.SetBit(i, tie.Bit(i))
		}
	}
	dist := make([]int, len(classes))
	for c, cv := range classes {
		dist[c] = out.Hamming(cv)
	}
	return out, dist
}

func TestRematDeterministicAndCacheIdentical(t *testing.T) {
	for _, d := range []int{64, 100, 128, 1000, 2048} {
		a := NewRemat(42, d)
		b := NewRemat(42, d)
		if !a.Equal(b) {
			t.Fatalf("d=%d: NewRemat not deterministic", d)
		}
		if a.Equal(NewRemat(43, d)) {
			t.Fatalf("d=%d: distinct seeds collided", d)
		}
		// Word-level view must agree with the whole-vector view.
		for wi, w := range a.Words() {
			want := RematWord(42, wi)
			if wi == len(a.Words())-1 {
				want &= tailMaskFor(d)
			}
			if w != want {
				t.Fatalf("d=%d word %d: got %#x want %#x", d, wi, w, want)
			}
		}
		// Tail bits beyond d must be clear.
		if last := a.Words()[len(a.Words())-1]; last&^tailMaskFor(d) != 0 {
			t.Fatalf("d=%d: tail bits set: %#x", d, last)
		}
	}
}

func TestRematAllocs(t *testing.T) {
	v := New(2048)
	allocs := testing.AllocsPerRun(100, func() { v.Remat(7) })
	if allocs != 0 {
		t.Fatalf("Remat allocated %.1f times per run, want 0", allocs)
	}
}

func TestAddScaledWordAndComparePlanes(t *testing.T) {
	// Scalar cross-check of the bit-sliced primitives on random inputs.
	rng := NewRNG(99)
	for iter := 0; iter < 200; iter++ {
		var planes [fusedPlanes + 1]uint64
		sums := make([]uint64, 64)
		terms := rng.Intn(8)
		var total uint64
		for j := 0; j < terms; j++ {
			word := rng.Uint64()
			m := uint32(rng.Intn(1<<12) + 1)
			total += uint64(m)
			if bits.Len64(total) > fusedPlanes {
				break
			}
			addScaledWord(&planes, word, m)
			for i := 0; i < 64; i++ {
				if word>>uint(i)&1 == 1 {
					sums[i] += uint64(m)
				}
			}
		}
		p := bits.Len64(total)
		b := uint64(rng.Intn(int(total) + 2))
		if bits.Len64(b) > p {
			b = total
		}
		gt, eq := comparePlanes(planes[:p], b)
		for i := 0; i < 64; i++ {
			// Re-read the planes for lane i to confirm the add was exact.
			var got uint64
			for j := 0; j <= p; j++ {
				got |= (planes[j] >> uint(i) & 1) << uint(j)
			}
			if got != sums[i] {
				t.Fatalf("iter %d lane %d: bit-sliced sum %d, want %d", iter, i, got, sums[i])
			}
			if wantGT := sums[i] > b; gt>>uint(i)&1 == 1 != wantGT {
				t.Fatalf("iter %d lane %d: gt mask wrong (sum %d vs b %d)", iter, i, sums[i], b)
			}
			if wantEQ := sums[i] == b; eq>>uint(i)&1 == 1 != wantEQ {
				t.Fatalf("iter %d lane %d: eq mask wrong (sum %d vs b %d)", iter, i, sums[i], b)
			}
		}
	}
}

func TestFusedHammingMatchesNaive(t *testing.T) {
	rng := NewRNG(7)
	for iter := 0; iter < 60; iter++ {
		d := []int{64, 100, 128, 320, 512, 1000}[iter%6]
		nTerms := rng.Intn(24)
		seeds := make([]uint64, nTerms)
		w2 := make([]int32, nTerms)
		var bias int32
		for j := range seeds {
			seeds[j] = rng.Uint64()
			w := int32(rng.Intn(300) + 1)
			w2[j] = 2 * w
			bias += w
		}
		nClasses := rng.Intn(3) + 1
		classes := make([]*Vector, nClasses)
		classWords := make([][]uint64, nClasses)
		for c := range classes {
			classes[c] = NewRand(rng, d)
			classWords[c] = classes[c].Words()
		}
		tieSeed := rng.Uint64()

		wantOut, wantDist := naiveFusedRef(d, seeds, w2, bias, tieSeed, classes)

		out := make([]uint64, wordsFor(d))
		dist := make([]int, nClasses)
		FusedHamming(d, seeds, w2, bias, NewRNG(tieSeed), classWords, out, dist)

		for wi, w := range out {
			if w != wantOut.Words()[wi] {
				t.Fatalf("iter %d d=%d terms=%d: out word %d = %#x, want %#x",
					iter, d, nTerms, wi, w, wantOut.Words()[wi])
			}
		}
		for c := range dist {
			if dist[c] != wantDist[c] {
				t.Fatalf("iter %d d=%d: dist[%d] = %d, want %d", iter, d, c, dist[c], wantDist[c])
			}
		}
	}
}

func TestFusedHammingEmptyWindow(t *testing.T) {
	// Zero weight mass: every dimension ties, so the output is exactly the
	// tie vector (tail masked) — the same answer the two-pass path gives.
	const d = 100
	out := make([]uint64, wordsFor(d))
	dist := make([]int, 1)
	cls := NewRand(NewRNG(3), d)
	FusedHamming(d, nil, nil, 0, NewRNG(11), [][]uint64{cls.Words()}, out, dist)
	want := NewRand(NewRNG(11), d)
	for wi, w := range out {
		if w != want.Words()[wi] {
			t.Fatalf("word %d = %#x, want tie word %#x", wi, w, want.Words()[wi])
		}
	}
	if dist[0] != want.Hamming(cls) {
		t.Fatalf("dist = %d, want %d", dist[0], want.Hamming(cls))
	}
}

func TestFusedHammingAllocs(t *testing.T) {
	const d = 2048
	rng := NewRNG(5)
	seeds := make([]uint64, 40)
	w2 := make([]int32, 40)
	var bias int32
	for j := range seeds {
		seeds[j] = rng.Uint64()
		w := int32(rng.Intn(100) + 1)
		w2[j] = 2 * w
		bias += w
	}
	classes := [][]uint64{NewRand(rng, d).Words(), NewRand(rng, d).Words()}
	out := make([]uint64, wordsFor(d))
	dist := make([]int, 2)
	tie := NewRNG(1)
	allocs := testing.AllocsPerRun(100, func() {
		FusedHamming(d, seeds, w2, bias, tie, classes, out, dist)
	})
	if allocs != 0 {
		t.Fatalf("FusedHamming allocated %.1f times per run, want 0", allocs)
	}
}
