package hv

import (
	"math"
	"testing"
	"testing/quick"
)

const testD = 4096

func TestNewIsAllMinusOne(t *testing.T) {
	v := New(100)
	for i := 0; i < 100; i++ {
		if v.Bit(i) != -1 {
			t.Fatalf("bit %d of fresh vector is %d", i, v.Bit(i))
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("fresh vector has %d ones", v.OnesCount())
	}
}

func TestNewPanicsOnBadD(t *testing.T) {
	for _, d := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestSetBitGetBit(t *testing.T) {
	v := New(130)
	v.SetBit(0, 1)
	v.SetBit(64, 1)
	v.SetBit(129, 1)
	for i := 0; i < 130; i++ {
		want := -1
		if i == 0 || i == 64 || i == 129 {
			want = 1
		}
		if v.Bit(i) != want {
			t.Fatalf("bit %d = %d, want %d", i, v.Bit(i), want)
		}
	}
	v.SetBit(64, -1)
	if v.Bit(64) != -1 {
		t.Fatal("clearing bit 64 failed")
	}
	if v.OnesCount() != 2 {
		t.Fatalf("OnesCount = %d, want 2", v.OnesCount())
	}
}

func TestFromWords(t *testing.T) {
	w := []uint64{^uint64(0), ^uint64(0)}
	v, err := FromWords(100, w)
	if err != nil {
		t.Fatal(err)
	}
	if v.OnesCount() != 100 {
		t.Fatalf("tail bits not masked: OnesCount = %d", v.OnesCount())
	}
	if _, err := FromWords(100, []uint64{1}); err == nil {
		t.Fatal("FromWords accepted wrong word count")
	}
	if _, err := FromWords(0, nil); err == nil {
		t.Fatal("FromWords accepted d=0")
	}
}

func TestRandIsBalanced(t *testing.T) {
	r := NewRNG(1)
	v := NewRand(r, 100000)
	frac := v.Frac()
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("random vector +1 fraction %v, want ~0.5", frac)
	}
}

func TestRandomVectorsNearOrthogonal(t *testing.T) {
	r := NewRNG(2)
	a, b := NewRand(r, testD), NewRand(r, testD)
	if cos := a.Cos(b); math.Abs(cos) > 0.08 {
		t.Fatalf("random hypervectors have |cos| = %v, want ~0", cos)
	}
}

func TestRandBiasedDensity(t *testing.T) {
	r := NewRNG(3)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.7313, 0.9, 1} {
		v := NewRandBiased(r, 100000, p)
		if math.Abs(v.Frac()-p) > 0.01 {
			t.Fatalf("RandBiased(%v) density %v", p, v.Frac())
		}
	}
}

func TestXorSelfIsZero(t *testing.T) {
	r := NewRNG(4)
	a := NewRand(r, testD)
	out := New(testD).Xor(a, a)
	if out.OnesCount() != 0 {
		t.Fatal("a^a is not all zero")
	}
}

func TestXorAlias(t *testing.T) {
	r := NewRNG(5)
	a := NewRand(r, testD)
	b := NewRand(r, testD)
	want := New(testD).Xor(a, b)
	a2 := a.Clone()
	a2.Xor(a2, b) // aliased destination
	if !a2.Equal(want) {
		t.Fatal("aliased Xor wrong")
	}
}

func TestXor3MatchesPairwise(t *testing.T) {
	r := NewRNG(6)
	a, b, c := NewRand(r, testD), NewRand(r, testD), NewRand(r, testD)
	want := New(testD).Xor(New(testD).Xor(a, b), c)
	got := New(testD).Xor3(a, b, c)
	if !got.Equal(want) {
		t.Fatal("Xor3 != chained Xor")
	}
}

func TestNotIsNegation(t *testing.T) {
	r := NewRNG(7)
	a := NewRand(r, 1000)
	n := a.Neg()
	for i := 0; i < 1000; i++ {
		if a.Bit(i) != -n.Bit(i) {
			t.Fatalf("negation wrong at %d", i)
		}
	}
	if got := a.Cos(n); got != -1 {
		t.Fatalf("cos(a, -a) = %v, want -1", got)
	}
	// Tail bits must stay clear after Not on non-word-aligned D.
	odd := NewRand(r, 100)
	no := odd.Neg()
	if no.OnesCount() != 100-odd.OnesCount() {
		t.Fatal("Not leaked tail bits")
	}
}

func TestSelect(t *testing.T) {
	d := 256
	a := New(d)
	for i := 0; i < d; i++ {
		a.SetBit(i, 1) // all +1
	}
	b := New(d) // all -1
	mask := New(d)
	for i := 0; i < d; i += 2 {
		mask.SetBit(i, 1)
	}
	out := New(d).Select(mask, a, b)
	for i := 0; i < d; i++ {
		want := -1
		if i%2 == 0 {
			want = 1
		}
		if out.Bit(i) != want {
			t.Fatalf("Select wrong at %d", i)
		}
	}
}

func TestSelectWeightedAverageStatistics(t *testing.T) {
	// Select with a Bernoulli(p) mask must give cos(out, a) ~ p*1 + (1-p)*cos(a,b).
	r := NewRNG(8)
	d := 100000
	a, b := NewRand(r, d), NewRand(r, d)
	p := 0.7
	mask := NewRandBiased(r, d, p)
	out := New(d).Select(mask, a, b)
	if got := out.Cos(a); math.Abs(got-p) > 0.02 {
		t.Fatalf("cos(out,a) = %v, want ~%v", got, p)
	}
	if got := out.Cos(b); math.Abs(got-(1-p)) > 0.02 {
		t.Fatalf("cos(out,b) = %v, want ~%v", got, 1-p)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	r := NewRNG(9)
	for _, d := range []int{64, 128, testD, 100, 130} {
		a := NewRand(r, d)
		fwd := New(d).Permute(a, 17)
		back := New(d).Permute(fwd, d-17)
		if !back.Equal(a) {
			t.Fatalf("d=%d: permute round trip failed", d)
		}
	}
}

func TestPermutePreservesPopulation(t *testing.T) {
	r := NewRNG(10)
	for _, d := range []int{64, testD, 100} {
		a := NewRand(r, d)
		p := New(d).Permute(a, 33)
		if p.OnesCount() != a.OnesCount() {
			t.Fatalf("d=%d: permutation changed population", d)
		}
	}
}

func TestPermuteZeroIsIdentity(t *testing.T) {
	r := NewRNG(11)
	a := NewRand(r, testD)
	if !New(testD).Permute(a, 0).Equal(a) {
		t.Fatal("rho^0 != identity")
	}
	if !New(testD).Permute(a, testD).Equal(a) {
		t.Fatal("rho^D != identity")
	}
	if !New(testD).Permute(a, -testD).Equal(a) {
		t.Fatal("rho^-D != identity")
	}
}

func TestPermuteExactBits(t *testing.T) {
	d := 128
	a := New(d)
	a.SetBit(0, 1)
	a.SetBit(127, 1)
	p := New(d).Permute(a, 1)
	// Bit 0 moves to 1; bit 127 wraps around to 0.
	if p.Bit(1) != 1 || p.Bit(0) != 1 || p.Bit(127) != -1 {
		t.Fatal("single-step permute misplaced bits")
	}
	if p.OnesCount() != 2 {
		t.Fatalf("population changed: %d", p.OnesCount())
	}
}

func TestPermuteNearOrthogonalToSource(t *testing.T) {
	r := NewRNG(12)
	a := NewRand(r, testD)
	p := New(testD).Permute(a, 1)
	if cos := a.Cos(p); math.Abs(cos) > 0.08 {
		t.Fatalf("rho(a) should be ~orthogonal to a, cos = %v", cos)
	}
}

func TestHammingDotCosRelations(t *testing.T) {
	r := NewRNG(13)
	a, b := NewRand(r, testD), NewRand(r, testD)
	h := a.Hamming(b)
	if got := a.Dot(b); got != testD-2*h {
		t.Fatalf("dot = %d, want %d", got, testD-2*h)
	}
	if got := a.Cos(b); math.Abs(got-float64(testD-2*h)/testD) > 1e-12 {
		t.Fatalf("cos mismatch")
	}
	if got := a.HammingSim(b); math.Abs(got-(1-float64(h)/testD)) > 1e-12 {
		t.Fatalf("hamming sim mismatch")
	}
	if a.Cos(a) != 1 {
		t.Fatal("cos(a,a) != 1")
	}
	if a.Hamming(a) != 0 {
		t.Fatal("hamming(a,a) != 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := NewRNG(14)
	a := NewRand(r, 200)
	c := a.Clone()
	c.SetBit(0, -a.Bit(0))
	if a.Bit(0) == c.Bit(0) {
		t.Fatal("clone shares storage")
	}
}

func TestCopyFrom(t *testing.T) {
	r := NewRNG(15)
	a, b := NewRand(r, 200), New(200)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom failed")
	}
}

func TestEqualDimensionMismatch(t *testing.T) {
	if New(64).Equal(New(128)) {
		t.Fatal("vectors of different D reported equal")
	}
}

func TestMajorityOdd(t *testing.T) {
	r := NewRNG(16)
	a, b, c := NewRand(r, testD), NewRand(r, testD), NewRand(r, testD)
	m := MajorityOdd(a, b, c)
	// Majority of three must be similar to each constituent (~0.5 cos).
	for i, v := range []*Vector{a, b, c} {
		if cos := m.Cos(v); cos < 0.3 {
			t.Fatalf("majority not similar to constituent %d: cos=%v", i, cos)
		}
	}
}

func TestMajorityOddPanics(t *testing.T) {
	r := NewRNG(17)
	a, b := NewRand(r, 64), NewRand(r, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("even MajorityOdd did not panic")
		}
	}()
	MajorityOdd(a, b)
}

func TestDimMismatchPanics(t *testing.T) {
	a, b := New(64), New(128)
	for name, f := range map[string]func(){
		"Xor":     func() { New(64).Xor(a, b) },
		"Hamming": func() { a.Hamming(b) },
		"Select":  func() { New(64).Select(a, a, b) },
		"Permute": func() { New(128).Permute(a, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched D did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEntropy(t *testing.T) {
	r := NewRNG(18)
	v := NewRand(r, 100000)
	if e := v.Entropy(); e < 0.999 {
		t.Fatalf("random vector entropy %v, want ~1", e)
	}
	if e := New(100).Entropy(); e != 0 {
		t.Fatalf("constant vector entropy %v, want 0", e)
	}
}

func TestBernoulliFillExtremes(t *testing.T) {
	r := NewRNG(19)
	zero := NewRandBiased(r, 1000, 0)
	if zero.OnesCount() != 0 {
		t.Fatal("p=0 produced ones")
	}
	one := NewRandBiased(r, 1000, 1)
	if one.OnesCount() != 1000 {
		t.Fatal("p=1 produced zeros")
	}
}

// Property: XOR distance is a metric satisfying the triangle inequality on
// random triples.
func TestHammingTriangleInequality(t *testing.T) {
	r := NewRNG(20)
	f := func(seed uint64) bool {
		rr := NewRNG(seed ^ r.Uint64())
		a, b, c := NewRand(rr, 512), NewRand(rr, 512), NewRand(rr, 512)
		return a.Hamming(c) <= a.Hamming(b)+b.Hamming(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Select(mask, a, a) == a for any mask.
func TestSelectIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := NewRand(r, 320)
		mask := NewRand(r, 320)
		return New(320).Select(mask, a, a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: permutation is a bijection — composing rho^j after rho^k equals
// rho^(j+k).
func TestPermuteComposition(t *testing.T) {
	f := func(seed uint64, j, k uint8) bool {
		r := NewRNG(seed)
		d := 256
		a := NewRand(r, d)
		jk := New(d).Permute(New(d).Permute(a, int(j)), int(k))
		direct := New(d).Permute(a, int(j)+int(k))
		return jk.Equal(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXorKernel(b *testing.B) {
	r := NewRNG(1)
	x, y := NewRand(r, 10240), NewRand(r, 10240)
	out := New(10240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out.Xor(x, y)
	}
}

// BenchmarkXorPerBit is the ablation comparator for DESIGN.md: per-dimension
// XOR instead of word-parallel.
func BenchmarkXorPerBit(b *testing.B) {
	r := NewRNG(1)
	x, y := NewRand(r, 10240), NewRand(r, 10240)
	out := New(10240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10240; j++ {
			if x.Bit(j) != y.Bit(j) {
				out.SetBit(j, 1)
			} else {
				out.SetBit(j, -1)
			}
		}
	}
}

func BenchmarkHamming(b *testing.B) {
	r := NewRNG(2)
	x, y := NewRand(r, 10240), NewRand(r, 10240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Hamming(y)
	}
}

func BenchmarkBernoulliMask(b *testing.B) {
	r := NewRNG(3)
	v := New(10240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.RandBiased(r, 0.37)
	}
}

func BenchmarkBernoulliMaskHalf(b *testing.B) {
	r := NewRNG(4)
	v := New(10240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.RandBiased(r, 0.5)
	}
}
