package hv

import (
	"fmt"
	"sort"
)

// Index is an associative memory over labelled binary hypervectors: items
// are stored verbatim and queried by Hamming-similarity nearest-neighbour
// search — the HDC item-memory structure classification, tracking and
// clean-up memories build on.
type Index struct {
	d      int
	keys   []*Vector
	labels []int
}

// NewIndex returns an empty index for dimensionality d.
func NewIndex(d int) *Index {
	if d <= 0 {
		panic("hv: index dimensionality must be positive")
	}
	return &Index{d: d}
}

// Len returns the number of stored items.
func (ix *Index) Len() int { return len(ix.keys) }

// D returns the dimensionality.
func (ix *Index) D() int { return ix.d }

// Add stores a vector with an integer label. The vector is cloned, so the
// caller may keep mutating its copy.
func (ix *Index) Add(v *Vector, label int) {
	if v.D() != ix.d {
		panic(fmt.Sprintf("hv: index dimensionality %d, vector %d", ix.d, v.D()))
	}
	ix.keys = append(ix.keys, v.Clone())
	ix.labels = append(ix.labels, label)
}

// Match is one search result.
type Match struct {
	Pos   int // insertion position of the stored item
	Label int
	Sim   float64 // Hamming similarity in [0, 1]
}

// Search returns the k most similar stored items, best first. Fewer than k
// results are returned when the index is smaller.
func (ix *Index) Search(q *Vector, k int) []Match {
	if q.D() != ix.d {
		panic(fmt.Sprintf("hv: index dimensionality %d, query %d", ix.d, q.D()))
	}
	if k <= 0 {
		return nil
	}
	ms := make([]Match, len(ix.keys))
	for i, key := range ix.keys {
		ms[i] = Match{Pos: i, Label: ix.labels[i], Sim: q.HammingSim(key)}
	}
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Sim != ms[b].Sim {
			return ms[a].Sim > ms[b].Sim
		}
		return ms[a].Pos < ms[b].Pos
	})
	if k > len(ms) {
		k = len(ms)
	}
	return ms[:k]
}

// Nearest returns the single best match and true, or false for an empty
// index.
func (ix *Index) Nearest(q *Vector) (Match, bool) {
	ms := ix.Search(q, 1)
	if len(ms) == 0 {
		return Match{}, false
	}
	return ms[0], true
}

// Update replaces the vector stored at position pos (e.g. refreshing a
// track's appearance template).
func (ix *Index) Update(pos int, v *Vector) {
	if pos < 0 || pos >= len(ix.keys) {
		panic("hv: index position out of range")
	}
	if v.D() != ix.d {
		panic("hv: dimensionality mismatch")
	}
	ix.keys[pos] = v.Clone()
}

// Remove deletes the item at position pos. Positions of later items shift
// down by one, matching slice semantics.
func (ix *Index) Remove(pos int) {
	if pos < 0 || pos >= len(ix.keys) {
		panic("hv: index position out of range")
	}
	ix.keys = append(ix.keys[:pos], ix.keys[pos+1:]...)
	ix.labels = append(ix.labels[:pos], ix.labels[pos+1:]...)
}
