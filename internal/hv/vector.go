// Package hv implements bit-packed binary hypervectors and the word-parallel
// kernels HDFace builds on: similarity, permutation, majority bundling,
// Bernoulli-mask component selection, and integer/float accumulators.
//
// A hypervector is a point in {-1,+1}^D stored as D sign bits packed into
// uint64 words: bit 1 encodes +1, bit 0 encodes -1. All element-wise
// operations therefore process 64 dimensions per machine word, which is the
// source of HDFace's efficiency claim over float feature pipelines.
package hv

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Vector is a D-dimensional binary hypervector. The zero value is an empty
// (D = 0) vector; use New or the RNG-based constructors for usable vectors.
//
// Dimensions beyond D in the final word are kept at zero by every operation
// so that popcount-based kernels need no masking on the hot path.
type Vector struct {
	d     int
	words []uint64
}

// wordsFor returns the number of uint64 words needed to hold d bits.
func wordsFor(d int) int { return (d + 63) / 64 }

// New returns an all -1 (all bits zero) hypervector of dimensionality d.
func New(d int) *Vector {
	if d <= 0 {
		panic("hv: dimensionality must be positive")
	}
	return &Vector{d: d, words: make([]uint64, wordsFor(d))}
}

// FromWords wraps the given words as a Vector of dimension d. The slice is
// used directly (not copied); tail bits past d are cleared.
func FromWords(d int, words []uint64) (*Vector, error) {
	if d <= 0 {
		return nil, errors.New("hv: dimensionality must be positive")
	}
	if len(words) != wordsFor(d) {
		return nil, fmt.Errorf("hv: want %d words for d=%d, got %d", wordsFor(d), d, len(words))
	}
	v := &Vector{d: d, words: words}
	v.maskTail()
	return v, nil
}

// maskTail clears bits at positions >= d in the last word.
func (v *Vector) maskTail() {
	if r := uint(v.d % 64); r != 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// tailMask returns the mask of valid bits in the final word (all ones when
// d is a multiple of 64).
func (v *Vector) tailMask() uint64 {
	if r := uint(v.d % 64); r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// D returns the dimensionality.
func (v *Vector) D() int { return v.d }

// Words exposes the packed words for read-only iteration by kernels in
// sibling packages (noise injection, serialisation). Mutating the returned
// slice mutates the vector.
func (v *Vector) Words() []uint64 { return v.words }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{d: v.d, words: w}
}

// CopyFrom overwrites v with the contents of src. Dimensions must match.
func (v *Vector) CopyFrom(src *Vector) {
	v.mustMatch(src)
	copy(v.words, src.words)
}

// Bit returns the element at dimension i as +1 or -1.
func (v *Vector) Bit(i int) int {
	if i < 0 || i >= v.d {
		panic("hv: dimension out of range")
	}
	if v.words[i/64]>>(uint(i)%64)&1 == 1 {
		return 1
	}
	return -1
}

// SetBit sets dimension i to +1 (sign > 0) or -1.
func (v *Vector) SetBit(i int, sign int) {
	if i < 0 || i >= v.d {
		panic("hv: dimension out of range")
	}
	mask := uint64(1) << (uint(i) % 64)
	if sign > 0 {
		v.words[i/64] |= mask
	} else {
		v.words[i/64] &^= mask
	}
}

// OnesCount returns the number of +1 components.
func (v *Vector) OnesCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (v *Vector) mustMatch(o *Vector) {
	if v.d != o.d {
		panic(fmt.Sprintf("hv: dimensionality mismatch %d vs %d", v.d, o.d))
	}
}

// Rand fills v with uniform random signs.
func (v *Vector) Rand(r *RNG) *Vector {
	for i := range v.words {
		v.words[i] = r.Uint64()
	}
	v.maskTail()
	return v
}

// NewRand returns a fresh uniform random hypervector.
func NewRand(r *RNG, d int) *Vector { return New(d).Rand(r) }

// RandBiased fills v with independent Bernoulli(p) bits: each component is
// +1 with probability p. Used for biased basis vectors and Bernoulli masks.
func (v *Vector) RandBiased(r *RNG, p float64) *Vector {
	fillBernoulli(v.words, r, p)
	v.maskTail()
	return v
}

// NewRandBiased returns a fresh Bernoulli(p) hypervector.
func NewRandBiased(r *RNG, d int, p float64) *Vector {
	return New(d).RandBiased(r, p)
}

// Xor sets v = a ^ b elementwise (component product in ±1 semantics when
// one operand is interpreted as a flip mask) and returns v. v may alias
// a or b.
func (v *Vector) Xor(a, b *Vector) *Vector {
	v.mustMatch(a)
	v.mustMatch(b)
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i]
	}
	return v
}

// Xor3 sets v = a ^ b ^ c, the three-way XOR used by stochastic
// multiplication (V_ab = V_1 ^ V_a ^ V_b).
func (v *Vector) Xor3(a, b, c *Vector) *Vector {
	v.mustMatch(a)
	v.mustMatch(b)
	v.mustMatch(c)
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i] ^ c.words[i]
	}
	return v
}

// Not sets v = ^a, i.e. the ±1 negation -a, and returns v. v may alias a.
func (v *Vector) Not(a *Vector) *Vector {
	v.mustMatch(a)
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.maskTail()
	return v
}

// Neg returns a fresh copy of -v.
func (v *Vector) Neg() *Vector { return New(v.d).Not(v) }

// Select sets v[i] = a[i] where mask bit i is 1, else b[i]. This is the
// component-selection primitive behind the stochastic weighted average:
// with a Bernoulli(p) mask, v represents p*a (+) (1-p)*b.
func (v *Vector) Select(mask, a, b *Vector) *Vector {
	v.mustMatch(mask)
	v.mustMatch(a)
	v.mustMatch(b)
	for i := range v.words {
		m := mask.words[i]
		v.words[i] = a.words[i]&m | b.words[i]&^m
	}
	return v
}

// Permute sets v to a rotated left by k dimensions (the HDC permutation
// operation rho) and returns v. v must not alias a. k may be any integer;
// it is reduced modulo D.
func (v *Vector) Permute(a *Vector, k int) *Vector {
	v.mustMatch(a)
	if v == a {
		panic("hv: Permute destination must not alias source")
	}
	d := v.d
	k %= d
	if k < 0 {
		k += d
	}
	for i := range v.words {
		v.words[i] = 0
	}
	// A bit at source dimension i moves to dimension (i + k) % d.
	wordShift := k / 64
	bitShift := uint(k % 64)
	n := len(a.words)
	for i, w := range a.words {
		if w == 0 {
			continue
		}
		lo := w << bitShift
		j := (i + wordShift) % n
		v.words[j] |= lo
		if bitShift != 0 {
			hi := w >> (64 - bitShift)
			v.words[(j+1)%n] |= hi
		}
	}
	// Wrap bits that spilled past dimension d back to the front. For the
	// common case d % 64 == 0 the modular word arithmetic above already
	// wrapped exactly; otherwise fix up the tail.
	if v.d%64 != 0 {
		// Rebuild correctly but slowly for non-word-aligned D; correctness
		// over speed since production dimensionalities are multiples of 64.
		tmp := New(d)
		for i := 0; i < d; i++ {
			if a.words[i/64]>>(uint(i)%64)&1 == 1 {
				j := i + k
				if j >= d {
					j -= d
				}
				tmp.words[j/64] |= 1 << (uint(j) % 64)
			}
		}
		copy(v.words, tmp.words)
	}
	v.maskTail()
	return v
}

// Hamming returns the number of dimensions at which v and o differ.
func (v *Vector) Hamming(o *Vector) int {
	v.mustMatch(o)
	n := 0
	for i := range v.words {
		n += bits.OnesCount64(v.words[i] ^ o.words[i])
	}
	return n
}

// Dot returns the ±1 dot product: D - 2*Hamming.
func (v *Vector) Dot(o *Vector) int {
	return v.d - 2*v.Hamming(o)
}

// Cos returns the normalised similarity delta(v, o) = dot/D in [-1, 1].
// For binary ±1 hypervectors this equals cosine similarity.
func (v *Vector) Cos(o *Vector) float64 {
	return float64(v.Dot(o)) / float64(v.d)
}

// HammingSim returns 1 - Hamming/D in [0, 1].
func (v *Vector) HammingSim(o *Vector) float64 {
	return 1 - float64(v.Hamming(o))/float64(v.d)
}

// Equal reports whether v and o have identical dimensionality and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.d != o.d {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders a short diagnostic form.
func (v *Vector) String() string {
	ones := v.OnesCount()
	return fmt.Sprintf("hv.Vector{D:%d, +1s:%d (%.3f)}", v.d, ones, float64(ones)/float64(v.d))
}

// fillBernoulli fills words with independent Bernoulli(p) bits using the
// binary-expansion comparison method: conceptually each bit position gets a
// uniform U in [0,1) built from `depth` random words, and the output bit is
// U < p. Cost is depth random words per output word, fully word-parallel.
func fillBernoulli(words []uint64, r *RNG, p float64) {
	switch {
	case p <= 0:
		for i := range words {
			words[i] = 0
		}
		return
	case p >= 1:
		for i := range words {
			words[i] = ^uint64(0)
		}
		return
	case p == 0.5:
		for i := range words {
			words[i] = r.Uint64()
		}
		return
	}
	const depth = 24 // p resolved to 2^-24; sampling error at D=10k dominates
	// Precompute p's binary expansion once.
	var pb [depth]bool
	f := p
	for i := 0; i < depth; i++ {
		f *= 2
		if f >= 1 {
			pb[i] = true
			f -= 1
		}
	}
	for i := range words {
		var res uint64   // decided 1-bits
		eq := ^uint64(0) // positions still equal to p's prefix
		for k := 0; k < depth; k++ {
			rw := r.Uint64()
			if pb[k] {
				// U bit 0 where p bit 1 => U < p decided.
				res |= eq &^ rw
				eq &= rw
			} else {
				// U bit 1 where p bit 0 => U > p decided (stays 0).
				eq &^= rw
			}
			if eq == 0 {
				break
			}
		}
		words[i] = res
	}
}

// MajorityOdd bundles an odd number of hypervectors by exact bitwise
// majority and returns a fresh vector. It panics if len(vs) is even or zero.
// For large fan-in prefer Accumulator, which is O(n*D/64) with small
// constants and supports ties.
func MajorityOdd(vs ...*Vector) *Vector {
	if len(vs) == 0 || len(vs)%2 == 0 {
		panic("hv: MajorityOdd requires an odd, positive number of vectors")
	}
	acc := NewAccumulator(vs[0].d)
	for _, v := range vs {
		acc.Add(v)
	}
	out, _ := acc.Sign(nil)
	return out
}

// Frac returns the fraction of +1 components, an estimator used in
// diagnostics and property tests.
func (v *Vector) Frac() float64 {
	return float64(v.OnesCount()) / float64(v.d)
}

// Entropy returns the empirical Shannon entropy (in bits) of the component
// distribution; a healthy random hypervector is close to 1.
func (v *Vector) Entropy() float64 {
	p := v.Frac()
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
