package hv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorAddSign(t *testing.T) {
	r := NewRNG(1)
	a := NewRand(r, 512)
	acc := NewAccumulator(512)
	acc.Add(a)
	out, ties := acc.Sign(nil)
	if ties != 0 {
		t.Fatalf("single add produced %d ties", ties)
	}
	if !out.Equal(a) {
		t.Fatal("sign of single vector != vector")
	}
}

func TestAccumulatorAddSubCancel(t *testing.T) {
	r := NewRNG(2)
	a := NewRand(r, 512)
	acc := NewAccumulator(512)
	acc.Add(a)
	acc.Sub(a)
	for i, c := range acc.Counts() {
		if c != 0 {
			t.Fatalf("count %d nonzero after add/sub: %d", i, c)
		}
	}
	if acc.N() != 0 {
		t.Fatalf("N = %d after cancel", acc.N())
	}
	_, ties := acc.Sign(nil)
	if ties != 512 {
		t.Fatalf("expected all ties, got %d", ties)
	}
}

func TestAccumulatorMajoritySimilarity(t *testing.T) {
	// Bundling n random vectors: each constituent keeps cos ~ C/sqrt(n).
	r := NewRNG(3)
	d := 10000
	acc := NewAccumulator(d)
	vs := make([]*Vector, 9)
	for i := range vs {
		vs[i] = NewRand(r, d)
		acc.Add(vs[i])
	}
	bundle, _ := acc.Sign(NewRand(r, d))
	for i, v := range vs {
		cos := bundle.Cos(v)
		if cos < 0.15 {
			t.Fatalf("constituent %d lost from bundle: cos=%v", i, cos)
		}
	}
	// An unrelated vector stays near orthogonal.
	if cos := bundle.Cos(NewRand(r, d)); math.Abs(cos) > 0.08 {
		t.Fatalf("unrelated vector cos %v", cos)
	}
}

func TestAccumulatorAddScaled(t *testing.T) {
	r := NewRNG(4)
	a, b := NewRand(r, 256), NewRand(r, 256)
	acc := NewAccumulator(256)
	acc.AddScaled(a, 3)
	acc.Add(b)
	// a should dominate everywhere the two disagree.
	out, _ := acc.Sign(nil)
	if !out.Equal(a) {
		t.Fatal("scale-3 vector did not dominate scale-1")
	}
	if acc.N() != 4 {
		t.Fatalf("N = %d, want 4", acc.N())
	}
}

func TestAccumulatorAddScaledNegative(t *testing.T) {
	r := NewRNG(5)
	a := NewRand(r, 256)
	acc := NewAccumulator(256)
	acc.AddScaled(a, -2)
	out, _ := acc.Sign(nil)
	if !out.Equal(a.Neg()) {
		t.Fatal("negative scale did not negate")
	}
}

func TestAccumulatorDotConsistency(t *testing.T) {
	r := NewRNG(6)
	d := 512
	a, q := NewRand(r, d), NewRand(r, d)
	acc := NewAccumulator(d)
	acc.Add(a)
	if got, want := acc.Dot(q), int64(a.Dot(q)); got != want {
		t.Fatalf("accumulator dot %d, vector dot %d", got, want)
	}
}

func TestAccumulatorCos(t *testing.T) {
	r := NewRNG(7)
	d := 2048
	a := NewRand(r, d)
	acc := NewAccumulator(d)
	acc.Add(a)
	if got := acc.Cos(a); math.Abs(got-1) > 1e-9 {
		t.Fatalf("cos(acc(a), a) = %v, want 1", got)
	}
	if got := NewAccumulator(d).Cos(a); got != 0 {
		t.Fatalf("empty accumulator cos = %v, want 0", got)
	}
}

func TestAccumulatorSignTieBreak(t *testing.T) {
	r := NewRNG(8)
	d := 10000
	acc := NewAccumulator(d)
	tie := NewRand(r, d)
	out, ties := acc.Sign(tie)
	if ties != d {
		t.Fatalf("ties = %d, want %d", ties, d)
	}
	if !out.Equal(tie) {
		t.Fatal("tie-break did not use tie vector")
	}
}

func TestAccumulatorResetClone(t *testing.T) {
	r := NewRNG(9)
	a := NewRand(r, 128)
	acc := NewAccumulator(128)
	acc.Add(a)
	c := acc.Clone()
	acc.Reset()
	if acc.N() != 0 || acc.Norm() != 0 {
		t.Fatal("reset incomplete")
	}
	if c.N() != 1 {
		t.Fatal("clone affected by reset")
	}
	out, _ := c.Sign(nil)
	if !out.Equal(a) {
		t.Fatal("clone contents wrong")
	}
}

func TestAccumulatorDimMismatchPanics(t *testing.T) {
	acc := NewAccumulator(64)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Add")
		}
	}()
	acc.Add(New(128))
}

// Property: Dot(acc of single v, v) == D for any random v.
func TestAccumulatorSelfDotProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := NewRand(r, 256)
		acc := NewAccumulator(256)
		acc.Add(v)
		return acc.Dot(v) == 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulation is order-independent (commutative bundling).
func TestAccumulatorCommutativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		vs := []*Vector{NewRand(r, 192), NewRand(r, 192), NewRand(r, 192)}
		a1 := NewAccumulator(192)
		a2 := NewAccumulator(192)
		a1.Add(vs[0])
		a1.Add(vs[1])
		a1.Add(vs[2])
		a2.Add(vs[2])
		a2.Add(vs[0])
		a2.Add(vs[1])
		for i := range a1.Counts() {
			if a1.Counts()[i] != a2.Counts()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	r := NewRNG(1)
	v := NewRand(r, 4096)
	acc := NewAccumulator(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Add(v)
	}
}

func BenchmarkAccumulatorSign(b *testing.B) {
	r := NewRNG(2)
	acc := NewAccumulator(4096)
	for i := 0; i < 32; i++ {
		acc.Add(NewRand(r, 4096))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Sign(nil)
	}
}
