package hv

import (
	"bytes"
	"testing"
)

func TestWriteReadSetRoundTrip(t *testing.T) {
	r := NewRNG(1)
	var vs []*Vector
	var labels []int
	for i := 0; i < 9; i++ {
		vs = append(vs, NewRand(r, 200)) // non-word-aligned D
		labels = append(labels, i%3)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, vs, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("got %d vectors", len(got))
	}
	for i := range vs {
		if !got[i].Equal(vs[i]) {
			t.Fatalf("vector %d changed", i)
		}
		if gotLabels[i] != labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestWriteSetValidation(t *testing.T) {
	r := NewRNG(2)
	var buf bytes.Buffer
	if err := WriteSet(&buf, nil, nil); err == nil {
		t.Fatal("accepted empty set")
	}
	vs := []*Vector{NewRand(r, 64), NewRand(r, 128)}
	if err := WriteSet(&buf, vs, []int{0, 1}); err == nil {
		t.Fatal("accepted mixed dimensionalities")
	}
	if err := WriteSet(&buf, vs[:1], []int{0, 1}); err == nil {
		t.Fatal("accepted misaligned labels")
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("HVF1"), // truncated header
		append([]byte("HVF1"), make([]byte, 8)...),        // zero d/count
		append([]byte("HVF1"), 0, 0, 0, 0xff, 1, 0, 0, 0), // huge d
	}
	for i, data := range cases {
		if _, _, err := ReadSet(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
	// Truncated payload.
	r := NewRNG(3)
	var buf bytes.Buffer
	if err := WriteSet(&buf, []*Vector{NewRand(r, 128)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := ReadSet(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

// Property: permutation is an isometry of Hamming distance.
func TestPermuteIsometry(t *testing.T) {
	r := NewRNG(4)
	for trial := 0; trial < 30; trial++ {
		d := 256
		a, b := NewRand(r, d), NewRand(r, d)
		k := 1 + r.Intn(d-1)
		pa := New(d).Permute(a, k)
		pb := New(d).Permute(b, k)
		if pa.Hamming(pb) != a.Hamming(b) {
			t.Fatalf("permutation changed Hamming distance at k=%d", k)
		}
	}
}
