package hv

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteReadSetRoundTrip(t *testing.T) {
	r := NewRNG(1)
	var vs []*Vector
	var labels []int
	for i := 0; i < 9; i++ {
		vs = append(vs, NewRand(r, 200)) // non-word-aligned D
		labels = append(labels, i%3)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, vs, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("got %d vectors", len(got))
	}
	for i := range vs {
		if !got[i].Equal(vs[i]) {
			t.Fatalf("vector %d changed", i)
		}
		if gotLabels[i] != labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestWriteSetValidation(t *testing.T) {
	r := NewRNG(2)
	var buf bytes.Buffer
	if err := WriteSet(&buf, nil, nil); err == nil {
		t.Fatal("accepted empty set")
	}
	vs := []*Vector{NewRand(r, 64), NewRand(r, 128)}
	if err := WriteSet(&buf, vs, []int{0, 1}); err == nil {
		t.Fatal("accepted mixed dimensionalities")
	}
	if err := WriteSet(&buf, vs[:1], []int{0, 1}); err == nil {
		t.Fatal("accepted misaligned labels")
	}
}

// TestWriteSetRejectsWideLabels pins the label-overflow fix: labels outside
// int32 were silently truncated on the wire (a 64-bit label read back as a
// different class); they must now error without writing a corrupt stream.
func TestWriteSetRejectsWideLabels(t *testing.T) {
	r := NewRNG(5)
	vs := []*Vector{NewRand(r, 64), NewRand(r, 64)}
	for _, bad := range []int{math.MaxInt32 + 1, math.MinInt32 - 1} {
		var buf bytes.Buffer
		err := WriteSet(&buf, vs, []int{0, bad})
		if err == nil {
			t.Fatalf("label %d accepted", bad)
		}
		if !strings.Contains(err.Error(), "int32") {
			t.Fatalf("error %q does not name the int32 range", err)
		}
	}
	// Extremes of the representable range still round-trip.
	var buf bytes.Buffer
	if err := WriteSet(&buf, vs, []int{math.MinInt32, math.MaxInt32}); err != nil {
		t.Fatal(err)
	}
	_, labels, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != math.MinInt32 || labels[1] != math.MaxInt32 {
		t.Fatalf("extreme labels changed: %v", labels)
	}
}

// TestReadSetErrorsCarryOffsets asserts truncation errors name the byte
// offset of the item that failed, so a corrupt cache is locatable.
func TestReadSetErrorsCarryOffsets(t *testing.T) {
	r := NewRNG(6)
	var vs []*Vector
	var labels []int
	for i := 0; i < 3; i++ {
		vs = append(vs, NewRand(r, 128))
		labels = append(labels, i)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, vs, labels); err != nil {
		t.Fatal(err)
	}
	// Item stride is 4 + 2*8 = 20 bytes after the 12-byte header. Cut in
	// the middle of item 2's words: its payload starts at 12 + 2*20 + 4.
	cut := 12 + 2*20 + 4 + 3
	_, _, err := ReadSet(bytes.NewReader(buf.Bytes()[:cut]))
	if err == nil {
		t.Fatal("truncated set decoded")
	}
	if !strings.Contains(err.Error(), "item 2/3") || !strings.Contains(err.Error(), "offset 56") {
		t.Fatalf("error %q lacks item index or byte offset", err)
	}
	// Cut inside a label instead.
	_, _, err = ReadSet(bytes.NewReader(buf.Bytes()[:12+20+2]))
	if err == nil {
		t.Fatal("truncated set decoded")
	}
	if !strings.Contains(err.Error(), "offset 32") {
		t.Fatalf("label error %q lacks byte offset", err)
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("HVF1"), // truncated header
		append([]byte("HVF1"), make([]byte, 8)...),        // zero d/count
		append([]byte("HVF1"), 0, 0, 0, 0xff, 1, 0, 0, 0), // huge d
	}
	for i, data := range cases {
		if _, _, err := ReadSet(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
	// Truncated payload.
	r := NewRNG(3)
	var buf bytes.Buffer
	if err := WriteSet(&buf, []*Vector{NewRand(r, 128)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := ReadSet(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

// Property: permutation is an isometry of Hamming distance.
func TestPermuteIsometry(t *testing.T) {
	r := NewRNG(4)
	for trial := 0; trial < 30; trial++ {
		d := 256
		a, b := NewRand(r, d), NewRand(r, d)
		k := 1 + r.Intn(d-1)
		pa := New(d).Permute(a, k)
		pb := New(d).Permute(b, k)
		if pa.Hamming(pb) != a.Hamming(b) {
			t.Fatalf("permutation changed Hamming distance at k=%d", k)
		}
	}
}
