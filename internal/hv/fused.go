package hv

import (
	"fmt"
	"math/bits"
)

// This file holds the word-level primitives of the fused window-scoring
// kernel: seed rematerialization of basis hypervectors and a bit-sliced
// bundle-binarize-popcount pass that never materializes the bundled
// hypervector's operands.
//
// Rematerialization (Schmuck et al.) trades memory traffic for cheap
// recompute: instead of caching every positional basis hypervector and
// streaming D/8 bytes per operand through the cache hierarchy, a kernel
// regenerates each 64-bit word from a seed with one Mix64 hash exactly when
// it is consumed. The working set of a window-scoring pass collapses to the
// window's weights plus a cache-resident accumulator.

// RematWord returns word wi of the hypervector rematerialized from seed:
// the packed-word stream Mix64(seed, 0), Mix64(seed, 1), ... Each word is
// an independent hash of (seed, wi), so kernels can regenerate any word in
// O(1) with no sequential dependency — the property that lets a word-at-a-
// time loop interleave many rematerialized operands.
func RematWord(seed uint64, wi int) uint64 { return Mix64(seed, uint64(wi)) }

// Remat overwrites v with the hypervector defined by seed (word wi =
// RematWord(seed, wi), tail bits cleared) and returns v. Cached and
// on-the-fly forms of a rematerialized hypervector are therefore
// bit-identical by construction.
func (v *Vector) Remat(seed uint64) *Vector {
	for i := range v.words {
		v.words[i] = Mix64(seed, uint64(i))
	}
	v.maskTail()
	return v
}

// NewRemat returns a fresh hypervector rematerialized from seed.
func NewRemat(seed uint64, d int) *Vector { return New(d).Remat(seed) }

// fusedPlanes bounds the bit-sliced counter depth of FusedHamming:
// per-dimension weight mass up to 2^fusedPlanes - 1. Realistic window
// bundles stay far below it (a 6x6-cell window at weightScale 64 sums to a
// few hundred thousand at most); the guard exists so silent counter
// overflow is impossible.
const fusedPlanes = 32

// addScaledWord adds m copies of the set bits of word into the bit-sliced
// counters: one ripple-carry add of word at every set bit position of m.
// With the counters held as bit planes, adding a 64-dimension operand costs
// popcount(m) short carry chains of word-parallel AND/XOR — this is where
// the kernel's word-at-a-time claim is earned, replacing 64 scalar lane
// updates per operand word.
func addScaledWord(planes *[fusedPlanes + 1]uint64, word uint64, m uint32) {
	for ; m != 0; m &= m - 1 {
		j := bits.TrailingZeros32(m)
		carry := word
		for carry != 0 {
			t := planes[j] & carry
			planes[j] ^= carry
			carry = t
			j++
		}
	}
}

// comparePlanes compares the bit-sliced per-dimension sums against the
// scalar threshold b, scanning planes most-significant first. It returns
// the dimension masks (value > b) and (value == b). Every sum must fit in
// len(planes) bits and b must satisfy b < 2^len(planes).
func comparePlanes(planes []uint64, b uint64) (gt, eq uint64) {
	eq = ^uint64(0)
	for j := len(planes) - 1; j >= 0; j-- {
		p := planes[j]
		if b>>uint(j)&1 == 1 {
			// Threshold bit set: dimensions with a clear plane bit (and
			// equal prefixes) fall below b — they leave the race entirely.
			eq &= p
		} else {
			// Threshold bit clear: dimensions with a set plane bit (and
			// equal prefixes) exceed b.
			gt |= eq & p
			eq &^= p
		}
	}
	return
}

// FusedHamming is the single-pass scoring kernel: it computes the binarized
// weighted bundle sign(sum_j w_j * HV(seeds_j) - bias) word by word —
// rematerializing each operand word from its seed on the fly — and folds
// every word straight into Hamming-distance popcounts against the packed
// class hypervectors. Nothing is allocated and no operand hypervector is
// ever materialized: per output word the kernel touches only a stack-
// resident bit-sliced accumulator, the seed/weight arrays and one word per
// class.
//
// Arguments:
//   - d: dimensionality of the bundle and of every class vector.
//   - seeds, w2: per-operand rematerialization seed (see RematWord) and
//     DOUBLED weight 2*w_j > 0; operands contribute +w_j on set bits and
//     -w_j on clear bits, accumulated as +2*w_j over set bits with bias
//     subtracted once.
//   - bias: sum of the (un-doubled) weights w_j.
//   - tie: exact-zero ties take the next rng word's bit, one word drawn per
//     output word in order — bit-compatible with thresholding against a
//     NewRand(tie, d) tie vector, so a fused pass is byte-identical to the
//     two-pass bundle-then-score path seeded the same way.
//   - classes: packed words of each class hypervector (Vector.Words).
//   - out: scratch receiving the bundled hypervector's words (tail masked);
//     len(out) words for d dimensions.
//   - dist: overwritten with per-class Hamming distances.
//
// The caller owns every slice; reusing them across calls makes the kernel
// allocation-free (see the AllocsPerRun pins in fused_test.go).
func FusedHamming(d int, seeds []uint64, w2 []int32, bias int32, tie *RNG, classes [][]uint64, out []uint64, dist []int) {
	nw := wordsFor(d)
	if d <= 0 {
		panic("hv: FusedHamming dimensionality must be positive")
	}
	if len(seeds) != len(w2) {
		panic(fmt.Sprintf("hv: FusedHamming %d seeds vs %d weights", len(seeds), len(w2)))
	}
	if len(out) != nw {
		panic(fmt.Sprintf("hv: FusedHamming out has %d words, want %d", len(out), nw))
	}
	if len(dist) != len(classes) {
		panic(fmt.Sprintf("hv: FusedHamming %d distances vs %d classes", len(dist), len(classes)))
	}
	for c, cw := range classes {
		if len(cw) != nw {
			panic(fmt.Sprintf("hv: FusedHamming class %d has %d words, want %d", c, len(cw), nw))
		}
	}
	if bias < 0 {
		panic("hv: FusedHamming bias must be non-negative")
	}
	// Counter depth: every per-dimension sum is at most sum(w2) = 2*bias.
	p := bits.Len64(2 * uint64(bias))
	if p > fusedPlanes {
		panic("hv: FusedHamming weight mass overflows the bit-sliced counters")
	}
	for c := range dist {
		dist[c] = 0
	}
	tail := tailMaskFor(d)
	var planes [fusedPlanes + 1]uint64
	for wi := 0; wi < nw; wi++ {
		for j := 0; j <= p; j++ {
			planes[j] = 0
		}
		for j, s := range seeds {
			addScaledWord(&planes, Mix64(s, uint64(wi)), uint32(w2[j]))
		}
		gt, eq := comparePlanes(planes[:p], uint64(bias))
		ow := gt | eq&tie.Uint64()
		if wi == nw-1 {
			ow &= tail
		}
		out[wi] = ow
		for c, cw := range classes {
			dist[c] += bits.OnesCount64(ow ^ cw[wi])
		}
	}
}

// tailMaskFor returns the valid-bit mask of the final packed word for
// dimensionality d (all ones when d is a multiple of 64).
func tailMaskFor(d int) uint64 {
	if r := uint(d % 64); r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}
