package hv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestRNGReseed(t *testing.T) {
	a := NewRNG(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if v := a.Uint64(); v != first[i] {
			t.Fatalf("reseed did not restore stream at %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical words", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		seen := make(map[int]bool)
		for i := 0; i < 50*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) returned %d", n, v)
			}
			seen[v] = true
		}
		if n <= 64 && len(seen) != n {
			t.Fatalf("Intn(%d) only produced %d distinct values", n, len(seen))
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children share %d words", same)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(10)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestRNGPermIsUniformish(t *testing.T) {
	// Position of element 0 should be uniform across slots.
	r := NewRNG(11)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		p := r.Perm(n)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("slot %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	// Against big-integer-free check: (x*y) mod 2^64 must equal lo.
	f := func(x, y uint64) bool {
		_, lo := mul64(x, y)
		return lo == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
