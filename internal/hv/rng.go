package hv

import "math"

// RNG is a small, fast, deterministic pseudo-random generator used for all
// hypervector randomness in HDFace. It is a xoshiro256** generator seeded
// through splitmix64, which gives high-quality 64-bit words at about one
// nanosecond per word — fast enough that Bernoulli mask generation, the hot
// path of stochastic arithmetic, is not RNG-bound.
//
// RNG is deliberately not safe for concurrent use; callers that fan work out
// across goroutines derive independent child generators with Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used only to expand a seed into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := new(RNG)
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream defined by seed.
func (r *RNG) Reseed(seed uint64) {
	st := seed
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Mix64 hashes two 64-bit values into one with the splitmix64 finalizer.
// It derives well-separated seeds from structured inputs (a base seed plus
// a row, level or window index), so units of work can reseed their private
// generators as pure functions of their position — the foundation of
// scheduling-independent parallel sweeps.
func Mix64(a, b uint64) uint64 {
	x := a + 0x9e3779b97f4a7c15*(b+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hv: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation. The slight modulo
	// bias of the plain multiply-shift is removed by the rejection loop.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Split derives an independent child generator. The child stream is a
// deterministic function of the parent state, and drawing it advances the
// parent, so successive Splits yield distinct streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Shuffle permutes the first n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
