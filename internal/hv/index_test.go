package hv

import (
	"testing"
	"testing/quick"
)

func TestIndexBasics(t *testing.T) {
	r := NewRNG(1)
	ix := NewIndex(512)
	if ix.Len() != 0 || ix.D() != 512 {
		t.Fatal("fresh index wrong")
	}
	protos := make([]*Vector, 4)
	for i := range protos {
		protos[i] = NewRand(r, 512)
		ix.Add(protos[i], i)
	}
	if ix.Len() != 4 {
		t.Fatal("Len wrong")
	}
	// Exact queries retrieve themselves.
	for i, p := range protos {
		m, ok := ix.Nearest(p)
		if !ok || m.Label != i || m.Sim != 1 {
			t.Fatalf("exact query %d: %+v", i, m)
		}
	}
	// Noisy queries still land on the right prototype.
	for i, p := range protos {
		q := p.Clone()
		q.Xor(q, NewRandBiased(r, 512, 0.2))
		if m, _ := ix.Nearest(q); m.Label != i {
			t.Fatalf("noisy query %d matched %d", i, m.Label)
		}
	}
}

func TestIndexSearchOrderingAndK(t *testing.T) {
	r := NewRNG(2)
	ix := NewIndex(256)
	base := NewRand(r, 256)
	for i, flip := range []float64{0.05, 0.15, 0.3} {
		v := base.Clone()
		v.Xor(v, NewRandBiased(r, 256, flip))
		ix.Add(v, i)
	}
	ms := ix.Search(base, 3)
	if len(ms) != 3 {
		t.Fatalf("got %d matches", len(ms))
	}
	if ms[0].Label != 0 || ms[1].Label != 1 || ms[2].Label != 2 {
		t.Fatalf("ordering wrong: %+v", ms)
	}
	if ms[0].Sim < ms[1].Sim || ms[1].Sim < ms[2].Sim {
		t.Fatal("similarities not descending")
	}
	// k larger than the index truncates; k <= 0 empty.
	if got := ix.Search(base, 10); len(got) != 3 {
		t.Fatal("oversized k not truncated")
	}
	if got := ix.Search(base, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestIndexNearestEmpty(t *testing.T) {
	ix := NewIndex(64)
	if _, ok := ix.Nearest(New(64)); ok {
		t.Fatal("empty index returned a match")
	}
}

func TestIndexUpdateRemove(t *testing.T) {
	r := NewRNG(3)
	ix := NewIndex(128)
	a, b := NewRand(r, 128), NewRand(r, 128)
	ix.Add(a, 10)
	ix.Add(b, 20)
	// Update slot 0 to b's pattern: querying b now ties; slot 0 wins by
	// position.
	ix.Update(0, b)
	if m, _ := ix.Nearest(b); m.Pos != 0 {
		t.Fatalf("update not visible: %+v", m)
	}
	ix.Remove(0)
	if ix.Len() != 1 {
		t.Fatal("remove failed")
	}
	if m, _ := ix.Nearest(b); m.Label != 20 {
		t.Fatalf("wrong survivor: %+v", m)
	}
}

func TestIndexClonesOnAdd(t *testing.T) {
	r := NewRNG(4)
	ix := NewIndex(128)
	v := NewRand(r, 128)
	ix.Add(v, 1)
	orig := v.Clone()
	v.Xor(v, NewRandBiased(r, 128, 0.5)) // mutate caller copy
	if m, _ := ix.Nearest(orig); m.Sim != 1 {
		t.Fatal("index shares storage with caller")
	}
}

func TestIndexPanics(t *testing.T) {
	ix := NewIndex(64)
	r := NewRNG(5)
	for name, f := range map[string]func(){
		"bad-d":      func() { NewIndex(0) },
		"add-dim":    func() { ix.Add(NewRand(r, 128), 0) },
		"search-dim": func() { ix.Search(NewRand(r, 128), 1) },
		"update-oob": func() { ix.Update(0, NewRand(r, 64)) },
		"remove-oob": func() { ix.Remove(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: the nearest neighbour of a stored item's noisy copy is never
// farther than the true generator when noise is small and items are far
// apart.
func TestIndexNearestProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		ix := NewIndex(512)
		items := make([]*Vector, 3)
		for i := range items {
			items[i] = NewRand(r, 512)
			ix.Add(items[i], i)
		}
		want := int(r.Uint64() % 3)
		q := items[want].Clone()
		q.Xor(q, NewRandBiased(r, 512, 0.1))
		m, ok := ix.Nearest(q)
		return ok && m.Label == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
