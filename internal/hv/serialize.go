package hv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary serialisation for hypervectors and labelled feature sets, used to
// cache extracted features between runs (feature extraction dominates the
// pipeline cost, so persisting features makes repeated experiments cheap).
//
// Format (little endian):
//
//	magic "HVF1" | uint32 D | uint32 count | count x (int32 label, D/64-ceil uint64 words)

var magic = [4]byte{'H', 'V', 'F', '1'}

// WriteSet serialises labelled vectors. All vectors must share one
// dimensionality.
func WriteSet(w io.Writer, vs []*Vector, labels []int) error {
	if len(vs) == 0 || len(vs) != len(labels) {
		return errors.New("hv: vectors and labels must be non-empty and aligned")
	}
	d := vs[0].D()
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(d), uint32(len(vs))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for i, v := range vs {
		if v.D() != d {
			return fmt.Errorf("hv: vector %d has D=%d, want %d", i, v.D(), d)
		}
		// The wire format stores labels as int32; anything wider would be
		// silently truncated and read back as a different class.
		if labels[i] < math.MinInt32 || labels[i] > math.MaxInt32 {
			return fmt.Errorf("hv: label %d of vector %d outside int32 range", labels[i], i)
		}
		if err := binary.Write(w, binary.LittleEndian, int32(labels[i])); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, v.Words()); err != nil {
			return err
		}
	}
	return nil
}

// ReadSet deserialises a feature set written by WriteSet.
func ReadSet(r io.Reader) ([]*Vector, []int, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, nil, err
	}
	if m != magic {
		return nil, nil, errors.New("hv: bad magic")
	}
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, nil, err
	}
	d, count := int(hdr[0]), int(hdr[1])
	if d <= 0 || d > 1<<24 || count <= 0 || count > 1<<24 {
		return nil, nil, fmt.Errorf("hv: implausible header d=%d count=%d", d, count)
	}
	words := (d + 63) / 64
	// Byte offsets for error reporting: magic (4) + header (8), then each
	// item is a 4-byte label followed by words*8 payload bytes.
	const headerBytes = 4 + 8
	itemBytes := int64(4 + words*8)
	vs := make([]*Vector, 0, count)
	labels := make([]int, 0, count)
	for i := 0; i < count; i++ {
		off := headerBytes + int64(i)*itemBytes
		var label int32
		if err := binary.Read(r, binary.LittleEndian, &label); err != nil {
			return nil, nil, fmt.Errorf("hv: item %d/%d label at byte offset %d: %w", i, count, off, err)
		}
		buf := make([]uint64, words)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, nil, fmt.Errorf("hv: item %d/%d words at byte offset %d: %w", i, count, off+4, err)
		}
		v, err := FromWords(d, buf)
		if err != nil {
			return nil, nil, err
		}
		vs = append(vs, v)
		labels = append(labels, int(label))
	}
	return vs, labels, nil
}
