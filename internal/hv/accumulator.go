package hv

import (
	"fmt"
	"math"
)

// Accumulator is a per-dimension integer counter used to bundle many
// hypervectors: Add/Sub update signed counts, Sign thresholds back to a
// binary hypervector. It is the superposition ("bundling") memory that HDC
// class vectors are built from before binarisation.
type Accumulator struct {
	d      int
	counts []int32
	n      int // signed number of vectors accumulated (adds - subs)
}

// NewAccumulator returns an empty accumulator of dimensionality d.
func NewAccumulator(d int) *Accumulator {
	if d <= 0 {
		panic("hv: dimensionality must be positive")
	}
	return &Accumulator{d: d, counts: make([]int32, d)}
}

// D returns the dimensionality.
func (a *Accumulator) D() int { return a.d }

// N returns the signed count of accumulated vectors.
func (a *Accumulator) N() int { return a.n }

// Counts exposes the raw per-dimension counters (mutable).
func (a *Accumulator) Counts() []int32 { return a.counts }

// Reset zeroes the accumulator.
func (a *Accumulator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
}

func (a *Accumulator) mustMatch(v *Vector) {
	if a.d != v.d {
		panic(fmt.Sprintf("hv: accumulator dimensionality %d vs vector %d", a.d, v.d))
	}
}

// Add accumulates v (+1 components add 1, -1 components subtract 1).
func (a *Accumulator) Add(v *Vector) {
	a.mustMatch(v)
	for i := 0; i < a.d; i++ {
		w := v.words[i/64] >> (uint(i) % 64) & 1
		a.counts[i] += int32(2*w) - 1
	}
	a.n++
}

// AddScaled accumulates round(scale) copies of v's sign pattern using an
// integer weight. Scale may be negative.
func (a *Accumulator) AddScaled(v *Vector, scale int32) {
	a.mustMatch(v)
	for i := 0; i < a.d; i++ {
		w := v.words[i/64] >> (uint(i) % 64) & 1
		a.counts[i] += (int32(2*w) - 1) * scale
	}
	a.n += int(scale)
}

// Sub removes v (inverse of Add).
func (a *Accumulator) Sub(v *Vector) {
	a.mustMatch(v)
	for i := 0; i < a.d; i++ {
		w := v.words[i/64] >> (uint(i) % 64) & 1
		a.counts[i] -= int32(2*w) - 1
	}
	a.n--
}

// Sign thresholds the accumulator into a binary hypervector: positive counts
// map to +1, negative to -1, and exact zeros are broken by tie, a caller
// supplied tie-break vector (typically random). When tie is nil zeros map
// to -1 deterministically. The number of ties is returned for diagnostics.
func (a *Accumulator) Sign(tie *Vector) (*Vector, int) {
	out := New(a.d)
	ties := 0
	for i := 0; i < a.d; i++ {
		c := a.counts[i]
		switch {
		case c > 0:
			out.words[i/64] |= 1 << (uint(i) % 64)
		case c == 0:
			ties++
			if tie != nil && tie.words[i/64]>>(uint(i)%64)&1 == 1 {
				out.words[i/64] |= 1 << (uint(i) % 64)
			}
		}
	}
	return out, ties
}

// Dot returns the integer dot product between the accumulated counts and a
// binary hypervector interpreted in ±1 semantics.
func (a *Accumulator) Dot(v *Vector) int64 {
	a.mustMatch(v)
	var s int64
	for i := 0; i < a.d; i++ {
		w := v.words[i/64] >> (uint(i) % 64) & 1
		c := int64(a.counts[i])
		if w == 1 {
			s += c
		} else {
			s -= c
		}
	}
	return s
}

// Norm returns the L2 norm of the counter vector.
func (a *Accumulator) Norm() float64 {
	var s float64
	for _, c := range a.counts {
		s += float64(c) * float64(c)
	}
	return math.Sqrt(s)
}

// Cos returns cosine similarity between the counters and binary vector v.
// Returns 0 for an empty accumulator.
func (a *Accumulator) Cos(v *Vector) float64 {
	n := a.Norm()
	if n == 0 {
		return 0
	}
	return float64(a.Dot(v)) / (n * math.Sqrt(float64(a.d)))
}

// Clone deep-copies the accumulator.
func (a *Accumulator) Clone() *Accumulator {
	c := NewAccumulator(a.d)
	copy(c.counts, a.counts)
	c.n = a.n
	return c
}
