package imgproc

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WritePGM encodes the image in binary PGM (P5) format, the simplest
// portable grayscale container; any image viewer opens it, which is all the
// Figure 6 visualisation needs.
func (m *Image) WritePGM(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	if _, err := bw.Write(m.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// SavePGM writes the image to a file path.
func (m *Image) SavePGM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WritePGM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPGM decodes a binary (P5) or ASCII (P2) PGM stream. The full
// spec-legal maxval range [1, 65535] is accepted: P5 streams with maxval
// above 255 carry big-endian 2-byte samples, which are rescaled to the
// 8-bit raster all pipelines operate on.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("imgproc: unsupported magic %q", magic)
	}
	w, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	maxv, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imgproc: bad dimensions %dx%d", w, h)
	}
	if maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("imgproc: unsupported maxval %d", maxv)
	}
	img := NewImage(w, h)
	scale := 255.0 / float64(maxv)
	switch {
	case magic == "P5" && maxv > 255:
		// Wide samples: 2 bytes per pixel, most significant byte first.
		row := make([]byte, 2*w)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, row); err != nil {
				return nil, fmt.Errorf("imgproc: short pixel data: %w", err)
			}
			for x := 0; x < w; x++ {
				v := uint16(row[2*x])<<8 | uint16(row[2*x+1])
				img.Pix[y*w+x] = clampU8(float64(v) * scale)
			}
		}
		return img, nil
	case magic == "P5":
		if _, err := io.ReadFull(br, img.Pix); err != nil {
			return nil, fmt.Errorf("imgproc: short pixel data: %w", err)
		}
	default:
		for i := range img.Pix {
			v, err := pgmInt(br)
			if err != nil {
				return nil, fmt.Errorf("imgproc: pixel %d: %w", i, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("imgproc: negative sample %d at pixel %d", v, i)
			}
			img.Pix[i] = clampU8(float64(v) * scale)
		}
		return img, nil
	}
	if maxv != 255 {
		for i, p := range img.Pix {
			img.Pix[i] = clampU8(float64(p) * scale)
		}
	}
	return img, nil
}

// LoadPGM reads a PGM file from disk.
func LoadPGM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPGM(f)
}

// pgmToken reads the next whitespace-delimited token, skipping # comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pgmInt(br *bufio.Reader) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(tok)
}
