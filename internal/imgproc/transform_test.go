package imgproc

import (
	"math"
	"strings"
	"testing"
)

func checker(w, h int) *Image {
	m := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x+y)%2 == 0 {
				m.Set(x, y, 200)
			} else {
				m.Set(x, y, 40)
			}
		}
	}
	return m
}

func TestFlipHInvolution(t *testing.T) {
	m := checker(7, 5)
	m.Set(0, 0, 255)
	f := m.FlipH()
	if f.At(6, 0) != 255 {
		t.Fatal("corner did not move")
	}
	if !f.FlipH().Equal(m) {
		t.Fatal("double horizontal flip != identity")
	}
}

func TestFlipVInvolution(t *testing.T) {
	m := checker(7, 5)
	m.Set(0, 0, 255)
	f := m.FlipV()
	if f.At(0, 4) != 255 {
		t.Fatal("corner did not move")
	}
	if !f.FlipV().Equal(m) {
		t.Fatal("double vertical flip != identity")
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	m := checker(9, 9)
	if !m.Rotate(0).Equal(m) {
		t.Fatal("rotate(0) changed image")
	}
}

func TestRotateQuarterTurn(t *testing.T) {
	// A horizontal bar becomes vertical under a 90 degree rotation.
	m := NewImage(21, 21)
	m.FillRect(2, 9, 19, 12, 255)
	r := m.Rotate(math.Pi / 2)
	if r.At(10, 4) != 255 || r.At(10, 16) != 255 {
		t.Fatalf("bar not vertical after rotation: %d %d", r.At(10, 4), r.At(10, 16))
	}
	if r.At(4, 10) != 255 { // centre column still covered
		t.Log("note: centre sampling", r.At(4, 10))
	}
}

func TestRotatePreservesConstant(t *testing.T) {
	m := NewImage(16, 16)
	m.Fill(99)
	r := m.Rotate(0.7)
	for i, p := range r.Pix {
		if p != 99 {
			t.Fatalf("pixel %d changed to %d", i, p)
		}
	}
}

func TestTranslate(t *testing.T) {
	m := NewImage(8, 8)
	m.Set(2, 2, 255)
	tr := m.Translate(3, 1)
	if tr.At(5, 3) != 255 {
		t.Fatal("pixel did not move")
	}
	// Edge fill comes from clamping.
	m2 := NewImage(4, 4)
	m2.Set(0, 0, 77)
	m2.Fill(77)
	if tr2 := m2.Translate(2, 2); tr2.At(0, 0) != 77 {
		t.Fatal("clamped fill wrong")
	}
}

func TestAdjustBrightness(t *testing.T) {
	m := NewImage(4, 4)
	m.Fill(100)
	if got := m.AdjustBrightness(50).At(0, 0); got != 150 {
		t.Fatalf("brightness +50 = %d", got)
	}
	if got := m.AdjustBrightness(200).At(0, 0); got != 255 {
		t.Fatalf("saturation high = %d", got)
	}
	if got := m.AdjustBrightness(-200).At(0, 0); got != 0 {
		t.Fatalf("saturation low = %d", got)
	}
}

func TestAdjustContrast(t *testing.T) {
	m := NewImage(2, 1)
	m.Set(0, 0, 78)  // 128 - 50
	m.Set(1, 0, 178) // 128 + 50
	c := m.AdjustContrast(2)
	if c.At(0, 0) != 28 || c.At(1, 0) != 228 {
		t.Fatalf("contrast x2 = %d, %d", c.At(0, 0), c.At(1, 0))
	}
	flat := m.AdjustContrast(0)
	if flat.At(0, 0) != 128 || flat.At(1, 0) != 128 {
		t.Fatal("contrast 0 should collapse to mid-gray")
	}
}

func TestEqualizeSpreadsRange(t *testing.T) {
	// A low-contrast ramp must span the full range after equalisation.
	m := NewImage(16, 16)
	m.GradientFill(0, 0, 15, 15, 100, 140)
	e := m.Equalize()
	var lo, hi uint8 = 255, 0
	for _, p := range e.Pix {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi-lo < 200 {
		t.Fatalf("equalised range only %d", hi-lo)
	}
}

func TestEqualizeConstantImage(t *testing.T) {
	m := NewImage(8, 8)
	m.Fill(42)
	if !m.Equalize().Equal(m) {
		t.Fatal("constant image changed by equalisation")
	}
}

func BenchmarkRotate(b *testing.B) {
	m := checker(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Rotate(0.3)
	}
}

func TestASCII(t *testing.T) {
	m := NewImage(16, 8)
	m.FillRect(8, 0, 16, 8, 255)
	art := m.ASCII(16)
	lines := 0
	for _, line := range splitLines(art) {
		if len(line) != 16 {
			t.Fatalf("line width %d, want 16: %q", len(line), line)
		}
		if line[0] != ' ' || line[15] != '@' {
			t.Fatalf("ramp mapping wrong: %q", line)
		}
		lines++
	}
	if lines != 4 { // 8 rows / 2 (cell aspect)
		t.Fatalf("lines %d, want 4", lines)
	}
	// Subsampling respects maxW.
	big := NewImage(128, 16)
	art2 := big.ASCII(32)
	for _, line := range splitLines(art2) {
		if len(line) > 32 {
			t.Fatalf("line exceeds maxW: %d", len(line))
		}
	}
	// Zero maxW falls back to 64.
	if NewImage(8, 4).ASCII(0) == "" {
		t.Fatal("default maxW produced nothing")
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
