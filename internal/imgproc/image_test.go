package imgproc

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewImageZeroed(t *testing.T) {
	m := NewImage(4, 3)
	if m.W != 4 || m.H != 3 || len(m.Pix) != 12 {
		t.Fatalf("bad geometry: %+v", m)
	}
	for i, p := range m.Pix {
		if p != 0 {
			t.Fatalf("pixel %d not zero", i)
		}
	}
}

func TestNewImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewImage(0, 1) did not panic")
		}
	}()
	NewImage(0, 1)
}

func TestAtSetClamping(t *testing.T) {
	m := NewImage(3, 3)
	m.Set(1, 1, 99)
	if m.At(1, 1) != 99 {
		t.Fatal("Set/At round trip failed")
	}
	// Edge clamp reads.
	m.Set(0, 0, 7)
	if m.At(-5, -5) != 7 {
		t.Fatal("negative read did not clamp to (0,0)")
	}
	m.Set(2, 2, 8)
	if m.At(10, 10) != 8 {
		t.Fatal("overflow read did not clamp to (2,2)")
	}
	// Out-of-bounds writes are dropped silently.
	m.Set(-1, 0, 200)
	m.Set(3, 0, 200)
	if m.At(0, 0) != 7 {
		t.Fatal("out-of-bounds write leaked")
	}
}

func TestFillMeanClone(t *testing.T) {
	m := NewImage(5, 5)
	m.Fill(100)
	if m.Mean() != 100 {
		t.Fatalf("mean %v", m.Mean())
	}
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 100 {
		t.Fatal("clone shares storage")
	}
	if m.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Equal failed on identical images")
	}
}

func TestNormAndFloats(t *testing.T) {
	m := NewImage(2, 1)
	m.Set(0, 0, 0)
	m.Set(1, 0, 255)
	if m.Norm(0, 0) != 0 || m.Norm(1, 0) != 1 {
		t.Fatal("Norm wrong")
	}
	f := m.Floats()
	if len(f) != 2 || f[0] != 0 || f[1] != 1 {
		t.Fatalf("Floats wrong: %v", f)
	}
}

func TestCrop(t *testing.T) {
	m := NewImage(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			m.Set(x, y, uint8(y*4+x))
		}
	}
	c := m.Crop(1, 1, 2, 2)
	if c.W != 2 || c.H != 2 {
		t.Fatal("crop geometry wrong")
	}
	if c.At(0, 0) != 5 || c.At(1, 1) != 10 {
		t.Fatalf("crop content wrong: %v", c.Pix)
	}
	// Out-of-range crop clamps.
	e := m.Crop(3, 3, 3, 3)
	if e.At(2, 2) != 15 {
		t.Fatal("clamped crop wrong")
	}
}

func TestResizeIdentity(t *testing.T) {
	m := NewImage(8, 8)
	for i := range m.Pix {
		m.Pix[i] = uint8(i * 3)
	}
	r := m.Resize(8, 8)
	if !r.Equal(m) {
		t.Fatal("identity resize changed pixels")
	}
}

func TestResizePreservesConstant(t *testing.T) {
	m := NewImage(16, 16)
	m.Fill(77)
	r := m.Resize(7, 9)
	for i, p := range r.Pix {
		if p != 77 {
			t.Fatalf("pixel %d = %d after resize of constant image", i, p)
		}
	}
}

func TestResizeDownUpRoughlyPreservesMean(t *testing.T) {
	m := NewImage(32, 32)
	m.GradientFill(0, 0, 31, 31, 0, 255)
	r := m.Resize(8, 8).Resize(32, 32)
	if d := m.Mean() - r.Mean(); d > 6 || d < -6 {
		t.Fatalf("mean drifted by %v through resize round trip", d)
	}
}

func TestIntegral(t *testing.T) {
	m := NewImage(4, 4)
	m.Fill(1)
	it := NewIntegral(m)
	if got := it.Rect(0, 0, 4, 4); got != 16 {
		t.Fatalf("full-rect sum %d", got)
	}
	if got := it.Rect(1, 1, 3, 3); got != 4 {
		t.Fatalf("inner sum %d", got)
	}
	if got := it.Rect(2, 2, 2, 2); got != 0 {
		t.Fatalf("empty rect sum %d", got)
	}
	if got := it.MeanRect(0, 0, 4, 4); got != 1 {
		t.Fatalf("mean %v", got)
	}
	// Clamped query.
	if got := it.Rect(-5, -5, 10, 10); got != 16 {
		t.Fatalf("clamped sum %d", got)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	m := NewImage(9, 7)
	for i := range m.Pix {
		m.Pix[i] = uint8((i * 37) % 251)
	}
	it := NewIntegral(m)
	f := func(a, b, c, d uint8) bool {
		x0, y0 := int(a)%9, int(b)%7
		x1, y1 := x0+int(c)%5, y0+int(d)%5
		var want int64
		for y := y0; y < y1 && y < 7; y++ {
			for x := x0; x < x1 && x < 9; x++ {
				want += int64(m.Pix[y*9+x])
			}
		}
		return it.Rect(x0, y0, x1, y1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	m := NewImage(2, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Pix = m.Pix[:3]
	if err := m.Validate(); err == nil {
		t.Fatal("truncated buffer validated")
	}
}

func TestFillEllipse(t *testing.T) {
	m := NewImage(21, 21)
	m.FillEllipse(10, 10, 5, 5, 0, 255)
	if m.At(10, 10) != 255 {
		t.Fatal("centre not painted")
	}
	if m.At(10, 5) != 255 || m.At(5, 10) != 255 {
		t.Fatal("axis extremes not painted")
	}
	if m.At(0, 0) != 0 || m.At(10, 3) != 0 {
		t.Fatal("outside painted")
	}
}

func TestFillEllipseRotated(t *testing.T) {
	m := NewImage(41, 41)
	// A long thin ellipse rotated 90 degrees must extend vertically.
	m.FillEllipse(20, 20, 15, 2, 1.5707963, 255)
	if m.At(20, 33) != 255 {
		t.Fatal("rotated ellipse missing vertical extent")
	}
	if m.At(33, 20) != 0 {
		t.Fatal("rotated ellipse still horizontal")
	}
}

func TestStrokeEllipseHollow(t *testing.T) {
	m := NewImage(41, 41)
	m.StrokeEllipse(20, 20, 12, 12, 0, 2, 255)
	if m.At(20, 20) != 0 {
		t.Fatal("stroke filled the centre")
	}
	if m.At(20, 8) != 255 {
		t.Fatal("stroke missing on rim")
	}
}

func TestLineAndArc(t *testing.T) {
	m := NewImage(30, 30)
	m.Line(2, 2, 27, 2, 1, 200)
	if m.At(14, 2) != 200 {
		t.Fatal("line midpoint unpainted")
	}
	a := NewImage(40, 40)
	a.Arc(20, 20, 10, 0, 3.1415926, 2, 180)
	if a.At(20, 30) != 180 { // bottom of circle at angle pi/2
		t.Fatal("arc midpoint unpainted")
	}
	if a.At(20, 10) != 0 { // top half not in [0, pi]
		t.Fatal("arc painted outside span")
	}
}

func TestRects(t *testing.T) {
	m := NewImage(10, 10)
	m.FillRect(2, 2, 5, 5, 50)
	if m.At(3, 3) != 50 || m.At(5, 5) != 0 {
		t.Fatal("FillRect bounds wrong")
	}
	// Reversed coordinates normalise.
	m.FillRect(9, 9, 7, 7, 60)
	if m.At(8, 8) != 60 {
		t.Fatal("reversed FillRect failed")
	}
	s := NewImage(10, 10)
	s.StrokeRect(1, 1, 9, 9, 70)
	if s.At(1, 5) != 70 || s.At(8, 5) != 70 || s.At(5, 1) != 70 || s.At(5, 8) != 70 {
		t.Fatal("StrokeRect edges missing")
	}
	if s.At(5, 5) != 0 {
		t.Fatal("StrokeRect filled interior")
	}
}

func TestGradientFill(t *testing.T) {
	m := NewImage(10, 1)
	m.GradientFill(0, 0, 9, 0, 0, 255)
	if m.At(0, 0) != 0 || m.At(9, 0) != 255 {
		t.Fatal("gradient endpoints wrong")
	}
	if m.At(4, 0) <= m.At(1, 0) {
		t.Fatal("gradient not monotone")
	}
	// Degenerate direction falls back to flat fill.
	f := NewImage(4, 4)
	f.GradientFill(2, 2, 2, 2, 9, 200)
	if f.At(1, 1) != 9 {
		t.Fatal("degenerate gradient not flat")
	}
}

func TestBlend(t *testing.T) {
	dst := NewImage(4, 4)
	src := NewImage(2, 2)
	src.Fill(200)
	dst.Blend(src, 1, 1, 1)
	if dst.At(1, 1) != 200 || dst.At(0, 0) != 0 {
		t.Fatal("opaque blend wrong")
	}
	dst2 := NewImage(4, 4)
	dst2.Fill(100)
	dst2.Blend(src, 0, 0, 0.5)
	if got := dst2.At(0, 0); got != 150 {
		t.Fatalf("50%% blend = %d, want 150", got)
	}
	// Off-canvas blends must not panic.
	dst.Blend(src, -1, -1, 1)
	dst.Blend(src, 3, 3, 1)
}

func TestBoxBlurPreservesConstantAndSmooths(t *testing.T) {
	m := NewImage(16, 16)
	m.Fill(99)
	b := m.BoxBlur(2)
	for i, p := range b.Pix {
		if p != 99 {
			t.Fatalf("blur changed constant image at %d: %d", i, p)
		}
	}
	spike := NewImage(9, 9)
	spike.Set(4, 4, 255)
	sb := spike.BoxBlur(1)
	if sb.At(4, 4) >= 255 {
		t.Fatal("blur did not spread the spike")
	}
	if sb.At(3, 3) == 0 {
		t.Fatal("blur neighbourhood untouched")
	}
	if got := spike.BoxBlur(0); !got.Equal(spike) {
		t.Fatal("radius-0 blur changed image")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	m := NewImage(7, 5)
	for i := range m.Pix {
		m.Pix[i] = uint8(i * 7)
	}
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("PGM round trip mismatch")
	}
}

func TestPGMASCIIAndComments(t *testing.T) {
	src := "P2\n# a comment\n3 2\n# another\n255\n0 10 20\n30 40 50\n"
	m, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.W != 3 || m.H != 2 || m.At(2, 1) != 50 {
		t.Fatalf("ASCII decode wrong: %+v", m)
	}
}

func TestPGMMaxvalRescale(t *testing.T) {
	src := "P2\n2 1\n15\n0 15\n"
	m, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0 || m.At(1, 0) != 255 {
		t.Fatalf("maxval rescale wrong: %v", m.Pix)
	}
}

// TestPGM16BitDecode covers the spec-legal maxval range 256..65535: P5
// payloads carry big-endian 2-byte samples that must rescale to 8-bit.
// The seed bug rejected these files outright ("unsupported maxval").
func TestPGM16BitDecode(t *testing.T) {
	// 2x2 raster, maxval 65535: samples 0, 16384, 32768, 65535.
	src := append([]byte("P5\n2 2\n65535\n"),
		0x00, 0x00, 0x40, 0x00, 0x80, 0x00, 0xff, 0xff)
	m, err := ReadPGM(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 64, 128, 255}
	for i, w := range want {
		if m.Pix[i] != w {
			t.Fatalf("pixel %d = %d, want %d (raster %v)", i, m.Pix[i], w, m.Pix)
		}
	}
	// Non-power-of-two maxval: 1000 → sample 500 lands mid-range.
	src = append([]byte("P5\n1 1\n1000\n"), 0x01, 0xf4)
	m, err = ReadPGM(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Pix[0] != 128 {
		t.Fatalf("maxval-1000 midpoint = %d, want 128", m.Pix[0])
	}
	// ASCII P2 with a wide maxval follows the same rescale.
	m, err = ReadPGM(strings.NewReader("P2\n2 1\n1023\n0 1023\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Pix[0] != 0 || m.Pix[1] != 255 {
		t.Fatalf("wide ASCII rescale wrong: %v", m.Pix)
	}
}

// TestPGM16BitShortData asserts a truncated wide-sample payload errors
// instead of decoding a half raster.
func TestPGM16BitShortData(t *testing.T) {
	src := append([]byte("P5\n2 2\n65535\n"), 0x00, 0x01, 0x02)
	if _, err := ReadPGM(bytes.NewReader(src)); err == nil {
		t.Fatal("truncated 16-bit payload decoded")
	}
}

func TestPGMErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"P9\n2 2\n255\n",
		"P5\n0 2\n255\n",
		"P5\n2 2\n70000\n",
		"P5\n2 2\n255\nXY",         // short data
		"P2\n2 1\n255\n0",          // short ASCII data
		"P2\n1 1\n255\n-4",         // negative sample
		"P5\n1 1\n65536\n\x00\x00", // maxval above the 2-byte range
	} {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Fatalf("decode of %q succeeded", src)
		}
	}
}

func BenchmarkResize(b *testing.B) {
	m := NewImage(512, 512)
	m.GradientFill(0, 0, 511, 511, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Resize(64, 64)
	}
}

func BenchmarkBoxBlur(b *testing.B) {
	m := NewImage(256, 256)
	m.GradientFill(0, 0, 255, 255, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.BoxBlur(2)
	}
}
