package imgproc

import "math"

// Drawing primitives for the procedural dataset renderer and the Figure 6
// visualiser. All coordinates are float64 so the renderer can place facial
// features with sub-pixel jitter; rasterisation rounds per pixel.

// FillEllipse paints the filled ellipse centred at (cx, cy) with semi-axes
// (rx, ry), rotated by theta radians, in colour v.
func (m *Image) FillEllipse(cx, cy, rx, ry, theta float64, v uint8) {
	if rx <= 0 || ry <= 0 {
		return
	}
	// Conservative bounding box of the rotated ellipse.
	r := math.Max(rx, ry)
	x0, x1 := int(cx-r)-1, int(cx+r)+1
	y0, y1 := int(cy-r)-1, int(cy+r)+1
	sin, cos := math.Sincos(theta)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			u := dx*cos + dy*sin
			w := -dx*sin + dy*cos
			if u*u/(rx*rx)+w*w/(ry*ry) <= 1 {
				m.Set(x, y, v)
			}
		}
	}
}

// StrokeEllipse paints the outline of the ellipse with the given stroke
// thickness (in pixels).
func (m *Image) StrokeEllipse(cx, cy, rx, ry, theta, thick float64, v uint8) {
	if rx <= 0 || ry <= 0 {
		return
	}
	r := math.Max(rx, ry) + thick
	x0, x1 := int(cx-r)-1, int(cx+r)+1
	y0, y1 := int(cy-r)-1, int(cy+r)+1
	sin, cos := math.Sincos(theta)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			u := dx*cos + dy*sin
			w := -dx*sin + dy*cos
			d := u*u/(rx*rx) + w*w/(ry*ry)
			// Annulus approximation of a stroked conic.
			inner := 1 - thick/math.Min(rx, ry)
			if inner < 0 {
				inner = 0
			}
			if d <= 1 && d >= inner*inner {
				m.Set(x, y, v)
			}
		}
	}
}

// Line draws a straight segment of the given thickness from (x0, y0) to
// (x1, y1).
func (m *Image) Line(x0, y0, x1, y1, thick float64, v uint8) {
	dx, dy := x1-x0, y1-y0
	length := math.Hypot(dx, dy)
	if length == 0 {
		m.FillEllipse(x0, y0, thick/2+0.5, thick/2+0.5, 0, v)
		return
	}
	steps := int(length*2) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		m.FillEllipse(x0+t*dx, y0+t*dy, thick/2+0.5, thick/2+0.5, 0, v)
	}
}

// Arc draws a circular arc centred at (cx, cy) of radius r between angles
// a0 and a1 (radians, increasing counterclockwise in image coordinates)
// with the given stroke thickness. It renders mouths and eyebrows.
func (m *Image) Arc(cx, cy, r, a0, a1, thick float64, v uint8) {
	if r <= 0 {
		return
	}
	span := a1 - a0
	steps := int(math.Abs(span)*r) + 2
	for i := 0; i <= steps; i++ {
		a := a0 + span*float64(i)/float64(steps)
		x := cx + r*math.Cos(a)
		y := cy + r*math.Sin(a)
		m.FillEllipse(x, y, thick/2+0.5, thick/2+0.5, 0, v)
	}
}

// FillRect paints the axis-aligned rectangle [x0, x1) x [y0, y1).
func (m *Image) FillRect(x0, y0, x1, y1 int, v uint8) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y, v)
		}
	}
}

// StrokeRect outlines the axis-aligned rectangle with a 1-pixel border —
// used by the detection visualiser to mark windows.
func (m *Image) StrokeRect(x0, y0, x1, y1 int, v uint8) {
	for x := x0; x < x1; x++ {
		m.Set(x, y0, v)
		m.Set(x, y1-1, v)
	}
	for y := y0; y < y1; y++ {
		m.Set(x0, y, v)
		m.Set(x1-1, y, v)
	}
}

// GradientFill fills the image with a linear brightness ramp from v0 at
// (x0, y0) to v1 at (x1, y1), simulating illumination variation.
func (m *Image) GradientFill(x0, y0, x1, y1 float64, v0, v1 uint8) {
	dx, dy := x1-x0, y1-y0
	den := dx*dx + dy*dy
	if den == 0 {
		m.Fill(v0)
		return
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			t := ((float64(x)-x0)*dx + (float64(y)-y0)*dy) / den
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			m.Pix[y*m.W+x] = clampU8(float64(v0) + t*(float64(v1)-float64(v0)))
		}
	}
}

// Blend alpha-composites src over m at offset (ox, oy): out = (1-a)*dst +
// a*src, where a is constant. Used to paste rendered faces into scenes.
func (m *Image) Blend(src *Image, ox, oy int, a float64) {
	if a < 0 {
		a = 0
	} else if a > 1 {
		a = 1
	}
	for y := 0; y < src.H; y++ {
		ty := oy + y
		if ty < 0 || ty >= m.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			tx := ox + x
			if tx < 0 || tx >= m.W {
				continue
			}
			d := float64(m.Pix[ty*m.W+tx])
			s := float64(src.Pix[y*src.W+x])
			m.Pix[ty*m.W+tx] = clampU8((1-a)*d + a*s)
		}
	}
}

// BoxBlur applies an r-radius box filter (separable, two passes), softening
// the procedural renders so edges are not unnaturally crisp.
func (m *Image) BoxBlur(r int) *Image {
	if r <= 0 {
		return m.Clone()
	}
	tmp := NewImage(m.W, m.H)
	out := NewImage(m.W, m.H)
	win := 2*r + 1
	// Horizontal pass.
	for y := 0; y < m.H; y++ {
		var acc int
		for x := -r; x <= r; x++ {
			acc += int(m.At(x, y))
		}
		for x := 0; x < m.W; x++ {
			tmp.Pix[y*m.W+x] = uint8(acc / win)
			acc += int(m.At(x+r+1, y)) - int(m.At(x-r, y))
		}
	}
	// Vertical pass.
	for x := 0; x < m.W; x++ {
		var acc int
		for y := -r; y <= r; y++ {
			acc += int(tmp.At(x, y))
		}
		for y := 0; y < m.H; y++ {
			out.Pix[y*m.W+x] = uint8(acc / win)
			acc += int(tmp.At(x, y+r+1)) - int(tmp.At(x, y-r))
		}
	}
	return out
}
