// Package imgproc provides the grayscale image substrate HDFace operates
// on: an 8-bit image type, geometric and intensity transforms, drawing
// primitives used by the procedural dataset renderer, integral images, and
// PGM serialisation for the Figure 6 visualiser.
package imgproc

import (
	"errors"
	"fmt"
)

// Image is an 8-bit grayscale raster with row-major storage. 0 is black and
// 255 is white, matching the paper's n = 8 bit convention.
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage returns a black image of the given size.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imgproc: image dimensions must be positive")
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads clamp to the edge,
// which is the boundary handling HOG gradient windows rely on.
func (m *Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= m.H {
		y = m.H - 1
	}
	return m.Pix[y*m.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are dropped.
func (m *Image) Set(x, y int, v uint8) {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = v
}

// Fill sets every pixel to v.
func (m *Image) Fill(v uint8) {
	for i := range m.Pix {
		m.Pix[i] = v
	}
}

// Clone deep-copies the image.
func (m *Image) Clone() *Image {
	c := NewImage(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// Norm returns the pixel at (x, y) normalised to [0, 1], the range the
// stochastic hypervector representation stores.
func (m *Image) Norm(x, y int) float64 {
	return float64(m.At(x, y)) / 255
}

// Floats returns the whole image normalised to [0, 1] in row-major order.
func (m *Image) Floats() []float64 {
	out := make([]float64, len(m.Pix))
	for i, p := range m.Pix {
		out[i] = float64(p) / 255
	}
	return out
}

// Crop returns a copy of the rectangle [x0, x0+w) x [y0, y0+h); regions
// outside the source are edge-clamped.
func (m *Image) Crop(x0, y0, w, h int) *Image {
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = m.At(x0+x, y0+y)
		}
	}
	return out
}

// Resize returns the image scaled to (w, h) with bilinear interpolation.
func (m *Image) Resize(w, h int) *Image {
	out := NewImage(w, h)
	if w == m.W && h == m.H {
		copy(out.Pix, m.Pix)
		return out
	}
	sx := float64(m.W) / float64(w)
	sy := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		if fy < 0 {
			y0 = 0
		}
		dy := fy - float64(y0)
		if dy < 0 {
			dy = 0
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			if fx < 0 {
				x0 = 0
			}
			dx := fx - float64(x0)
			if dx < 0 {
				dx = 0
			}
			p00 := float64(m.At(x0, y0))
			p10 := float64(m.At(x0+1, y0))
			p01 := float64(m.At(x0, y0+1))
			p11 := float64(m.At(x0+1, y0+1))
			v := p00*(1-dx)*(1-dy) + p10*dx*(1-dy) + p01*(1-dx)*dy + p11*dx*dy
			out.Pix[y*w+x] = clampU8(v)
		}
	}
	return out
}

func clampU8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	}
	return uint8(v + 0.5)
}

// Mean returns the average pixel value.
func (m *Image) Mean() float64 {
	var s float64
	for _, p := range m.Pix {
		s += float64(p)
	}
	return s / float64(len(m.Pix))
}

// Equal reports whether two images have identical size and pixels.
func (m *Image) Equal(o *Image) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// Integral is a summed-area table: I[y][x] = sum of pixels in [0,x) x [0,y).
// It answers rectangle sums in O(1), the primitive HAAR-like features and
// fast mean normalisation build on.
type Integral struct {
	w, h int
	sum  []int64
}

// NewIntegral builds the summed-area table of m.
func NewIntegral(m *Image) *Integral {
	w, h := m.W+1, m.H+1
	it := &Integral{w: w, h: h, sum: make([]int64, w*h)}
	for y := 1; y < h; y++ {
		var row int64
		for x := 1; x < w; x++ {
			row += int64(m.Pix[(y-1)*m.W+(x-1)])
			it.sum[y*w+x] = it.sum[(y-1)*w+x] + row
		}
	}
	return it
}

// Rect returns the pixel sum over [x0, x1) x [y0, y1).
func (it *Integral) Rect(x0, y0, x1, y1 int) int64 {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > it.w-1 {
		x1 = it.w - 1
	}
	if y1 > it.h-1 {
		y1 = it.h - 1
	}
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	return it.sum[y1*it.w+x1] - it.sum[y0*it.w+x1] - it.sum[y1*it.w+x0] + it.sum[y0*it.w+x0]
}

// MeanRect returns the mean pixel value over the rectangle.
func (it *Integral) MeanRect(x0, y0, x1, y1 int) float64 {
	n := int64(x1-x0) * int64(y1-y0)
	if n <= 0 {
		return 0
	}
	return float64(it.Rect(x0, y0, x1, y1)) / float64(n)
}

// Validate checks structural invariants and is used by decoding paths.
func (m *Image) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return errors.New("imgproc: non-positive dimensions")
	}
	if len(m.Pix) != m.W*m.H {
		return fmt.Errorf("imgproc: pixel buffer %d != %dx%d", len(m.Pix), m.W, m.H)
	}
	return nil
}
