package imgproc

import (
	"bytes"
	"testing"
)

// FuzzReadPGM hardens the decoder against malformed headers and truncated
// payloads: any input must either decode into a valid image or fail with
// an error — never panic or produce an inconsistent raster.
func FuzzReadPGM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\nABCD"))
	f.Add([]byte("P2\n2 2\n255\n0 1 2 3"))
	f.Add([]byte("P2\n# comment\n1 1\n15\n7"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P9\nnope"))
	f.Add([]byte(""))
	f.Add([]byte("P5\n1 1\n999\nA"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := img.Validate(); vErr != nil {
			t.Fatalf("decoded image fails validation: %v", vErr)
		}
		// A decoded image must re-encode and decode to identical pixels.
		var buf bytes.Buffer
		if err := img.WritePGM(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !back.Equal(img) {
			t.Fatal("round trip changed pixels")
		}
	})
}
