package imgproc

import (
	"bytes"
	"testing"
)

// FuzzReadPGM hardens the decoder against malformed headers and truncated
// payloads: any input must either decode into a valid image or fail with
// an error — never panic or produce an inconsistent raster.
func FuzzReadPGM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\nABCD"))
	f.Add([]byte("P2\n2 2\n255\n0 1 2 3"))
	f.Add([]byte("P2\n# comment\n1 1\n15\n7"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P9\nnope"))
	f.Add([]byte(""))
	// 16-bit corpora: legal wide-maxval P5 payloads (big-endian 2-byte
	// samples), a truncated one, an odd-byte-count one, and wide ASCII.
	f.Add([]byte("P5\n1 1\n999\n\x03\xe7"))
	f.Add(append([]byte("P5\n2 2\n65535\n"), 0x00, 0x00, 0x40, 0x00, 0x80, 0x00, 0xff, 0xff))
	f.Add(append([]byte("P5\n2 1\n256\n"), 0x01, 0x00, 0x00, 0xff))
	f.Add([]byte("P5\n2 2\n65535\n\x00\x01\x02"))
	f.Add([]byte("P5\n1 1\n300\nA"))
	f.Add([]byte("P2\n2 1\n1023\n0 1023"))
	f.Add([]byte("P5\n1 1\n65536\n\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := img.Validate(); vErr != nil {
			t.Fatalf("decoded image fails validation: %v", vErr)
		}
		// A decoded image must re-encode and decode to identical pixels.
		var buf bytes.Buffer
		if err := img.WritePGM(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !back.Equal(img) {
			t.Fatal("round trip changed pixels")
		}
	})
}
