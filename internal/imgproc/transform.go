package imgproc

import "math"

// Geometric and photometric transforms used for data augmentation and the
// detection experiments.

// FlipH returns the horizontally mirrored image.
func (m *Image) FlipH() *Image {
	out := NewImage(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Pix[y*m.W+x] = m.Pix[y*m.W+(m.W-1-x)]
		}
	}
	return out
}

// FlipV returns the vertically mirrored image.
func (m *Image) FlipV() *Image {
	out := NewImage(m.W, m.H)
	for y := 0; y < m.H; y++ {
		copy(out.Pix[y*m.W:(y+1)*m.W], m.Pix[(m.H-1-y)*m.W:(m.H-y)*m.W])
	}
	return out
}

// Rotate returns the image rotated by theta radians about its centre with
// bilinear sampling; uncovered corners take the edge-clamped source value.
func (m *Image) Rotate(theta float64) *Image {
	out := NewImage(m.W, m.H)
	sin, cos := math.Sincos(-theta) // inverse mapping
	cx, cy := float64(m.W-1)/2, float64(m.H-1)/2
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			sx := cx + dx*cos - dy*sin
			sy := cy + dx*sin + dy*cos
			out.Pix[y*m.W+x] = m.bilinear(sx, sy)
		}
	}
	return out
}

// bilinear samples the image at a fractional coordinate with edge clamping.
func (m *Image) bilinear(x, y float64) uint8 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	p00 := float64(m.At(x0, y0))
	p10 := float64(m.At(x0+1, y0))
	p01 := float64(m.At(x0, y0+1))
	p11 := float64(m.At(x0+1, y0+1))
	return clampU8(p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy)
}

// Translate returns the image shifted by (dx, dy) pixels with edge-clamped
// fill.
func (m *Image) Translate(dx, dy int) *Image {
	out := NewImage(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Pix[y*m.W+x] = m.At(x-dx, y-dy)
		}
	}
	return out
}

// AdjustBrightness adds delta to every pixel, saturating.
func (m *Image) AdjustBrightness(delta int) *Image {
	out := NewImage(m.W, m.H)
	for i, p := range m.Pix {
		out.Pix[i] = clampU8(float64(int(p) + delta))
	}
	return out
}

// AdjustContrast scales pixel deviations from 128 by factor, saturating.
func (m *Image) AdjustContrast(factor float64) *Image {
	out := NewImage(m.W, m.H)
	for i, p := range m.Pix {
		out.Pix[i] = clampU8(128 + (float64(p)-128)*factor)
	}
	return out
}

// Equalize applies global histogram equalisation, spreading the intensity
// distribution over the full 8-bit range.
func (m *Image) Equalize() *Image {
	var hist [256]int
	for _, p := range m.Pix {
		hist[p]++
	}
	var cdf [256]int
	run := 0
	for i, h := range hist {
		run += h
		cdf[i] = run
	}
	// Find the first nonzero CDF value for normalisation.
	cdfMin := 0
	for _, v := range cdf {
		if v > 0 {
			cdfMin = v
			break
		}
	}
	n := len(m.Pix)
	out := NewImage(m.W, m.H)
	if n == cdfMin { // constant image
		copy(out.Pix, m.Pix)
		return out
	}
	for i, p := range m.Pix {
		out.Pix[i] = clampU8(float64(cdf[p]-cdfMin) / float64(n-cdfMin) * 255)
	}
	return out
}
