package imgproc

import "strings"

// ASCII renders the image as terminal art with one character per sampled
// pixel, dark-to-bright over a 10-step ramp — lets CLI demos show a face
// without an image viewer. The image is subsampled to at most maxW
// columns, preserving aspect ratio (terminal cells are ~2x taller than
// wide, so rows advance twice as fast).
func (m *Image) ASCII(maxW int) string {
	if maxW <= 0 {
		maxW = 64
	}
	ramp := []byte(" .:-=+*#%@")
	step := 1
	for m.W/step > maxW {
		step++
	}
	var b strings.Builder
	for y := 0; y < m.H; y += 2 * step {
		for x := 0; x < m.W; x += step {
			idx := int(m.At(x, y)) * (len(ramp) - 1) / 255
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
