package hdc

import (
	"testing"

	"hdface/internal/hv"
)

// TestScoreBinaryFromDistancesMatchesHamming pins the fused-entry contract:
// given the true per-class Hamming distances, ScoreBinaryFromDistances must
// reproduce ScoreBinaryHamming's decision and margin exactly (same float
// expression, same rounding), and BinWords must expose the very words the
// distances were measured against.
func TestScoreBinaryFromDistancesMatchesHamming(t *testing.T) {
	feats, labels, _ := makeClusters(512, 2, 12, 0.4, 19)
	m := mustTrain(t, feats, labels, 2, TrainOpts{Seed: 4})
	m.Finalize(9)

	bw := m.BinWords()
	for c := range bw {
		for wi, w := range bw[c] {
			if w != m.Bin[c].Words()[wi] {
				t.Fatalf("BinWords class %d word %d does not alias the class memory", c, wi)
			}
		}
	}

	rng := hv.NewRNG(77)
	for i := 0; i < 20; i++ {
		v := hv.NewRand(rng, 512)
		wantFace, wantMargin := m.ScoreBinaryHamming(v)
		gotFace, gotMargin := m.ScoreBinaryFromDistances(m.Bin[0].Hamming(v), m.Bin[1].Hamming(v))
		if gotFace != wantFace || gotMargin != wantMargin {
			t.Fatalf("sample %d: fused entry (%v, %v) vs two-pass (%v, %v)",
				i, gotFace, gotMargin, wantFace, wantMargin)
		}
	}

	before := m.Stats.Similarities
	m.ScoreBinaryFromDistances(100, 90)
	if m.Stats.Similarities != before+2 {
		t.Fatal("fused entry did not account its similarity evaluations")
	}
}

func TestScoreBinaryFromDistancesPanicsBeforeFinalize(t *testing.T) {
	m := NewModel(64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("unfinalized fused score did not panic")
		}
	}()
	m.ScoreBinaryFromDistances(1, 2)
}
