package hdc

import (
	"fmt"
	"sync/atomic"

	"hdface/internal/hv"
	"hdface/internal/obs"
)

var obsRepairs = obs.NewCounter("hdface_hdc_reconsolidations_total", "class hypervectors rebuilt by majority re-bundling")

// ScoreBinaryHamming classifies with a two-class model on the binarised
// class memory, returning whether class 1 (face) outscores class 0 and the
// Hamming-similarity margin. It is the bit-serial counterpart of
// ScoreBinary: where ScoreBinary reads the float accumulators, this reads
// only the packed class hypervectors — the memory a bit-serial accelerator
// actually holds, and the one the fault harness corrupts. Finalize must
// have been called. Safe for concurrent use.
func (m *Model) ScoreBinaryHamming(v *hv.Vector) (bool, float64) {
	if m.K != 2 {
		panic(fmt.Sprintf("hdc: ScoreBinaryHamming needs a binary model, got %d classes", m.K))
	}
	if m.Bin == nil {
		panic("hdc: ScoreBinaryHamming before Finalize")
	}
	if v.D() != m.D {
		panic(fmt.Sprintf("hdc: query dimension %d, model %d", v.D(), m.D))
	}
	s0, s1 := m.Bin[0].HammingSim(v), m.Bin[1].HammingSim(v)
	atomic.AddInt64(&m.Stats.Similarities, 2)
	obsSims.Add(2)
	return s1 > s0, s1 - s0
}

// BinWords returns the packed words of the binarised class memory, one
// word slice per class — the read-only view fused scoring kernels stream
// class bits from (hdhog.FusedWindowScore) without going through Vector
// methods. Finalize must have been called. The returned slices alias the
// model's class memory and must not be mutated.
func (m *Model) BinWords() [][]uint64 {
	if m.Bin == nil {
		panic("hdc: BinWords before Finalize")
	}
	out := make([][]uint64, len(m.Bin))
	for c, v := range m.Bin {
		out[c] = v.Words()
	}
	return out
}

// ScoreBinaryFromDistances is the fused-kernel entry point of binary
// Hamming classification: callers that already hold the per-class Hamming
// distances of a query (computed inline by a fused scoring pass over
// BinWords) get exactly ScoreBinaryHamming's decision and margin, including
// its work accounting, without re-touching the query hypervector.
// h0 and h1 are the Hamming distances to class 0 and class 1. Safe for
// concurrent use; allocates nothing.
func (m *Model) ScoreBinaryFromDistances(h0, h1 int) (bool, float64) {
	if m.K != 2 {
		panic(fmt.Sprintf("hdc: ScoreBinaryFromDistances needs a binary model, got %d classes", m.K))
	}
	if m.Bin == nil {
		panic("hdc: ScoreBinaryFromDistances before Finalize")
	}
	s0 := 1 - float64(h0)/float64(m.D)
	s1 := 1 - float64(h1)/float64(m.D)
	atomic.AddInt64(&m.Stats.Similarities, 2)
	obsSims.Add(2)
	return s1 > s0, s1 - s0
}

// Reconsolidate rebuilds the binarised class memory by majority re-bundling
// retained training features: each class hypervector becomes the bitwise
// majority of its features (seeded tie-breaking), overwriting whatever the
// memory held before. This is the self-repair pass of the fault-tolerance
// study — after bit errors corrupt the class memory, one pass over retained
// features restores a consolidated copy, no gradient retraining needed,
// because the holographic representation keeps every feature's vote
// recoverable from the features themselves. Classes with no retained
// features keep their current (possibly corrupted) vectors. The float
// accumulators are untouched. Returns the number of classes rebuilt.
func (m *Model) Reconsolidate(features []*hv.Vector, labels []int, seed uint64) int {
	if len(features) != len(labels) {
		panic("hdc: features and labels misaligned")
	}
	accs := make([]*hv.Accumulator, m.K)
	for i, f := range features {
		y := labels[i]
		if y < 0 || y >= m.K {
			panic(fmt.Sprintf("hdc: label %d outside [0,%d)", y, m.K))
		}
		if f.D() != m.D {
			panic(fmt.Sprintf("hdc: feature dimension %d, model %d", f.D(), m.D))
		}
		if accs[y] == nil {
			accs[y] = hv.NewAccumulator(m.D)
		}
		accs[y].Add(f)
	}
	if m.Bin == nil {
		m.Bin = make([]*hv.Vector, m.K)
		for c := range m.Bin {
			m.Bin[c] = hv.New(m.D)
		}
	}
	r := hv.NewRNG(seed ^ 0x5e1f)
	rebuilt := 0
	for c, acc := range accs {
		// Every class draws its tie vector so the stream stays aligned
		// even when a class has nothing to rebuild from.
		tie := hv.NewRand(r, m.D)
		if acc == nil {
			continue
		}
		v, _ := acc.Sign(tie)
		m.Bin[c] = v
		rebuilt++
		obsRepairs.Inc()
	}
	return rebuilt
}
