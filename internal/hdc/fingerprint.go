package hdc

import (
	"math"
)

// Fingerprint returns a content hash of the model's class memory (float
// accumulators plus the binarised form when present). Two models decoded
// from the same snapshot bytes fingerprint identically on every machine,
// which is what lets a serving fleet agree on "which model is this" without
// sharing a registry: version IDs are replica-local, fingerprints are not.
// The distributed feedback merge keys its evidence epochs on this value.
func (m *Model) Fingerprint() uint64 {
	// FNV-1a over the exact bit patterns; float equality here is bit
	// equality, which is the right notion for "same snapshot".
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(m.D))
	mix(uint64(m.K))
	for _, acc := range m.Classes {
		for _, a := range acc {
			mix(math.Float64bits(a))
		}
	}
	for _, v := range m.Bin {
		for _, w := range v.Words() {
			mix(w)
		}
	}
	return h
}
