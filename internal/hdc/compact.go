package hdc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hdface/internal/hv"
)

// Compact model serialisation ("HDC2"). Where Save/Load gob-encode the full
// float64 accumulators (8 bytes per dimension per class), the compact form
// stores each class as a single float64 scale plus int16 quantised
// accumulators, followed by the binarised class vectors verbatim. At D=2048,
// K=2 that is ~8.5 KB against ~66 KB for the float form — small enough that a
// multi-tenant store can keep thousands of versions resident as raw blobs and
// rematerialize models (and their bases, which are never stored at all) on
// demand.
//
// Exactness contract: the Bin words round-trip bit-for-bit, so every scoring
// path that consumes only the binarised memory (Hamming, the fused
// rematerializing kernels — i.e. the entire serving hot path) produces
// byte-identical scores from a compact round-trip. The float accumulators are
// lossy: dequantisation yields q*scale with relative error ≤ ~1/32767, which
// only matters for cosine scoring and further online training; tenantbench
// measures the resulting prediction agreement.

// compactMagic prefixes the compact wire form; geometry is validated before
// any payload-proportional allocation, mirroring Load.
var compactMagic = [4]byte{'H', 'D', 'C', '2'}

// Compact bounds are deliberately tighter than maxWireD/maxWireK: the format
// exists to keep thousands of models resident, so a single class is capped at
// a few MB of decoded accumulator. The paper's configurations stop at
// D=10240, K=7.
const (
	maxCompactD = 1 << 22
	maxCompactK = 1 << 12

	compactQMax = 32767 // symmetric int16 range; -32768 is never written
)

// Flag bits in the compact header.
const (
	compactHasQuant = 1 << 0
	compactHasBin   = 1 << 1
)

// CompactSize returns the exact encoded size in bytes of the compact form of
// a d-dimensional, k-class model with binarised memory present.
func CompactSize(d, k int) int {
	words := (d + 63) / 64
	return 4 + 4 + 4 + 1 + k*(8+2*d) + k*8*words
}

// SaveCompact writes the model in the compact quantised form. Non-finite
// accumulator values are rejected (they could not be re-quantised and would
// poison cosine scoring after a round-trip).
func (m *Model) SaveCompact(w io.Writer) error {
	if m.D <= 0 || m.D > maxCompactD || m.K < 2 || m.K > maxCompactK {
		return fmt.Errorf("hdc: geometry d=%d k=%d out of compact-form bounds", m.D, m.K)
	}
	if len(m.Classes) != m.K {
		return errors.New("hdc: model has malformed class accumulators")
	}
	var flags byte = compactHasQuant
	if m.Bin != nil {
		if len(m.Bin) != m.K {
			return errors.New("hdc: model has malformed binarised classes")
		}
		flags |= compactHasBin
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(compactMagic[:]); err != nil {
		return err
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.D))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.K))
	hdr[8] = flags
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Per class: scale (float64 bits) then D little-endian int16s with
	// q = round(a/scale), so a ≈ q*scale on decode.
	buf := make([]byte, 2*m.D)
	for _, acc := range m.Classes {
		if len(acc) != m.D {
			return errors.New("hdc: model has malformed class accumulators")
		}
		maxAbs := 0.0
		for _, a := range acc {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return errors.New("hdc: non-finite class accumulator value")
			}
			if ab := math.Abs(a); ab > maxAbs {
				maxAbs = ab
			}
		}
		scale := 0.0
		if maxAbs > 0 {
			scale = maxAbs / compactQMax
		}
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], math.Float64bits(scale))
		if _, err := bw.Write(sb[:]); err != nil {
			return err
		}
		for i, a := range acc {
			q := 0.0
			if scale > 0 {
				q = math.Round(a / scale)
			}
			if q > compactQMax {
				q = compactQMax
			} else if q < -compactQMax {
				q = -compactQMax
			}
			binary.LittleEndian.PutUint16(buf[2*i:], uint16(int16(q)))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if flags&compactHasBin != 0 {
		words := (m.D + 63) / 64
		wb := make([]byte, 8*words)
		for _, v := range m.Bin {
			ws := v.Words()
			if v.D() != m.D || len(ws) != words {
				return errors.New("hdc: binarised class geometry mismatch")
			}
			for i, w64 := range ws {
				binary.LittleEndian.PutUint64(wb[8*i:], w64)
			}
			if _, err := bw.Write(wb); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadCompact reads a model written by SaveCompact. The header's geometry is
// bounds-checked before anything payload-proportional is allocated, and every
// subsequent read is an io.ReadFull of a size derived from that validated
// geometry — a truncated, bit-flipped or hostile blob errors out without
// panicking and without allocating beyond what the (bounded) header
// justifies. Decoded scales must be finite and non-negative.
func LoadCompact(r io.Reader) (*Model, error) {
	var m4 [4]byte
	if _, err := io.ReadFull(r, m4[:]); err != nil {
		return nil, fmt.Errorf("hdc: compact header: %w", err)
	}
	if m4 != compactMagic {
		return nil, errors.New("hdc: bad compact-model magic")
	}
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("hdc: compact header: %w", err)
	}
	d := int(binary.LittleEndian.Uint32(hdr[0:4]))
	k := int(binary.LittleEndian.Uint32(hdr[4:8]))
	flags := hdr[8]
	if d <= 0 || d > maxCompactD || k < 2 || k > maxCompactK {
		return nil, fmt.Errorf("hdc: implausible compact header d=%d k=%d", d, k)
	}
	if flags&compactHasQuant == 0 || flags&^(compactHasQuant|compactHasBin) != 0 {
		return nil, fmt.Errorf("hdc: unsupported compact flags %#x", flags)
	}
	m := &Model{D: d, K: k, Classes: make([][]float64, k)}
	buf := make([]byte, 2*d)
	for c := 0; c < k; c++ {
		var sb [8]byte
		if _, err := io.ReadFull(r, sb[:]); err != nil {
			return nil, fmt.Errorf("hdc: compact class %d: %w", c, err)
		}
		scale := math.Float64frombits(binary.LittleEndian.Uint64(sb[:]))
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			return nil, fmt.Errorf("hdc: compact class %d: invalid scale", c)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("hdc: compact class %d: %w", c, err)
		}
		acc := make([]float64, d)
		for i := range acc {
			q := int16(binary.LittleEndian.Uint16(buf[2*i:]))
			acc[i] = float64(q) * scale
		}
		m.Classes[c] = acc
	}
	if flags&compactHasBin != 0 {
		words := (d + 63) / 64
		wb := make([]byte, 8*words)
		m.Bin = make([]*hv.Vector, 0, k)
		for c := 0; c < k; c++ {
			if _, err := io.ReadFull(r, wb); err != nil {
				return nil, fmt.Errorf("hdc: compact bin class %d: %w", c, err)
			}
			ws := make([]uint64, words)
			for i := range ws {
				ws[i] = binary.LittleEndian.Uint64(wb[8*i:])
			}
			v, err := hv.FromWords(d, ws)
			if err != nil {
				return nil, fmt.Errorf("hdc: compact bin class %d: %w", c, err)
			}
			m.Bin = append(m.Bin, v)
		}
	}
	return m, nil
}
