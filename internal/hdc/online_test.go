package hdc

import (
	"testing"

	"hdface/internal/hv"
)

// shuffleStream interleaves a class-ordered sample set deterministically.
func shuffleStream(feats []*hv.Vector, labels []int, seed uint64) {
	r := hv.NewRNG(seed)
	r.Shuffle(len(feats), func(i, j int) {
		feats[i], feats[j] = feats[j], feats[i]
		labels[i], labels[j] = labels[j], labels[i]
	})
}

func TestOnlineLearnsStream(t *testing.T) {
	feats, labels, _ := makeClusters(2048, 3, 60, 0.3, 31)
	// Interleave classes in stream order.
	o := NewOnline(2048, 3, TrainOpts{})
	for i, f := range feats {
		o.Learn(f, labels[i])
	}
	if o.Seen != int64(len(feats)) {
		t.Fatalf("seen %d, want %d", o.Seen, len(feats))
	}
	// The converged model must classify held-out cluster members.
	test, tl, _ := makeClusters(2048, 3, 15, 0.3, 31)
	if acc := o.Model().Accuracy(test, tl); acc < 0.9 {
		t.Fatalf("online-trained accuracy %v", acc)
	}
}

func TestOnlinePrequentialErrorDecreases(t *testing.T) {
	feats, labels, _ := makeClusters(512, 4, 100, 0.45, 32)
	shuffleStream(feats, labels, 1)
	o := NewOnline(512, 4, TrainOpts{})
	half := len(feats) / 2
	var earlyMistakes int64
	for i, f := range feats {
		o.Learn(f, labels[i])
		if i == half-1 {
			earlyMistakes = o.Mistakes
		}
	}
	lateMistakes := o.Mistakes - earlyMistakes
	if lateMistakes >= earlyMistakes {
		t.Fatalf("stream error not decreasing: %d early vs %d late mistakes",
			earlyMistakes, lateMistakes)
	}
	if o.ErrorRate() <= 0 || o.ErrorRate() >= 1 {
		t.Fatalf("error rate %v out of range", o.ErrorRate())
	}
}

func TestOnlineMatchesBatchRoughly(t *testing.T) {
	feats, labels, _ := makeClusters(1024, 3, 40, 0.35, 33)
	test, tl, _ := makeClusters(1024, 3, 15, 0.35, 33)
	batch := mustTrain(t, feats, labels, 3, TrainOpts{})
	o := NewOnline(1024, 3, TrainOpts{})
	// Two passes over the stream approximate batch refinement.
	for pass := 0; pass < 2; pass++ {
		for i, f := range feats {
			o.Learn(f, labels[i])
		}
	}
	ba, oa := batch.Accuracy(test, tl), o.Model().Accuracy(test, tl)
	if oa < ba-0.15 {
		t.Fatalf("online accuracy %v far below batch %v", oa, ba)
	}
}

func TestOnlineSnapshotIndependent(t *testing.T) {
	feats, labels, _ := makeClusters(512, 2, 20, 0.2, 34)
	shuffleStream(feats, labels, 2)
	o := NewOnline(512, 2, TrainOpts{})
	for i, f := range feats {
		o.Learn(f, labels[i])
	}
	snap := o.Snapshot(1)
	if snap.Bin == nil {
		t.Fatal("snapshot not finalised")
	}
	before := snap.Classes[0][0]
	// Further learning must not mutate the snapshot.
	for i, f := range feats {
		o.Learn(f, labels[i])
	}
	if snap.Classes[0][0] != before {
		t.Fatal("snapshot shares storage with live model")
	}
	correct := 0
	for i, f := range feats {
		if snap.PredictBinary(f) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(feats)); acc < 0.9 {
		t.Fatalf("snapshot accuracy %v", acc)
	}
}

func TestOnlineEmptyErrorRate(t *testing.T) {
	o := NewOnline(64, 2, TrainOpts{})
	if o.ErrorRate() != 0 {
		t.Fatal("empty stream error rate != 0")
	}
}
