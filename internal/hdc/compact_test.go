package hdc

import (
	"bytes"
	"math"
	"testing"
)

func trainedCompactModel(t testing.TB, d int) *Model {
	t.Helper()
	feats, labels, _ := makeClusters(d, 2, 48, 0.2, 71)
	m, err := Train(feats, labels, 2, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	m.Finalize(9)
	return m
}

// TestCompactRoundTrip pins the two halves of the compact-form contract:
// the binarised memory is bit-exact, and the dequantised accumulators stay
// within the int16 quantisation error of the originals.
func TestCompactRoundTrip(t *testing.T) {
	m := trainedCompactModel(t, 257) // odd D exercises tail-word masking
	var buf bytes.Buffer
	if err := m.SaveCompact(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), CompactSize(m.D, m.K); got != want {
		t.Fatalf("encoded size %d, CompactSize says %d", got, want)
	}
	got, err := LoadCompact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.D != m.D || got.K != m.K {
		t.Fatalf("geometry changed: %d/%d -> %d/%d", m.D, m.K, got.D, got.K)
	}
	for c := range m.Bin {
		mw, gw := m.Bin[c].Words(), got.Bin[c].Words()
		for i := range mw {
			if mw[i] != gw[i] {
				t.Fatalf("class %d word %d not bit-exact: %#x vs %#x", c, i, mw[i], gw[i])
			}
		}
	}
	for c, acc := range m.Classes {
		maxAbs := 0.0
		for _, a := range acc {
			if ab := math.Abs(a); ab > maxAbs {
				maxAbs = ab
			}
		}
		tol := maxAbs/compactQMax + 1e-12 // one quantisation step
		for i, a := range acc {
			if diff := math.Abs(got.Classes[c][i] - a); diff > tol {
				t.Fatalf("class %d dim %d: |%g - %g| = %g > %g", c, i, got.Classes[c][i], a, diff, tol)
			}
		}
	}
	// A second encode of the round-tripped model must be byte-identical:
	// quantisation is idempotent (q*scale re-quantises to q).
	var buf2 bytes.Buffer
	if err := got.SaveCompact(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("compact encode is not idempotent across a round-trip")
	}
}

// TestCompactPredictAgreement checks the quantised accumulators still score
// like the originals on easy clusters, and that Hamming classification (the
// serving path) is exactly preserved.
func TestCompactPredictAgreement(t *testing.T) {
	feats, labels, _ := makeClusters(512, 2, 64, 0.2, 72)
	m, err := Train(feats, labels, 2, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	m.Finalize(9)
	var buf bytes.Buffer
	if err := m.SaveCompact(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCompact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range feats {
		if pm, pg := m.Predict(f), got.Predict(f); pm != pg {
			t.Fatalf("cosine prediction diverged on sample %d: %d vs %d", i, pm, pg)
		}
		if hm, hg := m.PredictBinary(f), got.PredictBinary(f); hm != hg {
			t.Fatalf("hamming prediction diverged on sample %d: %d vs %d", i, hm, hg)
		}
		_ = labels[i]
	}
}

func TestCompactRejects(t *testing.T) {
	m := trainedCompactModel(t, 64)
	var buf bytes.Buffer
	if err := m.SaveCompact(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("HDCX\x40\x00\x00\x00\x02\x00\x00\x00\x03"),
		"truncated":   valid[:len(valid)-3],
		"header only": valid[:13],
		"oversized D": append([]byte("HDC2\xff\xff\xff\xff\x02\x00\x00\x00\x03"), valid[13:]...),
		"zero K":      append([]byte("HDC2\x40\x00\x00\x00\x00\x00\x00\x00\x03"), valid[13:]...),
		"bad flags":   append([]byte("HDC2\x40\x00\x00\x00\x02\x00\x00\x00\xff"), valid[13:]...),
	}
	for name, data := range cases {
		if _, err := LoadCompact(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}

	// NaN scale must be rejected.
	nan := append([]byte(nil), valid...)
	for i := 13; i < 13+8; i++ {
		nan[i] = 0xff
	}
	if _, err := LoadCompact(bytes.NewReader(nan)); err == nil {
		t.Error("NaN scale accepted")
	}

	// Unfinalized (no Bin) models round-trip without the bin section.
	m2 := &Model{D: 64, K: 2, Classes: [][]float64{make([]float64, 64), make([]float64, 64)}}
	var buf2 bytes.Buffer
	if err := m2.SaveCompact(&buf2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCompact(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bin != nil {
		t.Error("Bin materialised out of nowhere")
	}

	// Non-finite accumulators must be rejected at save time.
	m2.Classes[0][0] = math.Inf(1)
	if err := m2.SaveCompact(&bytes.Buffer{}); err == nil {
		t.Error("Inf accumulator accepted by SaveCompact")
	}
}

// FuzzLoadCompact hardens the compact decoder the same way FuzzLoad hardens
// the gob path: arbitrary bytes must decode into a structurally valid model
// or error — never panic, never allocate beyond the bounded header geometry.
func FuzzLoadCompact(f *testing.F) {
	feats, labels, _ := makeClusters(96, 2, 4, 0.2, 51)
	m, err := Train(feats, labels, 2, TrainOpts{})
	if err != nil {
		f.Fatal(err)
	}
	m.Finalize(1)
	var buf bytes.Buffer
	if err := m.SaveCompact(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	corrupt := append([]byte(nil), valid...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)
	flip := append([]byte(nil), valid...)
	flip[len(flip)-1] ^= 0x80
	f.Add(flip)
	// Hostile headers: absurd geometry must be rejected before any
	// payload-proportional allocation.
	f.Add(append([]byte("HDC2\xff\xff\xff\xff\x02\x00\x00\x00\x03"), valid[13:]...))
	f.Add([]byte("HDC2\x00\x00\x00\x00\x00\x00\x00\x00\x03"))
	f.Add(append([]byte("HDC2\x04\x00\x00\x00\xff\xff\xff\xff\x03"), valid[13:]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadCompact(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.D <= 0 || got.D > maxCompactD || got.K < 2 || got.K > maxCompactK {
			t.Fatalf("decoded out-of-bounds geometry: D=%d K=%d", got.D, got.K)
		}
		if len(got.Classes) != got.K {
			t.Fatal("decoded ragged model")
		}
		for _, c := range got.Classes {
			if len(c) != got.D {
				t.Fatal("decoded ragged class accumulator")
			}
			for _, a := range c {
				if math.IsNaN(a) || math.IsInf(a, 0) {
					t.Fatal("decoded non-finite accumulator")
				}
			}
		}
		if got.Bin != nil && len(got.Bin) != got.K {
			t.Fatal("decoded ragged binarised classes")
		}
		for _, v := range got.Bin {
			if v.D() != got.D {
				t.Fatal("decoded bin dimension mismatch")
			}
		}
	})
}
