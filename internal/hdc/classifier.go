// Package hdc implements HDFace's adaptive hyperdimensional classifier
// (paper Section 5, Figure 3). Training memorises one class hypervector per
// class from already-hyperdimensional features (either the hyperspace HOG
// output or an encoded original-space feature), using a single bootstrap
// pass that skips redundant memorisation followed by adaptive
// mistake-weighted refinement epochs in the style of OnlineHD. Inference is
// a similarity search between the query hypervector and the class
// hypervectors.
package hdc

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"hdface/internal/hv"
	"hdface/internal/obs"
)

// Observability counters: live, process-global mirrors of the per-model
// Stats fields, so training and inference work is visible while a run is
// still in flight. They record nothing unless obs is enabled.
var (
	obsSims      = obs.NewCounter("hdface_hdc_similarities_total", "query/class similarity evaluations")
	obsBootAdds  = obs.NewCounter("hdface_hdc_bootstrap_adds_total", "bootstrap class-vector accumulations")
	obsBootSkips = obs.NewCounter("hdface_hdc_bootstrap_skips_total", "bootstrap samples skipped as redundant")
	obsAdaptive  = obs.NewCounter("hdface_hdc_adaptive_updates_total", "adaptive (retrain) class-vector updates")
	obsEpochs    = obs.NewCounter("hdface_hdc_epochs_total", "adaptive refinement epochs run")
)

// TrainOpts configures Train.
type TrainOpts struct {
	// Epochs is the number of adaptive refinement passes after the
	// bootstrap pass (default 20).
	Epochs int
	// LR scales adaptive updates (default 1).
	LR float64
	// Margin, when positive, triggers reinforcement updates on correct
	// predictions whose similarity lead over the runner-up is below it.
	// Disabled by default: on the evaluation workloads mistake-driven
	// training alone generalises slightly better (see the hdc tests).
	Margin float64
	// BootstrapMargin skips bootstrap memorisation of samples the model
	// already classifies correctly with at least this similarity margin,
	// preventing class-vector saturation (default 0.05).
	BootstrapMargin float64
	// Seed drives tie-breaking randomness.
	Seed uint64
}

func (o TrainOpts) withDefaults() TrainOpts {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.LR == 0 {
		o.LR = 1
	}
	if o.BootstrapMargin == 0 {
		o.BootstrapMargin = 0.05
	}
	return o
}

// Stats records training-time work for the hardware model.
type Stats struct {
	BootstrapAdds  int64 // class-vector accumulations in the bootstrap pass
	BootstrapSkips int64 // samples skipped as redundant
	AdaptiveSteps  int64 // mistake-driven double updates
	Similarities   int64 // query/class similarity evaluations
	Epochs         int64
}

// Model is a trained HDC classifier: float class accumulators for adaptive
// training and cosine inference, plus an optional binarised form for
// Hamming inference on bit-serial hardware.
type Model struct {
	D       int
	K       int
	Classes [][]float64 // K x D accumulators
	Bin     []*hv.Vector
	Stats   Stats
}

// NewModel returns an empty model with k classes of dimensionality d.
func NewModel(d, k int) *Model {
	if d <= 0 || k < 2 {
		panic("hdc: need d > 0 and k >= 2")
	}
	m := &Model{D: d, K: k, Classes: make([][]float64, k)}
	for i := range m.Classes {
		m.Classes[i] = make([]float64, d)
	}
	return m
}

// Clone returns a deep copy of the model. It is safe to call concurrently
// with inference on the receiver (inference only reads the accumulators and
// bumps the atomic work counters, which Clone loads atomically); it is NOT
// safe concurrently with training updates on the receiver. Cloning is how
// the online-learning subsystem derives a mutable candidate from the
// immutable live model of a serving daemon.
func (m *Model) Clone() *Model {
	c := &Model{D: m.D, K: m.K, Classes: make([][]float64, m.K)}
	for i, acc := range m.Classes {
		c.Classes[i] = append([]float64(nil), acc...)
	}
	if m.Bin != nil {
		c.Bin = make([]*hv.Vector, len(m.Bin))
		for i, v := range m.Bin {
			c.Bin[i] = v.Clone()
		}
	}
	c.Stats = Stats{
		BootstrapAdds:  atomic.LoadInt64(&m.Stats.BootstrapAdds),
		BootstrapSkips: atomic.LoadInt64(&m.Stats.BootstrapSkips),
		AdaptiveSteps:  atomic.LoadInt64(&m.Stats.AdaptiveSteps),
		Similarities:   atomic.LoadInt64(&m.Stats.Similarities),
		Epochs:         atomic.LoadInt64(&m.Stats.Epochs),
	}
	return c
}

// addScaled adds s * (+-1 bits of v) into class c's accumulator.
func (m *Model) addScaled(c int, v *hv.Vector, s float64) {
	acc := m.Classes[c]
	words := v.Words()
	for i := 0; i < m.D; i++ {
		if words[i/64]>>(uint(i)%64)&1 == 1 {
			acc[i] += s
		} else {
			acc[i] -= s
		}
	}
}

// cos returns cosine similarity between class c and binary query v.
func (m *Model) cos(c int, v *hv.Vector) float64 {
	acc := m.Classes[c]
	words := v.Words()
	var dot, norm float64
	for i := 0; i < m.D; i++ {
		a := acc[i]
		norm += a * a
		if words[i/64]>>(uint(i)%64)&1 == 1 {
			dot += a
		} else {
			dot -= a
		}
	}
	if norm == 0 {
		return 0
	}
	return dot / (math.Sqrt(norm) * math.Sqrt(float64(m.D)))
}

// Scores returns the cosine similarity of v to every class.
func (m *Model) Scores(v *hv.Vector) []float64 {
	if v.D() != m.D {
		panic(fmt.Sprintf("hdc: query dimension %d, model %d", v.D(), m.D))
	}
	out := make([]float64, m.K)
	for c := range out {
		out[c] = m.cos(c, v)
	}
	atomic.AddInt64(&m.Stats.Similarities, int64(m.K))
	obsSims.Add(int64(m.K))
	return out
}

// ScoreBinary classifies with a two-class model, returning whether class 1
// (face) outscores class 0 and the similarity margin. Unlike Scores it
// allocates nothing and is safe for concurrent use (the class accumulators
// are read-only after training; the work counter is atomic), which makes it
// the scoring entry point of the parallel detection sweep.
func (m *Model) ScoreBinary(v *hv.Vector) (bool, float64) {
	if m.K != 2 {
		panic(fmt.Sprintf("hdc: ScoreBinary needs a binary model, got %d classes", m.K))
	}
	if v.D() != m.D {
		panic(fmt.Sprintf("hdc: query dimension %d, model %d", v.D(), m.D))
	}
	s0, s1 := m.cos(0, v), m.cos(1, v)
	atomic.AddInt64(&m.Stats.Similarities, 2)
	obsSims.Add(2)
	return s1 > s0, s1 - s0
}

// Predict returns the class with the highest similarity to v.
func (m *Model) Predict(v *hv.Vector) int {
	sp := obs.StartSpan("predict")
	defer sp.End()
	sp.AddItems(1)
	scores := m.Scores(v)
	best := 0
	for c, s := range scores {
		if s > scores[best] {
			best = c
		}
	}
	return best
}

// PredictBinary classifies with the binarised model using Hamming
// similarity — the bitwise inference mode hardware accelerators run.
// Finalize must have been called.
func (m *Model) PredictBinary(v *hv.Vector) int {
	if m.Bin == nil {
		panic("hdc: PredictBinary before Finalize")
	}
	sp := obs.StartSpan("predict_binary")
	defer sp.End()
	sp.AddItems(1)
	best, bestSim := 0, math.Inf(-1)
	for c, cv := range m.Bin {
		sim := cv.HammingSim(v)
		atomic.AddInt64(&m.Stats.Similarities, 1)
		obsSims.Inc()
		if sim > bestSim {
			best, bestSim = c, sim
		}
	}
	return best
}

// Finalize binarises the class accumulators for Hamming inference.
func (m *Model) Finalize(seed uint64) {
	r := hv.NewRNG(seed ^ 0xb1a5)
	m.Bin = make([]*hv.Vector, m.K)
	for c := range m.Bin {
		v := hv.New(m.D)
		for i, a := range m.Classes[c] {
			switch {
			case a > 0:
				v.SetBit(i, 1)
			case a == 0:
				if r.Uint64()&1 == 1 {
					v.SetBit(i, 1)
				}
			}
		}
		m.Bin[c] = v
	}
}

// validateBatch checks a (features, labels) batch against a model geometry:
// non-empty, aligned, every feature of dimensionality d, every label in
// [0, k). These are caller-input conditions at the library boundary, so
// violations are errors, not panics.
func validateBatch(features []*hv.Vector, labels []int, d, k int) error {
	if len(features) == 0 || len(features) != len(labels) {
		return fmt.Errorf("hdc: %d features and %d labels must be non-empty and aligned", len(features), len(labels))
	}
	for i, f := range features {
		if f == nil || f.D() != d {
			return fmt.Errorf("hdc: feature %d has dimensionality %v, model has %d", i, featDim(f), d)
		}
		if labels[i] < 0 || labels[i] >= k {
			return fmt.Errorf("hdc: label %d at sample %d outside [0, %d)", labels[i], i, k)
		}
	}
	return nil
}

// featDim prints a feature's dimensionality for error messages, tolerating
// nil.
func featDim(f *hv.Vector) any {
	if f == nil {
		return "nil"
	}
	return f.D()
}

// Update runs one adaptive mistake-weighted refinement pass over the batch
// — the inner loop of Train's retraining epochs, exported so online
// learners can refine an already-trained model incrementally: clone the
// deployed model, Update it with the freshly labelled mini-batch (several
// passes if desired), and promote the clone once it beats the original.
// It returns the number of prediction mistakes observed during the pass;
// zero means the model already fits the batch and further passes are
// no-ops (for Margin == 0).
func (m *Model) Update(features []*hv.Vector, labels []int, opts TrainOpts) (int, error) {
	if err := validateBatch(features, labels, m.D, m.K); err != nil {
		return 0, err
	}
	opts = opts.withDefaults()
	adapt := obs.StartSpan("hdc_adaptive")
	defer adapt.End()
	return m.updatePass(features, labels, opts, adapt), nil
}

// updatePass is the validated core of Update; Train calls it directly for
// its refinement epochs.
func (m *Model) updatePass(features []*hv.Vector, labels []int, opts TrainOpts, adapt *obs.Span) int {
	m.Stats.Epochs++
	obsEpochs.Inc()
	adapt.AddItems(int64(len(features)))
	mistakes := 0
	for i, f := range features {
		y := labels[i]
		scores := m.Scores(f)
		pred := 0
		for c, s := range scores {
			if s > scores[pred] {
				pred = c
			}
		}
		if pred == y {
			if opts.Margin > 0 {
				// Reinforce low-confidence correct predictions.
				runner := math.Inf(-1)
				for c, s := range scores {
					if c != y && s > runner {
						runner = s
					}
				}
				if gap := scores[y] - runner; gap < opts.Margin {
					w := 0.5 * opts.LR * (opts.Margin - gap) / opts.Margin
					m.addScaled(y, f, w)
					m.Stats.AdaptiveSteps++
					obsAdaptive.Inc()
				}
			}
			continue
		}
		mistakes++
		// Weight by how wrong the model was (OnlineHD style).
		w := opts.LR * (1 - (scores[y] - scores[pred]))
		m.addScaled(y, f, w)
		m.addScaled(pred, f, -w)
		m.Stats.AdaptiveSteps++
		obsAdaptive.Inc()
	}
	return mistakes
}

// Train fits a model on hypervector features with integer labels in [0, k).
func Train(features []*hv.Vector, labels []int, k int, opts TrainOpts) (*Model, error) {
	if k < 2 {
		return nil, fmt.Errorf("hdc: need k >= 2 classes, got %d", k)
	}
	if len(features) == 0 {
		return nil, errors.New("hdc: features and labels must be non-empty and aligned")
	}
	if features[0] == nil || features[0].D() <= 0 {
		return nil, errors.New("hdc: first feature is nil or zero-dimensional")
	}
	if err := validateBatch(features, labels, features[0].D(), k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	m := NewModel(features[0].D(), k)

	// Bootstrap pass: memorise each sample unless the model already
	// recognises it with margin — the paper's "eliminates redundant
	// information memorization ... to eliminate overfitting".
	boot := obs.StartSpan("hdc_bootstrap")
	boot.AddItems(int64(len(features)))
	for i, f := range features {
		y := labels[i]
		scores := m.Scores(f)
		runnerUp := math.Inf(-1)
		for c, s := range scores {
			if c != y && s > runnerUp {
				runnerUp = s
			}
		}
		if scores[y]-runnerUp >= opts.BootstrapMargin {
			m.Stats.BootstrapSkips++
			obsBootSkips.Inc()
			continue
		}
		m.addScaled(y, f, opts.LR)
		m.Stats.BootstrapAdds++
		obsBootAdds.Inc()
	}
	boot.End()

	// Adaptive refinement: mistake-weighted bidirectional updates.
	adapt := obs.StartSpan("hdc_adaptive")
	defer adapt.End()
	for e := 0; e < opts.Epochs; e++ {
		if m.updatePass(features, labels, opts, adapt) == 0 {
			break
		}
	}
	return m, nil
}

// Accuracy returns the fraction of samples Predict classifies correctly.
func (m *Model) Accuracy(features []*hv.Vector, labels []int) float64 {
	if len(features) == 0 {
		return 0
	}
	correct := 0
	for i, f := range features {
		if m.Predict(f) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(features))
}

// CrossValidate runs k-fold cross validation over hypervector features and
// returns the per-fold test accuracies. Folds are contiguous stripes of a
// seeded shuffle, so results are reproducible.
func CrossValidate(features []*hv.Vector, labels []int, numClasses, folds int, opts TrainOpts) ([]float64, error) {
	if folds < 2 || folds > len(features) {
		return nil, fmt.Errorf("hdc: folds %d outside [2, %d]", folds, len(features))
	}
	if len(features) != len(labels) {
		return nil, fmt.Errorf("hdc: %d features and %d labels misaligned", len(features), len(labels))
	}
	opts = opts.withDefaults()
	r := hv.NewRNG(opts.Seed ^ 0xcf01d)
	idx := r.Perm(len(features))
	accs := make([]float64, folds)
	for f := 0; f < folds; f++ {
		lo := f * len(idx) / folds
		hi := (f + 1) * len(idx) / folds
		var trF, teF []*hv.Vector
		var trL, teL []int
		for pos, i := range idx {
			if pos >= lo && pos < hi {
				teF = append(teF, features[i])
				teL = append(teL, labels[i])
			} else {
				trF = append(trF, features[i])
				trL = append(trL, labels[i])
			}
		}
		m, err := Train(trF, trL, numClasses, opts)
		if err != nil {
			return nil, fmt.Errorf("hdc: fold %d: %w", f, err)
		}
		accs[f] = m.Accuracy(teF, teL)
	}
	return accs, nil
}

// Shrink returns a model reduced to the first newD dimensions of the
// given permutation (identity when perm is nil) — the paper's observation
// that HDC's redundant representation tolerates dimensionality reduction:
// a model trained at D=10k still classifies after being cut to a fraction
// of its dimensions, no retraining needed. Queries must be shrunk with
// ShrinkVector using the same permutation.
func (m *Model) Shrink(newD int, perm []int) *Model {
	if newD <= 0 || newD > m.D {
		panic("hdc: Shrink dimension out of range")
	}
	if perm != nil && len(perm) < newD {
		panic("hdc: permutation shorter than newD")
	}
	pick := func(i int) int {
		if perm == nil {
			return i
		}
		return perm[i]
	}
	out := NewModel(newD, m.K)
	for c := range m.Classes {
		for i := 0; i < newD; i++ {
			out.Classes[c][i] = m.Classes[c][pick(i)]
		}
	}
	if m.Bin != nil {
		out.Bin = make([]*hv.Vector, m.K)
		for c, v := range m.Bin {
			nv := hv.New(newD)
			for i := 0; i < newD; i++ {
				nv.SetBit(i, v.Bit(pick(i)))
			}
			out.Bin[c] = nv
		}
	}
	return out
}

// ShrinkVector projects a query hypervector onto the same reduced
// dimension set used by Shrink.
func ShrinkVector(v *hv.Vector, newD int, perm []int) *hv.Vector {
	if newD <= 0 || newD > v.D() {
		panic("hdc: ShrinkVector dimension out of range")
	}
	out := hv.New(newD)
	for i := 0; i < newD; i++ {
		j := i
		if perm != nil {
			j = perm[i]
		}
		out.SetBit(i, v.Bit(j))
	}
	return out
}

// modelWire is the gob-serialised payload of Save.
type modelWire struct {
	D, K    int
	Classes [][]float64
	Bin     [][]uint64
}

// Plausibility bounds for deserialised model geometry, mirroring the header
// guard of hv.ReadSet: dimensionalities and class counts beyond these are
// either corruption or a hostile snapshot trying to drive huge allocations.
const (
	maxWireD = 1 << 24
	maxWireK = 1 << 20
)

// modelMagic prefixes the serialised form, so geometry can be validated
// BEFORE the gob payload (whose decode allocates proportionally to the
// encoded lengths) is touched.
var modelMagic = [4]byte{'H', 'D', 'C', '1'}

// Save writes the model: a fixed binary header (magic, D, K) followed by
// the gob payload. The header lets Load bound-check the geometry before
// gob-decoding anything.
func (m *Model) Save(w io.Writer) error {
	if m.D <= 0 || m.D > maxWireD || m.K < 2 || m.K > maxWireK {
		return fmt.Errorf("hdc: implausible model geometry d=%d k=%d", m.D, m.K)
	}
	if _, err := w.Write(modelMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, [2]uint32{uint32(m.D), uint32(m.K)}); err != nil {
		return err
	}
	wire := modelWire{D: m.D, K: m.K, Classes: m.Classes}
	if m.Bin != nil {
		for _, v := range m.Bin {
			wire.Bin = append(wire.Bin, v.Words())
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reads a model written by Save. The header's D/K bounds are validated
// first and the gob payload is read through a limit sized from them, so a
// corrupt or hostile snapshot cannot drive allocations beyond what the
// declared geometry justifies; non-finite class accumulators are rejected
// (a NaN in one dimension would poison every cosine similarity).
func Load(r io.Reader) (*Model, error) {
	var m4 [4]byte
	if _, err := io.ReadFull(r, m4[:]); err != nil {
		return nil, fmt.Errorf("hdc: model header: %w", err)
	}
	if m4 != modelMagic {
		return nil, errors.New("hdc: bad model magic (not a model file, or a pre-header legacy snapshot)")
	}
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("hdc: model header: %w", err)
	}
	d, k := int(hdr[0]), int(hdr[1])
	if d <= 0 || d > maxWireD || k < 2 || k > maxWireK {
		return nil, fmt.Errorf("hdc: implausible model header d=%d k=%d", d, k)
	}
	// Generous over-estimate of the honest payload size (gob encodes a
	// float64 or uint64 in at most 9 bytes plus per-value overhead): floats
	// of the accumulators, words of the binarised classes, structure slack.
	words := int64((d + 63) / 64)
	limit := int64(4096) + int64(k)*(int64(d)+words+16)*10
	var wire modelWire
	if err := gob.NewDecoder(io.LimitReader(r, limit)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("hdc: model payload: %w", err)
	}
	if wire.D != d || wire.K != k || len(wire.Classes) != k {
		return nil, errors.New("hdc: payload geometry contradicts header")
	}
	for _, c := range wire.Classes {
		if len(c) != d {
			return nil, errors.New("hdc: malformed class accumulator")
		}
		for _, a := range c {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return nil, errors.New("hdc: non-finite class accumulator value")
			}
		}
	}
	m := &Model{D: d, K: k, Classes: wire.Classes}
	if wire.Bin != nil {
		if len(wire.Bin) != k {
			return nil, errors.New("hdc: malformed binary classes")
		}
		for _, ws := range wire.Bin {
			v, err := hv.FromWords(d, ws)
			if err != nil {
				return nil, err
			}
			m.Bin = append(m.Bin, v)
		}
	}
	return m, nil
}
