package hdc

import (
	"bytes"
	"math"
	"testing"

	"hdface/internal/hv"
)

// makeClusters builds an easy synthetic problem: k cluster prototypes and
// noisy members that flip a fraction of bits.
func makeClusters(d, k, perClass int, flip float64, seed uint64) (feats []*hv.Vector, labels []int, protos []*hv.Vector) {
	r := hv.NewRNG(seed)
	for c := 0; c < k; c++ {
		protos = append(protos, hv.NewRand(r, d))
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perClass; i++ {
			v := protos[c].Clone()
			mask := hv.NewRandBiased(r, d, flip)
			v.Xor(v, mask)
			feats = append(feats, v)
			labels = append(labels, c)
		}
	}
	return
}

// mustTrain wraps Train for the happy-path tests, failing the test on the
// input-validation errors they never trigger.
func mustTrain(tb testing.TB, feats []*hv.Vector, labels []int, k int, opts TrainOpts) *Model {
	tb.Helper()
	m, err := Train(feats, labels, k, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewModel(0, 2) },
		func() { NewModel(64, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid NewModel did not panic")
				}
			}()
			f()
		}()
	}
}

func TestTrainSeparatesClusters(t *testing.T) {
	feats, labels, _ := makeClusters(2048, 4, 20, 0.25, 1)
	m := mustTrain(t, feats, labels, 4, TrainOpts{})
	if acc := m.Accuracy(feats, labels); acc < 0.95 {
		t.Fatalf("train accuracy %v on easy clusters", acc)
	}
	// Held-out members of the same clusters.
	test, tlabels, _ := makeClusters(2048, 4, 10, 0.25, 1) // same seed -> same protos
	if acc := m.Accuracy(test, tlabels); acc < 0.9 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestPredictScoresConsistency(t *testing.T) {
	feats, labels, protos := makeClusters(1024, 3, 10, 0.2, 2)
	m := mustTrain(t, feats, labels, 3, TrainOpts{})
	for c, p := range protos {
		scores := m.Scores(p)
		if len(scores) != 3 {
			t.Fatal("wrong score count")
		}
		if m.Predict(p) != c {
			t.Fatalf("prototype %d misclassified", c)
		}
		best := 0
		for i, s := range scores {
			if s > scores[best] {
				best = i
			}
		}
		if best != c {
			t.Fatalf("scores argmax %d != %d", best, c)
		}
	}
}

func TestScoresPanicsOnDimensionMismatch(t *testing.T) {
	m := NewModel(64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	m.Scores(hv.New(128))
}

func TestBootstrapSkipsRedundant(t *testing.T) {
	// Many near-identical samples per class: after the first few, the
	// bootstrap pass should start skipping.
	feats, labels, _ := makeClusters(2048, 2, 50, 0.05, 3)
	m := mustTrain(t, feats, labels, 2, TrainOpts{Epochs: 1})
	if m.Stats.BootstrapSkips == 0 {
		t.Fatal("no bootstrap skips on redundant data")
	}
	if m.Stats.BootstrapAdds == 0 {
		t.Fatal("no bootstrap adds at all")
	}
	if m.Stats.BootstrapAdds+m.Stats.BootstrapSkips != 100 {
		t.Fatalf("adds %d + skips %d != samples", m.Stats.BootstrapAdds, m.Stats.BootstrapSkips)
	}
}

func TestAdaptiveEpochsImprove(t *testing.T) {
	// A harder problem: high flip rate. Adaptive training must beat the
	// pure bootstrap pass.
	feats, labels, _ := makeClusters(1024, 5, 30, 0.42, 4)
	naive := mustTrain(t, feats, labels, 5, TrainOpts{Epochs: 1, BootstrapMargin: -1e9})
	// BootstrapMargin below any gap means every sample is memorised, and a
	// single epoch of refinement barely runs: this approximates the naive
	// bundling baseline of DESIGN.md's ablation.
	adaptive := mustTrain(t, feats, labels, 5, TrainOpts{Epochs: 30})
	an := naive.Accuracy(feats, labels)
	aa := adaptive.Accuracy(feats, labels)
	if aa < an {
		t.Fatalf("adaptive %v worse than naive %v", aa, an)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	r := hv.NewRNG(1)
	f64 := hv.NewRand(r, 64)
	f32 := hv.NewRand(r, 32)
	cases := []struct {
		name   string
		feats  []*hv.Vector
		labels []int
		k      int
	}{
		{"empty", nil, nil, 2},
		{"k too small", []*hv.Vector{f64}, []int{0}, 1},
		{"misaligned", []*hv.Vector{f64}, []int{0, 1}, 2},
		{"label out of range", []*hv.Vector{f64}, []int{2}, 2},
		{"negative label", []*hv.Vector{f64}, []int{-1}, 2},
		{"nil feature", []*hv.Vector{f64, nil}, []int{0, 1}, 2},
		{"dim mismatch", []*hv.Vector{f64, f32}, []int{0, 1}, 2},
	}
	for _, c := range cases {
		if _, err := Train(c.feats, c.labels, c.k, TrainOpts{}); err == nil {
			t.Errorf("%s: Train accepted invalid input", c.name)
		}
	}
}

func TestUpdateRejectsBadInput(t *testing.T) {
	feats, labels, _ := makeClusters(64, 2, 5, 0.2, 9)
	m := mustTrain(t, feats, labels, 2, TrainOpts{})
	r := hv.NewRNG(2)
	if _, err := m.Update(nil, nil, TrainOpts{}); err == nil {
		t.Error("Update accepted empty batch")
	}
	if _, err := m.Update([]*hv.Vector{hv.NewRand(r, 32)}, []int{0}, TrainOpts{}); err == nil {
		t.Error("Update accepted dimension mismatch")
	}
	if _, err := m.Update([]*hv.Vector{hv.NewRand(r, 64)}, []int{5}, TrainOpts{}); err == nil {
		t.Error("Update accepted out-of-range label")
	}
}

func TestUpdateRefinesModel(t *testing.T) {
	feats, labels, _ := makeClusters(1024, 3, 20, 0.35, 11)
	m := mustTrain(t, feats, labels, 3, TrainOpts{Epochs: 1, BootstrapMargin: -1e9})
	before := m.Accuracy(feats, labels)
	for i := 0; i < 20; i++ {
		if _, err := m.Update(feats, labels, TrainOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if after := m.Accuracy(feats, labels); after < before {
		t.Fatalf("Update degraded accuracy %v -> %v", before, after)
	}
}

func TestCloneIndependence(t *testing.T) {
	feats, labels, _ := makeClusters(512, 2, 10, 0.2, 12)
	m := mustTrain(t, feats, labels, 2, TrainOpts{})
	m.Finalize(3)
	c := m.Clone()
	if c.D != m.D || c.K != m.K {
		t.Fatal("clone geometry differs")
	}
	for i := range m.Classes {
		for j := range m.Classes[i] {
			if m.Classes[i][j] != c.Classes[i][j] {
				t.Fatalf("accumulator %d/%d differs", i, j)
			}
		}
		if !m.Bin[i].Equal(c.Bin[i]) {
			t.Fatalf("binary class %d differs", i)
		}
	}
	// Mutating the clone must not touch the original.
	orig := m.Classes[0][0]
	c.Classes[0][0] += 1000
	c.Bin[0].SetBit(0, 1-c.Bin[0].Bit(0))
	if m.Classes[0][0] != orig {
		t.Fatal("clone shares accumulator storage")
	}
	mb := mustTrain(t, feats, labels, 2, TrainOpts{})
	mb.Finalize(3)
	if !m.Bin[0].Equal(mb.Bin[0]) {
		t.Fatal("original binary vector mutated through clone")
	}
}

func TestFinalizeAndPredictBinary(t *testing.T) {
	feats, labels, _ := makeClusters(2048, 3, 20, 0.2, 5)
	m := mustTrain(t, feats, labels, 3, TrainOpts{})
	m.Finalize(7)
	if len(m.Bin) != 3 {
		t.Fatal("Finalize did not produce class vectors")
	}
	correct := 0
	for i, f := range feats {
		if m.PredictBinary(f) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(feats)); acc < 0.9 {
		t.Fatalf("binary accuracy %v", acc)
	}
}

func TestPredictBinaryBeforeFinalizePanics(t *testing.T) {
	m := NewModel(64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Finalize")
		}
	}()
	m.PredictBinary(hv.New(64))
}

func TestBinaryMatchesFloatOnClearCases(t *testing.T) {
	feats, labels, protos := makeClusters(4096, 2, 20, 0.15, 6)
	m := mustTrain(t, feats, labels, 2, TrainOpts{})
	m.Finalize(1)
	for c, p := range protos {
		if m.Predict(p) != c || m.PredictBinary(p) != c {
			t.Fatalf("prototype %d: float %d binary %d want %d",
				c, m.Predict(p), m.PredictBinary(p), c)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := NewModel(64, 2)
	if m.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy != 0")
	}
}

func TestCosEmptyModelIsZero(t *testing.T) {
	m := NewModel(64, 2)
	r := hv.NewRNG(1)
	if got := m.Scores(hv.NewRand(r, 64)); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty model scores %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	feats, labels, _ := makeClusters(512, 3, 10, 0.2, 8)
	m := mustTrain(t, feats, labels, 3, TrainOpts{})
	m.Finalize(2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != m.D || got.K != m.K {
		t.Fatal("geometry lost")
	}
	for c := range m.Classes {
		for i := range m.Classes[c] {
			if m.Classes[c][i] != got.Classes[c][i] {
				t.Fatalf("accumulator %d/%d differs", c, i)
			}
		}
		if !m.Bin[c].Equal(got.Bin[c]) {
			t.Fatalf("binary class %d differs", c)
		}
	}
	// Predictions identical.
	for _, f := range feats {
		if m.Predict(f) != got.Predict(f) {
			t.Fatal("prediction changed after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage loaded")
	}
	// Structurally invalid: D = 0.
	var buf bytes.Buffer
	m := NewModel(64, 2)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt by re-encoding with a broken wire struct is cumbersome;
	// instead check the validation path with a truncated stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated model loaded")
	}
}

// hostileHeader builds a model stream whose binary header claims the given
// geometry, with whatever payload follows.
func hostileHeader(d, k uint32, payload []byte) []byte {
	buf := []byte("HDC1")
	buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	buf = append(buf, byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
	return append(buf, payload...)
}

// TestLoadRejectsHostileGeometry pins the pre-decode header guard: a
// snapshot declaring an absurd D or K must be rejected from the 12-byte
// header alone, before any gob decoding can allocate proportionally to it.
func TestLoadRejectsHostileGeometry(t *testing.T) {
	cases := []struct {
		name string
		d, k uint32
	}{
		{"zero-d", 0, 2},
		{"huge-d", 1 << 30, 2},
		{"k-below-two", 4096, 1},
		{"huge-k", 4096, 1 << 28},
	}
	for _, c := range cases {
		data := hostileHeader(c.d, c.k, bytes.Repeat([]byte{0xff}, 64))
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: hostile header loaded", c.name)
		}
	}
}

// TestLoadRejectsOversizedPayload asserts the payload limit derived from
// the header: an honest small header followed by a gob stream much larger
// than the declared geometry justifies must fail, not be slurped whole.
func TestLoadRejectsOversizedPayload(t *testing.T) {
	feats, labels, _ := makeClusters(64, 2, 4, 0.2, 31)
	m := mustTrain(t, feats, labels, 2, TrainOpts{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-head the honest payload with a tiny claimed geometry: the limit
	// computed from (8, 2) cannot cover a D=64 payload, and even if it
	// could, the geometry cross-check fires.
	if _, err := Load(bytes.NewReader(hostileHeader(8, 2, buf.Bytes()[12:]))); err == nil {
		t.Fatal("payload exceeding header-derived budget loaded")
	}
}

// TestLoadRejectsNonFinite asserts NaN/Inf accumulator values are refused:
// one poisoned dimension would silently corrupt every cosine similarity.
func TestLoadRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := NewModel(16, 2)
		m.Classes[1][7] = bad
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf); err == nil {
			t.Fatalf("model with %v accumulator loaded", bad)
		}
	}
}

// TestLoadRejectsHeaderPayloadMismatch covers a payload whose gob geometry
// contradicts the (plausible) header.
func TestLoadRejectsHeaderPayloadMismatch(t *testing.T) {
	m := NewModel(64, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(hostileHeader(128, 2, buf.Bytes()[12:]))); err == nil {
		t.Fatal("header/payload geometry mismatch loaded")
	}
}

func TestTrainDeterministic(t *testing.T) {
	feats, labels, _ := makeClusters(512, 3, 15, 0.3, 9)
	a := mustTrain(t, feats, labels, 3, TrainOpts{Seed: 5})
	b := mustTrain(t, feats, labels, 3, TrainOpts{Seed: 5})
	for c := range a.Classes {
		for i := range a.Classes[c] {
			if a.Classes[c][i] != b.Classes[c][i] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	feats, labels, _ := makeClusters(512, 4, 10, 0.45, 10)
	m := mustTrain(t, feats, labels, 4, TrainOpts{Epochs: 5})
	if m.Stats.Similarities == 0 || m.Stats.Epochs == 0 {
		t.Fatalf("stats empty: %+v", m.Stats)
	}
}

func TestMarginOfSeparationGrowsWithD(t *testing.T) {
	// Higher dimensionality should not hurt accuracy on a fixed problem —
	// the Figure 5a trend.
	accAt := func(d int) float64 {
		feats, labels, _ := makeClusters(d, 4, 20, 0.44, 11)
		test, tl, _ := makeClusters(d, 4, 10, 0.44, 11)
		m := mustTrain(t, feats, labels, 4, TrainOpts{})
		return m.Accuracy(test, tl)
	}
	lo, hi := accAt(256), accAt(4096)
	if hi < lo-0.05 {
		t.Fatalf("accuracy degraded with D: %v -> %v", lo, hi)
	}
	if hi < 0.7 {
		t.Fatalf("high-D accuracy too low: %v", hi)
	}
}

func TestNoiseRobustnessOfBinaryModel(t *testing.T) {
	// Flipping a small fraction of model bits must barely change accuracy
	// (HDC's holographic robustness, Table 2's mechanism).
	feats, labels, _ := makeClusters(4096, 2, 20, 0.2, 12)
	m := mustTrain(t, feats, labels, 2, TrainOpts{})
	m.Finalize(3)
	base := 0
	for i, f := range feats {
		if m.PredictBinary(f) == labels[i] {
			base++
		}
	}
	r := hv.NewRNG(13)
	for _, cv := range m.Bin {
		noise := hv.NewRandBiased(r, 4096, 0.05)
		cv.Xor(cv, noise)
	}
	noisy := 0
	for i, f := range feats {
		if m.PredictBinary(f) == labels[i] {
			noisy++
		}
	}
	if float64(base-noisy)/float64(len(feats)) > 0.05 {
		t.Fatalf("5%% bit flips cost %d of %d correct", base-noisy, base)
	}
}

func BenchmarkTrainD4k(b *testing.B) {
	feats, labels, _ := makeClusters(4096, 2, 50, 0.3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustTrain(b, feats, labels, 2, TrainOpts{Epochs: 5})
	}
}

func BenchmarkPredictD4k(b *testing.B) {
	feats, labels, _ := makeClusters(4096, 2, 50, 0.3, 1)
	m := mustTrain(b, feats, labels, 2, TrainOpts{Epochs: 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(feats[i%len(feats)])
	}
}

func BenchmarkPredictBinaryD4k(b *testing.B) {
	feats, labels, _ := makeClusters(4096, 2, 50, 0.3, 1)
	m := mustTrain(b, feats, labels, 2, TrainOpts{Epochs: 5})
	m.Finalize(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PredictBinary(feats[i%len(feats)])
	}
}

func TestMarginReinforcementOption(t *testing.T) {
	feats, labels, _ := makeClusters(1024, 3, 20, 0.4, 14)
	m := mustTrain(t, feats, labels, 3, TrainOpts{Epochs: 10, Margin: 0.05})
	if m.Stats.AdaptiveSteps == 0 {
		t.Fatal("margin reinforcement never fired on a hard problem")
	}
	if acc := m.Accuracy(feats, labels); acc < 0.9 {
		t.Fatalf("margin-trained accuracy %v", acc)
	}
	// Disabled by default: a margin of zero must not reinforce correct
	// predictions (only mistakes drive updates).
	m2 := mustTrain(t, feats, labels, 3, TrainOpts{Epochs: 10})
	if m2.Stats.AdaptiveSteps > m.Stats.AdaptiveSteps {
		t.Fatal("default training performed more updates than margin training")
	}
}

func TestShrinkPreservesSeparation(t *testing.T) {
	// A model trained at high D keeps classifying after dimensionality
	// reduction — the paper's redundancy claim.
	feats, labels, _ := makeClusters(8192, 3, 20, 0.3, 21)
	m := mustTrain(t, feats, labels, 3, TrainOpts{})
	m.Finalize(1)
	full := m.Accuracy(feats, labels)

	small := m.Shrink(1024, nil)
	var shrunk []*hv.Vector
	for _, f := range feats {
		shrunk = append(shrunk, ShrinkVector(f, 1024, nil))
	}
	reduced := small.Accuracy(shrunk, labels)
	if reduced < full-0.1 {
		t.Fatalf("8x reduction dropped accuracy %v -> %v", full, reduced)
	}
	// Binary form carried over.
	if small.Bin == nil || small.Bin[0].D() != 1024 {
		t.Fatal("binary classes not shrunk")
	}
	correct := 0
	for i, f := range shrunk {
		if small.PredictBinary(f) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(shrunk)); acc < full-0.15 {
		t.Fatalf("binary reduced accuracy %v vs full %v", acc, full)
	}
}

func TestShrinkWithPermutation(t *testing.T) {
	feats, labels, _ := makeClusters(2048, 2, 10, 0.2, 22)
	m := mustTrain(t, feats, labels, 2, TrainOpts{})
	r := hv.NewRNG(5)
	perm := r.Perm(2048)
	small := m.Shrink(512, perm)
	var shrunk []*hv.Vector
	for _, f := range feats {
		shrunk = append(shrunk, ShrinkVector(f, 512, perm))
	}
	if acc := small.Accuracy(shrunk, labels); acc < 0.9 {
		t.Fatalf("permuted shrink accuracy %v", acc)
	}
}

func TestShrinkValidation(t *testing.T) {
	m := NewModel(64, 2)
	for name, f := range map[string]func(){
		"zero":      func() { m.Shrink(0, nil) },
		"oversize":  func() { m.Shrink(128, nil) },
		"shortperm": func() { m.Shrink(32, []int{1, 2}) },
		"vec-over":  func() { ShrinkVector(hv.New(64), 128, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCrossValidate(t *testing.T) {
	feats, labels, _ := makeClusters(1024, 3, 20, 0.25, 41)
	accs, err := CrossValidate(feats, labels, 3, 5, TrainOpts{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("want 5 folds, got %d", len(accs))
	}
	var mean float64
	for _, a := range accs {
		if a < 0 || a > 1 {
			t.Fatalf("fold accuracy %v out of range", a)
		}
		mean += a / 5
	}
	if mean < 0.85 {
		t.Fatalf("cross-validated accuracy %v on easy clusters", mean)
	}
	// Reproducible for a fixed seed.
	again, err := CrossValidate(feats, labels, 3, 5, TrainOpts{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range accs {
		if accs[i] != again[i] {
			t.Fatal("cross validation not deterministic")
		}
	}
}

func TestCrossValidateValidation(t *testing.T) {
	feats, labels, _ := makeClusters(256, 2, 3, 0.2, 42)
	for name, f := range map[string]func() ([]float64, error){
		"folds-low":  func() ([]float64, error) { return CrossValidate(feats, labels, 2, 1, TrainOpts{}) },
		"folds-high": func() ([]float64, error) { return CrossValidate(feats, labels, 2, 100, TrainOpts{}) },
		"misaligned": func() ([]float64, error) { return CrossValidate(feats, labels[:2], 2, 2, TrainOpts{}) },
	} {
		if _, err := f(); err == nil {
			t.Fatalf("%s did not error", name)
		}
	}
}
