package hdc

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens model deserialisation: arbitrary bytes must either load
// into a structurally valid model or fail with an error — never panic.
func FuzzLoad(f *testing.F) {
	// Seed with a valid model and some corruptions of it.
	feats, labels, _ := makeClusters(128, 2, 4, 0.2, 51)
	m, err := Train(feats, labels, 2, TrainOpts{})
	if err != nil {
		f.Fatal(err)
	}
	m.Finalize(1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	corrupt := append([]byte(nil), valid...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)
	// Hostile headers: absurd geometry claims that must be rejected before
	// the gob payload drives any allocation.
	f.Add(append([]byte("HDC1\xff\xff\xff\xff\x02\x00\x00\x00"), valid[12:]...))
	f.Add([]byte("HDC1\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(append([]byte("HDC1\x08\x00\x00\x00\x02\x00\x00\x00"), valid[12:]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.D <= 0 || got.K < 2 || len(got.Classes) != got.K {
			t.Fatalf("loaded structurally invalid model: D=%d K=%d", got.D, got.K)
		}
		for _, c := range got.Classes {
			if len(c) != got.D {
				t.Fatal("loaded ragged class accumulator")
			}
		}
	})
}
