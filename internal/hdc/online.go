package hdc

import (
	"math"

	"hdface/internal/hv"
)

// Online is a streaming variant of the classifier for the paper's
// "online on-device learning" claim: samples arrive one at a time, the
// model predicts before it learns (prequential evaluation), and updates
// are the same mistake-weighted rules as batch training — no sample is
// stored, so memory stays O(K*D) regardless of stream length.
type Online struct {
	model *Model
	opts  TrainOpts
	// Seen counts processed samples; Mistakes counts prequential errors.
	Seen, Mistakes int64
}

// NewOnline returns an empty streaming learner for k classes of
// dimensionality d.
func NewOnline(d, k int, opts TrainOpts) *Online {
	return &Online{model: NewModel(d, k), opts: opts.withDefaults()}
}

// Model exposes the underlying model (live; it keeps training).
func (o *Online) Model() *Model { return o.model }

// Learn ingests one labelled sample: it first predicts (returning that
// prediction, the prequential test), then applies the appropriate update.
func (o *Online) Learn(f *hv.Vector, label int) (predicted int) {
	scores := o.model.Scores(f)
	pred := 0
	for c, s := range scores {
		if s > scores[pred] {
			pred = c
		}
	}
	o.Seen++
	if pred != label {
		o.Mistakes++
		w := o.opts.LR * (1 - (scores[label] - scores[pred]))
		o.model.addScaled(label, f, w)
		o.model.addScaled(pred, f, -w)
		o.model.Stats.AdaptiveSteps++
		return pred
	}
	// Correct: memorise only when the margin is thin (the bootstrap
	// saturation rule applied online).
	runner := math.Inf(-1)
	for c, s := range scores {
		if c != label && s > runner {
			runner = s
		}
	}
	if scores[label]-runner < o.opts.BootstrapMargin {
		o.model.addScaled(label, f, o.opts.LR)
		o.model.Stats.BootstrapAdds++
	} else {
		o.model.Stats.BootstrapSkips++
	}
	return pred
}

// ErrorRate returns the prequential (test-then-train) error over the
// stream so far.
func (o *Online) ErrorRate() float64 {
	if o.Seen == 0 {
		return 0
	}
	return float64(o.Mistakes) / float64(o.Seen)
}

// Snapshot finalises a binarised copy of the current model for deployment
// while the online learner keeps training.
func (o *Online) Snapshot(seed uint64) *Model {
	c := o.model.Clone()
	c.Finalize(seed)
	return c
}
