package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/hwsim"
)

// DSEPoint is one FPGA design point for the HDFace inference datapath.
type DSEPoint struct {
	Lanes     int     // 64-bit word lanes of the spatial datapath
	LatencyUs float64 // one-query latency
	EnergyUJ  float64 // one-query energy
	Pareto    bool    // on the latency/energy pareto frontier
}

// DSEData sweeps the FPGA word-lane budget for one HDFace query (the
// design-space exploration a Vivado implementation run would iterate):
// more lanes cut latency but burn more static energy per (shorter) run and
// more dynamic energy in the wider clock tree, exposing a classic
// latency/energy knee.
func DSEData(o Options) ([]DSEPoint, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0]
	p := hdface.New(hdface.Config{D: o.D, Mode: hdface.ModeStochHOG,
		WorkingSize: o.WorkingSize, Workers: 1, Seed: o.Seed, Stride: 3})
	n := 8
	if n > len(ld.trainImgs) {
		n = len(ld.trainImgs)
	}
	if err := p.Fit(ld.trainImgs[:n], ld.trainLabels[:n], ld.k); err != nil {
		return nil, err
	}
	p.ResetWork()
	p.Predict(ld.testImgs[0])
	work := p.Work()
	query := hwsim.FromStoch(work.Stoch)
	query.Add(hwsim.HDCTrainTrace(int64(ld.k), 0, o.D))

	lanes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	var out []DSEPoint
	for _, l := range lanes {
		fpga := hwsim.Kintex7()
		base := hwsim.Kintex7()
		// Scale the word-parallel unit classes with the lane budget; DSP
		// and float units are untouched.
		ratio := float64(l) / base.Throughput[hwsim.OpWord64]
		for _, op := range []hwsim.OpClass{hwsim.OpWord64, hwsim.OpPop64,
			hwsim.OpRand64, hwsim.OpPerm64, hwsim.OpIntAcc} {
			fpga.Throughput[op] = base.Throughput[op] * ratio
			// Wider fabrics pay clock-tree and routing overhead per op.
			fpga.EnergyPJ[op] = base.EnergyPJ[op] * (1 + 0.6*ratio)
		}
		// Static power grows with the active area.
		fpga.StaticWatts = base.StaticWatts * (0.3 + 0.7*ratio)
		r := fpga.Run(query)
		out = append(out, DSEPoint{
			Lanes:     l,
			LatencyUs: r.Seconds * 1e6,
			EnergyUJ:  r.Joules() * 1e6,
		})
	}
	markPareto(out)
	return out, nil
}

// markPareto flags points not dominated in (latency, energy).
func markPareto(pts []DSEPoint) {
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].LatencyUs <= pts[i].LatencyUs && pts[j].EnergyUJ <= pts[i].EnergyUJ &&
				(pts[j].LatencyUs < pts[i].LatencyUs || pts[j].EnergyUJ < pts[i].EnergyUJ) {
				dominated = true
				break
			}
		}
		pts[i].Pareto = !dominated
	}
}

// DSE prints the lane-budget sweep with pareto markers.
func DSE(w io.Writer, o Options) error {
	pts, err := DSEData(o)
	if err != nil {
		return err
	}
	section(w, "FPGA design-space exploration: word lanes vs latency/energy (one query)")
	fmt.Fprintf(w, "%8s %14s %14s %8s\n", "lanes", "latency (us)", "energy (uJ)", "pareto")
	for _, p := range pts {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		fmt.Fprintf(w, "%8d %14.2f %14.2f %8s\n", p.Lanes, p.LatencyUs, p.EnergyUJ, mark)
	}
	fmt.Fprintf(w, "the knee of the frontier motivates the lane budget used by the\n")
	fmt.Fprintf(w, "Figure 7 platform model\n")
	return nil
}
