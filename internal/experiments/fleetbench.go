package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/fleet"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/online"
	"hdface/internal/registry"
	"hdface/internal/serve"
)

// FleetScalePoint is one replica-count measurement in BENCH_fleet.json.
type FleetScalePoint struct {
	Replicas  int     `json:"replicas"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50LatMS  float64 `json:"p50_latency_ms"`
	P99LatMS  float64 `json:"p99_latency_ms"`
}

// FleetAvailability records the killed-replica run.
type FleetAvailability struct {
	Replicas   int     `json:"replicas"`
	Requests   int     `json:"requests"`
	KilledAt   int     `json:"killed_at_request"`
	Failed     int     `json:"failed"`
	ZeroFailed bool    `json:"zero_failed"`
	P99LatMS   float64 `json:"p99_latency_ms"`
}

// FleetDriftRun summarises one drift-recovery stream (fleet or single).
type FleetDriftRun struct {
	Trainers    int     `json:"trainers"`
	PreDriftAcc float64 `json:"pre_drift_acc"`
	DipAcc      float64 `json:"dip_acc"`
	TailAcc     float64 `json:"tail_acc"`
	MergeRounds int     `json:"merge_rounds"`
	Adoptions   int64   `json:"adoptions"`
}

// FleetBenchReport is the BENCH_fleet.json schema.
type FleetBenchReport struct {
	Schema       string            `json:"schema"`
	D            int               `json:"d"`
	NumCPU       int               `json:"num_cpu"`
	Scaling      []FleetScalePoint `json:"scaling"`
	Availability FleetAvailability `json:"availability"`
	// Drift: the same prequential drift stream run through a fleet of
	// trainers with split feedback + CRDT merge, and through one trainer
	// seeing every sample, merged at the same cadence.
	StreamLen  int           `json:"stream_len"`
	DriftAt    int           `json:"drift_at"`
	MergeEvery int           `json:"merge_every"`
	TailLen    int           `json:"tail_len"`
	Fleet      FleetDriftRun `json:"fleet"`
	Single     FleetDriftRun `json:"single"`
	// AccGap is |fleet tail accuracy - single tail accuracy|; the merge
	// is proven lossless when it stays within Epsilon.
	AccGap             float64 `json:"acc_gap"`
	Epsilon            float64 `json:"epsilon"`
	MergeMatchesSingle bool    `json:"merge_matches_single"`
}

// fleetReplicaSet boots n serve daemons from one snapshot and returns
// their front servers (Close one to kill a replica; Close is idempotent,
// so the shutdown func stays safe afterwards) plus a shutdown func.
func fleetReplicaSet(snap []byte, n, workers int) ([]*httptest.Server, func(), error) {
	var servers []*httptest.Server
	var closers []func()
	shutdown := func() {
		for _, c := range closers {
			c()
		}
	}
	for i := 0; i < n; i++ {
		p, err := hdface.LoadSnapshot(bytes.NewReader(snap))
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		p.SetWorkers(workers)
		s, err := serve.New(serve.Config{Pipeline: p, MaxBatch: 4, MaxQueue: 256})
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		ts := httptest.NewServer(s.Handler())
		servers = append(servers, ts)
		closers = append(closers, func() { ts.Close(); s.Close() })
	}
	return servers, shutdown, nil
}

func replicaURLs(servers []*httptest.Server) []string {
	urls := make([]string, len(servers))
	for i, ts := range servers {
		urls[i] = ts.URL
	}
	return urls
}

// FleetBenchData runs the fleet benchmark and returns the report. It
// errors when the availability run loses a client request or the merged
// fleet's accuracy falls outside epsilon of the single trainer's.
func FleetBenchData(o Options) (*FleetBenchReport, error) {
	o = o.withDefaults()
	d, win := 2048, 48
	requests, clients := 192, 8
	replicaCounts := []int{1, 2, 4}
	if o.Quick {
		d, win = 1024, 32
		requests, clients = 64, 4
		replicaCounts = []int{1, 2}
	}

	// One trained pipeline, snapshotted; every replica loads the same
	// bytes so scores are byte-identical across the fleet.
	r := hv.NewRNG(o.Seed ^ 0xf1ee)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(win, win, r))
			labels = append(labels, 0)
		}
	}
	cfg := hdface.Config{D: d, Seed: o.Seed, Workers: 1, WorkingSize: win, Stride: 3}
	p := hdface.New(cfg)
	if err := p.Fit(imgs, labels, 2); err != nil {
		return nil, fmt.Errorf("fleetbench: %w", err)
	}
	var snap bytes.Buffer
	if err := p.SaveSnapshot(&snap); err != nil {
		return nil, fmt.Errorf("fleetbench: %w", err)
	}
	snapBytes := snap.Bytes()
	var probe bytes.Buffer
	if err := imgs[0].WritePGM(&probe); err != nil {
		return nil, fmt.Errorf("fleetbench: %w", err)
	}
	probeBytes := probe.Bytes()

	report := &FleetBenchReport{
		Schema: "hdface-bench-fleet/v1",
		D:      d,
		NumCPU: runtime.NumCPU(),
	}

	routerCfg := func(urls []string) fleet.Config {
		return fleet.Config{
			Replicas:      urls,
			ProbeInterval: 25 * time.Millisecond,
			RetryBackoff:  time.Millisecond,
			MaxAttempts:   4,
			Seed:          o.Seed,
		}
	}

	// ---- Scaling: req/sec and p99 vs replica count ----------------------
	for _, n := range replicaCounts {
		servers, shutdown, err := fleetReplicaSet(snapBytes, n, 1)
		if err != nil {
			return nil, fmt.Errorf("fleetbench: %w", err)
		}
		router, err := fleet.New(routerCfg(replicaURLs(servers)))
		if err != nil {
			shutdown()
			return nil, fmt.Errorf("fleetbench: %w", err)
		}
		rt := httptest.NewServer(router.Handler())

		lats := make([]time.Duration, requests)
		var failed atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < requests; i += clients {
					t0 := time.Now()
					resp, err := http.Post(rt.URL+"/predict", "image/x-portable-graymap", bytes.NewReader(probeBytes))
					if err != nil {
						failed.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						failed.Add(1)
						continue
					}
					lats[i] = time.Since(t0)
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		rt.Close()
		router.Close()
		shutdown()
		if failed.Load() != 0 {
			return nil, fmt.Errorf("fleetbench: scaling run with %d replicas lost %d requests", n, failed.Load())
		}
		var ok []time.Duration
		for _, l := range lats {
			if l > 0 {
				ok = append(ok, l)
			}
		}
		sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
		pct := func(q float64) float64 {
			return float64(ok[int(q*float64(len(ok)-1))].Nanoseconds()) / 1e6
		}
		report.Scaling = append(report.Scaling, FleetScalePoint{
			Replicas:  n,
			Clients:   clients,
			Requests:  requests,
			ReqPerSec: float64(len(ok)) / wall.Seconds(),
			P50LatMS:  pct(0.50),
			P99LatMS:  pct(0.99),
		})
	}

	// ---- Availability: kill a replica mid-load --------------------------
	{
		servers, shutdown, err := fleetReplicaSet(snapBytes, 2, 1)
		if err != nil {
			return nil, fmt.Errorf("fleetbench: %w", err)
		}
		defer shutdown()
		router, err := fleet.New(routerCfg(replicaURLs(servers)))
		if err != nil {
			return nil, fmt.Errorf("fleetbench: %w", err)
		}
		defer router.Close()
		rt := httptest.NewServer(router.Handler())
		defer rt.Close()

		killAt := requests / 2
		var done atomic.Int64
		var killOnce sync.Once
		var failed atomic.Int64
		lats := make([]time.Duration, requests)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < requests; i += clients {
					if int(done.Add(1)) == killAt {
						// A hard kill: the listener goes away and new
						// connections are refused, not erroring softly.
						killOnce.Do(servers[0].Close)
					}
					t0 := time.Now()
					resp, err := http.Post(rt.URL+"/predict", "image/x-portable-graymap", bytes.NewReader(probeBytes))
					if err != nil {
						failed.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						failed.Add(1)
						continue
					}
					lats[i] = time.Since(t0)
				}
			}(c)
		}
		wg.Wait()
		var ok []time.Duration
		for _, l := range lats {
			if l > 0 {
				ok = append(ok, l)
			}
		}
		sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
		report.Availability = FleetAvailability{
			Replicas:   2,
			Requests:   requests,
			KilledAt:   killAt,
			Failed:     int(failed.Load()),
			ZeroFailed: failed.Load() == 0,
			P99LatMS:   float64(ok[int(0.99*float64(len(ok)-1))].Nanoseconds()) / 1e6,
		}
		if !report.Availability.ZeroFailed {
			return nil, fmt.Errorf("fleetbench: %d client requests failed with a killed replica", failed.Load())
		}
	}

	// ---- Drift recovery: split feedback + CRDT merge vs one trainer -----
	preDrift, postDrift, mergeEvery, tail := 240, 480, 30, 120
	if o.Quick {
		preDrift, postDrift, mergeEvery, tail = 120, 280, 30, 80
	}
	report.StreamLen = preDrift + postDrift
	report.DriftAt = preDrift
	report.MergeEvery = mergeEvery
	report.TailLen = tail
	report.Epsilon = 0.02

	poolN := 48
	if o.Quick {
		poolN = 32
	}
	var faceFeats, nonFeats []*hv.Vector
	for i := 0; i < poolN; i++ {
		faceFeats = append(faceFeats, p.Feature(dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r)))
		nonFeats = append(nonFeats, p.Feature(dataset.RenderNonFace(win, win, r)))
	}

	runStream := func(nTrainers int) (FleetDriftRun, error) {
		run := FleetDriftRun{Trainers: nTrainers}
		regs := make([]*registry.Registry, nTrainers)
		trainers := make([]*online.Trainer, nTrainers)
		for i := range trainers {
			reg, err := registry.Open("", 0)
			if err != nil {
				return run, err
			}
			id, err := reg.Put(cfg, p.Model().Clone())
			if err != nil {
				return run, err
			}
			if err := reg.Promote(id); err != nil {
				return run, err
			}
			tr, err := online.New(online.Config{
				Registry: reg, Pipe: cfg,
				Replica: fmt.Sprintf("r%d", i), DeltaOnly: true,
				// Adoption stays ungated: the bench isolates merge-path
				// accuracy, and the gate is exercised elsewhere.
				HoldoutEvery: 1 << 30,
				WindowSize:   32,
				Opts:         hdc.TrainOpts{Seed: o.Seed ^ 0xf1e7},
			})
			if err != nil {
				return run, err
			}
			defer tr.Close()
			regs[i], trainers[i] = reg, tr
		}
		merger := online.NewMerger()
		mergeRound := func() error {
			base := regs[0].Live().Model
			fp := base.Fingerprint()
			for _, tr := range trainers {
				if dl := tr.Delta(); dl != nil {
					merger.Offer(dl)
				}
			}
			merged, _ := merger.Bundle(fp)
			if merged == nil {
				return nil
			}
			cand, err := online.ApplyDelta(base, merged, 1, o.Seed^fp)
			if err != nil {
				return err
			}
			for _, tr := range trainers {
				if _, _, err := tr.Adopt(cfg, cand); err != nil {
					return err
				}
				run.Adoptions++
			}
			run.MergeRounds++
			return nil
		}

		sr := hv.NewRNG(o.Seed ^ 0xd1f7) // same stream for every run
		correct, tailCorrect, preCorrect := 0, 0, 0
		dip, window, windowN := 1.0, 0, 0
		for i := 0; i < report.StreamLen; i++ {
			isFace := sr.Intn(2) == 1
			var f *hv.Vector
			if isFace {
				f = faceFeats[sr.Intn(len(faceFeats))]
			} else {
				f = nonFeats[sr.Intn(len(nonFeats))]
			}
			label := 0
			if isFace {
				label = 1
			}
			if i >= preDrift {
				label = 1 - label
			}
			// Prequential: predict with the fleet's live model, then feed
			// the sample to one trainer — split round-robin across the
			// fleet, so no single accumulator sees the whole stream.
			if regs[0].Live().Model.Predict(f) == label {
				correct++
				window++
				if i < preDrift {
					preCorrect++
				}
				if i >= report.StreamLen-tail {
					tailCorrect++
				}
			}
			windowN++
			trainers[i%nTrainers].Step(online.Sample{Feature: f, Label: label})
			if (i+1)%mergeEvery == 0 {
				if err := mergeRound(); err != nil {
					return run, err
				}
				if acc := float64(window) / float64(windowN); i >= preDrift && acc < dip {
					dip = acc
				}
				window, windowN = 0, 0
			}
		}
		run.PreDriftAcc = float64(preCorrect) / float64(preDrift)
		run.DipAcc = dip
		run.TailAcc = float64(tailCorrect) / float64(tail)
		return run, nil
	}

	fleetN := 2
	if !o.Quick {
		fleetN = 4
	}
	var err error
	if report.Fleet, err = runStream(fleetN); err != nil {
		return nil, fmt.Errorf("fleetbench: fleet stream: %w", err)
	}
	if report.Single, err = runStream(1); err != nil {
		return nil, fmt.Errorf("fleetbench: single stream: %w", err)
	}
	report.AccGap = report.Fleet.TailAcc - report.Single.TailAcc
	if report.AccGap < 0 {
		report.AccGap = -report.AccGap
	}
	report.MergeMatchesSingle = report.AccGap <= report.Epsilon
	if !report.MergeMatchesSingle {
		return nil, fmt.Errorf("fleetbench: merged fleet tail accuracy %.3f vs single trainer %.3f (gap %.3f > %.2f)",
			report.Fleet.TailAcc, report.Single.TailAcc, report.AccGap, report.Epsilon)
	}
	return report, nil
}

// FleetBench measures the fault-tolerant serving tier end to end:
// throughput and p99 as replicas are added behind the router, client-side
// availability while a replica is killed mid-load, and the accuracy cost
// of learning from feedback split across the fleet and merged by bundling
// (none, within epsilon). Writes BENCH_fleet.json.
func FleetBench(w io.Writer, o Options) error {
	section(w, "serving fleet benchmark")
	report, err := FleetBenchData(o)
	if err != nil {
		return err
	}
	for _, s := range report.Scaling {
		fmt.Fprintf(w, "replicas=%d  %6.1f req/s  p50=%.1fms p99=%.1fms\n",
			s.Replicas, s.ReqPerSec, s.P50LatMS, s.P99LatMS)
	}
	a := report.Availability
	fmt.Fprintf(w, "kill-run: %d requests, replica killed at #%d, failed=%d (zero_failed=%v) p99=%.1fms\n",
		a.Requests, a.KilledAt, a.Failed, a.ZeroFailed, a.P99LatMS)
	fmt.Fprintf(w, "drift: fleet(n=%d) pre=%.3f dip=%.3f tail=%.3f merges=%d | single pre=%.3f dip=%.3f tail=%.3f | gap=%.3f (eps=%.2f) match=%v\n",
		report.Fleet.Trainers, report.Fleet.PreDriftAcc, report.Fleet.DipAcc, report.Fleet.TailAcc, report.Fleet.MergeRounds,
		report.Single.PreDriftAcc, report.Single.DipAcc, report.Single.TailAcc,
		report.AccGap, report.Epsilon, report.MergeMatchesSingle)

	dir := o.OutDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_fleet.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
