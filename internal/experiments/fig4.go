package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/nn"
	"hdface/internal/svm"
)

// Fig4Row is the accuracy of every learner on one dataset.
type Fig4Row struct {
	Dataset                   string
	HDStoch, HDOrig, DNN, SVM float64
}

// dnnConfigFor sizes the baseline MLP for the experiment scale.
func dnnConfigFor(in, k, hidden, epochs int, seed uint64) nn.Config {
	return nn.Config{In: in, H1: hidden, H2: hidden, Out: k,
		Epochs: epochs, LR: 0.05, Batch: 16, Seed: seed}
}

// Fig4Data trains all four learners on each dataset and measures test
// accuracy.
func Fig4Data(o Options) ([]Fig4Row, error) {
	o = o.withDefaults()
	var rows []Fig4Row
	for _, ld := range loadAll(o) {
		row := Fig4Row{Dataset: ld.name}

		// HDFace with stochastic hyperspace HOG.
		ps := pipeline(o, hdface.ModeStochHOG, o.D)
		if err := ps.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
			return nil, fmt.Errorf("fig4 %s stoch: %w", ld.name, err)
		}
		row.HDStoch = ps.Evaluate(ld.testImgs, ld.testLabels)

		// HDFace with original-space HOG + nonlinear encoder.
		po := pipeline(o, hdface.ModeOrigHOG, o.D)
		if err := po.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
			return nil, fmt.Errorf("fig4 %s orig: %w", ld.name, err)
		}
		row.HDOrig = po.Evaluate(ld.testImgs, ld.testLabels)

		// Shared HOG features for the non-HDC baselines.
		trainX := hogFeatures(ld.trainImgs, o.WorkingSize)
		testX := hogFeatures(ld.testImgs, o.WorkingSize)

		mlp, err := nn.New(dnnConfigFor(len(trainX[0]), ld.k, 256, o.DNNEpochs, o.Seed))
		if err != nil {
			return nil, err
		}
		if _, err := mlp.Train(trainX, ld.trainLabels); err != nil {
			return nil, err
		}
		row.DNN = mlp.Accuracy(testX, ld.testLabels)

		sv, err := svm.Train(trainX, ld.trainLabels, ld.k, svm.Config{Epochs: 25, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		row.SVM = sv.Accuracy(testX, ld.testLabels)

		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4 prints the accuracy comparison (paper Figure 4).
func Fig4(w io.Writer, o Options) error {
	rows, err := Fig4Data(o)
	if err != nil {
		return err
	}
	section(w, "Figure 4: classification accuracy vs state of the art")
	fmt.Fprintf(w, "%-8s %18s %14s %8s %8s\n", "dataset", "HDFace(stoch-HOG)", "HDFace(orig)", "DNN", "SVM")
	var sum Fig4Row
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %18.3f %14.3f %8.3f %8.3f\n", r.Dataset, r.HDStoch, r.HDOrig, r.DNN, r.SVM)
		sum.HDStoch += r.HDStoch
		sum.HDOrig += r.HDOrig
		sum.DNN += r.DNN
		sum.SVM += r.SVM
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-8s %18.3f %14.3f %8.3f %8.3f\n", "mean", sum.HDStoch/n, sum.HDOrig/n, sum.DNN/n, sum.SVM/n)
	fmt.Fprintf(w, "paper: HDC beats DNN by 3.9%% and SVM by 10.4%% on average; stochastic and\n")
	fmt.Fprintf(w, "original-space feature extraction give the same detection quality\n")
	return nil
}
