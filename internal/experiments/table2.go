package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/encoder"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/nn"
	"hdface/internal/noise"
)

// Table2Row is the quality loss (clean accuracy minus noisy accuracy) of
// one configuration across the bit-error sweep.
type Table2Row struct {
	Name   string
	Losses []float64 // aligned with Options.ErrRates
}

// table2Dims are the hypervector dimensionalities of the paper's Table 2.
func table2Dims(o Options) []int {
	if o.Quick {
		return []int{1024, 4096}
	}
	return []int{1024, 4096, 10240}
}

// Table2Data reproduces the robustness study on the EMOTION dataset:
// random bit errors hit DNN weights (at 16/8/4-bit precision), the fully
// hyperdimensional pipeline (features + model bits), and the original-space
// HOG pipeline (float feature words).
func Table2Data(o Options) ([]Table2Row, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0]
	const trials = 5
	var rows []Table2Row

	// --- DNN at three precisions ---
	trainX := hogFeatures(ld.trainImgs, o.WorkingSize)
	testX := hogFeatures(ld.testImgs, o.WorkingSize)
	mlp, err := nn.New(dnnConfigFor(len(trainX[0]), ld.k, 256, o.DNNEpochs, o.Seed))
	if err != nil {
		return nil, err
	}
	if _, err := mlp.Train(trainX, ld.trainLabels); err != nil {
		return nil, err
	}
	cleanFloat := mlp.Accuracy(testX, ld.testLabels)
	for _, bits := range []int{16, 8, 4} {
		row := Table2Row{Name: fmt.Sprintf("DNN %d-bit", bits)}
		for _, rate := range o.ErrRates {
			var loss float64
			for t := 0; t < trials; t++ {
				q, err := nn.Quantize(mlp, bits)
				if err != nil {
					return nil, err
				}
				noise.New(o.Seed+uint64(t)*31+uint64(rate*1000)).FlipQuantized(q, rate)
				loss += cleanFloat - q.Accuracy(testX, ld.testLabels)
			}
			row.Losses = append(row.Losses, loss/trials)
		}
		rows = append(rows, row)
	}

	// --- HDFace, fully hyperdimensional (features + model bits) ---
	for _, d := range table2Dims(o) {
		p := pipeline(o, hdface.ModeStochHOG, d)
		if err := p.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
			return nil, err
		}
		testFeats := p.Features(ld.testImgs)
		model := p.Model()
		clean := binAccuracy(model, testFeats, ld.testLabels)
		row := Table2Row{Name: fmt.Sprintf("HDFace+HoG+Learn D=%dk", d/1024)}
		for _, rate := range o.ErrRates {
			var loss float64
			for t := 0; t < trials; t++ {
				inj := noise.New(o.Seed + uint64(t)*17 + uint64(rate*1000))
				noisyFeats := cloneAll(testFeats)
				inj.FlipVectors(noisyFeats, rate)
				noisyModel := cloneModelBin(model)
				inj.FlipVectors(noisyModel.Bin, rate)
				loss += clean - binAccuracy(noisyModel, noisyFeats, ld.testLabels)
			}
			row.Losses = append(row.Losses, loss/trials)
		}
		rows = append(rows, row)
	}

	// --- HDFace with HOG on the original representation: bit errors hit
	// the fixed-point feature memory before encoding ---
	for _, d := range table2Dims(o) {
		enc := encoder.NewProjection(d, len(trainX[0]), o.Seed^0x0e5)
		trainFeats := encodeAll(enc, trainX)
		model, err := hdc.Train(trainFeats, ld.trainLabels, ld.k, hdc.TrainOpts{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		model.Finalize(o.Seed)
		cleanTest := encodeAll(enc, testX)
		clean := binAccuracy(model, cleanTest, ld.testLabels)
		row := Table2Row{Name: fmt.Sprintf("HDFace+Learn D=%dk", d/1024)}
		for _, rate := range o.ErrRates {
			var loss float64
			for t := 0; t < trials; t++ {
				inj := noise.New(o.Seed + uint64(t)*13 + uint64(rate*1000))
				noisy := encodeAll(enc, corruptedHOG(inj, ld.testImgs, o.WorkingSize, rate))
				loss += clean - binAccuracy(model, noisy, ld.testLabels)
			}
			row.Losses = append(row.Losses, loss/trials)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// corruptedHOG models bit errors on the original-representation feature
// extraction path: flips hit both the pixel memory HOG reads and the
// fixed-point feature memory it writes. (The hyperspace pipeline's
// counterpart is bit flips directly on its hypervectors.)
func corruptedHOG(inj *noise.Injector, imgs []*imgproc.Image, workingSize int, rate float64) [][]float64 {
	noisyImgs := make([]*imgproc.Image, len(imgs))
	for i, img := range imgs {
		c := img.Clone()
		inj.FlipImagePixels(c.Pix, rate)
		noisyImgs[i] = c
	}
	out := hogFeatures(noisyImgs, workingSize)
	for _, row := range out {
		inj.FlipFixed8(row, 0, 1, rate)
	}
	return out
}

func cloneAll(vs []*hv.Vector) []*hv.Vector {
	out := make([]*hv.Vector, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func cloneModelBin(m *hdc.Model) *hdc.Model {
	c := &hdc.Model{D: m.D, K: m.K, Classes: m.Classes}
	c.Bin = cloneAll(m.Bin)
	return c
}

func encodeAll(enc *encoder.Projection, xs [][]float64) []*hv.Vector {
	out := make([]*hv.Vector, len(xs))
	for i, x := range xs {
		out[i] = enc.Encode(x)
	}
	return out
}

func binAccuracy(m *hdc.Model, feats []*hv.Vector, labels []int) float64 {
	correct := 0
	for i, f := range feats {
		if m.PredictBinary(f) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(feats))
}

// Table2 prints the robustness table: quality loss per error rate.
func Table2(w io.Writer, o Options) error {
	o = o.withDefaults()
	rows, err := Table2Data(o)
	if err != nil {
		return err
	}
	section(w, "Table 2: quality loss under random bit error (EMOTION)")
	fmt.Fprintf(w, "%-24s", "error rate")
	for _, r := range o.ErrRates {
		fmt.Fprintf(w, "%8.0f%%", r*100)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-24s", row.Name)
		for _, l := range row.Losses {
			fmt.Fprintf(w, "%8.1f%%", l*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "paper: at 12%% error, DNN 16-bit loses 23.4%%; HDFace+HoG+Learn D=4k loses 1.8%%;\n")
	fmt.Fprintf(w, "running HOG on the original representation forfeits the robustness advantage\n")
	return nil
}
