package experiments

import (
	"fmt"
	"io"

	"hdface/internal/hdc"
	"hdface/internal/hdhog"
	"hdface/internal/hv"
	"hdface/internal/hwsim"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

// AblationRow records one design-choice variant: its accuracy on EMOTION
// and the hyperspace work per image.
type AblationRow struct {
	Name        string
	Accuracy    float64
	WordsPerImg int64
	CPUMsPerImg float64 // modelled A53 feature-extraction time
}

// ablationConfig is one hdhog variant to evaluate.
type ablationConfig struct {
	name     string
	params   hdhog.Params
	sqrtIter int
}

// Ablations evaluates the design choices DESIGN.md calls out on a reduced
// EMOTION split: gradient stride, bundling scheme, magnitude form and
// square-root search depth.
func Ablations(w io.Writer, o Options) error {
	o = o.withDefaults()
	// A reduced split keeps the sweep tractable; deltas matter, not
	// absolute accuracy.
	trainN, testN := o.EmoTrain*3/5, o.EmoTest*3/5
	ld := loadAll(Options{Seed: o.Seed, EmoTrain: trainN, EmoTest: testN,
		FaceTrain: 1, FaceTest: 1, WorkingSize: o.WorkingSize,
		Trials: o.Trials, D: o.D, DNNEpochs: o.DNNEpochs}.withDefaults())[0]

	configs := []ablationConfig{
		{name: "baseline (stride1, L2, weighted)", params: hdhog.Params{Stride: 1}},
		{name: "stride 3 (paper geometry)", params: hdhog.Params{Stride: 3}},
		{name: "bind-bundle", params: hdhog.Params{Stride: 1, BindBundle: true}},
		{name: "L1 magnitude", params: hdhog.Params{Stride: 1, MagnitudeL1: true}},
		{name: "sqrt depth 4", params: hdhog.Params{Stride: 1}, sqrtIter: 4},
	}
	cpu := hwsim.CortexA53()
	rows := make([]AblationRow, 0, len(configs))
	for _, cfg := range configs {
		opts := []stoch.Option{}
		if cfg.sqrtIter > 0 {
			opts = append(opts, stoch.WithSqrtIterations(cfg.sqrtIter))
		}
		codec := stoch.NewCodec(o.D, o.Seed^0xab1, opts...)
		ext := hdhog.New(codec, cfg.params)
		ext.WarmIDs(o.WorkingSize, o.WorkingSize)

		extract := func(imgs []*imgproc.Image) []*hv.Vector {
			out := make([]*hv.Vector, len(imgs))
			for i, img := range imgs {
				if img.W != o.WorkingSize || img.H != o.WorkingSize {
					img = img.Resize(o.WorkingSize, o.WorkingSize)
				}
				out[i] = ext.Feature(img)
			}
			return out
		}
		trainF := extract(ld.trainImgs)
		testF := extract(ld.testImgs)
		model, err := hdc.Train(trainF, ld.trainLabels, ld.k, hdc.TrainOpts{Seed: o.Seed})
		if err != nil {
			return err
		}

		n := int64(len(ld.trainImgs) + len(ld.testImgs))
		trace := hwsim.FromStoch(codec.Stats)
		perImg := trace.Scale(1 / float64(n))
		rows = append(rows, AblationRow{
			Name:        cfg.name,
			Accuracy:    model.Accuracy(testF, ld.testLabels),
			WordsPerImg: trace.Total() / n,
			CPUMsPerImg: cpu.Run(perImg).Seconds * 1e3,
		})
	}

	section(w, "Ablations: hyperspace HOG design choices (EMOTION subset)")
	fmt.Fprintf(w, "%-34s %10s %14s %14s\n", "variant", "accuracy", "words/image", "A53 ms/image")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %10.3f %14d %14.2f\n", r.Name, r.Accuracy, r.WordsPerImg, r.CPUMsPerImg)
	}
	fmt.Fprintf(w, "stride 3 is ~9x cheaper but loses fine spatial detail; bind-bundle\n")
	fmt.Fprintf(w, "suppresses class margins (value-squared attenuation); L1 magnitude\n")
	fmt.Fprintf(w, "removes every square root; shallow sqrt search trades op count for\n")
	fmt.Fprintf(w, "magnitude precision below the D-sampling floor\n")
	return nil
}
