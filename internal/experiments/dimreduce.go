package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/hv"
)

// DimReducePoint is one post-training reduction sample.
type DimReducePoint struct {
	D        int
	Accuracy float64
}

// DimReduceData trains one EMOTION model at the top of the paper's
// dimension range and then *cuts* it — no retraining — to smaller widths,
// measuring accuracy at each. This probes the Section 6.3 claim that
// "since HDC operates over redundant representation, it has natural
// robustness to dimensionality reduction".
func DimReduceData(o Options) ([]DimReducePoint, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0]
	fullD := 10240
	cuts := []int{10240, 8192, 4096, 2048, 1024, 512}
	if o.Quick {
		fullD = 4096
		cuts = []int{4096, 2048, 1024, 512}
	}
	p := pipeline(o, hdface.ModeStochHOG, fullD)
	if err := p.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
		return nil, err
	}
	testFeats := p.Features(ld.testImgs)
	model := p.Model()

	var out []DimReducePoint
	for _, d := range cuts {
		m := model
		feats := testFeats
		if d < fullD {
			m = model.Shrink(d, nil)
			feats = make([]*hv.Vector, len(testFeats))
			for i, f := range testFeats {
				feats[i] = hdc.ShrinkVector(f, d, nil)
			}
		}
		out = append(out, DimReducePoint{D: d, Accuracy: m.Accuracy(feats, ld.testLabels)})
	}
	return out, nil
}

// DimReduce prints the post-training reduction curve.
func DimReduce(w io.Writer, o Options) error {
	pts, err := DimReduceData(o)
	if err != nil {
		return err
	}
	section(w, "Dimensionality reduction of a trained model (EMOTION, no retraining)")
	fmt.Fprintf(w, "%8s %10s\n", "D kept", "accuracy")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %10.3f\n", p.D, p.Accuracy)
	}
	fmt.Fprintf(w, "paper (6.3): redundant holographic representation gives natural\n")
	fmt.Fprintf(w, "robustness to dimensionality reduction\n")
	return nil
}
