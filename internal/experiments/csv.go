package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV regenerates the numeric experiment data and writes one CSV per
// experiment into dir, for plotting outside Go. Only the experiments with
// tabular data are exported; the visual ones (fig6) write PGMs instead.
func WriteCSV(dir string, o Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	o = o.withDefaults()

	write := func(name string, header []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			f.Close()
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

	// fig2
	var rows [][]string
	for _, p := range Fig2Data(o) {
		rows = append(rows, []string{strconv.Itoa(p.D), ftoa(p.Construct), ftoa(p.Avg), ftoa(p.Mul)})
	}
	if err := write("fig2.csv", []string{"d", "construct_err", "avg_err", "mul_err"}, rows); err != nil {
		return err
	}

	// fig4
	f4, err := Fig4Data(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range f4 {
		rows = append(rows, []string{r.Dataset, ftoa(r.HDStoch), ftoa(r.HDOrig), ftoa(r.DNN), ftoa(r.SVM)})
	}
	if err := write("fig4.csv", []string{"dataset", "hd_stoch", "hd_orig", "dnn", "svm"}, rows); err != nil {
		return err
	}

	// fig5a
	f5a, err := Fig5aData(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range f5a {
		rows = append(rows, []string{strconv.Itoa(p.D), ftoa(p.Accuracy), ftoa(p.TrainSeconds)})
	}
	if err := write("fig5a.csv", []string{"d", "accuracy", "train_seconds_a53"}, rows); err != nil {
		return err
	}

	// fig5b
	f5b, err := Fig5bData(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range f5b {
		rows = append(rows, []string{strconv.Itoa(p.Hidden), ftoa(p.Accuracy), ftoa(p.TrainSeconds)})
	}
	if err := write("fig5b.csv", []string{"hidden", "accuracy", "train_seconds_a53"}, rows); err != nil {
		return err
	}

	// table2
	t2, err := Table2Data(o)
	if err != nil {
		return err
	}
	header := []string{"config"}
	for _, r := range o.ErrRates {
		header = append(header, fmt.Sprintf("loss_at_%g", r))
	}
	rows = rows[:0]
	for _, r := range t2 {
		row := []string{r.Name}
		for _, l := range r.Losses {
			row = append(row, ftoa(l))
		}
		rows = append(rows, row)
	}
	if err := write("table2.csv", header, rows); err != nil {
		return err
	}

	// fewshot
	fs, err := FewShotData(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range fs {
		rows = append(rows, []string{strconv.Itoa(p.PerClass),
			ftoa(p.HDSingle), ftoa(p.HDFull), ftoa(p.DNN), ftoa(p.SVM)})
	}
	if err := write("fewshot.csv", []string{"per_class", "hd_single", "hd_adaptive", "dnn", "svm"}, rows); err != nil {
		return err
	}

	// dimreduce
	dr, err := DimReduceData(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range dr {
		rows = append(rows, []string{strconv.Itoa(p.D), ftoa(p.Accuracy)})
	}
	if err := write("dimreduce.csv", []string{"d_kept", "accuracy"}, rows); err != nil {
		return err
	}

	// occlusion
	oc, err := OcclusionData(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range oc {
		rows = append(rows, []string{ftoa(p.Frac), ftoa(p.HD), ftoa(p.DNN)})
	}
	if err := write("occlusion.csv", []string{"occluded_frac", "hdface", "dnn"}, rows); err != nil {
		return err
	}

	// dse
	ds, err := DSEData(o)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range ds {
		rows = append(rows, []string{strconv.Itoa(p.Lanes), ftoa(p.LatencyUs),
			ftoa(p.EnergyUJ), strconv.FormatBool(p.Pareto)})
	}
	return write("dse.csv", []string{"lanes", "latency_us", "energy_uj", "pareto"}, rows)
}
