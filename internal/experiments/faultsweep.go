package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/fault"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// FaultPoint is one (D, BER) measurement of the chaos sweep: bit-serial
// classification accuracy and end-to-end detection F1 with the class memory
// faulty, and again after the self-repair pass. Grid faults (the cached
// cell hypervectors of each pyramid level) stay active through repair —
// repair fixes the class memory, not the environment.
type FaultPoint struct {
	D             int     `json:"d"`
	BER           float64 `json:"ber"`
	ModelFlips    int     `json:"model_bits_flipped"`
	StuckBits     int     `json:"stuck_bits"`
	GridBits      int     `json:"grid_bits_flipped"`
	AccFaulty     float64 `json:"acc_faulty"`
	AccRepaired   float64 `json:"acc_repaired"`
	F1Faulty      float64 `json:"f1_faulty"`
	F1Repaired    float64 `json:"f1_repaired"`
	BoxesFaulty   int     `json:"boxes_faulty"`
	BoxesRepaired int     `json:"boxes_repaired"`
}

// FaultDim is the per-dimensionality section of BENCH_fault.json: the clean
// bit-serial baselines the faulty points are read against.
type FaultDim struct {
	D        int          `json:"d"`
	AccClean float64      `json:"acc_clean"`
	F1Clean  float64      `json:"f1_clean"`
	Points   []FaultPoint `json:"points"`
}

// FaultReport is the BENCH_fault.json schema.
type FaultReport struct {
	Schema    string     `json:"schema"`
	Seed      uint64     `json:"seed"`
	Win       int        `json:"win"`
	Scene     string     `json:"scene"`
	StuckFrac float64    `json:"stuck_frac"`
	BERs      []float64  `json:"bers"`
	Dims      []FaultDim `json:"dims"`
}

// faultBERs is the bit-error sweep of the chaos harness. It reaches far
// beyond Table 2's 14% because the question here is different: not "how
// little does HDFace lose" but "where does the holographic representation
// finally break, and how much does self-repair claw back".
func faultBERs(o Options) []float64 {
	if o.Quick {
		return []float64{0.05, 0.2, 0.4}
	}
	return []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
}

func faultDims(o Options) []int {
	if o.Quick {
		return []int{1024}
	}
	return []int{1024, 4096}
}

// detectionF1 converts matched detections into an F1 score.
func detectionF1(boxes []detect.Box, truth [][4]int) float64 {
	tp, fp, fn := detect.MatchTruth(boxes, truth, 0.5)
	if 2*tp+fp+fn == 0 {
		return 0
	}
	return float64(2*tp) / float64(2*tp+fp+fn)
}

// FaultSweepData runs the chaos harness across BER x D and returns the
// report. For each dimensionality it trains a binary face/non-face
// pipeline, retains the training features (the repair corpus), then for
// each bit-error rate injects faults into the binarised class memory
// (StuckFrac of them latched stuck-at) and into every cached pyramid cell
// grid, measures bit-serial accuracy and detection F1, runs the
// majority-re-bundling self-repair pass, and measures both again.
func FaultSweepData(o Options) (*FaultReport, error) {
	o = o.withDefaults()
	const (
		win       = 48
		sceneSize = 192
		nFaces    = 3
		stuckFrac = 0.25
	)
	params := detect.Params{Win: win, Stride: 24, Scales: []float64{1, 1.5, 2}, NMSIoU: 0.3}
	report := &FaultReport{
		Schema:    "hdface-bench-fault/v1",
		Seed:      o.Seed,
		Win:       win,
		Scene:     fmt.Sprintf("%dx%d synthetic, %d faces", sceneSize, sceneSize, nFaces),
		StuckFrac: stuckFrac,
		BERs:      faultBERs(o),
	}

	// Binary face/non-face corpus at the window size: a training half (also
	// the repair corpus) and a held-out test half for accuracy.
	r := hv.NewRNG(o.Seed ^ 0xfa57)
	render := func(n int) ([]*imgproc.Image, []int) {
		var imgs []*imgproc.Image
		var labels []int
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				imgs = append(imgs, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
				labels = append(labels, 1)
			} else {
				imgs = append(imgs, dataset.RenderNonFace(win, win, r))
				labels = append(labels, 0)
			}
		}
		return imgs, labels
	}
	nTrain, nTest := 40, 30
	if o.Quick {
		nTrain, nTest = 20, 16
	}
	trainImgs, trainLabels := render(nTrain)
	testImgs, testLabels := render(nTest)
	scene := dataset.GenerateScene(sceneSize, sceneSize, win, nFaces, o.Seed^0x5ce2)

	sweepF1 := func(p *hdface.Pipeline, m *hdc.Model, h *fault.Harness) (float64, int, error) {
		scorer, err := p.DetectScorer(m, win)
		if err != nil {
			return 0, 0, err
		}
		scorer.Hamming = true
		if h != nil {
			scorer.OnGrid = h.GridHook()
			h.BeginSweep()
		}
		boxes, _, err := detect.Sweep(context.Background(), scene.Image, scorer, params)
		if err != nil {
			return 0, 0, err
		}
		return detectionF1(boxes, scene.Faces), len(boxes), nil
	}

	for _, d := range faultDims(o) {
		p := pipeline(o, hdface.ModeStochHOG, d)
		// Detection windows arrive at the sweep window size; extract at the
		// same geometry so the cell grid is reusable.
		cfg := p.Config()
		cfg.WorkingSize = win
		p = hdface.New(cfg)
		if err := p.Fit(trainImgs, trainLabels, 2); err != nil {
			return nil, fmt.Errorf("faultsweep d=%d: %w", d, err)
		}
		model := p.Model()
		// The repair corpus: retained training features. Re-extraction
		// carries fresh stochastic sampling noise, exactly what a deployed
		// service re-reading its enrolment set would see.
		repairFeats := p.Features(trainImgs)
		testFeats := p.Features(testImgs)

		dim := FaultDim{
			D:        d,
			AccClean: binAccuracy(model, testFeats, testLabels),
		}
		f1, _, err := sweepF1(p, model, nil)
		if err != nil {
			return nil, err
		}
		dim.F1Clean = f1

		for _, ber := range report.BERs {
			h := fault.New(fault.Plan{BER: ber, StuckFrac: stuckFrac, Seed: o.Seed ^ uint64(d)})
			m := cloneModelBin(model)
			transient, stuck := h.InjectModel(m)
			pt := FaultPoint{
				D: d, BER: ber,
				ModelFlips: transient + stuck,
				StuckBits:  stuck,
			}
			pt.AccFaulty = binAccuracy(m, testFeats, testLabels)
			pt.F1Faulty, pt.BoxesFaulty, err = sweepF1(p, m, h)
			if err != nil {
				return nil, err
			}
			h.Repair(m, repairFeats, trainLabels)
			pt.AccRepaired = binAccuracy(m, testFeats, testLabels)
			pt.F1Repaired, pt.BoxesRepaired, err = sweepF1(p, m, h)
			if err != nil {
				return nil, err
			}
			pt.GridBits = h.Stats().GridBits
			dim.Points = append(dim.Points, pt)
		}
		report.Dims = append(report.Dims, dim)
	}
	return report, nil
}

// FaultSweep prints the chaos-harness sweep and writes BENCH_fault.json.
func FaultSweep(w io.Writer, o Options) error {
	o = o.withDefaults()
	report, err := FaultSweepData(o)
	if err != nil {
		return err
	}
	section(w, "fault sweep: bit-error chaos harness with self-repair")
	for _, dim := range report.Dims {
		fmt.Fprintf(w, "D=%d  clean: acc=%.3f f1=%.3f\n", dim.D, dim.AccClean, dim.F1Clean)
		fmt.Fprintf(w, "%8s %12s %12s %10s %10s\n", "BER", "acc faulty", "acc repaired", "f1 faulty", "f1 repaired")
		for _, pt := range dim.Points {
			fmt.Fprintf(w, "%7.0f%% %12.3f %12.3f %10.3f %10.3f\n",
				pt.BER*100, pt.AccFaulty, pt.AccRepaired, pt.F1Faulty, pt.F1Repaired)
		}
	}
	fmt.Fprintln(w, "repair re-bundles class memory from retained features; stuck-at cells (25% of faults) persist")

	dir := o.OutDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_fault.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
