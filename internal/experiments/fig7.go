package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/hog"
	"hdface/internal/hwsim"
	"hdface/internal/nn"
)

// Fig7Row holds the modelled efficiency comparison for one dataset: how
// much faster / more energy-efficient HDFace is than the DNN pipeline on
// each platform, for training and inference.
type Fig7Row struct {
	Dataset                         string
	TrainSpeedCPU, TrainEnergyCPU   float64
	TrainSpeedFPGA, TrainEnergyFPGA float64
	InferSpeedCPU, InferEnergyCPU   float64
	InferSpeedFPGA, InferEnergyFPGA float64
	// Per-epoch CPU seconds, the comparison the paper quotes directly
	// ("0.9 s vs 5.4 s" on the A53).
	EpochHDSec, EpochDNNSec float64
}

// dnnEpochsModel is the epoch count used when pricing DNN training (the
// paper does not state its budget; 30 is typical for HOG-MLP pipelines).
// HDFace training is priced with per-epoch re-encoding, matching the
// authors' PyTorch HDC library, which encodes batches on the fly each
// adaptive pass. EXPERIMENTS.md discusses the sensitivity of the training
// ratio to both choices.
const dnnEpochsModel = 30

// dnnPaperHidden is the paper's best DNN configuration (Figure 5b).
const dnnPaperHidden = 1024

// dnnTrainStats analytically counts the MAC work of training the paper's
// 4-layer MLP: forward + ~2x backward per sample per epoch, plus one
// momentum update per weight per minibatch.
func dnnTrainStats(in, hidden, k, samples, epochs, batch int) nn.Stats {
	fwd := int64(in*hidden + hidden*hidden + hidden*k)
	weights := int64(in*hidden + hidden + hidden*hidden + hidden + hidden*k + k)
	passes := int64(samples) * int64(epochs)
	batches := (int64(samples) + int64(batch) - 1) / int64(batch) * int64(epochs)
	return nn.Stats{
		ForwardMACs:  fwd * passes,
		BackwardMACs: 2 * fwd * passes,
		Updates:      weights * batches,
	}
}

// dnnInferStats counts one forward pass.
func dnnInferStats(in, hidden, k int) nn.Stats {
	return nn.Stats{ForwardMACs: int64(in*hidden + hidden*hidden + hidden*k)}
}

// hogStatsPer measures classical HOG float work for one working-size image.
func hogStatsPer(o Options) hog.Stats {
	e := hog.New(hog.DefaultParams())
	img := loadAll(Options{Quick: true, Seed: o.Seed, EmoTrain: 1, EmoTest: 1,
		FaceTrain: 1, FaceTest: 1, WorkingSize: o.WorkingSize})[0].trainImgs[0]
	e.Features(img.Resize(o.WorkingSize, o.WorkingSize))
	return e.Stats
}

// Fig7Data builds operation traces for HDFace and the DNN pipeline on each
// dataset and prices them on both platform models.
func Fig7Data(o Options) ([]Fig7Row, error) {
	o = o.withDefaults()
	cpu, fpga := hwsim.CortexA53(), hwsim.Kintex7()
	hogPer := hogStatsPer(o)
	hogFeatLen := hog.New(hog.DefaultParams()).FeatureLen(o.WorkingSize, o.WorkingSize)

	var rows []Fig7Row
	for _, ld := range loadAll(o) {
		// --- HDFace traces, measured from the real pipeline ---
		// Efficiency is priced at the paper's own geometry: one gradient
		// per 3x3 pixel cell (stride 3). The accuracy experiments use
		// per-pixel gradients (stride 1, 9x the work); EXPERIMENTS.md
		// discusses the tension between the two claims.
		p := hdface.New(hdface.Config{D: o.D, Mode: hdface.ModeStochHOG,
			WorkingSize: o.WorkingSize, Workers: 1, Seed: o.Seed, Stride: 3})
		if err := p.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", ld.name, err)
		}
		trainWork := p.Work()
		st := p.Model().Stats
		// The authors' HDC library re-encodes each adaptive epoch, so the
		// extraction trace is charged once per pass (bootstrap + epochs).
		passes := float64(1 + st.Epochs)
		hdTrain := hwsim.FromStoch(trainWork.Stoch).Scale(passes)
		hdTrain.Add(hwsim.HDCTrainTrace(st.Similarities, st.BootstrapAdds+2*st.AdaptiveSteps, o.D))

		p.ResetWork()
		nq := len(ld.testImgs)
		if nq > 8 {
			nq = 8 // a few queries suffice to measure the per-query trace
		}
		for i := 0; i < nq; i++ {
			p.Predict(ld.testImgs[i])
		}
		inferWork := p.Work()
		hdInfer := hwsim.FromStoch(inferWork.Stoch).Scale(1 / float64(nq))
		hdInfer.Add(hwsim.HDCTrainTrace(int64(ld.k), 0, o.D)) // binary similarity search

		// --- DNN traces: classical HOG + the paper's 1024x1024 MLP ---
		nTrain := len(ld.trainImgs)
		dnnTrainNN := dnnTrainStats(hogFeatLen, dnnPaperHidden, ld.k, nTrain, dnnEpochsModel, 16)
		dnnHOGTrain := hwsim.FromHOG(hogPer).Scale(float64(nTrain))
		// One HOG pass per epoch would be cached in practice; charge one.
		dnnTrainCPU := hwsim.FromNN(dnnTrainNN, 32)
		dnnTrainCPU.Add(dnnHOGTrain)
		dnnTrainFPGA := hwsim.FromNN(dnnTrainNN, 16)
		dnnTrainFPGA.Add(dnnHOGTrain)

		dnnInferNN := dnnInferStats(hogFeatLen, dnnPaperHidden, ld.k)
		dnnInferCPU := hwsim.FromNN(dnnInferNN, 32)
		dnnInferCPU.Add(hwsim.FromHOG(hogPer))
		dnnInferFPGA := hwsim.FromNN(dnnInferNN, 16)
		dnnInferFPGA.Add(hwsim.FromHOG(hogPer))

		row := Fig7Row{Dataset: ld.name}
		// Per-epoch costs on the CPU: one re-encoding pass over the train
		// set for HDFace; one forward+backward pass for the DNN.
		row.EpochHDSec = cpu.Run(hwsim.FromStoch(trainWork.Stoch)).Seconds
		perEpochDNN := hwsim.FromNN(dnnTrainStats(hogFeatLen, dnnPaperHidden, ld.k,
			len(ld.trainImgs), 1, 16), 32)
		row.EpochDNNSec = cpu.Run(perEpochDNN).Seconds
		row.TrainSpeedCPU = hwsim.Speedup(cpu.Run(hdTrain), cpu.Run(dnnTrainCPU))
		row.TrainEnergyCPU = hwsim.EnergyGain(cpu.Run(hdTrain), cpu.Run(dnnTrainCPU))
		row.TrainSpeedFPGA = hwsim.Speedup(fpga.Run(hdTrain), fpga.Run(dnnTrainFPGA))
		row.TrainEnergyFPGA = hwsim.EnergyGain(fpga.Run(hdTrain), fpga.Run(dnnTrainFPGA))
		row.InferSpeedCPU = hwsim.Speedup(cpu.Run(hdInfer), cpu.Run(dnnInferCPU))
		row.InferEnergyCPU = hwsim.EnergyGain(cpu.Run(hdInfer), cpu.Run(dnnInferCPU))
		row.InferSpeedFPGA = hwsim.Speedup(fpga.Run(hdInfer), fpga.Run(dnnInferFPGA))
		row.InferEnergyFPGA = hwsim.EnergyGain(fpga.Run(hdInfer), fpga.Run(dnnInferFPGA))
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7 prints the modelled speedup/energy comparison (paper Figure 7).
func Fig7(w io.Writer, o Options) error {
	rows, err := Fig7Data(o)
	if err != nil {
		return err
	}
	section(w, "Figure 7: HDFace vs DNN efficiency (modelled A53 CPU & Kintex-7 FPGA)")
	fmt.Fprintf(w, "%-8s | %-23s | %-23s\n", "", "training (speed/energy)", "inference (speed/energy)")
	fmt.Fprintf(w, "%-8s | %10s %12s | %10s %12s\n", "dataset", "CPU", "FPGA", "CPU", "FPGA")
	var mean Fig7Row
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s | %4.1fx/%4.1fx %5.1fx/%5.1fx | %4.1fx/%4.1fx %5.1fx/%5.1fx\n",
			r.Dataset,
			r.TrainSpeedCPU, r.TrainEnergyCPU, r.TrainSpeedFPGA, r.TrainEnergyFPGA,
			r.InferSpeedCPU, r.InferEnergyCPU, r.InferSpeedFPGA, r.InferEnergyFPGA)
		mean.TrainSpeedCPU += r.TrainSpeedCPU
		mean.TrainEnergyCPU += r.TrainEnergyCPU
		mean.TrainSpeedFPGA += r.TrainSpeedFPGA
		mean.TrainEnergyFPGA += r.TrainEnergyFPGA
		mean.InferSpeedCPU += r.InferSpeedCPU
		mean.InferEnergyCPU += r.InferEnergyCPU
		mean.InferSpeedFPGA += r.InferSpeedFPGA
		mean.InferEnergyFPGA += r.InferEnergyFPGA
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-8s | %4.1fx/%4.1fx %5.1fx/%5.1fx | %4.1fx/%4.1fx %5.1fx/%5.1fx\n",
		"mean",
		mean.TrainSpeedCPU/n, mean.TrainEnergyCPU/n, mean.TrainSpeedFPGA/n, mean.TrainEnergyFPGA/n,
		mean.InferSpeedCPU/n, mean.InferEnergyCPU/n, mean.InferSpeedFPGA/n, mean.InferEnergyFPGA/n)
	fmt.Fprintf(w, "paper:    | 6.1x/3.0x   4.6x/12.1x  | 1.4x/1.7x   2.9x/2.6x\n")
	fmt.Fprintf(w, "\nper-epoch training on the A53 (paper: HDFace 0.9 s vs DNN 5.4 s):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s HDFace %.3f s vs DNN %.3f s (%.1fx)\n",
			r.Dataset, r.EpochHDSec, r.EpochDNNSec, r.EpochDNNSec/r.EpochHDSec)
	}
	fmt.Fprintf(w, "total-training ratios above exceed the paper's because the synthetic\n")
	fmt.Fprintf(w, "datasets converge in very few adaptive passes; see EXPERIMENTS.md\n")

	// Pipeline view: per-phase bottlenecks of one HDFace query on the
	// spatial FPGA datapath (the cycle-level companion to the flat model).
	o = o.withDefaults()
	ld := loadAll(o)[0]
	p := hdface.New(hdface.Config{D: o.D, Mode: hdface.ModeStochHOG,
		WorkingSize: o.WorkingSize, Workers: 1, Seed: o.Seed, Stride: 3})
	if err := p.Fit(ld.trainImgs[:8], ld.trainLabels[:8], ld.k); err != nil {
		return err
	}
	p.ResetWork()
	p.Predict(ld.testImgs[0])
	work := p.Work()
	featTrace := hwsim.FromStoch(work.Stoch)
	fpgaSim := hwsim.NewFPGASim(hwsim.Kintex7())
	rep := fpgaSim.Run([]hwsim.Phase{
		{Name: "feature", Trace: featTrace},
		{Name: "search", Trace: hwsim.HDCTrainTrace(int64(ld.k), 0, o.D)},
	})
	fmt.Fprintf(w, "\nFPGA pipeline view of one query (EMOTION, stride-3 geometry):\n%s", rep.String())
	return nil
}
