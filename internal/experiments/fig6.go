package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// Fig6Result summarises one dimensionality's sliding-window detection run.
type Fig6Result struct {
	D                         int
	Windows                   int
	TruePos, FalsePos, Misses int
	Map                       []string // ASCII detection map, one row per window row
}

// Fig6Data trains a face/no-face detector per dimensionality and slides it
// over a composite scene with known face positions.
func Fig6Data(o Options) (*dataset.Scene, []Fig6Result, error) {
	o = o.withDefaults()
	dims := []int{1024, 2048, 4096, 10240}
	if o.Quick {
		dims = []int{1024, 4096}
	}
	const win = 48
	stride := win / 2
	scene := dataset.GenerateScene(4*win, 3*win, win, 2, o.Seed^0x5ce)

	// A binary training set at the window size. Positives include
	// translation jitter up to half the window stride so the detector
	// fires on the partially offset windows the sliding sweep produces.
	r := hv.NewRNG(o.Seed ^ 0xface)
	var trainImgs []*imgproc.Image
	var trainLabels []int
	n := o.FaceTrain
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			face := dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r)
			canvas := dataset.RenderNonFace(2*win, 2*win, r)
			dx := win/2 + r.Intn(stride+1) - stride/2
			dy := win/2 + r.Intn(stride+1) - stride/2
			canvas.Blend(face, dx, dy, 1)
			trainImgs = append(trainImgs, canvas.Crop(win/2, win/2, win, win))
			trainLabels = append(trainLabels, 1)
		} else {
			trainImgs = append(trainImgs, dataset.RenderNonFace(win, win, r))
			trainLabels = append(trainLabels, 0)
		}
	}

	var results []Fig6Result
	for _, d := range dims {
		p := pipeline(o, hdface.ModeStochHOG, d)
		if err := p.Fit(trainImgs, trainLabels, 2); err != nil {
			return nil, nil, fmt.Errorf("fig6 D=%d: %w", d, err)
		}
		res := Fig6Result{D: d}
		detected := make([][4]int, 0)
		var rows []string
		for y := 0; y+win <= scene.Image.H; y += stride {
			row := []byte{}
			for x := 0; x+win <= scene.Image.W; x += stride {
				res.Windows++
				window := scene.Image.Crop(x, y, win, win)
				isFace := p.Predict(window) == 1
				truth := scene.InBox(x, y, x+win, y+win)
				switch {
				case isFace && truth:
					res.TruePos++
					row = append(row, '#')
				case isFace && !truth:
					res.FalsePos++
					row = append(row, 'x')
				case !isFace && truth:
					res.Misses++
					row = append(row, 'o')
				default:
					row = append(row, '.')
				}
				if isFace {
					detected = append(detected, [4]int{x, y, x + win, y + win})
				}
			}
			rows = append(rows, string(row))
		}
		res.Map = rows
		results = append(results, res)

		if o.OutDir != "" {
			overlay := scene.Image.Clone()
			for _, b := range detected {
				overlay.StrokeRect(b[0], b[1], b[2], b[3], 255)
				overlay.StrokeRect(b[0]+1, b[1]+1, b[2]-1, b[3]-1, 0)
			}
			path := filepath.Join(o.OutDir, fmt.Sprintf("fig6_detect_d%d.pgm", d))
			if err := overlay.SavePGM(path); err != nil {
				return nil, nil, err
			}
		}
	}
	if o.OutDir != "" {
		if err := scene.Image.SavePGM(filepath.Join(o.OutDir, "fig6_scene.pgm")); err != nil {
			return nil, nil, err
		}
	}
	return scene, results, nil
}

// Fig6 prints detection maps per dimensionality ('#' hit, 'x' false alarm,
// 'o' miss, '.' correct reject) and writes PGM overlays when OutDir is set.
func Fig6(w io.Writer, o Options) error {
	scene, results, err := Fig6Data(o)
	if err != nil {
		return err
	}
	section(w, "Figure 6: sliding-window face detection vs dimensionality")
	fmt.Fprintf(w, "scene %dx%d with %d faces; windows are 48x48, stride 24\n",
		scene.Image.W, scene.Image.H, len(scene.Faces))
	for _, res := range results {
		fmt.Fprintf(w, "\nD=%d: %d windows, %d hits, %d false alarms, %d misses\n",
			res.D, res.Windows, res.TruePos, res.FalsePos, res.Misses)
		for _, row := range res.Map {
			fmt.Fprintf(w, "  %s\n", row)
		}
	}
	fmt.Fprintf(w, "\npaper: mispredictions at D=1k disappear for D>=4k\n")
	return nil
}
