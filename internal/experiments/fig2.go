package experiments

import (
	"fmt"
	"io"
	"math"

	"hdface/internal/hv"
	"hdface/internal/stoch"
)

// Fig2Point is one (dimensionality, operation) error measurement.
type Fig2Point struct {
	D                   int
	Construct, Avg, Mul float64 // mean absolute error
}

// Fig2Data computes the Figure 2 sweep: mean absolute error of the
// stochastic construction, weighted average and multiplication as a
// function of hypervector dimensionality.
func Fig2Data(o Options) []Fig2Point {
	o = o.withDefaults()
	dims := []int{512, 1024, 2048, 4096, 8192, 10240}
	if o.Quick {
		dims = []int{512, 2048, 8192}
	}
	r := hv.NewRNG(o.Seed ^ 0xf19)
	var out []Fig2Point
	for _, d := range dims {
		c := stoch.NewCodec(d, o.Seed^uint64(d))
		var pt Fig2Point
		pt.D = d
		for t := 0; t < o.Trials; t++ {
			a := r.Float64()*2 - 1
			b := r.Float64()*2 - 1
			p := r.Float64()
			pt.Construct += math.Abs(c.Decode(c.Construct(a)) - a)
			va, vb := c.Construct(a), c.Construct(b)
			pt.Avg += math.Abs(c.Decode(c.WeightedAvg(p, va, vb)) - (p*a + (1-p)*b))
			pt.Mul += math.Abs(c.Decode(c.Mul(va, vb)) - a*b)
		}
		n := float64(o.Trials)
		pt.Construct /= n
		pt.Avg /= n
		pt.Mul /= n
		out = append(out, pt)
	}
	return out
}

// Fig2 prints the error table and checks the paper's qualitative claim:
// error shrinks with dimensionality roughly as 1/sqrt(D).
func Fig2(w io.Writer, o Options) error {
	pts := Fig2Data(o)
	section(w, "Figure 2: stochastic arithmetic error vs dimensionality")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "D", "construct", "average", "multiply", "1/sqrt(D)")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %12.4f %12.4f %12.4f %12.4f\n",
			p.D, p.Construct, p.Avg, p.Mul, 1/math.Sqrt(float64(p.D)))
	}
	first, last := pts[0], pts[len(pts)-1]
	fmt.Fprintf(w, "error ratio D=%d vs D=%d: construct %.2fx, avg %.2fx, mul %.2fx (sqrt ratio %.2fx)\n",
		first.D, last.D,
		first.Construct/last.Construct, first.Avg/last.Avg, first.Mul/last.Mul,
		math.Sqrt(float64(last.D)/float64(first.D)))
	return nil
}
