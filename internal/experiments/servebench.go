package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/serve"
)

// ServeBenchConfig is one measured serving configuration in BENCH_serve.json.
type ServeBenchConfig struct {
	Endpoint  string  `json:"endpoint"`
	MaxBatch  int     `json:"max_batch"`
	Workers   int     `json:"workers"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Rejected  int     `json:"rejected"`
	WallMS    float64 `json:"wall_ms"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50LatMS  float64 `json:"p50_latency_ms"`
	P90LatMS  float64 `json:"p90_latency_ms"`
	P99LatMS  float64 `json:"p99_latency_ms"`
	MaxLatMS  float64 `json:"max_latency_ms"`
}

// ServeBenchReport is the BENCH_serve.json schema.
type ServeBenchReport struct {
	Schema  string             `json:"schema"`
	D       int                `json:"d"`
	Image   string             `json:"image"`
	NumCPU  int                `json:"num_cpu"`
	Configs []ServeBenchConfig `json:"configs"`
}

// ServeBench load-tests the model serving daemon end to end — HTTP in, PGM
// decode, admission queue, micro-batched extraction, scoring, JSON out —
// across batch sizes and worker counts, and writes BENCH_serve.json with
// throughput and latency percentiles. The point of the sweep: batching
// amortises dispatch overhead across the pipeline's worker pool, so
// req/sec should rise with MaxBatch until extraction saturates the CPUs.
func ServeBench(w io.Writer, o Options) error {
	o = o.withDefaults()
	section(w, "serving daemon load benchmark")

	d, requests, clients := 2048, 192, 8
	if o.Quick {
		d, requests, clients = 1024, 48, 4
	}
	win := 48

	// Train one binary face/non-face pipeline and snapshot-round-trip it,
	// so the bench exercises exactly what a daemon would load from disk.
	r := hv.NewRNG(o.Seed ^ 0x5e2e)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(win, win, r))
			labels = append(labels, 0)
		}
	}
	trained := hdface.New(hdface.Config{D: d, Seed: o.Seed, Workers: 1, WorkingSize: win, Stride: 3})
	if err := trained.Fit(imgs, labels, 2); err != nil {
		return fmt.Errorf("servebench: %w", err)
	}
	var snap bytes.Buffer
	if err := trained.SaveSnapshot(&snap); err != nil {
		return fmt.Errorf("servebench: %w", err)
	}
	snapBytes := snap.Bytes()

	var probe bytes.Buffer
	if err := imgs[0].WritePGM(&probe); err != nil {
		return fmt.Errorf("servebench: %w", err)
	}
	probeBytes := probe.Bytes()
	var sceneBuf bytes.Buffer
	if err := dataset.GenerateScene(96, 96, win, 1, o.Seed^0x5c).Image.WritePGM(&sceneBuf); err != nil {
		return fmt.Errorf("servebench: %w", err)
	}
	sceneBytes := sceneBuf.Bytes()

	report := ServeBenchReport{
		Schema: "hdface-bench-serve/v1",
		D:      d,
		Image:  fmt.Sprintf("%dx%d synthetic", win, win),
		NumCPU: runtime.NumCPU(),
	}

	// run fires `requests` posts from `clients` goroutines at a fresh
	// daemon and records latency percentiles.
	run := func(endpoint string, body []byte, maxBatch, workers int) error {
		p, err := hdface.LoadSnapshot(bytes.NewReader(snapBytes))
		if err != nil {
			return fmt.Errorf("servebench: %w", err)
		}
		p.SetWorkers(workers)
		s, err := serve.New(serve.Config{Pipeline: p, MaxBatch: maxBatch, MaxQueue: 256})
		if err != nil {
			return fmt.Errorf("servebench: %w", err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() { ts.Close(); s.Close() }()

		lats := make([]time.Duration, requests)
		codes := make([]int, requests)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < requests; i += clients {
					t0 := time.Now()
					resp, err := http.Post(ts.URL+endpoint, "image/x-portable-graymap", bytes.NewReader(body))
					if err != nil {
						codes[i] = -1
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					lats[i] = time.Since(t0)
					codes[i] = resp.StatusCode
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)

		var ok []time.Duration
		rejected := 0
		for i, code := range codes {
			switch code {
			case http.StatusOK:
				ok = append(ok, lats[i])
			case http.StatusServiceUnavailable:
				rejected++
			default:
				return fmt.Errorf("servebench %s: request %d got status %d", endpoint, i, code)
			}
		}
		if len(ok) == 0 {
			return fmt.Errorf("servebench %s: every request was shed", endpoint)
		}
		sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
		pct := func(q float64) float64 {
			i := int(q * float64(len(ok)-1))
			return float64(ok[i].Nanoseconds()) / 1e6
		}
		c := ServeBenchConfig{
			Endpoint:  endpoint,
			MaxBatch:  maxBatch,
			Workers:   workers,
			Clients:   clients,
			Requests:  requests,
			Rejected:  rejected,
			WallMS:    float64(wall.Nanoseconds()) / 1e6,
			ReqPerSec: float64(len(ok)) / wall.Seconds(),
			P50LatMS:  pct(0.50),
			P90LatMS:  pct(0.90),
			P99LatMS:  pct(0.99),
			MaxLatMS:  float64(ok[len(ok)-1].Nanoseconds()) / 1e6,
		}
		report.Configs = append(report.Configs, c)
		fmt.Fprintf(w, "%-9s batch=%d workers=%d  %6.1f req/s  p50=%.1fms p90=%.1fms p99=%.1fms rejected=%d\n",
			endpoint, maxBatch, workers, c.ReqPerSec, c.P50LatMS, c.P90LatMS, c.P99LatMS, rejected)
		return nil
	}

	batches := []int{1, 4, 8}
	workerSet := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		workerSet = workerSet[:1]
	}
	if o.Quick {
		batches = []int{1, 4}
	}
	for _, workers := range workerSet {
		for _, b := range batches {
			if err := run("/predict", probeBytes, b, workers); err != nil {
				return err
			}
		}
	}
	// One detect configuration: sweeps don't batch, so only workers matter.
	if err := run("/detect", sceneBytes, 1, workerSet[len(workerSet)-1]); err != nil {
		return err
	}

	dir := o.OutDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_serve.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
