package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/serve"
	"hdface/internal/track"
)

// StreamBenchScenario is one measured scenario in BENCH_stream.json.
type StreamBenchScenario struct {
	Name     string  `json:"name"`
	Frames   int     `json:"frames"`
	Subjects int     `json:"subjects"`
	Tracks   int     `json:"tracks"`
	FPS      float64 `json:"frames_per_sec"`
	P50MS    float64 `json:"p50_frame_ms"`
	P99MS    float64 `json:"p99_frame_ms"`
	Degraded int     `json:"degraded"`
	Errors   int     `json:"errors"`
	IDTP     int     `json:"idtp"`
	IDFP     int     `json:"idfp"`
	IDFN     int     `json:"idfn"`
	IDF1     float64 `json:"idf1"`
	// MaxGapSurvived is the longest occlusion (in frames) any track coasted
	// through without losing its identity.
	MaxGapSurvived int `json:"max_gap_survived"`
}

// StreamBenchReport is the BENCH_stream.json (hdface-bench-stream/v1) schema.
type StreamBenchReport struct {
	Schema string `json:"schema"`
	D      int    `json:"d"`
	Canvas string `json:"canvas"`
	NumCPU int    `json:"num_cpu"`
	// Deterministic is the replay gate: two identical clean streams must
	// produce identical track ID assignments, box for box.
	Deterministic bool                  `json:"deterministic"`
	Scenarios     []StreamBenchScenario `json:"scenarios"`
}

// StreamBench benchmarks the streaming tracking service end to end: synthetic
// video scenarios (clean lanes, entry/exit churn, occlusion crossings, camera
// jitter) stream through POST /stream, and the NDJSON events are scored for
// throughput, per-frame latency and track identity F1 against the scenario's
// ground truth. The clean scenario doubles as the determinism gate: it is
// streamed twice and the ID assignments must match exactly.
func StreamBench(w io.Writer, o Options) error {
	o = o.withDefaults()
	section(w, "streaming tracking benchmark")

	d, frames, trainN := 2048, 40, 160
	if o.Quick {
		frames = 16
	}
	const (
		win    = 48
		canvas = "192x144"
		cw, ch = 192, 144
	)
	sweep := detect.Params{Scales: []float64{1}, Stride: 4, NMSIoU: 0.05, Workers: runtime.NumCPU()}

	// Train the binary face detector the stream's sweep scores with.
	// Positives carry translation jitter over clutter (the fig6 recipe) so
	// the detector fires on the partially offset windows a fine-stride sweep
	// produces; negatives are random window-sized crops of full scenario
	// canvases — the sweep's actual negative distribution, not freshly
	// centred clutter tiles.
	r := hv.NewRNG(o.Seed ^ 0x57be)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < trainN; i++ {
		if i%2 == 0 {
			face := dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r)
			canvasImg := dataset.RenderNonFace(2*win, 2*win, r)
			dx := win/2 + r.Intn(9) - 4
			dy := win/2 + r.Intn(9) - 4
			canvasImg.Blend(face, dx, dy, 1)
			imgs = append(imgs, canvasImg.Crop(win/2, win/2, win, win))
			labels = append(labels, 1)
		} else {
			bg := dataset.RenderNonFace(cw, ch, r)
			imgs = append(imgs, bg.Crop(r.Intn(cw-win), r.Intn(ch-win), win, win))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: d, Seed: o.Seed, Workers: runtime.NumCPU(), WorkingSize: win, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		return fmt.Errorf("streambench: %w", err)
	}

	// One round of hard-negative mining: sweep face-free canvases with the
	// fitted scorer and refit with every surviving window as a negative.
	// This is what separates "looks vaguely face-like to a fresh model"
	// clutter from the real thing.
	scorer, err := p.DetectScorer(nil, win)
	if err != nil {
		return fmt.Errorf("streambench: %w", err)
	}
	for i := 0; i < 6; i++ {
		bg := dataset.RenderNonFace(cw, ch, r)
		boxes, _, err := detect.Sweep(context.Background(), bg, scorer, sweep)
		if err != nil {
			return fmt.Errorf("streambench: mining: %w", err)
		}
		for _, b := range boxes {
			imgs = append(imgs, bg.Crop(b.X0, b.Y0, b.X1-b.X0, b.Y1-b.Y0))
			labels = append(labels, 0)
		}
	}
	if err := p.Fit(imgs, labels, 2); err != nil {
		return fmt.Errorf("streambench: refit: %w", err)
	}

	// Calibrate the detection threshold on held-out clips: the F1-optimal
	// score cut is model-specific (Hamming margins move with every reseed),
	// so a hard-coded constant would be wrong for most seeds.
	minScore, err := calibrateMinScore(p, win, sweep, o.Seed)
	if err != nil {
		return fmt.Errorf("streambench: calibrate: %w", err)
	}
	fmt.Fprintf(w, "calibrated min track score: %.4f\n", minScore)

	// And a 7-class emotion model in the same feature space, so the bench
	// exercises the per-track temporal bundling path too.
	var emoFeats []*hv.Vector
	var emoLabels []int
	for e := 0; e < int(dataset.NumEmotions); e++ {
		for i := 0; i < 4; i++ {
			emoFeats = append(emoFeats, p.Feature(dataset.RenderFace(win, win, dataset.Emotion(e), r)))
			emoLabels = append(emoLabels, e)
		}
	}
	emotion, err := hdc.Train(emoFeats, emoLabels, int(dataset.NumEmotions), hdc.TrainOpts{Epochs: 5, Seed: o.Seed})
	if err != nil {
		return fmt.Errorf("streambench: emotion model: %w", err)
	}

	s, err := serve.New(serve.Config{
		Pipeline:      p,
		DetectParams:  sweep,
		MinTrackScore: minScore,
		// Generous: a degraded frame keeps best-so-far boxes, which would
		// make the determinism gate timing-dependent on a loaded machine.
		FrameDeadline: 20 * time.Second,
		Emotion:       emotion,
	})
	if err != nil {
		return fmt.Errorf("streambench: %w", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	report := StreamBenchReport{
		Schema: "hdface-bench-stream/v1",
		D:      d,
		Canvas: canvas,
		NumCPU: runtime.NumCPU(),
	}

	scenarios := []struct {
		name string
		spec dataset.ScenarioSpec
	}{
		{"clean", dataset.ScenarioSpec{W: cw, H: ch, Frames: frames, Subjects: 2, Seed: o.Seed ^ 0xc1ea, PlainBG: true}},
		{"entryexit", dataset.ScenarioSpec{W: cw, H: ch, Frames: frames, Subjects: 2, Seed: o.Seed ^ 0xee, EntryExit: true}},
		{"crossing", dataset.ScenarioSpec{W: cw, H: ch, Frames: frames, Subjects: 2, Seed: o.Seed ^ 0xc0, Crossing: true}},
		{"jitter", dataset.ScenarioSpec{W: cw, H: ch, Frames: frames, Subjects: 2, Seed: o.Seed ^ 0x71, Jitter: 3}},
	}
	var cleanKeys []string
	for _, sc := range scenarios {
		clip := dataset.GenerateScenario(sc.spec)
		runs := 1
		if sc.name == "clean" {
			runs = 2 // determinism gate: replay and compare
		}
		for rep := 0; rep < runs; rep++ {
			events, err := postFrameStream(ts.URL+"/stream", clip)
			if err != nil {
				return fmt.Errorf("streambench %s: %w", sc.name, err)
			}
			if sc.name == "clean" {
				cleanKeys = append(cleanKeys, trackAssignmentKey(events))
			}
			if rep > 0 {
				continue // replays only feed the determinism comparison
			}
			bench, err := scoreStream(sc.name, clip, events)
			if err != nil {
				return fmt.Errorf("streambench %s: %w", sc.name, err)
			}
			bench.Subjects = sc.spec.Subjects
			report.Scenarios = append(report.Scenarios, bench)
			fmt.Fprintf(w, "%-10s %2d frames  %6.1f fps  p99=%6.1fms  idf1=%.3f (idtp=%d idfp=%d idfn=%d)  tracks=%d gap=%d\n",
				sc.name, bench.Frames, bench.FPS, bench.P99MS, bench.IDF1,
				bench.IDTP, bench.IDFP, bench.IDFN, bench.Tracks, bench.MaxGapSurvived)
		}
	}
	report.Deterministic = len(cleanKeys) == 2 && cleanKeys[0] == cleanKeys[1] && cleanKeys[0] != ""
	if !report.Deterministic {
		return fmt.Errorf("streambench: identical clean streams produced different track assignments")
	}
	fmt.Fprintf(w, "determinism: identical replays assign identical track IDs\n")

	dir := o.OutDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_stream.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}

// calibrateMinScore picks the sweep-score threshold that maximises
// detection F1 on held-out plain-background clips rendered with seeds the
// evaluation scenarios never use. Window scores are Hamming margins, so
// their scale shifts with every retrained model; calibrating per model is
// the only threshold choice that survives a reseed.
func calibrateMinScore(p *hdface.Pipeline, win int, sweep detect.Params, seed uint64) (float64, error) {
	scorer, err := p.DetectScorer(nil, win)
	if err != nil {
		return 0, err
	}
	var trueScores, falseScores []float64
	for i := uint64(0); i < 3; i++ {
		clip := dataset.GenerateScenario(dataset.ScenarioSpec{
			W: 192, H: 144, Frames: 6, Subjects: 2,
			Seed: seed ^ 0xca11b ^ i<<8, PlainBG: true,
		})
		for _, fr := range clip {
			boxes, _, err := detect.Sweep(context.Background(), fr.Image, scorer, sweep)
			if err != nil {
				return 0, err
			}
			for _, b := range boxes {
				bb := [4]int{b.X0, b.Y0, b.X1, b.Y1}
				matched := false
				for _, t := range fr.Boxes {
					if boxIoU(bb, t) >= 0.5 {
						matched = true
						break
					}
				}
				if matched {
					trueScores = append(trueScores, b.Score)
				} else {
					falseScores = append(falseScores, b.Score)
				}
			}
		}
	}
	if len(trueScores) == 0 {
		return 0, fmt.Errorf("calibration clips produced no true detections")
	}
	best, bestF1 := 0.0, -1.0
	cands := append(append([]float64{0}, trueScores...), falseScores...)
	sort.Float64s(cands)
	for _, th := range cands {
		tp, fp := 0, 0
		for _, v := range trueScores {
			if v >= th {
				tp++
			}
		}
		for _, v := range falseScores {
			if v >= th {
				fp++
			}
		}
		fn := len(trueScores) - tp
		if tp == 0 {
			continue
		}
		if f1 := 2 * float64(tp) / float64(2*tp+fp+fn); f1 > bestF1 {
			bestF1, best = f1, th
		}
	}
	return best, nil
}

func boxIoU(a, b [4]int) float64 {
	ix0, iy0 := max(a[0], b[0]), max(a[1], b[1])
	ix1, iy1 := min(a[2], b[2]), min(a[3], b[3])
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	areaA := float64((a[2] - a[0]) * (a[3] - a[1]))
	areaB := float64((b[2] - b[0]) * (b[3] - b[1]))
	return inter / (areaA + areaB - inter)
}

// postFrameStream streams a clip through POST /stream and decodes the events.
func postFrameStream(url string, clip []dataset.SequenceFrame) ([]serve.StreamEvent, error) {
	var body bytes.Buffer
	for _, fr := range clip {
		var pgm bytes.Buffer
		if err := fr.Image.WritePGM(&pgm); err != nil {
			return nil, err
		}
		if err := serve.WriteFrame(&body, pgm.Bytes()); err != nil {
			return nil, err
		}
	}
	if err := serve.CloseFrames(&body); err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/octet-stream", &body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var events []serve.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev serve.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, sc.Err()
}

// trackAssignmentKey serialises the identity-relevant parts of a stream's
// events — frame, track ID, box — omitting latencies and trace IDs, which
// legitimately differ between replays.
func trackAssignmentKey(events []serve.StreamEvent) string {
	var b bytes.Buffer
	for _, ev := range events {
		if ev.Type != "frame" {
			continue
		}
		fmt.Fprintf(&b, "%d:", ev.Frame)
		for _, tr := range ev.Tracks {
			fmt.Fprintf(&b, "%d@%v;", tr.ID, tr.Box)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// scoreStream turns a scenario's events into benchmark numbers: throughput
// and latency from the summary, identity F1 from the per-frame events
// against the clip's ground truth.
func scoreStream(name string, clip []dataset.SequenceFrame, events []serve.StreamEvent) (StreamBenchScenario, error) {
	out := StreamBenchScenario{Name: name}
	if len(events) == 0 {
		return out, fmt.Errorf("no events")
	}
	sum := events[len(events)-1].Summary
	if sum == nil {
		return out, fmt.Errorf("missing summary event")
	}
	out.Frames = sum.Frames
	out.FPS = sum.FPS
	out.P50MS = sum.P50MS
	out.P99MS = sum.P99MS
	out.Degraded = sum.Degraded
	out.Errors = sum.Errors
	out.Tracks = len(sum.Tracks)
	for _, tr := range sum.Tracks {
		if tr.MaxGap > out.MaxGapSurvived {
			out.MaxGapSurvived = tr.MaxGap
		}
	}
	var obs []track.Obs
	for _, ev := range events {
		if ev.Type != "frame" {
			continue
		}
		for _, tr := range ev.Tracks {
			obs = append(obs, track.Obs{ID: tr.ID, Frame: ev.Frame, Box: tr.Box})
		}
	}
	truth := make(track.GroundTruth, len(clip))
	for f, fr := range clip {
		truth[f] = fr.Boxes
	}
	rep := track.IDF1(obs, truth, 0.5)
	out.IDTP, out.IDFP, out.IDFN = rep.IDTP, rep.IDFP, rep.IDFN
	out.IDF1 = rep.F1()
	return out, nil
}
