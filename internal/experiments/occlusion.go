package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/nn"
)

// OcclusionPoint is one occlusion-level sample.
type OcclusionPoint struct {
	Frac    float64 // occluded fraction of the image
	HD, DNN float64 // test accuracy
}

// OcclusionData probes the paper's "robust against corrupted data" claim
// with structured corruption rather than bit noise: test faces get an
// opaque rectangle over a growing fraction of the image, and the
// holographic pipeline is compared with the DNN trained on the same clean
// data.
func OcclusionData(o Options) ([]OcclusionPoint, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0] // EMOTION
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if o.Quick {
		fracs = []float64{0, 0.1, 0.3}
	}

	p := pipeline(o, hdface.ModeStochHOG, o.D)
	if err := p.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
		return nil, err
	}
	trainX := hogFeatures(ld.trainImgs, o.WorkingSize)
	mlp, err := nn.New(dnnConfigFor(len(trainX[0]), ld.k, 256, o.DNNEpochs, o.Seed))
	if err != nil {
		return nil, err
	}
	if _, err := mlp.Train(trainX, ld.trainLabels); err != nil {
		return nil, err
	}

	var out []OcclusionPoint
	for _, frac := range fracs {
		r := hv.NewRNG(o.Seed ^ uint64(frac*1000) ^ 0x0cc)
		occluded := make([]*imgproc.Image, len(ld.testImgs))
		for i, img := range ld.testImgs {
			occluded[i] = dataset.Occlude(img, frac, r)
		}
		pt := OcclusionPoint{Frac: frac}
		pt.HD = p.Evaluate(occluded, ld.testLabels)
		testX := hogFeatures(occluded, o.WorkingSize)
		pt.DNN = mlp.Accuracy(testX, ld.testLabels)
		out = append(out, pt)
	}
	return out, nil
}

// Occlusion prints the structured-corruption robustness curve.
func Occlusion(w io.Writer, o Options) error {
	pts, err := OcclusionData(o)
	if err != nil {
		return err
	}
	section(w, "Occlusion robustness: accuracy vs occluded fraction (EMOTION)")
	fmt.Fprintf(w, "%10s %10s %10s\n", "occluded", "HDFace", "DNN")
	for _, p := range pts {
		fmt.Fprintf(w, "%9.0f%% %10.3f %10.3f\n", p.Frac*100, p.HD, p.DNN)
	}
	fmt.Fprintf(w, "paper (intro): HDFace is robust against noise and corrupted data\n")
	return nil
}
