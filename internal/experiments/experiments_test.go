package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyOpts keeps the smoke tests fast on one core.
func tinyOpts() Options {
	return Options{
		Seed:      3,
		Quick:     true,
		EmoTrain:  28,
		EmoTest:   14,
		FaceTrain: 12,
		FaceTest:  6,
		Trials:    20,
		D:         1024,
		Dims:      []int{512, 1024},
		ErrRates:  []float64{0, 0.04},
		DNNEpochs: 4,
		DNNHidden: []int{32},
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.EmoTrain != 140 || o.D != 4096 || len(o.Dims) == 0 || len(o.ErrRates) != 7 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.EmoTrain >= o.EmoTrain || q.D >= o.D {
		t.Fatal("quick mode not smaller")
	}
}

func TestLoadAllShapes(t *testing.T) {
	o := tinyOpts().withDefaults()
	ds := loadAll(o)
	if len(ds) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(ds))
	}
	if ds[0].k != 7 || ds[1].k != 2 || ds[2].k != 2 {
		t.Fatal("class counts wrong")
	}
	if len(ds[0].trainImgs) != o.EmoTrain || len(ds[1].trainImgs) != o.FaceTrain {
		t.Fatal("split sizes wrong")
	}
	for _, d := range ds {
		if len(d.trainImgs) != len(d.trainLabels) {
			t.Fatal("labels misaligned")
		}
	}
}

func TestRunnerRegistry(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("expected 22 experiments, got %d", len(all))
	}
	if _, ok := Get("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := Get("nonsense"); ok {
		t.Fatal("bogus experiment found")
	}
	for _, r := range all {
		if r.Name == "" || r.Desc == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
	}
}

func TestFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "construct") {
		t.Fatalf("unexpected output: %s", out)
	}
	// The error must shrink with D.
	pts := Fig2Data(tinyOpts())
	if pts[len(pts)-1].Mul >= pts[0].Mul {
		t.Fatalf("multiplication error did not shrink: %+v", pts)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EMOTION", "FACE1", "FACE2", "36685", "522441"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in table 1 output", want)
		}
	}
}

func TestFig4(t *testing.T) {
	rows, err := Fig4Data(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		for name, acc := range map[string]float64{
			"hdstoch": r.HDStoch, "hdorig": r.HDOrig, "dnn": r.DNN, "svm": r.SVM} {
			if acc < 0 || acc > 1 {
				t.Fatalf("%s/%s accuracy %v out of range", r.Dataset, name, acc)
			}
		}
		// Binary face detection at this scale should be well above chance
		// for the HDC pipelines.
		if r.Dataset != "EMOTION" && r.HDStoch < 0.55 {
			t.Fatalf("%s HDStoch accuracy %v near chance", r.Dataset, r.HDStoch)
		}
	}
	var buf bytes.Buffer
	if err := Fig4(&buf, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean") {
		t.Fatal("no mean row")
	}
}

func TestFig5a(t *testing.T) {
	pts, err := Fig5aData(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	// Modelled training time must grow with dimensionality.
	if pts[1].TrainSeconds <= pts[0].TrainSeconds {
		t.Fatalf("train time not increasing with D: %+v", pts)
	}
	var buf bytes.Buffer
	if err := Fig5a(&buf, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best accuracy at D=") {
		t.Fatal("missing summary line")
	}
}

func TestFig5b(t *testing.T) {
	o := tinyOpts()
	o.DNNHidden = []int{16, 64}
	pts, err := Fig5bData(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("want 2 points")
	}
	if pts[1].TrainSeconds <= pts[0].TrainSeconds {
		t.Fatalf("train time not increasing with hidden size: %+v", pts)
	}
	var buf bytes.Buffer
	if err := Fig5b(&buf, o); err != nil {
		t.Fatal(err)
	}
}

func TestFig6(t *testing.T) {
	dir := t.TempDir()
	o := tinyOpts()
	o.OutDir = dir
	scene, results, err := Fig6Data(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(scene.Faces) == 0 {
		t.Fatal("scene has no faces")
	}
	if len(results) != 2 {
		t.Fatalf("want 2 dimensionalities, got %d", len(results))
	}
	for _, r := range results {
		if r.Windows == 0 || len(r.Map) == 0 {
			t.Fatalf("empty result for D=%d", r.D)
		}
		if r.TruePos+r.FalsePos+r.Misses > r.Windows {
			t.Fatal("counts exceed windows")
		}
	}
	// PGM artefacts written.
	if _, err := os.Stat(filepath.Join(dir, "fig6_scene.pgm")); err != nil {
		t.Fatal("scene PGM missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6_detect_d1024.pgm")); err != nil {
		t.Fatal("detection PGM missing")
	}
	var buf bytes.Buffer
	o.OutDir = ""
	if err := Fig6(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "windows") {
		t.Fatal("no window summary")
	}
}

func TestFig7(t *testing.T) {
	rows, err := Fig7Data(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// The structural claims: HDFace trains faster than DNN on both
		// platforms, and the FPGA energy advantage exceeds the CPU one.
		if r.TrainSpeedCPU <= 1 {
			t.Fatalf("%s: no CPU training speedup: %v", r.Dataset, r.TrainSpeedCPU)
		}
		if r.TrainSpeedFPGA <= 1 {
			t.Fatalf("%s: no FPGA training speedup: %v", r.Dataset, r.TrainSpeedFPGA)
		}
		if r.TrainEnergyFPGA <= r.TrainEnergyCPU {
			t.Fatalf("%s: FPGA energy gain %v not above CPU %v",
				r.Dataset, r.TrainEnergyFPGA, r.TrainEnergyCPU)
		}
	}
	var buf bytes.Buffer
	if err := Fig7(&buf, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "paper:") {
		t.Fatal("no paper reference row")
	}
}

func TestTable2(t *testing.T) {
	o := tinyOpts()
	rows, err := Table2Data(o)
	if err != nil {
		t.Fatal(err)
	}
	// 3 DNN rows + 2 stoch dims + 2 orig dims.
	if len(rows) != 7 {
		t.Fatalf("want 7 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Losses) != len(o.ErrRates) {
			t.Fatalf("%s: %d losses for %d rates", r.Name, len(r.Losses), len(o.ErrRates))
		}
	}
	var buf bytes.Buffer
	if err := Table2(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DNN 16-bit") {
		t.Fatal("missing DNN row")
	}
}

func TestMotivation(t *testing.T) {
	var buf bytes.Buffer
	if err := Motivation(&buf, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HOG share") || !strings.Contains(out, "quality loss") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestAblations(t *testing.T) {
	o := tinyOpts()
	o.D = 512
	var buf bytes.Buffer
	if err := Ablations(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"baseline", "stride 3", "bind-bundle", "L1 magnitude", "sqrt depth 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing variant %q in ablation output", want)
		}
	}
}

func TestFewShot(t *testing.T) {
	o := tinyOpts()
	var buf bytes.Buffer
	if err := FewShot(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HDC 1-pass") {
		t.Fatal("missing single-pass column")
	}
	pts, err := FewShotData(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("too few points: %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.HDFull < pts[0].HDFull-0.1 {
		t.Fatalf("more data made adaptive HDC much worse: %v -> %v", pts[0].HDFull, last.HDFull)
	}
}

func TestDimReduce(t *testing.T) {
	o := tinyOpts()
	pts, err := DimReduceData(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
	if pts[0].D != 4096 || pts[len(pts)-1].D != 512 {
		t.Fatalf("cut schedule wrong: %+v", pts)
	}
	// Moderate reduction must not collapse accuracy to chance.
	if pts[1].Accuracy < pts[0].Accuracy-0.25 {
		t.Fatalf("2x cut collapsed accuracy: %+v", pts[:2])
	}
	var buf bytes.Buffer
	if err := DimReduce(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "D kept") {
		t.Fatal("missing table header")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	o := tinyOpts()
	if err := WriteCSV(dir, o); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2.csv", "fig4.csv", "fig5a.csv", "fig5b.csv",
		"table2.csv", "fewshot.csv", "dimreduce.csv", "occlusion.csv", "dse.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Fatalf("%s: header only", f)
		}
	}
}

func TestOcclusion(t *testing.T) {
	o := tinyOpts()
	pts, err := OcclusionData(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	if pts[0].Frac != 0 {
		t.Fatal("first point must be clean")
	}
	var buf bytes.Buffer
	if err := Occlusion(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "occluded") {
		t.Fatal("missing header")
	}
}

func TestDSE(t *testing.T) {
	o := tinyOpts()
	pts, err := DSEData(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("want 7 design points, got %d", len(pts))
	}
	// Latency must fall monotonically with lanes; at least one point is
	// pareto-optimal; the frontier has both a fast and a frugal end.
	paretoCount := 0
	for i, p := range pts {
		if i > 0 && p.LatencyUs >= pts[i-1].LatencyUs {
			t.Fatalf("latency not decreasing at %d lanes", p.Lanes)
		}
		if p.Pareto {
			paretoCount++
		}
	}
	if paretoCount == 0 {
		t.Fatal("no pareto points")
	}
	var buf bytes.Buffer
	if err := DSE(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pareto") {
		t.Fatal("missing pareto column")
	}
}

func TestVerifyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction gate runs the quick-scale experiments (~2 min)")
	}
	var buf bytes.Buffer
	if err := Verify(&buf, tinyOpts()); err != nil {
		t.Fatalf("reproduction gate failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "structural claims hold") {
		t.Fatalf("unexpected gate output:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("gate printed failures:\n%s", out)
	}
}

func TestFaultSweep(t *testing.T) {
	report, err := FaultSweepData(Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if report.Schema != "hdface-bench-fault/v1" {
		t.Fatalf("schema %q", report.Schema)
	}
	if len(report.Dims) == 0 {
		t.Fatal("no dimensionality sections")
	}
	for _, dim := range report.Dims {
		if len(dim.Points) != len(report.BERs) {
			t.Fatalf("D=%d: %d points for %d BERs", dim.D, len(dim.Points), len(report.BERs))
		}
		if dim.AccClean < 0.8 {
			t.Fatalf("D=%d clean accuracy %v; substrate broken", dim.D, dim.AccClean)
		}
		for _, pt := range dim.Points {
			if pt.ModelFlips <= 0 || pt.GridBits <= 0 {
				t.Fatalf("D=%d BER=%v: no faults injected: %+v", dim.D, pt.BER, pt)
			}
			if pt.StuckBits >= pt.ModelFlips {
				t.Fatalf("D=%d BER=%v: StuckFrac 0.25 latched %d of %d faults",
					dim.D, pt.BER, pt.StuckBits, pt.ModelFlips)
			}
		}
		// The headline claims: extreme corruption hurts the bit-serial
		// accuracy, and self-repair recovers it (stuck-at cells bound the
		// recovery, hence the slack against clean).
		last := dim.Points[len(dim.Points)-1]
		if last.AccFaulty >= dim.AccClean {
			t.Fatalf("D=%d: BER %v did not degrade accuracy (%v vs clean %v)",
				dim.D, last.BER, last.AccFaulty, dim.AccClean)
		}
		if last.AccRepaired <= last.AccFaulty {
			t.Fatalf("D=%d: repair did not recover accuracy (%v vs faulty %v)",
				dim.D, last.AccRepaired, last.AccFaulty)
		}
	}
}

func TestOnlineBench(t *testing.T) {
	report, err := OnlineBenchData(Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if report.Schema != "hdface-bench-online/v1" {
		t.Fatalf("schema %q", report.Schema)
	}
	if len(report.Buckets) == 0 || report.Buckets[len(report.Buckets)-1].End != report.StreamLen {
		t.Fatalf("bucket coverage wrong: %+v", report.Buckets)
	}
	// The whole point of the subsystem: a dip at the drift injection,
	// promotion-driven recovery, and a frozen baseline that stays down.
	if report.DipAcc >= report.PreDriftAcc {
		t.Fatalf("no dip after drift: dip=%v pre=%v", report.DipAcc, report.PreDriftAcc)
	}
	if !report.Recovered {
		t.Fatalf("adaptive path did not recover: %+v", report)
	}
	if report.FrozenFinal >= report.RecoveredAcc {
		t.Fatalf("frozen baseline kept up: frozen=%v adaptive=%v", report.FrozenFinal, report.RecoveredAcc)
	}
	if report.Promotions == 0 {
		t.Fatal("recovery happened without any promotion; attribution is broken")
	}
	for _, b := range report.Buckets {
		if b.LiveVersion == 0 {
			t.Fatalf("bucket [%d,%d) has no live version", b.Start, b.End)
		}
	}
}
