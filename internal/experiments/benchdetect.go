package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/detect"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// DetectBenchConfig is one measured sweep configuration in BENCH_detect.json.
type DetectBenchConfig struct {
	Config          string  `json:"config"`
	Workers         int     `json:"workers"`
	Windows         int64   `json:"windows"`
	Boxes           int     `json:"boxes"`
	WallMS          float64 `json:"wall_ms"`
	NsPerWindow     float64 `json:"ns_per_window"`
	WindowsPerSec   float64 `json:"windows_per_sec"`
	AllocsPerWindow float64 `json:"allocs_per_window"`
	// Scope is what the timed region covers: "sweep" (the default when
	// empty) times a full detect.Sweep including pyramid build and level
	// preparation; "score" prepares every level untimed and measures the
	// pure window-scoring phase — the region the fused kernel optimises,
	// which full-sweep numbers bury under level-grid extraction cost.
	Scope string `json:"scope,omitempty"`
}

// DetectBenchReport is the BENCH_detect.json schema.
type DetectBenchReport struct {
	Schema  string              `json:"schema"`
	D       int                 `json:"d"`
	Scene   string              `json:"scene"`
	Win     int                 `json:"win"`
	Stride  int                 `json:"stride"`
	Scales  []float64           `json:"scales"`
	NumCPU  int                 `json:"num_cpu"`
	Configs []DetectBenchConfig `json:"configs"`
}

// DetectBench measures the detection sweep several ways — the legacy serial
// crop-and-re-extract path, the cell-grid engine (whole sweep, and its
// scoring phase in isolation), and the fused zero-alloc scoring kernel
// (scoring phase and whole sweep) — and writes BENCH_detect.json. It is
// the machine-readable counterpart of BenchmarkDetectSweep.
func DetectBench(w io.Writer, o Options) error {
	o = o.withDefaults()
	section(w, "detection sweep benchmark")

	size, d := 512, 2048
	if o.Quick {
		size, d = 256, 1024
	}
	win := 48
	params := detect.Params{Win: win, Stride: 24, Scales: []float64{1, 1.5, 2}, NMSIoU: 0.3}

	// One small binary face/non-face training set at the window size.
	r := hv.NewRNG(o.Seed ^ 0xbe7c)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(win, win, r))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: d, Seed: o.Seed, Workers: 1, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		return fmt.Errorf("detectbench: %w", err)
	}
	model := p.Model()
	scene := dataset.GenerateScene(size, size, win, 3, o.Seed^0x5ce2)

	report := DetectBenchReport{
		Schema: "hdface-bench-detect/v1",
		D:      d,
		Scene:  fmt.Sprintf("%dx%d synthetic, 3 faces", size, size),
		Win:    params.Win,
		Stride: params.Stride,
		Scales: params.Scales,
		NumCPU: runtime.NumCPU(),
	}

	measure := func(name string, workers int, sweep func() (int64, int, error)) error {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocs0 := ms.Mallocs
		start := time.Now()
		windows, boxes, err := sweep()
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("detectbench %s: %w", name, err)
		}
		runtime.ReadMemStats(&ms)
		c := DetectBenchConfig{
			Config:  name,
			Workers: workers,
			Windows: windows,
			Boxes:   boxes,
			WallMS:  float64(wall.Nanoseconds()) / 1e6,
		}
		if windows > 0 {
			c.NsPerWindow = float64(wall.Nanoseconds()) / float64(windows)
			c.WindowsPerSec = float64(windows) / wall.Seconds()
			c.AllocsPerWindow = float64(ms.Mallocs-allocs0) / float64(windows)
		}
		report.Configs = append(report.Configs, c)
		fmt.Fprintf(w, "%-14s workers=%d windows=%d boxes=%d wall=%.0fms ns/window=%.0f\n",
			name, workers, windows, boxes, c.WallMS, c.NsPerWindow)
		return nil
	}

	// Legacy path: crop every window and run the full pipeline extraction.
	if err := measure("serial", 1, func() (int64, int, error) {
		legacy := func(window *imgproc.Image) (bool, float64) {
			sc := model.Scores(p.Feature(window))
			return sc[1] > sc[0], sc[1] - sc[0]
		}
		boxes, stats, err := detect.Sweep(context.Background(), scene.Image, detect.Scorer(legacy), params)
		return stats.Windows, len(boxes), err
	}); err != nil {
		return err
	}
	// Cell-grid engine, one worker, then the worker pool.
	for _, workers := range []int{1, runtime.NumCPU()} {
		name := "cellgrid"
		if workers > 1 {
			name = fmt.Sprintf("cellgrid-w%d", workers)
		} else if len(report.Configs) > 1 {
			break // single-CPU host: the pool run would duplicate cellgrid
		}
		if err := measure(name, workers, func() (int64, int, error) {
			scorer, err := p.DetectScorer(nil, win)
			if err != nil {
				return 0, 0, err
			}
			pp := params
			pp.Workers = workers
			boxes, stats, err := detect.Sweep(context.Background(), scene.Image, scorer, pp)
			return stats.Windows, len(boxes), err
		}); err != nil {
			return err
		}
	}

	// Scoring-phase comparison: the two-pass cell-grid path and the fused
	// kernel, each over identically prepared levels so the timed region is
	// purely per-window work. ~99.8% of a cellgrid sweep's allocations and
	// ~93% of its wall are level-grid preparation, identical in both paths;
	// whole-sweep numbers would bury the per-window delta it targets.
	type preparedLevel struct {
		ls     detect.LevelScorer
		nx, ny int
	}
	prepare := func(fused bool) ([]preparedLevel, error) {
		scorer, err := p.DetectScorer(nil, win)
		if err != nil {
			return nil, err
		}
		scorer.Hamming = !fused // hold the scoring math fixed: fused is Hamming-mode
		scorer.Fused = fused
		var lvls []preparedLevel
		for li, s := range params.Scales {
			lw, lh := int(float64(size)/s), int(float64(size)/s)
			if lw < win || lh < win {
				continue
			}
			img := scene.Image
			if s != 1 {
				img = img.Resize(lw, lh)
			}
			ls := scorer.PrepareLevel(img, li, win, 1)
			if ls == nil {
				return nil, fmt.Errorf("level %d declined preparation", li)
			}
			lvls = append(lvls, preparedLevel{
				ls: ls,
				nx: (img.W-win)/params.Stride + 1,
				ny: (img.H-win)/params.Stride + 1,
			})
		}
		return lvls, nil
	}
	scoreAll := func(lvls []preparedLevel) (int64, int, error) {
		var windows int64
		hits := 0
		for _, l := range lvls {
			for idx := 0; idx < l.nx*l.ny; idx++ {
				x := idx % l.nx * params.Stride
				y := idx / l.nx * params.Stride
				hit, _ := l.ls.ScoreAt(x, y, idx)
				if hit {
					hits++
				}
				windows++
			}
		}
		for _, l := range lvls {
			if c, ok := l.ls.(detect.LevelCloser); ok {
				c.CloseLevel()
			}
		}
		return windows, hits, nil
	}
	for _, cfg := range []struct {
		name  string
		fused bool
	}{{"cellgrid-score", false}, {"fused", true}} {
		lvls, err := prepare(cfg.fused)
		if err != nil {
			return fmt.Errorf("detectbench %s: %w", cfg.name, err)
		}
		if err := measure(cfg.name, 1, func() (int64, int, error) {
			return scoreAll(lvls)
		}); err != nil {
			return err
		}
		report.Configs[len(report.Configs)-1].Scope = "score"
	}
	// And the honest end-to-end number: a full fused sweep, preparation
	// included, directly comparable with the cellgrid row.
	if err := measure("fused-sweep", 1, func() (int64, int, error) {
		scorer, err := p.DetectScorer(nil, win)
		if err != nil {
			return 0, 0, err
		}
		scorer.Fused = true
		boxes, stats, err := detect.Sweep(context.Background(), scene.Image, scorer, params)
		return stats.Windows, len(boxes), err
	}); err != nil {
		return err
	}

	serial, grid := report.Configs[0], report.Configs[1]
	if grid.WallMS > 0 {
		fmt.Fprintf(w, "single-worker speedup over serial: %.2fx\n", serial.WallMS/grid.WallMS)
	}
	var twoPass, fused DetectBenchConfig
	for _, c := range report.Configs {
		switch c.Config {
		case "cellgrid-score":
			twoPass = c
		case "fused":
			fused = c
		}
	}
	if fused.NsPerWindow > 0 {
		fmt.Fprintf(w, "fused scoring speedup over two-pass: %.2fx (%.0f -> %.0f ns/window, %.1f -> %.1f allocs/window)\n",
			twoPass.NsPerWindow/fused.NsPerWindow, twoPass.NsPerWindow, fused.NsPerWindow,
			twoPass.AllocsPerWindow, fused.AllocsPerWindow)
	}

	dir := o.OutDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_detect.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
