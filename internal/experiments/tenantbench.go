package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/serve"
	"hdface/internal/tenant"
)

// TenantBenchReport is the BENCH_tenant.json schema
// (hdface-bench-tenant/v1): the cost of keeping thousands of per-tenant
// model versions resident as compact seeds-only blobs, and what serving
// them lazily costs at request time.
type TenantBenchReport struct {
	Schema  string `json:"schema"`
	D       int    `json:"d"`
	K       int    `json:"k"`
	NumCPU  int    `json:"num_cpu"`
	Tenants int    `json:"tenants"`
	// Versions counts model versions resident in the store after populate
	// (compact blobs, not materialized models).
	Versions int `json:"versions"`

	// BytesPerModel is the compact v2 blob size (config + quantized class
	// memory + binarized words); V1SnapshotBytes the float-gob v1 size of
	// the same model.
	BytesPerModel    int     `json:"bytes_per_model"`
	V1SnapshotBytes  int     `json:"v1_snapshot_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`

	PopulateMS  float64 `json:"populate_ms"`
	StoreOpenMS float64 `json:"store_open_ms"` // reopen with Versions blobs resident

	ColdMaterializeP50MS float64 `json:"cold_materialize_p50_ms"`
	ColdMaterializeP99MS float64 `json:"cold_materialize_p99_ms"`

	HotSwapP50MS float64 `json:"hot_swap_p50_ms"`
	HotSwapP99MS float64 `json:"hot_swap_p99_ms"`

	// Steady-state HTTP serving with requests spread over ServeTenants
	// active tenants.
	ServeTenants   int     `json:"serve_tenants"`
	ServeRequests  int     `json:"serve_requests"`
	ServeReqPerSec float64 `json:"serve_req_per_sec"`
	ServeP50MS     float64 `json:"serve_p50_ms"`
	ServeP99MS     float64 `json:"serve_p99_ms"`

	// LazyEagerByteIdentical asserts the holographic round trip: a lazily
	// materialized compact version scores bit-for-bit like the eagerly
	// decoded v1 float snapshot on the binary Hamming path.
	LazyEagerByteIdentical bool `json:"lazy_eager_byte_identical"`
	// QuantPredictAgreement is the fraction of probes where the quantized
	// float path agrees with the exact v1 float path on the argmax label.
	QuantPredictAgreement float64 `json:"quant_predict_agreement"`

	MaterializedBytes int64 `json:"materialized_bytes"`
	BudgetBytes       int64 `json:"budget_bytes"`
	Evictions         int64 `json:"evictions"`
}

// TenantBench measures the compact seeds-only tenant store end to end:
// bytes per model at D=2048, open time with ~1000 versions resident,
// cold-materialization and hot-swap latency, steady-state HTTP throughput
// with 100+ active tenants, and the lazy-vs-eager byte-identity claim.
// D stays 2048 in quick mode — the CI gates (bytes/model <= 64KB, hot-swap
// p99 < 1ms) are dimensioned against it; quick cuts only the counts.
func TenantBench(w io.Writer, o Options) error {
	o = o.withDefaults()
	section(w, "compact multi-tenant model store benchmark")

	const d, win = 2048, 48
	nTenants, serveTenants, serveRequests, clients := 1000, 128, 512, 8
	if o.Quick {
		nTenants, serveTenants, serveRequests, clients = 128, 100, 128, 4
	}

	// One trained binary face/non-face pipeline: the shared base every
	// tenant lineage starts from.
	r := hv.NewRNG(o.Seed ^ 0x7e4a)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(win, win, r))
			labels = append(labels, 0)
		}
	}
	p := hdface.New(hdface.Config{D: d, Seed: o.Seed, Workers: 1, WorkingSize: win, Stride: 3})
	if err := p.Fit(imgs, labels, 2); err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	cfg, model := p.Config(), p.Model()

	// Footprint: compact v2 vs float v1 of the identical model.
	var v1, v2 bytes.Buffer
	if err := hdface.EncodeSnapshot(&v1, cfg, model); err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	if err := hdface.EncodeSnapshotV2(&v2, cfg, model); err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	report := TenantBenchReport{
		Schema:           "hdface-bench-tenant/v1",
		D:                d,
		K:                model.K,
		NumCPU:           runtime.NumCPU(),
		Tenants:          nTenants,
		BytesPerModel:    v2.Len(),
		V1SnapshotBytes:  v1.Len(),
		CompressionRatio: float64(v1.Len()) / float64(v2.Len()),
	}

	// Populate: one compact version per tenant, persisted.
	dir, err := os.MkdirTemp("", "tenantbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := tenant.Open(tenant.Config{Dir: dir})
	if err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	t0 := time.Now()
	for i := 0; i < nTenants; i++ {
		if _, err := store.Seed(fmt.Sprintf("t%04d", i), cfg, model); err != nil {
			return fmt.Errorf("tenantbench: seed tenant %d: %w", i, err)
		}
	}
	report.PopulateMS = msSince(t0)
	report.Versions = store.Stats().Versions

	// Store open time with every version on disk: header-only indexing is
	// what makes thousands of versions cheap to adopt at process start.
	t0 = time.Now()
	store, err = tenant.Open(tenant.Config{Dir: dir})
	if err != nil {
		return fmt.Errorf("tenantbench: reopen: %w", err)
	}
	report.StoreOpenMS = msSince(t0)

	// Cold materialization: first Model() per tenant decodes the blob.
	sample := nTenants
	if sample > 256 {
		sample = 256
	}
	cold := make([]time.Duration, 0, sample)
	for i := 0; i < sample; i++ {
		t0 = time.Now()
		if _, _, err := store.Model(fmt.Sprintf("t%04d", i)); err != nil {
			return fmt.Errorf("tenantbench: materialize: %w", err)
		}
		cold = append(cold, time.Since(t0))
	}
	report.ColdMaterializeP50MS = durPctMS(cold, 0.50)
	report.ColdMaterializeP99MS = durPctMS(cold, 0.99)

	// Hot swap: Promote is one LIVE-file write plus one pointer store;
	// scoring never waits on it. Measured on the persistent store — the
	// gate is sub-millisecond including the rename.
	swapTenant := "t0000"
	const swapWarm, swapIters = 20, 500
	swaps := make([]time.Duration, 0, swapIters)
	for i := 0; i < swapWarm+swapIters; i++ {
		id, err := store.Put(swapTenant, cfg, model)
		if err != nil {
			return fmt.Errorf("tenantbench: swap put: %w", err)
		}
		t0 = time.Now()
		if err := store.Promote(swapTenant, id); err != nil {
			return fmt.Errorf("tenantbench: swap promote: %w", err)
		}
		if i >= swapWarm {
			swaps = append(swaps, time.Since(t0))
		}
	}
	report.HotSwapP50MS = durPctMS(swaps, 0.50)
	report.HotSwapP99MS = durPctMS(swaps, 0.99)

	// Byte-identity: eagerly decode the v1 float snapshot, lazily
	// materialize the tenant's compact version, and compare the binary
	// Hamming scoring path bit for bit over probe features. The quantized
	// float path is additionally checked for argmax agreement.
	_, eager, err := hdface.DecodeSnapshot(bytes.NewReader(v1.Bytes()))
	if err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	_, lazy, err := store.Model("t0001")
	if err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	identical := true
	for c := range eager.Bin {
		ew, lw := eager.Bin[c].Words(), lazy.Bin[c].Words()
		for i := range ew {
			if ew[i] != lw[i] {
				identical = false
			}
		}
	}
	agree := 0
	for _, img := range imgs {
		f := p.Feature(img)
		ef, es := eager.ScoreBinaryHamming(f)
		lf, ls := lazy.ScoreBinaryHamming(f)
		if ef != lf || math.Float64bits(es) != math.Float64bits(ls) {
			identical = false
		}
		if eager.Predict(f) == lazy.Predict(f) {
			agree++
		}
	}
	report.LazyEagerByteIdentical = identical
	report.QuantPredictAgreement = float64(agree) / float64(len(imgs))

	// Steady state: HTTP /predict traffic round-robined over the first
	// serveTenants tenants of the populated store.
	srv, err := serve.New(serve.Config{Pipeline: p, Tenants: store, MaxBatch: 8, MaxQueue: 1024})
	if err != nil {
		return fmt.Errorf("tenantbench: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	var probe bytes.Buffer
	if err := imgs[0].WritePGM(&probe); err != nil {
		return err
	}
	probeBytes := probe.Bytes()
	lats := make([]time.Duration, serveRequests)
	codes := make([]int, serveRequests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < serveRequests; i += clients {
				url := fmt.Sprintf("%s/predict?tenant=t%04d", ts.URL, i%serveTenants)
				t0 := time.Now()
				resp, err := http.Post(url, "image/x-portable-graymap", bytes.NewReader(probeBytes))
				if err != nil {
					codes[i] = -1
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lats[i] = time.Since(t0)
				codes[i] = resp.StatusCode
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	ts.Close()
	srv.Close()
	var okLats []time.Duration
	for i, code := range codes {
		if code == http.StatusOK {
			okLats = append(okLats, lats[i])
		} else if code != http.StatusServiceUnavailable {
			return fmt.Errorf("tenantbench: request %d got status %d", i, code)
		}
	}
	if len(okLats) == 0 {
		return fmt.Errorf("tenantbench: every serve request failed")
	}
	report.ServeTenants = serveTenants
	report.ServeRequests = len(okLats)
	report.ServeReqPerSec = float64(len(okLats)) / wall.Seconds()
	report.ServeP50MS = durPctMS(okLats, 0.50)
	report.ServeP99MS = durPctMS(okLats, 0.99)

	st := store.Stats()
	report.MaterializedBytes = st.MaterializedBytes
	report.BudgetBytes = st.BudgetBytes
	report.Evictions = st.Evictions
	report.Versions = st.Versions

	fmt.Fprintf(w, "bytes/model: %d compact vs %d v1 (%.1fx)\n",
		report.BytesPerModel, report.V1SnapshotBytes, report.CompressionRatio)
	fmt.Fprintf(w, "%d tenants, %d versions resident; open %.1fms, populate %.1fms\n",
		report.Tenants, report.Versions, report.StoreOpenMS, report.PopulateMS)
	fmt.Fprintf(w, "cold materialize p50=%.3fms p99=%.3fms; hot swap p50=%.3fms p99=%.3fms\n",
		report.ColdMaterializeP50MS, report.ColdMaterializeP99MS, report.HotSwapP50MS, report.HotSwapP99MS)
	fmt.Fprintf(w, "serve: %d tenants %6.1f req/s p50=%.1fms p99=%.1fms\n",
		report.ServeTenants, report.ServeReqPerSec, report.ServeP50MS, report.ServeP99MS)
	fmt.Fprintf(w, "lazy==eager (Hamming path): %v; quantized predict agreement: %.2f\n",
		report.LazyEagerByteIdentical, report.QuantPredictAgreement)

	dir2 := o.OutDir
	if dir2 == "" {
		dir2 = "."
	}
	path := filepath.Join(dir2, "BENCH_tenant.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// durPctMS returns the q-th percentile of durations in milliseconds.
func durPctMS(lats []time.Duration, q float64) float64 {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e6
}
