package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/online"
	"hdface/internal/registry"
)

// OnlineBenchBucket is one prequential-accuracy window of the stream.
type OnlineBenchBucket struct {
	Start       int     `json:"start"`
	End         int     `json:"end"`
	AdaptiveAcc float64 `json:"adaptive_acc"`
	FrozenAcc   float64 `json:"frozen_acc"`
	LiveVersion uint64  `json:"live_version"`
}

// OnlineBenchReport is the BENCH_online.json schema.
type OnlineBenchReport struct {
	Schema       string              `json:"schema"`
	D            int                 `json:"d"`
	StreamLen    int                 `json:"stream_len"`
	DriftAt      int                 `json:"drift_at"`
	BucketSize   int                 `json:"bucket_size"`
	Buckets      []OnlineBenchBucket `json:"buckets"`
	PreDriftAcc  float64             `json:"pre_drift_acc"`
	DipAcc       float64             `json:"dip_acc"`
	RecoveredAcc float64             `json:"recovered_acc"`
	FrozenFinal  float64             `json:"frozen_final_acc"`
	Promotions   int64               `json:"promotions"`
	Rejections   int64               `json:"rejections"`
	DriftEvents  int64               `json:"drift_events"`
	Rounds       int64               `json:"rounds"`
	Epsilon      float64             `json:"epsilon"`
	Recovered    bool                `json:"recovered_within_epsilon"`
}

// OnlineBenchData runs the drift-recovery stream and returns the report;
// it errors if the adaptive path fails to recover or the frozen baseline
// keeps up (either means the subsystem under test is broken).
func OnlineBenchData(o Options) (*OnlineBenchReport, error) {
	o = o.withDefaults()
	d, win := 2048, 48
	poolN, preDrift, postDrift, bucket := 48, 240, 480, 60
	if o.Quick {
		d, win = 1024, 32
		poolN, preDrift, postDrift, bucket = 32, 120, 280, 40
	}

	// Train the initial model on a normally-labelled set.
	r := hv.NewRNG(o.Seed ^ 0x0417)
	render := func(n int) (faces, nonfaces []*imgproc.Image) {
		for i := 0; i < n; i++ {
			faces = append(faces, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
			nonfaces = append(nonfaces, dataset.RenderNonFace(win, win, r))
		}
		return
	}
	trainFaces, trainNon := render(16)
	imgs := append(append([]*imgproc.Image{}, trainFaces...), trainNon...)
	labels := make([]int, len(imgs))
	for i := range trainFaces {
		labels[i] = 1
	}
	cfg := hdface.Config{D: d, Seed: o.Seed, Workers: 1, WorkingSize: win, Stride: 3}
	p := hdface.New(cfg)
	if err := p.Fit(imgs, labels, 2); err != nil {
		return nil, fmt.Errorf("onlinebench: %w", err)
	}
	frozen := p.Model().Clone()

	// Pre-extract a pool of stream features so the bench measures
	// adaptation, not repeated HOG extraction.
	poolFaces, poolNon := render(poolN)
	feat := func(img *imgproc.Image) *hv.Vector { return p.Feature(img) }
	var faceFeats, nonFeats []*hv.Vector
	for i := 0; i < poolN; i++ {
		faceFeats = append(faceFeats, feat(poolFaces[i]))
		nonFeats = append(nonFeats, feat(poolNon[i]))
	}

	reg, err := registry.Open("", 0)
	if err != nil {
		return nil, fmt.Errorf("onlinebench: %w", err)
	}
	v1, err := reg.Put(cfg, p.Model())
	if err != nil {
		return nil, fmt.Errorf("onlinebench: %w", err)
	}
	if err := reg.Promote(v1); err != nil {
		return nil, fmt.Errorf("onlinebench: %w", err)
	}
	trainer, err := online.New(online.Config{
		Registry:   reg,
		Pipe:       cfg,
		BatchSize:  24,
		WindowSize: 32,
		MinHoldout: 4,
		Opts:       hdc.TrainOpts{Seed: o.Seed ^ 0xbe57},
	})
	if err != nil {
		return nil, fmt.Errorf("onlinebench: %w", err)
	}

	streamLen := preDrift + postDrift
	report := OnlineBenchReport{
		Schema:     "hdface-bench-online/v1",
		D:          d,
		StreamLen:  streamLen,
		DriftAt:    preDrift,
		BucketSize: bucket,
		Epsilon:    0.1,
	}

	sr := hv.NewRNG(o.Seed ^ 0x57ea)
	adaptOK, frozenOK, n := 0, 0, 0
	flushBucket := func(end int) {
		live := reg.Live()
		b := OnlineBenchBucket{
			Start:       end - n,
			End:         end,
			AdaptiveAcc: float64(adaptOK) / float64(n),
			FrozenAcc:   float64(frozenOK) / float64(n),
		}
		if live != nil {
			b.LiveVersion = live.ID
		}
		report.Buckets = append(report.Buckets, b)
		adaptOK, frozenOK, n = 0, 0, 0
	}
	for i := 0; i < streamLen; i++ {
		isFace := sr.Intn(2) == 1
		var f *hv.Vector
		if isFace {
			f = faceFeats[sr.Intn(len(faceFeats))]
		} else {
			f = nonFeats[sr.Intn(len(nonFeats))]
		}
		// Mid-stream the supervisory signal inverts: the environment now
		// calls faces class 0 and non-faces class 1.
		label := 0
		if isFace {
			label = 1
		}
		if i >= preDrift {
			label = 1 - label
		}
		// Prequential evaluation: predict first, then learn.
		if reg.Live().Model.Predict(f) == label {
			adaptOK++
		}
		if frozen.Predict(f) == label {
			frozenOK++
		}
		n++
		trainer.Step(online.Sample{Feature: f, Label: label})
		if n == bucket || i == streamLen-1 {
			flushBucket(i + 1)
		}
	}

	stats := trainer.Stats()
	report.Promotions = stats.Promotions
	report.Rejections = stats.Rejections
	report.DriftEvents = stats.DriftEvents
	report.Rounds = stats.Rounds

	// Headline numbers: the last pre-drift bucket, the worst and the last
	// post-drift buckets for the adaptive path, the last for the frozen.
	dip, frozenFinal, recovered := 1.0, 0.0, 0.0
	for _, b := range report.Buckets {
		switch {
		case b.End <= preDrift:
			report.PreDriftAcc = b.AdaptiveAcc
		default:
			if b.AdaptiveAcc < dip {
				dip = b.AdaptiveAcc
			}
			recovered = b.AdaptiveAcc
			frozenFinal = b.FrozenAcc
		}
	}
	report.DipAcc = dip
	report.RecoveredAcc = recovered
	report.FrozenFinal = frozenFinal
	report.Recovered = recovered >= report.PreDriftAcc-report.Epsilon

	if !report.Recovered {
		return nil, fmt.Errorf("onlinebench: adaptive path did not recover: %.3f < %.3f - %.2f",
			recovered, report.PreDriftAcc, report.Epsilon)
	}
	if frozenFinal >= recovered {
		return nil, fmt.Errorf("onlinebench: frozen baseline (%.3f) kept up with adaptive path (%.3f); drift injection is broken",
			frozenFinal, recovered)
	}
	return &report, nil
}

// OnlineBench measures the online learning subsystem end to end: a
// feedback stream of face/non-face windows whose label mapping inverts
// mid-stream (concept drift), evaluated prequentially — each sample is
// first predicted by the current live model, then handed to the trainer
// as feedback. The adaptive path (registry + feedback trainer) should
// dip at the drift point and recover to within epsilon of its pre-drift
// accuracy, while a frozen copy of the initial model stays degraded.
// Writes BENCH_online.json.
func OnlineBench(w io.Writer, o Options) error {
	section(w, "online learning drift-recovery benchmark")
	report, err := OnlineBenchData(o)
	if err != nil {
		return err
	}
	for _, b := range report.Buckets {
		fmt.Fprintf(w, "[%4d,%4d) adaptive=%.3f frozen=%.3f live=v%d\n",
			b.Start, b.End, b.AdaptiveAcc, b.FrozenAcc, b.LiveVersion)
	}
	fmt.Fprintf(w, "pre-drift=%.3f dip=%.3f recovered=%.3f frozen=%.3f promotions=%d drift_events=%d recovered_within_eps=%v\n",
		report.PreDriftAcc, report.DipAcc, report.RecoveredAcc, report.FrozenFinal,
		report.Promotions, report.DriftEvents, report.Recovered)

	dir := o.OutDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_online.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
