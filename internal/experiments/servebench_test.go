package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestServeBench runs the serving load benchmark end to end in quick mode
// and validates the hdface-bench-serve/v1 report it writes.
func TestServeBench(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := ServeBench(&buf, Options{Quick: true, Seed: 7, OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report ServeBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != "hdface-bench-serve/v1" {
		t.Fatalf("schema %q", report.Schema)
	}
	// Quick mode: 2 predict configs per worker count plus 1 detect config.
	if len(report.Configs) < 3 {
		t.Fatalf("only %d configs measured", len(report.Configs))
	}
	sawDetect := false
	for _, c := range report.Configs {
		if c.Endpoint == "/detect" {
			sawDetect = true
		}
		if c.ReqPerSec <= 0 || c.P50LatMS <= 0 || c.P99LatMS < c.P50LatMS {
			t.Fatalf("implausible measurement %+v", c)
		}
		if c.Rejected+c.Requests < c.Requests { // overflow guard, mostly documents intent
			t.Fatalf("negative rejection count %+v", c)
		}
	}
	if !sawDetect {
		t.Fatal("no /detect configuration measured")
	}
}
