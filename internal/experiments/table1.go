package experiments

import (
	"fmt"
	"io"

	"hdface/internal/dataset"
)

// Table1 prints the dataset inventory: the paper's corpus parameters next
// to the synthetic scale actually generated for this run.
func Table1(w io.Writer, o Options) error {
	o = o.withDefaults()
	loaded := loadAll(o)
	section(w, "Table 1: datasets")
	fmt.Fprintf(w, "%-8s %-11s %2s %10s %10s %9s  %s\n",
		"name", "n (paper)", "k", "paper-train", "gen-train", "gen-test", "description")
	for i, spec := range dataset.Specs() {
		ld := loaded[i]
		fmt.Fprintf(w, "%-8s %4dx%-6d %2d %10d %10d %9d  %s\n",
			spec.Name, spec.ImageSize, spec.ImageSize, spec.NumClasses,
			spec.FullTrainSize, len(ld.trainImgs), len(ld.testImgs), spec.Description)
	}
	fmt.Fprintf(w, "all pipelines operate at working size %dx%d\n", o.WorkingSize, o.WorkingSize)
	return nil
}
