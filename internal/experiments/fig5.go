package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/hwsim"
	"hdface/internal/nn"
)

// Fig5aPoint is one dimensionality sample: accuracy plus the modelled
// embedded-CPU training time (the heatmap axis of the paper's Figure 5a).
type Fig5aPoint struct {
	D            int
	Accuracy     float64
	TrainSeconds float64 // modelled on the A53-class CPU
}

// Fig5aData sweeps hypervector dimensionality on the EMOTION dataset.
func Fig5aData(o Options) ([]Fig5aPoint, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0] // EMOTION
	cpu := hwsim.CortexA53()
	var out []Fig5aPoint
	for _, d := range o.Dims {
		p := pipeline(o, hdface.ModeStochHOG, d)
		if err := p.Fit(ld.trainImgs, ld.trainLabels, ld.k); err != nil {
			return nil, fmt.Errorf("fig5a D=%d: %w", d, err)
		}
		acc := p.Evaluate(ld.testImgs, ld.testLabels)

		work := p.Work()
		trace := hwsim.FromStoch(work.Stoch)
		st := p.Model().Stats
		trace.Add(hwsim.HDCTrainTrace(st.Similarities, st.BootstrapAdds+2*st.AdaptiveSteps, d))
		// Work counters cover train + test extraction; scale the feature
		// part down to the training fraction.
		frac := float64(len(ld.trainImgs)) / float64(len(ld.trainImgs)+len(ld.testImgs))
		out = append(out, Fig5aPoint{
			D:            d,
			Accuracy:     acc,
			TrainSeconds: cpu.Run(trace.Scale(frac)).Seconds,
		})
	}
	return out, nil
}

// Fig5a prints the dimensionality sweep.
func Fig5a(w io.Writer, o Options) error {
	pts, err := Fig5aData(o)
	if err != nil {
		return err
	}
	section(w, "Figure 5a: HDFace accuracy & modelled training time vs dimensionality")
	fmt.Fprintf(w, "%8s %10s %16s\n", "D", "accuracy", "train (s, A53)")
	best := pts[0]
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %10.3f %16.3f\n", p.D, p.Accuracy, p.TrainSeconds)
		if p.Accuracy > best.Accuracy {
			best = p
		}
	}
	fmt.Fprintf(w, "best accuracy at D=%d; paper reports saturation above D=4k\n", best.D)
	return nil
}

// Fig5bPoint is one DNN configuration sample.
type Fig5bPoint struct {
	Hidden       int
	Accuracy     float64
	TrainSeconds float64 // modelled on the A53-class CPU
}

// Fig5bData sweeps the DNN's (square) hidden-layer size on EMOTION.
func Fig5bData(o Options) ([]Fig5bPoint, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0]
	trainX := hogFeatures(ld.trainImgs, o.WorkingSize)
	testX := hogFeatures(ld.testImgs, o.WorkingSize)
	cpu := hwsim.CortexA53()
	var out []Fig5bPoint
	for _, h := range o.DNNHidden {
		mlp, err := nn.New(dnnConfigFor(len(trainX[0]), ld.k, h, o.DNNEpochs, o.Seed))
		if err != nil {
			return nil, err
		}
		if _, err := mlp.Train(trainX, ld.trainLabels); err != nil {
			return nil, err
		}
		trace := hwsim.FromNN(mlp.Stats, 32)
		out = append(out, Fig5bPoint{
			Hidden:       h,
			Accuracy:     mlp.Accuracy(testX, ld.testLabels),
			TrainSeconds: cpu.Run(trace).Seconds,
		})
	}
	return out, nil
}

// Fig5b prints the DNN configuration sweep.
func Fig5b(w io.Writer, o Options) error {
	pts, err := Fig5bData(o)
	if err != nil {
		return err
	}
	section(w, "Figure 5b: DNN accuracy & modelled training time vs hidden size")
	fmt.Fprintf(w, "%10s %10s %16s\n", "hidden", "accuracy", "train (s, A53)")
	for _, p := range pts {
		fmt.Fprintf(w, "%5dx%-4d %10.3f %16.3f\n", p.Hidden, p.Hidden, p.Accuracy, p.TrainSeconds)
	}
	fmt.Fprintf(w, "paper: DNN saturates at 1024x1024 hidden layers, still slightly below\n")
	fmt.Fprintf(w, "HDFace's best, while training far slower (5.4s vs 0.9s per epoch)\n")
	return nil
}
