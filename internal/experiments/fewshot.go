package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/nn"
	"hdface/internal/svm"
)

// FewShotPoint is one training-set-size sample.
type FewShotPoint struct {
	PerClass         int
	HDSingle, HDFull float64 // single bootstrap pass vs full adaptive
	DNN, SVM         float64
}

// FewShotData checks the paper's introduction claim that HDC "enables
// single-pass learning with just a few samples": accuracy of a
// bootstrap-only HDC model, the full adaptive HDC model, the DNN and the
// SVM as the per-class training budget grows.
func FewShotData(o Options) ([]FewShotPoint, error) {
	o = o.withDefaults()
	ld := loadAll(o)[0] // EMOTION
	shots := []int{1, 2, 5, 10, o.EmoTrain / ld.k}
	if o.Quick {
		shots = []int{1, 3, o.EmoTrain / ld.k}
	}

	// Extract hypervector features once for the full training pool.
	p := pipeline(o, hdface.ModeStochHOG, o.D)
	trainFeats := p.Features(ld.trainImgs)
	testFeats := p.Features(ld.testImgs)
	trainX := hogFeatures(ld.trainImgs, o.WorkingSize)
	testX := hogFeatures(ld.testImgs, o.WorkingSize)

	var out []FewShotPoint
	for _, shot := range shots {
		if shot < 1 {
			continue
		}
		// Take the first `shot` samples of every class.
		counts := make([]int, ld.k)
		var idx []int
		for i, y := range ld.trainLabels {
			if counts[y] < shot {
				counts[y]++
				idx = append(idx, i)
			}
		}
		subFeats := make([][]float64, len(idx))
		labels := make([]int, len(idx))
		hvList := trainFeats[:0:0]
		for j, i := range idx {
			hvList = append(hvList, trainFeats[i])
			subFeats[j] = trainX[i]
			labels[j] = ld.trainLabels[i]
		}

		pt := FewShotPoint{PerClass: shot}
		single, err := hdc.Train(hvList, labels, ld.k, hdc.TrainOpts{Epochs: 1, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		pt.HDSingle = single.Accuracy(testFeats, ld.testLabels)
		full, err := hdc.Train(hvList, labels, ld.k, hdc.TrainOpts{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		pt.HDFull = full.Accuracy(testFeats, ld.testLabels)

		mlp, err := nn.New(dnnConfigFor(len(trainX[0]), ld.k, 256, o.DNNEpochs, o.Seed))
		if err != nil {
			return nil, err
		}
		if _, err := mlp.Train(subFeats, labels); err != nil {
			return nil, err
		}
		pt.DNN = mlp.Accuracy(testX, ld.testLabels)

		if shot*ld.k >= 2 {
			sv, err := svm.Train(subFeats, labels, ld.k, svm.Config{Epochs: 25, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			pt.SVM = sv.Accuracy(testX, ld.testLabels)
		}
		out = append(out, pt)
	}
	return out, nil
}

// FewShot prints the sample-efficiency curve.
func FewShot(w io.Writer, o Options) error {
	pts, err := FewShotData(o)
	if err != nil {
		return err
	}
	section(w, "Few-shot learning: accuracy vs per-class training samples (EMOTION)")
	fmt.Fprintf(w, "%10s %12s %12s %8s %8s\n", "per-class", "HDC 1-pass", "HDC adaptive", "DNN", "SVM")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d %12.3f %12.3f %8.3f %8.3f\n", p.PerClass, p.HDSingle, p.HDFull, p.DNN, p.SVM)
	}
	fmt.Fprintf(w, "paper (intro): HDC exposes hidden features, enabling single-pass\n")
	fmt.Fprintf(w, "learning with just a few samples\n")
	return nil
}
