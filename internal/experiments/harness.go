// Package experiments regenerates every table and figure of the HDFace
// paper's evaluation (Section 6) on the synthetic substrate described in
// DESIGN.md. Each experiment is a function taking Options and an io.Writer;
// the cmd/hdface-bench binary dispatches to them, and EXPERIMENTS.md
// records paper-reported versus measured values.
package experiments

import (
	"fmt"
	"io"

	"hdface"
	"hdface/internal/dataset"
	"hdface/internal/hog"
	"hdface/internal/imgproc"
)

// Options sizes the experiments. Zero fields take defaults tuned for a
// single-core laptop run of a few minutes; Quick cuts them roughly 3x.
type Options struct {
	Seed  uint64
	Quick bool
	// OutDir, when non-empty, receives PGM visualisations (Figure 6).
	OutDir string

	// Dataset sizes (train/test rendered per dataset).
	EmoTrain, EmoTest   int
	FaceTrain, FaceTest int
	// WorkingSize is the raster all pipelines operate on after resize.
	WorkingSize int

	// Dims is the Figure 5a dimensionality sweep.
	Dims []int
	// ErrRates is the Table 2 bit-error sweep.
	ErrRates []float64
	// Trials is the per-point sample count for Figure 2.
	Trials int
	// D is the headline dimensionality (paper: 4k).
	D int

	// DNN settings.
	DNNEpochs int
	DNNHidden []int // Figure 5b hidden-size sweep (square layers)
}

func (o Options) withDefaults() Options {
	def := func(p *int, v, quick int) {
		if *p == 0 {
			if o.Quick {
				*p = quick
			} else {
				*p = v
			}
		}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	def(&o.EmoTrain, 140, 42)
	def(&o.EmoTest, 70, 28)
	def(&o.FaceTrain, 60, 20)
	def(&o.FaceTest, 30, 10)
	def(&o.WorkingSize, 48, 32)
	def(&o.Trials, 200, 40)
	def(&o.D, 4096, 2048)
	def(&o.DNNEpochs, 20, 6)
	if len(o.Dims) == 0 {
		if o.Quick {
			o.Dims = []int{1024, 2048, 4096}
		} else {
			o.Dims = []int{1024, 2048, 4096, 8192, 10240}
		}
	}
	if len(o.ErrRates) == 0 {
		o.ErrRates = []float64{0, 0.01, 0.02, 0.04, 0.08, 0.12, 0.14}
	}
	if len(o.DNNHidden) == 0 {
		if o.Quick {
			o.DNNHidden = []int{64, 128}
		} else {
			o.DNNHidden = []int{64, 128, 256, 512}
		}
	}
	return o
}

// loadedDataset is a generated dataset pre-split into images and labels.
type loadedDataset struct {
	spec                    dataset.Spec
	name                    string
	k                       int
	trainImgs, testImgs     []*imgproc.Image
	trainLabels, testLabels []int
}

func split(samples []dataset.Sample) ([]*imgproc.Image, []int) {
	imgs := make([]*imgproc.Image, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		imgs[i] = s.Image
		labels[i] = s.Label
	}
	return imgs, labels
}

// loadAll generates the three Table 1 datasets at the configured scale. The
// large-raster datasets are rendered at their native sizes and resized by
// the pipelines' WorkingSize.
func loadAll(o Options) []*loadedDataset {
	var out []*loadedDataset
	for _, spec := range dataset.Specs() {
		trainN, testN := o.FaceTrain, o.FaceTest
		if spec.NumClasses > 2 {
			trainN, testN = o.EmoTrain, o.EmoTest
		}
		// Rendering 1024x1024 rasters only to resize them to WorkingSize
		// wastes minutes of single-core time; render at an intermediate
		// native-aspect size that still exercises the resize path.
		genSize := spec.ImageSize
		if genSize > 128 {
			genSize = 128
		}
		genSpec := spec
		genSpec.ImageSize = genSize
		ds := dataset.Generate(genSpec, trainN, testN, o.Seed^uint64(spec.ImageSize))
		ld := &loadedDataset{spec: spec, name: spec.Name, k: spec.NumClasses}
		ld.trainImgs, ld.trainLabels = split(ds.Train)
		ld.testImgs, ld.testLabels = split(ds.Test)
		out = append(out, ld)
	}
	return out
}

// hogFeatures extracts classical HOG features for the baselines, resizing
// to the working size first.
func hogFeatures(imgs []*imgproc.Image, workingSize int) [][]float64 {
	e := hog.New(hog.DefaultParams())
	out := make([][]float64, len(imgs))
	for i, img := range imgs {
		if img.W != workingSize || img.H != workingSize {
			img = img.Resize(workingSize, workingSize)
		}
		out[i] = e.Features(img)
	}
	return out
}

// pipeline builds an hdface pipeline for the experiment scale.
func pipeline(o Options, mode hdface.Mode, d int) *hdface.Pipeline {
	return hdface.New(hdface.Config{
		D:           d,
		Mode:        mode,
		WorkingSize: o.WorkingSize,
		Workers:     1, // deterministic single-core runs
		Seed:        o.Seed,
	})
}

// section prints a header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// Runner names an experiment and its entry point.
type Runner struct {
	Name string
	Desc string
	Run  func(io.Writer, Options) error
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", "stochastic arithmetic error vs dimensionality", Fig2},
		{"table1", "dataset inventory", Table1},
		{"fig4", "accuracy vs DNN and SVM", Fig4},
		{"fig5a", "HDFace dimensionality sweep", Fig5a},
		{"fig5b", "DNN configuration sweep", Fig5b},
		{"fig6", "sliding-window detection visualisation", Fig6},
		{"fig7", "speedup and energy on CPU and FPGA", Fig7},
		{"table2", "robustness to random bit error", Table2},
		{"motivation", "Section 2 motivation numbers", Motivation},
		{"ablations", "design-choice ablation sweep", Ablations},
		{"fewshot", "sample efficiency: accuracy vs shots per class", FewShot},
		{"dimreduce", "post-training dimensionality reduction", DimReduce},
		{"occlusion", "robustness to structured occlusion", Occlusion},
		{"dse", "FPGA lane-budget design-space exploration", DSE},
		{"detectbench", "detection sweep perf baseline (BENCH_detect.json)", DetectBench},
		{"servebench", "serving daemon load benchmark (BENCH_serve.json)", ServeBench},
		{"streambench", "streaming tracking benchmark (BENCH_stream.json)", StreamBench},
		{"faultsweep", "bit-error chaos harness with self-repair (BENCH_fault.json)", FaultSweep},
		{"onlinebench", "online learning drift-recovery benchmark (BENCH_online.json)", OnlineBench},
		{"fleetbench", "fault-tolerant serving fleet benchmark (BENCH_fleet.json)", FleetBench},
		{"tenantbench", "compact multi-tenant model store benchmark (BENCH_tenant.json)", TenantBench},
		{"verify", "reproduction gate: assert the structural claims", Verify},
	}
}

// Get returns the runner with the given name.
func Get(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}
