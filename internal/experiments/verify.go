package experiments

import (
	"fmt"
	"io"
)

// check is one structural claim with its verdict.
type check struct {
	name string
	ok   bool
	note string
}

// Verify runs the reduced (quick) experiments and asserts the paper's
// qualitative claims — the reproduction gate: every row states who should
// win or which direction a curve should bend, and whether this build's
// measurements agree. The gate always runs at the quick-scale operating
// point (only the seed is taken from the caller): smaller configurations
// sit below the stochastic noise floor and would test noise, not claims.
// Exit state is the number of failed checks.
func Verify(w io.Writer, o Options) error {
	o = Options{Seed: o.Seed, Quick: true}.withDefaults()
	var checks []check
	add := func(name string, ok bool, note string) {
		checks = append(checks, check{name, ok, note})
	}

	// Figure 2: error shrinks with D for all three ops.
	f2 := Fig2Data(o)
	first, last := f2[0], f2[len(f2)-1]
	add("fig2: construction error shrinks with D", last.Construct < first.Construct,
		fmt.Sprintf("%.4f -> %.4f", first.Construct, last.Construct))
	add("fig2: multiplication error shrinks with D", last.Mul < first.Mul,
		fmt.Sprintf("%.4f -> %.4f", first.Mul, last.Mul))

	// Figure 4: stochastic and original-space extraction comparable; HDC
	// beats SVM on average.
	f4, err := Fig4Data(o)
	if err != nil {
		return err
	}
	var stoch, orig, svm, dnn float64
	for _, r := range f4 {
		stoch += r.HDStoch / float64(len(f4))
		orig += r.HDOrig / float64(len(f4))
		svm += r.SVM / float64(len(f4))
		dnn += r.DNN / float64(len(f4))
	}
	// At the gate's quick scale (D=2048) the stochastic pipeline carries
	// roughly twice the default-scale sampling noise, so the tolerance is
	// wider than the ~0.01 gap measured at D=4096 (see EXPERIMENTS.md).
	add("fig4: stoch-HOG within 0.15 of orig-HOG", stoch > orig-0.15,
		fmt.Sprintf("stoch %.3f vs orig %.3f", stoch, orig))
	add("fig4: HDC beats SVM on average", orig > svm && stoch > svm,
		fmt.Sprintf("hdc %.3f/%.3f vs svm %.3f", stoch, orig, svm))
	_ = dnn

	// Figure 7: HDFace wins training on both platforms; FPGA energy gain
	// exceeds CPU energy gain.
	f7, err := Fig7Data(o)
	if err != nil {
		return err
	}
	trainOK, energyOK, inferFPGA := true, true, true
	for _, r := range f7 {
		trainOK = trainOK && r.TrainSpeedCPU > 1 && r.TrainSpeedFPGA > 1
		energyOK = energyOK && r.TrainEnergyFPGA > r.TrainEnergyCPU
		inferFPGA = inferFPGA && r.InferSpeedFPGA > 1
	}
	add("fig7: HDFace trains faster on CPU and FPGA", trainOK, "")
	add("fig7: FPGA amplifies the energy advantage", energyOK, "")
	add("fig7: FPGA inference speedup > 1", inferFPGA, "")

	// Table 2: the fully hyperdimensional pipeline beats the DNN and the
	// original-representation pipeline under bit error at the top rate.
	t2, err := Table2Data(o)
	if err != nil {
		return err
	}
	lossAtTop := map[string]float64{}
	for _, r := range t2 {
		lossAtTop[r.Name] = r.Losses[len(r.Losses)-1]
	}
	hdBest := lossAtTop[fmt.Sprintf("HDFace+HoG+Learn D=%dk", table2Dims(o)[len(table2Dims(o))-1]/1024)]
	add("table2: hyperspace pipeline beats DNN 16-bit under noise",
		hdBest < lossAtTop["DNN 16-bit"],
		fmt.Sprintf("%.3f vs %.3f", hdBest, lossAtTop["DNN 16-bit"]))
	origName := fmt.Sprintf("HDFace+Learn D=%dk", table2Dims(o)[len(table2Dims(o))-1]/1024)
	add("table2: original-representation HOG forfeits robustness",
		hdBest < lossAtTop[origName],
		fmt.Sprintf("%.3f vs %.3f", hdBest, lossAtTop[origName]))

	// Few-shot: one HDC pass beats SVM at every budget.
	fs, err := FewShotData(o)
	if err != nil {
		return err
	}
	fewOK := true
	for _, p := range fs {
		if p.HDSingle <= p.SVM {
			fewOK = false
		}
	}
	add("fewshot: single-pass HDC beats SVM at every budget", fewOK, "")

	// Dimensionality reduction: halving a trained model keeps accuracy
	// within 0.2.
	dr, err := DimReduceData(o)
	if err != nil {
		return err
	}
	add("dimreduce: 2x cut keeps accuracy within 0.2",
		dr[1].Accuracy > dr[0].Accuracy-0.2,
		fmt.Sprintf("%.3f -> %.3f", dr[0].Accuracy, dr[1].Accuracy))

	section(w, "Reproduction gate: structural claims")
	failed := 0
	for _, c := range checks {
		mark := "PASS"
		if !c.ok {
			mark = "FAIL"
			failed++
		}
		if c.note != "" {
			fmt.Fprintf(w, "[%s] %-55s (%s)\n", mark, c.name, c.note)
		} else {
			fmt.Fprintf(w, "[%s] %s\n", mark, c.name)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d structural claims failed", failed, len(checks))
	}
	fmt.Fprintf(w, "all %d structural claims hold\n", len(checks))
	return nil
}
