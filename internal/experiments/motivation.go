package experiments

import (
	"fmt"
	"io"

	"hdface/internal/encoder"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/hwsim"
	"hdface/internal/noise"
)

// Motivation reproduces the two Section 2 numbers that motivate the paper:
//
//  1. In a classical HOG -> encode -> HDC pipeline on the embedded CPU,
//     feature extraction dominates training time. The paper profiles the
//     FACE2 corpus, where HOG runs over the full 512x512 raster while the
//     classifier sees a pooled descriptor, so HOG's transcendental-heavy
//     per-pixel work (an atan2 and a square root per pixel) towers over the
//     bitwise ID-level encode and class-vector updates.
//  2. A 2% random bit error on the stored HOG feature memory (8-bit
//     fixed-point, as embedded feature maps are) causes a double-digit
//     accuracy loss, while the HDC model itself tolerates far more — the
//     asymmetry that justifies moving feature extraction into hyperspace.
func Motivation(w io.Writer, o Options) error {
	o = o.withDefaults()
	// Time share is profiled on FACE2's geometry (the corpus the paper
	// profiles); the quality-loss probe uses the 7-class EMOTION task,
	// whose finer class margins expose feature corruption the way the
	// paper's large-scale face corpus does (our synthetic binary face
	// task saturates and tolerates almost anything).
	all := loadAll(o)
	ld := all[0] // EMOTION
	trainX := hogFeatures(ld.trainImgs, o.WorkingSize)
	testX := hogFeatures(ld.testImgs, o.WorkingSize)

	// (1) Modelled time share on the A53. HOG is priced at the corpus's
	// native 512x512 resolution; encode and learning operate on the pooled
	// descriptor (len(trainX[0]) values) through the bitwise ID-level
	// encoder.
	cpu := hwsim.CortexA53()
	hogPerWork := hogStatsPer(o) // measured at the working size
	nativePixels := float64(512 * 512)
	workPixels := float64(o.WorkingSize * o.WorkingSize)
	hogTrace := hwsim.FromHOG(hogPerWork).Scale(nativePixels / workPixels * float64(len(trainX)))

	nFeat := len(trainX[0])
	enc := encoder.NewIDLevel(o.D, nFeat, 32, 0, 1, o.Seed^0x307)
	trainFeats := encodeAllID(enc, trainX)
	model, err := hdc.Train(trainFeats, ld.trainLabels, ld.k, hdc.TrainOpts{Seed: o.Seed})
	if err != nil {
		return err
	}
	model.Finalize(o.Seed)

	encodeTrace := hwsim.Trace{
		hwsim.OpWord64: enc.Stats.BitOps,                               // ID xor level per feature
		hwsim.OpIntAcc: int64(nFeat) * int64(o.D) * int64(len(trainX)), // bundling counters
	}
	learnTrace := hwsim.HDCTrainTrace(model.Stats.Similarities,
		model.Stats.BootstrapAdds+2*model.Stats.AdaptiveSteps, o.D)

	hogSecs := cpu.Run(hogTrace).Seconds
	restSecs := cpu.Run(encodeTrace).Seconds + cpu.Run(learnTrace).Seconds
	share := hogSecs / (hogSecs + restSecs)

	// (2) quality loss at 2% bit error on the fixed-point HOG features,
	// averaged over trials. The projection encoder (the same front-end as
	// Table 2's HDFace+Learn rows) propagates value corruption faithfully.
	penc := encoder.NewProjection(o.D, nFeat, o.Seed^0x309)
	ptrain := encodeAll(penc, trainX)
	pmodel, err := hdc.Train(ptrain, ld.trainLabels, ld.k, hdc.TrainOpts{Seed: o.Seed})
	if err != nil {
		return err
	}
	pmodel.Finalize(o.Seed)
	ptest := encodeAll(penc, testX)
	clean := binAccuracy(pmodel, ptest, ld.testLabels)
	var noisy float64
	const trials = 5
	for t := 0; t < trials; t++ {
		inj := noise.New(o.Seed ^ (0x2bad + uint64(t)*97))
		noisyX := corruptedHOG(inj, ld.testImgs, o.WorkingSize, 0.02)
		noisy += binAccuracy(pmodel, encodeAll(penc, noisyX), ld.testLabels)
	}
	noisy /= trials

	section(w, "Section 2 motivation: why move HOG into hyperspace")
	fmt.Fprintf(w, "HOG share of modelled HOG+HDC training time on A53: %.0f%% (paper: >85%%)\n",
		share*100)
	fmt.Fprintf(w, "quality loss from 2%% bit error on the HOG extraction path: %.1f%% (paper: 12%%)\n",
		(clean-noisy)*100)
	return nil
}

// encodeAllID encodes float matrices with the ID-level encoder.
func encodeAllID(enc *encoder.IDLevel, xs [][]float64) []*hv.Vector {
	out := make([]*hv.Vector, len(xs))
	for i, x := range xs {
		out[i] = enc.Encode(x)
	}
	return out
}
