// Package obscli wires the observability layer (internal/obs) into the
// repo's command-line binaries with a shared flag set:
//
//	-stats           print a per-stage timing/counter report after the run
//	-stats-json F    write the obs snapshot (schema hdface-obs/v1) to F
//	-stats-allocs    record per-stage allocation deltas (implies -stats)
//	-pprof ADDR      serve net/http/pprof plus Prometheus /metrics on ADDR
//	-trace-dump N    collect request traces, print the last N as JSON
//	                 (schema hdface-trace/v1) after the run
//
// All three hdface binaries register the same flags, so trajectory tooling
// sees one snapshot schema regardless of which binary produced it (the
// schema is documented in EXPERIMENTS.md).
package obscli

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"hdface/internal/obs"
	"hdface/internal/obs/trace"
)

// Flags carries the parsed observability flags of one binary invocation.
type Flags struct {
	Stats       bool
	StatsJSON   string
	StatsAllocs bool
	PprofAddr   string
	TraceDump   int
	meta        map[string]string
}

// Register installs the shared observability flags on a flag set.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Stats, "stats", false, "print a per-stage timing/counter report after the run")
	fs.StringVar(&f.StatsJSON, "stats-json", "", "write the observability snapshot as JSON to this path")
	fs.BoolVar(&f.StatsAllocs, "stats-allocs", false, "record per-stage allocation deltas (slower; implies -stats)")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof and Prometheus /metrics on this address (e.g. :6060)")
	fs.IntVar(&f.TraceDump, "trace-dump", 0, "collect request traces and print the last N as hdface-trace/v1 JSON after the run")
	return f
}

// Active reports whether any snapshot output was requested.
func (f *Flags) Active() bool {
	return f.Stats || f.StatsJSON != "" || f.StatsAllocs
}

// Activate enables instrumentation (and the pprof server) before the run.
// meta is recorded verbatim into the snapshot for trajectory tooling. Call
// it after flag parsing and before any pipeline construction, so
// construction-time gauges (worker counts) are captured.
func (f *Flags) Activate(meta map[string]string) {
	f.meta = meta
	if f.PprofAddr != "" {
		obs.Enable() // live /metrics needs the registry recording
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			obs.WriteTo(w)
		})
		go func() {
			if err := http.ListenAndServe(f.PprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obs: pprof server:", err)
			}
		}()
	}
	if f.Active() {
		obs.Enable()
		obs.SetTrackAllocs(f.StatsAllocs)
	}
	if f.TraceDump > 0 {
		trace.Enable()
	}
}

// Finish emits the requested reports after the run: the human report on
// stdout and/or the JSON snapshot file, then the trace dump.
func (f *Flags) Finish() error {
	if f.Active() {
		snap := obs.TakeSnapshot()
		snap.Meta = f.meta
		if f.Stats || f.StatsAllocs {
			if err := snap.WriteReport(os.Stdout); err != nil {
				return err
			}
		}
		if f.StatsJSON != "" {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(f.StatsJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
	}
	if f.TraceDump > 0 {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(trace.Last(f.TraceDump)); err != nil {
			return err
		}
	}
	return nil
}
