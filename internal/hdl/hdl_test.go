package hdl

import (
	"fmt"
	"math/bits"
	"strings"
	"testing"
	"testing/quick"

	"hdface/internal/hv"
)

// toBits converts the low width bits of v to a bool slice (LSB first).
func toBits(v uint64, width int) []bool {
	out := make([]bool, width)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

// fromBits reads a bool slice as an LSB-first integer.
func fromBits(bs []bool) uint64 {
	var v uint64
	for i, b := range bs {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestXorVectorMatchesSoftware(t *testing.T) {
	m := XorVector(64)
	f := func(a, b uint64) bool {
		out := m.Eval(map[string][]bool{"a": toBits(a, 64), "b": toBits(b, 64)}, nil)
		return fromBits(out["y"]) == a^b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectVectorMatchesSoftware(t *testing.T) {
	m := SelectVector(64)
	f := func(mask, a, b uint64) bool {
		out := m.Eval(map[string][]bool{
			"mask": toBits(mask, 64), "a": toBits(a, 64), "b": toBits(b, 64)}, nil)
		return fromBits(out["y"]) == a&mask|b&^mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPopcountMatchesSoftware(t *testing.T) {
	for _, d := range []int{1, 7, 16, 64, 100} {
		m := Popcount(d)
		f := func(v uint64) bool {
			in := toBits(v, d)
			want := 0
			for _, b := range in {
				if b {
					want++
				}
			}
			out := m.Eval(map[string][]bool{"x": in}, nil)
			return fromBits(out["count"]) == uint64(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestPopcountAllOnes(t *testing.T) {
	m := Popcount(64)
	in := make([]bool, 64)
	for i := range in {
		in[i] = true
	}
	out := m.Eval(map[string][]bool{"x": in}, nil)
	if got := fromBits(out["count"]); got != 64 {
		t.Fatalf("count %d, want 64", got)
	}
}

func TestHammingDistanceMatchesHV(t *testing.T) {
	m := HammingDistance(64)
	f := func(a, b uint64) bool {
		out := m.Eval(map[string][]bool{"a": toBits(a, 64), "b": toBits(b, 64)}, nil)
		return fromBits(out["dist"]) == uint64(bits.OnesCount64(a^b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// Cross-check against package hv on a packed vector.
	r := hv.NewRNG(1)
	va, vb := hv.NewRand(r, 64), hv.NewRand(r, 64)
	out := m.Eval(map[string][]bool{
		"a": toBits(va.Words()[0], 64), "b": toBits(vb.Words()[0], 64)}, nil)
	if got := int(fromBits(out["dist"])); got != va.Hamming(vb) {
		t.Fatalf("hdl %d vs hv %d", got, va.Hamming(vb))
	}
}

func TestNearestClassPicksCloser(t *testing.T) {
	m := NearestClass(32)
	f := func(q, c0, c1 uint32) bool {
		out := m.Eval(map[string][]bool{
			"a":      toBits(uint64(q), 32),
			"class0": toBits(uint64(c0), 32),
			"class1": toBits(uint64(c1), 32)}, nil)
		d0 := bits.OnesCount32(q ^ c0)
		d1 := bits.OnesCount32(q ^ c1)
		sel := out["sel"][0]
		return sel == (d1 < d0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLFSRCyclesWithoutRepeatingEarly(t *testing.T) {
	// Width-16 maximal-ish LFSR: the state must not repeat within a few
	// thousand steps and must not reach all-zero.
	m := LFSR(16, []int{15, 14, 12, 3})
	s := m.NewState()
	seen := map[uint64]bool{}
	in := map[string][]bool{}
	for i := 0; i < 4096; i++ {
		out := m.Eval(in, s)
		word := fromBits(out["rand"])
		if word == 0 {
			t.Fatal("LFSR reached all-zero state")
		}
		if seen[word] {
			t.Fatalf("state repeated after %d steps", i)
		}
		seen[word] = true
		s = m.Step(in, s)
	}
}

func TestLFSRBitBalance(t *testing.T) {
	m := LFSR(16, []int{15, 14, 12, 3})
	s := m.NewState()
	in := map[string][]bool{}
	ones := 0
	const steps = 2000
	for i := 0; i < steps; i++ {
		out := m.Eval(in, s)
		if out["rand"][0] {
			ones++
		}
		s = m.Step(in, s)
	}
	frac := float64(ones) / steps
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("LFSR bit balance %v", frac)
	}
}

func TestBernoulliMaskDensityTracksThreshold(t *testing.T) {
	m := BernoulliMask(12, []int{11, 10, 9, 3})
	for _, p := range []float64{0.25, 0.5, 0.75} {
		thresh := uint64(p * float64(uint64(1)<<12))
		in := map[string][]bool{"thresh": toBits(thresh, 12)}
		s := m.NewState()
		ones := 0
		const steps = 3000
		for i := 0; i < steps; i++ {
			out := m.Eval(in, s)
			if out["bit"][0] {
				ones++
			}
			s = m.Step(in, s)
		}
		frac := float64(ones) / steps
		if frac < p-0.06 || frac > p+0.06 {
			t.Fatalf("p=%v: mask density %v", p, frac)
		}
	}
}

func TestVerilogEmission(t *testing.T) {
	m := HammingDistance(8)
	v := m.Verilog()
	for _, want := range []string{
		"module hd_hamming_d8(", "input [7:0] a;", "input [7:0] b;",
		"output", "assign", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
	// Combinational module must not emit a clock.
	if strings.Contains(v, "clk") || strings.Contains(v, "always") {
		t.Fatal("combinational module emitted sequential constructs")
	}
}

func TestVerilogSequentialEmission(t *testing.T) {
	m := LFSR(8, nil)
	v := m.Verilog()
	for _, want := range []string{"input clk;", "always @(posedge clk)", "reg r", "<="} {
		if !strings.Contains(v, want) {
			t.Fatalf("sequential verilog missing %q:\n%s", want, v)
		}
	}
}

func TestGateAndRegCounts(t *testing.T) {
	m := XorVector(64)
	if got := m.GateCount(); got != 64 {
		t.Fatalf("xor gate count %d, want 64", got)
	}
	if m.RegCount() != 0 {
		t.Fatal("combinational module has registers")
	}
	l := LFSR(16, nil)
	if l.RegCount() != 16 {
		t.Fatalf("LFSR reg count %d", l.RegCount())
	}
	// Popcount gate count grows roughly linearly with width (adder tree).
	p64 := Popcount(64).GateCount()
	p128 := Popcount(128).GateCount()
	if p128 <= p64 || p128 > 3*p64 {
		t.Fatalf("popcount scaling odd: %d -> %d", p64, p128)
	}
}

func TestModuleValidation(t *testing.T) {
	m := NewModule("t")
	m.Input("a", 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate input did not panic")
			}
		}()
		m.Input("a", 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Wire to non-register did not panic")
			}
		}()
		m.Wire(m.Const(false), m.Const(true))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("missing input did not panic")
			}
		}()
		out := []Net{m.Const(true)}
		m.Output("y", out)
		m.Eval(map[string][]bool{}, nil)
	}()
}

func BenchmarkEvalHamming256(b *testing.B) {
	m := HammingDistance(256)
	r := hv.NewRNG(1)
	in := map[string][]bool{
		"a": toBits(r.Uint64(), 64), "b": toBits(r.Uint64(), 64)}
	// Widen inputs to 256 bits.
	a := make([]bool, 256)
	bb := make([]bool, 256)
	for i := 0; i < 256; i++ {
		a[i] = r.Uint64()&1 == 1
		bb[i] = r.Uint64()&1 == 1
	}
	in["a"], in["b"] = a, bb
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(in, nil)
	}
}

func TestAssocSearchMatchesArgmin(t *testing.T) {
	const d, k = 24, 7
	m := AssocSearch(d, k)
	f := func(seed uint64) bool {
		r := hv.NewRNG(seed)
		in := map[string][]bool{}
		var q uint64 = r.Uint64() & (1<<d - 1)
		in["q"] = toBits(q, d)
		classes := make([]uint64, k)
		for c := range classes {
			classes[c] = r.Uint64() & (1<<d - 1)
			in[fmt.Sprintf("class%d", c)] = toBits(classes[c], d)
		}
		want, best := 0, 1<<30
		for c, cv := range classes {
			dist := bits.OnesCount64(q ^ cv)
			if dist < best {
				best, want = dist, c
			}
		}
		out := m.Eval(in, nil)
		return int(fromBits(out["winner"])) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssocSearchTieGoesToLowerIndex(t *testing.T) {
	m := AssocSearch(8, 3)
	in := map[string][]bool{
		"q":      toBits(0b00000000, 8),
		"class0": toBits(0b00001111, 8), // dist 4
		"class1": toBits(0b00000011, 8), // dist 2
		"class2": toBits(0b00000101, 8), // dist 2 (tie with class1)
	}
	out := m.Eval(in, nil)
	if got := fromBits(out["winner"]); got != 1 {
		t.Fatalf("winner %d, want 1 (tie to lower index)", got)
	}
}

func TestAssocSearchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 did not panic")
		}
	}()
	AssocSearch(8, 1)
}

func TestAssocSearchVerilog(t *testing.T) {
	m := AssocSearch(8, 4)
	v := m.Verilog()
	if !strings.Contains(v, "module hd_assoc_d8_k4(") || !strings.Contains(v, "winner") {
		t.Fatal("assoc verilog malformed")
	}
}

func TestPipelinedHammingLatency(t *testing.T) {
	m := PipelinedHamming(16)
	if m.RegCount() != 16 {
		t.Fatalf("reg count %d, want 16", m.RegCount())
	}
	s := m.NewState()
	inA := map[string][]bool{"a": toBits(0xF0F0, 16), "b": toBits(0x0F0F, 16)}
	// Cycle 0: registers still hold reset values -> dist 0.
	out := m.Eval(inA, s)
	if got := fromBits(out["dist"]); got != 0 {
		t.Fatalf("pre-clock dist %d, want 0", got)
	}
	// Clock once: stage latches a^b (all 16 bits differ).
	s = m.Step(inA, s)
	out = m.Eval(inA, s)
	if got := fromBits(out["dist"]); got != 16 {
		t.Fatalf("post-clock dist %d, want 16", got)
	}
	// New inputs appear one cycle later.
	inB := map[string][]bool{"a": toBits(0xFFFF, 16), "b": toBits(0xFFFF, 16)}
	out = m.Eval(inB, s)
	if got := fromBits(out["dist"]); got != 16 {
		t.Fatalf("dist should still show previous inputs, got %d", got)
	}
	s = m.Step(inB, s)
	out = m.Eval(inB, s)
	if got := fromBits(out["dist"]); got != 0 {
		t.Fatalf("updated dist %d, want 0", got)
	}
	// Sequential Verilog constructs present.
	v := m.Verilog()
	if !strings.Contains(v, "always @(posedge clk)") {
		t.Fatal("pipelined unit missing clocked block")
	}
}
