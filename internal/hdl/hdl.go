// Package hdl generates synthesizable Verilog for the HDC datapath the
// paper implemented on its Kintex-7 ("we design the HDFace functionality
// using Verilog and synthesize it using Xilinx Vivado"): wide XOR binding
// units, mask-select units for stochastic weighted averaging, popcount
// adder trees for similarity, LFSR farms for Bernoulli mask generation and
// a Hamming-distance associative search.
//
// Modules are built in a small gate-level intermediate representation that
// can be evaluated directly in Go, so every generated circuit is
// functionally verified against the reference software (package hv) before
// the Verilog text is emitted. Emission is structural: one wire per net,
// one assign per gate, registers in a single clocked block.
package hdl

import (
	"fmt"
	"sort"
	"strings"
)

// Net identifies one single-bit signal inside a module.
type Net int

// gateKind enumerates the IR primitives.
type gateKind int

const (
	gInput gateKind = iota
	gConst
	gAnd
	gOr
	gXor
	gNot
	gReg // D flip-flop: value of A sampled each Step
)

type gate struct {
	kind gateKind
	a, b Net
	val  bool // for gConst: the constant; for gReg: the initial value
}

// Module is a gate-level netlist with named input/output buses and
// optional registers. Build it with the constructor helpers, verify it
// with Eval/Step, then emit Verilog with Verilog().
type Module struct {
	Name     string
	gates    []gate
	inputs   map[string][]Net
	outputs  map[string][]Net
	inOrder  []string
	outOrder []string
	regs     []Net // subset of gates that are registers
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:    name,
		inputs:  map[string][]Net{},
		outputs: map[string][]Net{},
	}
}

// add appends a gate and returns its net.
func (m *Module) add(g gate) Net {
	m.gates = append(m.gates, g)
	return Net(len(m.gates) - 1)
}

// Input declares a named input bus of the given width.
func (m *Module) Input(name string, width int) []Net {
	if _, dup := m.inputs[name]; dup {
		panic("hdl: duplicate input " + name)
	}
	bus := make([]Net, width)
	for i := range bus {
		bus[i] = m.add(gate{kind: gInput})
	}
	m.inputs[name] = bus
	m.inOrder = append(m.inOrder, name)
	return bus
}

// Output declares a named output bus driven by the given nets.
func (m *Module) Output(name string, bus []Net) {
	if _, dup := m.outputs[name]; dup {
		panic("hdl: duplicate output " + name)
	}
	m.outputs[name] = append([]Net(nil), bus...)
	m.outOrder = append(m.outOrder, name)
}

// Const returns a constant-valued net.
func (m *Module) Const(v bool) Net { return m.add(gate{kind: gConst, val: v}) }

// And returns a & b.
func (m *Module) And(a, b Net) Net { return m.add(gate{kind: gAnd, a: a, b: b}) }

// Or returns a | b.
func (m *Module) Or(a, b Net) Net { return m.add(gate{kind: gOr, a: a, b: b}) }

// Xor returns a ^ b.
func (m *Module) Xor(a, b Net) Net { return m.add(gate{kind: gXor, a: a, b: b}) }

// Not returns ~a.
func (m *Module) Not(a Net) Net { return m.add(gate{kind: gNot, a: a}) }

// Mux returns sel ? a : b.
func (m *Module) Mux(sel, a, b Net) Net {
	return m.Or(m.And(sel, a), m.And(m.Not(sel), b))
}

// Reg inserts a D flip-flop with the given initial value; Wire connects
// its input later (registers may close feedback loops).
func (m *Module) Reg(init bool) Net {
	n := m.add(gate{kind: gReg, a: -1, val: init})
	m.regs = append(m.regs, n)
	return n
}

// Wire connects register reg's data input to net d.
func (m *Module) Wire(reg, d Net) {
	if m.gates[reg].kind != gReg {
		panic("hdl: Wire target is not a register")
	}
	m.gates[reg].a = d
}

// GateCount returns the number of combinational gates (LUT proxy).
func (m *Module) GateCount() int {
	n := 0
	for _, g := range m.gates {
		switch g.kind {
		case gAnd, gOr, gXor, gNot:
			n++
		}
	}
	return n
}

// RegCount returns the number of flip-flops.
func (m *Module) RegCount() int { return len(m.regs) }

// State captures register values between Steps.
type State map[Net]bool

// NewState returns the reset state (register initial values).
func (m *Module) NewState() State {
	s := State{}
	for _, r := range m.regs {
		s[r] = m.gates[r].val
	}
	return s
}

// Eval computes all outputs combinationally for the given inputs and
// register state (nil state for purely combinational modules).
func (m *Module) Eval(inputs map[string][]bool, s State) map[string][]bool {
	vals := make([]bool, len(m.gates))
	known := make([]bool, len(m.gates))
	for name, bus := range m.inputs {
		in, ok := inputs[name]
		if !ok || len(in) != len(bus) {
			panic(fmt.Sprintf("hdl: input %s needs %d bits", name, len(bus)))
		}
		for i, n := range bus {
			vals[n] = in[i]
			known[n] = true
		}
	}
	for _, r := range m.regs {
		vals[r] = s[r]
		known[r] = true
	}
	var resolve func(n Net) bool
	resolve = func(n Net) bool {
		if known[n] {
			return vals[n]
		}
		g := m.gates[n]
		var v bool
		switch g.kind {
		case gConst:
			v = g.val
		case gAnd:
			v = resolve(g.a) && resolve(g.b)
		case gOr:
			v = resolve(g.a) || resolve(g.b)
		case gXor:
			v = resolve(g.a) != resolve(g.b)
		case gNot:
			v = !resolve(g.a)
		case gInput:
			panic("hdl: unconnected input net")
		case gReg:
			panic("hdl: register value must come from state")
		}
		vals[n] = v
		known[n] = true
		return v
	}
	out := map[string][]bool{}
	for name, bus := range m.outputs {
		bits := make([]bool, len(bus))
		for i, n := range bus {
			bits[i] = resolve(n)
		}
		out[name] = bits
	}
	// Also resolve register inputs so Step sees consistent values.
	for _, r := range m.regs {
		if m.gates[r].a >= 0 {
			resolve(m.gates[r].a)
		}
	}
	return out
}

// Step advances registers one clock: each register samples its wired
// input under the given inputs. Returns the new state.
func (m *Module) Step(inputs map[string][]bool, s State) State {
	// Evaluate combinationally, then latch.
	vals := make([]bool, len(m.gates))
	known := make([]bool, len(m.gates))
	for name, bus := range m.inputs {
		in := inputs[name]
		for i, n := range bus {
			vals[n] = in[i]
			known[n] = true
		}
	}
	for _, r := range m.regs {
		vals[r] = s[r]
		known[r] = true
	}
	var resolve func(n Net) bool
	resolve = func(n Net) bool {
		if known[n] {
			return vals[n]
		}
		g := m.gates[n]
		var v bool
		switch g.kind {
		case gConst:
			v = g.val
		case gAnd:
			v = resolve(g.a) && resolve(g.b)
		case gOr:
			v = resolve(g.a) || resolve(g.b)
		case gXor:
			v = resolve(g.a) != resolve(g.b)
		case gNot:
			v = !resolve(g.a)
		}
		vals[n] = v
		known[n] = true
		return v
	}
	next := State{}
	for _, r := range m.regs {
		d := m.gates[r].a
		if d < 0 {
			panic("hdl: register with unwired input")
		}
		next[r] = resolve(d)
	}
	return next
}

// Verilog emits the module as structural Verilog-2001.
func (m *Module) Verilog() string {
	var b strings.Builder
	var ports []string
	if len(m.regs) > 0 {
		ports = append(ports, "clk")
	}
	for _, name := range m.inOrder {
		ports = append(ports, name)
	}
	for _, name := range m.outOrder {
		ports = append(ports, name)
	}
	fmt.Fprintf(&b, "module %s(%s);\n", m.Name, strings.Join(ports, ", "))
	if len(m.regs) > 0 {
		b.WriteString("  input clk;\n")
	}
	for _, name := range m.inOrder {
		fmt.Fprintf(&b, "  input [%d:0] %s;\n", len(m.inputs[name])-1, name)
	}
	for _, name := range m.outOrder {
		fmt.Fprintf(&b, "  output [%d:0] %s;\n", len(m.outputs[name])-1, name)
	}
	// Wire declarations for every gate net.
	fmt.Fprintf(&b, "  wire [%d:0] n;\n", len(m.gates)-1)
	if len(m.regs) > 0 {
		var idx []int
		for _, r := range m.regs {
			idx = append(idx, int(r))
		}
		sort.Ints(idx)
		for _, r := range idx {
			fmt.Fprintf(&b, "  reg r%d = 1'b%s;\n", r, bit(m.gates[r].val))
		}
	}
	// Input bindings.
	for _, name := range m.inOrder {
		for i, n := range m.inputs[name] {
			fmt.Fprintf(&b, "  assign n[%d] = %s[%d];\n", n, name, i)
		}
	}
	// Gates.
	for i, g := range m.gates {
		switch g.kind {
		case gConst:
			fmt.Fprintf(&b, "  assign n[%d] = 1'b%s;\n", i, bit(g.val))
		case gAnd:
			fmt.Fprintf(&b, "  assign n[%d] = n[%d] & n[%d];\n", i, g.a, g.b)
		case gOr:
			fmt.Fprintf(&b, "  assign n[%d] = n[%d] | n[%d];\n", i, g.a, g.b)
		case gXor:
			fmt.Fprintf(&b, "  assign n[%d] = n[%d] ^ n[%d];\n", i, g.a, g.b)
		case gNot:
			fmt.Fprintf(&b, "  assign n[%d] = ~n[%d];\n", i, g.a)
		case gReg:
			fmt.Fprintf(&b, "  assign n[%d] = r%d;\n", i, i)
		}
	}
	// Register updates.
	if len(m.regs) > 0 {
		b.WriteString("  always @(posedge clk) begin\n")
		for _, r := range m.regs {
			fmt.Fprintf(&b, "    r%d <= n[%d];\n", r, m.gates[r].a)
		}
		b.WriteString("  end\n")
	}
	// Outputs.
	for _, name := range m.outOrder {
		for i, n := range m.outputs[name] {
			fmt.Fprintf(&b, "  assign %s[%d] = n[%d];\n", name, i, n)
		}
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
